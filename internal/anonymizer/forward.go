package anonymizer

import (
	"sync"
	"time"

	"repro/internal/geo"
)

// forwardQueue is the graceful-degradation path for the anonymizer →
// database link: when a forward fails, the cloaked region (never the exact
// location — privacy is not weakened by spilling) is parked in a bounded
// in-memory queue and replayed with exponential backoff once the link
// recovers.
//
// The queue holds at most one region per user: a newer update for a queued
// user coalesces into the existing entry, because only the latest region
// matters to the server (region updates are upserts). When the queue is
// full, the oldest entry is evicted so the freshest regions survive an
// extended outage. Per-user ordering is preserved by routing updates for a
// queued user through the queue even while the link is healthy.
type forwardQueue struct {
	fwd   Forwarder
	limit int
	base  time.Duration
	max   time.Duration
	met   *anonMetrics
	// reject switches the full-queue policy from "evict the oldest entry"
	// (silent loss, the historical behavior) to "refuse the new region"
	// (backpressure: the update fails typed and visibly instead).
	reject bool

	mu       sync.Mutex
	regions  map[uint64]geo.Rect
	order    []uint64
	closed   bool
	spilled  uint64
	replayed uint64
	dropped  uint64
	errs     uint64

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// queueStats is a snapshot of the queue's counters.
type queueStats struct {
	spilled, replayed, dropped, errs uint64
	depth                            int
}

func newForwardQueue(fwd Forwarder, limit int, base, max time.Duration, met *anonMetrics, reject bool) *forwardQueue {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max < base {
		max = 5 * time.Second
		if max < base {
			max = base
		}
	}
	q := &forwardQueue{
		fwd:     fwd,
		limit:   limit,
		base:    base,
		max:     max,
		met:     met,
		reject:  reject,
		regions: make(map[uint64]geo.Rect, limit),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go q.run()
	return q
}

func (q *forwardQueue) kick() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// enqueueIfPending coalesces a new region into an already-queued entry for
// the same user, preserving per-user ordering: while an older region for
// id waits in the queue, newer ones must not overtake it on the direct
// path.
func (q *forwardQueue) enqueueIfPending(id uint64, region geo.Rect) bool {
	q.mu.Lock()
	if _, ok := q.regions[id]; !ok || q.closed {
		q.mu.Unlock()
		return false
	}
	q.regions[id] = region
	q.spilled++
	q.mu.Unlock()
	q.met.spills.Inc()
	q.kick()
	return true
}

// add parks a region after a failed forward. When the queue is full the
// policy decides: evict the oldest entry (default) or refuse the new
// region (reject mode). It reports whether the region was accepted.
func (q *forwardQueue) add(id uint64, region geo.Rect) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return true
	}
	if _, ok := q.regions[id]; ok {
		q.regions[id] = region
		q.spilled++
		q.mu.Unlock()
		q.met.spills.Inc()
		q.kick()
		return true
	}
	var droppedOne bool
	if q.limit > 0 && len(q.order) >= q.limit {
		if q.reject {
			q.mu.Unlock()
			return false
		}
		victim := q.order[0]
		q.order = q.order[1:]
		delete(q.regions, victim)
		q.dropped++
		droppedOne = true
	}
	q.order = append(q.order, id)
	q.regions[id] = region
	q.spilled++
	depth := len(q.order)
	q.mu.Unlock()
	q.met.spills.Inc()
	if droppedOne {
		q.met.queueDrops.Inc()
	}
	q.met.queueDepth.Set(float64(depth))
	q.kick()
	return true
}

// admit reports whether an update for id may enter the pipeline under
// reject mode: true while the queue has room, or while id already has a
// queued entry the new region would coalesce into. Always true in evict
// mode — admission pressure only exists when the full queue refuses work.
func (q *forwardQueue) admit(id uint64) bool {
	if !q.reject || q.limit <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, pending := q.regions[id]; pending {
		return true
	}
	return len(q.order) < q.limit
}

// full reports whether reject mode would refuse a non-coalescable region
// right now.
func (q *forwardQueue) full() bool {
	if !q.reject || q.limit <= 0 {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order) >= q.limit
}

// head returns the oldest queued entry without removing it.
func (q *forwardQueue) head() (id uint64, region geo.Rect, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.order) == 0 {
		return 0, geo.Rect{}, false
	}
	id = q.order[0]
	return id, q.regions[id], true
}

// pop removes the head entry — unless a newer region coalesced in while it
// was being forwarded, in which case the entry stays for another round.
// It reports whether the entry was removed.
func (q *forwardQueue) pop(id uint64, forwarded geo.Rect) bool {
	q.mu.Lock()
	removed := len(q.order) > 0 && q.order[0] == id && q.regions[id] == forwarded
	if removed {
		q.order = q.order[1:]
		delete(q.regions, id)
		q.replayed++
	}
	depth := len(q.order)
	q.mu.Unlock()
	q.met.queueDepth.Set(float64(depth))
	return removed
}

// run is the replay loop: it drains the queue head-first, backing off
// exponentially while the downstream link keeps failing.
func (q *forwardQueue) run() {
	defer close(q.done)
	backoff := q.base
	for {
		id, region, ok := q.head()
		if !ok {
			select {
			case <-q.wake:
				continue
			case <-q.quit:
				return
			}
		}
		if err := q.fwd(id, region); err != nil {
			q.mu.Lock()
			q.errs++
			q.mu.Unlock()
			q.met.forwardErrs.Inc()
			select {
			case <-time.After(backoff):
			case <-q.quit:
				return
			}
			if backoff *= 2; backoff > q.max {
				backoff = q.max
			}
			continue
		}
		backoff = q.base
		if q.pop(id, region) {
			q.met.replays.Inc()
			q.met.forwarded.Inc()
		}
	}
}

// snapshot returns the queue's counters.
func (q *forwardQueue) snapshot() queueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return queueStats{
		spilled:  q.spilled,
		replayed: q.replayed,
		dropped:  q.dropped,
		errs:     q.errs,
		depth:    len(q.order),
	}
}

// close stops the replay loop and waits for it to exit. Entries still
// queued are abandoned.
func (q *forwardQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.quit)
	<-q.done
}
