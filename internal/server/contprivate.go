package server

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// Continuous private range queries monitor moving public objects (police
// cars, delivery trucks) for a cloaked user: "keep me posted on patrol
// cars within r of wherever I am". The server maintains, per query, the
// candidate set over the user's expanded region incrementally as moving
// objects report — the continuous flavor of Figure 5a, executed with the
// shared philosophy of Section 5.3: each moving-object update only touches
// the queries whose filter rectangles it enters or leaves, found through a
// coarse query index instead of a scan of all standing queries.

// contPrivQuery is one standing private range query over moving objects.
type contPrivQuery struct {
	id     uint64
	region geo.Rect
	radius float64
	filter geo.Rect // region expanded by radius — the candidate predicate
	// members holds the ids of moving objects currently inside filter.
	members map[uint64]geo.Point
}

// contPrivEngine indexes standing queries in a coarse grid so updates
// touch only nearby queries. Methods run with the server mutex held.
type contPrivEngine struct {
	s       *Server
	nextID  uint64
	queries map[uint64]*contPrivQuery
	// cells buckets query ids by coarse cell; a query appears in every cell
	// its filter intersects.
	cols, rows int
	cells      [][]uint64
}

func newContPrivEngine(s *Server) *contPrivEngine {
	const res = 16
	return &contPrivEngine{
		s:       s,
		queries: make(map[uint64]*contPrivQuery),
		cols:    res,
		rows:    res,
		cells:   make([][]uint64, res*res),
	}
}

func (e *contPrivEngine) cellRange(r geo.Rect) (c0, r0, c1, r1 int) {
	world := e.s.world
	fx := func(x float64) int {
		c := int((x - world.Min.X) / world.Width() * float64(e.cols))
		if c < 0 {
			c = 0
		}
		if c >= e.cols {
			c = e.cols - 1
		}
		return c
	}
	fy := func(y float64) int {
		c := int((y - world.Min.Y) / world.Height() * float64(e.rows))
		if c < 0 {
			c = 0
		}
		if c >= e.rows {
			c = e.rows - 1
		}
		return c
	}
	return fx(r.Min.X), fy(r.Min.Y), fx(r.Max.X), fy(r.Max.Y)
}

func (e *contPrivEngine) insertIndex(q *contPrivQuery) {
	c0, r0, c1, r1 := e.cellRange(q.filter)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			i := row*e.cols + col
			e.cells[i] = append(e.cells[i], q.id)
		}
	}
}

func (e *contPrivEngine) removeIndex(q *contPrivQuery) {
	c0, r0, c1, r1 := e.cellRange(q.filter)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			i := row*e.cols + col
			cell := e.cells[i]
			for j, id := range cell {
				if id == q.id {
					cell[j] = cell[len(cell)-1]
					e.cells[i] = cell[:len(cell)-1]
					break
				}
			}
		}
	}
}

// queriesNear returns the ids of queries whose filters may cover p.
func (e *contPrivEngine) queriesNear(p geo.Point) []uint64 {
	c0, r0, _, _ := e.cellRange(geo.PointRect(p))
	return e.cells[r0*e.cols+c0]
}

// onMovingUpdate reconciles query memberships for one moving object.
func (e *contPrivEngine) onMovingUpdate(id uint64, old geo.Point, hadOld bool, new geo.Point) {
	touch := func(p geo.Point) {
		for _, qid := range e.queriesNear(p) {
			q := e.queries[qid]
			if q == nil {
				continue
			}
			if q.filter.Contains(new) {
				q.members[id] = new
			} else {
				delete(q.members, id)
			}
		}
	}
	if hadOld {
		touch(old)
	}
	touch(new)
}

// onMovingRemove drops the object from every query near its last position.
func (e *contPrivEngine) onMovingRemove(id uint64, last geo.Point) {
	for _, qid := range e.queriesNear(last) {
		if q := e.queries[qid]; q != nil {
			delete(q.members, id)
		}
	}
}

// RegisterContinuousPrivateRange installs a standing private range query:
// the cloaked user's region plus her radius. The initial candidate set is
// built from the current moving objects; updates maintain it incrementally.
func (s *Server) RegisterContinuousPrivateRange(region geo.Rect, radius float64) (uint64, error) {
	if !region.Valid() {
		return 0, fmt.Errorf("server: invalid region %v", region)
	}
	if radius < 0 {
		return 0, fmt.Errorf("server: negative radius %g", radius)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.contPriv.nextID++
	q := &contPrivQuery{
		id:      s.contPriv.nextID,
		region:  region,
		radius:  radius,
		filter:  region.Expand(radius),
		members: make(map[uint64]geo.Point),
	}
	for _, o := range s.moving.Search(q.filter, nil) {
		q.members[o.ID] = o.Loc
	}
	s.contPriv.queries[q.id] = q
	s.contPriv.insertIndex(q)
	return q.id, nil
}

// UnregisterContinuousPrivateRange removes a standing private query.
func (s *Server) UnregisterContinuousPrivateRange(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.contPriv.queries[id]
	if !ok {
		return false
	}
	s.contPriv.removeIndex(q)
	delete(s.contPriv.queries, id)
	return true
}

// ContinuousPrivateRange reads the maintained candidate set, sorted by id.
// The mobile client refines it against her exact location as usual.
func (s *Server) ContinuousPrivateRange(id uint64) ([]PublicObject, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	q, ok := s.contPriv.queries[id]
	if !ok {
		return nil, false
	}
	out := make([]PublicObject, 0, len(q.members))
	for oid, loc := range q.members {
		out = append(out, PublicObject{ID: oid, Loc: loc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, true
}

// MoveContinuousPrivateRange re-anchors a standing query when the user's
// cloaked region changes (she moved enough for the anonymizer to emit a
// new region). The candidate set is rebuilt for the new filter.
func (s *Server) MoveContinuousPrivateRange(id uint64, region geo.Rect) error {
	if !region.Valid() {
		return fmt.Errorf("server: invalid region %v", region)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.contPriv.queries[id]
	if !ok {
		return fmt.Errorf("server: unknown continuous private query %d", id)
	}
	s.contPriv.removeIndex(q)
	q.region = region
	q.filter = region.Expand(q.radius)
	q.members = make(map[uint64]geo.Point)
	for _, o := range s.moving.Search(q.filter, nil) {
		q.members[o.ID] = o.Loc
	}
	s.contPriv.insertIndex(q)
	return nil
}

// ContinuousPrivateQueryCount returns the number of standing private
// queries.
func (s *Server) ContinuousPrivateQueryCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.contPriv.queries)
}
