package scenario

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
)

// tinyCfg keeps engine smoke tests inside test-suite budgets: a small
// city, short phases, the overload machinery on.
func tinyCfg() Config {
	return Config{
		Users: 600, Objects: 200, K: 5,
		Workers: 4, Batch: 8,
		Seed: 42, Scale: 0.05,
		Admission: true, MaxInflight: 64,
	}
}

func TestCatalogFindRoundTrip(t *testing.T) {
	cat := Catalog()
	if len(cat) < 7 {
		t.Fatalf("catalog has %d scenarios, want >= 7", len(cat))
	}
	for _, sc := range cat {
		got, ok := Find(sc.Name)
		if !ok || got.Name != sc.Name {
			t.Fatalf("Find(%q) = %v, %v", sc.Name, got.Name, ok)
		}
		if sc.Run == nil || sc.Desc == "" {
			t.Fatalf("scenario %q missing Run or Desc", sc.Name)
		}
	}
	if _, ok := Find("no_such_scenario"); ok {
		t.Fatal("Find accepted an unknown scenario name")
	}
}

// TestEngineSmokePasses runs a short hotspot scenario through the full
// stack and expects a clean verdict: operations flowed, nothing was lost,
// k held after warmup.
func TestEngineSmokePasses(t *testing.T) {
	sc := Scenario{
		Name: "smoke",
		Desc: "short hotspot drive",
		SLO:  SLO{MaxErrorRate: 0.001},
		Run: func(e *Env) error {
			hot := &mobility.Hotspot{Center: geo.Pt(0.3, 0.3), Frac: 0.5, Pull: 0.8}
			if err := e.Drive(Phase{Name: "base", Dur: 4 * time.Second, QueryPct: 20}); err != nil {
				return err
			}
			return e.Drive(Phase{Name: "hot", Dur: 4 * time.Second, Hot: hot, QueryPct: 20})
		},
	}
	res, err := Run(sc, tinyCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("smoke scenario failed: %v", res.Violations)
	}
	if res.Ops == 0 {
		t.Fatal("no operations driven")
	}
	if res.LostUpdates != 0 || res.KViolations != 0 {
		t.Fatalf("lost=%d kviol=%d, want 0/0", res.LostUpdates, res.KViolations)
	}
}

// TestOutageWithoutAdmissionLosesUpdates is the verdict-logic pin for the
// load-bearing claim: with the overload machinery disabled, an outage
// under a small spill queue evicts acked updates and the engine must
// report the zero-lost-updates violation.
func TestOutageWithoutAdmissionLosesUpdates(t *testing.T) {
	sc := Scenario{
		Name: "outage_unprotected",
		Desc: "db killed with eviction-mode queue",
		SLO:  SLO{MaxErrorRate: 0.001, RecoverWithin: 30 * time.Second},
		Tune: func(cfg *Config) { cfg.ForwardQueue = 64 },
		Run: func(e *Env) error {
			if err := e.Drive(Phase{Name: "base", Dur: 2 * time.Second, QueryPct: 0}); err != nil {
				return err
			}
			e.KillDB()
			if err := e.Drive(Phase{Name: "outage", Dur: 4 * time.Second, QueryPct: 0}); err != nil {
				return err
			}
			if err := e.RestartDB(false); err != nil {
				return err
			}
			return e.AwaitRecovery()
		},
	}
	cfg := tinyCfg()
	cfg.Admission = false
	cfg.Scale = 0.25
	res, err := Run(sc, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Passed() {
		t.Fatal("unprotected outage passed; expected lost-update violation")
	}
	if res.LostUpdates == 0 {
		t.Fatalf("LostUpdates = 0, want > 0; violations: %v", res.Violations)
	}
	found := false
	for _, v := range res.Violations {
		if v.SLO == "zero-lost-updates" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no zero-lost-updates violation recorded: %v", res.Violations)
	}
}

// TestShardKillRoutedTier drives the routed database tier through a
// one-shard outage with the machinery on: surviving tiles keep serving,
// the spill queue replays the dead shard's updates after the restart,
// and nothing acked is lost.
func TestShardKillRoutedTier(t *testing.T) {
	sc := Scenario{
		Name: "shard_kill_smoke",
		Desc: "one shard killed and restarted under load",
		SLO:  SLO{MaxErrorRate: 0.001, RecoverWithin: 30 * time.Second},
		Tune: func(cfg *Config) { cfg.ForwardQueue = 64 },
		Run: func(e *Env) error {
			if e.Shards() != 3 {
				return fmt.Errorf("routed stack has %d shards, want 3", e.Shards())
			}
			if err := e.Drive(Phase{Name: "base", Dur: 2 * time.Second, QueryPct: 10}); err != nil {
				return err
			}
			e.KillShard(2)
			if err := e.Drive(Phase{Name: "degraded", Dur: 3 * time.Second, QueryPct: 10, AllowErrors: true}); err != nil {
				return err
			}
			if err := e.RestartShard(2); err != nil {
				return err
			}
			return e.AwaitRecovery()
		},
	}
	cfg := tinyCfg()
	cfg.Shards = 3
	cfg.Scale = 0.25
	res, err := Run(sc, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("routed shard-kill smoke failed: %v", res.Violations)
	}
	if res.Ops == 0 {
		t.Fatal("no operations driven")
	}
	if res.LostUpdates != 0 {
		t.Fatalf("LostUpdates = %d, want 0", res.LostUpdates)
	}
}

// TestShardKillTuneForcesRoutedTier pins the catalog contract CI relies
// on: running shard_kill without -shards still deploys a routed tier.
func TestShardKillTuneForcesRoutedTier(t *testing.T) {
	sc, ok := Find("shard_kill")
	if !ok {
		t.Fatal("shard_kill missing from catalog")
	}
	cfg := Config{}
	sc.Tune(&cfg)
	if cfg.Shards < 2 {
		t.Fatalf("shard_kill Tune left Shards = %d, want >= 2", cfg.Shards)
	}
	if cfg.ForwardQueue == 0 || cfg.ForwardQueue > 1024 {
		t.Fatalf("shard_kill Tune left ForwardQueue = %d, want a small eviction-prone queue", cfg.ForwardQueue)
	}
}

// TestOutageWithAdmissionHoldsTheLine is the same outage with the
// machinery on: the queue rejects typed instead of evicting, so nothing
// acked is lost and the run passes.
func TestOutageWithAdmissionHoldsTheLine(t *testing.T) {
	sc := Scenario{
		Name: "outage_protected",
		Desc: "db killed with backpressure on",
		SLO:  SLO{MaxErrorRate: 0.001, RecoverWithin: 30 * time.Second},
		Tune: func(cfg *Config) { cfg.ForwardQueue = 64 },
		Run: func(e *Env) error {
			if err := e.Drive(Phase{Name: "base", Dur: 2 * time.Second, QueryPct: 0}); err != nil {
				return err
			}
			e.KillDB()
			if err := e.Drive(Phase{Name: "outage", Dur: 4 * time.Second, QueryPct: 0}); err != nil {
				return err
			}
			if err := e.RestartDB(false); err != nil {
				return err
			}
			return e.AwaitRecovery()
		},
	}
	cfg := tinyCfg()
	cfg.Scale = 0.25
	res, err := Run(sc, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("protected outage failed: %v", res.Violations)
	}
	if res.Sheds == 0 {
		t.Fatal("expected typed sheds while the queue was saturated")
	}
	if res.LostUpdates != 0 {
		t.Fatalf("LostUpdates = %d, want 0", res.LostUpdates)
	}
}
