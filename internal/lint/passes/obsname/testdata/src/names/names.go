// Package fixture exercises the obsname pass.
package fixture

import "repro/internal/obs"

var dynamicName = "fixture_dynamic_total"

func register(reg *obs.Registry) {
	reg.Counter("fixture_updates_total", "Updates processed.")
	reg.Gauge("fixture_depth", "Queue depth.")
	reg.Histogram("fixture_latency_seconds", "Latency.", obs.DefaultLatencyBuckets)

	reg.Counter("Fixture_Bad_Name", "Not snake case.") // want "not snake_case"
	reg.Counter("fixture-dashed-total", "Dashes.")     // want "not snake_case"

	reg.Counter("fixture_updates_total", "Duplicate site.") // want "already introduced in this package"

	reg.Counter(dynamicName, "Dynamic.") // want "must be a string literal"

	reg.Counter("other_family_total", "Wrong family.") // want "outside this package"
}
