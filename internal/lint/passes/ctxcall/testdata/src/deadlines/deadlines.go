// The ctxcall fixture is a main package: the pass only applies to
// daemons and load tools.
package main

import (
	"context"
	"time"

	"repro/internal/protocol"
)

func main() {}

func bareCall(c *protocol.Client) {
	c.Call(1, nil) // want "bare Client.Call has no deadline"
}

func ctxCall(c *protocol.Client) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	c.CallCtx(ctx, 1, nil)
}

func dialNoTimeout() {
	protocol.Dial("addr")         // want "Dial without WithCallTimeout"
	protocol.DialDatabase("addr") // want "DialDatabase without WithCallTimeout"
}

func dialWithTimeout() {
	protocol.Dial("addr", protocol.WithCallTimeout(time.Second))
	opts := []protocol.DialOption{protocol.WithCallTimeout(2 * time.Second)}
	protocol.DialAnonymizer("addr", opts...)
}

func dialSpreadNoTimeout() {
	opts := []protocol.DialOption{protocol.WithRetries(1)}
	protocol.DialDatabase("addr", opts...) // want "DialDatabase without WithCallTimeout"
}

// dialOpaque spreads a slice built elsewhere; the pass gives it the
// benefit of the doubt.
func dialOpaque(opts []protocol.DialOption) {
	protocol.Dial("addr", opts...)
}
