package server

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/rng"
)

func TestPrivateRangeValidation(t *testing.T) {
	s := newServer(t)
	if _, err := s.PrivateRange(PrivateRangeQuery{Region: geo.Rect{Min: geo.Pt(1, 1)}, Radius: 0.1}); err == nil {
		t.Error("invalid region accepted")
	}
	if _, err := s.PrivateRange(PrivateRangeQuery{Region: geo.R(0, 0, 0.1, 0.1), Radius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := s.PrivateRange(PrivateRangeQuery{Region: geo.R(0, 0, 0.1, 0.1), Radius: math.NaN()}); err == nil {
		t.Error("NaN radius accepted")
	}
}

// Invariant I5: the candidate set contains every object within radius of
// every point of the region. Verified against brute force over a lattice of
// query positions.
func TestPrivateRangeCompleteness(t *testing.T) {
	s := newServer(t)
	objs := loadObjects(t, s, 2000, "gas", 2)
	region := geo.R(0.42, 0.31, 0.55, 0.46)
	const radius = 0.08
	got, err := s.PrivateRange(PrivateRangeQuery{Region: region, Radius: radius})
	if err != nil {
		t.Fatal(err)
	}
	inCand := map[uint64]bool{}
	for _, o := range got {
		inCand[o.ID] = true
	}
	const n = 20
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := geo.Pt(
				region.Min.X+region.Width()*float64(i)/(n-1),
				region.Min.Y+region.Height()*float64(j)/(n-1),
			)
			for _, o := range objs {
				if p.Dist(o.Loc) <= radius && !inCand[o.ID] {
					t.Fatalf("object %d within radius of %v missing from candidates", o.ID, p)
				}
			}
		}
	}
}

func TestPrivateRangeRoundedTighterThanMBR(t *testing.T) {
	s := newServer(t)
	loadObjects(t, s, 5000, "gas", 3)
	region := geo.R(0.4, 0.4, 0.5, 0.5)
	rounded, err := s.PrivateRange(PrivateRangeQuery{Region: region, Radius: 0.1, Mode: RangeRounded})
	if err != nil {
		t.Fatal(err)
	}
	mbr, err := s.PrivateRange(PrivateRangeQuery{Region: region, Radius: 0.1, Mode: RangeMBR})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounded) >= len(mbr) {
		t.Errorf("rounded (%d) should be tighter than MBR (%d)", len(rounded), len(mbr))
	}
	// Rounded candidates all satisfy the exact predicate.
	for _, o := range rounded {
		if geo.MinDist(o.Loc, region) > 0.1+1e-12 {
			t.Fatalf("rounded candidate %d violates predicate", o.ID)
		}
	}
	// Every rounded candidate also appears in the MBR superset.
	inMBR := map[uint64]bool{}
	for _, o := range mbr {
		inMBR[o.ID] = true
	}
	for _, o := range rounded {
		if !inMBR[o.ID] {
			t.Fatalf("rounded candidate %d missing from MBR superset", o.ID)
		}
	}
}

func TestPrivateRangeClassFilterAndMoving(t *testing.T) {
	s := newServer(t)
	if err := s.LoadStationary([]PublicObject{
		{ID: 1, Class: "gas", Loc: geo.Pt(0.5, 0.5)},
		{ID: 2, Class: "cafe", Loc: geo.Pt(0.51, 0.51)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateMoving(100, geo.Pt(0.52, 0.52)); err != nil {
		t.Fatal(err)
	}
	q := PrivateRangeQuery{Region: geo.R(0.45, 0.45, 0.55, 0.55), Radius: 0.1}

	all, _ := s.PrivateRange(q)
	if len(all) != 3 {
		t.Errorf("unfiltered candidates = %d, want 3 (2 stationary + 1 moving)", len(all))
	}
	q.Class = "gas"
	gas, _ := s.PrivateRange(q)
	if len(gas) != 1 || gas[0].ID != 1 {
		t.Errorf("gas candidates = %v", gas)
	}
}

func TestPrivateRangeDegenerateRegion(t *testing.T) {
	// k=1 users send their exact point; the query degenerates to a classic
	// range query.
	s := newServer(t)
	objs := loadObjects(t, s, 1000, "gas", 4)
	p := geo.Pt(0.5, 0.5)
	got, err := s.PrivateRange(PrivateRangeQuery{Region: geo.PointRect(p), Radius: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, o := range objs {
		if p.Dist(o.Loc) <= 0.1 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("degenerate private range = %d, brute = %d", len(got), want)
	}
}

func TestPrivateNNValidation(t *testing.T) {
	s := newServer(t)
	if _, err := s.PrivateNN(PrivateNNQuery{Region: geo.Rect{Min: geo.Pt(1, 1)}}); err == nil {
		t.Error("invalid region accepted")
	}
}

func TestPrivateNNEmptyServer(t *testing.T) {
	s := newServer(t)
	res, err := s.PrivateNN(PrivateNNQuery{Region: geo.R(0.4, 0.4, 0.6, 0.6)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 0 {
		t.Error("candidates from empty server")
	}
}

// Invariant I6: the candidate set contains the exact NN of every point of
// the region.
func TestPrivateNNCompleteness(t *testing.T) {
	s := newServer(t)
	objs := loadObjects(t, s, 3000, "gas", 5)
	src := rng.New(77)
	for trial := 0; trial < 25; trial++ {
		cx, cy := src.Float64()*0.8+0.1, src.Float64()*0.8+0.1
		w, h := src.Float64()*0.15, src.Float64()*0.15
		region := geo.R(cx, cy, cx+w, cy+h)
		res, err := s.PrivateNN(PrivateNNQuery{Region: region})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Candidates) == 0 {
			t.Fatal("no candidates")
		}
		if res.SupersetSize < len(res.Candidates) {
			t.Fatalf("superset %d < candidates %d", res.SupersetSize, len(res.Candidates))
		}
		if !CandidateCompleteness(region, 15, res.Candidates, objs) {
			t.Fatalf("trial %d: candidate set misses a true NN (region %v, %d candidates)",
				trial, region, len(res.Candidates))
		}
	}
}

// Every candidate that survives pruning should be the refined NN for some
// sampled position — pruning is not so weak that the set is bloated with
// obviously dominated objects. (The set may legitimately contain a few
// non-winners because pairwise dominance is a relaxation of joint
// dominance, so this checks the refinement path rather than exact
// minimality.)
func TestPrivateNNRefinementConsistency(t *testing.T) {
	s := newServer(t)
	objs := loadObjects(t, s, 2000, "gas", 6)
	region := geo.R(0.3, 0.3, 0.45, 0.4)
	res, err := s.PrivateNN(PrivateNNQuery{Region: region})
	if err != nil {
		t.Fatal(err)
	}
	// Refinement at dense sample points must always pick a candidate that
	// matches the brute-force NN.
	const n = 12
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := geo.Pt(
				region.Min.X+region.Width()*float64(i)/(n-1),
				region.Min.Y+region.Height()*float64(j)/(n-1),
			)
			got, ok := RefineNN(p, res.Candidates)
			if !ok {
				t.Fatal("refinement found no candidate")
			}
			bestD := math.Inf(1)
			var bestID uint64
			for _, o := range objs {
				if d := p.Dist2(o.Loc); d < bestD {
					bestD, bestID = d, o.ID
				}
			}
			if got.ID != bestID && p.Dist2(got.Loc) != bestD {
				t.Fatalf("refined NN %d (d²=%v) != brute NN %d (d²=%v) at %v",
					got.ID, p.Dist2(got.Loc), bestID, bestD, p)
			}
		}
	}
}

func TestPrivateNNClassFilter(t *testing.T) {
	s := newServer(t)
	if err := s.LoadStationary([]PublicObject{
		{ID: 1, Class: "gas", Loc: geo.Pt(0.9, 0.9)},
		{ID: 2, Class: "cafe", Loc: geo.Pt(0.52, 0.52)}, // nearer but wrong class
	}); err != nil {
		t.Fatal(err)
	}
	res, err := s.PrivateNN(PrivateNNQuery{Region: geo.R(0.45, 0.45, 0.55, 0.55), Class: "gas"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 || res.Candidates[0].ID != 1 {
		t.Errorf("class-filtered NN = %v", res.Candidates)
	}
}

func TestPrivateNNDegenerateRegionIsExact(t *testing.T) {
	s := newServer(t)
	objs := loadObjects(t, s, 1000, "gas", 7)
	p := geo.Pt(0.37, 0.62)
	res, err := s.PrivateNN(PrivateNNQuery{Region: geo.PointRect(p)})
	if err != nil {
		t.Fatal(err)
	}
	// For a point region the candidate set should collapse to the exact NN
	// (plus possible exact ties).
	bestD := math.Inf(1)
	for _, o := range objs {
		if d := p.Dist2(o.Loc); d < bestD {
			bestD = d
		}
	}
	for _, c := range res.Candidates {
		if p.Dist2(c.Loc) != bestD {
			t.Fatalf("degenerate-region candidate %d is not the exact NN", c.ID)
		}
	}
	if len(res.Candidates) < 1 {
		t.Fatal("no candidate for point region")
	}
}

// Growth property (the privacy/QoS trade-off of E5): candidate sets grow
// with the region.
func TestPrivateNNCandidatesGrowWithRegion(t *testing.T) {
	s := newServer(t)
	loadObjects(t, s, 5000, "gas", 8)
	sizes := []float64{0.01, 0.05, 0.1, 0.2}
	prev := 0
	for _, half := range sizes {
		region := geo.RectAround(geo.Pt(0.5, 0.5), half)
		res, err := s.PrivateNN(PrivateNNQuery{Region: region})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Candidates) < prev {
			t.Errorf("candidates shrank when region grew: %d -> %d at half=%v",
				prev, len(res.Candidates), half)
		}
		prev = len(res.Candidates)
	}
	if prev < 4 {
		t.Errorf("largest region produced only %d candidates", prev)
	}
}

func TestDominates(t *testing.T) {
	corners := geo.R(0, 0, 1, 1).Corners()
	// A point inside dominated by... nothing trivially; use collinear setup:
	// b=(2,0.5) vs a=(5,0.5): b is closer to every corner.
	if !dominates(geo.Pt(2, 0.5), geo.Pt(5, 0.5), corners) {
		t.Error("b should dominate a")
	}
	if dominates(geo.Pt(5, 0.5), geo.Pt(2, 0.5), corners) {
		t.Error("a should not dominate b")
	}
	// Equal points never dominate (no strict corner).
	if dominates(geo.Pt(3, 3), geo.Pt(3, 3), corners) {
		t.Error("identical points must not dominate")
	}
	// Opposite sides: neither dominates.
	if dominates(geo.Pt(-1, 0.5), geo.Pt(2, 0.5), corners) ||
		dominates(geo.Pt(2, 0.5), geo.Pt(-1, 0.5), corners) {
		t.Error("objects on opposite sides should not dominate each other")
	}
}

func TestRangeModeString(t *testing.T) {
	if RangeRounded.String() != "rounded" || RangeMBR.String() != "mbr" {
		t.Error("mode strings")
	}
	if RangeMode(9).String() == "" {
		t.Error("unknown mode string")
	}
}

// Property: over random regions the private-NN candidate set always
// contains the brute-force NN of the region's center and corners.
func TestPropPrivateNNContainsKeyPoints(t *testing.T) {
	s := newServer(t)
	objs := loadObjects(t, s, 1500, "gas", 9)
	f := func(cxRaw, cyRaw, wRaw, hRaw uint16) bool {
		cx := 0.1 + 0.8*float64(cxRaw)/65535
		cy := 0.1 + 0.8*float64(cyRaw)/65535
		w := 0.001 + 0.15*float64(wRaw)/65535
		h := 0.001 + 0.15*float64(hRaw)/65535
		region := geo.R(cx, cy, math.Min(cx+w, 1), math.Min(cy+h, 1))
		res, err := s.PrivateNN(PrivateNNQuery{Region: region})
		if err != nil {
			return false
		}
		inCand := map[uint64]bool{}
		for _, c := range res.Candidates {
			inCand[c.ID] = true
		}
		corners := region.Corners()
		probes := append(corners[:], region.Center())
		for _, p := range probes {
			bestD := math.Inf(1)
			var bestID uint64
			for _, o := range objs {
				if d := p.Dist2(o.Loc); d < bestD {
					bestD, bestID = d, o.ID
				}
			}
			if !inCand[bestID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPrivateRange(b *testing.B) {
	s := newServer(b)
	loadObjects(b, s, 10000, "gas", 1)
	q := PrivateRangeQuery{Region: geo.R(0.45, 0.45, 0.55, 0.55), Radius: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PrivateRange(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrivateNN(b *testing.B) {
	s := newServer(b)
	loadObjects(b, s, 10000, "gas", 2)
	q := PrivateNNQuery{Region: geo.R(0.45, 0.45, 0.55, 0.55)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PrivateNN(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPrivateRangeMovingStationaryIDCollision pins the namespace fix in
// resolveObjectLocked: stationary and moving objects have independent id
// spaces, so a moving object whose id collides with a stationary one must
// come back with its own location and no class — not the stationary
// object's metadata. The old lookup consulted the stationary metadata map
// for every hit, so the moving object inherited the stationary record.
func TestPrivateRangeMovingStationaryIDCollision(t *testing.T) {
	s := newServer(t)
	stationaryLoc := geo.Pt(0.2, 0.2)
	movingLoc := geo.Pt(0.8, 0.8)
	if err := s.LoadStationary([]PublicObject{{ID: 7, Class: "gas", Loc: stationaryLoc}}); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateMoving(7, movingLoc); err != nil {
		t.Fatal(err)
	}
	got, err := s.PrivateRange(PrivateRangeQuery{Region: geo.R(0, 0, 1, 1), Radius: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d candidates, want both colliding objects: %+v", len(got), got)
	}
	var sawStationary, sawMoving bool
	for _, o := range got {
		if o.ID != 7 {
			t.Fatalf("unexpected candidate %+v", o)
		}
		switch o.Loc {
		case stationaryLoc:
			sawStationary = true
			if o.Class != "gas" {
				t.Errorf("stationary candidate lost its class: %+v", o)
			}
		case movingLoc:
			sawMoving = true
			if o.Class != "" {
				t.Errorf("moving candidate inherited stationary metadata: %+v", o)
			}
		default:
			t.Errorf("candidate at unexpected location: %+v", o)
		}
	}
	if !sawStationary || !sawMoving {
		t.Errorf("missing candidates: stationary=%v moving=%v", sawStationary, sawMoving)
	}
}
