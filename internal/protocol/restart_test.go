package protocol

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/server"
)

// A rolling restart of the database tier — kill lbsd mid-batch, bring a
// fresh process up from the last snapshot on the same address — must lose
// no updates and violate no user's k. The snapshot restores the users who
// stayed quiet through the outage; the spill queue replays the ones who
// kept moving.
func TestRollingRestartFromSnapshotZeroLoss(t *testing.T) {
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	dbSvc, err := ServeDatabase("127.0.0.1:0", srv, quiet)
	if err != nil {
		t.Fatal(err)
	}
	dbAddr := dbSvc.Addr()

	fwd, err := DialDatabase(dbAddr,
		WithCallTimeout(500*time.Millisecond),
		WithRetries(0), WithBreaker(0, 0),
		WithRetryBackoff(time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	anon, err := anonymizer.New(anonymizer.Config{
		World:            world,
		Forward:          fwd.UpdatePrivate,
		ForwardQueue:     1024,
		ForwardRetryBase: 10 * time.Millisecond,
		ForwardRetryMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anon, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer anonSvc.Close()
	ac, err := DialAnonymizer(anonSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()

	const users = 60
	const k = 10
	prof := privacy.Constant(privacy.Requirement{K: k})
	for id := uint64(1); id <= users; id++ {
		if err := ac.Register(id, prof); err != nil {
			t.Fatal(err)
		}
	}
	pos := func(id uint64, round int) geo.Point {
		return geo.Pt(float64(id)/(users+1), 0.1+0.15*float64(round))
	}
	batch := func(round int, from, to uint64) []cloak.Request {
		reqs := make([]cloak.Request, 0, to-from+1)
		for id := from; id <= to; id++ {
			reqs = append(reqs, cloak.Request{ID: id, Loc: pos(id, round)})
		}
		return reqs
	}

	// Seed: everyone lands in the database through one batch pass.
	res, err := ac.BatchUpdate(batch(0, 1, users))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("seed batch entry %d failed", i)
		}
	}
	poll(t, 5*time.Second, func() bool { return srv.PrivateUserCount() == users }, "seed forwards")

	// k-violation baseline: the seed phase legitimately misses k while the
	// population builds up (the first k-1 users cannot have k neighbors),
	// so violations are measured as the delta from here on.
	kMissedAt := func() float64 {
		s, _ := anon.Registry().Find("anon_cloak_k_missed_total")
		return s.Value
	}
	baseline := kMissedAt()
	snap := filepath.Join(t.TempDir(), "lbsd.snap")
	if err := srv.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	// Only the first half keeps moving; batches flow while the database is
	// killed under them, so some batch is in flight across the kill.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 1; round <= 4; round++ {
			res, err := ac.BatchUpdate(batch(round, 1, users/2))
			if err != nil {
				t.Errorf("batch round %d: %v", round, err)
				return
			}
			for i, r := range res {
				if r == nil {
					t.Errorf("round %d entry %d lost", round, i)
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	time.Sleep(15 * time.Millisecond) // land the kill inside the batch stream
	dbSvc.Close()
	wg.Wait()

	st, err := ac.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Spilled == 0 {
		t.Fatal("no spills recorded — the outage never bit")
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d during the outage, want 0", st.Dropped)
	}

	// Rolling restart: a brand-new server process restores the snapshot
	// and binds the same address. The quiet half of the population must
	// come back from disk, the moving half from the replay queue.
	srv2, err := server.New(server.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.LoadSnapshot(snap); err != nil {
		t.Fatalf("restore from snapshot: %v", err)
	}
	dbSvc2, err := ServeDatabase(dbAddr, srv2, quiet)
	if err != nil {
		t.Fatalf("cannot rebind %s after restart: %v", dbAddr, err)
	}
	defer dbSvc2.Close()
	poll(t, 10*time.Second, func() bool {
		st, err := ac.Stats()
		return err == nil && st.QueueDepth == 0
	}, "spill queue drain into the restarted database")

	if got := srv2.PrivateUserCount(); got != users {
		t.Fatalf("restarted database holds %d users, want %d — updates were lost", got, users)
	}
	final, err := ac.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if final.Dropped != 0 {
		t.Fatalf("Dropped = %d across the restart, want 0", final.Dropped)
	}
	if d := kMissedAt() - baseline; d != 0 {
		t.Fatalf("k missed %v times after seeding — the restart must not cost anonymity", d)
	}
}
