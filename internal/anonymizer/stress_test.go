package anonymizer

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// TestStressShardedInvariants hammers one sharded anonymizer from many
// goroutines — single updates, query cloaks, batches, mode toggles,
// profile churn, registration churn, stats reads — and checks the privacy
// invariants on every result. Each worker owns a disjoint id range, so it
// knows its own users' ground truth (requirement, mode, last cached
// region) without synchronizing with other workers; contention on shards
// and the spatial indices is still real because ids from all workers
// interleave across stripes. Run under -race this is the pipeline's data
// race detector; the invariant checks catch cross-user state bleed that a
// race detector cannot see.
func TestStressShardedInvariants(t *testing.T) {
	const (
		workers   = 8
		perWorker = 40
		opsEach   = 400
	)
	a := newAnon(t, Config{
		Shards:       diffShards(t),
		BatchWorkers: 4,
		Incremental:  true,
	})
	const eps = 1e-12

	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: stats and population snapshots must never block
	// or tear.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := a.Stats()
			if st.Queries > st.Queries+st.Updates { // overflow guard, keeps st used
				t.Error("counter overflow")
			}
			_ = a.Population()
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w)*7919 + 1)
			base := uint64(w*perWorker) + 1
			// Ground truth for owned users.
			k := make(map[uint64]int)
			passive := make(map[uint64]bool)
			lastRegion := make(map[uint64]*geo.Rect) // last single-path cloak, nil after invalidation
			registered := make(map[uint64]bool)
			for i := 0; i < perWorker; i++ {
				id := base + uint64(i)
				kk := 1 + src.Intn(20)
				if err := a.Register(id, privacy.Constant(privacy.Requirement{K: kk})); err != nil {
					t.Errorf("register %d: %v", id, err)
					return
				}
				k[id] = kk
				registered[id] = true
			}
			pick := func() uint64 { return base + uint64(src.Intn(perWorker)) }
			check := func(id uint64, loc geo.Point, res cloak.Result) bool {
				if !res.Region.Contains(loc) {
					t.Errorf("user %d: region %v misses location %v", id, res.Region, loc)
					return false
				}
				if !world.ContainsRect(res.Region) {
					t.Errorf("user %d: region %v leaves the world", id, res.Region)
					return false
				}
				if res.SatisfiedK && res.K < k[id] {
					t.Errorf("user %d: SatisfiedK with K=%d < required %d", id, res.K, k[id])
					return false
				}
				if res.Region.Area() < -eps {
					t.Errorf("user %d: negative area %v", id, res.Region.Area())
					return false
				}
				if res.Reused {
					// A reused region must be this user's own cached region —
					// anything else is cross-user (or cross-shard) cache bleed.
					prev := lastRegion[id]
					if prev == nil {
						t.Errorf("user %d: reuse with no cached region", id)
						return false
					}
					if !res.Region.Eq(*prev) {
						t.Errorf("user %d: reused foreign region %v (own cache %v)", id, res.Region, *prev)
						return false
					}
				}
				return true
			}
			for op := 0; op < opsEach; op++ {
				id := pick()
				loc := geo.Pt(src.Float64(), src.Float64())
				switch c := src.Intn(100); {
				case c < 45: // single update
					res, err := a.Update(id, loc)
					switch {
					case err == nil:
						if !registered[id] || passive[id] {
							t.Errorf("user %d: update succeeded while %v", id,
								map[bool]string{true: "passive", false: "deregistered"}[passive[id]])
							return
						}
						if !check(id, loc, res) {
							return
						}
						r := res.Region
						lastRegion[id] = &r
					case errors.Is(err, ErrPassive):
						if !passive[id] {
							t.Errorf("user %d: spurious ErrPassive", id)
							return
						}
					case errors.Is(err, ErrUnknownUser):
						if registered[id] {
							t.Errorf("user %d: spurious ErrUnknownUser", id)
							return
						}
					default:
						t.Errorf("user %d: update: %v", id, err)
						return
					}
				case c < 60: // query cloak: same invariants
					res, err := a.CloakQuery(id, loc)
					if err == nil {
						if !check(id, loc, res) {
							return
						}
						r := res.Region
						lastRegion[id] = &r
					}
				case c < 80: // batch over a random slice of owned users
					n := 1 + src.Intn(perWorker)
					reqs := make([]cloak.Request, 0, n)
					locs := make(map[uint64]geo.Point, n)
					for j := 0; j < n; j++ {
						bid := pick()
						bloc := geo.Pt(src.Float64(), src.Float64())
						reqs = append(reqs, cloak.Request{ID: bid, Loc: bloc})
						locs[bid] = bloc // later entry wins, like the pipeline
					}
					for i, res := range a.BatchUpdate(reqs) {
						bid := reqs[i].ID
						if res == nil {
							if registered[bid] && !passive[bid] {
								t.Errorf("user %d: batch entry rejected while active", bid)
								return
							}
							continue
						}
						if !check(bid, reqs[i].Loc, *res) {
							return
						}
					}
					_ = locs
				case c < 88: // mode toggle
					want := !passive[id]
					m := privacy.Active
					if want {
						m = privacy.Passive
					}
					if err := a.SetMode(id, m); err == nil {
						passive[id] = want
						if want {
							lastRegion[id] = nil // dropLocation invalidated the cache
						}
					} else if registered[id] {
						t.Errorf("user %d: SetMode: %v", id, err)
						return
					}
				case c < 94: // profile churn
					nk := 1 + src.Intn(20)
					if err := a.UpdateProfile(id, privacy.Constant(privacy.Requirement{K: nk})); err == nil {
						k[id] = nk
						lastRegion[id] = nil
					} else if registered[id] {
						t.Errorf("user %d: UpdateProfile: %v", id, err)
						return
					}
				default: // registration churn
					if registered[id] {
						a.Deregister(id)
						registered[id] = false
						passive[id] = false
						lastRegion[id] = nil
					} else {
						nk := 1 + src.Intn(20)
						if err := a.Register(id, privacy.Constant(privacy.Requirement{K: nk})); err != nil {
							t.Errorf("user %d: re-register: %v", id, err)
							return
						}
						registered[id] = true
						k[id] = nk
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	st := a.Stats()
	if st.Updates == 0 || st.Batches == 0 {
		t.Errorf("stress run exercised nothing: %+v", st)
	}
}
