// Package fixture exercises the privleak taint pass: exact locations
// flowing into wire encodes, logs, and metrics.
package fixture

import (
	"fmt"
	"log"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// exact models the wire-ingress decode of a user's exact location.
//
//lint:source fixture wire ingress
func exact() geo.Point { return geo.Point{X: 1, Y: 2} }

func leakDirect(e *protocol.Encoder) {
	loc := exact()
	e.Point(loc) // want "exact location reaches wire sink Encoder.Point"
}

func leakLog() {
	loc := exact()
	log.Printf("user at %v", loc) // want "reaches log sink log.Printf"
}

func leakMetricLabel(r *obs.Registry) {
	loc := exact()
	cell := fmt.Sprintf("%.0f:%.0f", loc.X, loc.Y)
	r.Counter("fixture_updates_total", "", obs.L("cell", cell)) // want "metrics sink"
}

func leakGauge(g *obs.Gauge) {
	loc := exact()
	g.Set(loc.X) // want "metrics sink Gauge.Set"
}

// wrap launders the value through a helper; the summary must carry the
// taint from parameter to result.
func wrap(p geo.Point) geo.Point { return p }

func leakViaHelper(e *protocol.Encoder) {
	e.Point(wrap(exact())) // want "wire sink Encoder.Point"
}

// encodeAt receives taint from its caller (phase B propagation).
func encodeAt(e *protocol.Encoder, p geo.Point) {
	e.Point(p) // want "wire sink Encoder.Point"
}

func callEncodeAt(e *protocol.Encoder) {
	encodeAt(e, exact())
}

// record models per-user anonymizer state via a params= source.
//
//lint:source params=loc fixture per-user state
func record(id uint64, loc geo.Point) {
	log.Printf("id %d at %v", id, loc) // want "reaches log sink"
}

func leakGoroutine() {
	loc := exact()
	go func() {
		log.Println(loc) // want "reaches log sink log.Println"
	}()
}

func leakStruct(e *protocol.Encoder) {
	type update struct {
		ID  uint64
		Loc geo.Point
	}
	u := update{ID: 7, Loc: exact()}
	e.F64(u.Loc.X) // want "wire sink Encoder.F64"
}

func emptyJustification(e *protocol.Encoder) {
	r := cloak(exact()) //lint:sanitized
	// want "requires a justification"
	e.Rect(r)
}

func cloak(p geo.Point) geo.Rect {
	return geo.R(p.X-1, p.Y-1, p.X+1, p.Y+1)
}
