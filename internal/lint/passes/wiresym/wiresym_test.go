package wiresym_test

import (
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/loader"
	"repro/internal/lint/passes/wiresym"
)

func TestSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	linttest.Run(t, "testdata/src/surface", wiresym.Analyzer)
}

func TestClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	linttest.Run(t, "testdata/src/clean", wiresym.Analyzer)
}

// TestCensusMatchesWire diffs the pass's AST census of the production
// wire package against the type-checker's view of the same package: the
// set of exported Msg* byte constants. A census that drops or invents a
// constant would silently shrink the proof surface, so the two
// enumerations must agree exactly.
func TestCensusMatchesWire(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the wire package")
	}
	_, self, _, _ := runtime.Caller(0)
	root := filepath.Clean(filepath.Join(filepath.Dir(self), "..", "..", "..", ".."))
	prog, err := loader.Load(root, "./internal/protocol")
	if err != nil {
		t.Fatalf("loading internal/protocol: %v", err)
	}
	pkg := prog.Lookup("repro/internal/protocol")
	if pkg == nil {
		t.Fatal("repro/internal/protocol not in loaded program")
	}

	census := wiresym.Census(pkg.Info, pkg.Files)
	got := make([]string, 0, len(census))
	seen := make(map[string]bool)
	for _, c := range census {
		if seen[c.Name] {
			t.Errorf("census lists %s twice", c.Name)
		}
		seen[c.Name] = true
		got = append(got, c.Name)
	}
	sort.Strings(got)

	var want []string
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Msg") || !obj.Exported() {
			continue
		}
		if b, ok := obj.Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Uint8 {
			continue
		}
		want = append(want, name)
	}
	sort.Strings(want)

	if len(want) == 0 {
		t.Fatal("no exported Msg* byte constants in internal/protocol: the census has nothing to prove")
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("census/type-checker disagreement:\n census: %v\n  scope: %v", got, want)
	}
}
