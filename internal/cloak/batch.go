package cloak

import (
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/pyramid"
)

// Request is one user's cloaking request in a batch.
type Request struct {
	ID  uint64
	Loc geo.Point
	Req privacy.Requirement
}

// BatchQuadtree performs the Section 5.3 shared execution over the
// space-dependent quadtree cloaker: users that fall into the same bottom
// pyramid cell with the same requirement share one descent. In a typical
// workload the number of distinct (cell, requirement) pairs is far smaller
// than the number of users, so one pass serves everybody.
type BatchQuadtree struct {
	Pyr *pyramid.Pyramid
}

// batchKey identifies a shareable unit of work.
type batchKey struct {
	cell pyramid.Cell
	req  privacy.Requirement
}

// CloakAll cloaks every request, sharing computation between users in the
// same bottom cell with the same requirement. Results are returned in
// request order. SharedHits reports how many requests were served from a
// previously computed descent in this batch.
//
//lint:hotpath allocs=1
func (b *BatchQuadtree) CloakAll(reqs []Request) (results []Result, sharedHits int) {
	results = make([]Result, len(reqs))
	memo := make(map[batchKey]Result, len(reqs)/2+1)
	q := &Quadtree{Pyr: b.Pyr}
	bottom := b.Pyr.Height() - 1
	for i, r := range reqs {
		key := batchKey{cell: b.Pyr.CellAt(bottom, r.Loc), req: r.Req}
		if res, ok := memo[key]; ok {
			results[i] = res
			sharedHits++
			continue
		}
		res := q.Cloak(r.ID, r.Loc, r.Req)
		memo[key] = res
		results[i] = res
	}
	return results, sharedHits
}

// CloakAllParallel is CloakAll with the distinct descents fanned out over a
// worker pool. The per-batch shared-descent memo is preserved globally:
// the requests are first grouped by (bottom cell, requirement) in input
// order, then exactly one descent per distinct key runs on the pool, and
// every request is answered from its key's descent. Because a descent is a
// pure read of the pyramid and ignores the requesting user's identity, the
// results — and the shared-hit count, len(reqs) − distinct keys — are
// bit-identical to the sequential CloakAll. The pyramid must not be
// mutated while the call runs (the anonymizer holds its index read lock).
//
//lint:hotpath allocs=7
func (b *BatchQuadtree) CloakAllParallel(reqs []Request, workers int) (results []Result, sharedHits int) {
	if workers <= 1 {
		return b.CloakAll(reqs)
	}
	results = make([]Result, len(reqs))
	bottom := b.Pyr.Height() - 1
	index := make(map[batchKey]int, len(reqs)/2+1)
	keyOf := make([]int, len(reqs))
	var firsts []Request // first request of each distinct key, in input order
	for i, r := range reqs {
		key := batchKey{cell: b.Pyr.CellAt(bottom, r.Loc), req: r.Req}
		j, ok := index[key]
		if !ok {
			j = len(firsts)
			index[key] = j
			firsts = append(firsts, r)
		}
		keyOf[i] = j
	}
	shared := make([]Result, len(firsts))
	if workers > len(firsts) {
		workers = len(firsts)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			q := &Quadtree{Pyr: b.Pyr}
			for {
				j := int(next.Add(1)) - 1
				if j >= len(shared) {
					return
				}
				r := firsts[j]
				shared[j] = q.Cloak(r.ID, r.Loc, r.Req)
			}
		}()
	}
	wg.Wait()
	for i := range reqs {
		results[i] = shared[keyOf[i]]
	}
	return results, len(reqs) - len(firsts)
}
