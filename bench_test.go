package repro

// One benchmark per experiment in EXPERIMENTS.md (E1–E11) plus the
// ablations called out in DESIGN.md §6. `go test -bench=. -benchmem`
// regenerates the performance side of every table; cmd/lbsbench prints the
// accuracy/leakage side.

import (
	"testing"

	"repro/internal/anonymizer"
	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/prob"
	"repro/internal/protocol"
	"repro/internal/pyramid"
	"repro/internal/rng"
	"repro/internal/server"
)

var world = geo.R(0, 0, 1, 1)

func benchPoints(b *testing.B, n int, seed uint64) []geo.Point {
	b.Helper()
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: n, World: world, Dist: mobility.Uniform, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return pts
}

func benchIndexes(b *testing.B, n int, height int) (cloak.GridPopulation, *pyramid.Pyramid, []geo.Point) {
	b.Helper()
	pts := benchPoints(b, n, 1)
	gi, err := grid.New(world, 64, 64)
	if err != nil {
		b.Fatal(err)
	}
	pyr, err := pyramid.New(world, height)
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range pts {
		gi.Upsert(uint64(i+1), p)
		if err := pyr.Insert(uint64(i+1), p); err != nil {
			b.Fatal(err)
		}
	}
	return cloak.GridPopulation{Index: gi}, pyr, pts
}

// --- E1: profile resolution ---

func BenchmarkE1ProfileLookup(b *testing.B) {
	p := privacy.PaperExample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.AtMinute(i % 1440); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2/E3: cloaking algorithms ---

func benchCloaker(b *testing.B, mk func(pop cloak.GridPopulation, pyr *pyramid.Pyramid) cloak.Cloaker) {
	for _, k := range []int{10, 100} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			pop, pyr, pts := benchIndexes(b, 10000, 10)
			c := mk(pop, pyr)
			req := privacy.Requirement{K: k}
			src := rng.New(7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := uint64(src.Intn(len(pts))) + 1
				c.Cloak(id, pts[id-1], req)
			}
		})
	}
}

func BenchmarkE2CloakNaive(b *testing.B) {
	benchCloaker(b, func(pop cloak.GridPopulation, _ *pyramid.Pyramid) cloak.Cloaker {
		return &cloak.Naive{Pop: pop}
	})
}

func BenchmarkE2CloakMBR(b *testing.B) {
	benchCloaker(b, func(pop cloak.GridPopulation, _ *pyramid.Pyramid) cloak.Cloaker {
		return &cloak.MBR{Pop: pop}
	})
}

func BenchmarkE3CloakQuadtree(b *testing.B) {
	benchCloaker(b, func(_ cloak.GridPopulation, pyr *pyramid.Pyramid) cloak.Cloaker {
		return &cloak.Quadtree{Pyr: pyr}
	})
}

func BenchmarkE3CloakGrid(b *testing.B) {
	benchCloaker(b, func(_ cloak.GridPopulation, pyr *pyramid.Pyramid) cloak.Cloaker {
		return &cloak.Grid{Pyr: pyr, Level: 6}
	})
}

func BenchmarkE3CloakGridMultiLevel(b *testing.B) {
	benchCloaker(b, func(_ cloak.GridPopulation, pyr *pyramid.Pyramid) cloak.Cloaker {
		return &cloak.Grid{Pyr: pyr, Level: 4, MultiLevel: true}
	})
}

// --- E4/E5: private queries over public data ---

func benchPrivateServer(b *testing.B, nObjs int) (*server.Server, []geo.Rect) {
	b.Helper()
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		b.Fatal(err)
	}
	pts := benchPoints(b, nObjs, 2)
	objs := make([]server.PublicObject, len(pts))
	for i, p := range pts {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "gas", Loc: p}
	}
	if err := srv.LoadStationary(objs); err != nil {
		b.Fatal(err)
	}
	// Query regions from a quadtree cloaker at k=50.
	_, pyr, userPts := benchIndexes(b, 10000, 10)
	q := &cloak.Quadtree{Pyr: pyr}
	regions := make([]geo.Rect, 200)
	for i := range regions {
		uid := uint64(i*37 + 1)
		regions[i] = q.Cloak(uid, userPts[uid-1], privacy.Requirement{K: 50}).Region
	}
	return srv, regions
}

func BenchmarkE4PrivateRange(b *testing.B) {
	srv, regions := benchPrivateServer(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := server.PrivateRangeQuery{Region: regions[i%len(regions)], Radius: 0.05}
		if _, err := srv.PrivateRange(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4PrivateRangeMBRMode(b *testing.B) {
	srv, regions := benchPrivateServer(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := server.PrivateRangeQuery{
			Region: regions[i%len(regions)], Radius: 0.05, Mode: server.RangeMBR,
		}
		if _, err := srv.PrivateRange(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5PrivateNN(b *testing.B) {
	srv, regions := benchPrivateServer(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := server.PrivateNNQuery{Region: regions[i%len(regions)]}
		if _, err := srv.PrivateNN(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6/E7: public queries over private data ---

func benchCloakedServer(b *testing.B, n, k int) *server.Server {
	b.Helper()
	_, pyr, pts := benchIndexes(b, n, 10)
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		b.Fatal(err)
	}
	q := &cloak.Quadtree{Pyr: pyr}
	for i, loc := range pts {
		res := q.Cloak(uint64(i+1), loc, privacy.Requirement{K: k})
		if err := srv.UpdatePrivate(uint64(i+1), res.Region); err != nil {
			b.Fatal(err)
		}
	}
	return srv
}

func BenchmarkE6PublicRangeCount(b *testing.B) {
	srv := benchCloakedServer(b, 10000, 50)
	q := server.PublicRangeCountQuery{Query: geo.R(0.4, 0.4, 0.6, 0.6)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.PublicRangeCount(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7PublicNN(b *testing.B) {
	srv := benchCloakedServer(b, 10000, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := server.PublicNNQuery{From: geo.Pt(0.5, 0.5), Samples: 1000, Seed: uint64(i + 1)}
		if _, err := srv.PublicNN(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8/E9: incremental and shared execution ---

func benchAnonUpdates(b *testing.B, alg anonymizer.Algorithm, incremental bool) {
	anon, err := anonymizer.New(anonymizer.Config{
		World: world, Algorithm: alg, Incremental: incremental,
	})
	if err != nil {
		b.Fatal(err)
	}
	pts := benchPoints(b, 10000, 3)
	prof := privacy.Constant(privacy.Requirement{K: 50})
	for i, p := range pts {
		anon.Register(uint64(i+1), prof)
		if _, err := anon.Update(uint64(i+1), p); err != nil {
			b.Fatal(err)
		}
	}
	src := rng.New(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(src.Intn(len(pts))) + 1
		// Micro-movement, the steady-state update pattern.
		p := world.ClampPoint(geo.Pt(
			pts[id-1].X+src.Range(-0.001, 0.001),
			pts[id-1].Y+src.Range(-0.001, 0.001),
		))
		if _, err := anon.Update(id, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8RecomputeQuadtree(b *testing.B) {
	benchAnonUpdates(b, anonymizer.AlgQuadtree, false)
}

func BenchmarkE8IncrementalQuadtree(b *testing.B) {
	benchAnonUpdates(b, anonymizer.AlgQuadtree, true)
}

func BenchmarkE8RecomputeNaive(b *testing.B) {
	benchAnonUpdates(b, anonymizer.AlgNaive, false)
}

func BenchmarkE8IncrementalNaive(b *testing.B) {
	benchAnonUpdates(b, anonymizer.AlgNaive, true)
}

func BenchmarkE9SharedCloak(b *testing.B) {
	_, pyr, pts := benchIndexes(b, 10000, 7)
	bq := &cloak.BatchQuadtree{Pyr: pyr}
	reqs := make([]cloak.Request, len(pts))
	for i, loc := range pts {
		reqs[i] = cloak.Request{ID: uint64(i + 1), Loc: loc, Req: privacy.Requirement{K: 50}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bq.CloakAll(reqs)
	}
}

func BenchmarkE9ContinuousQueries(b *testing.B) {
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(9)
	for i := 0; i < 100; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		if _, err := srv.RegisterContinuousCount(geo.RectAround(c, 0.05).Clip(world)); err != nil {
			b.Fatal(err)
		}
	}
	pts := benchPoints(b, 10000, 4)
	for i, p := range pts {
		srv.UpdatePrivate(uint64(i+1), geo.RectAround(p, 0.02).Clip(world))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i%len(pts)) + 1
		srv.UpdatePrivate(id, geo.RectAround(pts[id-1], 0.02).Clip(world))
	}
}

// --- E11: networked three-tier deployment ---

func BenchmarkE11EndToEndUpdate(b *testing.B) {
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		b.Fatal(err)
	}
	quiet := func(string, ...interface{}) {}
	dbSvc, err := protocol.ServeDatabase("127.0.0.1:0", srv, quiet)
	if err != nil {
		b.Fatal(err)
	}
	defer dbSvc.Close()
	fwd, err := protocol.DialDatabase(dbSvc.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer fwd.Close()
	anon, err := anonymizer.New(anonymizer.Config{World: world, Forward: fwd.UpdatePrivate})
	if err != nil {
		b.Fatal(err)
	}
	anonSvc, err := protocol.ServeAnonymizer("127.0.0.1:0", anon, quiet)
	if err != nil {
		b.Fatal(err)
	}
	defer anonSvc.Close()
	user, err := protocol.DialAnonymizer(anonSvc.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer user.Close()

	pts := benchPoints(b, 1000, 5)
	prof := privacy.Constant(privacy.Requirement{K: 10})
	for i, p := range pts {
		user.Register(uint64(i+1), prof)
		if _, err := user.Update(uint64(i+1), p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i%len(pts)) + 1
		if _, err := user.Update(id, pts[id-1]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

func BenchmarkAblationPyramidDepth(b *testing.B) {
	for _, h := range []int{6, 8, 10, 12} {
		b.Run("height="+itoa(h), func(b *testing.B) {
			_, pyr, pts := benchIndexes(b, 10000, h)
			q := &cloak.Quadtree{Pyr: pyr}
			req := privacy.Requirement{K: 50}
			src := rng.New(11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := uint64(src.Intn(len(pts))) + 1
				q.Cloak(id, pts[id-1], req)
			}
		})
	}
}

func BenchmarkAblationPDFExactDP(b *testing.B) {
	probs := make([]float64, 200)
	src := rng.New(13)
	for i := range probs {
		probs[i] = src.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prob.PoissonBinomial(probs)
	}
}

func BenchmarkAblationNNMonteCarlo(b *testing.B) {
	for _, samples := range []int{100, 1000, 10000} {
		b.Run("samples="+itoa(samples), func(b *testing.B) {
			cands := make([]prob.Candidate, 30)
			src := rng.New(17)
			for i := range cands {
				c := geo.Pt(src.Float64(), src.Float64())
				cands[i] = prob.Candidate{ID: uint64(i + 1), Region: geo.RectAround(c, 0.05).Clip(world)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prob.NNProbabilities(geo.Pt(0.5, 0.5), cands, samples, uint64(i+1))
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
