package protocol

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Idempotent reports whether a message type may be safely retried after a
// transport failure. Location updates and region forwards are upserts,
// mode/deregister changes converge to the same state, and reads have no
// side effects — all safe to replay. Registration (duplicate-user error),
// continuous-query registration (allocates a fresh id per call) and
// stationary bulk loads (append semantics) are not.
func Idempotent(typ byte) bool {
	switch typ {
	case MsgUpdate, MsgCloakQuery, MsgBatchUpdate, MsgDeregister, MsgSetMode, MsgAnonStats,
		MsgUpdateProfile, MsgUpdatePrivate, MsgRemovePrivate, MsgUpdateMoving, MsgStats,
		MsgPrivateRange, MsgPrivateNN, MsgPublicCount, MsgPublicNN, MsgContCount,
		MsgBatchQuery, MsgMetrics, MsgTraces, MsgTraceNeg,
		MsgRemoveMoving, MsgNNParts, MsgCountProbs, MsgShardMap, MsgShardBatch:
		return true
	}
	return false
}

// Circuit-breaker states, also the values of the proto_breaker_state gauge.
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// ErrBreakerOpen is returned without touching the network while the
// client's circuit breaker is open: the peer failed repeatedly and the
// cooldown has not elapsed, so the call is shed immediately instead of
// burning a connect timeout per request.
var ErrBreakerOpen = errors.New("protocol: circuit breaker open")

// dialConfig is the resolved client configuration.
type dialConfig struct {
	callTimeout      time.Duration
	retries          int
	backoffBase      time.Duration
	backoffMax       time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	lazy             bool
	seed             uint64
	dial             func(addr string) (net.Conn, error)
	reg              *obs.Registry
	tracer           *trace.Tracer
}

func defaultDialConfig() dialConfig {
	return dialConfig{
		retries:          2,
		backoffBase:      20 * time.Millisecond,
		backoffMax:       1 * time.Second,
		breakerThreshold: 8,
		breakerCooldown:  1 * time.Second,
		seed:             1,
	}
}

// DialOption configures a Client.
type DialOption func(*dialConfig)

// WithCallTimeout bounds every request round trip (write + read). Zero
// means no deadline. A context deadline on CallCtx tightens it further.
func WithCallTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.callTimeout = d }
}

// WithRetries sets how many times an idempotent call is retried after a
// transport failure (0 disables retries; the default is 2).
func WithRetries(n int) DialOption {
	return func(c *dialConfig) { c.retries = n }
}

// WithRetryBackoff sets the exponential reconnect backoff: the nth retry
// waits base·2ⁿ⁻¹ (capped at max) with ±50% deterministic jitter.
func WithRetryBackoff(base, max time.Duration) DialOption {
	return func(c *dialConfig) { c.backoffBase, c.backoffMax = base, max }
}

// WithBreaker configures the circuit breaker: threshold consecutive
// transport failures open it, cooldown later it half-opens and admits one
// probe. threshold ≤ 0 disables the breaker.
func WithBreaker(threshold int, cooldown time.Duration) DialOption {
	return func(c *dialConfig) { c.breakerThreshold, c.breakerCooldown = threshold, cooldown }
}

// WithLazyDial makes Dial succeed even when the peer is down; the first
// Call connects (or fails). Daemons use it so a dependency being briefly
// away at startup is survivable instead of fatal.
func WithLazyDial() DialOption {
	return func(c *dialConfig) { c.lazy = true }
}

// WithDialer substitutes the transport constructor — the hook fault
// injection uses to hand the client doomed connections.
func WithDialer(dial func(addr string) (net.Conn, error)) DialOption {
	return func(c *dialConfig) { c.dial = dial }
}

// WithClientMetrics registers the client's proto_* series (retries,
// timeouts, reconnects, breaker state) in reg.
func WithClientMetrics(reg *obs.Registry) DialOption {
	return func(c *dialConfig) {
		if reg != nil {
			c.reg = reg
		}
	}
}

// WithClientTracing enables distributed tracing on the client: a trace is
// adopted from the call context (or minted here, at the edge, subject to
// the tracer's sampling rate), call/retry/backoff spans are recorded in
// the tracer's ring, and — once the peer answers the tracing negotiation
// probe — requests are wrapped in the MsgTraced envelope so the trace
// continues across the wire. Peers that never negotiated are spoken to
// in the plain protocol, unchanged.
func WithClientTracing(t *trace.Tracer) DialOption {
	return func(c *dialConfig) { c.tracer = t }
}

// WithJitterSeed seeds the backoff jitter stream, making retry schedules
// reproducible in tests.
func WithJitterSeed(seed uint64) DialOption {
	return func(c *dialConfig) { c.seed = seed }
}

// clientMetrics holds the client side's registered obs series.
type clientMetrics struct {
	retries      *obs.Counter
	timeouts     *obs.Counter
	reconnects   *obs.Counter
	breakerState *obs.Gauge
	breakerOpens *obs.Counter
	shed         *obs.Counter
	overloaded   *obs.Counter
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	return &clientMetrics{
		retries:      reg.Counter("proto_retries_total", "Idempotent calls retried after a transport failure."),
		timeouts:     reg.Counter("proto_call_timeouts_total", "Calls that hit the per-call deadline."),
		reconnects:   reg.Counter("proto_reconnects_total", "Connections re-established after a drop."),
		breakerState: reg.Gauge("proto_breaker_state", "Circuit breaker state: 0 closed, 1 half-open, 2 open."),
		breakerOpens: reg.Counter("proto_breaker_opens_total", "Transitions of the circuit breaker to open."),
		shed:         reg.Counter("proto_breaker_rejected_total", "Calls shed immediately while the breaker was open."),
		overloaded:   reg.Counter("proto_overloaded_total", "Calls answered MsgOverloaded by the peer's admission control."),
	}
}

// Client is a synchronous framed request/response TCP client. It is safe
// for concurrent use; requests are serialized over one connection. On
// transport failures it reconnects with exponential backoff and jitter,
// retries idempotent calls a bounded number of times, and sheds load
// through a circuit breaker while the peer stays down.
type Client struct {
	addr string
	cfg  dialConfig
	met  *clientMetrics

	mu        sync.Mutex
	conn      net.Conn
	src       *rng.Source
	connected bool // a connection existed before (distinguishes reconnects)
	traceOK   bool // current connection's peer negotiated tracing
	fails     int  // consecutive transport failures
	state     int
	openUntil time.Time
}

// Dial connects to a Service with default fault tolerance (2 retries for
// idempotent calls, breaker at 8 consecutive failures). It fails fast when
// the peer is unreachable; see WithLazyDial.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	cfg := defaultDialConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	c := &Client{
		addr: addr,
		cfg:  cfg,
		met:  newClientMetrics(cfg.reg),
		src:  rng.New(cfg.seed),
	}
	if !cfg.lazy {
		c.mu.Lock()
		err := c.connectLocked()
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// connectLocked (re)establishes the connection; c.mu must be held.
func (c *Client) connectLocked() error {
	dial := c.cfg.dial
	if dial == nil {
		timeout := c.cfg.callTimeout
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		dial = func(addr string) (net.Conn, error) { return net.DialTimeout("tcp", addr, timeout) }
	}
	conn, err := dial(c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.traceOK = false
	if c.connected {
		c.met.reconnects.Inc()
	}
	c.connected = true
	if c.cfg.tracer != nil {
		if err := c.negotiateTraceLocked(); err != nil {
			c.dropConnLocked()
			return err
		}
	}
	return nil
}

// negotiateTraceLocked probes the fresh connection with MsgTraceNeg. A
// trace-aware peer answers OK and subsequent requests are wrapped in the
// MsgTraced envelope; a legacy peer answers its usual unknown-type error
// frame — a clean, stream-synchronized "no" — and the connection keeps
// speaking the plain protocol. Only a transport failure is an error.
func (c *Client) negotiateTraceLocked() error {
	timeout := c.cfg.callTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c.conn.SetDeadline(time.Now().Add(timeout))
	defer c.conn.SetDeadline(time.Time{})
	if err := WriteFrame(c.conn, MsgTraceNeg, nil); err != nil {
		return c.classify(err)
	}
	rtyp, _, err := ReadFrame(c.conn)
	if err != nil {
		return c.classify(err)
	}
	c.traceOK = rtyp == msgOK
	return nil
}

// dropConnLocked discards a connection whose stream state is unknown.
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.traceOK = false
}

func (c *Client) setStateLocked(state int) {
	if c.state == state {
		return
	}
	c.state = state
	c.met.breakerState.Set(float64(state))
	if state == breakerOpen {
		c.met.breakerOpens.Inc()
	}
}

// breakerAdmitLocked gates a call on the breaker state.
func (c *Client) breakerAdmitLocked() error {
	if c.cfg.breakerThreshold <= 0 {
		return nil
	}
	if c.state == breakerOpen {
		if time.Now().Before(c.openUntil) {
			c.met.shed.Inc()
			return ErrBreakerOpen
		}
		c.setStateLocked(breakerHalfOpen) // cooldown over: admit one probe
	}
	return nil
}

// breakerFailLocked records a transport failure; true means the breaker
// just opened and remaining retries should be abandoned.
func (c *Client) breakerFailLocked() bool {
	if c.cfg.breakerThreshold <= 0 {
		return false
	}
	c.fails++
	if c.state == breakerHalfOpen || c.fails >= c.cfg.breakerThreshold {
		c.setStateLocked(breakerOpen)
		c.openUntil = time.Now().Add(c.cfg.breakerCooldown)
		return true
	}
	return false
}

func (c *Client) breakerSuccessLocked() {
	c.fails = 0
	c.setStateLocked(breakerClosed)
}

// sleepBackoff waits base·2ⁿ⁻¹ (capped) with ±50% jitter before retry n,
// respecting context cancellation. Called with c.mu held — calls are
// serialized by design, so the wait blocks only this client.
func (c *Client) sleepBackoff(ctx context.Context, n int) error {
	d := c.cfg.backoffBase << (n - 1)
	if d > c.cfg.backoffMax || d <= 0 {
		d = c.cfg.backoffMax
	}
	// Jitter in [d/2, 3d/2): desynchronizes retry storms across clients.
	d = d/2 + time.Duration(c.src.Float64()*float64(d))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// ErrRemote wraps an error string returned by the peer.
var ErrRemote = errors.New("protocol: remote error")

// Call sends one request and waits for its response payload.
func (c *Client) Call(typ byte, payload []byte) ([]byte, error) {
	return c.CallCtx(context.Background(), typ, payload)
}

// CallCtx sends one request under a context. The effective deadline is the
// tighter of the context's and the configured per-call timeout. Transport
// failures on idempotent message types are retried (reconnecting as
// needed) up to the configured budget; remote handler errors are returned
// as-is and never retried.
func (c *Client) CallCtx(ctx context.Context, typ byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.breakerAdmitLocked(); err != nil {
		return nil, err
	}
	// Tracing: adopt the caller's trace from ctx, or — this being the edge
	// — mint a fresh root here, subject to the tracer's sampling rate. The
	// tracing control messages themselves are never traced.
	if c.cfg.tracer != nil && typ != MsgTraces && typ != MsgTraceNeg {
		if _, ok := trace.FromContext(ctx); !ok {
			root := c.cfg.tracer.StartRoot("proto_request")
			if root.Recording() {
				root.SetAttrs(trace.Str("type", MessageName(typ)))
				ctx = trace.NewContext(ctx, root.Context())
				defer root.End()
			}
		}
	}
	attempts := 1
	if Idempotent(typ) {
		attempts += c.cfg.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.met.retries.Inc()
			bsp, _ := trace.Start(ctx, c.cfg.tracer, "proto_backoff")
			bsp.SetAttrs(trace.Int("attempt", int64(attempt)))
			err := c.sleepBackoff(ctx, attempt)
			bsp.End()
			if err != nil {
				return nil, err
			}
		}
		resp, err := c.callOnceLocked(ctx, typ, payload, attempt)
		if err == nil || errors.Is(err, ErrRemote) || errors.Is(err, ErrOverloaded) {
			// The wire worked end to end; whatever the handler said is the
			// answer. An overload rejection is the peer protecting itself,
			// not a transport failure — retrying immediately would feed the
			// very overload that shed us, so it surfaces to the caller.
			c.breakerSuccessLocked()
			return resp, err
		}
		lastErr = err
		c.dropConnLocked()
		if c.breakerFailLocked() {
			break // peer is down: shed instead of burning the retry budget
		}
	}
	return nil, lastErr
}

// callOnceLocked performs one request/response exchange on the current
// connection, establishing it first if needed. When the call is traced
// and the peer negotiated tracing, the frame goes out wrapped in the
// MsgTraced envelope with this attempt's span as the remote parent.
func (c *Client) callOnceLocked(ctx context.Context, typ byte, payload []byte, attempt int) ([]byte, error) {
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			return nil, err
		}
	}
	wireTyp, wirePayload := typ, payload
	sp, _ := trace.Start(ctx, c.cfg.tracer, "proto_call")
	if sp.Recording() {
		sp.SetAttrs(trace.Str("type", MessageName(typ)), trace.Int("attempt", int64(attempt)))
		defer sp.End()
		if c.traceOK && typ != MsgTraces && typ != MsgTraceNeg {
			wireTyp = MsgTraced
			wirePayload = encodeTraced(sp.Context(), typ, payload)
		}
	}
	deadline, hasDeadline := ctx.Deadline()
	if c.cfg.callTimeout > 0 {
		if d := time.Now().Add(c.cfg.callTimeout); !hasDeadline || d.Before(deadline) {
			deadline = d
		}
		hasDeadline = true
	}
	if hasDeadline {
		c.conn.SetDeadline(deadline)
		defer func() {
			if c.conn != nil {
				c.conn.SetDeadline(time.Time{})
			}
		}()
	}
	if err := WriteFrame(c.conn, wireTyp, wirePayload); err != nil {
		return nil, c.classify(err)
	}
	rtyp, resp, err := ReadFrame(c.conn)
	if err != nil {
		return nil, c.classify(err)
	}
	switch rtyp {
	case msgOK:
		return resp, nil
	case msgErr:
		d := NewDecoder(resp)
		msg := d.Str()
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	case MsgOverloaded:
		d := NewDecoder(resp)
		msg := d.Str()
		c.met.overloaded.Inc()
		return nil, fmt.Errorf("%w: %s", ErrOverloaded, msg)
	default:
		// Protocol violation: the stream is desynchronized, treat as a
		// transport failure so the connection is torn down and retried.
		return nil, fmt.Errorf("protocol: unexpected response type %d", rtyp)
	}
}

// classify counts deadline hits before passing the error through.
func (c *Client) classify(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.met.timeouts.Inc()
	}
	return err
}

// BreakerState returns the current circuit-breaker state as the
// proto_breaker_state gauge encodes it: 0 closed, 1 half-open, 2 open.
func (c *Client) BreakerState() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
