package server

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

func TestContinuousCountLifecycle(t *testing.T) {
	s := newServer(t)
	q := geo.R(0.2, 0.2, 0.6, 0.6)
	id, err := s.RegisterContinuousCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.ContinuousQueryCount() != 1 {
		t.Error("query count")
	}
	ans, ok := s.ContinuousCount(id)
	if !ok || ans.Expected != 0 || ans.Hi != 0 {
		t.Errorf("initial answer = %+v, %v", ans, ok)
	}
	if !s.UnregisterContinuousCount(id) || s.UnregisterContinuousCount(id) {
		t.Error("unregister misbehaved")
	}
	if _, ok := s.ContinuousCount(id); ok {
		t.Error("answer after unregister")
	}
	if _, err := s.RegisterContinuousCount(geo.Rect{Min: geo.Pt(1, 1)}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestContinuousCountSeesExistingUsers(t *testing.T) {
	s := newServer(t)
	if err := s.UpdatePrivate(1, geo.R(0.3, 0.3, 0.4, 0.4)); err != nil {
		t.Fatal(err)
	}
	id, err := s.RegisterContinuousCount(geo.R(0.2, 0.2, 0.6, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	ans, _ := s.ContinuousCount(id)
	if ans.Expected != 1 || ans.Lo != 1 || ans.Hi != 1 {
		t.Errorf("answer = %+v, want certain 1", ans)
	}
}

func TestContinuousCountTracksUpdates(t *testing.T) {
	s := newServer(t)
	query := geo.R(0.0, 0.0, 0.5, 0.5)
	id, _ := s.RegisterContinuousCount(query)

	// Enter fully.
	s.UpdatePrivate(1, geo.R(0.1, 0.1, 0.2, 0.2))
	ans, _ := s.ContinuousCount(id)
	if ans.Expected != 1 || ans.Lo != 1 || ans.Hi != 1 {
		t.Fatalf("after enter: %+v", ans)
	}
	// Move to straddle: 50% overlap.
	s.UpdatePrivate(1, geo.R(0.4, 0.1, 0.6, 0.2))
	ans, _ = s.ContinuousCount(id)
	if math.Abs(ans.Expected-0.5) > 1e-9 || ans.Lo != 0 || ans.Hi != 1 {
		t.Fatalf("after straddle: %+v", ans)
	}
	// Leave entirely.
	s.UpdatePrivate(1, geo.R(0.7, 0.7, 0.8, 0.8))
	ans, _ = s.ContinuousCount(id)
	if ans.Expected != 0 || ans.Hi != 0 {
		t.Fatalf("after leave: %+v", ans)
	}
	// Come back and deregister.
	s.UpdatePrivate(1, geo.R(0.1, 0.1, 0.2, 0.2))
	s.RemovePrivate(1)
	ans, _ = s.ContinuousCount(id)
	if ans.Expected != 0 || ans.Hi != 0 {
		t.Fatalf("after remove: %+v", ans)
	}
}

// The maintained answer must always equal a from-scratch evaluation —
// incremental ≡ recompute, the continuous-query analogue of invariant I10.
func TestContinuousMatchesSnapshotUnderChurn(t *testing.T) {
	s := newServer(t)
	queries := []geo.Rect{
		geo.R(0, 0, 0.5, 0.5),
		geo.R(0.25, 0.25, 0.75, 0.75),
		geo.R(0.6, 0.1, 0.9, 0.9),
	}
	ids := make([]uint64, len(queries))
	for i, q := range queries {
		id, err := s.RegisterContinuousCount(q)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	src := rng.New(31)
	for step := 0; step < 2000; step++ {
		uid := uint64(src.Intn(50)) + 1
		if src.Float64() < 0.1 {
			s.RemovePrivate(uid)
		} else {
			c := geo.Pt(src.Float64(), src.Float64())
			half := 0.01 + 0.1*src.Float64()
			s.UpdatePrivate(uid, geo.RectAround(c, half).Clip(world))
		}
		if step%200 != 0 {
			continue
		}
		for i, q := range queries {
			inc, _ := s.ContinuousCount(ids[i])
			fresh, err := s.PublicRangeCount(PublicRangeCountQuery{Query: q})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(inc.Expected-fresh.Answer.Expected) > 1e-6 {
				t.Fatalf("step %d query %d: incremental E=%v fresh E=%v",
					step, i, inc.Expected, fresh.Answer.Expected)
			}
			if inc.Lo != fresh.Answer.Lo || inc.Hi != fresh.Answer.Hi {
				t.Fatalf("step %d query %d: incremental [%d,%d] fresh [%d,%d]",
					step, i, inc.Lo, inc.Hi, fresh.Answer.Lo, fresh.Answer.Hi)
			}
		}
	}
}

func TestContinuousCountPDF(t *testing.T) {
	s := newServer(t)
	id, _ := s.RegisterContinuousCount(geo.R(0, 0, 0.5, 0.5))
	s.UpdatePrivate(1, geo.R(0.1, 0.1, 0.2, 0.2)) // p=1
	s.UpdatePrivate(2, geo.R(0.4, 0.1, 0.6, 0.2)) // p=0.5
	ans, ok := s.ContinuousCountPDF(id)
	if !ok {
		t.Fatal("missing PDF")
	}
	if math.Abs(ans.Expected-1.5) > 1e-9 {
		t.Errorf("PDF Expected = %v", ans.Expected)
	}
	if len(ans.PDF) != 3 || math.Abs(ans.PDF[1]-0.5) > 1e-9 || math.Abs(ans.PDF[2]-0.5) > 1e-9 {
		t.Errorf("PDF = %v", ans.PDF)
	}
	if _, ok := s.ContinuousCountPDF(999); ok {
		t.Error("PDF for unknown query")
	}
}

func BenchmarkContinuousUpdates(b *testing.B) {
	s := newServer(b)
	src := rng.New(7)
	// 100 standing queries, 10k users.
	for i := 0; i < 100; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		if _, err := s.RegisterContinuousCount(geo.RectAround(c, 0.05).Clip(world)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 10000; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		s.UpdatePrivate(uint64(i+1), geo.RectAround(c, 0.02).Clip(world))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uid := uint64(i%10000) + 1
		c := geo.Pt(src.Float64(), src.Float64())
		s.UpdatePrivate(uid, geo.RectAround(c, 0.02).Clip(world))
	}
}

// TestContinuousCountPDFMatchesOneShot pins the determinism fix in
// ContinuousCountPDF: the PDF materialized from the continuous engine's
// per-user probability map must be bit-identical to the one-shot
// PublicRangeCount PDF over the same rectangle. Before the fix the
// continuous path accumulated probabilities in map-iteration order, so the
// floating-point convolution drifted from the sorted one-shot path.
func TestContinuousCountPDFMatchesOneShot(t *testing.T) {
	s := newServer(t)
	query := geo.R(0.25, 0.25, 0.75, 0.75)
	id, err := s.RegisterContinuousCount(query)
	if err != nil {
		t.Fatal(err)
	}
	// 40 users with distinct partial-overlap fractions so each contributes
	// a different probability and accumulation order matters.
	r := rng.New(11)
	for i := 0; i < 40; i++ {
		c := geo.Pt(0.2+0.6*r.Float64(), 0.2+0.6*r.Float64())
		reg := geo.RectAround(c, 0.02+0.1*r.Float64()).Clip(world)
		if err := s.UpdatePrivate(uint64(i+1), reg); err != nil {
			t.Fatal(err)
		}
	}
	cont, ok := s.ContinuousCountPDF(id)
	if !ok {
		t.Fatal("continuous query vanished")
	}
	shot, err := s.PublicRangeCount(PublicRangeCountQuery{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	if len(cont.PDF) != len(shot.Answer.PDF) {
		t.Fatalf("PDF lengths differ: continuous %d vs one-shot %d",
			len(cont.PDF), len(shot.Answer.PDF))
	}
	for k := range cont.PDF {
		if cont.PDF[k] != shot.Answer.PDF[k] {
			t.Fatalf("PDF[%d] differs: continuous %v vs one-shot %v",
				k, cont.PDF[k], shot.Answer.PDF[k])
		}
	}
	if cont.Expected != shot.Answer.Expected || cont.Lo != shot.Answer.Lo || cont.Hi != shot.Answer.Hi {
		t.Errorf("summary differs: continuous %+v vs one-shot %+v", cont, shot.Answer)
	}
}
