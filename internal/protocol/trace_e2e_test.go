package protocol

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/server"
	"repro/internal/trace"
)

// tracedStack is threeTier with a tracer in every process.
type tracedStack struct {
	cli, anonTr, dbTr *trace.Tracer
	user              *AnonymizerClient
	admin             *DatabaseClient
	anonAddr, dbAddr  string
	cleanup           func()
}

// tracedThreeTier brings up the Figure 1 deployment with a tracer in every
// process: the client tracer samples everything (it mints roots), while
// the daemon tracers run in propagation-only mode (Sample 0) exactly as
// lbsload -selfhost wires them — they record only spans that arrive with
// the sampled flag set.
func tracedThreeTier(t *testing.T) tracedStack {
	t.Helper()
	cli := trace.New(trace.Config{Process: "client", Sample: 1})
	anonTr := trace.New(trace.Config{Process: "anonymizer"})
	dbTr := trace.New(trace.Config{Process: "lbsd"})

	srv, err := server.New(server.Config{World: world, Tracer: dbTr})
	if err != nil {
		t.Fatal(err)
	}
	dbSvc, err := ServeDatabase("127.0.0.1:0", srv, quiet, WithTracing(dbTr))
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := DialDatabase(dbSvc.Addr(), WithClientTracing(anonTr))
	if err != nil {
		t.Fatal(err)
	}
	anon, err := anonymizer.New(anonymizer.Config{
		World:      world,
		Tracer:     anonTr,
		ForwardCtx: fwd.UpdatePrivateCtx,
	})
	if err != nil {
		t.Fatal(err)
	}
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anon, quiet, WithTracing(anonTr))
	if err != nil {
		t.Fatal(err)
	}
	user, err := DialAnonymizer(anonSvc.Addr(), WithClientTracing(cli))
	if err != nil {
		t.Fatal(err)
	}
	admin, err := DialDatabase(dbSvc.Addr(), WithClientTracing(cli))
	if err != nil {
		t.Fatal(err)
	}
	return tracedStack{
		cli: cli, anonTr: anonTr, dbTr: dbTr,
		user: user, admin: admin,
		anonAddr: anonSvc.Addr(), dbAddr: dbSvc.Addr(),
		cleanup: func() {
			user.Close()
			admin.Close()
			fwd.Close()
			anonSvc.Close()
			dbSvc.Close()
		},
	}
}

// One private query traced end to end: the client mints the root, the
// envelope carries the context across both TCP hops, and pulling the three
// span rings yields one merged timeline — client, anonymizer and database
// spans under a single trace id with a consistent parent/child tree.
func TestTracedQueryAcrossThreeTiers(t *testing.T) {
	st := tracedThreeTier(t)
	defer st.cleanup()
	cli, user, admin := st.cli, st.user, st.admin

	// Population so k=3 is satisfiable, plus public objects to query.
	prof := privacy.Constant(privacy.Requirement{K: 3})
	for id := uint64(1); id <= 5; id++ {
		if err := user.Register(id, prof); err != nil {
			t.Fatal(err)
		}
		if _, err := user.Update(id, geo.Pt(0.1*float64(id), 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := admin.LoadStationary([]server.PublicObject{
		{ID: 1, Class: "gas", Loc: geo.Pt(0.2, 0.4)},
		{ID: 2, Class: "gas", Loc: geo.Pt(0.8, 0.8)},
	}); err != nil {
		t.Fatal(err)
	}

	// The traced request: cloak at the anonymizer (which forwards the
	// refreshed region to the database), then the private NN against the
	// cloaked region — all under one client root span.
	root := cli.StartRoot("load_private_query")
	if !root.Recording() {
		t.Fatal("client root not sampled at rate 1")
	}
	ctx := trace.NewContext(context.Background(), root.Context())
	cres, err := user.CloakQueryCtx(ctx, 3, geo.Pt(0.3, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := admin.PrivateNNCtx(ctx, server.PrivateNNQuery{
		Region: cres.Region, Class: "gas",
	}); err != nil {
		t.Fatal(err)
	}
	root.End()
	traceID := root.Context().TraceID

	// Pull all three rings — the daemons' over the wire, exactly as
	// `lbsload -trace` does — and merge.
	anonSpans, err := user.Traces()
	if err != nil {
		t.Fatal(err)
	}
	dbSpans, err := admin.Traces()
	if err != nil {
		t.Fatal(err)
	}
	merged := trace.Merge(cli.Snapshot(), anonSpans, dbSpans)

	var spans []trace.SpanRecord
	byID := map[uint64]trace.SpanRecord{}
	procs := map[string]bool{}
	names := map[string]bool{}
	for _, rec := range merged {
		if rec.TraceID != traceID {
			continue
		}
		spans = append(spans, rec)
		byID[rec.SpanID] = rec
		procs[rec.Proc] = true
		names[rec.Proc+"/"+rec.Name] = true
	}
	if len(spans) != len(byID) {
		t.Fatalf("duplicate span ids after merge: %d spans, %d unique", len(spans), len(byID))
	}
	for _, proc := range []string{"client", "anonymizer", "lbsd"} {
		if !procs[proc] {
			t.Fatalf("merged timeline missing %s spans: %v", proc, names)
		}
	}
	// The stages the request must have crossed, per tier.
	for _, want := range []string{
		"client/load_private_query", "client/proto_call",
		"anonymizer/proto_serve", "anonymizer/anon_admit", "anonymizer/anon_cloak",
		"anonymizer/anon_forward", "anonymizer/proto_call",
		"lbsd/proto_serve", "lbsd/lbs_update_private", "lbsd/lbs_private_nn",
	} {
		if !names[want] {
			t.Fatalf("merged timeline missing stage %s (have %v)", want, names)
		}
	}

	// Tree sanity: exactly one root, and every other span's parent chain
	// reaches it — including across the two process boundaries.
	var roots int
	for _, rec := range spans {
		if rec.ParentID == 0 {
			roots++
			if rec.Proc != "client" || rec.Name != "load_private_query" {
				t.Fatalf("unexpected root %s/%s", rec.Proc, rec.Name)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("merged trace has %d roots, want 1", roots)
	}
	for _, rec := range spans {
		cur := rec
		for hops := 0; cur.ParentID != 0; hops++ {
			if hops > len(spans) {
				t.Fatalf("parent cycle at span %s/%s", rec.Proc, rec.Name)
			}
			parent, ok := byID[cur.ParentID]
			if !ok {
				t.Fatalf("span %s/%s parent %x not in the merged set",
					rec.Proc, rec.Name, cur.ParentID)
			}
			// Same host, so wall clocks agree: a child cannot start
			// meaningfully before its parent.
			if cur.Start < parent.Start-int64(time.Millisecond) {
				t.Fatalf("span %s/%s starts before its parent %s/%s",
					cur.Proc, cur.Name, parent.Proc, parent.Name)
			}
			cur = parent
		}
	}

	// The merged timeline exports as loadable Chrome trace JSON with all
	// three processes announced.
	var buf bytes.Buffer
	if err := trace.WriteChromeJSON(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged export is not valid JSON: %v", err)
	}
	meta := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			meta++
		}
	}
	if meta != 3 {
		t.Fatalf("export announces %d processes, want 3", meta)
	}
}

// A traced client against a service built without WithTracing: the
// negotiation probe fails, the client falls back to plain frames, and
// every call still works. The reverse — an un-traced client against a
// traced service — is the common case exercised by every other test in
// this package once the service gains WithTracing, but assert it
// explicitly here too.
func TestTraceNegotiationInterop(t *testing.T) {
	// Un-traced service, traced client. A legacy handler answers unknown
	// message types (including the negotiation probe) with an error frame,
	// which is what tells the client to stay on plain frames.
	plain, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		if typ != 1 {
			return nil, errors.New("unknown message type")
		}
		return p, nil
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	tr := trace.New(trace.Config{Process: "client", Sample: 1})
	c, err := Dial(plain.Addr(), WithClientTracing(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Call(1, []byte("ok")); err != nil || string(resp) != "ok" {
		t.Fatalf("traced client against plain service: %q, %v", resp, err)
	}
	// The ring pull is a remote error on a peer without tracing.
	if _, err := c.Traces(); !errors.Is(err, ErrRemote) {
		t.Fatalf("Traces() on plain service = %v, want remote error", err)
	}

	// Traced service, un-traced client.
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := ServeDatabase("127.0.0.1:0", srv, quiet,
		WithTracing(trace.New(trace.Config{Process: "lbsd"})))
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()
	dc, err := DialDatabase(traced.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	if _, _, err := dc.Stats(); err != nil {
		t.Fatalf("plain client against traced service: %v", err)
	}
}

// With no sampled context on the wire, propagation-only daemon tracers
// record nothing: tracing off is genuinely free of ring writes.
func TestUnsampledRequestsRecordNothing(t *testing.T) {
	st := tracedThreeTier(t)
	defer st.cleanup()
	anonTr, dbTr := st.anonTr, st.dbTr

	// Fresh un-traced connections: no envelope on the wire, so the
	// propagation-only daemon tracers see no sampled contexts at all.
	u2, err := DialAnonymizer(st.anonAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	a2, err := DialDatabase(st.dbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	prof := privacy.Constant(privacy.Requirement{K: 2})
	for id := uint64(1); id <= 3; id++ {
		if err := u2.Register(id, prof); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := u2.Update(1, geo.Pt(0.4, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a2.Stats(); err != nil {
		t.Fatal(err)
	}
	if n := len(anonTr.Snapshot()); n != 0 {
		t.Fatalf("anonymizer recorded %d spans for unsampled traffic", n)
	}
	if n := len(dbTr.Snapshot()); n != 0 {
		t.Fatalf("database recorded %d spans for unsampled traffic", n)
	}
}
