package protocol

import (
	"fmt"

	"repro/internal/obs"
)

// The MsgMetrics response carries a full registry snapshot — counters,
// gauges and histogram snapshots — so load tools print percentile tables
// from live daemons without scraping HTTP. Layout per series:
//
//	Str name, Str help, U8 kind, U16 nlabels { Str key, Str value },
//	then kind-specific:
//	  counter/gauge: F64 value
//	  histogram:     U32 nbounds { F64 bound }, (nbounds+1) × U64 count, F64 sum,
//	                 U8 hasExemplars, if 1: (nbounds+1) × U64 trace id

// encodeMetrics flattens exported snapshots into a payload.
func encodeMetrics(series []obs.MetricSnapshot) []byte {
	var e Encoder
	e.U32(uint32(len(series)))
	for _, s := range series {
		e.Str(s.Name).Str(s.Help).U8(byte(s.Kind))
		e.U16(uint16(len(s.Labels)))
		for _, l := range s.Labels {
			e.Str(l.Key).Str(l.Value)
		}
		switch s.Kind {
		case obs.KindCounter, obs.KindGauge:
			e.F64(s.Value)
		case obs.KindHistogram:
			e.U32(uint32(len(s.Hist.Bounds)))
			for _, b := range s.Hist.Bounds {
				e.F64(b)
			}
			for _, c := range s.Hist.Counts {
				e.U64(c)
			}
			e.F64(s.Hist.Sum)
			if len(s.Hist.Exemplars) == len(s.Hist.Counts) {
				e.U8(1)
				for _, t := range s.Hist.Exemplars {
					e.U64(t)
				}
			} else {
				e.U8(0)
			}
		}
	}
	return e.Bytes()
}

// DecodeMetrics parses a MsgMetrics response payload.
func DecodeMetrics(payload []byte) ([]obs.MetricSnapshot, error) {
	d := NewDecoder(payload)
	n := int(d.U32())
	// Each series needs ≥ 8 bytes on the wire (two empty strings, kind,
	// label count and a value byte short of that, but 8 is a safe floor).
	out := make([]obs.MetricSnapshot, 0, capHint(n, 8, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		s := obs.MetricSnapshot{
			Name: d.Str(),
			Help: d.Str(),
			Kind: obs.Kind(d.U8()),
		}
		nl := int(d.U16())
		if nl > 0 {
			s.Labels = make([]obs.Label, 0, capHint(nl, 4, d))
			for j := 0; j < nl && d.Err() == nil; j++ {
				s.Labels = append(s.Labels, obs.Label{Key: d.Str(), Value: d.Str()})
			}
		}
		switch s.Kind {
		case obs.KindCounter, obs.KindGauge:
			s.Value = d.F64()
		case obs.KindHistogram:
			nb := int(d.U32())
			s.Hist.Bounds = make([]float64, 0, capHint(nb, 8, d))
			for j := 0; j < nb && d.Err() == nil; j++ {
				s.Hist.Bounds = append(s.Hist.Bounds, d.F64())
			}
			nc := len(s.Hist.Bounds) + 1
			s.Hist.Counts = make([]uint64, 0, capHint(nc, 8, d))
			for j := 0; j < nc && d.Err() == nil; j++ {
				s.Hist.Counts = append(s.Hist.Counts, d.U64())
			}
			s.Hist.Sum = d.F64()
			if d.U8() == 1 {
				s.Hist.Exemplars = make([]uint64, 0, capHint(nc, 8, d))
				for j := 0; j < nc && d.Err() == nil; j++ {
					s.Hist.Exemplars = append(s.Hist.Exemplars, d.U64())
				}
			}
		default:
			return nil, fmt.Errorf("protocol: unknown metric kind %d", s.Kind)
		}
		if d.Err() == nil {
			out = append(out, s)
		}
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return out, nil
}

// Metrics fetches the peer daemon's full metric snapshot. The peer must be
// running an instrumented service (WithMetrics); otherwise the call fails
// with the peer's unknown-message error.
func (c *Client) Metrics() ([]obs.MetricSnapshot, error) {
	resp, err := c.Call(MsgMetrics, nil)
	if err != nil {
		return nil, err
	}
	return DecodeMetrics(resp)
}

// Metrics fetches the anonymizer daemon's metric snapshot.
func (ac *AnonymizerClient) Metrics() ([]obs.MetricSnapshot, error) { return ac.c.Metrics() }

// Metrics fetches the database daemon's metric snapshot.
func (dc *DatabaseClient) Metrics() ([]obs.MetricSnapshot, error) { return dc.c.Metrics() }
