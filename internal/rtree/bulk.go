package rtree

import (
	"math"
	"slices"

	"repro/internal/geo"
)

// cmpF is a three-way float comparator for the pointer-free STR sorts;
// slices.SortFunc avoids sort.Slice's reflect-based swapping, which
// matters now that the batch engine bulk-loads small per-group subtrees
// on the query path.
func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// BulkLoad builds a tree from items using Sort-Tile-Recursive (STR)
// packing, which produces near-optimally packed leaves and is the standard
// way to load a static public-data set (the store-finder datasets in the
// experiments). The input slice is not retained but is reordered in place.
func BulkLoad(items []Item) *Tree {
	t := &Tree{}
	if len(items) == 0 {
		return t
	}
	leaves := strPack(items)
	t.size = len(items)
	// Build upper levels by packing nodes the same way until one root remains.
	level := leaves
	for len(level) > 1 {
		level = packNodes(level)
	}
	t.root = level[0]
	return t
}

// strPack tiles the items into leaves: sort by x, cut into vertical slices
// of ~sqrt(n/M) each, sort each slice by y, and emit runs of up to M items.
func strPack(items []Item) []*node {
	n := len(items)
	leafCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := sliceCount * maxEntries

	slices.SortFunc(items, func(a, b Item) int { return cmpF(a.Loc.X, b.Loc.X) })
	var leaves []*node
	for start := 0; start < n; start += perSlice {
		end := start + perSlice
		if end > n {
			end = n
		}
		slice := items[start:end]
		slices.SortFunc(slice, func(a, b Item) int { return cmpF(a.Loc.Y, b.Loc.Y) })
		for ls := 0; ls < len(slice); ls += maxEntries {
			le := ls + maxEntries
			if le > len(slice) {
				le = len(slice)
			}
			leaf := &node{leaf: true, items: append([]Item(nil), slice[ls:le]...)}
			leaf.recomputeBounds()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups a level of nodes into parents using the same STR tiling
// over node centers.
func packNodes(level []*node) []*node {
	n := len(level)
	parentCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	perSlice := sliceCount * maxEntries

	slices.SortFunc(level, func(a, b *node) int { return cmpF(a.bounds.Center().X, b.bounds.Center().X) })
	var parents []*node
	for start := 0; start < n; start += perSlice {
		end := start + perSlice
		if end > n {
			end = n
		}
		slice := level[start:end]
		slices.SortFunc(slice, func(a, b *node) int { return cmpF(a.bounds.Center().Y, b.bounds.Center().Y) })
		for ls := 0; ls < len(slice); ls += maxEntries {
			le := ls + maxEntries
			if le > len(slice) {
				le = len(slice)
			}
			p := &node{leaf: false, children: make([]child, le-ls)}
			for ci, c := range slice[ls:le] {
				p.children[ci] = child{bounds: c.bounds, n: c}
			}
			p.recomputeBounds()
			parents = append(parents, p)
		}
	}
	return parents
}

// FromPoints is a convenience bulk loader assigning IDs 1..n in input order.
func FromPoints(pts []geo.Point) *Tree {
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{ID: uint64(i) + 1, Loc: p}
	}
	return BulkLoad(items)
}
