package loader

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot walks up from this file to the directory holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"repro/internal/geo",
		"repro/internal/protocol",
		"repro/internal/anonymizer",
		"repro/internal/obs",
	} {
		pkg := prog.Lookup(path)
		if pkg == nil {
			t.Fatalf("package %s not loaded", path)
		}
		if pkg.Types == nil || len(pkg.Files) == 0 {
			t.Fatalf("package %s loaded without types or files", path)
		}
		if len(pkg.Info.Defs) == 0 {
			t.Fatalf("package %s has no type info", path)
		}
	}
	// Dependencies precede importers.
	seen := make(map[string]bool)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path := imp.Path.Value[1 : len(imp.Path.Value)-1]
				if prog.Lookup(path) != nil && !seen[path] {
					t.Fatalf("package %s type-checked before its dependency %s", pkg.ImportPath, path)
				}
			}
		}
		seen[pkg.ImportPath] = true
	}
	// Comments must be attached: the directive-driven passes need them.
	comments := 0
	for _, f := range prog.Lookup("repro/internal/anonymizer").Files {
		comments += len(f.Comments)
	}
	if comments == 0 {
		t.Fatal("anonymizer files parsed without comments")
	}
}

func TestAddDropPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load(moduleRoot(t), "./internal/geo")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := `package fixture

import "repro/internal/geo"

// Area is a fixture helper.
func Area(r geo.Rect) float64 { return r.Area() }
`
	file := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := prog.AddPackage("fixture", dir, []string{file})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Lookup("fixture") != pkg {
		t.Fatal("AddPackage did not register the package")
	}
	if pkg.Types.Scope().Lookup("Area") == nil {
		t.Fatal("fixture function not type-checked")
	}
	prog.DropPackage("fixture")
	if prog.Lookup("fixture") != nil {
		t.Fatal("DropPackage left the package registered")
	}
}

func TestLoadBadPatternFails(t *testing.T) {
	if _, err := Load(moduleRoot(t), "./does-not-exist/..."); err == nil {
		t.Fatal("expected an error for a nonexistent pattern")
	}
}
