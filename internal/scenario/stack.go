package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/router"
	"repro/internal/server"
)

// stack is the in-process deployment under test: a real database tier and
// a real anonymizer service on loopback TCP, wired exactly as the
// production daemons wire themselves (spill queue, lazy redial, client
// metrics in the daemon registry), plus the kill/restart levers the
// outage scenarios pull. With Config.Shards > 1 the database tier is a
// routed fleet: N lbsd shards behind an lbsrouter-style routing service,
// and everything that dials "the database" dials the router.
type stack struct {
	world geo.Rect
	cfg   Config

	// Single-database mode (Shards <= 1).
	srv   *server.Server
	dbSvc *protocol.Service
	dbReg *obs.Registry

	// Routed mode (Shards > 1).
	shardSrvs  []*server.Server
	shardSvcs  []*protocol.Service
	shardAddrs []string
	shardLinks []*protocol.DatabaseClient
	rtr        *router.Router
	rtrSvc     *protocol.Service
	rtrReg     *obs.Registry

	// dbAddr is what clients dial: the single database or the router.
	dbAddr string

	fwd     *protocol.DatabaseClient
	anon    *anonymizer.Anonymizer
	anonSvc *protocol.Service
	anonReg *obs.Registry

	snapDir string
}

const stackCallTimeout = 2 * time.Second

// newStack boots the tiers. link, when non-nil, is a fault plan installed
// on the anonymizer→database forward connections (the slow-link dial).
func newStack(cfg Config, link func(conn int) []faults.Rule) (*stack, error) {
	st := &stack{world: geo.R(0, 0, 1, 1), cfg: cfg}

	if cfg.Shards > 1 {
		if err := st.bootRouted(); err != nil {
			st.Close()
			return nil, err
		}
	} else {
		st.dbReg = obs.NewRegistry()
		srv, err := server.New(server.Config{World: st.world, Metrics: st.dbReg})
		if err != nil {
			return nil, err
		}
		st.srv = srv
		st.dbSvc, err = st.serveDB("127.0.0.1:0", srv)
		if err != nil {
			return nil, err
		}
		st.dbAddr = st.dbSvc.Addr()
	}

	st.anonReg = obs.NewRegistry()
	fwdOpts := []protocol.DialOption{
		protocol.WithLazyDial(),
		protocol.WithCallTimeout(stackCallTimeout),
		protocol.WithClientMetrics(st.anonReg),
		protocol.WithRetryBackoff(5*time.Millisecond, 100*time.Millisecond),
	}
	if link != nil {
		fwdOpts = append(fwdOpts, protocol.WithDialer(faults.Dialer(link)))
	}
	var err error
	st.fwd, err = protocol.DialDatabase(st.dbAddr, fwdOpts...)
	if err != nil {
		st.Close()
		return nil, err
	}
	st.anon, err = anonymizer.New(anonymizer.Config{
		World:               st.world,
		Forward:             st.fwd.UpdatePrivate,
		ForwardCtx:          st.fwd.UpdatePrivateCtx,
		ForwardQueue:        cfg.ForwardQueue,
		ForwardBackpressure: cfg.Admission,
		ForwardRetryBase:    10 * time.Millisecond,
		ForwardRetryMax:     200 * time.Millisecond,
		Metrics:             st.anonReg,
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	anonOpts := []protocol.Option{protocol.WithMetrics(st.anonReg)}
	if cfg.Admission {
		anonOpts = append(anonOpts, protocol.WithAdmission(cfg.MaxInflight))
	}
	st.anonSvc, err = protocol.ServeAnonymizer("127.0.0.1:0", st.anon, cfg.Logf, anonOpts...)
	if err != nil {
		st.Close()
		return nil, err
	}

	st.snapDir, err = os.MkdirTemp("", "lbssoak-snap-")
	if err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

// bootRouted brings up the sharded database tier: N shard servers (each
// with a private registry, so the per-service proto_* series don't
// collide), breaker-guarded shard links, the router, and its service.
func (st *stack) bootRouted() error {
	st.rtrReg = obs.NewRegistry()
	links := make([]router.Shard, st.cfg.Shards)
	for i := 0; i < st.cfg.Shards; i++ {
		srv, err := server.New(server.Config{World: st.world, Metrics: obs.NewRegistry()})
		if err != nil {
			return err
		}
		st.shardSrvs = append(st.shardSrvs, srv)
		svc, err := st.serveShard("127.0.0.1:0", srv)
		if err != nil {
			return err
		}
		st.shardSvcs = append(st.shardSvcs, svc)
		st.shardAddrs = append(st.shardAddrs, svc.Addr())
		link, err := protocol.DialDatabase(svc.Addr(),
			protocol.WithLazyDial(),
			protocol.WithCallTimeout(stackCallTimeout),
			protocol.WithClientMetrics(st.rtrReg),
			protocol.WithRetries(1),
			protocol.WithRetryBackoff(5*time.Millisecond, 100*time.Millisecond),
			protocol.WithBreaker(5, 500*time.Millisecond),
		)
		if err != nil {
			return err
		}
		st.shardLinks = append(st.shardLinks, link)
		links[i] = link
	}
	rtr, err := router.New(router.Config{
		World:   st.world,
		Shards:  links,
		Addrs:   st.shardAddrs,
		Metrics: st.rtrReg,
	})
	if err != nil {
		return err
	}
	st.rtr = rtr
	rtrOpts := []protocol.Option{protocol.WithMetrics(st.rtrReg)}
	if st.cfg.Admission {
		rtrOpts = append(rtrOpts, protocol.WithAdmission(st.cfg.MaxInflight))
	}
	st.rtrSvc, err = protocol.ServeRouter("127.0.0.1:0", rtr, st.cfg.Logf, rtrOpts...)
	if err != nil {
		return err
	}
	st.dbAddr = st.rtrSvc.Addr()
	return nil
}

func (st *stack) serveDB(addr string, srv *server.Server) (*protocol.Service, error) {
	opts := []protocol.Option{protocol.WithMetrics(st.dbReg)}
	if st.cfg.Admission {
		opts = append(opts, protocol.WithAdmission(st.cfg.MaxInflight))
	}
	return protocol.ServeDatabase(addr, srv, st.cfg.Logf, opts...)
}

// serveShard binds one shard of the routed tier. Shard services carry no
// shared registry (each server owns a private one) but do enforce the
// admission budget, so overload control exists at both the router edge
// and the shards behind it.
func (st *stack) serveShard(addr string, srv *server.Server) (*protocol.Service, error) {
	var opts []protocol.Option
	if st.cfg.Admission {
		opts = append(opts, protocol.WithAdmission(st.cfg.MaxInflight))
	}
	return protocol.ServeDatabase(addr, srv, st.cfg.Logf, opts...)
}

// routed reports whether the database tier is the sharded deployment.
func (st *stack) routed() bool { return st.rtr != nil }

// privateUserCount is the resident-user count of the database tier: the
// single server's map size, or the router's residency-mask count (regions
// are replicated across shards, so summing shards would overcount).
func (st *stack) privateUserCount() int {
	if st.routed() {
		return st.rtr.PrivateUserCount()
	}
	return st.srv.PrivateUserCount()
}

// killDB stops the database tier's services, keeping the addresses for a
// later restart. Server state stays in memory (a plain outage); rolling
// restarts discard it and recover from the snapshot instead. In routed
// mode every shard goes down (the router itself stays up — it has no
// spatial state to lose).
func (st *stack) killDB() {
	if st.routed() {
		for i := range st.shardSvcs {
			st.killShard(i)
		}
		return
	}
	if st.dbSvc != nil {
		st.dbSvc.Close()
		st.dbSvc = nil
	}
}

// killShard stops one shard of the routed tier.
func (st *stack) killShard(i int) {
	if st.shardSvcs[i] != nil {
		st.shardSvcs[i].Close()
		st.shardSvcs[i] = nil
	}
}

// restartShard rebinds one shard on its original address; the shard's
// in-memory state survives the outage.
func (st *stack) restartShard(i int) error {
	if st.shardSvcs[i] != nil {
		return fmt.Errorf("scenario: shard %d already running", i)
	}
	svc, err := st.serveShard(st.shardAddrs[i], st.shardSrvs[i])
	if err != nil {
		return fmt.Errorf("scenario: rebind shard %d at %s: %w", i, st.shardAddrs[i], err)
	}
	st.shardSvcs[i] = svc
	return nil
}

// restartDB rebinds the database tier. fromSnapshot discards the old
// process state and restores brand-new servers from the latest snapshot
// files — the rolling-restart path; otherwise the surviving in-memory
// servers simply start listening again.
func (st *stack) restartDB(fromSnapshot bool) error {
	if st.routed() {
		for i := range st.shardSvcs {
			if fromSnapshot {
				srv, err := server.New(server.Config{World: st.world, Metrics: obs.NewRegistry()})
				if err != nil {
					return err
				}
				if err := srv.LoadSnapshot(st.snapPath(i)); err != nil {
					return fmt.Errorf("scenario: restore shard %d snapshot: %w", i, err)
				}
				st.shardSrvs[i] = srv
			}
			if err := st.restartShard(i); err != nil {
				return err
			}
		}
		return nil
	}
	if st.dbSvc != nil {
		return fmt.Errorf("scenario: database already running")
	}
	if fromSnapshot {
		srv, err := server.New(server.Config{World: st.world, Metrics: obs.NewRegistry()})
		if err != nil {
			return err
		}
		if err := srv.LoadSnapshot(st.snapPath(0)); err != nil {
			return fmt.Errorf("scenario: restore snapshot: %w", err)
		}
		st.srv = srv
	}
	svc, err := st.serveDB(st.dbAddr, st.srv)
	if err != nil {
		return fmt.Errorf("scenario: rebind %s: %w", st.dbAddr, err)
	}
	st.dbSvc = svc
	return nil
}

func (st *stack) snapPath(shard int) string {
	return filepath.Join(st.snapDir, fmt.Sprintf("lbsd-%d.snap", shard))
}

// saveSnapshot persists the current database state — taken right before a
// rolling restart kills the process. In routed mode every shard saves its
// own partition.
func (st *stack) saveSnapshot() error {
	if st.routed() {
		for i, srv := range st.shardSrvs {
			if err := srv.SaveSnapshot(st.snapPath(i)); err != nil {
				return err
			}
		}
		return nil
	}
	return st.srv.SaveSnapshot(st.snapPath(0))
}

func (st *stack) Close() {
	if st.anonSvc != nil {
		st.anonSvc.Close()
	}
	if st.anon != nil {
		st.anon.Close()
	}
	if st.fwd != nil {
		st.fwd.Close()
	}
	if st.dbSvc != nil {
		st.dbSvc.Close()
	}
	if st.rtrSvc != nil {
		st.rtrSvc.Close()
	}
	for _, link := range st.shardLinks {
		link.Close()
	}
	for _, svc := range st.shardSvcs {
		if svc != nil {
			svc.Close()
		}
	}
	if st.snapDir != "" {
		os.RemoveAll(st.snapDir)
	}
}
