package protocol

import (
	"testing"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/prob"
	"repro/internal/server"
)

// Fuzz targets for the shared sub-codecs the wiresym census requires:
// every Msg* type with a variable-length decode path must name a fuzz
// target covering that path, and these are the shared surfaces —
// object lists, count PDFs, (id, probability) pairs, batch frames.
// Contract as elsewhere: malformed input errors out via Decoder.Err,
// never panics or over-allocates, and well-formed input round-trips.

func objectsSeed() []server.PublicObject {
	return []server.PublicObject{
		{ID: 1, Class: "gas", Loc: geo.Pt(0.1, 0.2)},
		{ID: 2, Class: "bank", Loc: geo.Pt(0.7, 0.4)},
	}
}

func FuzzDecodeObjects(f *testing.F) {
	f.Add(encodeObjects(objectsSeed()))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // forged count, no objects
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		objs := decodeObjects(d)
		if d.Err() != nil {
			return
		}
		// No over-allocation: each object consumed at least its minimum
		// wire size (id + class length prefix + point).
		if len(objs)*26 > len(data) {
			t.Fatalf("%d objects from %d input bytes", len(objs), len(data))
		}
		// Round trip.
		d2 := NewDecoder(encodeObjects(objs))
		again := decodeObjects(d2)
		if d2.Err() != nil {
			t.Fatalf("re-decode of re-encoded objects failed: %v", d2.Err())
		}
		if len(again) != len(objs) {
			t.Fatalf("round trip changed object count: %d vs %d", len(again), len(objs))
		}
	})
}

func FuzzDecodeCountResult(f *testing.F) {
	var seed Encoder
	encodeCountResult(&seed, server.PublicRangeCountResult{
		Answer:     prob.CountAnswer{Expected: 1.5, Lo: 1, Hi: 3, PDF: []float64{0.25, 0.5, 0.25}},
		NaiveCount: 3,
	})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 24)) // header only, zero-length PDF
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		res := decodeCountResult(d)
		if d.Err() != nil {
			return
		}
		// No over-allocation from a forged PDF length.
		if len(res.Answer.PDF)*8 > len(data) {
			t.Fatalf("%d PDF entries from %d input bytes", len(res.Answer.PDF), len(data))
		}
		// Round trip.
		var e Encoder
		encodeCountResult(&e, res)
		d2 := NewDecoder(e.Bytes())
		if decodeCountResult(d2); d2.Err() != nil {
			t.Fatalf("re-decode of re-encoded count result failed: %v", d2.Err())
		}
	})
}

func FuzzDecodeUserProbs(f *testing.F) {
	var seed Encoder
	encodeUserProbs(&seed, []server.UserProb{{ID: 7, P: 0.5}, {ID: 9, P: 0.125}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // forged count, no pairs
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		pairs := decodeUserProbs(d)
		if d.Err() != nil {
			return
		}
		// No over-allocation: 16 wire bytes per pair.
		if len(pairs)*16 > len(data) {
			t.Fatalf("%d pairs from %d input bytes", len(pairs), len(data))
		}
		// Round trip.
		var e Encoder
		encodeUserProbs(&e, pairs)
		d2 := NewDecoder(e.Bytes())
		again := decodeUserProbs(d2)
		if d2.Err() != nil {
			t.Fatalf("re-decode of re-encoded pairs failed: %v", d2.Err())
		}
		if len(again) != len(pairs) {
			t.Fatalf("round trip changed pair count: %d vs %d", len(again), len(pairs))
		}
	})
}

func batchEntriesSeed() []server.BatchEntry {
	return []server.BatchEntry{
		{Kind: server.BatchPrivateRange, Range: server.PrivateRangeQuery{
			Region: geo.R(0.1, 0.1, 0.3, 0.3), Radius: 0.05, Class: "gas",
		}},
		{Kind: server.BatchPrivateNN, NN: server.PrivateNNQuery{Region: geo.R(0.4, 0.4, 0.5, 0.5)}},
		{Kind: server.BatchPublicCount, Count: server.PublicRangeCountQuery{Query: geo.R(0, 0, 1, 1)}},
	}
}

func FuzzDecodeBatchQuery(f *testing.F) {
	var seed Encoder
	encodeBatchEntries(&seed, batchEntriesSeed())
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // count over the batch cap
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeBatchEntries(NewDecoder(data))
		if err != nil {
			return
		}
		if len(entries) > maxBatchEntries {
			t.Fatalf("%d entries accepted past the %d-entry cap", len(entries), maxBatchEntries)
		}
		// No over-allocation: each entry consumed at least kind + rectangle.
		if len(entries)*33 > len(data) {
			t.Fatalf("%d entries from %d input bytes", len(entries), len(data))
		}
		// Round trip.
		var e Encoder
		encodeBatchEntries(&e, entries)
		if _, err := decodeBatchEntries(NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("re-decode of re-encoded entries failed: %v", err)
		}
	})
}

func FuzzDecodeBatchResult(f *testing.F) {
	entries := batchEntriesSeed()
	f.Add(encodeBatchResult(entries, server.BatchResult{
		Groups: 2, SharedHits: 1,
		Items: []server.BatchItemResult{
			{Range: objectsSeed()},
			{NN: server.PrivateNNResult{SupersetSize: 2, Candidates: objectsSeed()[:1]}},
			{Count: server.PublicRangeCountResult{
				Answer: prob.CountAnswer{Expected: 1, Lo: 1, Hi: 1, PDF: []float64{0, 1}},
			}},
		},
	}))
	f.Add([]byte{})
	f.Add([]byte{MsgBatchResult})
	f.Add([]byte{0x00}) // wrong sub-frame tag
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := decodeBatchResult(NewDecoder(data))
		if err != nil {
			return
		}
		// No over-allocation: each item consumed at least its status bytes.
		if len(res.Items)*2 > len(data) {
			t.Fatalf("%d items from %d input bytes", len(res.Items), len(data))
		}
	})
}

func FuzzDecodeBatchUpdate(f *testing.F) {
	// Seeds cover both directions of the MsgBatchUpdate exchange: the
	// request's (id, point) run and the response's presence-tagged cloak
	// results.
	var req Encoder
	req.U32(2)
	req.U64(1).Point(geo.Pt(0.2, 0.3))
	req.U64(2).Point(geo.Pt(0.4, 0.5))
	f.Add(req.Bytes())
	res := cloakResultSeed()
	f.Add(encodeBatchResults([]*cloak.Result{nil, &res}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // forged count, no entries
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		reqs := decodeBatchRequests(d)
		if d.Err() == nil && len(reqs)*24 > len(data) {
			t.Fatalf("%d requests from %d input bytes", len(reqs), len(data))
		}
		d = NewDecoder(data)
		results := decodeBatchResults(d)
		if d.Err() != nil {
			return
		}
		// No over-allocation: each result consumed at least its presence
		// byte.
		if len(results) > 0 && len(results) > len(data) {
			t.Fatalf("%d results from %d input bytes", len(results), len(data))
		}
		// Round trip.
		d2 := NewDecoder(encodeBatchResults(results))
		again := decodeBatchResults(d2)
		if d2.Err() != nil {
			t.Fatalf("re-decode of re-encoded results failed: %v", d2.Err())
		}
		if len(again) != len(results) {
			t.Fatalf("round trip changed result count: %d vs %d", len(again), len(results))
		}
	})
}
