// Package prob implements the probabilistic answer machinery of Section
// 6.2.2 (Figure 6): public queries over private (cloaked) data return
// answers as expected values, intervals, or full probability density
// functions, under the paper's stated assumption that the exact location is
// uniformly distributed inside its cloaked region.
//
// The range-count PDF is the Poisson–binomial distribution of the per-user
// overlap probabilities, computed exactly by dynamic programming. The
// nearest-neighbor probabilities over regions have no convenient closed
// form, so they are estimated by seeded Monte-Carlo sampling (the ablation
// bench quantifies the cost/accuracy trade-off against the DP's exactness).
package prob

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Overlap returns P(user ∈ query) for a user uniformly distributed in
// region: the ratio of the overlapped area to the region area (Figure 6a).
// A degenerate (point) region yields 0 or 1.
func Overlap(region, query geo.Rect) float64 {
	a := region.Area()
	if a == 0 {
		if query.Contains(region.Min) {
			return 1
		}
		return 0
	}
	return region.OverlapArea(query) / a
}

// CountAnswer is the paper's three answer formats for a probabilistic
// range count, bundled: the absolute (expected) value, the interval
// [Lo, Hi], and the PDF over possible counts (PDF[i] = P(count = i)).
type CountAnswer struct {
	Expected float64
	Lo, Hi   int
	PDF      []float64
}

// String implements fmt.Stringer.
func (a CountAnswer) String() string {
	return fmt.Sprintf("E=%.3f range=[%d,%d]", a.Expected, a.Lo, a.Hi)
}

// Mean returns the mean of the PDF; it equals Expected up to rounding and
// is used as a self-check.
func (a CountAnswer) Mean() float64 {
	m := 0.0
	for i, p := range a.PDF {
		m += float64(i) * p
	}
	return m
}

// Mode returns the most likely count.
func (a CountAnswer) Mode() int {
	best, bestP := 0, -1.0
	for i, p := range a.PDF {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// ProbAtLeast returns P(count ≥ n).
func (a CountAnswer) ProbAtLeast(n int) float64 {
	if n < 0 {
		n = 0
	}
	s := 0.0
	for i := n; i < len(a.PDF); i++ {
		s += a.PDF[i]
	}
	return s
}

// RangeCount combines per-user inclusion probabilities into a CountAnswer.
// Probabilities outside [0,1] are clamped.
func RangeCount(probs []float64) CountAnswer {
	ans, _ := RangeCountScratch(probs, nil)
	return ans
}

// RangeCountScratch is RangeCount with a reusable clamp buffer: the
// second return value is the (possibly grown) buffer, handed back so a
// caller answering many count queries stops re-allocating the
// intermediate. The PDF always allocates fresh — it escapes into the
// answer. Answer bytes are identical for any buffer value.
func RangeCountScratch(probs, buf []float64) (CountAnswer, []float64) {
	var ans CountAnswer
	clamped := buf[:0]
	for _, p := range probs {
		if math.IsNaN(p) {
			p = 0
		}
		p = math.Min(math.Max(p, 0), 1)
		if p == 0 {
			continue // zero-probability users affect nothing
		}
		clamped = append(clamped, p)
		ans.Expected += p
		if p == 1 {
			ans.Lo++
		}
		ans.Hi++
	}
	ans.PDF = PoissonBinomial(clamped)
	return ans, clamped
}

// PoissonBinomial returns the exact distribution of the number of
// successes among independent Bernoulli trials with the given success
// probabilities: out[i] = P(i successes). The DP is O(n²) time, O(n) space.
func PoissonBinomial(probs []float64) []float64 {
	pdf := make([]float64, 1, len(probs)+1)
	pdf[0] = 1
	for _, p := range probs {
		pdf = append(pdf, 0)
		for j := len(pdf) - 1; j >= 1; j-- {
			pdf[j] = pdf[j]*(1-p) + pdf[j-1]*p
		}
		pdf[0] *= 1 - p
	}
	return pdf
}

// Candidate is a region-cloaked user entering a probabilistic NN query.
type Candidate struct {
	ID     uint64
	Region geo.Rect
}

// NNProb holds the estimated probability that a candidate is the nearest
// user to the query point.
type NNProb struct {
	ID   uint64
	Prob float64
}

// NNProbabilities estimates, for each candidate, the probability that she
// is the nearest user to q, assuming each user is independently uniform in
// her region (Figure 6b). samples Monte-Carlo rounds are drawn from a
// stream seeded with seed, so results are reproducible. Ties (measure-zero
// under continuous positions, but possible with degenerate regions) are
// credited to the earliest candidate.
func NNProbabilities(q geo.Point, cands []Candidate, samples int, seed uint64) []NNProb {
	out := make([]NNProb, len(cands))
	for i, c := range cands {
		out[i].ID = c.ID
	}
	if len(cands) == 0 || samples <= 0 {
		return out
	}
	src := rng.New(seed)
	wins := make([]int, len(cands))
	for s := 0; s < samples; s++ {
		best := -1
		bestD := math.Inf(1)
		for i, c := range cands {
			p := samplePoint(c.Region, src)
			// The explicit best==-1 arm keeps the round well-defined even
			// when every distance overflows to +Inf (a query point at the
			// float range edge): the first candidate wins the tie.
			if d := q.Dist2(p); best == -1 || d < bestD {
				bestD = d
				best = i
			}
		}
		wins[best]++
	}
	for i := range out {
		out[i].Prob = float64(wins[i]) / float64(samples)
	}
	return out
}

// samplePoint draws a uniform point from a rectangle.
func samplePoint(r geo.Rect, src *rng.Source) geo.Point {
	return geo.Pt(src.Range(r.Min.X, r.Max.X), src.Range(r.Min.Y, r.Max.Y))
}

// Best returns the candidate with the highest probability (the paper's
// "only one object with the highest probability" answer format) and false
// when the slice is empty.
func Best(probs []NNProb) (NNProb, bool) {
	if len(probs) == 0 {
		return NNProb{}, false
	}
	best := probs[0]
	for _, p := range probs[1:] {
		if p.Prob > best.Prob {
			best = p
		}
	}
	return best, true
}
