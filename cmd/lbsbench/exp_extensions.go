package main

import (
	"fmt"
	"log"

	"repro/internal/altpriv"
	"repro/internal/attack"
	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/track"
)

// expAlternatives (E12) compares spatial k-anonymity against the two
// alternative mechanisms the paper surveys in Section 2.1 — false dummies
// and landmark objects — under comparable adversaries, plus the service
// cost each mechanism implies.
func expAlternatives(cfg benchConfig) {
	p := buildPopulation(cfg.n, mobility.Uniform, cfg.seed)
	fmt.Printf("%d users, uniform distribution\n\n", cfg.n)

	// k-anonymity reference rows (center attack, as in E2/E3).
	t := newTable("mechanism", "param", "leakage", "exact-hit %", "notes")
	for _, k := range []int{10, 50} {
		q := &cloak.Quadtree{Pyr: p.pyr}
		var sams []attack.Sample
		stride := len(p.pts)/300 + 1
		for i := 0; i < len(p.pts) && len(sams) < 300; i += stride {
			res := q.Cloak(uint64(i+1), p.pts[i], reqK(k))
			sams = append(sams, attack.Sample{Region: res.Region, TrueLoc: p.pts[i]})
		}
		rep := attack.Evaluate(attack.Center{}, sams, 0.005, cfg.seed)
		t.row("k-anonymity (quadtree)", fmt.Sprintf("k=%d", k),
			rep.Leakage, 100*rep.HitRate, "guaranteed ≥k users")
	}

	// False dummies: uniform-pick adversary.
	for _, n := range []int{5, 20} {
		g, err := altpriv.NewDummyGenerator(world, n, 0.01, cfg.seed)
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		var sams []altpriv.DummySample
		stride := len(p.pts)/300 + 1
		for i := 0; i < len(p.pts) && len(sams) < 300; i += stride {
			repp, _ := g.Report(uint64(i+1), p.pts[i])
			sams = append(sams, altpriv.DummySample{Report: repp, TrueLoc: p.pts[i]})
		}
		eval := altpriv.EvaluateDummies(sams, cfg.seed+1)
		t.row("false dummies", fmt.Sprintf("n=%d", n),
			eval.Leakage, 100*eval.PickRate,
			fmt.Sprintf("n× query cost; motion filter below"))
	}

	// Landmarks: the adversary's guess IS the landmark.
	for _, nl := range []int{100, 1000} {
		lmPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
			N: nl, World: world, Dist: mobility.Uniform, Seed: cfg.seed + 9,
		})
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		lm, err := altpriv.NewLandmarks(lmPts)
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		eval := altpriv.EvaluateLandmarks(lm, p.pts)
		t.row("landmarks", fmt.Sprintf("|L|=%d", nl),
			"-", "-",
			fmt.Sprintf("err %.4f, mean cell pop %.1f, alone %.1f%%",
				eval.MeanError, eval.MeanCellPopulation, 100*eval.AloneRate))
	}
	t.flush()

	// The dummies' Achilles heel: a motion-model filter across updates.
	fmt.Println("\nmotion-filter adversary vs dummies (20 updates, walking user):")
	t2 := newTable("dummy style", "mean surviving candidates (of 8)", "true chain alive")
	for _, style := range []struct {
		name    string
		walking bool
	}{{"independent per update", false}, {"random-walk dummies", true}} {
		var series []altpriv.DummyReport
		var idxs []int
		loc := geo.Pt(0.2, 0.2)
		var g *altpriv.DummyGenerator
		if style.walking {
			g, _ = altpriv.NewDummyGenerator(world, 8, 0.005, cfg.seed+2)
		}
		for tick := 0; tick < 20; tick++ {
			loc = world.ClampPoint(geo.Pt(loc.X+0.004, loc.Y+0.002))
			gg := g
			if !style.walking {
				gg, _ = altpriv.NewDummyGenerator(world, 8, 0.01, cfg.seed+uint64(tick)*131)
			}
			rep, idx := gg.Report(1, loc)
			series = append(series, rep)
			idxs = append(idxs, idx)
		}
		surv, alive := altpriv.MotionFilterDummies(series, idxs, 0.015)
		t2.row(style.name, surv, alive)
	}
	t2.flush()
	fmt.Println("\nreading: dummies protect a snapshot (pick rate 1/n) but naive")
	fmt.Println("dummies collapse under a motion filter; landmarks give uncontrolled")
	fmt.Println("anonymity (rural users are alone at their landmark). k-anonymity is")
	fmt.Println("the only mechanism with a per-user guarantee — the paper's position.")
}

// expTracking (E13) runs the trajectory-linking adversary against all
// cloaking algorithms plus the incremental (frozen-region) defense.
func expTracking(cfg benchConfig) {
	p := buildPopulation(cfg.n, mobility.Uniform, cfg.seed)
	const (
		speed = 0.004
		ticks = 40
	)
	fmt.Printf("%d users; tracked user walks %d ticks at speed %.3f, k=40\n\n", cfg.n, ticks, speed)

	uid := uint64(cfg.n + 1)
	start := geo.Pt(0.3, 0.5)
	if err := p.pyr.Insert(uid, start); err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	p.gi.Upsert(uid, start)

	trajectory := func(c cloak.Cloaker) []track.Step {
		var steps []track.Step
		loc := start
		for i := 0; i < ticks; i++ {
			loc = world.ClampPoint(geo.Pt(loc.X+speed, loc.Y+speed/3))
			p.pyr.Move(uid, loc)
			p.gi.Upsert(uid, loc)
			res := c.Cloak(uid, loc, reqK(40))
			steps = append(steps, track.Step{Region: res.Region, TrueLoc: loc})
		}
		return steps
	}

	t := newTable("cloaker", "mean shrink", "final shrink", "mean guess error", "violations")
	cloakers := []namedCloaker{
		{"naive", func(p population) cloak.Cloaker { return &cloak.Naive{Pop: p.pop} }},
		{"mbr", func(p population) cloak.Cloaker { return &cloak.MBR{Pop: p.pop} }},
		{"quadtree", func(p population) cloak.Cloaker { return &cloak.Quadtree{Pyr: p.pyr} }},
		{"grid L5", func(p population) cloak.Cloaker { return &cloak.Grid{Pyr: p.pyr, Level: 5} }},
	}
	for _, nc := range cloakers {
		rep, err := track.Evaluate(trajectory(nc.make(p)), speed*1.5)
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		t.row(nc.name, rep.MeanShrink, rep.FinalShrink, rep.MeanGuessError, rep.ContainmentViolations)
	}
	// Incremental defense: validate-and-reuse keeps the region frozen while
	// the user stays inside, which blinds the linking adversary.
	inc := cloak.NewIncremental(&cloak.Quadtree{Pyr: p.pyr},
		func(region geo.Rect, req privacy.Requirement) (int, bool) {
			n := p.gi.Count(region)
			return n, n >= req.K
		})
	rep, err := track.Evaluate(trajectory(inc), speed*1.5)
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	t.row("quadtree+incremental", rep.MeanShrink, rep.FinalShrink, rep.MeanGuessError, rep.ContainmentViolations)
	t.flush()
	fmt.Println("\nreading: centered data-dependent regions are immune to linking but")
	fmt.Println("leak instantly (guess error ≈ 0); static cells leak at every cell")
	fmt.Println("transition (shrink < 1). Incremental reuse matches plain quadtree")
	fmt.Println("here because an exit from the cached cell forces a recompute — a")
	fmt.Println("truly link-resistant cloak must overlap old and new regions at the")
	fmt.Println("transition, which is exactly the future work the paper gestures at")
	fmt.Println("(regions frozen for a user who stays put do have shrink exactly 1;")
	fmt.Println("see internal/track's tests).")
}
