// Package loader loads and type-checks the module's packages for the
// lbsvet static-analysis suite without network access. Package metadata
// and build-constraint-resolved file lists come from `go list`; the
// module's own packages are parsed and type-checked from source (so the
// passes get full syntax trees with comments), while standard-library
// imports are satisfied from the compiler's export data in the local
// build cache (`go list -export`), which works offline and costs
// milliseconds instead of type-checking the standard library from source.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked module package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string // absolute paths, build-constraint filtered, no tests
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Program is the loaded module: every requested package plus everything
// it imports inside the module, type-checked against real export data for
// the standard library.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // dependency (topological) order
	Dir      string     // module root the packages were loaded from

	// Cache lets interprocedural passes memoize whole-program results
	// (e.g. taint summaries) across the per-package Run calls of one
	// driver invocation. Keys are private to each pass.
	Cache map[interface{}]interface{}

	byPath map[string]*Package
	export map[string]string // import path -> export data file (stdlib)
	imp    types.ImporterFrom
	mu     sync.Mutex
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load loads the packages matching patterns (default "./...") rooted at
// dir, plus their in-module dependencies, and type-checks everything.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"-deps", "-export"}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:   token.NewFileSet(),
		Dir:    dir,
		Cache:  make(map[interface{}]interface{}),
		byPath: make(map[string]*Package),
		export: make(map[string]string),
	}
	prog.imp = importer.ForCompiler(prog.Fset, "gc", prog.lookupExport).(types.ImporterFrom)

	var module []*listedPackage
	byPath := make(map[string]*listedPackage)
	for _, p := range listed {
		if p.Error != nil && !p.Standard {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		byPath[p.ImportPath] = p
		if p.Standard {
			if p.Export != "" {
				prog.export[p.ImportPath] = p.Export
			}
			continue
		}
		module = append(module, p)
	}

	// Topological order over in-module imports so every dependency is
	// type-checked before its importers.
	sort.Slice(module, func(i, j int) bool { return module[i].ImportPath < module[j].ImportPath })
	order := make([]*listedPackage, 0, len(module))
	state := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var visit func(p *listedPackage) error
	visit = func(p *listedPackage) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("loader: import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok && !dep.Standard {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
		return nil
	}
	for _, p := range module {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	for _, p := range order {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("loader: %s uses cgo, which the lint loader does not support", p.ImportPath)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := prog.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// lookupExport feeds the gc importer export data from the build cache.
func (p *Program) lookupExport(path string) (io.ReadCloser, error) {
	p.mu.Lock()
	file, ok := p.export[path]
	p.mu.Unlock()
	if !ok {
		// A package outside the already-listed dependency closure (fixtures
		// may import stdlib packages the module itself does not). Resolve it
		// lazily; `go list -export` populates the build cache offline.
		listed, err := goList(p.Dir, "-export", path)
		if err != nil || len(listed) == 0 || listed[0].Export == "" {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		file = listed[0].Export
		p.mu.Lock()
		p.export[path] = file
		p.mu.Unlock()
	}
	return os.Open(file)
}

// progImporter resolves imports during type checking: in-module packages
// from the already-checked program, everything else through export data.
type progImporter struct{ prog *Program }

func (pi progImporter) Import(path string) (*types.Package, error) {
	return pi.ImportFrom(path, "", 0)
}

func (pi progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := pi.prog.byPath[path]; ok {
		return pkg.Types, nil
	}
	return pi.prog.imp.ImportFrom(path, dir, mode)
}

// newInfo returns a fully populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check parses and type-checks one package's files.
func (p *Program) check(importPath, dir string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(p.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: progImporter{p}}
	tpkg, err := conf.Check(importPath, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Dir:        dir,
		GoFiles:    filenames,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	p.byPath[importPath] = pkg
	return pkg, nil
}

// Lookup returns the loaded package with the given import path.
func (p *Program) Lookup(importPath string) *Package {
	return p.byPath[importPath]
}

// AddPackage parses and type-checks an extra package (the fixture runner
// uses it to graft testdata packages onto the loaded module) and appends
// it to the program. The package may import module packages and the
// standard library.
func (p *Program) AddPackage(importPath, dir string, filenames []string) (*Package, error) {
	pkg, err := p.check(importPath, dir, filenames)
	if err != nil {
		return nil, err
	}
	p.Packages = append(p.Packages, pkg)
	return pkg, nil
}

// DropPackage removes a package previously grafted with AddPackage, so a
// fixture runner can reuse one loaded program across independent cases.
func (p *Program) DropPackage(importPath string) {
	delete(p.byPath, importPath)
	for i, pkg := range p.Packages {
		if pkg.ImportPath == importPath {
			p.Packages = append(p.Packages[:i], p.Packages[i+1:]...)
			return
		}
	}
}
