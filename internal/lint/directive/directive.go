// Package directive parses the //lint: comment directives that carry the
// repo's machine-checked invariants in the source itself:
//
//	//lint:source <why>            — declared on a function: every call's
//	                                 results are exact-location tainted;
//	                                 with params=a,b the named parameters
//	                                 are tainted inside the body instead.
//	//lint:sanitized <why>         — on a call line: the call is a declared
//	                                 privacy boundary; taint does not flow
//	                                 through it. The justification text is
//	                                 mandatory.
//	//lint:trusted-ingress <why>   — declared on a function: wire-encode
//	                                 sinks inside it are allowed (the
//	                                 user-side client encoding the user's
//	                                 own location to the trusted tier).
//	//lint:lock <class>@<rank>     — on a mutex struct field: classifies it
//	                                 for the lockorder pass; lower ranks
//	                                 must be acquired first.
//	//lint:client-only <why>       — on a Msg* wire constant: the type is a
//	                                 response or sub-frame decoded on the
//	                                 client side only; wiresym does not
//	                                 require a server-side dispatch case.
//	//lint:wire-asym <why>         — on a Msg* wire constant: the encode and
//	                                 decode shapes are not statically
//	                                 separable (raw envelopes, negotiation
//	                                 probes threaded through the shared call
//	                                 path); wiresym skips the symmetry proof
//	                                 but the justification is mandatory.
//	//lint:fuzzed-by <Fuzz…> <why> — on a Msg* wire constant: the type's
//	                                 variable-length decode path is covered
//	                                 by the named fuzz target rather than
//	                                 the default FuzzDecode<Name>.
//	//lint:wire-handler            — on a function: its type switches and
//	                                 comparisons dispatch wire frames even
//	                                 though its signature is not the
//	                                 canonical Handler shape (the Service-
//	                                 layer dispatch).
//	//lint:hotpath allocs=<n>      — on a function: hotalloc budgets its
//	                                 heap-escape sites at n; the build
//	                                 breaks when the compiler reports more.
//	                                 Budgets only ratchet down.
//	//lint:atomic-guarded <why>    — on an access line: the plain load or
//	                                 store of an atomically-updated field is
//	                                 safe here (init before publish, or an
//	                                 externally serialized path).
//
// The verbs are deliberately in the //lint: namespace (shared with
// staticcheck's ignore directives, which use the distinct verbs ignore and
// file-ignore) so one grep surfaces every linting annotation in the tree.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Known is the set of directive verbs the lbsvet passes consume. The
// dirverify pass reports any //lint: comment with a verb outside this
// set, so a typo ("//lint:santized") breaks the build instead of
// silently disabling the invariant it meant to declare.
var Known = map[string]bool{
	"source":          true,
	"sanitized":       true,
	"trusted-ingress": true,
	"lock":            true,
	"client-only":     true,
	"wire-asym":       true,
	"fuzzed-by":       true,
	"wire-handler":    true,
	"hotpath":         true,
	"atomic-guarded":  true,
}

// Directive is one parsed //lint: comment.
type Directive struct {
	Verb string // "source", "sanitized", "trusted-ingress", "lock", ...
	Args string // everything after the verb, space-trimmed
	Pos  token.Pos
}

// Parse splits a single comment's text into a directive, reporting ok =
// false for ordinary comments.
func Parse(text string) (d Directive, ok bool) {
	text = strings.TrimPrefix(text, "//")
	if !strings.HasPrefix(text, "lint:") {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, "lint:")
	verb, args, _ := strings.Cut(rest, " ")
	verb = strings.TrimSpace(verb)
	if verb == "" || verb == "ignore" || verb == "file-ignore" {
		// ignore/file-ignore belong to staticcheck; not ours.
		return Directive{}, false
	}
	return Directive{Verb: verb, Args: strings.TrimSpace(args)}, true
}

// Map indexes a file's directives by the source line they apply to: a
// directive sharing a line with code applies to that line; a directive on
// a line of its own applies to the next line that has code.
type Map struct {
	byLine map[int][]Directive
}

// ForFile scans one parsed file.
func ForFile(fset *token.FileSet, file *ast.File) Map {
	// Lines that carry code tokens, so standalone directive comments can be
	// attached to the statement that follows them.
	codeLines := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Ident, *ast.BasicLit, *ast.ReturnStmt, *ast.BranchStmt:
			codeLines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	maxLine := 0
	for l := range codeLines {
		if l > maxLine {
			maxLine = l
		}
	}
	m := Map{byLine: make(map[int][]Directive)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := Parse(c.Text)
			if !ok {
				continue
			}
			d.Pos = c.Pos()
			line := fset.Position(c.Pos()).Line
			if !codeLines[line] {
				next := line + 1
				for next <= maxLine && !codeLines[next] {
					next++
				}
				line = next
			}
			m.byLine[line] = append(m.byLine[line], d)
		}
	}
	return m
}

// At returns the directives applying to the line containing pos.
func (m Map) At(fset *token.FileSet, pos token.Pos) []Directive {
	return m.byLine[fset.Position(pos).Line]
}

// Find returns the first directive with the given verb applying to pos's
// line.
func (m Map) Find(fset *token.FileSet, pos token.Pos, verb string) (Directive, bool) {
	for _, d := range m.At(fset, pos) {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// FromDoc returns the directive with the given verb in a declaration's
// doc comment.
func FromDoc(doc *ast.CommentGroup, verb string) (Directive, bool) {
	if doc == nil {
		return Directive{}, false
	}
	for _, c := range doc.List {
		if d, ok := Parse(c.Text); ok && d.Verb == verb {
			d.Pos = c.Pos()
			return d, true
		}
	}
	return Directive{}, false
}
