// Package fixture is the wiresym happy path: every constant is
// dispatched (one through the canonical handler signature, one through
// an annotated dispatcher), both sides encode and decode the same field
// sequences, the variable-length decode clamps through capHint, and the
// fuzz target exists and is listed in this fixture's own Makefile —
// which also stops the pass's module-root walk here. No diagnostics.
package fixture

import "context"

const (
	MsgItems  byte = 1
	MsgStatus byte = 2
)

type Encoder struct{ buf []byte }

func (e *Encoder) U8(v byte) *Encoder    { e.buf = append(e.buf, v); return e }
func (e *Encoder) U32(v uint32) *Encoder { e.buf = append(e.buf, byte(v)); return e }
func (e *Encoder) U64(v uint64) *Encoder { e.buf = append(e.buf, byte(v)); return e }

type Decoder struct {
	buf []byte
	off int
	err error
}

func (d *Decoder) take() byte {
	if d.off >= len(d.buf) {
		d.err = errShort
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *Decoder) U8() byte       { return d.take() }
func (d *Decoder) U32() uint32    { return uint32(d.take()) }
func (d *Decoder) U64() uint64    { return uint64(d.take()) }
func (d *Decoder) Err() error     { return d.err }
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

type wireError string

func (e wireError) Error() string { return string(e) }

const errShort = wireError("short frame")

func capHint(n, elemSize int, d *Decoder) int {
	if max := d.Remaining() / elemSize; n > max {
		return max
	}
	return n
}

type conn struct{}

func (c conn) call(typ byte, payload []byte) []byte { return payload }

func handle(ctx context.Context, typ byte, payload []byte) ([]byte, error) {
	d := &Decoder{buf: payload}
	switch typ {
	case MsgItems:
		items := decodeItems(d)
		e := &Encoder{}
		encodeItems(e, items)
		return e.buf, nil
	}
	return nil, nil
}

// relay mirrors the production Service-layer dispatcher: it compares
// rather than switches and does not have the canonical handler
// signature, so it carries the explicit annotation.
//
//lint:wire-handler
func relay(typ byte, payload []byte) []byte {
	if typ == MsgStatus {
		d := &Decoder{buf: payload}
		_ = d.U8()
		e := &Encoder{}
		e.U8(1)
		return e.buf
	}
	return payload
}

func encodeItems(e *Encoder, items []uint64) {
	e.U32(uint32(len(items)))
	for _, it := range items {
		e.U64(it)
	}
}

func decodeItems(d *Decoder) []uint64 {
	n := int(d.U32())
	out := make([]uint64, 0, capHint(n, 8, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.U64())
	}
	return out
}

func clientItems(c conn, items []uint64) []uint64 {
	e := &Encoder{}
	encodeItems(e, items)
	d := &Decoder{buf: c.call(MsgItems, e.buf)}
	return decodeItems(d)
}

func clientStatus(c conn) byte {
	e := &Encoder{}
	e.U8(0)
	d := &Decoder{buf: c.call(MsgStatus, e.buf)}
	return d.U8()
}
