package obs_test

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestCounter(t *testing.T) {
	var c obs.Counter
	if c.Value() != 0 {
		t.Fatalf("zero value = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("value = %d, want 42", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g obs.Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Inc()
	g.Dec()
	if g.Value() != 4 {
		t.Fatalf("value = %g, want 4", g.Value())
	}
	g.Add(-10)
	if g.Value() != -6 {
		t.Fatalf("value = %g, want -6", g.Value())
	}
}

// TestConcurrent exercises every lock-free primitive from many goroutines;
// run under -race it also proves the implementations are data-race free,
// and the exact totals prove no increment is lost.
func TestConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	var (
		c  obs.Counter
		g  obs.Gauge
		wg sync.WaitGroup
	)
	reg := obs.NewRegistry()
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Concurrent get-or-create must converge on one series.
			h := reg.Histogram("t_hist", "h", []float64{1, 2, 4})
			rc := reg.Counter("t_count", "h")
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 5))
				rc.Inc()
			}
		}(i)
	}
	wg.Wait()
	const want = goroutines * perG
	if c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Errorf("gauge = %g, want %d", g.Value(), want)
	}
	s, ok := reg.Find("t_hist")
	if !ok || s.Hist.Count() != want {
		t.Errorf("histogram count = %d (found=%v), want %d", s.Hist.Count(), ok, want)
	}
	if s, _ := reg.Find("t_count"); s.Value != want {
		t.Errorf("registry counter = %g, want %d", s.Value, want)
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{0, 50, 0},
		{-3, 50, 0},
		{10, 0, 0},
		{10, -5, 0},
		{10, 100, 9},
		{10, 150, 9},
		{1, 50, 0},
		{100, 50, 49},
		{100, 95, 94},
		{100, 99, 98},
		{4, 50, 1},
		{5, 50, 2},
	}
	for _, tc := range cases {
		if got := obs.Rank(tc.n, tc.p); got != tc.want {
			t.Errorf("Rank(%d, %g) = %d, want %d", tc.n, tc.p, got, tc.want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter("x_total", "help", obs.L("alg", "quadtree"))
	b := reg.Counter("x_total", "ignored on reuse", obs.L("alg", "quadtree"))
	if a != b {
		t.Fatal("same (name, labels) must return the same handle")
	}
	other := reg.Counter("x_total", "help", obs.L("alg", "grid"))
	if a == other {
		t.Fatal("different label values must be distinct series")
	}
	a.Inc()
	if s, ok := reg.Find("x_total", obs.L("alg", "quadtree")); !ok || s.Value != 1 {
		t.Fatalf("Find = %+v, %v", s, ok)
	}
	if _, ok := reg.Find("x_total", obs.L("alg", "naive")); ok {
		t.Fatal("Find must miss an unregistered series")
	}
	// Label order must not matter.
	p := reg.Gauge("y", "h", obs.L("a", "1"), obs.L("b", "2"))
	q := reg.Gauge("y", "h", obs.L("b", "2"), obs.L("a", "1"))
	if p != q {
		t.Fatal("label order must not create a new series")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("z_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("z_total", "h")
}

func TestExportSorted(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("bbb_total", "h")
	reg.Gauge("aaa", "h")
	reg.Counter("ccc_total", "h", obs.L("t", "y"))
	reg.Counter("ccc_total", "h", obs.L("t", "x"))
	out := reg.Export()
	if len(out) != 4 {
		t.Fatalf("exported %d series, want 4", len(out))
	}
	wantNames := []string{"aaa", "bbb_total", "ccc_total", "ccc_total"}
	for i, s := range out {
		if s.Name != wantNames[i] {
			t.Fatalf("export order %v", out)
		}
	}
	if out[2].Labels[0].Value != "x" || out[3].Labels[0].Value != "y" {
		t.Fatalf("label order not deterministic: %v then %v", out[2].Labels, out[3].Labels)
	}
}
