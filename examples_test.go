package repro

// Smoke tests that every example actually runs to completion — the
// examples are the documentation's executable half, so they are held to
// the same green bar as the library. Skipped under -short (each example
// compiles and runs a small simulation).

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	examples := []struct {
		name string
		want string // a fragment the example must print
	}{
		{"quickstart", "nearest gas station"},
		{"storefinder", "privacy level sweep"},
		{"trafficcount", "district occupancy"},
		{"ecoupon", "min–max pruning eliminated"},
		{"networked", "never received a single exact"},
		{"fleetops", "end-of-shift analytics"},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+ex.name)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("example %s timed out", ex.name)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex.name, err, out)
			}
			if !strings.Contains(string(out), ex.want) {
				t.Fatalf("example %s output missing %q:\n%s", ex.name, ex.want, out)
			}
		})
	}
}
