package router

import "repro/internal/geo"

// tileGrid partitions the world into a cols×rows grid of closed tiles.
// Tiles are the unit of ownership: consistent hashing maps tile ids to
// shards (ring.go), and every routing decision reduces to either "which
// tile holds this point" or "which tiles does this rectangle intersect".
//
// Two deliberate asymmetries keep the routing exact:
//
//   - Point assignment (tileOf) is a function: every world point maps to
//     exactly one tile, boundary points to the lowest-index tile whose
//     closed rectangle contains them. Point-addressed data (stationary
//     and moving objects) lives on exactly one shard.
//   - Rectangle coverage (cover) uses *closed* tile rectangles: a query
//     rectangle touching a tile edge covers both neighbors. Coverage is
//     therefore a superset of every tile any relevant point can live in,
//     which is what the scatter completeness proofs need.
type tileGrid struct {
	world      geo.Rect
	cols, rows int
}

// tiles returns the total tile count.
func (g tileGrid) tiles() int { return g.cols * g.rows }

// xb returns the i-th vertical tile boundary (i in 0..cols). Both
// tileRect and tileOf derive boundaries from this one expression, so the
// two can never disagree about where a tile ends.
func (g tileGrid) xb(i int) float64 {
	if i >= g.cols {
		return g.world.Max.X
	}
	return g.world.Min.X + float64(i)*(g.world.Max.X-g.world.Min.X)/float64(g.cols)
}

// yb returns the j-th horizontal tile boundary (j in 0..rows).
func (g tileGrid) yb(j int) float64 {
	if j >= g.rows {
		return g.world.Max.Y
	}
	return g.world.Min.Y + float64(j)*(g.world.Max.Y-g.world.Min.Y)/float64(g.rows)
}

// tileRect returns tile t's closed rectangle.
func (g tileGrid) tileRect(t int) geo.Rect {
	c, r := t%g.cols, t/g.cols
	return geo.Rect{
		Min: geo.Point{X: g.xb(c), Y: g.yb(r)},
		Max: geo.Point{X: g.xb(c + 1), Y: g.yb(r + 1)},
	}
}

// tileOf maps a world point to its unique owning tile. The float division
// is only a first guess; the result is corrected against the exact
// boundary expressions until tileRect(tileOf(p)) provably contains p —
// the invariant the coverage proofs rest on.
func (g tileGrid) tileOf(p geo.Point) int {
	c := clampIdx(int((p.X-g.world.Min.X)/(g.world.Max.X-g.world.Min.X)*float64(g.cols)), g.cols)
	for c > 0 && p.X < g.xb(c) {
		c--
	}
	for c < g.cols-1 && p.X > g.xb(c+1) {
		c++
	}
	r := clampIdx(int((p.Y-g.world.Min.Y)/(g.world.Max.Y-g.world.Min.Y)*float64(g.rows)), g.rows)
	for r > 0 && p.Y < g.yb(r) {
		r--
	}
	for r < g.rows-1 && p.Y > g.yb(r+1) {
		r++
	}
	return r*g.cols + c
}

// cover returns the tiles whose closed rectangles intersect rect, in
// ascending tile order. A rectangle that misses the world entirely (or is
// invalid) covers nothing. The index window is estimated by division and
// widened by two (one tile for float rounding of the guess, one for
// closed tiles sharing the touched boundary), then filtered with the
// exact geometric test, so the result equals the brute-force "every tile
// t with tileRect(t) ∩ rect ≠ ∅" — the property the tile-assignment test
// pins down.
func (g tileGrid) cover(rect geo.Rect) []int {
	clamped, ok := rect.Intersect(g.world)
	if !ok {
		return nil
	}
	w := g.world.Max.X - g.world.Min.X
	h := g.world.Max.Y - g.world.Min.Y
	c0 := clampIdx(int((clamped.Min.X-g.world.Min.X)/w*float64(g.cols))-2, g.cols)
	c1 := clampIdx(int((clamped.Max.X-g.world.Min.X)/w*float64(g.cols))+2, g.cols)
	r0 := clampIdx(int((clamped.Min.Y-g.world.Min.Y)/h*float64(g.rows))-2, g.rows)
	r1 := clampIdx(int((clamped.Max.Y-g.world.Min.Y)/h*float64(g.rows))+2, g.rows)
	var out []int
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			t := r*g.cols + c
			if g.tileRect(t).Intersects(clamped) {
				out = append(out, t)
			}
		}
	}
	return out
}

// clampIdx clamps i into [0, n).
func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
