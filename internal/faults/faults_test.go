package faults

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns two ends of a real TCP connection on loopback.
func pipe(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		server, err = ln.Accept()
		close(done)
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// frame builds one [u32 length][payload] frame.
func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

func TestTrackerCountsFrames(t *testing.T) {
	var tr tracker
	if got := tr.current(); got != 1 {
		t.Fatalf("fresh tracker current = %d, want 1", got)
	}
	f1 := frame([]byte("hello"))
	f2 := frame([]byte("x"))
	// Feed byte-by-byte across both frames; the boundary must land exactly.
	stream := append(append([]byte(nil), f1...), f2...)
	for i, b := range stream {
		want := 1
		if i >= len(f1) {
			want = 2
		}
		if got := tr.current(); got != want {
			t.Fatalf("byte %d: current = %d, want %d", i, got, want)
		}
		tr.feed([]byte{b})
	}
	if got := tr.current(); got != 3 {
		t.Fatalf("after two frames current = %d, want 3", got)
	}
}

func TestDropOnNthWrite(t *testing.T) {
	client, server := pipe(t)
	fc := Wrap(client, Rule{Op: Write, Nth: 2, Action: Drop})

	if _, err := fc.Write(frame([]byte("one"))); err != nil {
		t.Fatalf("frame 1 write: %v", err)
	}
	if _, err := fc.Write(frame([]byte("two"))); !errors.Is(err, ErrInjected) {
		t.Fatalf("frame 2 write err = %v, want ErrInjected", err)
	}
	// Peer reads frame 1 intact, then EOF-ish failure.
	buf := make([]byte, 16)
	if _, err := io.ReadFull(server, buf[:7]); err != nil {
		t.Fatalf("peer read of surviving frame: %v", err)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := server.Read(buf); err == nil {
		t.Fatal("peer still readable after drop")
	}
}

func TestTruncateLeavesTornFrame(t *testing.T) {
	client, server := pipe(t)
	fc := Wrap(client, Rule{Op: Write, Nth: 1, Action: Truncate, KeepBytes: 3})

	n, err := fc.Write(frame([]byte("payload")))
	if n != 3 {
		t.Fatalf("truncated write wrote %d bytes, want 3", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated write err = %v, want ErrInjected", err)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	got, _ := io.ReadFull(server, buf)
	if got != 3 {
		t.Fatalf("peer received %d bytes of torn frame, want 3", got)
	}
}

func TestDelayIsTransparent(t *testing.T) {
	client, server := pipe(t)
	fc := Wrap(client, Rule{Op: Write, Nth: 1, Action: Delay, Delay: 50 * time.Millisecond})

	t0 := time.Now()
	if _, err := fc.Write(frame([]byte("slow"))); err != nil {
		t.Fatalf("delayed write: %v", err)
	}
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("write returned after %v, want ≥ 50ms", d)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("peer read after delay: %v", err)
	}
}

func TestReadDrop(t *testing.T) {
	client, server := pipe(t)
	fc := Wrap(client, Rule{Op: Read, Nth: 2, Action: Reset})

	go func() {
		server.Write(frame([]byte("first")))
		server.Write(frame([]byte("second")))
	}()
	buf := make([]byte, 9)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatalf("frame 1 read: %v", err)
	}
	fc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(fc, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("frame 2 read err = %v, want ErrInjected", err)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(42, 0.5, 4)
	b := Schedule(42, 0.5, 4)
	faulted := 0
	for conn := 1; conn <= 64; conn++ {
		ra, rb := a(conn), b(conn)
		if len(ra) != len(rb) {
			t.Fatalf("conn %d: plans diverge", conn)
		}
		if len(ra) == 1 {
			faulted++
			if ra[0] != rb[0] {
				t.Fatalf("conn %d: rules diverge: %+v vs %+v", conn, ra[0], rb[0])
			}
			if ra[0].Nth < 1 || ra[0].Nth > 4 {
				t.Fatalf("conn %d: frame index %d out of range", conn, ra[0].Nth)
			}
		}
	}
	if faulted == 0 || faulted == 64 {
		t.Fatalf("degenerate schedule: %d/64 connections faulted", faulted)
	}
}

func TestFlakyListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFlakyListener(ln, 3)
	defer fl.Close()
	for i := 0; i < 3; i++ {
		if _, err := fl.Accept(); !errors.Is(err, ErrTransient) {
			t.Fatalf("accept %d err = %v, want ErrTransient", i, err)
		}
	}
	go net.Dial("tcp", ln.Addr().String())
	conn, err := fl.Accept()
	if err != nil {
		t.Fatalf("accept after transient failures: %v", err)
	}
	conn.Close()
	if fl.Accepts() != 4 {
		t.Fatalf("accepts = %d, want 4", fl.Accepts())
	}
}
