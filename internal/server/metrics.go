package server

import "sync/atomic"

// Metrics are the server's monotonically increasing operation counters,
// readable without taking the server mutex. They are the observability
// surface a deployment scrapes (the database service exposes them through
// its stats message).
type Metrics struct {
	PrivateUpdates  uint64
	PrivateRemovals uint64
	MovingUpdates   uint64
	PrivateRangeQs  uint64
	PrivateNNQs     uint64
	PublicCountQs   uint64
	PublicNNQs      uint64
	ContinuousReads uint64
	SnapshotsTaken  uint64
	RestoresApplied uint64
}

// metrics is the internal atomic representation.
type metrics struct {
	privateUpdates  atomic.Uint64
	privateRemovals atomic.Uint64
	movingUpdates   atomic.Uint64
	privateRangeQs  atomic.Uint64
	privateNNQs     atomic.Uint64
	publicCountQs   atomic.Uint64
	publicNNQs      atomic.Uint64
	continuousReads atomic.Uint64
	snapshotsTaken  atomic.Uint64
	restoresApplied atomic.Uint64
}

// Metrics returns a snapshot of the counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		PrivateUpdates:  s.met.privateUpdates.Load(),
		PrivateRemovals: s.met.privateRemovals.Load(),
		MovingUpdates:   s.met.movingUpdates.Load(),
		PrivateRangeQs:  s.met.privateRangeQs.Load(),
		PrivateNNQs:     s.met.privateNNQs.Load(),
		PublicCountQs:   s.met.publicCountQs.Load(),
		PublicNNQs:      s.met.publicNNQs.Load(),
		ContinuousReads: s.met.continuousReads.Load(),
		SnapshotsTaken:  s.met.snapshotsTaken.Load(),
		RestoresApplied: s.met.restoresApplied.Load(),
	}
}
