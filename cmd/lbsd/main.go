// Command lbsd runs the privacy-aware location-based database server as a
// TCP service (the right-hand tier of Figure 1). It receives cloaked
// regions from the anonymizer and serves private-over-public and
// public-over-private queries.
//
// With -metrics-addr set, an operational HTTP endpoint serves /metrics
// (Prometheus text format: the lbs_* server series and proto_* wire
// series), /healthz, and the net/http/pprof profiling endpoints under
// /debug/pprof/. The same series are answered over TCP to MsgMetrics
// requests, which is how lbsload prints live percentile tables.
//
// Usage:
//
//	lbsd -addr :7070 -world 1.0 -metrics-addr :9090
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	worldSize := flag.Float64("world", 1.0, "world is the square [0,size]²")
	snapshot := flag.String("snapshot", "", "snapshot file: restored at startup if present, written at shutdown")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	flag.Parse()

	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{World: geo.R(0, 0, *worldSize, *worldSize), Metrics: reg})
	if err != nil {
		log.Fatalf("lbsd: %v", err)
	}
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := srv.Restore(f); err != nil {
				log.Fatalf("lbsd: restore %s: %v", *snapshot, err)
			}
			f.Close()
			log.Printf("lbsd: restored %d public objects, %d private users from %s",
				srv.StationaryCount(), srv.PrivateUserCount(), *snapshot)
		} else if !os.IsNotExist(err) {
			log.Fatalf("lbsd: open snapshot: %v", err)
		}
	}
	svc, err := protocol.ServeDatabase(*addr, srv, log.Printf, protocol.WithMetrics(reg))
	if err != nil {
		log.Fatalf("lbsd: %v", err)
	}
	log.Printf("lbsd: privacy-aware database server listening on %s (world %.3g²)", svc.Addr(), *worldSize)
	var metricsSrv *obs.MetricsServer
	if *metricsAddr != "" {
		metricsSrv, err = obs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("lbsd: metrics endpoint: %v", err)
		}
		log.Printf("lbsd: metrics on http://%s/metrics (pprof under /debug/pprof/)", metricsSrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("lbsd: shutting down")
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if err := svc.Close(); err != nil {
		log.Printf("lbsd: close: %v", err)
	}
	if *snapshot != "" {
		tmp := *snapshot + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			log.Fatalf("lbsd: create snapshot: %v", err)
		}
		if err := srv.Snapshot(f); err != nil {
			f.Close()
			log.Fatalf("lbsd: snapshot: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("lbsd: close snapshot: %v", err)
		}
		if err := os.Rename(tmp, *snapshot); err != nil {
			log.Fatalf("lbsd: publish snapshot: %v", err)
		}
		log.Printf("lbsd: state saved to %s", *snapshot)
	}
}
