package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/server"
)

var world = geo.R(0, 0, 1, 1)

func noon() time.Time { return time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC) }

// testSystem builds a system with nUsers anonymized users (constant k) and
// nPOIs "gas" objects, returning the exact user locations.
func testSystem(t testing.TB, nUsers, k, nPOIs int) (*System, []geo.Point) {
	t.Helper()
	sys, err := NewSystem(Config{World: world, Clock: noon})
	if err != nil {
		t.Fatal(err)
	}
	userPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: nUsers, World: world, Dist: mobility.Uniform, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := privacy.Constant(privacy.Requirement{K: k})
	for i, p := range userPts {
		id := uint64(i + 1)
		if err := sys.RegisterUser(id, prof); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.UpdateLocation(id, p); err != nil {
			t.Fatal(err)
		}
	}
	poiPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: nPOIs, World: world, Dist: mobility.Uniform, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]server.PublicObject, nPOIs)
	for i, p := range poiPts {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "gas", Loc: p}
	}
	if err := sys.LoadPublicObjects(objs); err != nil {
		t.Fatal(err)
	}
	return sys, userPts
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewSystem(Config{World: world, Algorithm: anonymizer.Algorithm(77)}); err == nil {
		t.Error("bad algorithm accepted")
	}
}

func TestUpdateLocationForwardsToServer(t *testing.T) {
	sys, pts := testSystem(t, 200, 10, 0)
	if got := sys.Server.PrivateUserCount(); got != 200 {
		t.Fatalf("server tracks %d users", got)
	}
	// Every stored region covers its user's exact location.
	for i, p := range pts {
		region, ok := sys.Server.PrivateRegion(uint64(i + 1))
		if !ok || !region.Contains(p) {
			t.Fatalf("server region for user %d wrong: %v %v", i+1, region, ok)
		}
	}
	// Region areas reported back to users are nonzero for k>1.
	area, err := sys.UpdateLocation(1, pts[0])
	if err != nil || area <= 0 {
		t.Errorf("UpdateLocation area = %v, %v", area, err)
	}
}

// End-to-end Figure 5b: the refined private NN answer equals the true NN.
func TestFindNearestExactness(t *testing.T) {
	sys, pts := testSystem(t, 1000, 15, 500)
	objs := sys.Server
	_ = objs
	all, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 500, World: world, Dist: mobility.Uniform, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		uid := uint64(trial*29 + 1)
		loc := pts[uid-1]
		got, stats, err := sys.FindNearest(uid, loc, "gas")
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates < 1 || stats.Bytes <= 0 || stats.RegionArea <= 0 {
			t.Fatalf("stats = %+v", stats)
		}
		// Brute-force truth.
		bestD := math.Inf(1)
		for _, p := range all {
			if d := loc.Dist2(p); d < bestD {
				bestD = d
			}
		}
		if loc.Dist2(got.Loc) != bestD {
			t.Fatalf("trial %d: refined NN at d²=%v, truth d²=%v", trial, loc.Dist2(got.Loc), bestD)
		}
	}
}

// End-to-end Figure 5a: the refined private range answer equals brute force.
func TestFindWithinExactness(t *testing.T) {
	sys, pts := testSystem(t, 800, 10, 400)
	all, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 400, World: world, Dist: mobility.Uniform, Seed: 2,
	})
	const radius = 0.1
	for trial := 0; trial < 20; trial++ {
		uid := uint64(trial*37 + 1)
		loc := pts[uid-1]
		got, stats, err := sys.FindWithin(uid, loc, radius, "gas")
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range all {
			if loc.Dist(p) <= radius {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: FindWithin returned %d, brute %d", trial, len(got), want)
		}
		if stats.Candidates < len(got) {
			t.Fatalf("candidates %d < refined answers %d", stats.Candidates, len(got))
		}
		// Results sorted by distance.
		for i := 1; i < len(got); i++ {
			if loc.Dist2(got[i].Loc) < loc.Dist2(got[i-1].Loc) {
				t.Fatal("results not sorted")
			}
		}
	}
}

func TestFindNearestNoObjects(t *testing.T) {
	sys, pts := testSystem(t, 100, 5, 0)
	if _, _, err := sys.FindNearest(1, pts[0], "gas"); err == nil {
		t.Error("expected error with no public objects")
	}
}

func TestCountUsersIn(t *testing.T) {
	sys, pts := testSystem(t, 2000, 20, 0)
	area := geo.R(0.25, 0.25, 0.75, 0.75)
	res, err := sys.CountUsersIn(area)
	if err != nil {
		t.Fatal(err)
	}
	truth := 0
	for _, p := range pts {
		if area.Contains(p) {
			truth++
		}
	}
	if truth < res.Answer.Lo || truth > res.Answer.Hi {
		t.Fatalf("interval [%d,%d] misses truth %d", res.Answer.Lo, res.Answer.Hi, truth)
	}
	// Expected value within 15% of truth for this population size.
	if math.Abs(res.Answer.Expected-float64(truth)) > 0.15*float64(truth) {
		t.Errorf("Expected %v vs truth %d", res.Answer.Expected, truth)
	}
}

func TestNearestUser(t *testing.T) {
	sys, pts := testSystem(t, 500, 10, 0)
	q := geo.Pt(0.5, 0.5)
	res, err := sys.NearestUser(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// The truly nearest user must be among the candidates.
	bestD := math.Inf(1)
	var bestID uint64
	for i, p := range pts {
		if d := q.Dist2(p); d < bestD {
			bestD, bestID = d, uint64(i+1)
		}
	}
	if _, ok := res.CandidateRegions[bestID]; !ok {
		t.Errorf("true nearest user %d pruned", bestID)
	}
}

func TestNeighborsNearMe(t *testing.T) {
	sys, pts := testSystem(t, 1000, 10, 0)
	uid := uint64(17)
	ans, err := sys.NeighborsNearMe(uid, pts[uid-1], 0.1)
	if err != nil {
		t.Fatal(err)
	}
	truth := 0
	for i, p := range pts {
		if uint64(i+1) == uid {
			continue
		}
		if pts[uid-1].Dist(p) <= 0.1 {
			truth++
		}
	}
	// The conservative interval must include the truth.
	if truth < ans.Lo || truth > ans.Hi {
		t.Errorf("interval [%d,%d] misses truth %d", ans.Lo, ans.Hi, truth)
	}
	if ans.Expected <= 0 {
		t.Error("expected count should be positive")
	}
}

func TestQueryStatsReflectPrivacyTradeoff(t *testing.T) {
	// Larger k ⇒ larger regions ⇒ more candidates (the paper's central
	// trade-off) — measured end to end.
	candidatesAt := func(k int) float64 {
		sys, pts := testSystem(t, 2000, k, 1000)
		total := 0
		const trials = 25
		for i := 0; i < trials; i++ {
			uid := uint64(i*53 + 1)
			_, stats, err := sys.FindNearest(uid, pts[uid-1], "gas")
			if err != nil {
				t.Fatal(err)
			}
			total += stats.Candidates
		}
		return float64(total) / trials
	}
	small := candidatesAt(5)
	large := candidatesAt(200)
	if large <= small {
		t.Errorf("k=200 candidates (%v) should exceed k=5 (%v)", large, small)
	}
}

func BenchmarkEndToEndFindNearest(b *testing.B) {
	sys, pts := testSystem(b, 10000, 50, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uid := uint64(i%10000) + 1
		if _, _, err := sys.FindNearest(uid, pts[uid-1], "gas"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWatchNearbyLifecycle(t *testing.T) {
	sys, pts := testSystem(t, 500, 10, 0)
	uid := uint64(33)
	loc := pts[uid-1]
	const radius = 0.1

	watch, err := sys.WatchNearby(uid, loc, radius)
	if err != nil {
		t.Fatal(err)
	}
	// No movers yet.
	got, err := sys.NearbyNow(watch, loc, radius)
	if err != nil || len(got) != 0 {
		t.Fatalf("initial nearby = %v, %v", got, err)
	}
	// A patrol car drives close.
	if err := sys.UpdateMover(1, loc.Add(geo.Pt(0.02, 0))); err != nil {
		t.Fatal(err)
	}
	got, err = sys.NearbyNow(watch, loc, radius)
	if err != nil || len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("after mover enters = %v, %v", got, err)
	}
	// It drives away.
	if err := sys.UpdateMover(1, geo.Pt(math.Mod(loc.X+0.5, 1), math.Mod(loc.Y+0.5, 1))); err != nil {
		t.Fatal(err)
	}
	got, _ = sys.NearbyNow(watch, loc, radius)
	if len(got) != 0 {
		t.Fatalf("after mover leaves = %v", got)
	}
	// The user moves; re-anchor the watch.
	newLoc := geo.Pt(math.Mod(loc.X+0.3, 1), loc.Y)
	if err := sys.MoveWatch(watch, uid, newLoc); err != nil {
		t.Fatal(err)
	}
	if err := sys.UpdateMover(2, newLoc.Add(geo.Pt(0.01, 0.01))); err != nil {
		t.Fatal(err)
	}
	got, _ = sys.NearbyNow(watch, newLoc, radius)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("after re-anchor = %v", got)
	}
	if !sys.StopWatch(watch) || sys.StopWatch(watch) {
		t.Error("StopWatch misbehaved")
	}
	if _, err := sys.NearbyNow(watch, newLoc, radius); err == nil {
		t.Error("NearbyNow after stop should error")
	}
}

// The continuous monitor's refined answers always equal a one-shot
// FindWithin over the same data — completeness of the maintained set.
func TestWatchNearbyMatchesOneShot(t *testing.T) {
	sys, pts := testSystem(t, 800, 15, 0)
	uid := uint64(5)
	loc := pts[uid-1]
	const radius = 0.12

	watch, err := sys.WatchNearby(uid, loc, radius)
	if err != nil {
		t.Fatal(err)
	}
	// Drive 50 movers around randomly.
	moverPts, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 50, World: world, Dist: mobility.Uniform, Seed: 99,
	})
	for round := 0; round < 10; round++ {
		for i, p := range moverPts {
			np := world.ClampPoint(geo.Pt(p.X+float64(round)*0.01, p.Y))
			if err := sys.UpdateMover(uint64(i+1), np); err != nil {
				t.Fatal(err)
			}
		}
		cont, err := sys.NearbyNow(watch, loc, radius)
		if err != nil {
			t.Fatal(err)
		}
		// One-shot over the same movers ("" class includes moving objects).
		oneShot, _, err := sys.FindWithin(uid, loc, radius, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(cont) != len(oneShot) {
			t.Fatalf("round %d: continuous %d != one-shot %d", round, len(cont), len(oneShot))
		}
	}
}

func TestHistoryRecording(t *testing.T) {
	sys, err := NewSystem(Config{World: world, Clock: noon, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.History == nil {
		t.Fatal("history not enabled")
	}
	prof := privacy.Constant(privacy.Requirement{K: 1})
	// Background crowd so k can be met later if needed.
	if err := sys.RegisterUser(1, prof); err != nil {
		t.Fatal(err)
	}

	// Walk the user across the map over 10 ticks.
	for i := 0; i < 10; i++ {
		sys.AdvanceTime()
		x := 0.05 + float64(i)*0.1
		if _, err := sys.UpdateLocation(1, geo.Pt(x, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Now() != 10 {
		t.Errorf("Now = %d", sys.Now())
	}
	tl := sys.History.Timeline(1, 0, 100)
	if len(tl) != 10 {
		t.Fatalf("timeline has %d spans, want 10", len(tl))
	}
	// Historical occupancy of the left half during the first half of the
	// walk should far exceed the second half.
	left := geo.R(0, 0, 0.5, 1)
	early, err := sys.HistoricalOccupancy(left, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	late, err := sys.HistoricalOccupancy(left, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	if early.Expected <= late.Expected {
		t.Errorf("early occupancy %v should exceed late %v", early.Expected, late.Expected)
	}
}

func TestHistoryDisabledErrors(t *testing.T) {
	sys, _ := NewSystem(Config{World: world, Clock: noon})
	if sys.History != nil {
		t.Error("history enabled without flag")
	}
	if _, err := sys.HistoricalOccupancy(world, 0, 10); err == nil {
		t.Error("HistoricalOccupancy without history should error")
	}
}
