// Trafficcount: the public-query-over-private-data scenario of Figure 6a.
// A traffic administrator monitors how many mobile users are inside city
// districts while every user is cloaked. The example shows the three answer
// formats of the paper (expected value, interval, PDF), the naive
// solid-object baseline, and live continuous queries tracking a moving
// population.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
)

func main() {
	world := geo.R(0, 0, 1, 1)
	sys, err := core.NewSystem(core.Config{World: world})
	if err != nil {
		log.Fatal(err)
	}

	// A rush-hour population driving on a road grid.
	net, err := mobility.NewRoadNetwork(world, 12, 12)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := mobility.NewRoadSim(mobility.RoadConfig{
		Net: net, N: 4000, MinSpeed: 0.1, MaxSpeed: 0.4, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	prof := privacy.Constant(privacy.Requirement{K: 30})
	for _, u := range sim.Users() {
		if err := sys.RegisterUser(u.ID, prof); err != nil {
			log.Fatal(err)
		}
		if _, err := sys.UpdateLocation(u.ID, u.Loc); err != nil {
			log.Fatal(err)
		}
	}

	districts := map[string]geo.Rect{
		"downtown":  geo.R(0.35, 0.35, 0.65, 0.65),
		"northside": geo.R(0.0, 0.7, 1.0, 1.0),
		"west end":  geo.R(0.0, 0.0, 0.25, 0.7),
	}

	fmt.Println("district occupancy (all three answer formats of Figure 6a):")
	for name, rect := range districts {
		res, err := sys.CountUsersIn(rect)
		if err != nil {
			log.Fatal(err)
		}
		truth := 0
		for _, u := range sim.Users() {
			if rect.Contains(u.Loc) {
				truth++
			}
		}
		fmt.Printf("\n%s (true count, unknown to the server: %d)\n", name, truth)
		fmt.Printf("  expected value : %.1f users\n", res.Answer.Expected)
		fmt.Printf("  interval       : [%d, %d]\n", res.Answer.Lo, res.Answer.Hi)
		fmt.Printf("  naive baseline : %d (counts every overlapping region)\n", res.NaiveCount)
		fmt.Printf("  PDF sketch     : %s\n", sketchPDF(res.Answer.PDF, res.Answer.Mode()))
	}

	fmt.Println("\nnote: the expected value rests on the paper's assumption that each")
	fmt.Println("user is uniformly distributed inside her region. Road-constrained")
	fmt.Println("populations violate it, so expect bias here; the interval answer is")
	fmt.Println("the distribution-free guarantee and always brackets the truth.")

	// Continuous monitoring: register a standing query and watch it track
	// the population as cars move.
	fmt.Println("\ncontinuous downtown monitor over 10 simulation ticks:")
	qid, err := sys.Server.RegisterContinuousCount(districts["downtown"])
	if err != nil {
		log.Fatal(err)
	}
	for tick := 1; tick <= 10; tick++ {
		sim.Tick()
		for _, u := range sim.Users() {
			if _, err := sys.UpdateLocation(u.ID, u.Loc); err != nil {
				log.Fatal(err)
			}
		}
		ans, _ := sys.Server.ContinuousCount(qid)
		truth := 0
		for _, u := range sim.Users() {
			if districts["downtown"].Contains(u.Loc) {
				truth++
			}
		}
		fmt.Printf("  tick %2d: expected %7.1f  interval [%4d,%4d]  (truth %d)\n",
			tick, ans.Expected, ans.Lo, ans.Hi, truth)
	}
}

// sketchPDF renders the distribution around its mode as a tiny bar chart.
func sketchPDF(pdf []float64, mode int) string {
	lo := mode - 3
	if lo < 0 {
		lo = 0
	}
	hi := mode + 4
	if hi > len(pdf) {
		hi = len(pdf)
	}
	var b strings.Builder
	for i := lo; i < hi; i++ {
		bars := int(pdf[i] * 200)
		if bars > 10 {
			bars = 10
		}
		fmt.Fprintf(&b, "%d:%s ", i, strings.Repeat("▙", bars+1))
	}
	return b.String()
}
