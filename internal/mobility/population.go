// Package mobility is the synthetic workload substrate: it generates user
// populations with controllable spatial skew, moves them with a random
// waypoint or grid road-network model, and places the stationary public
// objects (gas stations, restaurants, ...) that private queries target.
//
// The paper evaluates no real traces (it is a vision paper) and none are
// available offline, so this package is the substitution documented in
// DESIGN.md: skewed, continuously-updating synthetic populations that
// exercise exactly the cloaking and query-processing code paths.
package mobility

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Distribution selects the spatial placement model for generated points.
type Distribution uint8

const (
	// Uniform scatters points independently and uniformly over the world.
	Uniform Distribution = iota
	// Gaussian places points around NumClusters centers with the given
	// standard deviation — downtown-style density bumps.
	Gaussian
	// ZipfClusters places points around NumClusters centers whose popularity
	// follows a Zipf law: a few dense hotspots and a long sparse tail, the
	// adversarial case for k-anonymity cloaking (huge regions in the tail).
	ZipfClusters
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case ZipfClusters:
		return "zipf"
	default:
		return fmt.Sprintf("distribution(%d)", uint8(d))
	}
}

// PopulationSpec configures a generated point population.
type PopulationSpec struct {
	N           int          // number of points
	World       geo.Rect     // bounding world; points are clipped into it
	Dist        Distribution // placement model
	NumClusters int          // for Gaussian/ZipfClusters; default 10
	Stddev      float64      // cluster spread; default 5% of world width
	ZipfS       float64      // Zipf exponent; default 1.0
	Seed        uint64       // RNG seed
}

func (s PopulationSpec) withDefaults() PopulationSpec {
	if s.NumClusters <= 0 {
		s.NumClusters = 10
	}
	if s.Stddev <= 0 {
		s.Stddev = 0.05 * s.World.Width()
	}
	if s.ZipfS <= 0 {
		s.ZipfS = 1.0
	}
	return s
}

// Validate reports configuration errors.
func (s PopulationSpec) Validate() error {
	if s.N < 0 {
		return fmt.Errorf("mobility: negative population size %d", s.N)
	}
	if !s.World.Valid() || s.World.Area() <= 0 {
		return fmt.Errorf("mobility: invalid world %v", s.World)
	}
	return nil
}

// GeneratePoints produces N points under the spec. The same spec always
// produces the same points.
func GeneratePoints(spec PopulationSpec) ([]geo.Point, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	src := rng.New(spec.Seed)
	pts := make([]geo.Point, spec.N)
	switch spec.Dist {
	case Uniform:
		for i := range pts {
			pts[i] = geo.Pt(
				src.Range(spec.World.Min.X, spec.World.Max.X),
				src.Range(spec.World.Min.Y, spec.World.Max.Y),
			)
		}
	case Gaussian, ZipfClusters:
		centers := make([]geo.Point, spec.NumClusters)
		for i := range centers {
			centers[i] = geo.Pt(
				src.Range(spec.World.Min.X, spec.World.Max.X),
				src.Range(spec.World.Min.Y, spec.World.Max.Y),
			)
		}
		var pick func() int
		if spec.Dist == Gaussian {
			pick = func() int { return src.Intn(spec.NumClusters) }
		} else {
			z := rng.NewZipf(src, spec.NumClusters, spec.ZipfS)
			pick = z.Next
		}
		for i := range pts {
			c := centers[pick()]
			p := geo.Pt(src.NormMS(c.X, spec.Stddev), src.NormMS(c.Y, spec.Stddev))
			pts[i] = spec.World.ClampPoint(p)
		}
	default:
		return nil, fmt.Errorf("mobility: unknown distribution %v", spec.Dist)
	}
	return pts, nil
}

// ObjectClass labels a kind of public object for multi-class datasets
// (e.g. gas stations vs restaurants in the store-finder example).
type ObjectClass struct {
	Name string
	N    int
	Dist Distribution
}

// PublicObject is a stationary public-data item with an exact location.
type PublicObject struct {
	ID    uint64
	Class string
	Loc   geo.Point
}

// GeneratePublicObjects places stationary objects of several classes.
// IDs are assigned sequentially from 1 across all classes.
func GeneratePublicObjects(world geo.Rect, seed uint64, classes ...ObjectClass) ([]PublicObject, error) {
	var out []PublicObject
	id := uint64(1)
	for ci, cl := range classes {
		pts, err := GeneratePoints(PopulationSpec{
			N: cl.N, World: world, Dist: cl.Dist, Seed: seed + uint64(ci)*7919,
		})
		if err != nil {
			return nil, fmt.Errorf("class %q: %w", cl.Name, err)
		}
		for _, p := range pts {
			out = append(out, PublicObject{ID: id, Class: cl.Name, Loc: p})
			id++
		}
	}
	return out, nil
}
