package trace

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying sc.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context carried by ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// Start opens a child span under the context's current span and returns
// a derived context with the new span installed as parent. When ctx
// carries no sampled trace (or t is nil) it returns an inert span and
// ctx unchanged — the one-liner instrumentation sites rely on this:
//
//	sp, ctx := trace.Start(ctx, t, "anon_cloak")
//	defer sp.End()
func Start(ctx context.Context, t *Tracer, name string) (Span, context.Context) {
	sc, ok := FromContext(ctx)
	if !ok || !sc.Sampled() {
		return Span{}, ctx
	}
	sp := t.StartSpan(sc, name)
	if !sp.Recording() {
		return Span{}, ctx
	}
	return sp, NewContext(ctx, sp.Context())
}
