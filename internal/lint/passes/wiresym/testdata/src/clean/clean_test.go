package fixture

import "testing"

// FuzzDecodeItems covers MsgItems' capHint-guarded decode path; wiresym
// requires it to exist here and to be listed in the fixture's Makefile.
func FuzzDecodeItems(f *testing.F) {
	f.Add([]byte{2, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeItems(&Decoder{buf: data})
	})
}
