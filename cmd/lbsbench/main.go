// Command lbsbench regenerates every experiment in EXPERIMENTS.md — one
// per figure of the paper plus the Section 5.3 scalability studies. Each
// experiment prints the table its EXPERIMENTS.md section records.
//
// Usage:
//
//	lbsbench                 # run everything
//	lbsbench -exp E2,E3      # selected experiments
//	lbsbench -n 50000        # larger population
//	lbsbench -seed 7         # different reproducible seed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// experiment is one reproducible study.
type experiment struct {
	id    string
	title string
	run   func(cfg benchConfig)
}

// benchConfig carries the shared knobs.
type benchConfig struct {
	n    int    // mobile-user population
	objs int    // public-object count
	seed uint64 // base RNG seed
}

var experiments = []experiment{
	{"E1", "Figure 2 — temporal privacy profiles", expProfiles},
	{"E2", "Figure 3 — data-dependent cloaking (naive vs MBR)", expDataDependent},
	{"E3", "Figure 4 — space-dependent cloaking (quadtree vs grid)", expSpaceDependent},
	{"E4", "Figure 5a — private range queries over public data", expPrivateRange},
	{"E5", "Figure 5b — private NN queries over public data", expPrivateNN},
	{"E6", "Figure 6a — public probabilistic count over private data", expPublicCount},
	{"E7", "Figure 6b — public NN over private data (e-coupon)", expPublicNN},
	{"E8", "Section 5.3 — incremental cloak evaluation", expIncremental},
	{"E9", "Section 5.3 — shared (batch) execution", expShared},
	{"E10", "Section 5 — best-effort contradictory profiles", expBestEffort},
	{"E11", "Figure 1 — three-tier deployment end to end (TCP)", expEndToEnd},
	{"E12", "Section 2.1 — alternative mechanisms (dummies, landmarks)", expAlternatives},
	{"E13", "Section 2.1 — trajectory-linking adversary", expTracking},
	{"E14", "Section 2.1 — spatio-temporal cloaking (latency vs area)", expTemporal},
	{"E15", "ablation — region index vs full scan", expRegionIndex},
	{"E16", "sharded parallel anonymizer pipeline (regression harness)", expParallel},
	{"E17", "shared-execution batch query engine (regression harness)", expServerBatch},
	{"E20", "spatially-partitioned routing tier — 1 shard vs N shards (TCP)", expRouterScale},
}

// Bench-harness knobs shared with exp_parallel.go.
var (
	benchOut        string
	benchCompare    string
	benchTolerance  float64
	benchMinSpeedup float64
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	n := flag.Int("n", 10000, "mobile-user population")
	objs := flag.Int("objs", 10000, "public-object count")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.StringVar(&benchOut, "bench-out", "", "write the E16/E17 report to this JSON file (run one harness experiment at a time)")
	flag.StringVar(&benchCompare, "bench-compare", "", "compare E16/E17 against this baseline JSON; regressions fail the run")
	flag.Float64Var(&benchTolerance, "bench-tolerance", 0.30, "allowed throughput drop vs the baseline (fraction)")
	flag.Float64Var(&benchMinSpeedup, "bench-min-speedup", 2.0, "E17 gate: minimum batch/workers=4 speedup over per-query at GOMAXPROCS ≥ 4")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		known := map[string]bool{}
		for _, e := range experiments {
			known[e.id] = true
		}
		var unknown []string
		for id := range want {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			log.Fatalf("lbsbench: unknown experiments: %s", strings.Join(unknown, ", "))
		}
	}

	cfg := benchConfig{n: *n, objs: *objs, seed: *seed}
	start := time.Now()
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", e.id, e.title)
		t0 := time.Now()
		e.run(cfg)
		fmt.Printf("--- %s done in %v ---\n", e.id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "lbsbench: nothing to run")
		os.Exit(1)
	}
	fmt.Printf("\n%d experiment(s) in %v (n=%d, objs=%d, seed=%d)\n",
		ran, time.Since(start).Round(time.Millisecond), cfg.n, cfg.objs, cfg.seed)
	if len(benchRegressions) > 0 {
		fmt.Fprintln(os.Stderr, "\nlbsbench: benchmark regressions:")
		for _, r := range benchRegressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}

// table is a minimal column formatter over tabwriter.
type table struct {
	w *tabwriter.Writer
}

func newTable(headers ...string) *table {
	t := &table{w: tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)}
	fmt.Fprintln(t.w, strings.Join(headers, "\t"))
	sep := make([]string, len(headers))
	for i, h := range headers {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(t.w, strings.Join(sep, "\t"))
	return t
}

func (t *table) row(cells ...interface{}) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			parts[i] = v.Round(time.Microsecond).String()
		default:
			parts[i] = fmt.Sprint(v)
		}
	}
	fmt.Fprintln(t.w, strings.Join(parts, "\t"))
}

func (t *table) flush() { t.w.Flush() }
