// Package trace is the repo's distributed-tracing subsystem: per-request
// spans across the three tiers of Figure 1 (mobile client → location
// anonymizer → database server). A trace is minted once at the edge (the
// load tool or protocol.Client), carried across both TCP hops inside the
// MsgTraced envelope frame, and recorded as named spans at every pipeline
// stage. Each process keeps its spans in a fixed-size lock-free ring
// buffer; the rings are pulled (over HTTP /traces or the MsgTraces wire
// message) and merged into one cross-process timeline per request.
//
// The design constraints mirror the obs package: recording a span on the
// hot path takes no locks (an atomic cursor plus an atomic pointer store),
// an unsampled request costs two branches, and a nil *Tracer is a valid
// no-op tracer so call sites never nil-check.
package trace

import (
	"math"
	"sync/atomic"
	"time"
)

// FlagSampled marks a trace whose spans are recorded. The decision is
// made once, at the root, and propagated in the envelope; downstream
// processes obey the flag instead of re-sampling, so a trace is always
// recorded in full or not at all.
const FlagSampled uint8 = 1 << 0

// SpanContext identifies one position in one trace: the trace it belongs
// to, the span that is currently open, and the sampling decision. It is
// what crosses process boundaries (18 bytes in the MsgTraced envelope).
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8
}

// Sampled reports whether spans under this context should be recorded.
func (sc SpanContext) Sampled() bool {
	return sc.TraceID != 0 && sc.Flags&FlagSampled != 0
}

// Attr is one span attribute: a small typed key/value recorded with the
// span (algorithm name, node-visit count, retry attempt, …).
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v, IsStr: true} }

// SpanRecord is one finished span as it sits in the ring: immutable once
// stored, so snapshot readers can share it without copying.
type SpanRecord struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for a root span
	Name     string // snake_case, family-prefixed (lbsvet obsname enforces)
	Proc     string // recording process ("client", "anonymizer", "lbsd")
	Start    int64  // wall clock, Unix nanoseconds (cross-process alignment)
	Dur      int64  // nanoseconds
	Attrs    []Attr
}

// Config parameterizes a Tracer.
type Config struct {
	// Process names the recording process in every span (and the Perfetto
	// process track).
	Process string
	// Ring is the span capacity of the main ring buffer (default 4096).
	Ring int
	// Sample is the root sampling rate in [0,1]. Applied only when this
	// tracer mints a root; propagated traces obey their sampled flag.
	Sample float64
	// SlowThreshold pins spans at least this slow into a separate ring
	// that main-ring churn cannot evict (0 disables slow capture).
	SlowThreshold time.Duration
	// SlowRing is the pinned-span capacity (default 512).
	SlowRing int
}

// Tracer mints, records, and exports spans for one process. All methods
// are safe for concurrent use and safe on a nil receiver (no-ops), so
// tracing can be threaded through constructors unconditionally.
type Tracer struct {
	proc        string
	sampleBound uint64 // sample iff mix64(traceID) <= sampleBound; 0 = never
	slowNanos   int64  // 0 = slow capture off

	idBase uint64
	idSeq  atomic.Uint64

	ring ring
	slow ring
}

// New builds a Tracer. A Sample of 0 still propagates incoming sampled
// traces — it only stops this process from minting new ones.
func New(cfg Config) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 4096
	}
	if cfg.SlowRing <= 0 {
		cfg.SlowRing = 512
	}
	t := &Tracer{
		proc:      cfg.Process,
		slowNanos: cfg.SlowThreshold.Nanoseconds(),
		idBase:    mix64(uint64(time.Now().UnixNano())),
	}
	switch {
	case cfg.Sample >= 1:
		t.sampleBound = math.MaxUint64
	case cfg.Sample > 0:
		t.sampleBound = uint64(cfg.Sample * float64(math.MaxUint64))
	}
	t.ring.init(cfg.Ring)
	t.slow.init(cfg.SlowRing)
	return t
}

// Process returns the configured process name ("" on a nil tracer).
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// nextID returns a nonzero process-unique identifier. IDs from different
// processes must not collide within one trace (parent links cross the
// wire), so the sequence is mixed with a per-tracer time-seeded base.
func (t *Tracer) nextID() uint64 {
	id := mix64(t.idBase + t.idSeq.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// StartRoot mints a new trace and opens its root span. The sampling
// decision is taken here and here only; an unsampled root returns an
// inert span whose context reports Sampled() == false.
func (t *Tracer) StartRoot(name string) Span {
	if t == nil || t.sampleBound == 0 {
		return Span{}
	}
	traceID := t.nextID()
	if mix64(traceID) > t.sampleBound {
		return Span{}
	}
	return t.open(SpanContext{TraceID: traceID, Flags: FlagSampled}, name)
}

// StartSpan opens a child span under parent. When the parent is not
// sampled (or the tracer is nil) the span is inert and free.
func (t *Tracer) StartSpan(parent SpanContext, name string) Span {
	if t == nil || !parent.Sampled() {
		return Span{}
	}
	return t.open(parent, name)
}

func (t *Tracer) open(parent SpanContext, name string) Span {
	rec := &SpanRecord{
		TraceID:  parent.TraceID,
		SpanID:   t.nextID(),
		ParentID: parent.SpanID,
		Name:     name,
		Proc:     t.proc,
	}
	return Span{t: t, rec: rec, start: time.Now()}
}

// record files a finished span, pinning slow ones.
func (t *Tracer) record(rec *SpanRecord) {
	t.ring.put(rec)
	if t.slowNanos > 0 && rec.Dur >= t.slowNanos {
		t.slow.put(rec)
	}
}

// Snapshot returns every span currently held (main ring plus pinned slow
// spans, deduplicated), unordered. Safe to call while spans are being
// recorded; records are immutable.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	main := t.ring.snapshot()
	slow := t.slow.snapshot()
	if len(slow) == 0 {
		return main
	}
	seen := make(map[[2]uint64]struct{}, len(main))
	for i := range main {
		seen[[2]uint64{main[i].TraceID, main[i].SpanID}] = struct{}{}
	}
	for i := range slow {
		k := [2]uint64{slow[i].TraceID, slow[i].SpanID}
		if _, dup := seen[k]; !dup {
			main = append(main, slow[i])
		}
	}
	return main
}

// Span is one open span. The zero value is inert: Context() is unsampled
// and End()/SetAttrs() are free no-ops, so instrumentation never branches.
type Span struct {
	t     *Tracer
	rec   *SpanRecord
	start time.Time
}

// Recording reports whether this span will be recorded at End.
func (s Span) Recording() bool { return s.rec != nil }

// Context returns the context to propagate to children (this span as
// parent). Inert spans return the zero context.
func (s Span) Context() SpanContext {
	if s.rec == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID, Flags: FlagSampled}
}

// SetAttrs attaches attributes. Call before End; later calls are lost.
func (s Span) SetAttrs(attrs ...Attr) {
	if s.rec == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
}

// End closes the span and files it into the tracer's ring. End must be
// called at most once; the record must not be touched afterwards.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	s.rec.Start = s.start.UnixNano()
	s.rec.Dur = int64(time.Since(s.start))
	s.t.record(s.rec)
}

// ring is a fixed-size lock-free span buffer: an atomic cursor hands out
// slots, an atomic pointer store publishes the (immutable) record. Under
// churn a snapshot may miss a slot being concurrently overwritten — the
// buffer is a best-effort flight recorder, not a log.
type ring struct {
	slots []atomic.Pointer[SpanRecord]
	cur   atomic.Uint64
}

func (r *ring) init(n int) { r.slots = make([]atomic.Pointer[SpanRecord], n) }

func (r *ring) put(rec *SpanRecord) {
	i := r.cur.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(rec)
}

func (r *ring) snapshot() []SpanRecord {
	out := make([]SpanRecord, 0, len(r.slots))
	for i := range r.slots {
		if rec := r.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer whose output
// is uniform enough for both ID generation and threshold sampling.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
