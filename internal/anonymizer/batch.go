package anonymizer

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/trace"
)

// BatchUpdate processes many location updates in one shared pass (Section
// 5.3). With a space-dependent algorithm, users in the same bottom pyramid
// cell with the same active requirement share a single cloaking
// computation; data-dependent algorithms fall back to per-user processing
// (their regions depend on exact positions, so sharing would be unsound).
// Results are returned in input order; a nil entry marks an update that
// failed (unknown user, passive mode, out-of-world location, or — under
// forward backpressure — a full forward queue refusing the entry).
//
// The batch drains through a three-phase pipeline:
//
//  1. Admission + relocation, parallel per shard: every shard worker
//     validates its own users' entries (profile, mode, requirement) under
//     the shard lock, then applies their index relocations as one batched
//     critical section of the single index writer. One user maps to one
//     shard and each shard walks its entries in input order, so per-user
//     ordering is preserved; the final index state is independent of the
//     cross-shard write interleaving because each user's position depends
//     only on her own last entry and cell counters commute.
//  2. Cloaking, parallel on the worker pool over the now-frozen indices
//     (read lock): quadtree batches share one descent per distinct
//     (bottom cell, requirement) key — the per-batch memo of the
//     sequential path, preserved globally across shards — while other
//     algorithms fan out per-request.
//  3. Accounting and forwarding, sequential in input order.
//
// Phases 1 and 2 are deterministic functions of the input and prior state,
// so results are bit-identical for every (Shards, BatchWorkers) setting —
// the property the differential test suite pins down.
//
// Forwarding is deduplicated: each distinct (id, region) pair is sent
// downstream once per batch — matching what per-user updates would have
// sent, minus exact duplicates.
func (a *Anonymizer) BatchUpdate(updates []cloak.Request) []*cloak.Result {
	return a.BatchUpdateCtx(context.Background(), updates)
}

// BatchUpdateCtx is BatchUpdate under a context: traced batches record the
// three pipeline phases (per-shard admission, pooled cloaking, forwarding)
// as spans with batch-size and shared-descent attributes.
//
//lint:hotpath allocs=15
func (a *Anonymizer) BatchUpdateCtx(ctx context.Context, updates []cloak.Request) []*cloak.Result {
	results := make([]*cloak.Result, len(updates))
	if len(updates) == 0 {
		return results
	}
	now := a.cfg.Clock()

	// Phase 1 — admission + batched relocations, one worker per shard
	// holding a batch's worth of entries.
	asp, _ := trace.Start(ctx, a.tracer, "anon_batch_admit")
	reqs := make([]cloak.Request, len(updates)) // resolved requirement per admitted entry
	admitted := make([]bool, len(updates))
	var shed atomic.Int64 // entries refused under forward backpressure
	byShard := make([][]int, len(a.shards))
	for i, u := range updates {
		_, si := a.shardFor(u.ID)
		byShard[si] = append(byShard[si], i)
	}
	var wg sync.WaitGroup
	for si, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *shard, si int, idxs []int) {
			defer wg.Done()
			s.mu.Lock()
			defer s.mu.Unlock()
			live := make([]int, 0, len(idxs))
			for _, i := range idxs {
				u := updates[i]
				if !u.Loc.Valid() || !a.cfg.World.Contains(u.Loc) {
					continue
				}
				if a.cfg.Forward != nil && !a.admitForward(u.ID) {
					shed.Add(1)
					continue
				}
				profile, ok := s.profiles[u.ID]
				if !ok || s.modes[u.ID] == privacy.Passive {
					continue
				}
				req, err := profile.At(now)
				if err != nil {
					continue
				}
				reqs[i] = cloak.Request{ID: u.ID, Loc: u.Loc, Req: req}
				live = append(live, i)
			}
			// This shard's relocations, applied as one write section: the
			// "single writer applying relocations in batches".
			a.idxMu.Lock()
			for _, i := range live {
				a.pyr.Upsert(reqs[i].ID, reqs[i].Loc)
				if a.pop != nil {
					a.pop.Upsert(reqs[i].ID, reqs[i].Loc)
				}
				admitted[i] = true
			}
			a.idxMu.Unlock()
			a.met.shardOps[si].Add(uint64(len(live)))
		}(a.shards[si], si, idxs)
	}
	wg.Wait()

	valid := make([]int, 0, len(updates)) // admitted entries, input order
	for i := range updates {
		if admitted[i] {
			valid = append(valid, i)
		}
	}
	creqs := make([]cloak.Request, len(valid))
	for j, i := range valid {
		creqs[j] = reqs[i]
	}
	a.met.tracked.Set(float64(a.Population()))
	if n := shed.Load(); n > 0 {
		a.met.sheds.Add(uint64(n))
	}
	if asp.Recording() {
		asp.SetAttrs(trace.Int("entries", int64(len(updates))),
			trace.Int("admitted", int64(len(valid))),
			trace.Int("shed", shed.Load()))
		asp.End()
	}

	// Phase 2 — cloak the whole batch over the frozen indices.
	t0 := time.Now()
	csp, _ := trace.Start(ctx, a.tracer, "anon_batch_cloak")
	var batchResults []cloak.Result
	var sharedHits int
	a.idxMu.RLock()
	if q, ok := a.cloaker.(*cloak.Quadtree); ok {
		bq := &cloak.BatchQuadtree{Pyr: q.Pyr}
		batchResults, sharedHits = bq.CloakAllParallel(creqs, a.workers) //lint:sanitized cloaking boundary: k-anonymous regions replace the exact points
	} else {
		batchResults = make([]cloak.Result, len(creqs))
		parallelFor(len(creqs), a.workers, func(j int) {
			r := creqs[j]
			batchResults[j] = a.cloaker.Cloak(r.ID, r.Loc, r.Req) //lint:sanitized cloaking boundary: the k-anonymous region replaces the exact point
		})
	}
	a.idxMu.RUnlock()
	if csp.Recording() {
		csp.SetAttrs(trace.Str("alg", a.cfg.Algorithm.String()),
			trace.Int("shared_hits", int64(sharedHits)))
		csp.End()
		a.met.batchLat.SetExemplar(time.Since(t0).Seconds(), ctxTraceID(ctx))
	}
	a.met.batchLat.Since(t0)

	// Phase 3 — accounting in input order.
	for j := range batchResults {
		res := batchResults[j]
		results[valid[j]] = &res
		a.ctr.updates.Add(1)
		a.met.updates.Inc()
		a.met.observeResult(res)
		if res.BestEffort() {
			a.ctr.bestEffort.Add(1)
		}
	}
	a.ctr.batches.Add(1)
	a.ctr.sharedHits.Add(uint64(sharedHits))
	a.met.batches.Inc()
	a.met.sharedHits.Add(uint64(sharedHits))
	a.met.batchSize.Observe(float64(len(updates)))
	a.met.setReuseRate(&a.ctr)

	if a.cfg.Tariff != nil {
		for si, idxs := range byShard {
			if len(idxs) == 0 {
				continue
			}
			s := a.shards[si]
			s.mu.Lock()
			for _, i := range idxs {
				if admitted[i] {
					s.charges[reqs[i].ID] += a.cfg.Tariff(reqs[i].Req)
				}
			}
			s.mu.Unlock()
		}
	}

	if a.cfg.Forward == nil {
		return results
	}
	fsp, fctx := trace.Start(ctx, a.tracer, "anon_batch_forward")
	type fwdKey struct {
		id     uint64
		region geo.Rect
	}
	sent := make(map[fwdKey]bool, len(creqs))
	var refused map[fwdKey]bool // keys shed by forward backpressure
	for j := range batchResults {
		key := fwdKey{id: creqs[j].ID, region: batchResults[j].Region}
		if sent[key] {
			continue
		}
		sent[key] = true
		// With a spill queue configured the error path is absorbed inside
		// forward; without one a failed forward is already counted there
		// and, matching the historical batch semantics, does not null the
		// caller's result. Backpressure refusals are the exception: the
		// region never reached the database or the queue, so the entry
		// fails typed rather than pretending the update landed.
		if err := a.forward(fctx, key.id, key.region); err != nil && errors.Is(err, ErrOverloaded) {
			if refused == nil {
				refused = make(map[fwdKey]bool)
			}
			refused[key] = true
		}
	}
	if refused != nil {
		for j := range batchResults {
			if refused[fwdKey{id: creqs[j].ID, region: batchResults[j].Region}] {
				results[valid[j]] = nil
			}
		}
	}
	if fsp.Recording() {
		fsp.SetAttrs(trace.Int("forwarded", int64(len(sent)-len(refused))),
			trace.Int("shed", int64(len(refused))))
		fsp.End()
	}
	return results
}

// parallelFor runs fn(0..n-1) on up to workers goroutines. Iterations are
// handed out by an atomic cursor, so callers only need fn(i) and fn(j) to
// touch disjoint state. workers ≤ 1 degenerates to a plain loop.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
