package protocol

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// Handler processes one request frame and returns the response payload.
type Handler func(typ byte, payload []byte) ([]byte, error)

// svcMetrics holds the protocol tier's registered obs series. Per-message-
// type series are looked up lazily from the registry (get-or-create), so
// only types actually seen appear on /metrics.
type svcMetrics struct {
	reg        *obs.Registry
	active     *obs.Gauge
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	dropped    *obs.Counter
	errs       *obs.Counter
	frameBytes *obs.Histogram
}

func newSvcMetrics(reg *obs.Registry) *svcMetrics {
	return &svcMetrics{
		reg:      reg,
		active:   reg.Gauge("proto_active_connections", "Live TCP connections."),
		bytesIn:  reg.Counter("proto_bytes_read_total", "Frame bytes read, headers included."),
		bytesOut: reg.Counter("proto_bytes_written_total", "Frame bytes written, headers included."),
		dropped:  reg.Counter("proto_dropped_frames_total", "Connections dropped on malformed or unreadable frames."),
		errs:     reg.Counter("proto_handler_errors_total", "Requests answered with an error frame."),
		// 16 B .. 16 MiB in ×4 steps — the frame cap is maxFrame.
		frameBytes: reg.Histogram("proto_frame_bytes",
			"Size of request frames read, headers included.", obs.ExpBuckets(16, 4, 11)),
	}
}

// observe records one served request.
func (m *svcMetrics) observe(typ byte, d time.Duration) {
	name := MessageName(typ)
	m.reg.Counter("proto_requests_total", "Requests served by message type.",
		obs.L("type", name)).Inc()
	m.reg.Histogram("proto_request_seconds", "Request service latency by message type.",
		obs.DefaultLatencyBuckets, obs.L("type", name)).ObserveDuration(d)
}

// Service is a generic framed request/response TCP server shared by the
// anonymizer and database services.
type Service struct {
	ln      net.Listener
	handler Handler
	logf    func(format string, args ...interface{})
	met     *svcMetrics // nil when the service is not instrumented

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Option configures a Service.
type Option func(*Service)

// WithMetrics instruments the service: per-message-type request counters
// and latency histograms, bytes in/out, active connections and dropped
// frames are registered as proto_* series in reg, and the service answers
// MsgMetrics requests with a snapshot of the whole registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Service) {
		if reg != nil {
			s.met = newSvcMetrics(reg)
		}
	}
}

// Serve starts accepting connections on addr ("host:port"; ":0" picks a
// free port) and dispatches frames to the handler. It returns immediately;
// use Addr for the bound address and Close to stop.
func Serve(addr string, handler Handler, logf func(string, ...interface{}), opts ...Option) (*Service, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = log.Printf
	}
	s := &Service{ln: ln, handler: handler, logf: logf, conns: make(map[net.Conn]struct{})}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Service) Addr() string { return s.ln.Addr().String() }

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Service) serveConn(conn net.Conn) {
	defer s.wg.Done()
	if s.met != nil {
		s.met.active.Inc()
	}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if s.met != nil {
			s.met.active.Dec()
		}
	}()
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			// EOF or broken peer: drop the connection. A clean close reads
			// io.EOF at a frame boundary; anything else is a dropped frame.
			if s.met != nil && !errors.Is(err, io.EOF) {
				s.met.dropped.Inc()
			}
			return
		}
		var t0 time.Time
		if s.met != nil {
			s.met.bytesIn.Add(uint64(5 + len(payload)))
			s.met.frameBytes.Observe(float64(5 + len(payload)))
			t0 = time.Now()
		}
		var resp []byte
		var herr error
		if typ == MsgMetrics && s.met != nil {
			// The metrics snapshot is served by the Service layer itself, so
			// any instrumented service answers it without the per-service
			// handlers knowing about it.
			resp = encodeMetrics(s.met.reg.Export())
		} else {
			resp, herr = s.handler(typ, payload)
		}
		if s.met != nil {
			s.met.observe(typ, time.Since(t0))
		}
		if herr != nil {
			if s.met != nil {
				s.met.errs.Inc()
			}
			var e Encoder
			e.Str(herr.Error())
			if s.met != nil {
				s.met.bytesOut.Add(uint64(5 + len(e.Bytes())))
			}
			if WriteFrame(conn, msgErr, e.Bytes()) != nil {
				return
			}
			continue
		}
		if s.met != nil {
			s.met.bytesOut.Add(uint64(5 + len(resp)))
		}
		if WriteFrame(conn, msgOK, resp) != nil {
			return
		}
	}
}

// Close stops the service and closes all live connections.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a synchronous framed request/response TCP client. It is safe
// for concurrent use; requests are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a Service.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// ErrRemote wraps an error string returned by the peer.
var ErrRemote = errors.New("protocol: remote error")

// Call sends one request and waits for its response payload.
func (c *Client) Call(typ byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, typ, payload); err != nil {
		return nil, err
	}
	rtyp, resp, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch rtyp {
	case msgOK:
		return resp, nil
	case msgErr:
		d := NewDecoder(resp)
		msg := d.Str()
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	default:
		return nil, fmt.Errorf("protocol: unexpected response type %d", rtyp)
	}
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
