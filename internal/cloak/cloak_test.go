package cloak

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/pyramid"
	"repro/internal/rng"
)

var world = geo.R(0, 0, 1, 1)

// population builds a grid-backed population and a parallel pyramid over
// the same users, with IDs 1..n. It returns the raw points too.
func population(t testing.TB, n int, dist mobility.Distribution, seed uint64) (GridPopulation, *pyramid.Pyramid, []geo.Point) {
	t.Helper()
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: n, World: world, Dist: dist, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	gi, err := grid.New(world, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	pyr, err := pyramid.New(world, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		gi.Upsert(uint64(i+1), p)
		if err := pyr.Insert(uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	return GridPopulation{Index: gi}, pyr, pts
}

func bruteCount(pts []geo.Point, r geo.Rect) int {
	n := 0
	for _, p := range pts {
		if r.Contains(p) {
			n++
		}
	}
	return n
}

// --- Naive cloaker ---

func TestNaiveSatisfiesK(t *testing.T) {
	pop, _, pts := population(t, 5000, mobility.Uniform, 1)
	n := &Naive{Pop: pop}
	for _, k := range []int{1, 5, 50, 500} {
		for i := 0; i < 20; i++ {
			uid := uint64(i*37 + 1)
			loc := pts[uid-1]
			res := n.Cloak(uid, loc, privacy.Requirement{K: k})
			if !res.SatisfiedK {
				t.Fatalf("k=%d user %d: not satisfied: %v", k, uid, res)
			}
			if !res.Region.Contains(loc) {
				t.Fatalf("region does not contain user: %v", res)
			}
			if got := bruteCount(pts, res.Region); got < k {
				t.Fatalf("k=%d region brute count %d", k, got)
			}
			if got := bruteCount(pts, res.Region); got != res.K {
				t.Fatalf("reported K %d != brute %d", res.K, got)
			}
		}
	}
}

func TestNaiveCenterIsUser(t *testing.T) {
	pop, _, pts := population(t, 2000, mobility.Uniform, 2)
	n := &Naive{Pop: pop}
	// Pick an interior user so world clipping cannot shift the center.
	for i, p := range pts {
		if p.X < 0.3 || p.X > 0.7 || p.Y < 0.3 || p.Y > 0.7 {
			continue
		}
		res := n.Cloak(uint64(i+1), p, privacy.Requirement{K: 20})
		if res.Region.Width() > 0.25 {
			continue // clipped after all; skip
		}
		c := res.Region.Center()
		if c.Dist(p) > 1e-9 {
			t.Fatalf("naive center %v != user %v", c, p)
		}
		return // one interior check suffices
	}
	t.Fatal("no interior user found")
}

func TestNaiveMinArea(t *testing.T) {
	pop, _, pts := population(t, 1000, mobility.Uniform, 3)
	n := &Naive{Pop: pop}
	res := n.Cloak(1, pts[0], privacy.Requirement{K: 1, MinArea: 0.04})
	if !res.SatisfiedMinArea || res.Region.Area() < 0.04 {
		t.Fatalf("MinArea not met: %v (area %v)", res, res.Region.Area())
	}
}

func TestNaiveBestEffortImpossibleK(t *testing.T) {
	pop, _, pts := population(t, 50, mobility.Uniform, 4)
	n := &Naive{Pop: pop}
	res := n.Cloak(1, pts[0], privacy.Requirement{K: 1000})
	if res.SatisfiedK {
		t.Fatal("k=1000 cannot be satisfied by 50 users")
	}
	if res.K != 50 {
		t.Fatalf("best effort should cover everyone, K=%d", res.K)
	}
}

func TestNaiveMaxAreaConflictFlagged(t *testing.T) {
	pop, _, pts := population(t, 2000, mobility.Uniform, 5)
	n := &Naive{Pop: pop}
	// k=500 needs ~1/4 of the world; Amax of 1e-6 cannot hold it.
	res := n.Cloak(1, pts[0], privacy.Requirement{K: 500, MaxArea: 1e-6})
	if !res.SatisfiedK {
		t.Fatal("k should be preferred over Amax")
	}
	if res.SatisfiedMaxArea {
		t.Fatal("Amax conflict not flagged")
	}
	if !res.BestEffort() {
		t.Fatal("BestEffort should be true")
	}
}

func TestNaiveK1IsTight(t *testing.T) {
	pop, _, pts := population(t, 500, mobility.Uniform, 6)
	n := &Naive{Pop: pop}
	res := n.Cloak(3, pts[2], privacy.Requirement{K: 1})
	// With k=1 and no area floor the region collapses around the user.
	if res.Region.Diagonal() > 1e-6 {
		t.Fatalf("k=1 region should be (near) degenerate: %v", res.Region)
	}
}

// --- MBR cloaker ---

func TestMBRSatisfiesK(t *testing.T) {
	pop, _, pts := population(t, 3000, mobility.Gaussian, 7)
	m := &MBR{Pop: pop}
	for _, k := range []int{2, 10, 100} {
		for i := 0; i < 20; i++ {
			uid := uint64(i*91 + 5)
			loc := pts[uid-1]
			res := m.Cloak(uid, loc, privacy.Requirement{K: k})
			if !res.SatisfiedK {
				t.Fatalf("k=%d: %v", k, res)
			}
			if !res.Region.Contains(loc) {
				t.Fatal("MBR region does not contain the user")
			}
			if got := bruteCount(pts, res.Region); got != res.K {
				t.Fatalf("reported K %d != brute %d", res.K, got)
			}
		}
	}
}

func TestMBRIsBoundingBoxOfNeighbors(t *testing.T) {
	pop, _, pts := population(t, 1000, mobility.Uniform, 8)
	m := &MBR{Pop: pop}
	uid := uint64(17)
	loc := pts[uid-1]
	res := m.Cloak(uid, loc, privacy.Requirement{K: 10})
	nbrs := pop.KNearest(loc, 10)
	want := geo.PointRect(loc)
	for _, p := range nbrs {
		want = want.UnionPoint(p)
	}
	if !res.Region.Eq(want) {
		t.Fatalf("MBR region %v != neighbors MBR %v", res.Region, want)
	}
	// The defining leak: at least one neighbor on the boundary.
	onEdge := 0
	for _, p := range nbrs {
		if p.X == want.Min.X || p.X == want.Max.X || p.Y == want.Min.Y || p.Y == want.Max.Y {
			onEdge++
		}
	}
	if onEdge == 0 {
		t.Fatal("no neighbor on MBR edge — impossible for a true MBR")
	}
}

func TestMBRMinAreaExpansion(t *testing.T) {
	pop, _, pts := population(t, 3000, mobility.Uniform, 9)
	m := &MBR{Pop: pop}
	res := m.Cloak(1, pts[0], privacy.Requirement{K: 3, MinArea: 0.01})
	if res.Region.Area() < 0.01*0.999 {
		t.Fatalf("MinArea expansion failed: area %v", res.Region.Area())
	}
	if !res.Region.Contains(pts[0]) {
		t.Fatal("expanded MBR lost the user")
	}
}

func TestExpandDelta(t *testing.T) {
	// (1+2d)(2+2d) = 12 -> 4d²+6d+2-12=0 -> d = (-6+sqrt(36+160))/8 = 1
	if d := expandDelta(1, 2, 12); math.Abs(d-1) > 1e-12 {
		t.Fatalf("expandDelta = %v, want 1", d)
	}
	if d := expandDelta(3, 4, 12); d != 0 {
		t.Fatalf("already-large rect should need 0, got %v", d)
	}
	// Degenerate rect (a point) still works: 4d² = target.
	if d := expandDelta(0, 0, 4); math.Abs(d-1) > 1e-12 {
		t.Fatalf("point expandDelta = %v, want 1", d)
	}
}

// --- Quadtree cloaker ---

func TestQuadtreeSatisfiesK(t *testing.T) {
	_, pyr, pts := population(t, 5000, mobility.Uniform, 10)
	q := &Quadtree{Pyr: pyr}
	for _, k := range []int{1, 10, 100, 1000} {
		for i := 0; i < 20; i++ {
			uid := uint64(i*131 + 1)
			loc := pts[uid-1]
			res := q.Cloak(uid, loc, privacy.Requirement{K: k})
			if !res.SatisfiedK {
				t.Fatalf("k=%d: %v", k, res)
			}
			if !res.Region.Contains(loc) {
				t.Fatal("quadtree region does not contain user")
			}
			if got := bruteCount(pts, res.Region); got != res.K {
				t.Fatalf("pyramid count %d != brute %d", res.K, got)
			}
		}
	}
}

func TestQuadtreeRegionIsAlignedCell(t *testing.T) {
	_, pyr, pts := population(t, 2000, mobility.Uniform, 11)
	q := &Quadtree{Pyr: pyr}
	res := q.Cloak(1, pts[0], privacy.Requirement{K: 50})
	// The region must be exactly a pyramid cell: its width is 1/2^l and its
	// min corner is an integer multiple of the width.
	w := res.Region.Width()
	l := math.Log2(1 / w)
	if math.Abs(l-math.Round(l)) > 1e-9 {
		t.Fatalf("region width %v is not a power-of-two fraction", w)
	}
	fx := res.Region.Min.X / w
	fy := res.Region.Min.Y / w
	if math.Abs(fx-math.Round(fx)) > 1e-9 || math.Abs(fy-math.Round(fy)) > 1e-9 {
		t.Fatalf("region %v not aligned to the partition", res.Region)
	}
}

// Space-dependence (invariant I4): two users in the same bottom cell with
// the same requirement get the same region, regardless of exact position.
func TestQuadtreeSpaceDependence(t *testing.T) {
	_, pyr, _ := population(t, 3000, mobility.Gaussian, 12)
	q := &Quadtree{Pyr: pyr}
	bottom := pyr.Height() - 1
	// Construct two synthetic locations in the same bottom cell.
	cell := pyr.CellAt(bottom, geo.Pt(0.5001, 0.5001))
	r := pyr.Rect(cell)
	a := geo.Pt(r.Min.X+r.Width()*0.1, r.Min.Y+r.Height()*0.1)
	b := geo.Pt(r.Min.X+r.Width()*0.9, r.Min.Y+r.Height()*0.9)
	req := privacy.Requirement{K: 30}
	ra := q.Cloak(9001, a, req)
	rb := q.Cloak(9002, b, req)
	if !ra.Region.Eq(rb.Region) {
		t.Fatalf("same-cell users got different regions: %v vs %v", ra.Region, rb.Region)
	}
}

func TestQuadtreeMinArea(t *testing.T) {
	_, pyr, pts := population(t, 5000, mobility.Uniform, 13)
	q := &Quadtree{Pyr: pyr}
	res := q.Cloak(1, pts[0], privacy.Requirement{K: 1, MinArea: 0.2})
	// Cells have areas 1, 1/4, 1/16...; the smallest ≥ 0.2 is 1/4.
	if math.Abs(res.Region.Area()-0.25) > 1e-9 {
		t.Fatalf("quadtree MinArea picked area %v, want 0.25", res.Region.Area())
	}
}

func TestQuadtreeImpossibleK(t *testing.T) {
	_, pyr, pts := population(t, 10, mobility.Uniform, 14)
	q := &Quadtree{Pyr: pyr}
	res := q.Cloak(1, pts[0], privacy.Requirement{K: 100})
	if res.SatisfiedK {
		t.Fatal("k=100 with 10 users")
	}
	if !res.Region.Eq(world) {
		t.Fatalf("best effort should return the whole world, got %v", res.Region)
	}
}

// --- Grid cloaker ---

func TestGridSatisfiesKByMerging(t *testing.T) {
	_, pyr, pts := population(t, 2000, mobility.Gaussian, 15)
	g := &Grid{Pyr: pyr, Level: 5}
	for _, k := range []int{1, 10, 100, 500} {
		for i := 0; i < 15; i++ {
			uid := uint64(i*101 + 3)
			loc := pts[uid-1]
			res := g.Cloak(uid, loc, privacy.Requirement{K: k})
			if !res.SatisfiedK {
				t.Fatalf("k=%d user %d not satisfied: %v", k, uid, res)
			}
			if !res.Region.Contains(loc) {
				t.Fatalf("grid region %v does not contain %v", res.Region, loc)
			}
			if got := bruteCount(pts, res.Region); got != res.K {
				t.Fatalf("grid count %d != brute %d", res.K, got)
			}
		}
	}
}

func TestGridMultiLevelRefines(t *testing.T) {
	_, pyr, pts := population(t, 5000, mobility.Uniform, 16)
	coarse := &Grid{Pyr: pyr, Level: 2}
	fine := &Grid{Pyr: pyr, Level: 2, MultiLevel: true}
	req := privacy.Requirement{K: 5}
	var sumCoarse, sumFine float64
	for i := 0; i < 50; i++ {
		loc := pts[i*59]
		sumCoarse += coarse.Cloak(uint64(i), loc, req).Region.Area()
		sumFine += fine.Cloak(uint64(i), loc, req).Region.Area()
	}
	if sumFine >= sumCoarse {
		t.Fatalf("multi-level refinement did not shrink regions: %v vs %v", sumFine, sumCoarse)
	}
	// Refined regions must still satisfy k.
	for i := 0; i < 50; i++ {
		loc := pts[i*59]
		res := fine.Cloak(uint64(i), loc, req)
		if !res.SatisfiedK {
			t.Fatalf("refined region lost k: %v", res)
		}
	}
}

func TestGridMinAreaRespected(t *testing.T) {
	_, pyr, pts := population(t, 5000, mobility.Uniform, 17)
	g := &Grid{Pyr: pyr, Level: 6, MultiLevel: true}
	res := g.Cloak(1, pts[0], privacy.Requirement{K: 1, MinArea: 0.002})
	if res.Region.Area() < 0.002*0.999 {
		t.Fatalf("grid MinArea violated: %v", res.Region.Area())
	}
}

func TestGridLevelClamping(t *testing.T) {
	_, pyr, pts := population(t, 100, mobility.Uniform, 18)
	// Absurd levels are clamped rather than panicking.
	for _, level := range []int{-3, 0, 99} {
		g := &Grid{Pyr: pyr, Level: level}
		res := g.Cloak(1, pts[0], privacy.Requirement{K: 2})
		if !res.Region.Valid() {
			t.Fatalf("level %d produced invalid region", level)
		}
	}
}

func TestGridNames(t *testing.T) {
	pyr, _ := pyramid.New(world, 4)
	if (&Grid{Pyr: pyr, Level: 3}).Name() != "grid(L3)" {
		t.Error("grid name")
	}
	if (&Grid{Pyr: pyr, Level: 3, MultiLevel: true}).Name() != "grid-ml(L3)" {
		t.Error("grid-ml name")
	}
}

// --- Incremental ---

func TestIncrementalReusesWhileValid(t *testing.T) {
	_, pyr, pts := population(t, 3000, mobility.Uniform, 19)
	q := &Quadtree{Pyr: pyr}
	validate := func(region geo.Rect, req privacy.Requirement) (int, bool) {
		// Count via the pyramid's own region counters at the bottom level is
		// approximate for arbitrary rects; quadtree regions are cell-aligned,
		// so counting the matching cell is exact. Use CountIn-style brute
		// force through the points for the test's ground truth instead.
		n := bruteCount(pts, region)
		return n, n >= req.K
	}
	inc := NewIncremental(q, validate)
	uid := uint64(42)
	loc := pts[uid-1]
	req := privacy.Requirement{K: 20}
	first := inc.Cloak(uid, loc, req)
	if first.Reused {
		t.Fatal("first cloak cannot be reused")
	}
	// A tiny move stays inside the (cell-sized) region: must reuse.
	eps := first.Region.Width() / 1000
	inside := geo.Pt(
		math.Min(loc.X+eps, first.Region.Max.X),
		loc.Y,
	)
	second := inc.Cloak(uid, inside, req)
	if !second.Reused {
		t.Fatalf("expected reuse for in-region move: %v", second)
	}
	if !second.Region.Eq(first.Region) {
		t.Fatal("reused region differs")
	}
	// A move far outside must recompute.
	far := geo.Pt(math.Mod(loc.X+0.5, 1), math.Mod(loc.Y+0.5, 1))
	third := inc.Cloak(uid, far, req)
	if third.Reused {
		t.Fatal("expected recompute for out-of-region move")
	}
	if inc.CacheSize() != 1 {
		t.Fatalf("cache size %d", inc.CacheSize())
	}
	inc.Invalidate(uid)
	if inc.CacheSize() != 0 {
		t.Fatal("Invalidate did not clear")
	}
}

func TestIncrementalRecomputesOnReqChange(t *testing.T) {
	_, pyr, pts := population(t, 3000, mobility.Uniform, 20)
	inc := NewIncremental(&Quadtree{Pyr: pyr}, nil)
	uid := uint64(7)
	inc.Cloak(uid, pts[uid-1], privacy.Requirement{K: 10})
	res := inc.Cloak(uid, pts[uid-1], privacy.Requirement{K: 500})
	if res.Reused {
		t.Fatal("requirement change must force recompute")
	}
}

func TestIncrementalRecomputesWhenInvalid(t *testing.T) {
	// Validator that always fails forces recompute every time.
	_, pyr, pts := population(t, 1000, mobility.Uniform, 21)
	inc := NewIncremental(&Quadtree{Pyr: pyr},
		func(geo.Rect, privacy.Requirement) (int, bool) { return 0, false })
	uid := uint64(3)
	req := privacy.Requirement{K: 5}
	inc.Cloak(uid, pts[uid-1], req)
	res := inc.Cloak(uid, pts[uid-1], req)
	if res.Reused {
		t.Fatal("invalid cached region was reused")
	}
}

func TestIncrementalName(t *testing.T) {
	pyr, _ := pyramid.New(world, 4)
	inc := NewIncremental(&Quadtree{Pyr: pyr}, nil)
	if inc.Name() != "quadtree+inc" {
		t.Errorf("Name = %q", inc.Name())
	}
}

// --- Batch / shared execution ---

func TestBatchMatchesIndividual(t *testing.T) {
	_, pyr, pts := population(t, 3000, mobility.Gaussian, 22)
	b := &BatchQuadtree{Pyr: pyr}
	q := &Quadtree{Pyr: pyr}
	reqs := make([]Request, 500)
	for i := range reqs {
		reqs[i] = Request{
			ID:  uint64(i + 1),
			Loc: pts[i],
			Req: privacy.Requirement{K: 10 * (1 + i%3)},
		}
	}
	results, shared := b.CloakAll(reqs)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range reqs {
		want := q.Cloak(r.ID, r.Loc, r.Req)
		if !results[i].Region.Eq(want.Region) || results[i].K != want.K {
			t.Fatalf("batch result %d differs: %v vs %v", i, results[i], want)
		}
	}
	if shared == 0 {
		t.Error("expected some shared hits on a clustered population")
	}
}

func TestBatchEmpty(t *testing.T) {
	pyr, _ := pyramid.New(world, 4)
	b := &BatchQuadtree{Pyr: pyr}
	results, shared := b.CloakAll(nil)
	if len(results) != 0 || shared != 0 {
		t.Fatal("empty batch misbehaved")
	}
}

// --- Cross-algorithm properties ---

// Property (I1+I2): for random populations and requirements every algorithm
// returns a region containing the user with brute-force count ≥ min(k, N).
func TestPropAllCloakersSatisfyKWhenPossible(t *testing.T) {
	f := func(seed uint64, kRaw uint8, userRaw uint16) bool {
		k := int(kRaw%60) + 1
		pop, pyr, pts := population(t, 800, mobility.Gaussian, seed)
		uid := uint64(int(userRaw)%len(pts)) + 1
		loc := pts[uid-1]
		req := privacy.Requirement{K: k}
		cloakers := []Cloaker{
			&Naive{Pop: pop},
			&MBR{Pop: pop},
			&Quadtree{Pyr: pyr},
			&Grid{Pyr: pyr, Level: 4},
			&Grid{Pyr: pyr, Level: 4, MultiLevel: true},
		}
		for _, c := range cloakers {
			res := c.Cloak(uid, loc, req)
			if !res.Region.Contains(loc) {
				t.Logf("%s: region %v excludes user %v", c.Name(), res.Region, loc)
				return false
			}
			if got := bruteCount(pts, res.Region); got < k {
				t.Logf("%s: count %d < k %d", c.Name(), got, k)
				return false
			}
			if !res.SatisfiedK {
				t.Logf("%s: SatisfiedK false despite satisfiable k", c.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Region: world, K: 5, SatisfiedK: true}
	if r.String() == "" {
		t.Error("empty Result string")
	}
}

// --- Benchmarks used by experiment E2/E3 sanity ---

func benchPopulation(b *testing.B, n int) (GridPopulation, *pyramid.Pyramid, []geo.Point) {
	return population(b, n, mobility.Uniform, 1)
}

func BenchmarkCloakNaive10k(b *testing.B) {
	pop, _, pts := benchPopulation(b, 10000)
	n := &Naive{Pop: pop}
	req := privacy.Requirement{K: 50}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uid := uint64(src.Intn(len(pts))) + 1
		n.Cloak(uid, pts[uid-1], req)
	}
}

func BenchmarkCloakMBR10k(b *testing.B) {
	pop, _, pts := benchPopulation(b, 10000)
	m := &MBR{Pop: pop}
	req := privacy.Requirement{K: 50}
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uid := uint64(src.Intn(len(pts))) + 1
		m.Cloak(uid, pts[uid-1], req)
	}
}

func BenchmarkCloakQuadtree10k(b *testing.B) {
	_, pyr, pts := benchPopulation(b, 10000)
	q := &Quadtree{Pyr: pyr}
	req := privacy.Requirement{K: 50}
	src := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uid := uint64(src.Intn(len(pts))) + 1
		q.Cloak(uid, pts[uid-1], req)
	}
}

func BenchmarkCloakGrid10k(b *testing.B) {
	_, pyr, pts := benchPopulation(b, 10000)
	g := &Grid{Pyr: pyr, Level: 5, MultiLevel: true}
	req := privacy.Requirement{K: 50}
	src := rng.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uid := uint64(src.Intn(len(pts))) + 1
		g.Cloak(uid, pts[uid-1], req)
	}
}

func BenchmarkBatchQuadtree(b *testing.B) {
	_, pyr, pts := benchPopulation(b, 10000)
	bq := &BatchQuadtree{Pyr: pyr}
	reqs := make([]Request, len(pts))
	for i := range reqs {
		reqs[i] = Request{ID: uint64(i + 1), Loc: pts[i], Req: privacy.Requirement{K: 50}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bq.CloakAll(reqs)
	}
}
