// Package router implements the spatially-partitioned routing tier: a
// thin stateless-data layer that spreads one logical database server
// across N lbsd shards. Space is cut into a grid of tiles (tiles.go),
// tiles are assigned to shards by consistent hashing (ring.go), and every
// request is scattered to exactly the shards whose tiles its rectangle
// intersects. Point data (stationary and moving objects) lives on one
// shard; cloaked user regions are replicated to every shard their
// rectangle touches, so each shard can answer count queries over its own
// residents.
//
// The tier is answer-preserving by construction, not by best effort: each
// query kind scatters a sound superset of the relevant shards and gathers
// through the same pure combination rules the single server uses
// (server.SortObjects, server.CombineNNParts, server.CombineCountProbs),
// so a router over any shard count returns bit-identical bytes to one
// lbsd holding all the data. The differential suite pins this down.
package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

// MaxShards bounds the fleet: user residency is a shard bitmask in one
// machine word, and realistic deployments of this tier are far smaller.
const MaxShards = 64

// nnBoundSlack pads the phase-two NN scatter radius so that a sqrt
// rounded down a ulp cannot exclude a tile holding a boundary candidate.
const nnBoundSlack = 1e-9

// Shard is the router's view of one database shard — the subset of the
// database client surface the tier scatters over. *protocol.DatabaseClient
// implements it; tests plug in in-process fakes.
type Shard interface {
	UpdatePrivateCtx(ctx context.Context, id uint64, region geo.Rect) error
	RemovePrivateCtx(ctx context.Context, id uint64) error
	UpdateMovingCtx(ctx context.Context, id uint64, loc geo.Point) error
	RemoveMovingCtx(ctx context.Context, id uint64) (bool, error)
	LoadStationaryCtx(ctx context.Context, objs []server.PublicObject) error
	PrivateRangeCtx(ctx context.Context, q server.PrivateRangeQuery) ([]server.PublicObject, error)
	NNPartsCtx(ctx context.Context, q server.PrivateNNQuery) (server.NNParts, error)
	CountProbsCtx(ctx context.Context, q server.PublicRangeCountQuery) ([]server.UserProb, error)
	ShardBatchCtx(ctx context.Context, subs []SubQuery) ([]SubResult, error)
	StatsCtx(ctx context.Context) (stationary, private int, err error)
}

// SubQuery is one batch entry scattered to one shard, tagged with its
// index in the original batch so the gather can restore input order.
type SubQuery struct {
	Index int
	Entry server.BatchEntry
}

// SubResult is one shard's partial answer to one SubQuery. Err carries
// the entry's failure cause ("" = success). NN and Count are partial
// per-partition forms; the router finishes them with server.CombineNNParts
// and server.CombineCountProbs so the batch path and the single-query path
// share one finalize.
type SubResult struct {
	Index int
	Kind  server.BatchKind
	Err   string
	Range []server.PublicObject
	NN    server.NNParts
	Count []server.UserProb
}

// Topology describes the tier's layout — what MsgShardMap reports.
type Topology struct {
	World      geo.Rect
	Cols, Rows int
	Shards     int
	Addrs      []string
	// Owners maps tile id (row-major) to owning shard.
	Owners []int
}

// Config parameterizes a Router.
type Config struct {
	// World is the spatial domain, identical to every shard's world.
	World geo.Rect
	// Shards are the shard links, at most MaxShards. Shard 0 doubles as
	// the canonical scapegoat: requests whose rectangle misses the world
	// entirely are forwarded there so the caller sees the exact
	// validation error (or exact empty answer) a single server gives.
	Shards []Shard
	// Addrs are the shard addresses reported by Topology (optional; when
	// set, the length must match Shards).
	Addrs []string
	// Tiles is the grid resolution per axis (default 16 → 256 tiles,
	// max 256 per axis so a tile owner fits the wire's uint16).
	Tiles int
	// VNodes is the virtual-node count per shard on the hash ring
	// (default 64).
	VNodes int
	// Metrics receives the route_* series (optional).
	Metrics *obs.Registry
	// Tracer records route_scatter / route_gather spans (optional; nil is
	// a no-op tracer).
	Tracer *trace.Tracer
}

// Router routes requests for one logical database over N shards. All
// methods are safe for concurrent use. The router is the only writer of
// its residency maps; concurrent updates to the *same* id may transiently
// over-replicate (masks are merged conservatively) but never lose data.
type Router struct {
	world  geo.Rect
	grid   tileGrid
	owner  []int // tile id → shard, precomputed from the ring
	shards []Shard
	addrs  []string
	tracer *trace.Tracer
	met    *metrics

	// Residency-map mutex. Ranked after the anonymizer tier's locks: a
	// routed deployment may re-enter the router from a forward while a
	// stripe or index lock is held upstream, never the reverse.
	mu          sync.Mutex        //lint:lock ring@2
	userOwners  map[uint64]uint64 // user id → bitmask of shards holding her region
	movingOwner map[uint64]int    // moving object id → owning shard
}

// New builds a Router over the given shards.
func New(cfg Config) (*Router, error) {
	if !cfg.World.Valid() || cfg.World.Area() <= 0 {
		return nil, fmt.Errorf("router: invalid world %v", cfg.World)
	}
	n := len(cfg.Shards)
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("router: need between 1 and %d shards, got %d", MaxShards, n)
	}
	if len(cfg.Addrs) != 0 && len(cfg.Addrs) != n {
		return nil, fmt.Errorf("router: %d addrs for %d shards", len(cfg.Addrs), n)
	}
	tiles := cfg.Tiles
	if tiles <= 0 {
		tiles = 16
	}
	if tiles > 256 {
		return nil, fmt.Errorf("router: %d tiles per axis exceeds the 256 cap", tiles)
	}
	vnodes := cfg.VNodes
	if vnodes <= 0 {
		vnodes = 64
	}
	grid := tileGrid{world: cfg.World, cols: tiles, rows: tiles}
	rg := newRing(n, vnodes)
	owner := make([]int, grid.tiles())
	for t := range owner {
		owner[t] = rg.owner(t)
	}
	return &Router{
		world:       cfg.World,
		grid:        grid,
		owner:       owner,
		shards:      cfg.Shards,
		addrs:       cfg.Addrs,
		tracer:      cfg.Tracer,
		met:         newMetrics(cfg.Metrics, n),
		userOwners:  make(map[uint64]uint64),
		movingOwner: make(map[uint64]int),
	}, nil
}

// Topology reports the tier's layout.
func (r *Router) Topology() Topology {
	return Topology{
		World:  r.world,
		Cols:   r.grid.cols,
		Rows:   r.grid.rows,
		Shards: len(r.shards),
		Addrs:  append([]string(nil), r.addrs...),
		Owners: append([]int(nil), r.owner...),
	}
}

// ownersOf maps a request rectangle to the distinct shards owning its
// covered tiles, ascending. A rectangle with no world intersection — out
// of bounds, or geometrically invalid — routes to shard 0, which
// reproduces the exact validation error (or exact empty answer) a single
// server would give.
func (r *Router) ownersOf(rect geo.Rect) []int {
	tiles := r.grid.cover(rect)
	if len(tiles) == 0 {
		return []int{0}
	}
	var mask uint64
	for _, t := range tiles {
		mask |= 1 << uint(r.owner[t])
	}
	return maskShards(mask)
}

// allShards returns every shard index.
func (r *Router) allShards() []int {
	out := make([]int, len(r.shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// maskOf packs ascending shard indices into a bitmask.
func maskOf(shards []int) uint64 {
	var m uint64
	for _, s := range shards {
		m |= 1 << uint(s)
	}
	return m
}

// maskShards unpacks a bitmask into ascending shard indices.
func maskShards(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		s := bits.TrailingZeros64(mask)
		out = append(out, s)
		mask &^= 1 << uint(s)
	}
	return out
}

// scatterCall fans call out to the listed shards concurrently and returns
// the per-target results and errors, index-aligned with targets. This is
// the package's single scatter point: the route_scatter span, the fanout
// histogram and the per-shard call/error counters all hang off it.
func scatterCall[T any](r *Router, ctx context.Context, targets []int, call func(ctx context.Context, shard int) (T, error)) ([]T, []error) {
	sp, ctx := trace.Start(ctx, r.tracer, "route_scatter")
	sp.SetAttrs(trace.Int("fanout", int64(len(targets))))
	defer sp.End()
	r.met.fanout.Observe(float64(len(targets)))
	if len(targets) > 1 {
		r.met.straddles.Inc()
	}
	res := make([]T, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for k, s := range targets {
		wg.Add(1)
		go func(k, s int) {
			defer wg.Done()
			r.met.shardCalls[s].Inc()
			v, err := call(ctx, s)
			if err != nil {
				r.met.shardErrs[s].Inc()
				errs[k] = err
			} else {
				res[k] = v
			}
		}(k, s)
	}
	wg.Wait()
	return res, errs
}

// firstErr returns the first non-nil error. Targets are always scattered
// in ascending shard order, so the choice is deterministic.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// beginGather opens the route_gather span and times the merge phase; call
// the returned func when the merge is done.
func (r *Router) beginGather(ctx context.Context) func() {
	t0 := time.Now()
	sp, _ := trace.Start(ctx, r.tracer, "route_gather")
	return func() {
		r.met.gatherSecs.Since(t0)
		sp.End()
	}
}

// setUserMask records (or clears) a user's residency mask and keeps the
// gauge in step.
func (r *Router) setUserMask(id uint64, mask uint64) {
	r.mu.Lock()
	if mask == 0 {
		delete(r.userOwners, id)
	} else {
		r.userOwners[id] = mask
	}
	r.met.users.Set(float64(len(r.userOwners)))
	r.mu.Unlock()
}

// residencyOwners returns the shards a user's region must live on: the
// owners of its covered tiles, plus shard 0 when the region hangs past
// the world edge. The server accepts any region intersecting the world,
// and a count query lying entirely outside the world (routed to shard 0
// by the fallback) can still overlap the out-of-world part of such a
// region; queries that do intersect the world always share a covered
// tile with the region wherever their overlap is positive, so no other
// case needs widening.
func (r *Router) residencyOwners(region geo.Rect) []int {
	owners := r.ownersOf(region)
	if region.Valid() && !(r.world.Contains(region.Min) && r.world.Contains(region.Max)) && owners[0] != 0 {
		owners = append([]int{0}, owners...)
	}
	return owners
}

// UpdatePrivateCtx replicates a user's cloaked region to every shard
// whose tiles it touches and withdraws her from shards she left. On
// partial failure the residency mask is merged conservatively (old ∪
// succeeded) so a retry — updates are idempotent, and the anonymizer's
// spill queue retries — converges to the exact owner set.
func (r *Router) UpdatePrivateCtx(ctx context.Context, id uint64, region geo.Rect) error {
	owners := r.residencyOwners(region)
	newMask := maskOf(owners)
	r.mu.Lock()
	prev := r.userOwners[id]
	r.mu.Unlock()

	_, errs := scatterCall(r, ctx, owners, func(ctx context.Context, s int) (struct{}, error) {
		return struct{}{}, r.shards[s].UpdatePrivateCtx(ctx, id, region)
	})
	if err := firstErr(errs); err != nil {
		var succ uint64
		for k, s := range owners {
			if errs[k] == nil {
				succ |= 1 << uint(s)
			}
		}
		// A remote validation error stores nothing anywhere (every shard
		// applies the same pure check), so prev|succ == prev|0 stays
		// accurate; transport errors leave the union as the safe superset.
		if prev|succ != 0 {
			r.setUserMask(id, prev|succ)
		}
		return err
	}
	if stale := prev &^ newMask; stale != 0 {
		departed := maskShards(stale)
		_, rerrs := scatterCall(r, ctx, departed, func(ctx context.Context, s int) (struct{}, error) {
			return struct{}{}, r.shards[s].RemovePrivateCtx(ctx, id)
		})
		for k, s := range departed {
			if rerrs[k] != nil {
				newMask |= 1 << uint(s) // still resident there; retry later
			}
		}
		r.setUserMask(id, newMask)
		return firstErr(rerrs)
	}
	r.setUserMask(id, newMask)
	return nil
}

// RemovePrivateCtx withdraws a user from every shard holding her region.
// An unknown user fans out to all shards — removal of an absent user is a
// no-op there, matching the single server.
func (r *Router) RemovePrivateCtx(ctx context.Context, id uint64) error {
	r.mu.Lock()
	prev, known := r.userOwners[id]
	r.mu.Unlock()
	targets := r.allShards()
	if known {
		targets = maskShards(prev)
	}
	_, errs := scatterCall(r, ctx, targets, func(ctx context.Context, s int) (struct{}, error) {
		return struct{}{}, r.shards[s].RemovePrivateCtx(ctx, id)
	})
	if known {
		var failed uint64
		for k, s := range targets {
			if errs[k] != nil {
				failed |= 1 << uint(s)
			}
		}
		r.setUserMask(id, failed)
	}
	return firstErr(errs)
}

// UpdateMovingCtx routes a moving-object upsert to the shard owning the
// location's tile. When the object crosses an ownership boundary the
// router performs a handoff: upsert on the new owner first, then removal
// from the old — the object is never absent from both. The owner map
// advances only after the full handoff, so a failed removal is retried by
// the next (idempotent) update.
func (r *Router) UpdateMovingCtx(ctx context.Context, id uint64, loc geo.Point) error {
	if !r.world.Contains(loc) {
		// Every shard rejects an out-of-world location with the exact
		// single-server error; ask shard 0 so the caller sees it verbatim.
		_, errs := scatterCall(r, ctx, []int{0}, func(ctx context.Context, s int) (struct{}, error) {
			return struct{}{}, r.shards[s].UpdateMovingCtx(ctx, id, loc)
		})
		return firstErr(errs)
	}
	dst := r.owner[r.grid.tileOf(loc)]
	r.mu.Lock()
	prev, known := r.movingOwner[id]
	r.mu.Unlock()

	_, errs := scatterCall(r, ctx, []int{dst}, func(ctx context.Context, s int) (struct{}, error) {
		return struct{}{}, r.shards[s].UpdateMovingCtx(ctx, id, loc)
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	if known && prev != dst {
		_, rerrs := scatterCall(r, ctx, []int{prev}, func(ctx context.Context, s int) (bool, error) {
			return r.shards[s].RemoveMovingCtx(ctx, id)
		})
		if err := firstErr(rerrs); err != nil {
			return err // owner map stays at prev; the retry re-runs the handoff
		}
		r.met.handoffs.Inc()
	}
	r.mu.Lock()
	r.movingOwner[id] = dst
	r.mu.Unlock()
	return nil
}

// RemoveMovingCtx deletes a moving object. With a known owner the removal
// is a single-shard call; otherwise it fans out everywhere and ORs the
// per-shard "existed" answers.
func (r *Router) RemoveMovingCtx(ctx context.Context, id uint64) (bool, error) {
	r.mu.Lock()
	prev, known := r.movingOwner[id]
	r.mu.Unlock()
	targets := r.allShards()
	if known {
		targets = []int{prev}
	}
	res, errs := scatterCall(r, ctx, targets, func(ctx context.Context, s int) (bool, error) {
		return r.shards[s].RemoveMovingCtx(ctx, id)
	})
	if err := firstErr(errs); err != nil {
		return false, err
	}
	existed := false
	for _, ok := range res {
		existed = existed || ok
	}
	r.mu.Lock()
	delete(r.movingOwner, id)
	r.mu.Unlock()
	return existed, nil
}

// LoadStationaryCtx validates the full load exactly as one server would,
// partitions it by tile ownership, and bulk-loads every shard — including
// empty partitions, because LoadStationary has replace semantics and a
// shard that received nothing must also hold nothing.
func (r *Router) LoadStationaryCtx(ctx context.Context, objs []server.PublicObject) error {
	if err := server.ValidateStationary(r.world, objs); err != nil {
		return err
	}
	parts := make([][]server.PublicObject, len(r.shards))
	for _, o := range objs {
		s := r.owner[r.grid.tileOf(o.Loc)]
		parts[s] = append(parts[s], o)
	}
	_, errs := scatterCall(r, ctx, r.allShards(), func(ctx context.Context, s int) (struct{}, error) {
		return struct{}{}, r.shards[s].LoadStationaryCtx(ctx, parts[s])
	})
	return firstErr(errs)
}

// PrivateRangeCtx scatters a private range query to the shards covering
// the region expanded by the radius (the same filter rectangle the
// single-server index probe uses, so the union of the per-shard answers
// is exactly the single-server candidate set) and gathers the canonical
// sorted union.
func (r *Router) PrivateRangeCtx(ctx context.Context, q server.PrivateRangeQuery) ([]server.PublicObject, error) {
	owners := r.ownersOf(q.Region.Expand(q.Radius))
	res, errs := scatterCall(r, ctx, owners, func(ctx context.Context, s int) ([]server.PublicObject, error) {
		return r.shards[s].PrivateRangeCtx(ctx, q)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	done := r.beginGather(ctx)
	defer done()
	out := make([]server.PublicObject, 0, totalLen(res))
	for _, part := range res {
		out = append(out, part...)
	}
	server.SortObjects(out)
	return out, nil
}

// PrivateNNCtx answers a private NN query in two scatter waves. Wave one
// asks the shards covering the region itself for their NN parts; the
// smallest returned min–max bound T caps the distance any candidate can
// be from the region, so wave two extends the scatter to the shards
// covering the region expanded by √T (plus float slack) — exactly the
// area that can still hold candidates. Combining all parts through
// server.CombineNNParts reproduces the single-server answer bit for bit.
func (r *Router) PrivateNNCtx(ctx context.Context, q server.PrivateNNQuery) (server.PrivateNNResult, error) {
	phase1 := r.ownersOf(q.Region)
	parts, errs := scatterCall(r, ctx, phase1, func(ctx context.Context, s int) (server.NNParts, error) {
		return r.shards[s].NNPartsCtx(ctx, q)
	})
	if err := firstErr(errs); err != nil {
		return server.PrivateNNResult{}, err
	}
	bound := math.Inf(1)
	for _, p := range parts {
		if p.Bound < bound {
			bound = p.Bound
		}
	}
	want := r.ownersOf(q.Region.Expand(math.Sqrt(bound) * (1 + nnBoundSlack)))
	if extra := subtractSorted(want, phase1); len(extra) > 0 {
		more, errs2 := scatterCall(r, ctx, extra, func(ctx context.Context, s int) (server.NNParts, error) {
			return r.shards[s].NNPartsCtx(ctx, q)
		})
		if err := firstErr(errs2); err != nil {
			return server.PrivateNNResult{}, err
		}
		parts = append(parts, more...)
	}
	done := r.beginGather(ctx)
	defer done()
	return server.CombineNNParts(q.Region, parts...), nil
}

// PublicCountCtx scatters a probabilistic count to the shards covering
// the query rectangle, deduplicates replicated residents (replicas store
// the same region, so their probabilities are bit-identical) and folds
// the unique probabilities through the single-server accumulation rule.
func (r *Router) PublicCountCtx(ctx context.Context, q server.PublicRangeCountQuery) (server.PublicRangeCountResult, error) {
	owners := r.ownersOf(q.Query)
	res, errs := scatterCall(r, ctx, owners, func(ctx context.Context, s int) ([]server.UserProb, error) {
		return r.shards[s].CountProbsCtx(ctx, q)
	})
	if err := firstErr(errs); err != nil {
		return server.PublicRangeCountResult{}, err
	}
	done := r.beginGather(ctx)
	defer done()
	return server.CombineCountProbs(mergeUserProbs(res)), nil
}

// StatsCtx sums the shards' stationary counts (objects live on exactly
// one shard) and reports the router's resident-user count (regions are
// replicated, so summing shards would overcount).
func (r *Router) StatsCtx(ctx context.Context) (stationary, private int, err error) {
	type pair struct{ st, pr int }
	res, errs := scatterCall(r, ctx, r.allShards(), func(ctx context.Context, s int) (pair, error) {
		st, pr, err := r.shards[s].StatsCtx(ctx)
		return pair{st, pr}, err
	})
	if err := firstErr(errs); err != nil {
		return 0, 0, err
	}
	for _, p := range res {
		stationary += p.st
	}
	r.mu.Lock()
	private = len(r.userOwners)
	r.mu.Unlock()
	return stationary, private, nil
}

// PrivateUserCount reports how many users the router currently tracks a
// residency mask for — the tier-level analogue of the single server's
// resident-user count, available without touching any shard.
func (r *Router) PrivateUserCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.userOwners)
}

// totalLen sums slice lengths.
func totalLen[T any](parts [][]T) int {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	return n
}

// subtractSorted returns the elements of a not in b; both ascending.
func subtractSorted(a, b []int) []int {
	var out []int
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// mergeUserProbs concatenates per-shard (id, probability) pair lists,
// sorts by id and drops replicated users. Replicas of one user carry
// bit-identical probabilities (the overlap is a pure function of region
// and query), so dropping duplicates loses nothing.
func mergeUserProbs(parts [][]server.UserProb) []server.UserProb {
	out := make([]server.UserProb, 0, totalLen(parts))
	for _, p := range parts {
		out = append(out, p...)
	}
	sortUserProbs(out)
	uniq := out[:0]
	for i, up := range out {
		if i == 0 || up.ID != out[i-1].ID {
			uniq = append(uniq, up)
		}
	}
	return uniq
}

// sortUserProbs orders pairs by user id.
func sortUserProbs(ps []server.UserProb) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}

// errUnknownKind mirrors the server's per-entry unknown-kind failure.
func errUnknownKind(kind server.BatchKind) error {
	return fmt.Errorf("server: unknown batch query kind %d", byte(kind))
}

// BatchQueryCtx scatters a mixed batch: each entry is routed to the
// shards its rectangle requires, per-shard sub-batches travel as one
// forwarded frame each, and NN entries get a second wave once their
// phase-one bound is known (exactly as PrivateNNCtx does per query).
// Per-entry failures come back as *server.BatchEntryError values in the
// items with the same text a single server produces; the call-level error
// covers transport only. Groups and SharedHits are topology-dependent
// diagnostics here: Groups counts forwarded sub-batches, SharedHits stays
// zero (sharing happens inside each shard, which reports its own
// batch metrics).
//
//lint:hotpath allocs=12
func (r *Router) BatchQueryCtx(ctx context.Context, entries []server.BatchEntry) (server.BatchResult, error) {
	n := len(entries)
	res := server.BatchResult{Items: make([]server.BatchItemResult, n)}
	if n == 0 {
		return res, nil
	}
	ownersByEntry := make([][]int, n)
	wave1 := make([][]SubQuery, len(r.shards))
	for i, be := range entries {
		var owners []int
		switch be.Kind {
		case server.BatchPrivateRange:
			owners = r.ownersOf(be.Range.Region.Expand(be.Range.Radius))
		case server.BatchPrivateNN:
			owners = r.ownersOf(be.NN.Region)
		case server.BatchPublicCount:
			owners = r.ownersOf(be.Count.Query)
		default:
			res.Items[i].Err = &server.BatchEntryError{Index: i, Kind: be.Kind, Err: errUnknownKind(be.Kind)}
			continue
		}
		ownersByEntry[i] = owners
		for _, s := range owners {
			wave1[s] = append(wave1[s], SubQuery{Index: i, Entry: be})
		}
	}
	byEntry := make([][]SubResult, n)
	groups, err := r.scatterSubBatches(ctx, wave1, byEntry)
	if err != nil {
		return server.BatchResult{}, err
	}
	res.Groups = groups

	// Second wave for NN entries whose bound opens a wider neighborhood.
	wave2 := make([][]SubQuery, len(r.shards))
	for i, be := range entries {
		if be.Kind != server.BatchPrivateNN || res.Items[i].Err != nil || hasSubErr(byEntry[i]) {
			continue
		}
		bound := math.Inf(1)
		for _, sr := range byEntry[i] {
			if sr.NN.Bound < bound {
				bound = sr.NN.Bound
			}
		}
		want := r.ownersOf(be.NN.Region.Expand(math.Sqrt(bound) * (1 + nnBoundSlack)))
		for _, s := range subtractSorted(want, ownersByEntry[i]) {
			wave2[s] = append(wave2[s], SubQuery{Index: i, Entry: be})
		}
	}
	groups2, err := r.scatterSubBatches(ctx, wave2, byEntry)
	if err != nil {
		return server.BatchResult{}, err
	}
	res.Groups += groups2

	done := r.beginGather(ctx)
	defer done()
	for i, be := range entries {
		if res.Items[i].Err != nil {
			continue
		}
		parts := byEntry[i]
		if cause := firstSubErr(parts); cause != "" {
			res.Items[i].Err = &server.BatchEntryError{Index: i, Kind: be.Kind, Err: errors.New(cause)}
			continue
		}
		switch be.Kind {
		case server.BatchPrivateRange:
			var objs []server.PublicObject
			for _, sr := range parts {
				objs = append(objs, sr.Range...)
			}
			server.SortObjects(objs)
			res.Items[i].Range = objs
		case server.BatchPrivateNN:
			nnParts := make([]server.NNParts, len(parts))
			for k, sr := range parts {
				nnParts[k] = sr.NN
			}
			res.Items[i].NN = server.CombineNNParts(be.NN.Region, nnParts...)
		case server.BatchPublicCount:
			pairs := make([][]server.UserProb, len(parts))
			for k, sr := range parts {
				pairs[k] = sr.Count
			}
			res.Items[i].Count = server.CombineCountProbs(mergeUserProbs(pairs))
		}
	}
	return res, nil
}

// scatterSubBatches sends every non-empty per-shard sub-batch and files
// the returned sub-results into byEntry, keeping shard-ascending order so
// error selection is deterministic. It returns the number of sub-batches
// sent; a transport failure fails the whole batch call.
//
//lint:hotpath allocs=7
func (r *Router) scatterSubBatches(ctx context.Context, perShard [][]SubQuery, byEntry [][]SubResult) (int, error) {
	var targets []int
	for s, subs := range perShard {
		if len(subs) > 0 {
			targets = append(targets, s)
		}
	}
	if len(targets) == 0 {
		return 0, nil
	}
	res, errs := scatterCall(r, ctx, targets, func(ctx context.Context, s int) ([]SubResult, error) {
		return r.shards[s].ShardBatchCtx(ctx, perShard[s])
	})
	if err := firstErr(errs); err != nil {
		return 0, err
	}
	for k, s := range targets {
		if len(res[k]) != len(perShard[s]) {
			return 0, fmt.Errorf("router: shard %d answered %d of %d sub-queries", s, len(res[k]), len(perShard[s]))
		}
		for _, sr := range res[k] {
			if sr.Index < 0 || sr.Index >= len(byEntry) {
				return 0, fmt.Errorf("router: shard %d returned sub-result for entry %d of %d", s, sr.Index, len(byEntry))
			}
			byEntry[sr.Index] = append(byEntry[sr.Index], sr)
		}
	}
	return len(targets), nil
}

// hasSubErr reports whether any sub-result failed.
func hasSubErr(parts []SubResult) bool { return firstSubErr(parts) != "" }

// firstSubErr returns the first failure cause among a gathered entry's
// sub-results ("" when none). Parts are appended in shard-ascending
// order, and a failing entry fails identically on every shard (the checks
// are pure), so the choice is deterministic.
func firstSubErr(parts []SubResult) string {
	for _, sr := range parts {
		if sr.Err != "" {
			return sr.Err
		}
	}
	return ""
}
