package atomicmix_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/passes/atomicmix"
)

func TestMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-program analysis")
	}
	linttest.Run(t, "testdata/src/mixed", atomicmix.Analyzer)
}
