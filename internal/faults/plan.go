package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseRules parses a comma-separated rule list in the textual schedule
// syntax:
//
//	<dir><frame>:<action>[:<arg>]
//
// where dir is "r" (read) or "w" (write), frame is the 1-based frame
// index the rule fires on, and action is one of drop, reset, delay,
// truncate, pause, bandwidth. delay takes a duration argument
// ("w1:delay:50ms"); truncate takes a byte count ("r2:truncate:5", 0 cuts
// even the length prefix); pause takes the mid-frame stall duration
// ("w2:pause:100ms"); bandwidth takes a positive bytes/sec cap that stays
// in force from the target frame onward ("r1:bandwidth:1024").
//
// Examples:
//
//	r2:drop                  kill the connection at the 2nd inbound frame
//	w1:delay:100ms,r3:reset  delay the 1st outbound frame, RST at the 3rd inbound
//	w1:bandwidth:4096        the whole outbound side crawls at 4 KiB/s
//
// An empty string parses to no rules.
func ParseRules(s string) ([]Rule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.Split(s, ",") {
		r, err := parseRule(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	var r Rule
	fields := strings.Split(s, ":")
	if len(fields) < 2 {
		return r, fmt.Errorf("faults: rule %q: want <dir><frame>:<action>[:<arg>]", s)
	}
	target, action := fields[0], fields[1]
	if len(target) < 2 {
		return r, fmt.Errorf("faults: rule %q: target %q too short", s, target)
	}
	switch target[0] {
	case 'r':
		r.Op = Read
	case 'w':
		r.Op = Write
	default:
		return r, fmt.Errorf("faults: rule %q: direction must be r or w, got %q", s, target[0])
	}
	nth, err := strconv.Atoi(target[1:])
	if err != nil {
		return r, fmt.Errorf("faults: rule %q: bad frame index %q", s, target[1:])
	}
	if nth < 1 {
		return r, fmt.Errorf("faults: rule %q: frame index %d out of range (frames are 1-based)", s, nth)
	}
	r.Nth = nth

	arg := ""
	if len(fields) > 2 {
		arg = strings.Join(fields[2:], ":") // durations like "1m30s" contain no colon, but be lenient
	}
	switch action {
	case "drop":
		r.Action = Drop
	case "reset":
		r.Action = Reset
	case "delay":
		r.Action = Delay
		if arg == "" {
			return r, fmt.Errorf("faults: rule %q: delay needs a duration argument", s)
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return r, fmt.Errorf("faults: rule %q: bad delay %q: %v", s, arg, err)
		}
		r.Delay = d
		return r, nil
	case "truncate":
		r.Action = Truncate
		if arg == "" {
			return r, fmt.Errorf("faults: rule %q: truncate needs a byte count argument", s)
		}
		keep, err := strconv.Atoi(arg)
		if err != nil || keep < 0 {
			return r, fmt.Errorf("faults: rule %q: bad byte count %q", s, arg)
		}
		r.KeepBytes = keep
		return r, nil
	case "pause":
		r.Action = Pause
		if arg == "" {
			return r, fmt.Errorf("faults: rule %q: pause needs a duration argument", s)
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return r, fmt.Errorf("faults: rule %q: bad pause %q: %v", s, arg, err)
		}
		if d <= 0 {
			return r, fmt.Errorf("faults: rule %q: pause duration must be positive, got %v", s, d)
		}
		r.Delay = d
		return r, nil
	case "bandwidth":
		r.Action = Bandwidth
		if arg == "" {
			return r, fmt.Errorf("faults: rule %q: bandwidth needs a bytes/sec argument", s)
		}
		rate, err := strconv.Atoi(arg)
		if err != nil || rate < 1 {
			return r, fmt.Errorf("faults: rule %q: bad bytes/sec %q (want a positive integer)", s, arg)
		}
		r.Rate = rate
		return r, nil
	default:
		return r, fmt.Errorf("faults: rule %q: unknown action %q (want drop, reset, delay, truncate, pause or bandwidth)", s, action)
	}
	if arg != "" {
		return r, fmt.Errorf("faults: rule %q: action %q takes no argument", s, action)
	}
	return r, nil
}

// ParsePlan parses a whole-run fault plan mapping connections to rules:
//
//	<conn>=<rules>[;<conn>=<rules>...]
//
// where conn is the 1-based index of a connection in dial order, or "*"
// for every connection without an explicit clause. The rules grammar is
// ParseRules'. An empty string is the empty plan: every connection is
// clean. The returned function is compatible with Dialer.
//
//	1=r2:drop;3=w1:delay:50ms   2nd read frame kills conn 1, conn 3's
//	                            first write is late, everyone else clean
//	*=w1:delay:5ms              every connection's first write is late
func ParsePlan(s string) (func(conn int) []Rule, error) {
	s = strings.TrimSpace(s)
	byConn := make(map[int][]Rule)
	var wildcard []Rule
	haveWildcard := false
	if s != "" {
		for _, clause := range strings.Split(s, ";") {
			clause = strings.TrimSpace(clause)
			if clause == "" {
				continue
			}
			eq := strings.IndexByte(clause, '=')
			if eq < 0 {
				return nil, fmt.Errorf("faults: plan clause %q: want <conn>=<rules>", clause)
			}
			key := strings.TrimSpace(clause[:eq])
			rules, err := ParseRules(clause[eq+1:])
			if err != nil {
				return nil, err
			}
			if key == "*" {
				if haveWildcard {
					return nil, fmt.Errorf("faults: plan has two wildcard clauses")
				}
				haveWildcard = true
				wildcard = rules
				continue
			}
			conn, err := strconv.Atoi(key)
			if err != nil {
				return nil, fmt.Errorf("faults: plan clause %q: bad connection index %q", clause, key)
			}
			if conn < 1 {
				return nil, fmt.Errorf("faults: plan clause %q: connection index %d out of range (connections are 1-based)", clause, conn)
			}
			if _, dup := byConn[conn]; dup {
				return nil, fmt.Errorf("faults: plan has two clauses for connection %d", conn)
			}
			byConn[conn] = rules
		}
	}
	return func(conn int) []Rule {
		if rules, ok := byConn[conn]; ok {
			return append([]Rule(nil), rules...)
		}
		return append([]Rule(nil), wildcard...)
	}, nil
}

// String renders the rule in the textual schedule syntax, the inverse of
// parseRule: ParseRules(r.String()) yields r back.
func (r Rule) String() string {
	dir := "r"
	if r.Op == Write {
		dir = "w"
	}
	head := fmt.Sprintf("%s%d:%s", dir, r.Nth, r.Action)
	switch r.Action {
	case Delay, Pause:
		return fmt.Sprintf("%s:%s", head, r.Delay)
	case Truncate:
		return fmt.Sprintf("%s:%d", head, r.KeepBytes)
	case Bandwidth:
		return fmt.Sprintf("%s:%d", head, r.Rate)
	default:
		return head
	}
}

// FormatRules renders rules in the syntax ParseRules accepts; the empty
// slice renders to the empty string.
func FormatRules(rules []Rule) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}
