// Package obsname implements the lbsvet pass that keeps the metric
// namespace coherent: every name registered against an obs.Registry must
// be a snake_case string literal, be registered at exactly one call site
// per package, and share its package's family prefix (the first
// underscore-separated segment: anon_*, proto_*, lbs_*), so dashboards
// and alerts can rely on a stable, greppable naming scheme.
package obsname

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the obsname pass.
var Analyzer = &analysis.Analyzer{
	Name: "obsname",
	Doc: "enforce metric naming: snake_case literals, one registration site\n" +
		"per package, one family prefix per package",
	Run: run,
}

const obsPath = "repro/internal/obs"

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// site is one Registry.Counter/Gauge/Histogram call with a literal name.
type site struct {
	name string
	pos  token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	var sites []site
	for _, file := range pass.Files {
		// Tests register throwaway metrics on private registries; the
		// namespace contract covers production registrations only. (The
		// standalone loader never sees test files, but `go vet -vettool`
		// compiles them into the package.)
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isRegistration(pass, call) || len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Args[0].Pos(),
					"metric name must be a string literal so the namespace is statically auditable")
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !nameRE.MatchString(name) {
				pass.Reportf(lit.Pos(),
					"metric name %q is not snake_case (want %s)", name, nameRE)
			}
			sites = append(sites, site{name: name, pos: lit.Pos()})
			return true
		})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })

	// One registration site per package and name: duplicated sites drift
	// apart (different help text, different buckets) and double-register.
	first := make(map[string]token.Pos)
	for _, s := range sites {
		if prev, ok := first[s.name]; ok {
			pass.Reportf(s.pos,
				"metric %q is already registered in this package at %s; share the one registration site",
				s.name, pass.Fset.Position(prev))
			continue
		}
		first[s.name] = s.pos
	}

	// Family prefix consistency within the package. Names that already
	// failed the snake_case check are excluded rather than double-reported.
	families := make(map[string]int)
	for name := range first {
		if nameRE.MatchString(name) {
			families[family(name)]++
		}
	}
	if len(families) > 1 {
		major := ""
		for f, n := range families {
			if n > families[major] || (n == families[major] && (major == "" || f < major)) {
				major = f
			}
		}
		for _, s := range sites {
			if first[s.name] == s.pos && nameRE.MatchString(s.name) && family(s.name) != major {
				pass.Reportf(s.pos,
					"metric %q is outside this package's %s_* family; one family prefix per package",
					s.name, major)
			}
		}
	}
	return nil, nil
}

func family(name string) string {
	f, _, _ := strings.Cut(name, "_")
	return f
}

// isRegistration reports whether call is (*obs.Registry).Counter, Gauge,
// or Histogram.
func isRegistration(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	rt := s.Recv()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == obsPath && tn.Name() == "Registry"
}
