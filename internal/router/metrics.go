package router

import (
	"strconv"

	"repro/internal/obs"
)

// metrics is the router's instrument set — the route_* family. Fanout and
// straddle series say how well the tile grid matches the workload's cloak
// sizes; the per-shard call/error counters are what the shard_kill
// scenario (and an operator) watch to see a breaker isolate a dead shard.
type metrics struct {
	fanout     *obs.Histogram
	straddles  *obs.Counter
	handoffs   *obs.Counter
	users      *obs.Gauge
	gatherSecs *obs.Histogram
	shardCalls []*obs.Counter
	shardErrs  []*obs.Counter
}

func newMetrics(reg *obs.Registry, nshards int) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &metrics{
		fanout: reg.Histogram("route_scatter_fanout",
			"Shards contacted per scattered request.",
			obs.ExpBuckets(1, 2, 7)),
		straddles: reg.Counter("route_straddles_total",
			"Scatters whose rectangle straddled a tile-ownership boundary (fanout > 1)."),
		handoffs: reg.Counter("route_handoffs_total",
			"Moving-object tile handoffs (upsert on the new owner, removal from the old)."),
		users: reg.Gauge("route_users",
			"Private users the router tracks as resident on at least one shard."),
		gatherSecs: reg.Histogram("route_gather_seconds",
			"Time spent merging per-shard partial results into the final answer.",
			obs.ExpBuckets(1e-6, 4, 10)),
	}
	for i := 0; i < nshards; i++ {
		l := obs.L("shard", strconv.Itoa(i))
		m.shardCalls = append(m.shardCalls, reg.Counter("route_shard_calls_total",
			"Sub-requests dispatched, per shard.", l))
		m.shardErrs = append(m.shardErrs, reg.Counter("route_shard_errors_total",
			"Sub-requests failed, per shard.", l))
	}
	return m
}
