package anonymizer

import (
	"sync"
	"sync/atomic"

	"repro/internal/cloak"
	"repro/internal/privacy"
)

// MaxShards bounds Config.Shards; per-shard metric series and the
// goroutine-per-shard batch phase make absurd counts pointless long before
// this limit.
const MaxShards = 256

// shard is one lock stripe of the anonymizer's per-user state. A user id
// maps to exactly one shard for its whole lifetime, so everything keyed by
// user — profile, mode, accumulated charges, the incremental region cache —
// lives here and is guarded by the shard mutex alone. Users in different
// shards proceed concurrently; the only cross-shard rendezvous is the
// spatial-index reader/writer lock.
type shard struct {
	mu       sync.Mutex //lint:lock stripe@0
	profiles map[uint64]*privacy.Profile
	modes    map[uint64]privacy.Mode
	charges  map[uint64]float64
	inc      *cloak.Incremental // nil unless Config.Incremental
}

func newShard(inc *cloak.Incremental) *shard {
	return &shard{
		profiles: make(map[uint64]*privacy.Profile),
		modes:    make(map[uint64]privacy.Mode),
		charges:  make(map[uint64]float64),
		inc:      inc,
	}
}

// shardFor maps a user id to its shard. The multiplicative mix spreads
// sequential ids (the common workload) across stripes even when the shard
// count divides the id stride.
func (a *Anonymizer) shardFor(id uint64) (*shard, int) {
	h := id * 0x9E3779B97F4A7C15 // Fibonacci hashing
	i := int((h >> 32) % uint64(len(a.shards)))
	return a.shards[i], i
}

// counters are the anonymizer's activity counters. They are plain atomics
// so the sharded hot paths never rendezvous on a stats mutex; Stats()
// assembles a snapshot from them.
type counters struct {
	registered  atomic.Int64
	updates     atomic.Uint64
	queries     atomic.Uint64
	reused      atomic.Uint64
	bestEffort  atomic.Uint64
	forwarded   atomic.Uint64
	forwardErrs atomic.Uint64
	batches     atomic.Uint64
	sharedHits  atomic.Uint64
}
