package hotalloc_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/passes/hotalloc"
)

func TestOverBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build -gcflags=-m")
	}
	linttest.Run(t, "testdata/src/overbudget", hotalloc.Analyzer)
}
