package server

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/prob"
)

// ContinuousCountAnswer is the incrementally maintained state of one
// continuous count query: the expected value and interval are updated in
// O(1) per affected location update; the full PDF is derived on demand.
type ContinuousCountAnswer struct {
	Expected float64
	Lo, Hi   int
}

// continuousEngine implements the Section 5.3 shared, incremental
// evaluation for continuous public count queries over private data.
// Instead of re-running every query on every location update, the engine
// keeps, per query, each contributing user's inclusion probability; an
// update touches only the queries whose rectangles intersect the user's
// old or new region, and each of those is adjusted by the probability
// delta in O(1).
//
// The engine's methods are called with the server mutex held.
type continuousEngine struct {
	s       *Server
	nextID  uint64
	queries map[uint64]*contQuery
}

type contQuery struct {
	id    uint64
	query geo.Rect
	// probs holds the current nonzero inclusion probability of each user.
	probs    map[uint64]float64
	expected float64
	lo, hi   int
}

func newContinuousEngine(s *Server) *continuousEngine {
	return &continuousEngine{s: s, queries: make(map[uint64]*contQuery)}
}

// RegisterContinuousCount installs a continuous count query over the given
// rectangle and returns its handle. The initial answer is computed from the
// current private data.
func (s *Server) RegisterContinuousCount(query geo.Rect) (uint64, error) {
	if !query.Valid() {
		return 0, fmt.Errorf("server: invalid continuous query %v", query)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cont.nextID++
	cq := &contQuery{
		id:    s.cont.nextID,
		query: query,
		probs: make(map[uint64]float64),
	}
	for uid, region := range s.private {
		if p := prob.Overlap(region, query); p > 0 {
			cq.apply(uid, 0, p)
		}
	}
	s.cont.queries[cq.id] = cq
	s.met.contQueries.Set(float64(len(s.cont.queries)))
	return cq.id, nil
}

// UnregisterContinuousCount removes a continuous query.
func (s *Server) UnregisterContinuousCount(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cont.queries[id]; !ok {
		return false
	}
	delete(s.cont.queries, id)
	s.met.contQueries.Set(float64(len(s.cont.queries)))
	return true
}

// ContinuousCount reads the current incrementally-maintained answer.
func (s *Server) ContinuousCount(id uint64) (ContinuousCountAnswer, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cq, ok := s.cont.queries[id]
	if !ok {
		return ContinuousCountAnswer{}, false
	}
	s.met.continuousReads.Inc()
	return ContinuousCountAnswer{Expected: cq.expected, Lo: cq.lo, Hi: cq.hi}, true
}

// ContinuousCountPDF materializes the full PDF of a continuous query from
// its maintained per-user probabilities.
func (s *Server) ContinuousCountPDF(id uint64) (prob.CountAnswer, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cq, ok := s.cont.queries[id]
	if !ok {
		return prob.CountAnswer{}, false
	}
	probs := make([]float64, 0, len(cq.probs))
	for _, p := range cq.probs {
		probs = append(probs, p)
	}
	// Sort for determinism, matching PublicRangeCount: map iteration order
	// must not influence the PDF's floating-point accumulation, so the
	// materialized PDF bit-equals the one-shot answer over the same data.
	sort.Float64s(probs)
	return prob.RangeCount(probs), true
}

// ContinuousQueryCount returns the number of registered continuous queries.
func (s *Server) ContinuousQueryCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cont.queries)
}

// apply moves user uid's inclusion probability from old to new, adjusting
// the aggregates in O(1).
func (cq *contQuery) apply(uid uint64, old, new float64) {
	if old == new {
		return
	}
	cq.expected += new - old
	if old == 1 {
		cq.lo--
	}
	if new == 1 {
		cq.lo++
	}
	if old > 0 && new == 0 {
		cq.hi--
		delete(cq.probs, uid)
	}
	if old == 0 && new > 0 {
		cq.hi++
	}
	if new > 0 {
		cq.probs[uid] = new
	}
	// Guard against floating-point drift pulling Expected negative.
	if cq.expected < 0 && cq.expected > -1e-9 {
		cq.expected = 0
	}
}

// onPrivateUpdate is called (mutex held) when a user's region changes.
func (e *continuousEngine) onPrivateUpdate(uid uint64, old, new geo.Rect, had bool) {
	for _, cq := range e.queries {
		var po float64
		if had {
			po = prob.Overlap(old, cq.query)
		}
		pn := prob.Overlap(new, cq.query)
		cq.apply(uid, po, pn)
	}
}

// onPrivateRemove is called (mutex held) when a user deregisters.
func (e *continuousEngine) onPrivateRemove(uid uint64, old geo.Rect) {
	for _, cq := range e.queries {
		if po := prob.Overlap(old, cq.query); po > 0 {
			cq.apply(uid, po, 0)
		}
	}
}
