package protocol

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/server"
)

// The frame-buffer reuse introduced for the hot path (pooled WriteFrame
// staging buffers, per-connection ReadFrameBuf reuse in serveConn) is
// only sound while no decoded view of a frame outlives the frame's
// handling. These tests pin that contract: the unit test documents the
// aliasing behavior callers must respect, and the stress test interleaves
// pooled encodes/decodes with concurrent calls on live connections so the
// race detector — CI runs this package under -race — sees any reuse of a
// buffer that still backs someone's payload, and any retroactive
// corruption of an already-decoded response.

// TestReadFrameBufAliasContract documents the reuse contract: the payload
// returned by ReadFrameBuf aliases the reusable buffer, so reading the
// next frame overwrites it in place — while values decoded (copied) out
// of the payload before that read stay intact.
func TestReadFrameBufAliasContract(t *testing.T) {
	var stream bytes.Buffer
	var ea, eb Encoder
	ea.U64(0x1111).Str("alpha")
	eb.U64(0x2222).Str("bravo")
	if err := WriteFrame(&stream, MsgStats, ea.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&stream, MsgStats, eb.Bytes()); err != nil {
		t.Fatal(err)
	}

	_, payloadA, buf, err := ReadFrameBuf(&stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	da := NewDecoder(payloadA)
	idA, strA := da.U64(), da.Str() // copied out: survive the next read
	viewA := payloadA               // retained view: must NOT survive

	_, payloadB, _, err := ReadFrameBuf(&stream, buf)
	if err != nil {
		t.Fatal(err)
	}
	if idA != 0x1111 || strA != "alpha" {
		t.Fatalf("decoded values corrupted by buffer reuse: %#x %q", idA, strA)
	}
	db := NewDecoder(payloadB)
	if id := db.U64(); id != 0x2222 {
		t.Fatalf("second frame decoded %#x, want 0x2222", id)
	}
	// The retained view now shows frame B's bytes — the documented hazard
	// that makes retaining payload views across reads a bug.
	if &viewA[0] != &payloadB[0] || bytes.Equal(viewA, append([]byte(nil), ea.Bytes()...)) {
		t.Fatalf("expected the retained view to be overwritten in place; got %x", viewA)
	}
}

// TestWireNoAliasStress drives a live database service from concurrent
// clients with a read-only query mix whose answers are deterministic,
// checking every decoded response against reference answers and
// re-checking retained early responses after the full barrage — if any
// pooled write buffer were recycled mid-write, or a connection's read
// buffer reused while a response still referenced it, responses would
// corrupt (and -race would flag the unsynchronized reuse).
func TestWireNoAliasStress(t *testing.T) {
	world := geo.R(0, 0, 1, 1)
	srv, err := server.New(server.Config{World: world, QueryWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(41)
	classes := []string{"gas", "atm", "cafe"}
	objs := make([]server.PublicObject, 300)
	for i := range objs {
		objs[i] = server.PublicObject{
			ID:    uint64(i + 1),
			Class: classes[i%len(classes)],
			Loc:   geo.Pt(src.Float64(), src.Float64()),
		}
	}
	if err := srv.LoadStationary(objs); err != nil {
		t.Fatal(err)
	}
	userRects := make([]geo.Rect, 200)
	for i := range userRects {
		p := geo.Pt(src.Float64(), src.Float64())
		userRects[i] = geo.RectAround(p, 0.01+0.02*src.Float64()).Clip(world)
		if err := srv.UpdatePrivate(uint64(i+1), userRects[i]); err != nil {
			t.Fatal(err)
		}
	}
	svc, err := ServeDatabase("127.0.0.1:0", srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rangeQ := server.PrivateRangeQuery{Region: geo.R(0.2, 0.2, 0.5, 0.5), Radius: 0.1, Class: "gas"}
	nnQ := server.PrivateNNQuery{Region: geo.R(0.4, 0.4, 0.6, 0.6), Class: "cafe"}
	countQ := geo.R(0.1, 0.1, 0.7, 0.7)
	batch := []server.BatchEntry{
		{Kind: server.BatchPrivateRange, Range: rangeQ},
		{Kind: server.BatchPrivateNN, NN: nnQ},
		{Kind: server.BatchPublicCount, Count: server.PublicRangeCountQuery{Query: countQ}},
		{Kind: server.BatchPrivateRange, Range: server.PrivateRangeQuery{Region: geo.R(0.5, 0.1, 0.9, 0.4), Radius: 0.2, Class: "atm"}},
	}

	// Reference answers through a throwaway client; the stress state is
	// static (stress re-upserts identical user regions), so every later
	// response must match these exactly.
	ref, err := DialDatabase(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wantRange, err := ref.PrivateRange(rangeQ)
	if err != nil {
		t.Fatal(err)
	}
	wantNN, err := ref.PrivateNN(nnQ)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := ref.PublicCount(countQ)
	if err != nil {
		t.Fatal(err)
	}
	wantBatch, err := ref.BatchQuery(batch)
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	const (
		goroutines = 8
		iters      = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dc, err := DialDatabase(svc.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer dc.Close()
			// Retained early responses, re-verified after the barrage:
			// catches retroactive corruption of already-returned data.
			var earlyRange []server.PublicObject
			var earlyBatch server.BatchResult
			uid := uint64(g%len(userRects)) + 1
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					got, err := dc.PrivateRange(rangeQ)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, wantRange) {
						errs <- fmt.Errorf("goroutine %d iter %d: range response diverged", g, i)
						return
					}
					if earlyRange == nil {
						earlyRange = got
					}
				case 1:
					got, err := dc.PrivateNN(nnQ)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, wantNN) {
						errs <- fmt.Errorf("goroutine %d iter %d: NN response diverged", g, i)
						return
					}
				case 2:
					got, err := dc.PublicCount(countQ)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, wantCount) {
						errs <- fmt.Errorf("goroutine %d iter %d: count response diverged", g, i)
						return
					}
				case 3:
					got, err := dc.BatchQuery(batch)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, wantBatch) {
						errs <- fmt.Errorf("goroutine %d iter %d: batch response diverged", g, i)
						return
					}
					if earlyBatch.Items == nil {
						earlyBatch = got
					}
				case 4:
					// Idempotent re-upsert of this goroutine's own user:
					// exercises the write path without changing any answer.
					if err := dc.UpdatePrivate(uid, userRects[uid-1]); err != nil {
						errs <- err
						return
					}
				}
			}
			if earlyRange != nil && !reflect.DeepEqual(earlyRange, wantRange) {
				errs <- fmt.Errorf("goroutine %d: early range response corrupted retroactively", g)
				return
			}
			if earlyBatch.Items != nil && !reflect.DeepEqual(earlyBatch, wantBatch) {
				errs <- fmt.Errorf("goroutine %d: early batch response corrupted retroactively", g)
				return
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
