package rtree

import (
	"container/heap"
	"math"

	"repro/internal/geo"
)

// queueEntry is an element of the best-first search frontier: either a node
// (item == nil semantics via isItem) or a concrete item, keyed by minimum
// squared distance to the query.
type queueEntry struct {
	dist2  float64
	node   *node
	item   Item
	isItem bool
}

type distQueue []queueEntry

func (q distQueue) Len() int            { return len(q) }
func (q distQueue) Less(i, j int) bool  { return q[i].dist2 < q[j].dist2 }
func (q distQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *distQueue) Push(x interface{}) { *q = append(*q, x.(queueEntry)) }
func (q *distQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Browser yields the indexed items in non-decreasing distance from a query
// point or rectangle — Hjaltason–Samet incremental distance browsing. The
// incremental iterator serves the cold k-NN paths (Nearest, NearestOne);
// the private-NN candidate computation uses the allocation-free
// MinMaxCandidates descent below instead.
type Browser struct {
	q       distQueue
	origin  func(*node) float64 // min dist² from query to a node's bounds
	opoint  func(Item) float64  // dist² from query to an item
	visited int                 // nodes expanded so far
}

// Visited returns the number of tree nodes expanded so far — the index I/O
// proxy the observability layer exports per query.
func (b *Browser) Visited() int { return b.visited }

// NewPointBrowser starts distance browsing from a point query.
func (t *Tree) NewPointBrowser(p geo.Point) *Browser {
	b := &Browser{
		origin: func(n *node) float64 { return geo.MinDist2(p, n.bounds) },
		opoint: func(it Item) float64 { return p.Dist2(it.Loc) },
	}
	if t.root != nil && t.size > 0 {
		heap.Push(&b.q, queueEntry{dist2: b.origin(t.root), node: t.root})
	}
	return b
}

// NewRectBrowser starts distance browsing ordered by minimum distance from
// a rectangle query (distance 0 for items inside the rectangle).
func (t *Tree) NewRectBrowser(r geo.Rect) *Browser {
	b := &Browser{
		origin: func(n *node) float64 { return geo.MinDistRects2(r, n.bounds) },
		opoint: func(it Item) float64 { return geo.MinDist2(it.Loc, r) },
	}
	if t.root != nil && t.size > 0 {
		heap.Push(&b.q, queueEntry{dist2: b.origin(t.root), node: t.root})
	}
	return b
}

// expand pushes the contents of node n onto the frontier.
func (b *Browser) expand(n *node) {
	b.visited++
	if n.leaf {
		for _, item := range n.items {
			heap.Push(&b.q, queueEntry{dist2: b.opoint(item), item: item, isItem: true})
		}
		return
	}
	for i := range n.children {
		heap.Push(&b.q, queueEntry{dist2: b.origin(n.children[i].n), node: n.children[i].n})
	}
}

// Next returns the next-nearest item and its squared distance, or ok=false
// when the index is exhausted.
func (b *Browser) Next() (it Item, dist2 float64, ok bool) {
	for b.q.Len() > 0 {
		e := heap.Pop(&b.q).(queueEntry)
		if e.isItem {
			return e.item, e.dist2, true
		}
		b.expand(e.node)
	}
	return Item{}, 0, false
}

// Peek2 returns the squared distance of the next item without consuming it.
// It reports ok=false when the browser is exhausted.
func (b *Browser) Peek2() (dist2 float64, ok bool) {
	for b.q.Len() > 0 {
		if b.q[0].isItem {
			return b.q[0].dist2, true
		}
		e := heap.Pop(&b.q).(queueEntry)
		b.expand(e.node)
	}
	return 0, false
}

// Nearest returns the k items nearest to p in increasing distance order
// (fewer if the tree holds fewer than k items).
func (t *Tree) Nearest(p geo.Point, k int) []Item {
	if k <= 0 {
		return nil
	}
	b := t.NewPointBrowser(p)
	out := make([]Item, 0, k)
	for len(out) < k {
		it, _, ok := b.Next()
		if !ok {
			break
		}
		out = append(out, it)
	}
	return out
}

// NearestOne returns the single nearest item and whether one exists.
func (t *Tree) NearestOne(p geo.Point) (Item, bool) {
	r := t.Nearest(p, 1)
	if len(r) == 0 {
		return Item{}, false
	}
	return r[0], true
}

// minmaxEnt is a pending subtree of the MinMaxCandidates descent, keyed by
// the minimum squared distance from the query region to its bounds.
type minmaxEnt struct {
	d2 float64
	n  *node
}

// MinMaxCandidates computes the min–max candidate set of a rectangle query
// in one allocation-free depth-first descent: it appends to dst every item
// o accepted by match with MinDist²(o, r) ≤ B, where B is the minimum of
// MaxDist²(o, r) over all accepted items (+Inf when there is none), and
// returns the extended slice, B, and the number of nodes visited.
//
// This is the same set the incremental browse + refilter construction
// produces (the private-NN superset of Figure 5b): B is order-independent
// because any item never visited sits in a subtree with
// MinDist² > running-bound ≥ B, so its MaxDist² ≥ MinDist² > B cannot
// lower the minimum, and the subtree holding the minimizer o* can never be
// pruned since its MinDist² ≤ MinDist²(o*) ≤ MaxDist²(o*) = B ≤ every
// running bound. Children are expanded nearest-first so the bound
// tightens as fast as the best-first browse, without the priority-queue
// boxing that made the browse the hottest allocation site of the batch
// engine. A nil match accepts every item.
func (t *Tree) MinMaxCandidates(r geo.Rect, match func(Item) bool, dst []Item) ([]Item, float64, int) {
	bound := math.Inf(1)
	if t.root == nil || t.size == 0 {
		return dst, bound, 0
	}
	start := len(dst)
	visited := 0
	// The stack bound is depth×fan-out; 128 covers any realistic tree
	// (depth 8 at 40% minimum fill already holds >100k points) and the
	// append below spills to the heap rather than truncating if exceeded.
	var arr [128]minmaxEnt
	stk := append(arr[:0], minmaxEnt{geo.MinDistRects2(r, t.root.bounds), t.root})
	for len(stk) > 0 {
		e := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		// Re-check at pop: the bound may have tightened since push.
		if e.d2 > bound {
			continue
		}
		visited++
		n := e.n
		if n.leaf {
			for _, it := range n.items {
				if match != nil && !match(it) {
					continue
				}
				if md := geo.MaxDist2(it.Loc, r); md < bound {
					bound = md
				}
				if geo.MinDist2(it.Loc, r) <= bound {
					dst = append(dst, it)
				}
			}
			continue
		}
		mark := len(stk)
		for i := range n.children {
			c := &n.children[i]
			d2 := geo.MinDistRects2(r, c.bounds)
			if d2 > bound {
				continue
			}
			stk = append(stk, minmaxEnt{d2, c.n})
		}
		// Order the fresh entries farthest-first so the nearest child is on
		// top of the stack; fan-out is ≤ maxEntries, so insertion sort.
		sub := stk[mark:]
		for i := 1; i < len(sub); i++ {
			for j := i; j > 0 && sub[j].d2 > sub[j-1].d2; j-- {
				sub[j], sub[j-1] = sub[j-1], sub[j]
			}
		}
	}
	// Drop entries admitted before the bound reached its final value.
	kept := dst[:start]
	for _, it := range dst[start:] {
		if geo.MinDist2(it.Loc, r) <= bound {
			kept = append(kept, it)
		}
	}
	return kept, bound, visited
}
