package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/rng"
	"repro/internal/server"
)

// buildPrivateServer cloaks every user with the quadtree cloaker at the
// given k and stores the regions in a fresh server; returns the server and
// the exact locations (ground truth).
func buildPrivateServer(cfg benchConfig, k int) (*server.Server, []geo.Point) {
	p := buildPopulation(cfg.n, mobility.Uniform, cfg.seed)
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		panic(err)
	}
	q := &cloak.Quadtree{Pyr: p.pyr}
	for i, loc := range p.pts {
		res := q.Cloak(uint64(i+1), loc, reqK(k))
		if err := srv.UpdatePrivate(uint64(i+1), res.Region); err != nil {
			panic(err)
		}
	}
	return srv, p.pts
}

// expPublicCount regenerates Figure 6a: probabilistic range counts over
// cloaked users in the three answer formats, against the naive baseline.
func expPublicCount(cfg benchConfig) {
	fmt.Printf("%d users cloaked at several privacy levels; 30 random queries each\n\n", cfg.n)
	t := newTable("k", "query side", "true count", "E[count]", "naive", "E err %", "naive err %", "interval width", "time")
	src := rng.New(cfg.seed + 300)
	for _, k := range []int{10, 50, 200} {
		srv, exact := buildPrivateServer(cfg, k)
		for _, side := range []float64{0.1, 0.25} {
			var truthSum, naiveSum int
			var expectSum, expErr, naiveErr, widthSum float64
			var elapsed time.Duration
			const trials = 30
			for i := 0; i < trials; i++ {
				c := geo.Pt(src.Range(side/2, 1-side/2), src.Range(side/2, 1-side/2))
				query := geo.RectAround(c, side/2)
				t0 := time.Now()
				res, err := srv.PublicRangeCount(server.PublicRangeCountQuery{Query: query})
				elapsed += time.Since(t0)
				if err != nil {
					fmt.Printf("error: %v\n", err)
					return
				}
				truth := 0
				for _, p := range exact {
					if query.Contains(p) {
						truth++
					}
				}
				if truth < res.Answer.Lo || truth > res.Answer.Hi {
					fmt.Printf("INTERVAL VIOLATION: [%d,%d] misses %d\n", res.Answer.Lo, res.Answer.Hi, truth)
					return
				}
				truthSum += truth
				naiveSum += res.NaiveCount
				expectSum += res.Answer.Expected
				expErr += math.Abs(res.Answer.Expected - float64(truth))
				naiveErr += math.Abs(float64(res.NaiveCount) - float64(truth))
				widthSum += float64(res.Answer.Hi - res.Answer.Lo)
			}
			meanTruth := float64(truthSum) / trials
			t.row(k, side, meanTruth, expectSum/trials, float64(naiveSum)/trials,
				100*expErr/trials/maxf(meanTruth, 1),
				100*naiveErr/trials/maxf(meanTruth, 1),
				widthSum/trials, elapsed/trials)
		}
	}
	t.flush()
	fmt.Println("\nreading: the expected-value answer tracks the truth closely while")
	fmt.Println("the naive solid-object count over-counts — and the error and the")
	fmt.Println("interval width both grow with k, quantifying the privacy cost.")
}

// expPublicNN regenerates Figure 6b: the e-coupon query — candidate-set
// size after min–max pruning, and the quality of the probability
// assignment against brute-force ground truth over many trials.
func expPublicNN(cfg benchConfig) {
	fmt.Printf("%d users; 25 random query points per privacy level\n\n", cfg.n)
	t := newTable("k", "pruned", "candidates", "P(best is true NN)", "true NN in cands %", "time")
	src := rng.New(cfg.seed + 400)
	for _, k := range []int{10, 50, 200} {
		srv, exact := buildPrivateServer(cfg, k)
		var prunedSum, candSum int
		var bestHit, containHit int
		var elapsed time.Duration
		const trials = 25
		for i := 0; i < trials; i++ {
			q := geo.Pt(src.Float64(), src.Float64())
			t0 := time.Now()
			res, err := srv.PublicNN(server.PublicNNQuery{From: q, Samples: 2000, Seed: uint64(i + 1)})
			elapsed += time.Since(t0)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			prunedSum += res.PrunedCount
			candSum += len(res.Candidates)
			// Ground truth.
			bestD := math.Inf(1)
			var trueNN uint64
			for j, p := range exact {
				if d := q.Dist2(p); d < bestD {
					bestD, trueNN = d, uint64(j+1)
				}
			}
			if _, ok := res.CandidateRegions[trueNN]; ok {
				containHit++
			}
			if res.Best.ID == trueNN {
				bestHit++
			}
		}
		t.row(k, float64(prunedSum)/trials, float64(candSum)/trials,
			float64(bestHit)/trials, 100*float64(containHit)/trials,
			elapsed/trials)
	}
	t.flush()
	fmt.Println("\nreading: min–max pruning discards almost the entire population")
	fmt.Println("(targets A, B, C of Figure 6b) and the true nearest user is always")
	fmt.Println("in the candidate set (I8). The highest-probability answer beats a")
	fmt.Println("uniform guess over the candidates by an order of magnitude, but its")
	fmt.Println("hit rate drops as k grows — cloaked regions blur who is closest,")
	fmt.Println("which is exactly the privacy working as intended.")
}
