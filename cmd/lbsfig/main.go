// Command lbsfig regenerates the paper's illustrative figures as SVG files
// from live runs of the actual algorithms: Figure 3 (data-dependent
// cloaking), Figure 4 (space-dependent cloaking), Figure 5 (private
// queries over public data) and Figure 6 (public queries over private
// data). Each file is a faithful, data-driven analogue of the paper's
// hand-drawn sketch.
//
// Usage:
//
//	lbsfig -out figures/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/pyramid"
	"repro/internal/server"
	"repro/internal/svg"
)

var world = geo.R(0, 0, 1, 1)

const (
	colUser      = "#d62728" // the protected user
	colOthers    = "#555555" // other users / objects
	colRegion    = "#1f77b4" // cloaked region
	colRegionB   = "#9467bd" // second region
	colFilter    = "#2ca02c" // query filter geometry
	colCandidate = "#ff7f0e" // candidate answers
	colPruned    = "#bbbbbb" // eliminated items
)

func main() {
	out := flag.String("out", "figures", "output directory")
	n := flag.Int("n", 300, "background population size")
	seed := flag.Uint64("seed", 4, "RNG seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("lbsfig: %v", err)
	}

	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: *n, World: world, Dist: mobility.Uniform, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	gi, err := grid.New(world, 32, 32)
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	pyr, err := pyramid.New(world, 7)
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	for i, p := range pts {
		gi.Upsert(uint64(i+1), p)
		if err := pyr.Insert(uint64(i+1), p); err != nil {
			log.Fatalf("lbsfig: %v", err)
		}
	}
	pop := cloak.GridPopulation{Index: gi}

	// The user every figure protects.
	uid := uint64(42)
	loc := pts[uid-1]
	req := privacy.Requirement{K: 15}

	write(*out, "fig3-data-dependent.svg", fig3(pop, pts, uid, loc, req))
	write(*out, "fig4-space-dependent.svg", fig4(pyr, pts, uid, loc, req))
	write(*out, "fig5-private-queries.svg", fig5(pyr, pts, uid, loc, req, *seed))
	write(*out, "fig6-public-queries.svg", fig6(pyr, pts, *seed))
	fmt.Printf("lbsfig: wrote 4 figures to %s/\n", *out)
}

func write(dir, name string, c *svg.Canvas) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	defer f.Close()
	if _, err := c.WriteTo(f); err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
}

func canvas(title string) *svg.Canvas {
	c, err := svg.New(640, 640, world)
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	c.TitleBar(title)
	return c
}

func drawPopulation(c *svg.Canvas, pts []geo.Point, user geo.Point) {
	for _, p := range pts {
		c.Dot(p, 1.6, colOthers)
	}
	c.Dot(user, 4, colUser)
	c.Ring(user, 7, colUser)
}

// fig3 reproduces Figure 3: naive centered expansion vs the k-NN MBR.
func fig3(pop cloak.GridPopulation, pts []geo.Point, uid uint64, loc geo.Point, req privacy.Requirement) *svg.Canvas {
	c := canvas(fmt.Sprintf("Figure 3 — data-dependent cloaking (k=%d): naive (blue) vs MBR (purple)", req.K))
	drawPopulation(c, pts, loc)

	naive := (&cloak.Naive{Pop: pop}).Cloak(uid, loc, req)
	c.Rect(naive.Region, colRegion, colRegion, 0.12)
	c.Text(geo.Pt(naive.Region.Min.X, naive.Region.Max.Y+0.015), 12, colRegion,
		fmt.Sprintf("naive: center = user (leak), %d users", naive.K))

	mbr := (&cloak.MBR{Pop: pop}).Cloak(uid, loc, req)
	c.Rect(mbr.Region, colRegionB, colRegionB, 0.12)
	c.Text(geo.Pt(mbr.Region.Min.X, mbr.Region.Min.Y-0.03), 12, colRegionB,
		fmt.Sprintf("MBR: users on every edge (leak), %d users", mbr.K))
	// Highlight the anonymity set on the MBR boundary.
	for _, p := range pop.KNearest(loc, req.K) {
		onEdge := p.X == mbr.Region.Min.X || p.X == mbr.Region.Max.X ||
			p.Y == mbr.Region.Min.Y || p.Y == mbr.Region.Max.Y
		if onEdge {
			c.Ring(p, 5, colRegionB)
		}
	}
	return c
}

// fig4 reproduces Figure 4: quadtree descent and grid merging.
func fig4(pyr *pyramid.Pyramid, pts []geo.Point, uid uint64, loc geo.Point, req privacy.Requirement) *svg.Canvas {
	c := canvas(fmt.Sprintf("Figure 4 — space-dependent cloaking (k=%d): quadtree (blue), grid merge (purple)", req.K))
	// Show the level-4 partition lightly.
	const lvl = 4
	side := 1 << lvl
	for i := 1; i < side; i++ {
		f := float64(i) / float64(side)
		c.Line(geo.Pt(f, 0), geo.Pt(f, 1), "#eeeeee")
		c.Line(geo.Pt(0, f), geo.Pt(1, f), "#eeeeee")
	}
	drawPopulation(c, pts, loc)

	quad := (&cloak.Quadtree{Pyr: pyr}).Cloak(uid, loc, req)
	c.Rect(quad.Region, colRegion, colRegion, 0.12)
	c.Text(geo.Pt(quad.Region.Min.X, quad.Region.Max.Y+0.015), 12, colRegion,
		fmt.Sprintf("quadtree cell: %d users", quad.K))

	// A second user in a sparse corner shows grid merging.
	sparse := sparsestUser(pyr, pts)
	g := (&cloak.Grid{Pyr: pyr, Level: lvl}).Cloak(9999, sparse, req)
	c.Dot(sparse, 4, colUser)
	c.Ring(sparse, 7, colUser)
	c.Rect(g.Region, colRegionB, colRegionB, 0.12)
	c.Text(geo.Pt(g.Region.Min.X, g.Region.Min.Y-0.03), 12, colRegionB,
		fmt.Sprintf("merged grid block: %d users", g.K))
	return c
}

// sparsestUser picks the user whose level-4 cell holds the fewest users.
func sparsestUser(pyr *pyramid.Pyramid, pts []geo.Point) geo.Point {
	best := pts[0]
	bestCount := int(^uint(0) >> 1)
	for _, p := range pts {
		if n := pyr.Count(pyr.CellAt(4, p)); n < bestCount {
			bestCount = n
			best = p
		}
	}
	return best
}

// fig5 reproduces Figure 5: private range and private NN candidates.
func fig5(pyr *pyramid.Pyramid, pts []geo.Point, uid uint64, loc geo.Point, req privacy.Requirement, seed uint64) *svg.Canvas {
	c := canvas("Figure 5 — private queries over public data: range filter (green), NN candidates (orange)")

	// Public objects.
	objPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 250, World: world, Dist: mobility.Uniform, Seed: seed + 100,
	})
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	objs := make([]server.PublicObject, len(objPts))
	for i, p := range objPts {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "poi", Loc: p}
	}
	if err := srv.LoadStationary(objs); err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	for _, p := range objPts {
		c.Dot(p, 2, colOthers)
	}

	region := (&cloak.Quadtree{Pyr: pyr}).Cloak(uid, loc, req).Region
	c.Rect(region, colRegion, colRegion, 0.15)
	c.Dot(loc, 4, colUser)
	c.Text(geo.Pt(region.Min.X, region.Max.Y+0.015), 12, colRegion, "cloaked region")

	// Range query: filter MBR + candidates.
	const radius = 0.09
	filter := region.Expand(radius)
	c.Rect(filter, colFilter, "none", 0)
	c.Text(geo.Pt(filter.Min.X, filter.Min.Y-0.02), 12, colFilter, "range filter (region ⊕ r)")
	rangeCands, err := srv.PrivateRange(server.PrivateRangeQuery{Region: region, Radius: radius})
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	for _, o := range rangeCands {
		c.Ring(o.Loc, 4, colFilter)
	}

	// NN query: candidates (orange) vs everything else.
	nn, err := srv.PrivateNN(server.PrivateNNQuery{Region: region})
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	for _, o := range nn.Candidates {
		c.Dot(o.Loc, 3.5, colCandidate)
	}
	c.Text(geo.Pt(0.02, 0.04), 12, colCandidate,
		fmt.Sprintf("NN candidates: %d of %d objects (superset %d)",
			len(nn.Candidates), len(objs), nn.SupersetSize))
	return c
}

// fig6 reproduces Figure 6: probabilistic count and public NN pruning.
func fig6(pyr *pyramid.Pyramid, pts []geo.Point, seed uint64) *svg.Canvas {
	c := canvas("Figure 6 — public queries over private data: count overlap %, NN candidates vs pruned")
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	q := &cloak.Quadtree{Pyr: pyr}
	// Cloak a 30-user subset so the figure stays readable.
	step := len(pts)/30 + 1
	for i := 0; i < len(pts); i += step {
		res := q.Cloak(uint64(i+1), pts[i], privacy.Requirement{K: 12})
		if err := srv.UpdatePrivate(uint64(i+1), res.Region); err != nil {
			log.Fatalf("lbsfig: %v", err)
		}
	}

	// Count query rectangle.
	area := geo.R(0.3, 0.35, 0.68, 0.72)
	cnt, err := srv.PublicRangeCount(server.PublicRangeCountQuery{Query: area})
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	c.Rect(area, colFilter, colFilter, 0.08)
	c.Text(geo.Pt(area.Min.X, area.Max.Y+0.015), 12, colFilter,
		fmt.Sprintf("count query: E=%.2f, range [%d,%d], naive %d",
			cnt.Answer.Expected, cnt.Answer.Lo, cnt.Answer.Hi, cnt.NaiveCount))

	// Public NN from a station.
	station := geo.Pt(0.2, 0.2)
	nn, err := srv.PublicNN(server.PublicNNQuery{From: station, Samples: 1500, Seed: seed})
	if err != nil {
		log.Fatalf("lbsfig: %v", err)
	}
	isCand := map[uint64]bool{}
	for _, cd := range nn.Candidates {
		isCand[cd.ID] = true
	}
	for i := 0; i < len(pts); i += step {
		id := uint64(i + 1)
		region, ok := srv.PrivateRegion(id)
		if !ok {
			continue
		}
		if isCand[id] {
			c.Rect(region, colCandidate, colCandidate, 0.10)
		} else {
			c.Rect(region, colPruned, colPruned, 0.05)
		}
	}
	c.Dot(station, 5, colUser)
	c.Text(geo.Pt(station.X+0.015, station.Y), 12, colUser, "station (public NN query)")
	c.Text(geo.Pt(0.02, 0.04), 12, colCandidate,
		fmt.Sprintf("NN candidates %d (orange), pruned %d (gray); best user %d P=%.2f",
			len(nn.Candidates), nn.PrunedCount, nn.Best.ID, nn.Best.Prob))
	return c
}
