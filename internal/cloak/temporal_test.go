package cloak

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/pyramid"
	"repro/internal/rng"
)

func newTemporal(t *testing.T, level, maxDelay int) (*Temporal, *pyramid.Pyramid) {
	t.Helper()
	pyr, err := pyramid.New(world, 6)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTemporal(pyr, level, maxDelay)
	if err != nil {
		t.Fatal(err)
	}
	return tc, pyr
}

func TestNewTemporalValidation(t *testing.T) {
	pyr, _ := pyramid.New(world, 4)
	if _, err := NewTemporal(nil, 2, 5); err == nil {
		t.Error("nil pyramid accepted")
	}
	if _, err := NewTemporal(pyr, -1, 5); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := NewTemporal(pyr, 9, 5); err == nil {
		t.Error("too-deep level accepted")
	}
	if _, err := NewTemporal(pyr, 2, 0); err == nil {
		t.Error("zero MaxDelay accepted")
	}
}

func TestTemporalReleasesWhenKVisitorsArrive(t *testing.T) {
	tc, pyr := newTemporal(t, 3, 100)
	loc := geo.Pt(0.3, 0.3)
	cell := pyr.CellAt(3, loc)
	cellRect := pyr.Rect(cell)

	tc.Observe(1, loc, 3) // user 1 wants k=3
	if got := tc.PendingCount(); got != 1 {
		t.Fatalf("pending = %d", got)
	}
	if rel := tc.Tick(); len(rel) != 0 {
		t.Fatalf("released with only 1 visitor: %v", rel)
	}
	// Two more visitors to the same cell (any point inside it counts).
	tc.Observe(2, cellRect.Center(), 1)
	if rel := tc.Tick(); len(rel) != 0 {
		t.Fatal("released with 2 visitors")
	}
	tc.Observe(3, geo.Pt(cellRect.Min.X+1e-6, cellRect.Min.Y+1e-6), 1)
	rel := tc.Tick()
	if len(rel) != 1 {
		t.Fatalf("expected release, got %v", rel)
	}
	r := rel[0]
	if r.ID != 1 || !r.Satisfied || r.K != 3 {
		t.Errorf("release = %+v", r)
	}
	if !r.Region.Eq(cellRect) {
		t.Errorf("region = %v, want cell %v", r.Region, cellRect)
	}
	if r.From != 0 || r.To != 3 {
		t.Errorf("temporal interval = [%d,%d]", r.From, r.To)
	}
	if tc.PendingCount() != 0 {
		t.Error("pending not drained")
	}
}

func TestTemporalRequesterCountsTowardK(t *testing.T) {
	tc, _ := newTemporal(t, 3, 100)
	tc.Observe(1, geo.Pt(0.5, 0.5), 1) // k=1: no queueing, immediate anonymity
	if tc.PendingCount() != 0 {
		t.Error("k=1 update queued")
	}
	// k=2 with one other visitor releases on the next tick.
	tc.Observe(2, geo.Pt(0.5, 0.5), 2)
	rel := tc.Tick()
	if len(rel) != 1 || !rel[0].Satisfied || rel[0].K != 2 {
		t.Fatalf("release = %v", rel)
	}
}

func TestTemporalExpiry(t *testing.T) {
	tc, _ := newTemporal(t, 3, 5)
	tc.Observe(1, geo.Pt(0.7, 0.7), 50) // k far beyond any visitors
	var rel []TemporalRelease
	for i := 0; i < 5; i++ {
		rel = tc.Tick()
		if i < 4 && len(rel) != 0 {
			t.Fatalf("released early at tick %d", i+1)
		}
	}
	if len(rel) != 1 {
		t.Fatalf("expected expiry release, got %v", rel)
	}
	if rel[0].Satisfied {
		t.Error("expired release marked satisfied")
	}
	if rel[0].K != 1 {
		t.Errorf("expired K = %d, want 1 (only the requester)", rel[0].K)
	}
}

func TestTemporalVisitorsMustBeAfterArrival(t *testing.T) {
	tc, _ := newTemporal(t, 3, 100)
	// Visitors BEFORE the update arrives must not count.
	tc.Observe(10, geo.Pt(0.2, 0.2), 1)
	tc.Observe(11, geo.Pt(0.2, 0.2), 1)
	tc.Tick()
	tc.Tick()
	// gc horizon is generous (MaxDelay 100); old visits remain recorded but
	// must be ignored because they precede the update's arrival... they are
	// at ticks 0 < arrivedAt=2.
	tc.Observe(1, geo.Pt(0.2, 0.2), 3)
	rel := tc.Tick()
	if len(rel) != 0 {
		t.Fatalf("stale visitors satisfied the update: %v", rel)
	}
	// Fresh visits do count.
	tc.Observe(10, geo.Pt(0.2, 0.2), 1)
	tc.Observe(11, geo.Pt(0.2, 0.2), 1)
	rel = tc.Tick()
	if len(rel) != 1 || !rel[0].Satisfied {
		t.Fatalf("fresh visitors did not release: %v", rel)
	}
}

func TestTemporalDistinctVisitors(t *testing.T) {
	tc, _ := newTemporal(t, 3, 100)
	tc.Observe(1, geo.Pt(0.4, 0.4), 3)
	// The same second user visiting repeatedly is still one visitor.
	for i := 0; i < 10; i++ {
		tc.Observe(2, geo.Pt(0.4, 0.4), 1)
		if rel := tc.Tick(); len(rel) != 0 {
			t.Fatalf("repeated visits of one user satisfied k=3: %v", rel)
		}
	}
	tc.Observe(3, geo.Pt(0.4, 0.4), 1)
	if rel := tc.Tick(); len(rel) != 1 {
		t.Fatal("third distinct visitor should release")
	}
}

func TestTemporalCellIsolation(t *testing.T) {
	tc, _ := newTemporal(t, 3, 100)
	// Visitors in a different cell do not help.
	tc.Observe(1, geo.Pt(0.1, 0.1), 2)
	tc.Observe(2, geo.Pt(0.9, 0.9), 1)
	if rel := tc.Tick(); len(rel) != 0 {
		t.Fatalf("cross-cell visitor counted: %v", rel)
	}
}

func TestTemporalGC(t *testing.T) {
	tc, _ := newTemporal(t, 3, 3)
	tc.Observe(1, geo.Pt(0.5, 0.5), 1)
	for i := 0; i < 10; i++ {
		tc.Tick()
	}
	if len(tc.visitors) != 0 {
		t.Errorf("visitor records not garbage collected: %d cells", len(tc.visitors))
	}
}

// Dense cells release fast, sparse cells wait — the latency/privacy
// trade-off temporal cloaking is about.
func TestTemporalLatencyReflectsDensity(t *testing.T) {
	tc, pyr := newTemporal(t, 2, 1000)
	src := rng.New(3)
	dense := pyr.Rect(pyr.CellAt(2, geo.Pt(0.1, 0.1)))
	sparse := pyr.Rect(pyr.CellAt(2, geo.Pt(0.9, 0.9)))

	tc.Observe(1, dense.Center(), 10)
	tc.Observe(2, sparse.Center(), 10)

	denseTick, sparseTick := int64(-1), int64(-1)
	for tick := 0; tick < 300; tick++ {
		// 5 visitors/tick in the dense cell, one every 10 ticks in sparse.
		for v := 0; v < 5; v++ {
			id := uint64(100 + src.Intn(50))
			tc.Observe(id, geo.Pt(
				src.Range(dense.Min.X, dense.Max.X),
				src.Range(dense.Min.Y, dense.Max.Y),
			), 1)
		}
		if tick%10 == 0 {
			id := uint64(200 + tick/10)
			tc.Observe(id, sparse.Center(), 1)
		}
		for _, rel := range tc.Tick() {
			switch rel.ID {
			case 1:
				denseTick = rel.To
			case 2:
				sparseTick = rel.To
			}
		}
		if denseTick >= 0 && sparseTick >= 0 {
			break
		}
	}
	if denseTick < 0 || sparseTick < 0 {
		t.Fatalf("updates never released: dense=%d sparse=%d", denseTick, sparseTick)
	}
	if denseTick >= sparseTick {
		t.Errorf("dense cell (%d) should release before sparse (%d)", denseTick, sparseTick)
	}
}

func BenchmarkTemporalTick(b *testing.B) {
	pyr, _ := pyramid.New(world, 6)
	tc, err := NewTemporal(pyr, 4, 50)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for u := 0; u < 100; u++ {
			id := uint64(src.Intn(1000)) + 1
			k := 1
			if u%10 == 0 {
				k = 20
			}
			tc.Observe(id, geo.Pt(src.Float64(), src.Float64()), k)
		}
		tc.Tick()
	}
}
