package stats

import (
	"strings"
	"testing"
	"time"
)

func TestEmpty(t *testing.T) {
	var l Latencies
	if l.N() != 0 || l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Error("empty collector should report zeros")
	}
}

func TestPercentiles(t *testing.T) {
	var l Latencies
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := l.Percentile(c.p); got != c.want {
			t.Errorf("p%g = %v, want %v", c.p, got, c.want)
		}
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
}

func TestPercentileClamping(t *testing.T) {
	var l Latencies
	l.Add(5 * time.Millisecond)
	if l.Percentile(-10) != 5*time.Millisecond || l.Percentile(200) != 5*time.Millisecond {
		t.Error("out-of-range percentiles should clamp")
	}
}

func TestMerge(t *testing.T) {
	var a, b Latencies
	a.Add(1 * time.Millisecond)
	b.Add(3 * time.Millisecond)
	a.Merge(&b)
	if a.N() != 2 {
		t.Errorf("merged N = %d", a.N())
	}
	if a.Mean() != 2*time.Millisecond {
		t.Errorf("merged mean = %v", a.Mean())
	}
}

func TestSummary(t *testing.T) {
	var l Latencies
	l.Add(time.Millisecond)
	s := l.Summary()
	for _, want := range []string{"n=1", "p50=", "p99="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
