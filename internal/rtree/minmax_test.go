package rtree

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// browseMinMax is the reference construction MinMaxCandidates must match:
// the incremental distance browse with the running min–max bound and the
// final refilter, exactly as the private-NN processor computed its
// superset before the allocation-free descent replaced it.
func browseMinMax(tr *Tree, r geo.Rect, match func(Item) bool) ([]Item, float64) {
	b := tr.NewRectBrowser(r)
	bound := math.Inf(1)
	var cands []Item
	for {
		d2, ok := b.Peek2()
		if !ok || d2 > bound {
			break
		}
		it, _, _ := b.Next()
		if match != nil && !match(it) {
			continue
		}
		if md := geo.MaxDist2(it.Loc, r); md < bound {
			bound = md
		}
		cands = append(cands, it)
	}
	kept := cands[:0]
	for _, it := range cands {
		if geo.MinDist2(it.Loc, r) <= bound {
			kept = append(kept, it)
		}
	}
	return kept, bound
}

func sortedIDs(items []Item) []uint64 {
	ids := make([]uint64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestMinMaxCandidatesMatchesBrowse(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		src := rng.New(seed)
		n := 1 + src.Intn(400)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: uint64(i + 1), Loc: geo.Pt(src.Float64(), src.Float64())}
		}
		// Exercise both construction paths: bulk load and incremental insert
		// produce different tree shapes, and the set must be shape-invariant.
		trees := []*Tree{BulkLoad(append([]Item(nil), items...)), New()}
		for _, it := range items {
			trees[1].Insert(it)
		}
		// Odd IDs only, emulating a class filter over the metadata map.
		odd := func(it Item) bool { return it.ID%2 == 1 }
		for trial := 0; trial < 30; trial++ {
			c := geo.Pt(src.Float64(), src.Float64())
			half := 0.001 + 0.2*src.Float64()
			r := geo.RectAround(c, half).Clip(world)
			for ti, tr := range trees {
				for mi, match := range []func(Item) bool{nil, odd} {
					wantItems, wantBound := browseMinMax(tr, r, match)
					got, bound, visited := tr.MinMaxCandidates(r, match, nil)
					if bound != wantBound {
						t.Fatalf("seed %d trial %d tree %d match %d: bound %g, browse bound %g",
							seed, trial, ti, mi, bound, wantBound)
					}
					gotIDs, wantIDs := sortedIDs(got), sortedIDs(wantItems)
					if len(gotIDs) != len(wantIDs) {
						t.Fatalf("seed %d trial %d tree %d match %d: %d candidates, browse found %d",
							seed, trial, ti, mi, len(gotIDs), len(wantIDs))
					}
					for i := range gotIDs {
						if gotIDs[i] != wantIDs[i] {
							t.Fatalf("seed %d trial %d tree %d match %d: candidate ids %v != browse %v",
								seed, trial, ti, mi, gotIDs, wantIDs)
						}
					}
					if visited < 1 {
						t.Fatalf("seed %d trial %d: descent reported %d node visits", seed, trial, visited)
					}
				}
			}
		}
	}
}

func TestMinMaxCandidatesEmptyAndNoMatch(t *testing.T) {
	tr := New()
	got, bound, visited := tr.MinMaxCandidates(geo.R(0, 0, 1, 1), nil, nil)
	if len(got) != 0 || !math.IsInf(bound, 1) || visited != 0 {
		t.Fatalf("empty tree: got %v bound %g visits %d", got, bound, visited)
	}
	tr.Insert(Item{ID: 1, Loc: geo.Pt(0.5, 0.5)})
	got, bound, _ = tr.MinMaxCandidates(geo.R(0, 0, 1, 1), func(Item) bool { return false }, nil)
	if len(got) != 0 || !math.IsInf(bound, 1) {
		t.Fatalf("all-rejected: got %v bound %g", got, bound)
	}
}

func TestMinMaxCandidatesAppendsToDst(t *testing.T) {
	tr := New()
	tr.Insert(Item{ID: 7, Loc: geo.Pt(0.5, 0.5)})
	prefix := []Item{{ID: 99, Loc: geo.Pt(0, 0)}}
	got, _, _ := tr.MinMaxCandidates(geo.R(0.4, 0.4, 0.6, 0.6), nil, prefix)
	if len(got) != 2 || got[0].ID != 99 || got[1].ID != 7 {
		t.Fatalf("dst prefix not preserved: %v", got)
	}
}

func BenchmarkMinMaxCandidates(b *testing.B) {
	src := rng.New(42)
	items := make([]Item, 5000)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Loc: geo.Pt(src.Float64(), src.Float64())}
	}
	tr := BulkLoad(items)
	r := geo.RectAround(geo.Pt(0.5, 0.5), 0.01)
	var scratch []Item
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch, _, _ = tr.MinMaxCandidates(r, nil, scratch[:0])
	}
}

func BenchmarkBrowseMinMax(b *testing.B) {
	src := rng.New(42)
	items := make([]Item, 5000)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Loc: geo.Pt(src.Float64(), src.Float64())}
	}
	tr := BulkLoad(items)
	r := geo.RectAround(geo.Pt(0.5, 0.5), 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		browseMinMax(tr, r, nil)
	}
}
