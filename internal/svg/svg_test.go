package svg

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
)

var world = geo.R(0, 0, 1, 1)

func render(t *testing.T, draw func(c *Canvas)) string {
	t.Helper()
	c, err := New(400, 400, world)
	if err != nil {
		t.Fatal(err)
	}
	draw(c)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 100, world); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(100, -1, world); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := New(100, 100, geo.Rect{}); err == nil {
		t.Error("empty world accepted")
	}
}

func TestDocumentStructure(t *testing.T) {
	out := render(t, func(c *Canvas) {})
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Errorf("malformed document:\n%s", out)
	}
	if !strings.Contains(out, `width="400"`) {
		t.Error("dimensions missing")
	}
}

func TestCoordinateFlip(t *testing.T) {
	// World (0,0) is the bottom-left: pixel y = canvas height.
	out := render(t, func(c *Canvas) {
		c.Dot(geo.Pt(0, 0), 2, "black")
		c.Dot(geo.Pt(1, 1), 2, "red")
	})
	if !strings.Contains(out, `cx="0.00" cy="400.00"`) {
		t.Errorf("origin not at bottom-left:\n%s", out)
	}
	if !strings.Contains(out, `cx="400.00" cy="0.00"`) {
		t.Errorf("world max not at top-right:\n%s", out)
	}
}

func TestRectMapping(t *testing.T) {
	out := render(t, func(c *Canvas) {
		c.Rect(geo.R(0.25, 0.25, 0.75, 0.75), "black", "gray", 0.5)
	})
	// x from 100, y from 100 (flipped), 200×200.
	if !strings.Contains(out, `x="100.00" y="100.00" width="200.00" height="200.00"`) {
		t.Errorf("rect mapping wrong:\n%s", out)
	}
}

func TestElements(t *testing.T) {
	out := render(t, func(c *Canvas) {
		c.Line(geo.Pt(0, 0), geo.Pt(1, 1), "blue")
		c.Ring(geo.Pt(0.5, 0.5), 10, "green")
		c.Text(geo.Pt(0.1, 0.9), 12, "black", "label")
		c.TitleBar("caption")
	})
	for _, want := range []string{"<line", "<circle", ">label</text>", ">caption</text>"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestEscaping(t *testing.T) {
	out := render(t, func(c *Canvas) {
		c.Text(geo.Pt(0.5, 0.5), 10, "black", "a<b & c>d")
	})
	if !strings.Contains(out, "a&lt;b &amp; c&gt;d") {
		t.Errorf("text not escaped:\n%s", out)
	}
	if strings.Contains(out, "a<b") {
		t.Error("raw markup leaked")
	}
}
