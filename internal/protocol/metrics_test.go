package protocol

import (
	"errors"
	"math"
	"testing"

	"repro/internal/anonymizer"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/server"
)

func TestMetricsRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("rt_requests_total", "Requests.", obs.L("type", "update")).Add(7)
	reg.Gauge("rt_active", "Active.").Set(-2.5)
	h := reg.Histogram("rt_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)

	in := reg.Export()
	out, err := DecodeMetrics(encodeMetrics(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d series, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Name != b.Name || a.Help != b.Help || a.Kind != b.Kind {
			t.Errorf("series %d header: %+v vs %+v", i, a, b)
		}
		if len(a.Labels) != len(b.Labels) {
			t.Fatalf("series %d labels: %v vs %v", i, a.Labels, b.Labels)
		}
		for j := range a.Labels {
			if a.Labels[j] != b.Labels[j] {
				t.Errorf("series %d label %d: %v vs %v", i, j, a.Labels[j], b.Labels[j])
			}
		}
		switch a.Kind {
		case obs.KindCounter, obs.KindGauge:
			if a.Value != b.Value {
				t.Errorf("series %s value: %g vs %g", a.Name, a.Value, b.Value)
			}
		case obs.KindHistogram:
			if len(a.Hist.Bounds) != len(b.Hist.Bounds) || len(a.Hist.Counts) != len(b.Hist.Counts) {
				t.Fatalf("series %s layout: %+v vs %+v", a.Name, a.Hist, b.Hist)
			}
			for j := range a.Hist.Bounds {
				if a.Hist.Bounds[j] != b.Hist.Bounds[j] {
					t.Errorf("series %s bound %d: %g vs %g", a.Name, j, a.Hist.Bounds[j], b.Hist.Bounds[j])
				}
			}
			for j := range a.Hist.Counts {
				if a.Hist.Counts[j] != b.Hist.Counts[j] {
					t.Errorf("series %s count %d: %d vs %d", a.Name, j, a.Hist.Counts[j], b.Hist.Counts[j])
				}
			}
			if a.Hist.Sum != b.Hist.Sum {
				t.Errorf("series %s sum: %g vs %g", a.Name, a.Hist.Sum, b.Hist.Sum)
			}
		}
	}
	// The decoded snapshot must still merge and answer quantiles — that is
	// what the load tools do with it.
	var hs *obs.MetricSnapshot
	for i := range out {
		if out[i].Kind == obs.KindHistogram {
			hs = &out[i]
		}
	}
	if hs == nil {
		t.Fatal("no histogram decoded")
	}
	if err := hs.Hist.Merge(hs.Hist); err != nil {
		t.Fatalf("self-merge: %v", err)
	}
	if got := hs.Hist.Count(); got != 6 {
		t.Fatalf("merged count = %d, want 6", got)
	}
	// Merged samples sorted: {0.0005 ×2, 0.05 ×2, 3 ×2}; Rank(6, 50) = 2,
	// so the p50 sample is 0.05, inside the (0.01, 0.1] bucket.
	if q := hs.Hist.Quantile(50); !(q > 0.01 && q <= 0.1) {
		t.Errorf("p50 = %g, want inside (0.01, 0.1]", q)
	}
}

func TestMetricsEncodeInfBounds(t *testing.T) {
	// privacy.Unconstrained areas put +Inf through F64 elsewhere; make sure
	// histogram payloads preserve non-finite sums (NaN never occurs, +Inf
	// can after merging abusive inputs) and large counts.
	in := []obs.MetricSnapshot{{
		Name: "x", Kind: obs.KindHistogram,
		Hist: obs.HistogramSnapshot{
			Bounds: []float64{1},
			Counts: []uint64{math.MaxUint64, 1},
			Sum:    math.Inf(1),
		},
	}}
	out, err := DecodeMetrics(encodeMetrics(in))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Hist.Counts[0] != math.MaxUint64 || !math.IsInf(out[0].Hist.Sum, 1) {
		t.Fatalf("non-finite round trip: %+v", out[0].Hist)
	}
}

func TestDecodeMetricsRejectsGarbage(t *testing.T) {
	if _, err := DecodeMetrics([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("forged series count must fail, not allocate")
	}
	var e Encoder
	e.U32(1)
	e.Str("m").Str("").U8(9) // unknown kind
	e.U16(0)
	if _, err := DecodeMetrics(e.Bytes()); err == nil {
		t.Fatal("unknown metric kind must fail")
	}
}

// TestMetricsOverLoopback drives a live instrumented anonymizer+database
// pair and fetches their registries with MsgMetrics, checking that each
// tier's series arrive with observations.
func TestMetricsOverLoopback(t *testing.T) {
	dbReg := obs.NewRegistry()
	srv, err := server.New(server.Config{World: world, Metrics: dbReg})
	if err != nil {
		t.Fatal(err)
	}
	dbSvc, err := ServeDatabase("127.0.0.1:0", srv, quiet, WithMetrics(dbReg))
	if err != nil {
		t.Fatal(err)
	}
	defer dbSvc.Close()
	fwd, err := DialDatabase(dbSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	anonReg := obs.NewRegistry()
	anon, err := anonymizer.New(anonymizer.Config{
		World: world, Forward: fwd.UpdatePrivate, Metrics: anonReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anon, quiet, WithMetrics(anonReg))
	if err != nil {
		t.Fatal(err)
	}
	defer anonSvc.Close()
	user, err := DialAnonymizer(anonSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer user.Close()
	admin, err := DialDatabase(dbSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	// Traffic through all three tiers.
	if err := admin.LoadStationary([]server.PublicObject{
		{ID: 1, Class: "gas", Loc: geo.Pt(0.2, 0.2)},
		{ID: 2, Class: "gas", Loc: geo.Pt(0.8, 0.8)},
	}); err != nil {
		t.Fatal(err)
	}
	prof := privacy.Constant(privacy.Requirement{K: 2})
	for i := uint64(1); i <= 8; i++ {
		if err := user.Register(i, prof); err != nil {
			t.Fatal(err)
		}
		if _, err := user.Update(i, geo.Pt(0.1*float64(i), 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := user.CloakQuery(3, geo.Pt(0.3, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := admin.PrivateNN(server.PrivateNNQuery{Region: res.Region, Class: "gas"}); err != nil {
		t.Fatal(err)
	}

	find := func(series []obs.MetricSnapshot, name string) *obs.MetricSnapshot {
		for i := range series {
			if series[i].Name == name {
				return &series[i]
			}
		}
		return nil
	}

	anonSeries, err := user.Metrics()
	if err != nil {
		t.Fatalf("anonymizer metrics: %v", err)
	}
	if s := find(anonSeries, "anon_updates_total"); s == nil || s.Value < 8 {
		t.Errorf("anon_updates_total = %+v, want >= 8", s)
	}
	if s := find(anonSeries, "anon_cloak_seconds"); s == nil || s.Hist.Count() < 9 {
		t.Errorf("anon_cloak_seconds missing or empty: %+v", s)
	}
	if s := find(anonSeries, "proto_requests_total"); s == nil {
		t.Error("anonymizer proto_requests_total missing")
	}
	if s := find(anonSeries, "proto_active_connections"); s == nil || s.Value < 1 {
		t.Errorf("proto_active_connections = %+v, want >= 1", s)
	}

	dbSeries, err := admin.Metrics()
	if err != nil {
		t.Fatalf("database metrics: %v", err)
	}
	if s := find(dbSeries, "lbs_private_users"); s == nil || s.Value != 8 {
		t.Errorf("lbs_private_users = %+v, want 8", s)
	}
	if s := find(dbSeries, "lbs_query_seconds"); s == nil || s.Hist.Count() == 0 {
		t.Errorf("lbs_query_seconds missing or empty: %+v", s)
	}
	if s := find(dbSeries, "lbs_index_node_visits"); s == nil || s.Hist.Count() == 0 {
		t.Errorf("lbs_index_node_visits missing or empty: %+v", s)
	}
	if s := find(dbSeries, "proto_bytes_read_total"); s == nil || s.Value == 0 {
		t.Errorf("proto_bytes_read_total = %+v, want > 0", s)
	}
	if s := find(dbSeries, "proto_frame_bytes"); s == nil || s.Hist.Count() == 0 {
		t.Errorf("proto_frame_bytes missing or empty: %+v", s)
	}

	// A second fetch must see the first one's request accounted for.
	dbSeries2, err := admin.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range dbSeries2 {
		s := dbSeries2[i]
		if s.Name == "proto_requests_total" {
			for _, l := range s.Labels {
				if l.Key == "type" && l.Value == "metrics" {
					found = true
					if s.Value < 1 {
						t.Errorf("proto_requests_total{type=metrics} = %g", s.Value)
					}
				}
			}
		}
	}
	if !found {
		t.Error("MsgMetrics requests not counted by the service layer")
	}
}

// TestMetricsUninstrumentedPeer checks that a plain service (no
// WithMetrics) answers MsgMetrics with a remote error the load tools can
// detect and skip.
func TestMetricsUninstrumentedPeer(t *testing.T) {
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	dbSvc, err := ServeDatabase("127.0.0.1:0", srv, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer dbSvc.Close()
	c, err := DialDatabase(dbSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Metrics(); !errors.Is(err, ErrRemote) {
		t.Fatalf("uninstrumented peer: err = %v, want ErrRemote", err)
	}
}

// TestMetricsConcurrentFetch hammers a live service with parallel traffic
// and metric fetches; under -race this proves Export and the hot paths
// coexist.
func TestMetricsConcurrentFetch(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{World: world, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ServeDatabase("127.0.0.1:0", srv, quiet, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	done := make(chan error, 2)
	go func() {
		c, err := DialDatabase(svc.Addr())
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		for i := 0; i < 50; i++ {
			if err := c.UpdatePrivate(uint64(i+1), geo.R(0.1, 0.1, 0.2, 0.2)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		c, err := DialDatabase(svc.Addr())
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		for i := 0; i < 50; i++ {
			if _, err := c.Metrics(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s, ok := reg.Find("lbs_private_users"); !ok || s.Value != 50 {
		t.Fatalf("lbs_private_users = %+v (ok=%v), want 50", s, ok)
	}
}
