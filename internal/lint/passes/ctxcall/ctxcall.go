// Package ctxcall implements the lbsvet pass that keeps daemons and load
// tools deadline-clean: code in a main package must never issue a bare
// (*protocol.Client).Call — which blocks until the transport gives up —
// and every protocol.Dial / DialAnonymizer / DialDatabase must carry a
// WithCallTimeout option, either inline or through the options slice it
// spreads. Library packages are exempt: they receive deadlines from
// their callers via CallCtx.
package ctxcall

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the ctxcall pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcall",
	Doc: "require CallCtx and WithCallTimeout in main packages\n\n" +
		"Bare Client.Call has no deadline; a daemon or load tool wedged on a\n" +
		"dead peer is an outage, not a retry.",
	Run: run,
}

const protocolPath = "repro/internal/protocol"

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() != "main" {
		return nil, nil
	}
	// Option-slice variables defined from composite literals, for resolving
	// `opts...` spreads at Dial sites.
	sliceDefs := collectSliceDefs(pass)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != protocolPath {
				return true
			}
			switch callee.Name() {
			case "Call":
				if recvIsClient(callee) {
					pass.Reportf(call.Pos(),
						"bare Client.Call has no deadline; use CallCtx with a context deadline")
				}
			case "Dial", "DialAnonymizer", "DialDatabase":
				if callee.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if !hasCallTimeout(pass, call, sliceDefs) {
					pass.Reportf(call.Pos(),
						"%s without WithCallTimeout: calls on this client can block forever",
						callee.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// collectSliceDefs maps each variable assigned a composite literal to
// that literal, so spread arguments can be looked through.
func collectSliceDefs(pass *analysis.Pass) map[types.Object]*ast.CompositeLit {
	defs := make(map[types.Object]*ast.CompositeLit)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, l := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					id, ok := l.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit); ok && obj != nil {
						defs[obj] = lit
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if i >= len(n.Values) {
						break
					}
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.CompositeLit); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							defs[obj] = lit
						}
					}
				}
			}
			return true
		})
	}
	return defs
}

// hasCallTimeout reports whether a Dial call's arguments include a
// WithCallTimeout option, looking through one level of spread variable.
func hasCallTimeout(pass *analysis.Pass, call *ast.CallExpr, sliceDefs map[types.Object]*ast.CompositeLit) bool {
	exprs := call.Args
	if call.Ellipsis.IsValid() && len(call.Args) > 0 {
		last := ast.Unparen(call.Args[len(call.Args)-1])
		switch last := last.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[last]
			if lit, ok := sliceDefs[obj]; ok {
				exprs = append(exprs[:len(exprs)-1:len(exprs)-1], lit.Elts...)
			} else {
				// An options slice we cannot see into (built elsewhere,
				// passed in): give it the benefit of the doubt.
				return true
			}
		case *ast.CompositeLit:
			exprs = append(exprs[:len(exprs)-1:len(exprs)-1], last.Elts...)
		}
	}
	for _, a := range exprs {
		found := false
		ast.Inspect(a, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := calleeFunc(pass, inner); f != nil && f.Pkg() != nil &&
				f.Pkg().Path() == protocolPath && f.Name() == "WithCallTimeout" {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// recvIsClient reports whether fn is a method on protocol.Client,
// directly or promoted through embedding.
func recvIsClient(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Client" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == protocolPath
}
