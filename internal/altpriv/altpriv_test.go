package altpriv

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/rng"
)

var world = geo.R(0, 0, 1, 1)

func TestNewDummyGeneratorValidation(t *testing.T) {
	if _, err := NewDummyGenerator(world, 1, 0.01, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewDummyGenerator(geo.Rect{}, 5, 0.01, 1); err == nil {
		t.Error("empty world accepted")
	}
	if _, err := NewDummyGenerator(world, 5, 0, 1); err == nil {
		t.Error("zero step accepted")
	}
}

func TestDummyReportShape(t *testing.T) {
	g, err := NewDummyGenerator(world, 5, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	loc := geo.Pt(0.3, 0.7)
	rep, idx := g.Report(42, loc)
	if len(rep.Locations) != 5 {
		t.Fatalf("report has %d locations", len(rep.Locations))
	}
	if idx < 0 || idx >= 5 {
		t.Fatalf("true index %d out of range", idx)
	}
	if !rep.Locations[idx].Eq(loc) {
		t.Fatal("true slot does not hold the true location")
	}
	for _, p := range rep.Locations {
		if !world.Contains(p) {
			t.Fatalf("dummy %v outside world", p)
		}
	}
}

func TestDummyWalkContinuity(t *testing.T) {
	const step = 0.01
	g, err := NewDummyGenerator(world, 4, step, 2)
	if err != nil {
		t.Fatal(err)
	}
	loc := geo.Pt(0.5, 0.5)
	prev, prevIdx := g.Report(1, loc)
	for round := 0; round < 20; round++ {
		cur, idx := g.Report(1, loc)
		// Dummies (non-true slots) must each be within step of some dummy of
		// the previous report (walk continuity).
		var prevDummies []geo.Point
		for i, p := range prev.Locations {
			if i != prevIdx {
				prevDummies = append(prevDummies, p)
			}
		}
		for i, p := range cur.Locations {
			if i == idx {
				continue
			}
			ok := false
			for _, q := range prevDummies {
				// step bound per axis → Euclidean bound step*sqrt(2)
				if p.Dist(q) <= step*math.Sqrt2+1e-12 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("round %d: dummy %v teleported", round, p)
			}
		}
		prev, prevIdx = cur, idx
	}
}

func TestDummyForget(t *testing.T) {
	g, _ := NewDummyGenerator(world, 3, 0.01, 3)
	g.Report(1, geo.Pt(0.5, 0.5))
	g.Forget(1)
	if len(g.state) != 0 {
		t.Error("Forget did not clear state")
	}
}

func TestEvaluateDummiesIdeal(t *testing.T) {
	g, _ := NewDummyGenerator(world, 10, 0.01, 4)
	var samples []DummySample
	src := rng.New(5)
	for i := 0; i < 2000; i++ {
		loc := geo.Pt(src.Float64(), src.Float64())
		rep, _ := g.Report(uint64(i+1), loc)
		samples = append(samples, DummySample{Report: rep, TrueLoc: loc})
	}
	eval := EvaluateDummies(samples, 7)
	// Uniform pick among 10: hit rate ≈ 1/10.
	if math.Abs(eval.PickRate-0.1) > 0.03 {
		t.Errorf("PickRate = %v, want ≈0.1", eval.PickRate)
	}
	// Leakage is bounded well below the cloaking strawmen (naive ≈ 0.98):
	// the adversary wins fully only on the 1/n lucky pick, plus partial
	// credit when the picked dummy happens to be nearer than average.
	if eval.Leakage > 0.35 {
		t.Errorf("Leakage = %v, want small", eval.Leakage)
	}
	if eval.MeanError <= 0 {
		t.Error("MeanError should be positive")
	}
}

func TestEvaluateDummiesEmpty(t *testing.T) {
	eval := EvaluateDummies(nil, 1)
	if eval.N != 0 || eval.PickRate != 0 {
		t.Errorf("empty eval = %+v", eval)
	}
}

// The motion-filter adversary: a fast-moving user with slow dummies is
// progressively de-anonymized — the weakness that motivated cloaking.
func TestMotionFilterPrunesTeleportingDummies(t *testing.T) {
	// Construct reports where dummies jump around (step bound huge) while
	// the user walks smoothly: use independent fresh generators per tick to
	// simulate naive (non-walking) dummies.
	world := geo.R(0, 0, 1, 1)
	var series []DummyReport
	var trueIdxs []int
	loc := geo.Pt(0.2, 0.2)
	for tick := 0; tick < 10; tick++ {
		loc = world.ClampPoint(geo.Pt(loc.X+0.005, loc.Y+0.003))
		// Fresh generator each tick → dummies uncorrelated across ticks.
		g, _ := NewDummyGenerator(world, 8, 0.01, uint64(tick+1)*97)
		rep, idx := g.Report(1, loc)
		series = append(series, rep)
		trueIdxs = append(trueIdxs, idx)
	}
	survivors, trueAlive := MotionFilterDummies(series, trueIdxs, 0.02)
	if !trueAlive {
		t.Fatal("the true chain must always survive a correct motion filter")
	}
	if survivors > 3 {
		t.Errorf("naive dummies should be mostly filtered, %v survive", survivors)
	}

	// Walking dummies from one generator survive the same filter.
	g, _ := NewDummyGenerator(world, 8, 0.005, 11)
	series = series[:0]
	trueIdxs = trueIdxs[:0]
	loc = geo.Pt(0.2, 0.2)
	for tick := 0; tick < 10; tick++ {
		loc = world.ClampPoint(geo.Pt(loc.X+0.005, loc.Y+0.003))
		rep, idx := g.Report(1, loc)
		series = append(series, rep)
		trueIdxs = append(trueIdxs, idx)
	}
	survivors, trueAlive = MotionFilterDummies(series, trueIdxs, 0.02)
	if !trueAlive {
		t.Fatal("true chain must survive")
	}
	if survivors < 6 {
		t.Errorf("walking dummies should survive the filter, only %v do", survivors)
	}
}

func TestMotionFilterShortSeries(t *testing.T) {
	g, _ := NewDummyGenerator(world, 4, 0.01, 1)
	rep, idx := g.Report(1, geo.Pt(0.5, 0.5))
	survivors, alive := MotionFilterDummies([]DummyReport{rep}, []int{idx}, 0.01)
	if survivors != 4 || !alive {
		t.Errorf("single report filter = %v, %v", survivors, alive)
	}
}

func TestNewLandmarksValidation(t *testing.T) {
	if _, err := NewLandmarks(nil); err == nil {
		t.Error("empty landmark set accepted")
	}
}

func TestLandmarkSnap(t *testing.T) {
	lms := []geo.Point{{X: 0.25, Y: 0.25}, {X: 0.75, Y: 0.75}}
	l, err := NewLandmarks(lms)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Error("Len")
	}
	if got := l.Snap(geo.Pt(0.1, 0.1)); !got.Eq(lms[0]) {
		t.Errorf("Snap = %v", got)
	}
	if got := l.Snap(geo.Pt(0.9, 0.9)); !got.Eq(lms[1]) {
		t.Errorf("Snap = %v", got)
	}
	if l.CellOf(geo.Pt(0.1, 0.1)) != 0 || l.CellOf(geo.Pt(0.9, 0.9)) != 1 {
		t.Error("CellOf")
	}
}

func TestEvaluateLandmarks(t *testing.T) {
	lms, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 50, World: world, Dist: mobility.Uniform, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLandmarks(lms)
	if err != nil {
		t.Fatal(err)
	}
	users, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 2000, World: world, Dist: mobility.Uniform, Seed: 2,
	})
	eval := EvaluateLandmarks(l, users)
	if eval.N != 2000 {
		t.Error("N")
	}
	if eval.MeanError <= 0 {
		t.Error("MeanError should be positive (users rarely sit on landmarks)")
	}
	// 2000 users over 50 cells: mean population well above 1, low alone rate.
	if eval.MeanCellPopulation < 10 {
		t.Errorf("MeanCellPopulation = %v", eval.MeanCellPopulation)
	}
	if eval.AloneRate > 0.05 {
		t.Errorf("AloneRate = %v, want near 0 for dense users", eval.AloneRate)
	}

	// Sparse users: many are alone at their landmark — the failure mode.
	few, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 20, World: world, Dist: mobility.Uniform, Seed: 3,
	})
	sparse := EvaluateLandmarks(l, few)
	if sparse.AloneRate < 0.3 {
		t.Errorf("sparse AloneRate = %v, expected substantial", sparse.AloneRate)
	}
}

func TestEvaluateLandmarksEmpty(t *testing.T) {
	l, _ := NewLandmarks([]geo.Point{{X: 0.5, Y: 0.5}})
	eval := EvaluateLandmarks(l, nil)
	if eval.N != 0 {
		t.Error("empty users eval")
	}
}
