// Package svg is a minimal SVG canvas over world coordinates, used by
// cmd/lbsfig to regenerate the paper's illustrative figures (cloaking
// regions, candidate sets, query geometry) from live runs of the actual
// algorithms. It maps a geo.Rect world onto pixel space with the y axis
// flipped (SVG grows downward, the world grows upward).
package svg

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/geo"
)

// Canvas accumulates SVG elements. Construct with New.
type Canvas struct {
	width, height int
	world         geo.Rect
	buf           bytes.Buffer
}

// New creates a canvas of the given pixel size mapping the world rect.
func New(width, height int, world geo.Rect) (*Canvas, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("svg: non-positive canvas %dx%d", width, height)
	}
	if !world.Valid() || world.Area() <= 0 {
		return nil, fmt.Errorf("svg: invalid world %v", world)
	}
	c := &Canvas{width: width, height: height, world: world}
	fmt.Fprintf(&c.buf,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&c.buf, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	return c, nil
}

// xy maps a world point to pixel coordinates.
func (c *Canvas) xy(p geo.Point) (float64, float64) {
	x := (p.X - c.world.Min.X) / c.world.Width() * float64(c.width)
	y := (1 - (p.Y-c.world.Min.Y)/c.world.Height()) * float64(c.height)
	return x, y
}

// Rect draws a world rectangle. Pass fill "none" for outline only;
// opacity applies to the fill.
func (c *Canvas) Rect(r geo.Rect, stroke, fill string, opacity float64) {
	x0, y1 := c.xy(r.Min) // world min maps to bottom-left
	x1, y0 := c.xy(r.Max)
	fmt.Fprintf(&c.buf,
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" stroke="%s" stroke-width="1.5" fill="%s" fill-opacity="%.2f"/>`+"\n",
		x0, y0, x1-x0, y1-y0, stroke, fill, opacity)
}

// Dot draws a filled circle of pixel radius rad at a world point.
func (c *Canvas) Dot(p geo.Point, rad float64, fill string) {
	x, y := c.xy(p)
	fmt.Fprintf(&c.buf, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n", x, y, rad, fill)
}

// Ring draws an unfilled circle (pixel radius) at a world point.
func (c *Canvas) Ring(p geo.Point, rad float64, stroke string) {
	x, y := c.xy(p)
	fmt.Fprintf(&c.buf,
		`<circle cx="%.2f" cy="%.2f" r="%.2f" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
		x, y, rad, stroke)
}

// Line draws a segment between world points.
func (c *Canvas) Line(a, b geo.Point, stroke string) {
	x0, y0 := c.xy(a)
	x1, y1 := c.xy(b)
	fmt.Fprintf(&c.buf,
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="1"/>`+"\n",
		x0, y0, x1, y1, stroke)
}

// Text places a label at a world point (pixel font size).
func (c *Canvas) Text(p geo.Point, size int, fill, s string) {
	x, y := c.xy(p)
	fmt.Fprintf(&c.buf,
		`<text x="%.2f" y="%.2f" font-size="%d" font-family="sans-serif" fill="%s">%s</text>`+"\n",
		x, y, size, fill, escape(s))
}

// TitleBar writes a caption across the top of the canvas.
func (c *Canvas) TitleBar(s string) {
	fmt.Fprintf(&c.buf,
		`<text x="8" y="18" font-size="14" font-family="sans-serif" font-weight="bold" fill="black">%s</text>`+"\n",
		escape(s))
}

func escape(s string) string {
	var b bytes.Buffer
	for _, r := range s {
		switch r {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WriteTo finalizes the document and writes it out. The canvas can be
// written once; further element calls after WriteTo are lost.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	n1, err := w.Write(c.buf.Bytes())
	if err != nil {
		return int64(n1), err
	}
	n2, err := io.WriteString(w, "</svg>\n")
	return int64(n1 + n2), err
}
