package server

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/prob"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// This file implements the shared-execution batch query engine (the
// database-server counterpart of the anonymizer's BatchUpdate pipeline).
// A batch admits a mix of private-range, private-NN and public-count
// queries; range-shaped entries whose query rectangles overlap are merged
// into one *shared descent* — a single index traversal over the union
// rectangle that answers the whole group — in the spirit of SINA's shared
// execution of overlapping spatial queries (Mokbel et al., SIGMOD 2004).
// Independent work units then fan out to a worker pool reading one frozen
// snapshot of the indices.
//
// The engine is deterministic by construction: results are bit-identical
// to the sequential per-query path for every worker count (the
// differential suite pins this down). The argument, per query class:
//
//   - Private range: the R-tree and grid traversals emit items in a fixed
//     structural order that does not depend on the probe rectangle — a
//     larger probe only widens which nodes/cells are visited, never
//     reorders them. Filtering the union descent's output down to a
//     member's expanded MBR therefore yields exactly the item sequence the
//     member's own search would have produced.
//   - Public count: per-user probabilities are sorted before accumulation
//     (the determinism rule PublicRangeCount documents), so any candidate
//     superset that contains the member's own candidate set produces a
//     bit-identical PDF.
//   - Private NN: evaluated per entry on the worker pool through the same
//     privateNNLocked core the sequential path uses.
//
// Lock order: BatchQuery takes s.mu (read) once in the coordinating
// goroutine and holds it across the fan-out, so workers read a frozen
// snapshot without touching the mutex; no worker acquires any other lock.

// BatchKind tags one entry of a batch query.
type BatchKind uint8

const (
	// BatchPrivateRange is a PrivateRangeQuery entry.
	BatchPrivateRange BatchKind = iota + 1
	// BatchPrivateNN is a PrivateNNQuery entry.
	BatchPrivateNN
	// BatchPublicCount is a PublicRangeCountQuery entry.
	BatchPublicCount
)

// String implements fmt.Stringer.
func (k BatchKind) String() string {
	switch k {
	case BatchPrivateRange:
		return "private_range"
	case BatchPrivateNN:
		return "private_nn"
	case BatchPublicCount:
		return "public_count"
	default:
		return fmt.Sprintf("batchkind(%d)", uint8(k))
	}
}

// BatchEntry is one query inside a batch; only the field selected by Kind
// is read.
type BatchEntry struct {
	Kind  BatchKind
	Range PrivateRangeQuery
	NN    PrivateNNQuery
	Count PublicRangeCountQuery
}

// BatchEntryError is the typed per-entry failure: an invalid query inside
// a batch fails alone, carrying its position and kind, and never poisons
// the shared descent of the group it would have joined.
type BatchEntryError struct {
	Index int
	Kind  BatchKind
	Err   error
}

// Error implements error.
func (e *BatchEntryError) Error() string {
	return fmt.Sprintf("batch entry %d (%s): %v", e.Index, e.Kind, e.Err)
}

// Unwrap exposes the underlying validation error.
func (e *BatchEntryError) Unwrap() error { return e.Err }

// BatchItemResult is the outcome of one entry: either Err is set (always a
// *BatchEntryError) or the field selected by the entry's Kind is.
type BatchItemResult struct {
	Err   error
	Range []PublicObject
	NN    PrivateNNResult
	Count PublicRangeCountResult
}

// BatchResult is the outcome of one BatchQuery call.
type BatchResult struct {
	// Items holds one result per input entry, in input order.
	Items []BatchItemResult
	// Groups is the number of independent work units the batch was split
	// into (shared descents plus per-entry NN evaluations).
	Groups int
	// SharedHits counts the entries that were answered by a descent
	// another entry initiated: sum over groups of (size − 1).
	SharedHits int
}

// batchUnit is one independent work unit: a shared descent over the union
// rectangle of overlapping range-shaped entries, or a single NN entry.
type batchUnit struct {
	kind    BatchKind
	members []int    // entry indices, ascending (= input order)
	union   geo.Rect // union rectangle of the members' probe rects
}

// batchScratch is one worker's reusable buffer set. Each worker of the
// fan-out owns exactly one (indexed by worker id), so units processed by
// the same worker reuse the same backing arrays instead of reallocating
// per unit. Nothing here escapes into results: result slices are always
// freshly built, scratch only carries the intermediate streams.
type batchScratch struct {
	items      []rtree.Item   // union-descent / NN-candidate item stream
	subItems   []rtree.Item   // per-member descent output over a group subtree
	resolved   []PublicObject // resolve-once cache for the union stream
	order      []int          // X-order permutation over resolved
	idxs       []int          // per-member match positions awaiting index sort
	movingObjs []PublicObject // per-member moving matches awaiting merge
	keptObjs   []PublicObject // per-member NN candidates handed to the prune
	ids        []uint64       // region-index probe output
	regions    []geo.Rect     // resolve-once cloaked regions, Min.X-sorted
	probs      []float64      // per-member overlap probabilities
	clamped    []float64      // RangeCountScratch clamp buffer
	comb       combineScratch // dominance-prune working set
}

// batchCoord is the per-call coordination scratch of one BatchQuery:
// the admission index lists, the grouping arena, the unit list and the
// per-worker buffer sets. Calls borrow one from the server's pool, so a
// steady stream of batches reuses the same backing arrays instead of
// rebuilding them per frame — nothing in here escapes into results.
type batchCoord struct {
	rangeIdx, nnIdx, countIdx []int
	filters                   []geo.Rect
	units                     []batchUnit
	gs                        groupScratch
	scratches                 []batchScratch
}

// BatchQuery evaluates a mixed batch of queries in one shared pass and
// returns per-entry results in input order. Invalid entries fail alone
// with a *BatchEntryError; valid entries are grouped, fanned out to the
// configured worker pool (Config.QueryWorkers), and answered from one
// frozen snapshot of the indices, bit-identically to the sequential path.
func (s *Server) BatchQuery(entries []BatchEntry) BatchResult {
	return s.BatchQueryCtx(context.Background(), entries)
}

// BatchQueryCtx is BatchQuery under a context: for traced requests every
// engine phase (validate → merge → shared descent with per-unit worker
// spans → gather) is recorded under the caller's trace, with group sizes
// and index node-visit counts as span attributes.
//
//lint:hotpath allocs=8
func (s *Server) BatchQueryCtx(ctx context.Context, entries []BatchEntry) BatchResult {
	res := BatchResult{Items: make([]BatchItemResult, len(entries))}
	if len(entries) == 0 {
		return res
	}
	t0 := time.Now()
	bsp, ctx := trace.Start(ctx, s.tracer, "lbs_batch")

	c, _ := s.batchPool.Get().(*batchCoord)
	if c == nil {
		c = &batchCoord{}
	}
	defer s.batchPool.Put(c)

	// Phase 1 — admission: validate every entry with exactly the checks
	// the sequential methods apply. Failures are recorded per entry and
	// excluded from grouping, so a bad entry cannot poison a descent.
	vsp, _ := trace.Start(ctx, s.tracer, "lbs_batch_validate")
	rangeIdx, nnIdx, countIdx := c.rangeIdx[:0], c.nnIdx[:0], c.countIdx[:0]
	// Expanded MBR per range entry. Stale values from the previous borrow
	// are harmless: filters[i] is only read after being set for entry i.
	if cap(c.filters) < len(entries) {
		c.filters = make([]geo.Rect, len(entries))
	}
	filters := c.filters[:len(entries)]
	for i, e := range entries {
		var err error
		switch e.Kind {
		case BatchPrivateRange:
			if err = e.Range.validate(); err == nil {
				filters[i] = e.Range.Region.Expand(e.Range.Radius)
				rangeIdx = append(rangeIdx, i)
			}
		case BatchPrivateNN:
			if err = e.NN.validate(); err == nil {
				nnIdx = append(nnIdx, i)
			}
		case BatchPublicCount:
			if err = e.Count.validate(); err == nil {
				countIdx = append(countIdx, i)
			}
		default:
			err = fmt.Errorf("server: unknown batch query kind %d", uint8(e.Kind))
		}
		if err != nil {
			res.Items[i].Err = &BatchEntryError{Index: i, Kind: e.Kind, Err: err}
		}
	}
	c.rangeIdx, c.nnIdx, c.countIdx, c.filters = rangeIdx, nnIdx, countIdx, filters
	if vsp.Recording() {
		vsp.SetAttrs(trace.Int("entries", int64(len(entries))),
			trace.Int("admitted", int64(len(rangeIdx)+len(nnIdx)+len(countIdx))))
		vsp.End()
	}

	// Phase 2 — grouping: growth-capped greedy packing of the
	// rectangle-overlap graph, per query class (range entries probe the
	// public indices, count entries the region index — they cannot share
	// a descent).
	msp, _ := trace.Start(ctx, s.tracer, "lbs_batch_merge")
	c.gs.reset()
	units := c.units[:0]
	for _, g := range c.gs.groupShared(rangeIdx, func(i int) geo.Rect { return filters[i] }) {
		units = append(units, batchUnit{kind: BatchPrivateRange, members: g.members, union: g.union})
	}
	for _, g := range c.gs.groupShared(countIdx, func(i int) geo.Rect { return entries[i].Count.Query }) {
		units = append(units, batchUnit{kind: BatchPublicCount, members: g.members, union: g.union})
	}
	// NN entries share a descent only within one class: the class filter is
	// part of the min–max descent, so members of a group must agree on it.
	// Classes are visited in first-appearance order to keep grouping
	// deterministic. One class per batch is the overwhelmingly common
	// shape, and then nnIdx already IS the class list — the map partition
	// only runs on genuinely mixed batches.
	sameClass := true
	for _, i := range nnIdx {
		if entries[i].NN.Class != entries[nnIdx[0]].NN.Class {
			sameClass = false
			break
		}
	}
	if sameClass {
		for _, g := range c.gs.groupShared(nnIdx, func(i int) geo.Rect { return entries[i].NN.Region }) {
			units = append(units, batchUnit{kind: BatchPrivateNN, members: g.members, union: g.union})
		}
	} else {
		var nnClasses []string
		nnByClass := make(map[string][]int)
		for _, i := range nnIdx {
			cl := entries[i].NN.Class
			if _, ok := nnByClass[cl]; !ok {
				nnClasses = append(nnClasses, cl)
			}
			nnByClass[cl] = append(nnByClass[cl], i)
		}
		for _, cl := range nnClasses {
			for _, g := range c.gs.groupShared(nnByClass[cl], func(i int) geo.Rect { return entries[i].NN.Region }) {
				units = append(units, batchUnit{kind: BatchPrivateNN, members: g.members, union: g.union})
			}
		}
	}
	c.units = units
	res.Groups = len(units)
	for _, u := range units {
		res.SharedHits += len(u.members) - 1
	}
	if msp.Recording() {
		msp.SetAttrs(trace.Int("groups", int64(res.Groups)),
			trace.Int("shared_hits", int64(res.SharedHits)))
		msp.End()
	}

	// Phase 3 — execution: freeze the indices once and fan the units out.
	// The read lock is held by this goroutine for the whole fan-out;
	// workers only read (writers stay excluded), and the wg join gives the
	// usual happens-before edges. Units write disjoint result slots.
	// Worker spans record into the lock-free ring, so tracing adds no
	// synchronization to the fan-out.
	dsp, dctx := trace.Start(ctx, s.tracer, "lbs_batch_descent")
	workers := s.queryWorkers
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	if cap(c.scratches) < workers {
		c.scratches = make([]batchScratch, workers)
	}
	scratches := c.scratches[:workers]
	s.mu.RLock()
	parallelForWorkers(len(units), workers, func(w, ui int) {
		u := units[ui]
		sc := &scratches[w]
		usp, _ := trace.Start(dctx, s.tracer, "lbs_batch_unit")
		var visits int
		switch u.kind {
		case BatchPrivateRange:
			visits = s.runRangeGroupLocked(entries, filters, u, res.Items, sc)
		case BatchPublicCount:
			visits = s.runCountGroupLocked(entries, u, res.Items, sc)
		case BatchPrivateNN:
			visits = s.runNNGroupLocked(entries, u, res.Items, sc)
		}
		if usp.Recording() {
			usp.SetAttrs(trace.Str("kind", u.kind.String()),
				trace.Int("members", int64(len(u.members))),
				trace.Int("node_visits", int64(visits)))
			usp.End()
		}
	})
	s.mu.RUnlock()
	dsp.End()

	// Phase 4 — gather: fold the batch into the shared-execution series.
	gsp, _ := trace.Start(ctx, s.tracer, "lbs_batch_gather")
	s.met.batches.Inc()
	s.met.batchEntries.Add(uint64(len(entries)))
	s.met.batchSharedHits.Add(uint64(res.SharedHits))
	s.met.batchSize.Observe(float64(len(entries)))
	s.met.batchGroups.Observe(float64(res.Groups))
	gsp.End()
	s.met.latBatch.ObserveExemplar(time.Since(t0).Seconds(), ctxTraceID(ctx))
	bsp.End()
	return res
}

// runRangeGroupLocked answers every private-range member of one group from
// a single descent of the stationary R-tree (and, if any member admits
// moving objects, a single scan of the moving grid) over the group's union
// rectangle. Per member, the union's item stream is filtered down to the
// member's own expanded MBR; the stream is canonically sorted once, so
// gathering ascending stream positions reproduces the sequential answer
// order without a per-member object sort. It returns the R-tree node
// visits the shared descent cost.
//
//lint:hotpath allocs=1
func (s *Server) runRangeGroupLocked(entries []BatchEntry, filters []geo.Rect, u batchUnit, out []BatchItemResult, sc *batchScratch) int {
	items, visits := s.stationary.SearchVisits(u.union, sc.items[:0])
	sc.items = items
	s.met.nodeVisits.Observe(float64(visits))
	// Canonical-sort the union stream once — on the raw item stream, by ID.
	// Stationary IDs are unique, so ascending ID IS SortObjects order, and
	// sorting 16-byte pointer-free items costs a fraction of shuffling
	// resolved PublicObjects (whose string field drags write barriers into
	// every swap). Resolving in that order makes `resolved` canonically
	// sorted by construction; each member then gathers matches as ascending
	// positions and the per-member object sort collapses to an int sort.
	slices.SortFunc(items, func(a, b rtree.Item) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	resolved := sc.resolved[:0]
	for _, it := range items {
		resolved = append(resolved, s.resolveObjectLocked(it.ID, it.Loc, false))
	}
	sc.resolved = resolved
	// A second, X-ordered permutation narrows each member's scan to the
	// stream positions inside its own X-extent (binary-searched ends)
	// instead of the whole union stream.
	xorder := sc.order[:0]
	for k := range items {
		xorder = append(xorder, k)
	}
	sc.order = xorder
	slices.SortFunc(xorder, func(a, b int) int {
		switch {
		case items[a].Loc.X < items[b].Loc.X:
			return -1
		case items[a].Loc.X > items[b].Loc.X:
			return 1
		}
		return 0
	})
	var movingItems []grid.Object
	for _, i := range u.members {
		if entries[i].Range.Class == "" {
			movingItems = s.moving.Search(u.union, nil)
			break
		}
	}
	for _, i := range u.members {
		q := entries[i].Range
		f := filters[i]
		// Contains is inclusive on both ends, so the window is
		// [first X ≥ f.Min.X, first X > f.Max.X). Geometric checks read
		// the tree item's location — exactly what the member's own index
		// search would have tested — while class comes off the resolved
		// record, mirroring the sequential keep() closure.
		lo := sort.Search(len(xorder), func(k int) bool { return items[xorder[k]].Loc.X >= f.Min.X })
		hi := sort.Search(len(xorder), func(k int) bool { return items[xorder[k]].Loc.X > f.Max.X })
		idxs := sc.idxs[:0]
		for _, k := range xorder[lo:hi] {
			it := items[k]
			if it.Loc.Y < f.Min.Y || it.Loc.Y > f.Max.Y {
				continue
			}
			if q.Mode == RangeRounded && geo.MinDist(it.Loc, q.Region) > q.Radius {
				continue
			}
			if q.Class != "" && resolved[k].Class != q.Class {
				continue
			}
			idxs = append(idxs, k)
		}
		sc.idxs = idxs
		sort.Ints(idxs)
		// Exact-size the answer (it escapes into the result); an empty
		// answer stays nil, like the sequential path's.
		var objs []PublicObject
		if len(idxs) > 0 {
			objs = make([]PublicObject, 0, len(idxs))
		}
		for _, k := range idxs {
			objs = append(objs, resolved[k])
		}
		if q.Class == "" && len(movingItems) > 0 {
			// Moving matches are the member's own; sort just those and
			// merge the two canonically-ordered runs. The comparator key is
			// total over any one answer's objects (SortObjects's contract),
			// so the merged order is byte-identical to sorting the union.
			moving := sc.movingObjs[:0]
			for _, m := range movingItems {
				if !f.Contains(m.Loc) {
					continue
				}
				if q.Mode == RangeRounded && geo.MinDist(m.Loc, q.Region) > q.Radius {
					continue
				}
				moving = append(moving, s.resolveObjectLocked(m.ID, m.Loc, true))
			}
			sc.movingObjs = moving
			if len(moving) > 0 {
				SortObjects(moving)
				objs = mergeSorted(objs, moving)
			}
		}
		// Same canonical order as PrivateRange, produced by construction
		// rather than a per-member sort.
		out[i].Range = objs
		s.met.privateRangeQs.Inc()
	}
	return visits
}

// mergeSorted merges two canonically-ordered runs into a fresh slice in
// lessObjects order.
func mergeSorted(a, b []PublicObject) []PublicObject {
	out := make([]PublicObject, 0, len(a)+len(b))
	ai, bi := 0, 0
	for ai < len(a) && bi < len(b) {
		if lessObjects(b[bi], a[ai]) {
			out = append(out, b[bi])
			bi++
		} else {
			out = append(out, a[ai])
			ai++
		}
	}
	out = append(out, a[ai:]...)
	return append(out, b[bi:]...)
}

// runNNGroupLocked answers every private-NN member of one group (same
// class, overlapping regions) from a single min–max descent over the
// group's union region. The union's min–max superset S contains every
// member's candidate set and bound minimizer: for a member region r ⊆ U,
// B(r) = min MaxDist²(o, r) ≤ MaxDist²(o*ᵤ, r) ≤ MaxDist²(o*ᵤ, U) = B(U),
// and any object with MinDist²(o, r) ≤ B(r) has
// MinDist²(o, U) ≤ MinDist²(o, r) ≤ B(U), so it sits in S. In particular
// r's own bound minimizer sits in S, so min MaxDist² over S equals the
// exact B(r), and the min–max filter of S under it is the exact candidate
// set. The runner therefore resolves and canonically sorts S once, bulk-
// loads a position-keyed subtree over it, and answers each member with a
// bounded min–max descent of that subtree — class filtering and metadata
// resolution are already paid, and ascending positions are canonical
// order. A singleton group degenerates to the sequential evaluation.
//
//lint:hotpath allocs=4
func (s *Server) runNNGroupLocked(entries []BatchEntry, u batchUnit, out []BatchItemResult, sc *batchScratch) int {
	if len(u.members) == 1 {
		i := u.members[0]
		s.met.privateNNQs.Inc()
		var visits int
		out[i].NN, visits = s.privateNNScratchLocked(entries[i].NN, sc)
		return visits
	}
	class := entries[u.members[0]].NN.Class
	var match func(rtree.Item) bool
	if class != "" {
		match = func(it rtree.Item) bool {
			o, ok := s.stationaryMeta[it.ID]
			return ok && o.Class == class
		}
	}
	items, _, visits := s.stationary.MinMaxCandidates(u.union, match, sc.items[:0])
	sc.items = items
	s.met.nodeVisits.Observe(float64(visits))
	// Unique stationary IDs make ascending ID the canonical SortObjects
	// order, so sorting the raw item stream and resolving in that order
	// yields a canonically-sorted resolve-once cache.
	slices.SortFunc(items, func(a, b rtree.Item) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	resolved := sc.resolved[:0]
	for _, it := range items {
		resolved = append(resolved, s.resolveObjectLocked(it.ID, it.Loc, false))
	}
	sc.resolved = resolved
	// Rekey the item stream by position in the canonically-sorted stream
	// and bulk-load a group-local subtree over it. Member descents against
	// the subtree then cost a bounded DFS over |S| pre-filtered candidates
	// instead of an O(|S|) linear scan — and because the returned IDs are
	// positions, sorting them ascending yields the member's candidate set
	// already in canonical order, with no metadata lookups at all. The
	// subtree keeps the tree-side locations, so per-member bounds are
	// computed from exactly the points the sequential descent measures.
	for k := range items {
		items[k] = rtree.Item{ID: uint64(k), Loc: items[k].Loc}
	}
	sub := rtree.BulkLoad(items)
	for _, i := range u.members {
		q := entries[i].NN
		s.met.privateNNQs.Inc()
		cand, bound, _ := sub.MinMaxCandidates(q.Region, nil, sc.subItems[:0])
		sc.subItems = cand
		idxs := sc.idxs[:0]
		for _, it := range cand {
			idxs = append(idxs, int(it.ID))
		}
		sc.idxs = idxs
		sort.Ints(idxs)
		// The candidate list is scratch: the prune copies what it keeps,
		// so nothing from here escapes into the result.
		kept := sc.keptObjs[:0]
		for _, k := range idxs {
			kept = append(kept, resolved[k])
		}
		sc.keptObjs = kept
		res := combineNNPartsScratch(q.Region, &sc.comb, NNParts{Bound: bound, Candidates: kept})
		s.met.observeNNAnswer(len(res.Candidates))
		out[i].NN = res
	}
	return visits
}

// runCountGroupLocked answers every public-count member of one group from
// a single probe of the region index over the union rectangle. The union's
// candidate set is a superset of each member's own; per-member overlap
// probabilities filter it back down, and the sort-before-accumulate rule
// makes the resulting PDF bit-identical to the sequential answer. It
// returns the candidate-set size as the unit's "node visits" — the probe
// cost the region index charges.
//
//lint:hotpath allocs=0
func (s *Server) runCountGroupLocked(entries []BatchEntry, u batchUnit, out []BatchItemResult, sc *batchScratch) int {
	ids := s.privIdx.Query(u.union, sc.ids[:0])
	sc.ids = ids
	// Resolve every candidate's cloaked region once; a group of k members
	// then costs len(ids) map lookups instead of k×len(ids). The regions
	// are sorted by their left edge so each member scans only the X-window
	// that can overlap its query: a positive overlap needs
	// r.Min.X < q.Max.X and r.Max.X > q.Min.X, and with maxW the widest
	// cloak in the group the latter implies r.Min.X > q.Min.X − maxW.
	// The probability list is sorted before accumulation, so candidate
	// order is free to change.
	regions := sc.regions[:0]
	maxW := 0.0
	for _, id := range ids {
		r := s.private[id]
		regions = append(regions, r)
		if w := r.Max.X - r.Min.X; w > maxW {
			maxW = w
		}
	}
	sc.regions = regions
	slices.SortFunc(regions, func(a, b geo.Rect) int {
		switch {
		case a.Min.X < b.Min.X:
			return -1
		case a.Min.X > b.Min.X:
			return 1
		}
		return 0
	})
	for _, i := range u.members {
		q := entries[i].Count.Query
		lo := sort.Search(len(regions), func(k int) bool { return regions[k].Min.X >= q.Min.X-maxW })
		hi := sort.Search(len(regions), func(k int) bool { return regions[k].Min.X > q.Max.X })
		probs := sc.probs[:0]
		naive := 0
		for _, r := range regions[lo:hi] {
			if p := prob.Overlap(r, q); p > 0 {
				probs = append(probs, p)
				naive++
			}
		}
		sort.Float64s(probs)
		var ans prob.CountAnswer
		ans, sc.clamped = prob.RangeCountScratch(probs, sc.clamped)
		out[i].Count = PublicRangeCountResult{Answer: ans, NaiveCount: naive}
		s.met.publicCountQs.Inc()
		sc.probs = probs
	}
	return len(ids)
}

// groupOverlapping partitions the entries (by index) into the connected
// components of their rectangle-intersection graph, via union–find over
// the pairwise tests. Components are emitted ordered by their smallest
// member, members ascending, so grouping is deterministic and independent
// of the worker count.
func groupOverlapping(idx []int, rect func(i int) geo.Rect) [][]int {
	if len(idx) == 0 {
		return nil
	}
	parent := make([]int, len(idx))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb { // root at the smallest position
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			if rect(idx[a]).Intersects(rect(idx[b])) {
				union(a, b)
			}
		}
	}
	byRoot := make(map[int][]int)
	var roots []int
	for i, e := range idx {
		r := find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], e)
	}
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		g := byRoot[r]
		sort.Ints(g)
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return groups
}

// sharedGroup is one shared-descent group: member entry indices plus the
// union rectangle their probes are answered from.
type sharedGroup struct {
	members []int
	union   geo.Rect
}

// groupGrowthCap bounds how fat a group's union rectangle may grow
// relative to its largest member. Pure connected-component grouping
// chains barely-overlapping probes into unions far wider than any single
// member, and then every per-group cost (descent, resolve, sort) scales
// with the bloated union stream instead of a member-sized one. Capping
// the union area at this multiple of the largest member keeps the shared
// stream within a constant factor of what each member would have scanned
// alone, which is the regime where amortizing it over k members wins.
const groupGrowthCap = 3.0

// groupScratch carries the grouping working set across calls. The
// members of every returned group are views into one arena slice, so a
// whole batch's grouping costs zero steady-state allocations; reset()
// runs once per batch, before the first grouping call, and the arena
// then only grows across that batch's calls (growth keeps old backing
// arrays alive, so earlier groups' views stay valid).
type groupScratch struct {
	groups   []sharedGroup
	maxAreas []float64
	gid      []int // per-entry group assignment (pass 1)
	offs     []int // per-group arena write cursor (pass 2)
	arena    []int // backing store for all member slices of one batch
}

func (gs *groupScratch) reset() { gs.arena = gs.arena[:0] }

// groupShared greedily packs the entries (by index, in input order) into
// shared-descent groups: an entry joins the first open group whose union
// it intersects and whose union-after-join stays within groupGrowthCap ×
// the largest member's area; otherwise it opens a new group. The packing
// is deterministic in input order and independent of the worker count
// (grouping runs before the fan-out). Any partition is correct — members
// only need to be contained in their group's union — so the cap trades
// shared hits for stream tightness without touching answer bytes.
//
// Pass 1 assigns each entry a group id (the membership test reads only
// the running union and max member area); pass 2 counts members per
// group and fills the arena by cursor, which reproduces exactly the
// member order the append-per-group formulation built — input order
// within each group. The returned slice is valid until the next call.
//
//lint:hotpath allocs=1
func (gs *groupScratch) groupShared(idx []int, rect func(i int) geo.Rect) []sharedGroup {
	groups := gs.groups[:0]
	maxAreas := gs.maxAreas[:0]
	gid := gs.gid[:0]
	for _, i := range idx {
		r := rect(i)
		ra := r.Width() * r.Height()
		placed := -1
		for gi := range groups {
			if !groups[gi].union.Intersects(r) {
				continue
			}
			merged := groups[gi].union.Union(r)
			ma := maxAreas[gi]
			if ra > ma {
				ma = ra
			}
			if merged.Width()*merged.Height() <= groupGrowthCap*ma {
				groups[gi].union = merged
				maxAreas[gi] = ma
				placed = gi
				break
			}
		}
		if placed < 0 {
			placed = len(groups)
			groups = append(groups, sharedGroup{union: r})
			maxAreas = append(maxAreas, ra)
		}
		gid = append(gid, placed)
	}
	// Pass 2: count members per group, lay the groups out contiguously in
	// the arena (in group order), and fill by per-group cursor.
	offs := gs.offs[:0]
	for range groups {
		offs = append(offs, 0)
	}
	for _, g := range gid {
		offs[g]++
	}
	base := len(gs.arena)
	// Manual growth: the single make is the budget's one static site, and
	// it goes quiet once the arena has warmed to the steady batch size.
	if need := base + len(idx); cap(gs.arena) < need {
		na := make([]int, need, 2*need)
		copy(na, gs.arena)
		gs.arena = na
	}
	gs.arena = gs.arena[:base+len(idx)]
	start := base
	for gi := range groups {
		n := offs[gi]
		offs[gi] = start
		start += n
	}
	for j, i := range idx {
		g := gid[j]
		gs.arena[offs[g]] = i
		offs[g]++
	}
	start = base
	for gi := range groups {
		end := offs[gi] // cursor stopped at the group's region end
		groups[gi].members = gs.arena[start:end]
		start = end
	}
	gs.groups, gs.maxAreas, gs.gid, gs.offs = groups, maxAreas, gid, offs
	return groups
}

// unionRect returns the union of the members' rectangles.
func unionRect(members []int, rect func(i int) geo.Rect) geo.Rect {
	u := rect(members[0])
	for _, i := range members[1:] {
		u = u.Union(rect(i))
	}
	return u
}

// parallelFor runs fn(0..n-1) on up to workers goroutines; iterations are
// handed out by an atomic cursor, so callers only need fn(i) and fn(j) to
// touch disjoint state. workers ≤ 1 degenerates to a plain loop — the
// sequential reference point of the differential suite.
func parallelFor(n, workers int, fn func(i int)) {
	parallelForWorkers(n, workers, func(_, i int) { fn(i) })
}

// parallelForWorkers is parallelFor with the worker id passed to fn, so a
// caller can hand each worker exclusive scratch state: fn(w, i) and
// fn(w, j) for the same w never run concurrently.
func parallelForWorkers(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
