package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// The anonymizer benchmark harness behind E16. With -bench-out the
// experiment writes a machine-readable BENCH_anonymizer.json; with
// -bench-compare it loads a committed baseline and flags any series whose
// updates/sec dropped more than -bench-tolerance below it (process exits 1
// — the CI regression gate). Absolute numbers are machine-specific, so the
// tolerance is deliberately wide; the within-run scaling ratios are the
// portable signal.
type benchReport struct {
	Schema    string       `json:"schema"`
	GoMaxProc int          `json:"gomaxprocs"`
	NumCPU    int          `json:"numcpu"`
	GoVersion string       `json:"go"`
	Users     int          `json:"users"`
	Entries   []benchEntry `json:"entries"`
}

type benchEntry struct {
	Mode          string  `json:"mode"` // "batch" or "single"
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	SharedHitPct  float64 `json:"shared_hit_pct,omitempty"`
}

// benchRegressions is set by expParallel when a baseline comparison fails;
// main exits non-zero after the run so CI turns red.
var benchRegressions []string

// expParallel measures the sharded batch pipeline: updates/sec for the
// batch and single-call paths at shard counts 1, 4 and 8 (workers =
// shards), over a gaussian-clustered waypoint population.
func expParallel(cfg benchConfig) {
	const rounds = 10
	n := cfg.n
	fmt.Printf("%d users (gaussian clusters), %d rounds per series, GOMAXPROCS=%d\n\n",
		n, rounds, runtime.GOMAXPROCS(0))

	report := benchReport{
		Schema:    "anonymizer-bench/v1",
		GoMaxProc: runtime.GOMAXPROCS(0),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Users:     n,
	}
	t := newTable("mode", "shards", "workers", "updates/sec", "shared hits %")
	var base float64 // batch shards=1 reference for the scaling line
	for _, mode := range []string{"batch", "single"} {
		for _, shards := range []int{1, 4, 8} {
			pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
				N: n, World: world, Dist: mobility.Gaussian, Seed: cfg.seed,
			})
			if err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
			anon, err := anonymizer.New(anonymizer.Config{
				World: world, Shards: shards, BatchWorkers: shards,
			})
			if err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
			prof := privacy.Constant(reqK(25))
			reqs := make([]cloak.Request, n)
			for i, p := range pts {
				anon.Register(uint64(i+1), prof)
				reqs[i] = cloak.Request{ID: uint64(i + 1), Loc: p}
			}
			anon.BatchUpdate(reqs) // warm the indices
			src := rng.New(cfg.seed + 99)
			drift := func() {
				for i := range reqs {
					reqs[i].Loc = world.ClampPoint(geo.Pt(
						reqs[i].Loc.X+src.Range(-0.002, 0.002),
						reqs[i].Loc.Y+src.Range(-0.002, 0.002)))
				}
			}
			t0 := time.Now()
			for r := 0; r < rounds; r++ {
				drift()
				if mode == "batch" {
					anon.BatchUpdate(reqs)
				} else {
					for _, rq := range reqs {
						if _, err := anon.Update(rq.ID, rq.Loc); err != nil {
							log.Fatalf("lbsbench: %v", err)
						}
					}
				}
			}
			elapsed := time.Since(t0)
			st := anon.Stats()
			ups := float64(n*rounds) / elapsed.Seconds()
			sharedPct := 0.0
			if mode == "batch" && st.Updates > 0 {
				sharedPct = 100 * float64(st.SharedHits) / float64(st.Updates)
			}
			if mode == "batch" && shards == 1 {
				base = ups
			}
			t.row(mode, shards, anon.BatchWorkers(), ups, sharedPct)
			report.Entries = append(report.Entries, benchEntry{
				Mode: mode, Shards: shards, Workers: anon.BatchWorkers(),
				UpdatesPerSec: ups, SharedHitPct: sharedPct,
			})
		}
	}
	t.flush()
	if base > 0 {
		for _, e := range report.Entries {
			if e.Mode == "batch" && e.Shards == 8 {
				fmt.Printf("\nbatch scaling 1→8 shards: %.2fx (meaningful only with GOMAXPROCS ≥ 8)\n",
					e.UpdatesPerSec/base)
			}
		}
	}
	fmt.Println("\nreading: the batch pipeline amortizes admission into one locked pass")
	fmt.Println("per shard and fans the cloaking descents out over the worker pool; on")
	fmt.Println("a multicore host throughput scales with the shard count until the")
	fmt.Println("index write lock saturates. Results are bit-identical at every point")
	fmt.Println("of the grid (differential suite).")

	if benchOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		if err := os.WriteFile(benchOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", benchOut)
	}
	if benchCompare != "" {
		compareBench(report)
	}
}

// checkBenchEnv guards a baseline comparison's validity. Throughput from a
// different GOMAXPROCS is not comparable at all — the parallel series
// measure scaling against exactly that bound — so a mismatch is a hard
// failure, not a silent apples-to-oranges pass. Physical core counts
// legitimately vary between runners and only shift absolute numbers, so a
// NumCPU difference is a warning.
func checkBenchEnv(baseProcs, curProcs, baseCPU, curCPU int) {
	if baseProcs != curProcs {
		benchRegressions = append(benchRegressions, fmt.Sprintf(
			"environment mismatch: GOMAXPROCS=%d vs baseline %d — rerun with GOMAXPROCS=%d or regenerate the baseline with -bench-out",
			curProcs, baseProcs, baseProcs))
	}
	if baseCPU != 0 && baseCPU != curCPU {
		fmt.Printf("warning: %d CPUs vs baseline's %d; absolute numbers may shift (tolerance should absorb this)\n",
			curCPU, baseCPU)
	}
}

// compareBench checks the current report against the committed baseline.
func compareBench(cur benchReport) {
	raw, err := os.ReadFile(benchCompare)
	if err != nil {
		log.Fatalf("lbsbench: baseline: %v", err)
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("lbsbench: baseline %s: %v", benchCompare, err)
	}
	checkBenchEnv(base.GoMaxProc, cur.GoMaxProc, base.NumCPU, cur.NumCPU)
	if base.Users != cur.Users {
		benchRegressions = append(benchRegressions, fmt.Sprintf(
			"workload mismatch: %d users vs baseline %d — rerun with -n %d or regenerate the baseline",
			cur.Users, base.Users, base.Users))
	}
	lookup := map[string]float64{}
	for _, e := range cur.Entries {
		lookup[fmt.Sprintf("%s/shards=%d", e.Mode, e.Shards)] = e.UpdatesPerSec
	}
	fmt.Printf("\nbaseline %s (GOMAXPROCS=%d, %s), tolerance %.0f%%:\n",
		benchCompare, base.GoMaxProc, base.GoVersion, 100*benchTolerance)
	for _, e := range base.Entries {
		key := fmt.Sprintf("%s/shards=%d", e.Mode, e.Shards)
		got, ok := lookup[key]
		if !ok {
			benchRegressions = append(benchRegressions, key+": missing from current run")
			continue
		}
		floor := e.UpdatesPerSec * (1 - benchTolerance)
		verdict := "ok"
		if got < floor {
			verdict = "REGRESSION"
			benchRegressions = append(benchRegressions,
				fmt.Sprintf("%s: %.0f updates/sec < %.0f (baseline %.0f − %.0f%%)",
					key, got, floor, e.UpdatesPerSec, 100*benchTolerance))
		}
		fmt.Printf("  %-16s baseline %10.0f  current %10.0f  %s\n",
			key, e.UpdatesPerSec, got, verdict)
	}
}
