package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/server"
)

// expRouterScale (E20) measures the spatially-partitioned routing tier
// against a single database over real loopback TCP: identical seeded
// data, identical mixed query workload, one lbsd dialed directly vs a
// router fanned out over 1, 2 and 4 shards. The 1-shard router isolates
// the tier's own overhead (one extra hop plus scatter/gather accounting);
// the multi-shard rows show how throughput scales as tiles spread across
// servers. Answers are bit-identical in every topology (the router
// differential suite), so this table is purely about cost.
func expRouterScale(cfg benchConfig) {
	const queries = 2000
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("%d private users, %d public objects, %d mixed queries, %d workers, GOMAXPROCS=%d\n\n",
		cfg.n, cfg.objs, queries, workers, runtime.GOMAXPROCS(0))

	type topo struct {
		name   string
		shards int // 0 = dial the database directly, no router
	}
	grid := []topo{
		{"direct", 0},
		{"router", 1},
		{"router", 2},
		{"router", 4},
	}

	t := newTable("topology", "shards", "queries/sec", "vs direct")
	var base float64
	for _, tp := range grid {
		addr, cleanup := bootRouterTier(tp.shards)
		seedRouterTier(addr, cfg)
		qps := driveRouterTier(addr, cfg.seed, queries, workers)
		cleanup()
		rel := "1.00x"
		if base == 0 {
			base = qps
		} else {
			rel = fmt.Sprintf("%.2fx", qps/base)
		}
		t.row(tp.name, tp.shards, qps, rel)
	}
	t.flush()
	fmt.Println("\nreading: the 1-shard router pays the extra hop and the gather")
	fmt.Println("bookkeeping; with more shards each query touches only the servers")
	fmt.Println("whose tiles it intersects, so small-region traffic spreads and")
	fmt.Println("aggregate throughput recovers and then passes the direct baseline")
	fmt.Println("once GOMAXPROCS leaves the shards real parallelism to use.")
}

// bootRouterTier starts the database tier on loopback and returns the
// address clients dial: a single lbsd service (shards == 0) or a routing
// service over that many shard services.
func bootRouterTier(shards int) (addr string, cleanup func()) {
	quiet := func(string, ...interface{}) {}
	newSrv := func() *server.Server {
		s, err := server.New(server.Config{World: world})
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		return s
	}
	if shards == 0 {
		svc, err := protocol.ServeDatabase("127.0.0.1:0", newSrv(), quiet)
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		return svc.Addr(), func() { svc.Close() }
	}
	var (
		svcs  []*protocol.Service
		links []router.Shard
		addrs []string
		conns []*protocol.DatabaseClient
	)
	for i := 0; i < shards; i++ {
		svc, err := protocol.ServeDatabase("127.0.0.1:0", newSrv(), quiet)
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		svcs = append(svcs, svc)
		addrs = append(addrs, svc.Addr())
		link, err := protocol.DialDatabase(svc.Addr(), protocol.WithCallTimeout(10*time.Second))
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		conns = append(conns, link)
		links = append(links, link)
	}
	rt, err := router.New(router.Config{World: world, Shards: links, Addrs: addrs})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	rtSvc, err := protocol.ServeRouter("127.0.0.1:0", rt, quiet)
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	return rtSvc.Addr(), func() {
		rtSvc.Close()
		for _, c := range conns {
			c.Close()
		}
		for _, s := range svcs {
			s.Close()
		}
	}
}

// seedRouterTier loads the identical data set into whatever tier addr
// fronts: public objects in one frame, then every user's cloaked region.
func seedRouterTier(addr string, cfg benchConfig) {
	cli, err := protocol.DialDatabase(addr, protocol.WithCallTimeout(30*time.Second))
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	defer cli.Close()
	objPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: cfg.objs, World: world, Dist: mobility.Uniform, Seed: cfg.seed + 1,
	})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	objs := make([]server.PublicObject, len(objPts))
	for i, p := range objPts {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "poi", Loc: p}
	}
	if err := cli.LoadStationary(objs); err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	userPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: cfg.n, World: world, Dist: mobility.Gaussian, Seed: cfg.seed,
	})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	src := rng.New(cfg.seed + 7)
	for i, p := range userPts {
		reg := geo.RectAround(p, 0.005+0.03*src.Float64()).Clip(world)
		if err := cli.UpdatePrivate(uint64(i+1), reg); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
	}
}

// driveRouterTier fans the mixed query workload over worker connections
// and reports aggregate queries/sec. The workload is seeded per worker,
// so every topology answers exactly the same queries.
func driveRouterTier(addr string, seed uint64, queries, workers int) float64 {
	per := queries / workers
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := protocol.DialDatabase(addr, protocol.WithCallTimeout(10*time.Second))
			if err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
			defer cli.Close()
			src := rng.New(seed + 1000 + uint64(w)*7919)
			for i := 0; i < per; i++ {
				p := geo.Pt(src.Range(0.1, 0.9), src.Range(0.1, 0.9))
				r := geo.RectAround(p, 0.02+0.05*src.Float64()).Clip(world)
				switch src.Intn(5) {
				case 0, 1:
					_, err = cli.PrivateRange(server.PrivateRangeQuery{Region: r, Radius: 0.03 * src.Float64(), Class: "poi"})
				case 2, 3:
					_, err = cli.PublicCount(r)
				default:
					_, err = cli.PrivateNN(server.PrivateNNQuery{Region: r, Class: "poi"})
				}
				if err != nil {
					log.Fatalf("lbsbench: worker %d: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(per*workers) / time.Since(t0).Seconds()
}
