# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: build test lint bench bench-micro soak soak-short fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static gates: formatting, vet, the lbsvet suite (standalone and as a
# vet tool, so both drivers stay healthy), its fixture self-tests, and —
# when installed, as CI always has them — staticcheck and govulncheck.
# CI's lint job runs exactly this target.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/lbsvet ./...
	$(GO) build -o $(LBSVET) ./cmd/lbsvet
	$(GO) vet -vettool=$(LBSVET) ./...
	$(GO) test ./internal/lint/...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "lint: staticcheck not installed, skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "lint: govulncheck not installed, skipping (CI runs it)"; fi

LBSVET ?= /tmp/lbsvet

# bench regenerates the committed baseline matrix: both v2 harnesses
# measure the full GOMAXPROCS grid {1, 4, 8, 16} in-process, then the
# fresh baselines are immediately re-compared (which also re-proves the
# ≥2× shared-execution gate — a baseline that cannot prove the claim is
# rejected before it is ever committed). Baselines are machine-specific:
# NumCPU is recorded and a mismatch hard-fails the comparison, so run
# this on the same runner class CI gates on.
bench: build
	$(GO) run ./cmd/lbsbench -exp E16 -n 4000 -bench-out BENCH_anonymizer.json
	$(GO) run ./cmd/lbsbench -exp E17 -n 4000 -objs 4000 -bench-out BENCH_server.json
	$(GO) run ./cmd/lbsbench -exp E16 -n 4000 -bench-compare BENCH_anonymizer.json
	$(GO) run ./cmd/lbsbench -exp E17 -n 4000 -objs 4000 -bench-compare BENCH_server.json

bench-micro:
	$(GO) test -bench=. -benchmem ./...

# Full adversarial soak: every scenario in the catalog at default city
# size, exits non-zero on any SLO violation. ~2 min on a desktop.
soak: build
	$(GO) run ./cmd/lbssoak -seed 1

# The CI soak gate: a reduced city and compressed phase durations, still
# covering an overload-heavy subset end to end (shard_kill runs the
# routed multi-shard database tier).
soak-short: build
	$(GO) run ./cmd/lbssoak -scenarios flash_crowd,db_outage,shard_kill,query_flood \
		-users 8000 -objs 2000 -workers 8 -scale 0.4 -seed 7

fuzz-smoke:
	@for target in FuzzReadFrame FuzzDecodeProfile FuzzDecodeResult FuzzDecodeMetrics FuzzDecodeTraced FuzzDecodeSpans FuzzDecodeShardMap FuzzDecodeSubQueries FuzzDecodeSubResults FuzzDecodeObjects FuzzDecodeCountResult FuzzDecodeUserProbs FuzzDecodeBatchQuery FuzzDecodeBatchResult FuzzDecodeBatchUpdate; do \
		$(GO) test ./internal/protocol/ -run='^$$' -fuzz="^$$target\$$" -fuzztime=10s || exit 1; \
	done
