package main

import (
	"fmt"
	"time"

	"repro/internal/cloak"
	"repro/internal/mobility"
	"repro/internal/server"
)

// expPrivateRange regenerates Figure 5a: private range queries over public
// data — candidate-set size and transfer cost as the privacy level (k,
// hence cloaked-region size) and the query radius grow, with completeness
// verified against the exact locations.
func expPrivateRange(cfg benchConfig) {
	srv, objs := buildServerWithObjects(cfg.objs, cfg.seed+100)
	p := buildPopulation(cfg.n, mobility.Uniform, cfg.seed)
	q := &cloak.Quadtree{Pyr: p.pyr}

	fmt.Printf("%d public objects, %d users; candidates vs k and radius\n\n", cfg.objs, cfg.n)
	t := newTable("k", "radius", "mean region area", "mean candidates", "mean answer", "overhead x", "bytes", "query time")
	for _, k := range []int{1, 10, 50, 200, 1000} {
		for _, radius := range []float64{0.02, 0.05, 0.1} {
			samples := cloakSamples(q, p, k, 100)
			var candSum, ansSum, byteSum int
			var areaSum float64
			var elapsed time.Duration
			for _, s := range samples {
				t0 := time.Now()
				cands, err := srv.PrivateRange(server.PrivateRangeQuery{
					Region: s.region, Radius: radius,
				})
				elapsed += time.Since(t0)
				if err != nil {
					fmt.Printf("error: %v\n", err)
					return
				}
				refined := server.RefineRange(s.loc, radius, cands)
				candSum += len(cands)
				ansSum += len(refined)
				byteSum += server.TransmissionCost(cands)
				areaSum += s.region.Area()
				// Completeness spot check against brute force.
				want := 0
				for _, o := range objs {
					if s.loc.Dist(o.Loc) <= radius {
						want++
					}
				}
				if len(refined) != want {
					fmt.Printf("COMPLETENESS VIOLATION: refined %d != brute %d\n", len(refined), want)
					return
				}
			}
			n := float64(len(samples))
			overhead := float64(candSum) / maxf(float64(ansSum), 1)
			t.row(k, radius, areaSum/n, float64(candSum)/n, float64(ansSum)/n,
				overhead, float64(byteSum)/n, elapsed/time.Duration(len(samples)))
		}
	}
	t.flush()
	fmt.Println("\nreading: candidates grow with k (privacy) and radius; the")
	fmt.Println("overhead column is the paper's privacy/QoS trade-off — every")
	fmt.Println("refined answer was verified against brute force.")
}

// expPrivateNN regenerates Figure 5b: private nearest-neighbor queries —
// candidate-set size before and after dominance pruning, with exactness of
// the refined answer verified for sampled positions.
func expPrivateNN(cfg benchConfig) {
	srv, objs := buildServerWithObjects(cfg.objs, cfg.seed+200)
	p := buildPopulation(cfg.n, mobility.Uniform, cfg.seed)
	q := &cloak.Quadtree{Pyr: p.pyr}

	fmt.Printf("%d public objects, %d users\n\n", cfg.objs, cfg.n)
	t := newTable("k", "mean region area", "superset", "candidates", "pruned %", "bytes", "query time")
	for _, k := range []int{1, 10, 50, 200, 1000} {
		samples := cloakSamples(q, p, k, 100)
		var superSum, candSum, byteSum int
		var areaSum float64
		var elapsed time.Duration
		ok := true
		for _, s := range samples {
			t0 := time.Now()
			res, err := srv.PrivateNN(server.PrivateNNQuery{Region: s.region})
			elapsed += time.Since(t0)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			superSum += res.SupersetSize
			candSum += len(res.Candidates)
			byteSum += server.TransmissionCost(res.Candidates)
			areaSum += s.region.Area()
			// Exactness of refinement at the true location.
			got, found := server.RefineNN(s.loc, res.Candidates)
			if !found {
				ok = false
				continue
			}
			bestD := -1.0
			for _, o := range objs {
				d := s.loc.Dist2(o.Loc)
				if bestD < 0 || d < bestD {
					bestD = d
				}
			}
			if s.loc.Dist2(got.Loc) != bestD {
				ok = false
			}
		}
		if !ok {
			fmt.Println("EXACTNESS VIOLATION in private NN refinement")
			return
		}
		n := float64(len(samples))
		pruned := 100 * (1 - float64(candSum)/maxf(float64(superSum), 1))
		t.row(k, areaSum/n, float64(superSum)/n, float64(candSum)/n, pruned,
			float64(byteSum)/n, elapsed/time.Duration(len(samples)))
	}
	t.flush()
	fmt.Println("\nreading: like Figure 5b, dominance pruning eliminates targets")
	fmt.Println("(such as object A) that some other object beats everywhere;")
	fmt.Println("candidate sets still grow with k — the privacy/QoS trade-off.")
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
