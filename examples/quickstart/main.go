// Quickstart: assemble the privacy-aware LBS stack in process, register a
// mobile user with the paper's example privacy profile, stream a location
// update, and run one private nearest-neighbor query end to end.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/server"
)

func main() {
	world := geo.R(0, 0, 1, 1)

	// Pin the clock to the evening so the profile's k=100 entry applies.
	evening := func() time.Time { return time.Date(2026, 7, 4, 19, 0, 0, 0, time.UTC) }

	sys, err := core.NewSystem(core.Config{
		World:     world,
		Algorithm: anonymizer.AlgQuadtree,
		Clock:     evening,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A small city: 2000 anonymous residents and 300 gas stations.
	if err := loadDemoData(sys); err != nil {
		log.Fatal(err)
	}

	// Register "Alice" with the paper's Figure 2 profile, scaled to the
	// unit world (areas in the paper are square miles; here the world is
	// 1×1, so scale them down).
	alice := uint64(9001)
	profile := privacy.PaperExample().ScaleAreas(1.0 / 400)
	if err := sys.RegisterUser(alice, profile); err != nil {
		log.Fatal(err)
	}

	// Alice reports her location; only a cloaked region reaches the server.
	here := geo.Pt(0.42, 0.58)
	area, err := sys.UpdateLocation(alice, here)
	if err != nil {
		log.Fatal(err)
	}
	region, _ := sys.Server.PrivateRegion(alice)
	fmt.Printf("Alice is at %v; the server only sees %v (area %.4f)\n", here, region, area)

	// Private query: "where is my nearest gas station?"
	station, stats, err := sys.FindNearest(alice, here, "gas")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest gas station: #%d at %v (%.4f away)\n",
		station.ID, station.Loc, here.Dist(station.Loc))
	fmt.Printf("privacy cost: the server shipped %d candidates (%d bytes) for a region of area %.4f\n",
		stats.Candidates, stats.Bytes, stats.RegionArea)

	// Admin query: "how many users downtown right now?" — probabilistic.
	downtown := geo.R(0.3, 0.3, 0.7, 0.7)
	count, err := sys.CountUsersIn(downtown)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users downtown: expected %.1f, certainly within [%d, %d] (naive count: %d)\n",
		count.Answer.Expected, count.Answer.Lo, count.Answer.Hi, count.NaiveCount)
}

// loadDemoData registers 2000 background users on a jittered grid and 300
// gas stations.
func loadDemoData(sys *core.System) error {
	prof := privacy.Constant(privacy.Requirement{K: 20})
	id := uint64(1)
	for i := 0; i < 2000; i++ {
		x := float64(i%45)/45 + float64(i%7)*0.001
		y := float64(i/45)/45 + float64(i%11)*0.0005
		if x >= 1 {
			x = 0.999
		}
		if y >= 1 {
			y = 0.999
		}
		if err := sys.RegisterUser(id, prof); err != nil {
			return err
		}
		if _, err := sys.UpdateLocation(id, geo.Pt(x, y)); err != nil {
			return err
		}
		id++
	}
	objs := make([]server.PublicObject, 0, 300)
	for i := 0; i < 300; i++ {
		x := float64(i%17)/17 + 0.02
		y := float64(i/17)/18 + 0.03
		objs = append(objs, server.PublicObject{
			ID: uint64(i + 1), Class: "gas", Loc: geo.Pt(x, y),
		})
	}
	return sys.LoadPublicObjects(objs)
}
