package cloak

import (
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/pyramid"
)

// Quadtree is the space-dependent cloaker of Figure 4a (the
// Gruteser–Grunwald lineage cited by the paper): starting from the whole
// space, it keeps descending into the quadrant containing the user for as
// long as that quadrant still satisfies the privacy requirement, and
// returns the last satisfying quadrant.
//
// Because every returned region is a cell of a fixed space partition —
// independent of where inside the cell the user stands — no reverse
// engineering can narrow the user's position beyond the cell itself.
type Quadtree struct {
	Pyr *pyramid.Pyramid
}

// Name implements Cloaker.
func (q *Quadtree) Name() string { return "quadtree" }

// Cloak implements Cloaker. The user is expected to be tracked by the
// pyramid (her own count contributes to every cell on her root path).
func (q *Quadtree) Cloak(id uint64, loc geo.Point, req privacy.Requirement) Result {
	best := pyramid.Cell{} // root
	maxArea := req.EffectiveMaxArea()
	for level := 1; level < q.Pyr.Height(); level++ {
		child := q.Pyr.CellAt(level, loc)
		if q.Pyr.Count(child) < req.K {
			break
		}
		if q.Pyr.CellArea(level) < req.MinArea {
			break
		}
		best = child
	}
	// Amax preference: if the chosen cell is too large but a deeper cell
	// within Amax exists that still satisfies k, the loop above would have
	// taken it already (it always descends as deep as k and Amin allow), so
	// at this point a too-large cell is a genuine k/Amax conflict and k wins.
	_ = maxArea
	region := q.Pyr.Rect(best)
	return finish(region, q.Pyr.Count(best), req)
}

// CellFor exposes the chosen pyramid cell for a location and requirement
// without materializing a Result; the batch cloaker uses it to share work
// between users in the same cell.
func (q *Quadtree) CellFor(loc geo.Point, req privacy.Requirement) pyramid.Cell {
	best := pyramid.Cell{}
	for level := 1; level < q.Pyr.Height(); level++ {
		child := q.Pyr.CellAt(level, loc)
		if q.Pyr.Count(child) < req.K || q.Pyr.CellArea(level) < req.MinArea {
			break
		}
		best = child
	}
	return best
}
