package history

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

var world = geo.R(0, 0, 1, 1)

func TestRecordValidation(t *testing.T) {
	s := New()
	if err := s.Record(1, geo.Rect{Min: geo.Pt(1, 1)}, 0); err == nil {
		t.Error("invalid region accepted")
	}
	if err := s.Record(1, world, -1); err == nil {
		t.Error("negative timestamp accepted")
	}
	if err := s.Record(1, world, OpenEnd); err == nil {
		t.Error("OpenEnd timestamp accepted")
	}
	if err := s.Record(1, world, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(1, world, 5); err == nil {
		t.Error("time travel accepted")
	}
}

func TestTimelineSpans(t *testing.T) {
	s := New()
	r1 := geo.R(0.1, 0.1, 0.2, 0.2)
	r2 := geo.R(0.3, 0.3, 0.4, 0.4)
	if err := s.Record(1, r1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(1, r2, 20); err != nil {
		t.Fatal(err)
	}
	full := s.Timeline(1, 0, 100)
	if len(full) != 2 {
		t.Fatalf("timeline = %v", full)
	}
	if full[0].From != 10 || full[0].To != 20 || !full[0].Region.Eq(r1) {
		t.Errorf("span 0 = %+v", full[0])
	}
	if full[1].From != 20 || full[1].To != 100 || !full[1].Region.Eq(r2) {
		t.Errorf("span 1 = %+v (open span clipped to window)", full[1])
	}
	// Window clipping.
	mid := s.Timeline(1, 15, 25)
	if len(mid) != 2 || mid[0].From != 15 || mid[0].To != 20 || mid[1].From != 20 || mid[1].To != 25 {
		t.Errorf("clipped timeline = %v", mid)
	}
	if got := s.Timeline(1, 0, 5); len(got) != 0 {
		t.Errorf("pre-history timeline = %v", got)
	}
	if got := s.Timeline(99, 0, 100); len(got) != 0 {
		t.Errorf("unknown user timeline = %v", got)
	}
}

func TestSameTickCorrection(t *testing.T) {
	s := New()
	s.Record(1, geo.R(0, 0, 0.1, 0.1), 10)
	s.Record(1, geo.R(0.5, 0.5, 0.6, 0.6), 10) // correction at the same tick
	tl := s.Timeline(1, 0, 100)
	if len(tl) != 1 || !tl[0].Region.Eq(geo.R(0.5, 0.5, 0.6, 0.6)) {
		t.Errorf("same-tick correction produced %v", tl)
	}
	if s.SpanCount() != 1 {
		t.Errorf("SpanCount = %d", s.SpanCount())
	}
}

func TestClose(t *testing.T) {
	s := New()
	s.Record(1, world, 10)
	if err := s.Close(1, 20); err != nil {
		t.Fatal(err)
	}
	tl := s.Timeline(1, 0, 100)
	if len(tl) != 1 || tl[0].To != 20 {
		t.Errorf("after close = %v", tl)
	}
	// Active set reflects the closure.
	if ids := s.ActiveAt(15); len(ids) != 1 || ids[0] != 1 {
		t.Errorf("ActiveAt(15) = %v", ids)
	}
	if ids := s.ActiveAt(25); len(ids) != 0 {
		t.Errorf("ActiveAt(25) = %v", ids)
	}
	// Closing an open span at its own start drops the residue.
	s.Record(2, world, 30)
	s.Close(2, 30)
	if got := s.Timeline(2, 0, 100); len(got) != 0 {
		t.Errorf("zero-length span kept: %v", got)
	}
	// Closing an unknown user is a no-op.
	if err := s.Close(99, 40); err != nil {
		t.Errorf("close unknown = %v", err)
	}
}

func TestOccupancyValidation(t *testing.T) {
	s := New()
	if _, err := s.Occupancy(geo.Rect{Min: geo.Pt(1, 1)}, 0, 10); err == nil {
		t.Error("invalid area accepted")
	}
	if _, err := s.Occupancy(world, 10, 10); err == nil {
		t.Error("empty window accepted")
	}
}

func TestOccupancyAnalytic(t *testing.T) {
	s := New()
	area := geo.R(0, 0, 0.5, 0.5)
	// User 1: fully inside the area for the whole window.
	s.Record(1, geo.R(0.1, 0.1, 0.2, 0.2), 0)
	// User 2: region half-overlapping the area, whole window.
	s.Record(2, geo.R(0.4, 0.1, 0.6, 0.2), 0)
	// User 3: inside, but only for the second half of the window.
	// (recorded later to respect the store clock)
	// User 4: entirely outside.
	s.Record(4, geo.R(0.8, 0.8, 0.9, 0.9), 0)
	s.Record(3, geo.R(0.2, 0.2, 0.3, 0.3), 50)

	ans, err := s.Occupancy(area, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: 1 (user1) + 0.5 (user2) + 0.5·1 (user3 half-window) = 2.0
	if math.Abs(ans.Expected-2.0) > 1e-9 {
		t.Errorf("Expected = %v, want 2.0", ans.Expected)
	}
	if ans.Lo != 1 {
		t.Errorf("Lo = %d, want 1 (only user 1 is certain for the full window)", ans.Lo)
	}
	if ans.Hi != 3 {
		t.Errorf("Hi = %d, want 3 (users 1,2,3 possible; 4 impossible)", ans.Hi)
	}
}

func TestOccupancyBracketsGroundTruth(t *testing.T) {
	// Simulated users with known exact positions; regions recorded as
	// squares around them. The interval must always bracket the true
	// time-averaged occupancy.
	s := New()
	src := rng.New(7)
	const (
		users = 200
		ticks = 50
		half  = 0.05
	)
	truth := 0.0
	area := geo.R(0.3, 0.3, 0.7, 0.7)
	locs := make([]geo.Point, users)
	for i := range locs {
		locs[i] = geo.Pt(src.Float64(), src.Float64())
	}
	for tick := 0; tick < ticks; tick++ {
		for i := range locs {
			locs[i] = world.ClampPoint(geo.Pt(
				locs[i].X+src.Range(-0.01, 0.01),
				locs[i].Y+src.Range(-0.01, 0.01),
			))
			region := geo.RectAround(locs[i], half).Clip(world)
			if err := s.Record(uint64(i+1), region, int64(tick)); err != nil {
				t.Fatal(err)
			}
			if area.Contains(locs[i]) {
				truth++
			}
		}
	}
	truth /= ticks
	ans, err := s.Occupancy(area, 0, ticks)
	if err != nil {
		t.Fatal(err)
	}
	if truth < float64(ans.Lo) || truth > float64(ans.Hi) {
		t.Fatalf("interval [%d,%d] misses truth %v", ans.Lo, ans.Hi, truth)
	}
	if math.Abs(ans.Expected-truth) > 0.25*truth {
		t.Errorf("Expected %v vs truth %v", ans.Expected, truth)
	}
}

func TestVisitProbability(t *testing.T) {
	s := New()
	area := geo.R(0, 0, 0.5, 0.5)
	s.Record(1, geo.R(0.1, 0.1, 0.2, 0.2), 0) // inside
	s.Record(2, geo.R(0.8, 0.8, 0.9, 0.9), 0) // outside
	s.Record(3, geo.R(0.4, 0.4, 0.6, 0.6), 0) // partial (overlap 1/4)

	if p, ok := s.VisitProbability(1, area, 0, 10); !ok || p != 1 {
		t.Errorf("inside user: %v, %v", p, ok)
	}
	if p, ok := s.VisitProbability(2, area, 0, 10); ok || p != 0 {
		t.Errorf("outside user: %v, %v", p, ok)
	}
	if p, ok := s.VisitProbability(3, area, 0, 10); !ok || math.Abs(p-0.25) > 1e-9 {
		t.Errorf("partial user: %v, %v", p, ok)
	}
	// Window that misses the spans.
	s.Close(1, 20)
	if _, ok := s.VisitProbability(1, area, 30, 40); ok {
		t.Error("visit possible outside the user's history")
	}
}

func TestPrune(t *testing.T) {
	s := New()
	s.Record(1, world, 0)
	s.Record(1, world, 10)
	s.Record(1, world, 20) // open span
	s.Record(2, world, 25)
	s.Close(2, 30)
	removed := s.Prune(15)
	if removed != 1 {
		t.Errorf("removed = %d, want 1 (the [0,10) span)", removed)
	}
	tl := s.Timeline(1, 0, 100)
	if len(tl) != 2 {
		t.Errorf("timeline after prune = %v", tl)
	}
	// An open span is the user's *current* region and survives any prune.
	s.Prune(OpenEnd - 1)
	if s.Users() != 1 {
		t.Errorf("Users after pruning all closed spans = %d, want 1", s.Users())
	}
	tl = s.Timeline(1, 0, OpenEnd-2)
	if len(tl) != 1 || tl[0].From != 20 {
		t.Errorf("surviving span = %v, want the open one", tl)
	}
	// Once closed, it prunes away too.
	s.Close(1, OpenEnd-2)
	s.Prune(OpenEnd - 1)
	if s.Users() != 0 {
		t.Errorf("Users after closing and pruning = %d", s.Users())
	}
}

func TestUsersAndSpanCount(t *testing.T) {
	s := New()
	s.Record(1, world, 0)
	s.Record(2, world, 1)
	s.Record(1, world, 2)
	if s.Users() != 2 {
		t.Errorf("Users = %d", s.Users())
	}
	if s.SpanCount() != 3 {
		t.Errorf("SpanCount = %d", s.SpanCount())
	}
}

func BenchmarkRecord(b *testing.B) {
	s := New()
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(src.Intn(10000)) + 1
		c := geo.Pt(src.Float64(), src.Float64())
		if err := s.Record(id, geo.RectAround(c, 0.02), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOccupancy(b *testing.B) {
	s := New()
	src := rng.New(2)
	for t := 0; t < 100; t++ {
		for u := 0; u < 1000; u++ {
			c := geo.Pt(src.Float64(), src.Float64())
			s.Record(uint64(u+1), geo.RectAround(c, 0.02).Clip(world), int64(t))
		}
	}
	area := geo.R(0.3, 0.3, 0.7, 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Occupancy(area, 20, 80); err != nil {
			b.Fatal(err)
		}
	}
}
