package server

import (
	"context"
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
)

// This file holds the context-taking entry points the wire handler calls
// for traced requests: thin wrappers that record one lbs_* span per
// query class around the sequential implementations, and link the
// per-class latency histograms to the trace via bucket exemplars. With
// no sampled trace in ctx every wrapper is a plain passthrough.

// ctxTraceID returns the sampled trace id carried by ctx, 0 when none.
func ctxTraceID(ctx context.Context) uint64 {
	if sc, ok := trace.FromContext(ctx); ok && sc.Sampled() {
		return sc.TraceID
	}
	return 0
}

// UpdatePrivateCtx is UpdatePrivate under a context (trace).
func (s *Server) UpdatePrivateCtx(ctx context.Context, id uint64, region geo.Rect) error {
	sp, _ := trace.Start(ctx, s.tracer, "lbs_update_private")
	err := s.UpdatePrivate(id, region)
	sp.End()
	return err
}

// PrivateRangeCtx is PrivateRange under a context (trace).
func (s *Server) PrivateRangeCtx(ctx context.Context, q PrivateRangeQuery) ([]PublicObject, error) {
	sp, _ := trace.Start(ctx, s.tracer, "lbs_private_range")
	t0 := time.Now()
	objs, err := s.PrivateRange(q)
	if sp.Recording() {
		sp.SetAttrs(trace.Int("results", int64(len(objs))))
		sp.End()
		s.met.latPrivateRange.SetExemplar(time.Since(t0).Seconds(), ctxTraceID(ctx))
	}
	return objs, err
}

// PrivateNNCtx is PrivateNN under a context (trace).
func (s *Server) PrivateNNCtx(ctx context.Context, q PrivateNNQuery) (PrivateNNResult, error) {
	sp, _ := trace.Start(ctx, s.tracer, "lbs_private_nn")
	t0 := time.Now()
	res, err := s.PrivateNN(q)
	if sp.Recording() {
		sp.SetAttrs(
			trace.Int("candidates", int64(len(res.Candidates))),
			trace.Int("superset", int64(res.SupersetSize)))
		sp.End()
		s.met.latPrivateNN.SetExemplar(time.Since(t0).Seconds(), ctxTraceID(ctx))
	}
	return res, err
}

// PublicRangeCountCtx is PublicRangeCount under a context (trace).
func (s *Server) PublicRangeCountCtx(ctx context.Context, q PublicRangeCountQuery) (PublicRangeCountResult, error) {
	sp, _ := trace.Start(ctx, s.tracer, "lbs_public_count")
	t0 := time.Now()
	res, err := s.PublicRangeCount(q)
	if sp.Recording() {
		sp.SetAttrs(trace.Int("naive_count", int64(res.NaiveCount)))
		sp.End()
		s.met.latPublicCount.SetExemplar(time.Since(t0).Seconds(), ctxTraceID(ctx))
	}
	return res, err
}
