// Package track implements the trajectory-linking adversary behind the
// paper's Section 2.1 discussion of location tracking: even when every
// individual region is k-anonymous, an adversary who watches one user's
// *sequence* of regions and knows a bound on movement speed can intersect
// each region with the reachable dilation of the previous feasible set,
// and the intersection may shrink far below the region — snapshot
// anonymity does not compose over time.
//
// The feasible set is maintained as a rectangle (the intersection of
// rectangles with rectangle dilations stays a rectangle), which makes the
// attack conservative: the true feasible set is a subset, so any shrinkage
// reported here is a lower bound on the actual leak.
package track

import (
	"fmt"

	"repro/internal/geo"
)

// Linker maintains the adversary's feasible set for one user.
type Linker struct {
	maxSpeed float64
	feasible geo.Rect
	started  bool
}

// NewLinker builds a linker assuming the user moves at most maxSpeed
// (Euclidean distance) between consecutive observations.
func NewLinker(maxSpeed float64) (*Linker, error) {
	if maxSpeed < 0 {
		return nil, fmt.Errorf("track: negative maxSpeed %g", maxSpeed)
	}
	return &Linker{maxSpeed: maxSpeed}, nil
}

// Observe feeds the next published region and returns the updated feasible
// set: region ∩ dilate(previous feasible, maxSpeed). Correctness: the true
// location at time t lies in the region (cloak containment) and within
// maxSpeed of the previous true location, which lay in the previous
// feasible set — so it lies in the intersection. If the intersection is
// empty the speed assumption was violated and the linker resets to the
// bare region.
func (l *Linker) Observe(region geo.Rect) geo.Rect {
	if !l.started {
		l.feasible = region
		l.started = true
		return l.feasible
	}
	reachable := l.feasible.Expand(l.maxSpeed)
	if inter, ok := region.Intersect(reachable); ok {
		l.feasible = inter
	} else {
		l.feasible = region
	}
	return l.feasible
}

// Feasible returns the current feasible set; ok is false before the first
// observation.
func (l *Linker) Feasible() (geo.Rect, bool) { return l.feasible, l.started }

// Reset clears the linker's state.
func (l *Linker) Reset() { l.started = false; l.feasible = geo.Rect{} }

// Step is one observation of a tracked user with ground truth attached.
type Step struct {
	Region  geo.Rect
	TrueLoc geo.Point
}

// Report aggregates linking success over one trajectory.
type Report struct {
	Steps int
	// MeanShrink is the mean of feasible-area / region-area over all steps
	// after the first; 1 means the sequence leaks nothing beyond each
	// snapshot, values ≪ 1 mean the trajectory is being narrowed down.
	MeanShrink float64
	// FinalShrink is the ratio at the last step.
	FinalShrink float64
	// MeanGuessError is the mean distance from the feasible-set center to
	// the true location, in world units.
	MeanGuessError float64
	// ContainmentViolations counts steps where the true location fell
	// outside the feasible set — zero whenever the speed bound holds, so a
	// nonzero value flags a misconfigured attack, not a safe user.
	ContainmentViolations int
}

// Evaluate replays a trajectory against a fresh linker.
func Evaluate(steps []Step, maxSpeed float64) (Report, error) {
	l, err := NewLinker(maxSpeed)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Steps: len(steps)}
	if len(steps) == 0 {
		return rep, nil
	}
	counted := 0
	for i, s := range steps {
		f := l.Observe(s.Region)
		if !f.Contains(s.TrueLoc) {
			rep.ContainmentViolations++
		}
		rep.MeanGuessError += f.Center().Dist(s.TrueLoc)
		if i > 0 {
			ratio := 1.0
			if a := s.Region.Area(); a > 0 {
				ratio = f.Area() / a
			} else if f.IsPoint() {
				ratio = 1
			}
			rep.MeanShrink += ratio
			rep.FinalShrink = ratio
			counted++
		}
	}
	rep.MeanGuessError /= float64(len(steps))
	if counted > 0 {
		rep.MeanShrink /= float64(counted)
	} else {
		rep.MeanShrink = 1
		rep.FinalShrink = 1
	}
	return rep, nil
}
