package server

import (
	"fmt"
	"testing"

	"repro/internal/geo"
	"repro/internal/mobility"
)

var world = geo.R(0, 0, 1, 1)

func newServer(t testing.TB) *Server {
	t.Helper()
	s, err := New(Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// loadObjects fills the server with n uniform stationary objects of the
// given class and returns them.
func loadObjects(t testing.TB, s *Server, n int, class string, seed uint64) []PublicObject {
	t.Helper()
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: n, World: world, Dist: mobility.Uniform, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]PublicObject, n)
	for i, p := range pts {
		objs[i] = PublicObject{ID: uint64(i + 1), Class: class, Loc: p}
	}
	if err := s.LoadStationary(objs); err != nil {
		t.Fatal(err)
	}
	return objs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	s, err := New(Config{World: world, MovingGridCols: 8, MovingGridRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !s.World().Eq(world) {
		t.Error("World mismatch")
	}
}

func TestLoadStationaryValidation(t *testing.T) {
	s := newServer(t)
	err := s.LoadStationary([]PublicObject{
		{ID: 1, Loc: geo.Pt(0.5, 0.5)},
		{ID: 1, Loc: geo.Pt(0.6, 0.6)},
	})
	if err == nil {
		t.Error("duplicate IDs accepted")
	}
	err = s.LoadStationary([]PublicObject{{ID: 1, Loc: geo.Pt(5, 5)}})
	if err == nil {
		t.Error("out-of-world object accepted")
	}
}

func TestAddRemoveStationary(t *testing.T) {
	s := newServer(t)
	if err := s.AddStationary(PublicObject{ID: 1, Class: "gas", Loc: geo.Pt(0.5, 0.5)}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddStationary(PublicObject{ID: 1, Class: "gas", Loc: geo.Pt(0.6, 0.6)}); err == nil {
		t.Error("duplicate AddStationary accepted")
	}
	if err := s.AddStationary(PublicObject{ID: 2, Loc: geo.Pt(2, 2)}); err == nil {
		t.Error("out-of-world AddStationary accepted")
	}
	if s.StationaryCount() != 1 {
		t.Errorf("StationaryCount = %d", s.StationaryCount())
	}
	if !s.RemoveStationary(1) {
		t.Error("RemoveStationary failed")
	}
	if s.RemoveStationary(1) {
		t.Error("double remove succeeded")
	}
	if s.StationaryCount() != 0 {
		t.Error("count after removal")
	}
}

func TestMovingObjects(t *testing.T) {
	s := newServer(t)
	if err := s.UpdateMoving(9, geo.Pt(0.3, 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateMoving(9, geo.Pt(0.4, 0.4)); err != nil {
		t.Fatal(err)
	}
	if s.MovingCount() != 1 {
		t.Errorf("MovingCount = %d", s.MovingCount())
	}
	if err := s.UpdateMoving(10, geo.Pt(3, 3)); err == nil {
		t.Error("out-of-world moving accepted")
	}
	if !s.RemoveMoving(9) || s.RemoveMoving(9) {
		t.Error("RemoveMoving misbehaved")
	}
}

func TestPrivateDataLifecycle(t *testing.T) {
	s := newServer(t)
	r := geo.R(0.2, 0.2, 0.4, 0.4)
	if err := s.UpdatePrivate(5, r); err != nil {
		t.Fatal(err)
	}
	if s.PrivateUserCount() != 1 {
		t.Error("PrivateUserCount")
	}
	got, ok := s.PrivateRegion(5)
	if !ok || !got.Eq(r) {
		t.Errorf("PrivateRegion = %v, %v", got, ok)
	}
	// Update in place.
	r2 := geo.R(0.5, 0.5, 0.6, 0.6)
	if err := s.UpdatePrivate(5, r2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.PrivateRegion(5); !got.Eq(r2) {
		t.Error("region not updated")
	}
	if !s.RemovePrivate(5) || s.RemovePrivate(5) {
		t.Error("RemovePrivate misbehaved")
	}
	// Validation.
	if err := s.UpdatePrivate(6, geo.Rect{Min: geo.Pt(1, 1), Max: geo.Pt(0, 0)}); err == nil {
		t.Error("invalid region accepted")
	}
	if err := s.UpdatePrivate(7, geo.R(5, 5, 6, 6)); err == nil {
		t.Error("out-of-world region accepted")
	}
	// Degenerate (k=1) regions are allowed.
	if err := s.UpdatePrivate(8, geo.PointRect(geo.Pt(0.5, 0.5))); err != nil {
		t.Errorf("degenerate region rejected: %v", err)
	}
}

// Invariant I9: the private store holds regions only. The compiler enforces
// the type; this test documents the API guarantee that no method accepts an
// exact private location.
func TestPrivateStoreHoldsRegionsOnly(t *testing.T) {
	s := newServer(t)
	region := geo.R(0.1, 0.1, 0.3, 0.3)
	if err := s.UpdatePrivate(1, region); err != nil {
		t.Fatal(err)
	}
	recs := s.privateSnapshot()
	if len(recs) != 1 {
		t.Fatal("snapshot size")
	}
	if recs[0].Region.IsPoint() {
		t.Error("region degenerated unexpectedly")
	}
}

func TestPrivateSnapshotSorted(t *testing.T) {
	s := newServer(t)
	for _, id := range []uint64{42, 7, 19, 3} {
		if err := s.UpdatePrivate(id, geo.R(0.1, 0.1, 0.2, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.privateSnapshot()
	for i := 1; i < len(recs); i++ {
		if recs[i].ID <= recs[i-1].ID {
			t.Fatal("snapshot not sorted by id")
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newServer(t)
	loadObjects(t, s, 500, "gas", 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.UpdatePrivate(uint64(i%10+1), geo.R(0.1, 0.1, 0.3, 0.3))
			s.UpdateMoving(uint64(i%5+1), geo.Pt(0.5, 0.5))
		}
	}()
	for i := 0; i < 200; i++ {
		s.PrivateRange(PrivateRangeQuery{Region: geo.R(0.4, 0.4, 0.6, 0.6), Radius: 0.1})
		s.PublicRangeCount(PublicRangeCountQuery{Query: geo.R(0, 0, 0.5, 0.5)})
	}
	<-done
}

func TestMetricsCount(t *testing.T) {
	s := newServer(t)
	loadObjects(t, s, 100, "gas", 1)
	s.UpdatePrivate(1, geo.R(0.1, 0.1, 0.2, 0.2))
	s.UpdatePrivate(1, geo.R(0.2, 0.2, 0.3, 0.3))
	s.RemovePrivate(1)
	s.UpdateMoving(5, geo.Pt(0.5, 0.5))
	s.PrivateRange(PrivateRangeQuery{Region: geo.R(0.4, 0.4, 0.6, 0.6), Radius: 0.05})
	s.PrivateNN(PrivateNNQuery{Region: geo.R(0.4, 0.4, 0.6, 0.6)})
	s.PublicRangeCount(PublicRangeCountQuery{Query: geo.R(0, 0, 1, 1)})
	s.PublicNN(PublicNNQuery{From: geo.Pt(0.5, 0.5), Samples: 10, Seed: 1})
	id, _ := s.RegisterContinuousCount(geo.R(0, 0, 0.5, 0.5))
	s.ContinuousCount(id)

	m := s.Metrics()
	if m.PrivateUpdates != 2 || m.PrivateRemovals != 1 || m.MovingUpdates != 1 {
		t.Errorf("write counters = %+v", m)
	}
	if m.PrivateRangeQs != 1 || m.PrivateNNQs != 1 || m.PublicCountQs != 1 ||
		m.PublicNNQs != 1 || m.ContinuousReads != 1 {
		t.Errorf("query counters = %+v", m)
	}
}

// TestUpdatePrivateFailureLeavesStateConsistent pins the partial-failure
// contract: when the region-index upsert fails, the private map, the
// index, and the continuous engine must all stay at their pre-call state.
// The old code mutated s.private before the index write, leaving the user
// counted by full scans but invisible to indexed queries, and skipped the
// continuous-engine notification entirely.
func TestUpdatePrivateFailureLeavesStateConsistent(t *testing.T) {
	s := newServer(t)
	if err := s.UpdatePrivate(1, geo.R(0.1, 0.1, 0.3, 0.3)); err != nil {
		t.Fatal(err)
	}
	contID, err := s.RegisterContinuousCount(geo.R(0, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Force the index write to fail for user 2 only; everything else
	// passes through to the real index.
	injected := fmt.Errorf("injected index failure")
	s.privUpsertHook = func(id uint64, region geo.Rect) error {
		if id == 2 {
			return injected
		}
		return s.privIdx.Upsert(id, region)
	}
	if err := s.UpdatePrivate(2, geo.R(0.5, 0.5, 0.7, 0.7)); err != injected {
		t.Fatalf("UpdatePrivate error = %v, want the injected failure", err)
	}

	if n := s.PrivateUserCount(); n != 1 {
		t.Errorf("PrivateUserCount = %d after failed update, want 1", n)
	}
	if _, ok := s.PrivateRegion(2); ok {
		t.Error("failed update left user 2 in the private map")
	}
	if m := s.Metrics(); m.PrivateUpdates != 1 {
		t.Errorf("PrivateUpdates = %d, want 1 (failed update must not count)", m.PrivateUpdates)
	}
	// Indexed and full-scan answers must agree: the whole-world count sees
	// exactly the one user both ways.
	q := PublicRangeCountQuery{Query: geo.R(0, 0, 1, 1)}
	indexed, err := s.PublicRangeCount(q)
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := s.publicRangeCountScan(q)
	if err != nil {
		t.Fatal(err)
	}
	if indexed.NaiveCount != scanned.NaiveCount || indexed.NaiveCount != 1 {
		t.Errorf("indexed count %d vs scan count %d, want both 1",
			indexed.NaiveCount, scanned.NaiveCount)
	}
	// The continuous query saw user 1 only.
	if ans, ok := s.ContinuousCount(contID); !ok || ans.Hi != 1 {
		t.Errorf("continuous answer = %+v, want Hi=1", ans)
	}

	// A failed *re*-update of an existing user keeps the old region.
	s.privUpsertHook = func(id uint64, region geo.Rect) error { return injected }
	if err := s.UpdatePrivate(1, geo.R(0.8, 0.8, 0.9, 0.9)); err != injected {
		t.Fatalf("UpdatePrivate error = %v, want the injected failure", err)
	}
	if r, ok := s.PrivateRegion(1); !ok || !r.Eq(geo.R(0.1, 0.1, 0.3, 0.3)) {
		t.Errorf("failed re-update changed user 1's region to %v", r)
	}
}
