package ctxcall_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/passes/ctxcall"
)

func TestDeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the module for fixture type-checking")
	}
	linttest.Run(t, "testdata/src/deadlines", ctxcall.Analyzer)
}
