package altpriv

import (
	"repro/internal/geo"
	"repro/internal/rng"
)

// The evaluation mirrors internal/attack for the two alternative
// mechanisms, producing the same leakage scale (1 = exact recovery, 0 = no
// better than a world-uniform prior) so experiment E12 can put all privacy
// mechanisms in one table.

// DummySample is one observed dummy report with ground truth attached.
type DummySample struct {
	Report  DummyReport
	TrueLoc geo.Point
}

// DummyReportEval is the leakage of the false-dummies mechanism under an
// adversary who picks one of the reported locations uniformly (the best a
// memoryless adversary can do when dummies are well formed).
type DummyReportEval struct {
	N int
	// PickRate is the probability the adversary's pick is the true
	// location: 1/n for ideal dummies.
	PickRate float64
	// MeanError is the adversary's mean distance error.
	MeanError float64
	// Leakage normalizes MeanError against the mean pairwise spread of the
	// report: 1 = exact, 0 = the pick carries no information.
	Leakage float64
}

// EvaluateDummies runs the uniform-pick adversary.
func EvaluateDummies(samples []DummySample, seed uint64) DummyReportEval {
	src := rng.New(seed)
	out := DummyReportEval{N: len(samples)}
	if len(samples) == 0 {
		return out
	}
	for _, s := range samples {
		pick := s.Report.Locations[src.Intn(len(s.Report.Locations))]
		err := pick.Dist(s.TrueLoc)
		if err == 0 {
			out.PickRate++
		}
		out.MeanError += err
		// Prior: expected distance from the true location to a uniformly
		// chosen report entry (including the true one).
		prior := 0.0
		for _, p := range s.Report.Locations {
			prior += p.Dist(s.TrueLoc)
		}
		prior /= float64(len(s.Report.Locations))
		if prior > 0 {
			if norm := err / prior; norm < 1 {
				out.Leakage += 1 - norm
			}
		} else {
			out.Leakage++
		}
	}
	n := float64(len(samples))
	out.PickRate /= n
	out.MeanError /= n
	out.Leakage /= n
	return out
}

// MotionFilterDummies is the stronger adversary the paper's successors
// describe: it watches consecutive reports and discards candidates whose
// implied speed exceeds maxSpeed. It returns the mean number of surviving
// candidates per update (1.0 = fully de-anonymized) given a time series of
// reports for one user.
func MotionFilterDummies(series []DummyReport, trueIdxs []int, maxSpeed float64) (meanSurvivors float64, trueSurvives bool) {
	if len(series) < 2 {
		return float64(len(series[0].Locations)), true
	}
	trueSurvives = true
	total := 0.0
	count := 0
	// A candidate chain survives if some location in the previous report is
	// within maxSpeed of it.
	for t := 1; t < len(series); t++ {
		prev, cur := series[t-1], series[t]
		survivors := 0
		trueAlive := false
		for i, p := range cur.Locations {
			reachable := false
			for _, q := range prev.Locations {
				if p.Dist(q) <= maxSpeed {
					reachable = true
					break
				}
			}
			if reachable {
				survivors++
				if i == trueIdxs[t] {
					trueAlive = true
				}
			}
		}
		if !trueAlive {
			trueSurvives = false
		}
		total += float64(survivors)
		count++
	}
	return total / float64(count), trueSurvives
}

// LandmarkEval is the leakage of landmark snapping.
type LandmarkEval struct {
	N int
	// MeanError is the distance from the reported landmark to the truth —
	// the adversary's best guess IS the landmark.
	MeanError float64
	// MeanCellPopulation is the anonymity actually delivered: how many
	// other users share the reported landmark. Unlike k-anonymity it is not
	// controlled — rural users may be alone (population 1 = identified).
	MeanCellPopulation float64
	// AloneRate is the fraction of users who are the only one at their
	// landmark — fully identified by intersection with home/work knowledge.
	AloneRate float64
}

// EvaluateLandmarks measures landmark privacy for a user population.
func EvaluateLandmarks(l *Landmarks, users []geo.Point) LandmarkEval {
	out := LandmarkEval{N: len(users)}
	if len(users) == 0 {
		return out
	}
	cellPop := make(map[int]int)
	cells := make([]int, len(users))
	for i, u := range users {
		c := l.CellOf(u)
		cells[i] = c
		cellPop[c]++
	}
	for i, u := range users {
		out.MeanError += l.Snap(u).Dist(u)
		pop := cellPop[cells[i]]
		out.MeanCellPopulation += float64(pop)
		if pop == 1 {
			out.AloneRate++
		}
	}
	n := float64(len(users))
	out.MeanError /= n
	out.MeanCellPopulation /= n
	out.AloneRate /= n
	return out
}
