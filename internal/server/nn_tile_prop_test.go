package server

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// This file is the tile-boundary property suite for the private-NN
// pipeline: the two-phase scatter protocol the routing tier runs (phase 1
// covers the tiles intersecting the cloaked region, phase 2 expands by
// √T0·(1+slack) once the phase-1 bound T0 is known) must never lose a
// true nearest neighbor, no matter where objects sit relative to tile
// edges. It guards the R-tree descent rewrite: any pruning-order bug in
// the min–max browse surfaces here as a dropped boundary object.

// nnBoundSlack mirrors internal/router's expansion slack; the test pins
// the exact factor the router ships so the two cannot drift silently.
const nnBoundSlack = 1e-9

// tileOf single-homes a point the way the routing tier does: floor
// mapping with the top edge clamped into the last tile.
func tileOf(p geo.Point, world geo.Rect, tiles int) (int, int) {
	tx := int(float64(tiles) * (p.X - world.Min.X) / world.Width())
	ty := int(float64(tiles) * (p.Y - world.Min.Y) / world.Height())
	if tx >= tiles {
		tx = tiles - 1
	}
	if ty >= tiles {
		ty = tiles - 1
	}
	return tx, ty
}

// tileRect returns the closed rectangle of one tile.
func tileRect(tx, ty, tiles int, world geo.Rect) geo.Rect {
	w, h := world.Width()/float64(tiles), world.Height()/float64(tiles)
	return geo.R(
		world.Min.X+float64(tx)*w, world.Min.Y+float64(ty)*h,
		world.Min.X+float64(tx+1)*w, world.Min.Y+float64(ty+1)*h)
}

func TestTwoPhaseTileNNNeverLosesTrueNeighbor(t *testing.T) {
	world := geo.R(0, 0, 1, 1)
	const tiles = 4
	for seed := uint64(1); seed <= 30; seed++ {
		src := rng.New(seed)

		// A population with a deliberate share of points exactly on tile
		// edges — the adversarial placements for any cover computation.
		n := 60 + src.Intn(140)
		objs := make([]PublicObject, n)
		for i := range objs {
			p := geo.Pt(src.Float64(), src.Float64())
			switch src.Intn(5) {
			case 0:
				p.X = math.Round(p.X*tiles) / tiles
			case 1:
				p.Y = math.Round(p.Y*tiles) / tiles
			}
			class := "gas"
			if src.Intn(3) == 0 {
				class = "food"
			}
			objs[i] = PublicObject{ID: uint64(i + 1), Class: class, Loc: world.ClampPoint(p)}
		}

		full := newServer(t)
		if err := full.LoadStationary(objs); err != nil {
			t.Fatal(err)
		}

		// One server per tile, objects single-homed by tileOf — the routed
		// tier's stationary placement.
		shard := make([]*Server, tiles*tiles)
		byTile := make([][]PublicObject, tiles*tiles)
		for _, o := range objs {
			tx, ty := tileOf(o.Loc, world, tiles)
			byTile[ty*tiles+tx] = append(byTile[ty*tiles+tx], o)
		}
		for ti := range shard {
			shard[ti] = newServer(t)
			if len(byTile[ti]) > 0 {
				if err := shard[ti].LoadStationary(byTile[ti]); err != nil {
					t.Fatal(err)
				}
			}
		}

		for trial := 0; trial < 20; trial++ {
			// Regions biased toward tile edges: half are centered on a
			// boundary line so phase-1 coverage straddles tiles.
			c := geo.Pt(src.Float64(), src.Float64())
			if trial%2 == 0 {
				c.X = math.Round(c.X*tiles) / tiles
			}
			half := 0.002 + 0.06*src.Float64()
			region := geo.RectAround(world.ClampPoint(c), half).Clip(world)
			class := ""
			if trial%3 == 0 {
				class = "gas"
			}
			q := PrivateNNQuery{Region: region, Class: class}

			want, err := full.PrivateNN(q)
			if err != nil {
				t.Fatal(err)
			}

			// Phase 1: every tile whose rectangle intersects the region.
			queried := make([]bool, tiles*tiles)
			var parts []NNParts
			t0 := math.Inf(1)
			for ti := range shard {
				if !tileRect(ti%tiles, ti/tiles, tiles, world).Intersects(region) {
					continue
				}
				part, err := shard[ti].PrivateNNParts(q)
				if err != nil {
					t.Fatal(err)
				}
				queried[ti] = true
				parts = append(parts, part)
				if part.Bound < t0 {
					t0 = part.Bound
				}
			}
			// Phase 2: tiles intersecting the √T0-expanded region, exactly
			// as the router computes the second wave.
			want2 := region.Expand(math.Sqrt(t0) * (1 + nnBoundSlack))
			for ti := range shard {
				if queried[ti] || !tileRect(ti%tiles, ti/tiles, tiles, world).Intersects(want2) {
					continue
				}
				part, err := shard[ti].PrivateNNParts(q)
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, part)
			}
			got := CombineNNParts(region, parts...)

			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d trial %d: two-phase tile answer diverged\nregion %v class %q\n got %+v\nwant %+v",
					seed, trial, region, class, got, want)
			}

			// Ground truth: at adversarial sample points (corners, center,
			// every object's projection into the region, random points) the
			// brute-force nearest neighbor must be reachable through the
			// candidate set.
			inCand := func(d2 float64, p geo.Point) bool {
				for _, cd := range got.Candidates {
					if p.Dist2(cd.Loc) == d2 {
						return true
					}
				}
				return false
			}
			samples := []geo.Point{region.Min, region.Max, region.Center(),
				geo.Pt(region.Min.X, region.Max.Y), geo.Pt(region.Max.X, region.Min.Y)}
			for _, o := range objs {
				samples = append(samples, region.ClampPoint(o.Loc))
			}
			for k := 0; k < 10; k++ {
				samples = append(samples, geo.Pt(
					region.Min.X+region.Width()*src.Float64(),
					region.Min.Y+region.Height()*src.Float64()))
			}
			for _, p := range samples {
				best := math.Inf(1)
				for _, o := range objs {
					if class != "" && o.Class != class {
						continue
					}
					if d2 := p.Dist2(o.Loc); d2 < best {
						best = d2
					}
				}
				if math.IsInf(best, 1) {
					continue
				}
				if !inCand(best, p) {
					t.Fatalf("seed %d trial %d: true nearest neighbor of %v (dist² %g) lost by the two-phase protocol; region %v class %q, %d candidates",
						seed, trial, p, best, region, class, len(got.Candidates))
				}
			}
		}
	}
}
