// Package fixture exercises the obsname pass's span-name checks across
// all three name-introducing forms: Tracer.StartRoot, Tracer.StartSpan,
// and the package-level trace.Start helper. Metrics and spans share one
// namespace, so the span family must match the package's metric family.
package fixture

import (
	"context"

	"repro/internal/obs"
	"repro/internal/trace"
)

var dynamicSpan = "fixture_dynamic"

func spans(tr *trace.Tracer, reg *obs.Registry, ctx context.Context, sc trace.SpanContext) {
	reg.Counter("fixture_requests_total", "Requests.")

	root := tr.StartRoot("fixture_request")
	serve := tr.StartSpan(sc, "fixture_serve")
	call, ctx2 := trace.Start(ctx, tr, "fixture_call")

	tr.StartRoot("Fixture_Bad_Span")    // want "not snake_case"
	tr.StartSpan(sc, "fixture-serve-2") // want "not snake_case"

	tr.StartRoot("fixture_request") // want "already introduced in this package"

	tr.StartRoot(dynamicSpan) // want "must be a string literal"

	other, _ := trace.Start(ctx2, tr, "alien_stage") // want "outside this package"

	other.End()
	call.End()
	serve.End()
	root.End()
}
