package obsname_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/passes/obsname"
)

func TestNames(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the module for fixture type-checking")
	}
	linttest.Run(t, "testdata/src/names", obsname.Analyzer)
}

func TestSpanNames(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the module for fixture type-checking")
	}
	linttest.Run(t, "testdata/src/spannames", obsname.Analyzer)
}
