// Networked: the full three-tier architecture of Figure 1 over real TCP —
// a database server process, a Location Anonymizer forwarding to it, a
// mobile user client talking only to the anonymizer, and an untrusted
// third-party client querying the database directly. Everything runs on
// loopback inside this one program so the example is self-contained, but
// each tier communicates exclusively through the wire protocol.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/server"
)

func main() {
	world := geo.R(0, 0, 1, 1)
	quiet := func(string, ...interface{}) {}

	// Tier 3: the privacy-aware database server.
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		log.Fatal(err)
	}
	dbSvc, err := protocol.ServeDatabase("127.0.0.1:0", srv, quiet)
	if err != nil {
		log.Fatal(err)
	}
	defer dbSvc.Close()
	fmt.Printf("database server   : %s\n", dbSvc.Addr())

	// Tier 2: the anonymizer, forwarding cloaked regions over TCP.
	fwd, err := protocol.DialDatabase(dbSvc.Addr(), protocol.WithCallTimeout(10*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer fwd.Close()
	anon, err := anonymizer.New(anonymizer.Config{
		World:       world,
		Incremental: true,
		Forward:     fwd.UpdatePrivate,
	})
	if err != nil {
		log.Fatal(err)
	}
	anonSvc, err := protocol.ServeAnonymizer("127.0.0.1:0", anon, quiet)
	if err != nil {
		log.Fatal(err)
	}
	defer anonSvc.Close()
	fmt.Printf("location anonymizer: %s (quadtree, incremental)\n\n", anonSvc.Addr())

	// Tier 1a: mobile users connect to the anonymizer only.
	user, err := protocol.DialAnonymizer(anonSvc.Addr(), protocol.WithCallTimeout(10*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer user.Close()

	// Tier 1b: an untrusted third party connects to the database only.
	admin, err := protocol.DialDatabase(dbSvc.Addr(), protocol.WithCallTimeout(10*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()

	// Load public data through the admin path.
	poiPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 400, World: world, Dist: mobility.Uniform, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	objs := make([]server.PublicObject, len(poiPts))
	for i, p := range poiPts {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "hospital", Loc: p}
	}
	if err := admin.LoadStationary(objs); err != nil {
		log.Fatal(err)
	}

	// A thousand users stream updates through the anonymizer.
	userPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 1000, World: world, Dist: mobility.Gaussian, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	prof := privacy.Constant(privacy.Requirement{K: 25})
	for i, p := range userPts {
		id := uint64(i + 1)
		if err := user.Register(id, prof); err != nil {
			log.Fatal(err)
		}
		if _, err := user.Update(id, p); err != nil {
			log.Fatal(err)
		}
	}
	stationary, private, err := admin.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server state: %d public objects, %d cloaked users\n\n", stationary, private)

	// Private query flow: cloak at the anonymizer, candidates from the
	// server, refinement on the device.
	me := uint64(77)
	loc := userPts[me-1]
	cres, err := user.CloakQuery(me, loc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user %d (exact %v) cloaked to %v\n", me, loc, cres.Region)
	nn, err := admin.PrivateNN(server.PrivateNNQuery{Region: cres.Region, Class: "hospital"})
	if err != nil {
		log.Fatal(err)
	}
	best, _ := server.RefineNN(loc, nn.Candidates)
	fmt.Printf("nearest hospital: #%d at %v — refined on-device from %d candidates\n\n",
		best.ID, best.Loc, len(nn.Candidates))

	// Untrusted-party queries over the wire.
	area := geo.R(0.4, 0.4, 0.6, 0.6)
	cnt, err := admin.PublicCount(area)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admin count in %v: expected %.1f, interval [%d,%d]\n",
		area, cnt.Answer.Expected, cnt.Answer.Lo, cnt.Answer.Hi)

	pnn, err := admin.PublicNN(server.PublicNNQuery{From: geo.Pt(0.5, 0.5), Samples: 1000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admin nearest-user: %d candidates after pruning %d; best user %d (P=%.3f)\n",
		len(pnn.Candidates), pnn.PrunedCount, pnn.Best.ID, pnn.Best.Prob)
	fmt.Println("\nnote: the database server process never received a single exact")
	fmt.Println("user location — the only path carrying points ends at the anonymizer.")
}
