package scenario

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/mobility"
)

// Catalog returns the adversarial scenario set, in the order lbssoak runs
// them. Every scenario carries the implicit objectives (zero lost
// updates, zero post-seed k violations) plus the budgets listed here;
// durations are pre-scale.
func Catalog() []Scenario {
	return []Scenario{
		flashCrowd(),
		commuterRush(),
		profileFlip(),
		dbOutage(),
		shardKill(),
		slowLink(),
		rollingRestart(),
		queryFlood(),
	}
}

// Find returns the named scenario from the catalog.
func Find(name string) (Scenario, bool) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Latency budgets are deliberately loose — they catch collapse (seconds),
// not jitter; CI machines are noisy neighbors.
const (
	updateBudget = 500 * time.Millisecond
	queryBudget  = 500 * time.Millisecond
)

// flashCrowd: a stadium empties — most of the population converges on one
// point, then the hotspot migrates across town. Cloaked regions shrink in
// the crowd and balloon in the emptied tail; k must hold through both.
func flashCrowd() Scenario {
	return Scenario{
		Name: "flash_crowd",
		Desc: "Zipf hotspot forms, intensifies, then migrates across town",
		SLO:  SLO{UpdateP99: updateBudget, QueryP99: queryBudget, MaxErrorRate: 0.001},
		Run: func(e *Env) error {
			stadium := &mobility.Hotspot{Center: geo.Pt(0.25, 0.25), Frac: 0.6, Pull: 0.85}
			moved := &mobility.Hotspot{Center: geo.Pt(0.8, 0.7), Frac: 0.6, Pull: 0.85}
			if err := e.Drive(Phase{Name: "baseline", Dur: 4 * time.Second, QueryPct: 15}); err != nil {
				return err
			}
			if err := e.Drive(Phase{Name: "flash", Dur: 6 * time.Second, Hot: stadium, QueryPct: 15}); err != nil {
				return err
			}
			return e.Drive(Phase{Name: "migrate", Dur: 6 * time.Second, Hot: moved, QueryPct: 15})
		},
	}
}

// commuterRush: rush hour — a growing share of the city funnels downtown,
// then disperses. The density wave sweeps the quadtree's cell occupancy
// up and back down.
func commuterRush() Scenario {
	return Scenario{
		Name: "commuter_rush",
		Desc: "population funnels downtown in waves, then disperses",
		SLO:  SLO{UpdateP99: updateBudget, QueryP99: queryBudget, MaxErrorRate: 0.001},
		Run: func(e *Env) error {
			downtown := geo.Pt(0.5, 0.5)
			for i, frac := range []float64{0.2, 0.5, 0.8} {
				hot := &mobility.Hotspot{Center: downtown, Frac: frac, Pull: 0.7}
				if err := e.Drive(Phase{Name: fmt.Sprintf("wave-%d", i+1), Dur: 4 * time.Second, Hot: hot, QueryPct: 20}); err != nil {
					return err
				}
			}
			return e.Drive(Phase{Name: "disperse", Dur: 4 * time.Second, QueryPct: 20})
		},
	}
}

// profileFlip: everyone raises k at once mid-run — the mass privacy-dial
// flip. Regions must grow to honor the new k with zero violations and no
// re-registration churn.
func profileFlip() Scenario {
	return Scenario{
		Name: "profile_flip",
		Desc: "whole population raises k mid-run via MsgUpdateProfile",
		SLO:  SLO{UpdateP99: updateBudget, MaxErrorRate: 0.001},
		Run: func(e *Env) error {
			if err := e.Drive(Phase{Name: "baseline", Dur: 4 * time.Second, QueryPct: 10}); err != nil {
				return err
			}
			if err := e.FlipProfiles(e.cfg.K * 3); err != nil {
				return err
			}
			if err := e.Drive(Phase{Name: "raised-k", Dur: 5 * time.Second, QueryPct: 10}); err != nil {
				return err
			}
			if err := e.FlipProfiles(e.cfg.K); err != nil {
				return err
			}
			return e.Drive(Phase{Name: "restored-k", Dur: 3 * time.Second, QueryPct: 10})
		},
	}
}

// dbOutage: the database dies mid-rush and comes back. With admission
// control the anonymizer sheds typed once its spill queue fills; without
// it the queue silently evicts acked updates — the run that proves the
// machinery is load-bearing, because this scenario fails with
// -admission=false.
func dbOutage() Scenario {
	return Scenario{
		Name: "db_outage",
		Desc: "database killed mid-rush; spill, shed typed, recover",
		SLO:  SLO{MaxErrorRate: 0.001, RecoverWithin: 20 * time.Second},
		Tune: func(cfg *Config) {
			// A queue far smaller than the per-outage update volume: the
			// full-queue policy (reject vs evict) decides the verdict.
			cfg.ForwardQueue = 256
		},
		Run: func(e *Env) error {
			if err := e.Drive(Phase{Name: "baseline", Dur: 3 * time.Second, QueryPct: 10}); err != nil {
				return err
			}
			e.KillDB()
			if err := e.Drive(Phase{Name: "outage", Dur: 5 * time.Second, QueryPct: 0}); err != nil {
				return err
			}
			if err := e.RestartDB(false); err != nil {
				return err
			}
			if err := e.AwaitRecovery(); err != nil {
				return err
			}
			return e.Drive(Phase{Name: "aftermath", Dur: 3 * time.Second, QueryPct: 10})
		},
	}
}

// shardKill: the database tier is a routed fleet and one shard dies
// mid-rush. The router's breaker on that shard's link opens and isolates
// it, so queries over surviving tiles keep their latency budget; updates
// whose cloaked regions touch the dead shard spill at the anonymizer and
// replay after the restart. With admission control the full spill queue
// sheds typed; without it the queue evicts acked updates and the run
// fails — the routed-tier twin of db_outage's load-bearing proof.
func shardKill() Scenario {
	return Scenario{
		Name: "shard_kill",
		Desc: "one shard of the routed tier killed mid-rush; breaker isolates it",
		SLO:  SLO{UpdateP99: updateBudget, QueryP99: queryBudget, MaxErrorRate: 0.001, RecoverWithin: 20 * time.Second},
		Tune: func(cfg *Config) {
			if cfg.Shards < 2 {
				cfg.Shards = 4
			}
			// Same undersized queue as db_outage: with only a quarter of the
			// tiles dark the spill inflow is smaller, so the queue must be
			// small for the full-queue policy to decide the verdict.
			cfg.ForwardQueue = 256
		},
		Run: func(e *Env) error {
			if err := e.Drive(Phase{Name: "baseline", Dur: 3 * time.Second, QueryPct: 10}); err != nil {
				return err
			}
			e.KillShard(1)
			// Queries keep flowing: most tiles survive, and the ones that
			// don't fail fast behind the open breaker (waived here).
			if err := e.Drive(Phase{Name: "degraded", Dur: 5 * time.Second, QueryPct: 10, AllowErrors: true}); err != nil {
				return err
			}
			if err := e.RestartShard(1); err != nil {
				return err
			}
			if err := e.AwaitRecovery(); err != nil {
				return err
			}
			return e.Drive(Phase{Name: "aftermath", Dur: 3 * time.Second, QueryPct: 10})
		},
	}
}

// slowLink: the anonymizer→database link degrades — every forward
// connection is bandwidth-capped and its first frames delayed, exercising
// the pause/bandwidth fault actions end to end. Updates must keep
// flowing; the spill queue absorbs what the link cannot carry.
func slowLink() Scenario {
	return Scenario{
		Name: "slow_link",
		Desc: "forward link bandwidth-capped and delayed; pipeline absorbs",
		SLO:  SLO{MaxErrorRate: 0.001},
		Link: func(conn int) []faults.Rule {
			// Every forward connection: first frame stalls mid-transfer,
			// the rest trickle under a byte-rate cap. The cap is per-write
			// and sleep-granularity bound, so small frames pay latency, not
			// starvation — enough to bite without stalling the seed drain.
			return []faults.Rule{
				{Op: faults.Write, Nth: 1, Action: faults.Pause, Delay: 20 * time.Millisecond},
				{Op: faults.Write, Nth: 2, Action: faults.Bandwidth, Rate: 1 << 20},
			}
		},
		Run: func(e *Env) error {
			if err := e.Drive(Phase{Name: "degraded", Dur: 8 * time.Second, QueryPct: 10}); err != nil {
				return err
			}
			return e.waitDrain(30 * time.Second)
		},
	}
}

// rollingRestart: the database is killed and replaced by a fresh process
// restored from its crash-safe snapshot — twice. The quiet users come
// back from disk, the movers from the replay queue; nobody is lost.
func rollingRestart() Scenario {
	return Scenario{
		Name: "rolling_restart",
		Desc: "two snapshot-restore restarts of the database under load",
		SLO:  SLO{MaxErrorRate: 0.001, RecoverWithin: 20 * time.Second},
		Run: func(e *Env) error {
			for round := 1; round <= 2; round++ {
				if err := e.Drive(Phase{Name: fmt.Sprintf("steady-%d", round), Dur: 3 * time.Second, QueryPct: 10}); err != nil {
					return err
				}
				if err := e.SaveSnapshot(); err != nil {
					return err
				}
				e.KillDB()
				if err := e.Drive(Phase{Name: fmt.Sprintf("gap-%d", round), Dur: 2 * time.Second, QueryPct: 0}); err != nil {
					return err
				}
				if err := e.RestartDB(true); err != nil {
					return err
				}
				if err := e.AwaitRecovery(); err != nil {
					return err
				}
			}
			return e.Drive(Phase{Name: "aftermath", Dur: 3 * time.Second, QueryPct: 10})
		},
	}
}

// queryFlood: a query storm tries to starve the update path. Admission
// control caps queries at half the in-flight budget, so updates keep
// landing and the storm is shed typed rather than queued unboundedly.
func queryFlood() Scenario {
	return Scenario{
		Name: "query_flood",
		Desc: "query storm; updates must keep flowing under admission",
		SLO:  SLO{UpdateP99: updateBudget, MaxErrorRate: 0.001},
		Tune: func(cfg *Config) {
			// Budget pinned to the worker count so the 90% query storm
			// actually overruns the query half-budget: queries shed typed
			// while updates, admitted against the full budget, keep landing.
			cfg.MaxInflight = cfg.Workers
		},
		Run: func(e *Env) error {
			if err := e.Drive(Phase{Name: "baseline", Dur: 3 * time.Second, QueryPct: 10}); err != nil {
				return err
			}
			if err := e.Drive(Phase{Name: "flood", Dur: 6 * time.Second, QueryPct: 90}); err != nil {
				return err
			}
			return e.Drive(Phase{Name: "calm", Dur: 3 * time.Second, QueryPct: 10})
		},
	}
}
