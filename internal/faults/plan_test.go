package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("r2:drop, w1:delay:50ms, r3:truncate:5, w4:reset")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: Read, Nth: 2, Action: Drop},
		{Op: Write, Nth: 1, Action: Delay, Delay: 50 * time.Millisecond},
		{Op: Read, Nth: 3, Action: Truncate, KeepBytes: 5},
		{Op: Write, Nth: 4, Action: Reset},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
}

func TestParseRulesEmpty(t *testing.T) {
	for _, s := range []string{"", "   "} {
		rules, err := ParseRules(s)
		if err != nil || len(rules) != 0 {
			t.Errorf("ParseRules(%q) = %v, %v, want empty", s, rules, err)
		}
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"r0:drop", "out of range"},
		{"r-3:drop", "out of range"},
		{"rX:drop", "bad frame index"},
		{"q1:drop", "direction must be r or w"},
		{"r1:explode", "unknown action"},
		{"r1:delay", "needs a duration"},
		{"r1:delay:fast", "bad delay"},
		{"r1:truncate", "needs a byte count"},
		{"r1:truncate:-1", "bad byte count"},
		{"r1:drop:now", "takes no argument"},
		{"drop", "want <dir><frame>"},
		{"r:drop", "too short"},
	}
	for _, c := range cases {
		if _, err := ParseRules(c.in); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseRules(%q) err = %v, want substring %q", c.in, err, c.wantSub)
		}
	}
}

func TestParsePlanEmpty(t *testing.T) {
	plan, err := ParsePlan("")
	if err != nil {
		t.Fatal(err)
	}
	for conn := 1; conn <= 5; conn++ {
		if rules := plan(conn); len(rules) != 0 {
			t.Errorf("empty plan gave conn %d rules %v", conn, rules)
		}
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("1=r2:drop;3=w1:delay:50ms,r4:reset")
	if err != nil {
		t.Fatal(err)
	}
	if rules := plan(1); len(rules) != 1 || rules[0] != (Rule{Op: Read, Nth: 2, Action: Drop}) {
		t.Errorf("conn 1 rules = %v", rules)
	}
	if rules := plan(2); len(rules) != 0 {
		t.Errorf("conn 2 rules = %v, want none", rules)
	}
	if rules := plan(3); len(rules) != 2 {
		t.Errorf("conn 3 rules = %v, want 2", rules)
	}
}

func TestParsePlanWildcard(t *testing.T) {
	plan, err := ParsePlan("*=w1:delay:5ms;2=r1:drop")
	if err != nil {
		t.Fatal(err)
	}
	if rules := plan(1); len(rules) != 1 || rules[0].Action != Delay {
		t.Errorf("wildcard conn 1 rules = %v", rules)
	}
	if rules := plan(2); len(rules) != 1 || rules[0].Action != Drop {
		t.Errorf("explicit conn 2 rules = %v", rules)
	}
	if rules := plan(7); len(rules) != 1 || rules[0].Action != Delay {
		t.Errorf("wildcard conn 7 rules = %v", rules)
	}
}

func TestParsePlanErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"0=r1:drop", "out of range"},
		{"-2=r1:drop", "out of range"},
		{"x=r1:drop", "bad connection index"},
		{"1=r0:drop", "out of range"},
		{"r1:drop", "want <conn>=<rules>"},
		{"1=r1:drop;1=r2:drop", "two clauses for connection 1"},
		{"*=r1:drop;*=r2:drop", "two wildcard clauses"},
	}
	for _, c := range cases {
		if _, err := ParsePlan(c.in); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParsePlan(%q) err = %v, want substring %q", c.in, err, c.wantSub)
		}
	}
}

// The plan function must hand out fresh rule slices: Conn.match mutates
// its rules in place to consume them, and two connections sharing one
// backing array would consume each other's faults.
func TestParsePlanAliasing(t *testing.T) {
	plan, err := ParsePlan("*=r1:drop")
	if err != nil {
		t.Fatal(err)
	}
	a, b := plan(1), plan(2)
	a[0].Nth = -1 // simulate consumption
	if b[0].Nth != 1 {
		t.Fatal("plan rule slices alias: consuming conn 1's rule consumed conn 2's")
	}
}

func TestParseRulesPauseAndBandwidth(t *testing.T) {
	rules, err := ParseRules("w2:pause:100ms, r1:bandwidth:1024")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: Write, Nth: 2, Action: Pause, Delay: 100 * time.Millisecond},
		{Op: Read, Nth: 1, Action: Bandwidth, Rate: 1024},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
}

func TestParseRulesPauseBandwidthErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"r1:pause", "needs a duration"},
		{"r1:pause:soon", "bad pause"},
		{"r1:pause:0s", "must be positive"},
		{"r1:pause:-5ms", "must be positive"},
		{"r1:bandwidth", "needs a bytes/sec"},
		{"r1:bandwidth:fast", "bad bytes/sec"},
		{"r1:bandwidth:0", "bad bytes/sec"},
		{"r1:bandwidth:-64", "bad bytes/sec"},
	}
	for _, c := range cases {
		if _, err := ParseRules(c.in); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseRules(%q) err = %v, want substring %q", c.in, err, c.wantSub)
		}
	}
}

// Every parseable rule must survive a parse → format → parse round trip
// bit-identically, so plans can be captured from a failing run and
// replayed from logs.
func TestRuleFormatRoundTrip(t *testing.T) {
	specs := []string{
		"r2:drop",
		"w4:reset",
		"w1:delay:50ms",
		"r3:truncate:5",
		"r3:truncate:0",
		"w2:pause:100ms",
		"r1:bandwidth:1024",
		"w7:bandwidth:1",
	}
	rules, err := ParseRules(strings.Join(specs, ","))
	if err != nil {
		t.Fatal(err)
	}
	text := FormatRules(rules)
	back, err := ParseRules(text)
	if err != nil {
		t.Fatalf("reparse of %q: %v", text, err)
	}
	if len(back) != len(rules) {
		t.Fatalf("round trip lost rules: %d -> %d", len(rules), len(back))
	}
	for i := range rules {
		if back[i] != rules[i] {
			t.Errorf("rule %d round-tripped %+v -> %q -> %+v", i, rules[i], text, back[i])
		}
	}
	if FormatRules(nil) != "" {
		t.Errorf("FormatRules(nil) = %q, want empty", FormatRules(nil))
	}
}
