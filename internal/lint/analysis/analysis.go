// Package analysis defines the analyzer plumbing of lbsvet, the repo's
// static-analysis suite. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so the
// passes read like standard vet passes and can migrate to the upstream
// framework wholesale if the module ever takes on the dependency. The
// build environment is hermetic (no module proxy), so the subset the four
// lbsvet passes need is implemented here on the standard library alone.
//
// Differences from the upstream framework, all deliberate:
//
//   - No Facts. The drivers in this repo load the whole module in one
//     process, so cross-package state travels through Pass.Prog (the loaded
//     program) and Prog.Cache instead of serialized facts.
//   - No Requires/ResultOf dependency graph; the four passes are
//     independent.
//   - Diagnostics carry only position, category and message.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/loader"
)

// Analyzer describes one analysis pass: its name (the category prefix of
// its diagnostics), documentation, and entry point.
type Analyzer struct {
	// Name identifies the pass in diagnostics and -passes selections. It
	// must be a valid identifier.
	Name string
	// Doc is the help text shown by lbsvet -help.
	Doc string
	// Run executes the pass against one package. Any value it returns is
	// discarded; reporting happens through Pass.Report.
	Run func(*Pass) (interface{}, error)
}

// Pass carries one package's syntax and type information to an Analyzer,
// plus the reporting callback. Exactly one Pass is constructed per
// (analyzer, package) pair.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole loaded program when the driver runs in
	// whole-program mode (the lbsvet standalone driver and the fixture
	// runner), nil in modular unit mode (go vet -vettool). Interprocedural
	// passes must degrade gracefully — or refuse to run — without it.
	Prog *loader.Program

	// Report emits one diagnostic.
	Report func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}
