package fixture

// helper carries a budget in a test file, where `go build` never
// compiles it: the budget could never be checked, so the directive
// itself is the defect.
//
//lint:hotpath allocs=1 // want "//lint:hotpath on test function helper: budgets apply to build-compiled code only"
func helper() *int {
	return new(int)
}
