package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/server"
)

// expIncremental regenerates the Section 5.3 incremental-evaluation study:
// a random-waypoint population streams updates through the anonymizer with
// and without incremental cloak maintenance, for a cheap space-dependent
// cloaker and an expensive data-dependent one.
func expIncremental(cfg benchConfig) {
	const ticks = 20
	fmt.Printf("%d users, random waypoint, %d ticks of updates, k=50\n\n", cfg.n, ticks)
	t := newTable("algorithm", "mode", "reused %", "updates/sec", "regions forwarded")
	for _, alg := range []anonymizer.Algorithm{anonymizer.AlgQuadtree, anonymizer.AlgNaive} {
		for _, inc := range []bool{false, true} {
			sim, err := mobility.NewWaypointSim(mobility.WaypointConfig{
				Population: mobility.PopulationSpec{
					N: cfg.n, World: world, Dist: mobility.Uniform, Seed: cfg.seed,
				},
				MinSpeed: 0.0005, MaxSpeed: 0.005,
			})
			if err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
			forwarded := 0
			anon, err := anonymizer.New(anonymizer.Config{
				World: world, Algorithm: alg, Incremental: inc,
				Forward: func(uint64, geo.Rect) error { forwarded++; return nil },
			})
			if err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
			prof := privacy.Constant(reqK(50))
			for _, u := range sim.Users() {
				anon.Register(u.ID, prof)
				if _, err := anon.Update(u.ID, u.Loc); err != nil {
					log.Fatalf("lbsbench: %v", err)
				}
			}
			forwarded = 0 // count the steady state only
			t0 := time.Now()
			for tick := 0; tick < ticks; tick++ {
				sim.Tick()
				for _, u := range sim.Users() {
					if _, err := anon.Update(u.ID, u.Loc); err != nil {
						log.Fatalf("lbsbench: %v", err)
					}
				}
			}
			elapsed := time.Since(t0)
			st := anon.Stats()
			streamed := cfg.n * ticks
			mode := "recompute"
			if inc {
				mode = "incremental"
			}
			t.row(alg.String(), mode,
				100*float64(st.Reused)/float64(st.Updates),
				float64(streamed)/elapsed.Seconds(),
				forwarded)
		}
	}
	t.flush()
	fmt.Println("\nreading: incremental evaluation removes ~95% of downstream region")
	fmt.Println("messages for every algorithm, and for the expensive data-dependent")
	fmt.Println("cloaker it also multiplies update throughput; the space-dependent")
	fmt.Println("descent is already near memory speed, so there the win is traffic.")
}

// expShared regenerates the Section 5.3 shared-execution study: batch
// cloaking of a full population in one pass vs per-user cloaking, plus the
// shared continuous-query engine under update load.
func expShared(cfg benchConfig) {
	// A pyramid whose bottom level matches the anonymization granularity is
	// what makes sharing productive: with 2^6×2^6 = 4096 bottom cells many
	// users in a clustered population fall into the same cell and reuse one
	// descent.
	p := buildPopulationH(cfg.n, mobility.Gaussian, cfg.seed, 7)
	fmt.Printf("%d users (gaussian clusters), pyramid height 7\n\n", cfg.n)

	t := newTable("k", "per-user time", "batch time", "shared hits %", "distinct regions")
	for _, k := range []int{10, 50, 200} {
		q := &cloak.Quadtree{Pyr: p.pyr}
		reqs := make([]cloak.Request, len(p.pts))
		for i, loc := range p.pts {
			reqs[i] = cloak.Request{ID: uint64(i + 1), Loc: loc, Req: reqK(k)}
		}
		t0 := time.Now()
		for _, r := range reqs {
			q.Cloak(r.ID, r.Loc, r.Req)
		}
		perUser := time.Since(t0)

		b := &cloak.BatchQuadtree{Pyr: p.pyr}
		t0 = time.Now()
		results, hits := b.CloakAll(reqs)
		batch := time.Since(t0)

		distinct := map[geo.Rect]bool{}
		for _, r := range results {
			distinct[r.Region] = true
		}
		t.row(k, perUser, batch,
			100*float64(hits)/float64(len(reqs)), len(distinct))
	}
	t.flush()
	fmt.Println("\nreading: most requests are served from a previously computed")
	fmt.Println("descent, and the whole population collapses to a few hundred")
	fmt.Println("distinct regions — one shared computation (and one downstream")
	fmt.Println("message) per region instead of per user.")

	// Continuous-query shared execution: maintained answers vs re-running
	// every query on every update.
	fmt.Println("\ncontinuous count queries under update load:")
	srv, _ := server.New(server.Config{World: world})
	const numQueries = 100
	for i := 0; i < numQueries; i++ {
		c := geo.Pt(p.pts[i*7%len(p.pts)].X, p.pts[i*7%len(p.pts)].Y)
		if _, err := srv.RegisterContinuousCount(geo.RectAround(c, 0.05).Clip(world)); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
	}
	q := &cloak.Quadtree{Pyr: p.pyr}
	regions := make([]geo.Rect, len(p.pts))
	for i, loc := range p.pts {
		regions[i] = q.Cloak(uint64(i+1), loc, reqK(50)).Region
	}
	const updates = 20000
	t0 := time.Now()
	for i := 0; i < updates; i++ {
		uid := uint64(i%len(p.pts)) + 1
		if err := srv.UpdatePrivate(uid, regions[uid-1]); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
	}
	incElapsed := time.Since(t0)

	// Naive alternative: run every standing query from scratch after each
	// update batch (measured per 1000 updates to keep the run short).
	t0 = time.Now()
	const naiveRounds = 10
	for r := 0; r < naiveRounds; r++ {
		for i := 0; i < numQueries; i++ {
			c := geo.Pt(p.pts[i*7%len(p.pts)].X, p.pts[i*7%len(p.pts)].Y)
			if _, err := srv.PublicRangeCount(server.PublicRangeCountQuery{
				Query: geo.RectAround(c, 0.05).Clip(world),
			}); err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
		}
	}
	naivePerRound := time.Since(t0) / naiveRounds

	t2 := newTable("approach", "cost")
	t2.row(fmt.Sprintf("incremental: %d updates × %d standing queries", updates, numQueries),
		fmt.Sprintf("%v total (%.2fµs/update)", incElapsed.Round(time.Millisecond),
			float64(incElapsed.Microseconds())/updates))
	t2.row("re-evaluate all queries once", naivePerRound)
	t2.flush()
	fmt.Println("\nreading: the incremental engine charges each update only for the")
	fmt.Println("queries it touches; re-running the full query set per refresh costs")
	fmt.Println("orders of magnitude more at realistic update rates.")
}

// expEndToEnd regenerates the Figure 1 architecture as a live TCP
// deployment and measures end-to-end latencies of each flow, then asks the
// daemons for their own request histograms (MsgMetrics) so the client and
// server views of the same latencies sit side by side.
func expEndToEnd(cfg benchConfig) {
	dbReg := obs.NewRegistry()
	srv, err := server.New(server.Config{World: world, Metrics: dbReg})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	quiet := func(string, ...interface{}) {}
	dbSvc, err := protocol.ServeDatabase("127.0.0.1:0", srv, quiet, protocol.WithMetrics(dbReg))
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	defer dbSvc.Close()
	fwd, err := protocol.DialDatabase(dbSvc.Addr(), protocol.WithCallTimeout(30*time.Second))
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	defer fwd.Close()
	anonReg := obs.NewRegistry()
	anon, err := anonymizer.New(anonymizer.Config{World: world, Forward: fwd.UpdatePrivate, Metrics: anonReg})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	anonSvc, err := protocol.ServeAnonymizer("127.0.0.1:0", anon, quiet, protocol.WithMetrics(anonReg))
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	defer anonSvc.Close()
	user, err := protocol.DialAnonymizer(anonSvc.Addr(), protocol.WithCallTimeout(30*time.Second))
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	defer user.Close()
	admin, err := protocol.DialDatabase(dbSvc.Addr(), protocol.WithCallTimeout(30*time.Second))
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	defer admin.Close()

	// Load data.
	n := cfg.n
	if n > 5000 {
		n = 5000 // keep the TCP experiment snappy
	}
	objPts, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 2000, World: world, Dist: mobility.Uniform, Seed: cfg.seed + 1,
	})
	objs := make([]server.PublicObject, len(objPts))
	for i, p := range objPts {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "gas", Loc: p}
	}
	if err := admin.LoadStationary(objs); err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	userPts, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: n, World: world, Dist: mobility.Uniform, Seed: cfg.seed,
	})
	prof := privacy.Constant(reqK(25))
	for i, p := range userPts {
		user.Register(uint64(i+1), prof)
		if _, err := user.Update(uint64(i+1), p); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
	}

	measure := func(name string, iters int, f func(i int) error) []interface{} {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(i); err != nil {
				log.Fatalf("lbsbench: %s: %v", name, err)
			}
		}
		per := time.Since(t0) / time.Duration(iters)
		return []interface{}{name, iters, per, float64(time.Second) / float64(per)}
	}

	t := newTable("flow", "iters", "latency", "ops/sec")
	t.row(measure("location update (user→anon→db)", 2000, func(i int) error {
		id := uint64(i%n) + 1
		_, err := user.Update(id, userPts[id-1])
		return err
	})...)
	t.row(measure("private NN (cloak+query+refine)", 500, func(i int) error {
		id := uint64(i%n) + 1
		res, err := user.CloakQuery(id, userPts[id-1])
		if err != nil {
			return err
		}
		nn, err := admin.PrivateNN(server.PrivateNNQuery{Region: res.Region, Class: "gas"})
		if err != nil {
			return err
		}
		_, _ = server.RefineNN(userPts[id-1], nn.Candidates)
		return nil
	})...)
	t.row(measure("public count (admin)", 500, func(i int) error {
		_, err := admin.PublicCount(geo.R(0.25, 0.25, 0.75, 0.75))
		return err
	})...)
	t.row(measure("public NN / e-coupon (admin)", 200, func(i int) error {
		_, err := admin.PublicNN(server.PublicNNQuery{
			From: userPts[i%n], Samples: 500, Seed: uint64(i + 1),
		})
		return err
	})...)
	t.flush()
	fmt.Printf("\nthree-tier deployment on loopback TCP: anonymizer %s, database %s\n",
		anonSvc.Addr(), dbSvc.Addr())

	// The daemons' own per-message-type request histograms, fetched over the
	// wire — the server-side complement of the client-side table above.
	t2 := newTable("tier", "message", "count", "p50", "p95", "p99")
	for _, tier := range []struct {
		name  string
		fetch func() ([]obs.MetricSnapshot, error)
	}{
		{"anonymizer", user.Metrics},
		{"database", admin.Metrics},
	} {
		series, err := tier.fetch()
		if err != nil {
			log.Printf("lbsbench: %s metrics: %v", tier.name, err)
			continue
		}
		for _, s := range series {
			if s.Name != "proto_request_seconds" || s.Hist.Count() == 0 {
				continue
			}
			msg := ""
			for _, l := range s.Labels {
				if l.Key == "type" {
					msg = l.Value
				}
			}
			if strings.HasPrefix(msg, "metrics") {
				continue // the fetch itself
			}
			t2.row(tier.name, msg, s.Hist.Count(),
				s.Hist.QuantileDuration(50).Round(time.Microsecond),
				s.Hist.QuantileDuration(95).Round(time.Microsecond),
				s.Hist.QuantileDuration(99).Round(time.Microsecond))
		}
	}
	fmt.Println("\ndaemon-side request latency (proto_request_seconds):")
	t2.flush()
}
