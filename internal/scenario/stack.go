package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/server"
)

// stack is the in-process three-tier deployment under test: a real
// database service and a real anonymizer service on loopback TCP, wired
// exactly as the production daemons wire themselves (spill queue, lazy
// redial, client metrics in the daemon registry), plus the kill/restart
// levers the outage scenarios pull.
type stack struct {
	world geo.Rect
	cfg   Config

	srv    *server.Server
	dbSvc  *protocol.Service
	dbAddr string
	dbReg  *obs.Registry

	fwd     *protocol.DatabaseClient
	anon    *anonymizer.Anonymizer
	anonSvc *protocol.Service
	anonReg *obs.Registry

	snapDir string
}

const stackCallTimeout = 2 * time.Second

// newStack boots the tiers. link, when non-nil, is a fault plan installed
// on the anonymizer→database forward connections (the slow-link dial).
func newStack(cfg Config, link func(conn int) []faults.Rule) (*stack, error) {
	st := &stack{world: geo.R(0, 0, 1, 1), cfg: cfg}

	st.dbReg = obs.NewRegistry()
	srv, err := server.New(server.Config{World: st.world, Metrics: st.dbReg})
	if err != nil {
		return nil, err
	}
	st.srv = srv
	st.dbSvc, err = st.serveDB("127.0.0.1:0", srv)
	if err != nil {
		return nil, err
	}
	st.dbAddr = st.dbSvc.Addr()

	st.anonReg = obs.NewRegistry()
	fwdOpts := []protocol.DialOption{
		protocol.WithLazyDial(),
		protocol.WithCallTimeout(stackCallTimeout),
		protocol.WithClientMetrics(st.anonReg),
		protocol.WithRetryBackoff(5*time.Millisecond, 100*time.Millisecond),
	}
	if link != nil {
		fwdOpts = append(fwdOpts, protocol.WithDialer(faults.Dialer(link)))
	}
	st.fwd, err = protocol.DialDatabase(st.dbAddr, fwdOpts...)
	if err != nil {
		st.Close()
		return nil, err
	}
	st.anon, err = anonymizer.New(anonymizer.Config{
		World:               st.world,
		Forward:             st.fwd.UpdatePrivate,
		ForwardCtx:          st.fwd.UpdatePrivateCtx,
		ForwardQueue:        cfg.ForwardQueue,
		ForwardBackpressure: cfg.Admission,
		ForwardRetryBase:    10 * time.Millisecond,
		ForwardRetryMax:     200 * time.Millisecond,
		Metrics:             st.anonReg,
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	anonOpts := []protocol.Option{protocol.WithMetrics(st.anonReg)}
	if cfg.Admission {
		anonOpts = append(anonOpts, protocol.WithAdmission(cfg.MaxInflight))
	}
	st.anonSvc, err = protocol.ServeAnonymizer("127.0.0.1:0", st.anon, cfg.Logf, anonOpts...)
	if err != nil {
		st.Close()
		return nil, err
	}

	st.snapDir, err = os.MkdirTemp("", "lbssoak-snap-")
	if err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

func (st *stack) serveDB(addr string, srv *server.Server) (*protocol.Service, error) {
	opts := []protocol.Option{protocol.WithMetrics(st.dbReg)}
	if st.cfg.Admission {
		opts = append(opts, protocol.WithAdmission(st.cfg.MaxInflight))
	}
	return protocol.ServeDatabase(addr, srv, st.cfg.Logf, opts...)
}

// killDB stops the database service, keeping its address for a later
// restart. The server state stays in memory (a plain outage); rolling
// restarts discard it and recover from the snapshot instead.
func (st *stack) killDB() {
	if st.dbSvc != nil {
		st.dbSvc.Close()
		st.dbSvc = nil
	}
}

// restartDB rebinds the database address. fromSnapshot discards the old
// process state and restores a brand-new server from the latest snapshot
// file — the rolling-restart path; otherwise the surviving in-memory
// server simply starts listening again.
func (st *stack) restartDB(fromSnapshot bool) error {
	if st.dbSvc != nil {
		return fmt.Errorf("scenario: database already running")
	}
	if fromSnapshot {
		srv, err := server.New(server.Config{World: st.world, Metrics: obs.NewRegistry()})
		if err != nil {
			return err
		}
		if err := srv.LoadSnapshot(st.snapPath()); err != nil {
			return fmt.Errorf("scenario: restore snapshot: %w", err)
		}
		st.srv = srv
	}
	svc, err := st.serveDB(st.dbAddr, st.srv)
	if err != nil {
		return fmt.Errorf("scenario: rebind %s: %w", st.dbAddr, err)
	}
	st.dbSvc = svc
	return nil
}

func (st *stack) snapPath() string { return filepath.Join(st.snapDir, "lbsd.snap") }

// saveSnapshot persists the current database state — taken right before a
// rolling restart kills the process.
func (st *stack) saveSnapshot() error { return st.srv.SaveSnapshot(st.snapPath()) }

func (st *stack) Close() {
	if st.anonSvc != nil {
		st.anonSvc.Close()
	}
	if st.anon != nil {
		st.anon.Close()
	}
	if st.fwd != nil {
		st.fwd.Close()
	}
	if st.dbSvc != nil {
		st.dbSvc.Close()
	}
	if st.snapDir != "" {
		os.RemoveAll(st.snapDir)
	}
}
