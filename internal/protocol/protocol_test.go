package protocol

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/privacy"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7).U16(65000).U32(4000000000).U64(1 << 60).F64(3.14159).
		Str("hello").Point(geo.Pt(1.5, -2.5)).Rect(geo.R(0, 0, 1, 1))
	d := NewDecoder(e.Bytes())
	if d.U8() != 7 || d.U16() != 65000 || d.U32() != 4000000000 || d.U64() != 1<<60 {
		t.Fatal("integer round trip")
	}
	if d.F64() != 3.14159 {
		t.Fatal("float round trip")
	}
	if d.Str() != "hello" {
		t.Fatal("string round trip")
	}
	if !d.Point().Eq(geo.Pt(1.5, -2.5)) {
		t.Fatal("point round trip")
	}
	if !d.Rect().Eq(geo.R(0, 0, 1, 1)) {
		t.Fatal("rect round trip")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestDecoderShortPayload(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U32()
	if !errors.Is(d.Err(), ErrShortPayload) {
		t.Fatalf("err = %v", d.Err())
	}
	// Sticky: further reads keep the error and return zero values.
	if d.U64() != 0 || d.Str() != "" || d.Err() == nil {
		t.Fatal("decoder error not sticky")
	}
}

func TestSpecialFloats(t *testing.T) {
	var e Encoder
	e.F64(math.Inf(1)).F64(math.Inf(-1))
	d := NewDecoder(e.Bytes())
	if !math.IsInf(d.F64(), 1) || !math.IsInf(d.F64(), -1) {
		t.Fatal("infinities did not survive")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgUpdate, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != MsgUpdate || string(payload) != "payload" {
		t.Fatalf("frame = %d %q %v", typ, payload, err)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgStats, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != MsgStats || len(payload) != 0 {
		t.Fatalf("empty frame = %d %q %v", typ, payload, err)
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	// Length 0 is invalid (no type byte).
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Oversized length rejected before allocation.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestProfileRoundTrip(t *testing.T) {
	prof := privacy.PaperExample()
	var e Encoder
	encodeProfile(&e, prof)
	got, err := decodeProfile(NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := prof.Entries(), got.Entries()
	if len(a) != len(b) {
		t.Fatalf("entry counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	f := func(k uint16, flags uint8, x0, y0, x1, y1 float64) bool {
		for _, v := range []float64{x0, y0, x1, y1} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		res := cloak.Result{
			Region:           geo.R(x0, y0, x1, y1),
			K:                int(k),
			SatisfiedK:       flags&1 != 0,
			SatisfiedMinArea: flags&2 != 0,
			SatisfiedMaxArea: flags&4 != 0,
			Reused:           flags&8 != 0,
		}
		got := decodeResult(NewDecoder(encodeResult(res)))
		return got == res
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServiceUnknownType(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, _ []byte) ([]byte, error) {
		return nil, errors.New("nope")
	}, func(string, ...interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Dial(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(99, nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("remote error not surfaced: %v", err)
	}
	// The connection survives an application error.
	if _, err := c.Call(98, nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("second call after error: %v", err)
	}
}

func TestServiceEcho(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, payload []byte) ([]byte, error) {
		return payload, nil
	}, func(string, ...interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Dial(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(5, []byte("ping"))
	if err != nil || string(resp) != "ping" {
		t.Fatalf("echo = %q, %v", resp, err)
	}
}

func TestServiceCloseIdempotent(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(context.Context, byte, []byte) ([]byte, error) { return nil, nil },
		func(string, ...interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

// Property: any sequence of primitive writes decodes back verbatim.
func TestPropEncodeDecodeSequences(t *testing.T) {
	type item struct {
		kind byte
		u    uint64
		f    float64
		s    string
	}
	f := func(kinds []byte, us []uint64, fs []float64, ss []string) bool {
		var items []item
		for i, k := range kinds {
			it := item{kind: k % 5}
			if len(us) > 0 {
				it.u = us[i%len(us)]
			}
			if len(fs) > 0 {
				it.f = fs[i%len(fs)]
				if it.f != it.f { // NaN never round-trips comparably
					it.f = 0
				}
			}
			if len(ss) > 0 {
				it.s = ss[i%len(ss)]
				if len(it.s) > 1000 {
					it.s = it.s[:1000]
				}
			}
			items = append(items, it)
		}
		var e Encoder
		for _, it := range items {
			switch it.kind {
			case 0:
				e.U8(byte(it.u))
			case 1:
				e.U16(uint16(it.u))
			case 2:
				e.U32(uint32(it.u))
			case 3:
				e.U64(it.u)
			case 4:
				e.F64(it.f)
			}
			e.Str(it.s)
		}
		d := NewDecoder(e.Bytes())
		for _, it := range items {
			switch it.kind {
			case 0:
				if d.U8() != byte(it.u) {
					return false
				}
			case 1:
				if d.U16() != uint16(it.u) {
					return false
				}
			case 2:
				if d.U32() != uint32(it.u) {
					return false
				}
			case 3:
				if d.U64() != it.u {
					return false
				}
			case 4:
				if d.F64() != it.f {
					return false
				}
			}
			if d.Str() != it.s {
				return false
			}
		}
		return d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
