package geo

import "math"

// MinDist returns the minimum Euclidean distance between p and any point of
// r. It is zero when p lies inside r. MinDist is the classic R-tree search
// lower bound and the basis of the private nearest-neighbor filter.
func MinDist(p Point, r Rect) float64 {
	return math.Sqrt(MinDist2(p, r))
}

// MinDist2 returns the squared minimum distance between p and r.
func MinDist2(p Point, r Rect) float64 {
	var dx, dy float64
	switch {
	case p.X < r.Min.X:
		dx = r.Min.X - p.X
	case p.X > r.Max.X:
		dx = p.X - r.Max.X
	}
	switch {
	case p.Y < r.Min.Y:
		dy = r.Min.Y - p.Y
	case p.Y > r.Max.Y:
		dy = p.Y - r.Max.Y
	}
	return dx*dx + dy*dy
}

// MaxDist returns the maximum Euclidean distance between p and any point of
// r — the distance from p to the farthest corner of r.
func MaxDist(p Point, r Rect) float64 {
	return math.Sqrt(MaxDist2(p, r))
}

// MaxDist2 returns the squared maximum distance between p and r.
func MaxDist2(p Point, r Rect) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return dx*dx + dy*dy
}

// MinDistRects returns the minimum distance between any point of r and any
// point of s. It is zero when the rectangles intersect.
func MinDistRects(r, s Rect) float64 {
	return math.Sqrt(MinDistRects2(r, s))
}

// MinDistRects2 returns the squared minimum distance between r and s.
func MinDistRects2(r, s Rect) float64 {
	var dx, dy float64
	switch {
	case s.Max.X < r.Min.X:
		dx = r.Min.X - s.Max.X
	case r.Max.X < s.Min.X:
		dx = s.Min.X - r.Max.X
	}
	switch {
	case s.Max.Y < r.Min.Y:
		dy = r.Min.Y - s.Max.Y
	case r.Max.Y < s.Min.Y:
		dy = s.Min.Y - r.Max.Y
	}
	return dx*dx + dy*dy
}

// MaxDistRects returns the maximum distance between any point of r and any
// point of s — achieved at a pair of opposing corners.
func MaxDistRects(r, s Rect) float64 {
	return math.Sqrt(MaxDistRects2(r, s))
}

// MaxDistRects2 returns the squared maximum distance between r and s.
func MaxDistRects2(r, s Rect) float64 {
	dx := math.Max(r.Max.X-s.Min.X, s.Max.X-r.Min.X)
	dy := math.Max(r.Max.Y-s.Min.Y, s.Max.Y-r.Min.Y)
	return dx*dx + dy*dy
}

// MinMaxDist returns the paper-relevant pruning bound for nearest-neighbor
// search over a cloaked region q against a candidate region c: the smallest,
// over all points x of q, of the largest distance from x to c. Any region d
// with MinDistRects(q, d) > MinMaxDist(q, c) can never contain the nearest
// private object for any location of the query inside q, because c is
// guaranteed closer. For the common case where q is a point (public NN query
// issued from an exact location, Figure 6b) this reduces to MaxDist(q, c).
//
// The bound is exact: MaxDist2(x, c) is separable into per-axis terms
// max(|x−cMin|, |x−cMax|)², each a V-shaped function of one coordinate
// minimized at the midpoint of c's extent on that axis, so the minimum
// over the rectangle q is attained at the clamp of c's center into q.
func MinMaxDist(q, c Rect) float64 {
	return MaxDist(q.ClampPoint(c.Center()), c)
}
