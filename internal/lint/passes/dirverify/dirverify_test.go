package dirverify_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/passes/dirverify"
)

func TestStale(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	linttest.Run(t, "testdata/src/stale", dirverify.Analyzer)
}
