// Package fixture is the privleak negative case: every exact-location
// flow crosses a declared boundary, so the pass must stay silent.
package fixture

import (
	"log"

	"repro/internal/geo"
	"repro/internal/protocol"
)

// exact models the wire-ingress decode of a user's exact location.
//
//lint:source fixture wire ingress
func exact() geo.Point { return geo.Point{X: 1, Y: 2} }

func cloak(p geo.Point) geo.Rect {
	return geo.R(p.X-1, p.Y-1, p.X+1, p.Y+1)
}

func cloaked(e *protocol.Encoder) {
	loc := exact()
	r := cloak(loc) //lint:sanitized fixture boundary: k-anonymous rect replaces the point
	e.Rect(r)
}

// sendOwn is the user-side client encoding the user's own location
// toward the trusted anonymizer tier.
//
//lint:trusted-ingress fixture user-side client
func sendOwn(e *protocol.Encoder) {
	e.Point(exact())
}

func logsNothingPrivate(id uint64) {
	log.Printf("user %d connected", id)
}

func publicPoint(e *protocol.Encoder) {
	e.Point(geo.Point{X: 3, Y: 4})
}
