package cloak

import (
	"math"

	"repro/internal/geo"
	"repro/internal/privacy"
)

// Naive is the data-dependent cloaker of Figure 3a: it expands a square
// centered at the exact user location equally in all directions until the
// privacy requirement is satisfied. It is the paper's strawman — the
// region's center *is* the exact location, so a center-point attack
// recovers the user exactly (see package attack).
type Naive struct {
	Pop Population
}

// Name implements Cloaker.
func (n *Naive) Name() string { return "naive" }

// Cloak implements Cloaker. It binary-searches the smallest centered square
// (clipped to the world) that contains at least req.K users and has area at
// least req.MinArea; Amax is checked last and only flagged, because k is
// the paper's hard minimum requirement.
func (n *Naive) Cloak(id uint64, loc geo.Point, req privacy.Requirement) Result {
	world := n.Pop.World()
	// Half-width needed for the area constraint alone (unclipped square).
	minHalf := math.Sqrt(req.MinArea) / 2

	// The largest meaningful half-width covers the whole world from loc.
	maxHalf := math.Max(
		math.Max(loc.X-world.Min.X, world.Max.X-loc.X),
		math.Max(loc.Y-world.Min.Y, world.Max.Y-loc.Y),
	)

	region := func(h float64) geo.Rect {
		return geo.RectAround(loc, h).Clip(world)
	}
	satisfied := func(h float64) bool {
		r := region(h)
		return n.Pop.CountIn(r) >= req.K && r.Area() >= req.MinArea
	}

	if !satisfied(maxHalf) {
		// Even the whole world misses a constraint: best effort.
		r := region(maxHalf)
		return finish(r, n.Pop.CountIn(r), req)
	}

	// Exponential probe up from the area-driven lower bound, then bisect.
	lo, hi := minHalf, maxHalf
	if lo > hi {
		lo = hi
	}
	if !satisfied(lo) {
		probe := lo
		if probe == 0 {
			probe = maxHalf / 1024
		}
		for probe < hi && !satisfied(probe) {
			lo = probe
			probe *= 2
		}
		if probe < hi {
			hi = probe
		}
		// Invariant: !satisfied(lo) && satisfied(hi).
		const iters = 48
		for i := 0; i < iters && hi-lo > 1e-12*maxHalf; i++ {
			mid := (lo + hi) / 2
			if satisfied(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
	} else {
		hi = lo
	}

	r := region(hi)
	return finish(r, n.Pop.CountIn(r), req)
}
