package server

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/prob"
)

// PublicRangeCountQuery is a public query over private data (Figure 6a):
// "how many mobile users are inside this rectangle?". The querier knows
// its exact rectangle; the server knows only cloaked regions.
type PublicRangeCountQuery struct {
	Query geo.Rect
}

// PublicRangeCountResult bundles the paper's answer formats plus the naive
// strawman for comparison.
type PublicRangeCountResult struct {
	// Answer carries the expected value, the interval [Lo,Hi], and the PDF.
	Answer prob.CountAnswer
	// NaiveCount treats every cloaked region as a solid object and counts
	// all regions overlapping the query — the paper's "totally inaccurate"
	// baseline (it would report 5 in Figure 6a where the truth is ≈2.7).
	NaiveCount int
}

// validate checks the query parameters (shared with BatchQuery).
func (q PublicRangeCountQuery) validate() error {
	if !q.Query.Valid() {
		return fmt.Errorf("server: invalid query %v", q.Query)
	}
	return nil
}

// PublicRangeCount evaluates the query. The region index prunes users whose
// cloaked regions cannot intersect the query, so the cost scales with the
// overlapping population rather than with everyone (the full-scan variant
// is kept as publicRangeCountScan for the equivalence test and ablation).
func (s *Server) PublicRangeCount(q PublicRangeCountQuery) (PublicRangeCountResult, error) {
	if err := q.validate(); err != nil {
		return PublicRangeCountResult{}, err
	}
	s.met.publicCountQs.Inc()
	defer s.met.latPublicCount.Since(time.Now())
	s.mu.RLock()
	ids := s.privIdx.Query(q.Query, nil)
	probs := make([]float64, 0, len(ids))
	naive := 0
	for _, id := range ids {
		p := prob.Overlap(s.private[id], q.Query)
		if p > 0 {
			probs = append(probs, p)
			naive++
		}
	}
	s.mu.RUnlock()
	// Sort for determinism: map/bucket order must not influence the PDF's
	// floating-point accumulation.
	sort.Float64s(probs)
	return PublicRangeCountResult{Answer: prob.RangeCount(probs), NaiveCount: naive}, nil
}

// UserProb pairs a user id with her region's overlap probability for one
// query rectangle — the shard-local half of a probabilistic count.
type UserProb struct {
	ID uint64
	P  float64
}

// PublicCountProbs evaluates the partial public count this server can
// answer: the (id, probability) pairs of its resident users with positive
// overlap, sorted by id. The routing tier gathers the pairs from every
// shard owning a tile of the query, deduplicates replicated users (a
// replica stores the same region, so its probability is bit-identical),
// and folds the probabilities through the same sort-then-accumulate rule
// PublicRangeCount applies — producing a bit-identical PDF.
func (s *Server) PublicCountProbs(q PublicRangeCountQuery) ([]UserProb, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	s.met.publicCountQs.Inc()
	defer s.met.latPublicCount.Since(time.Now())
	s.mu.RLock()
	ids := s.privIdx.Query(q.Query, nil)
	pairs := make([]UserProb, 0, len(ids))
	for _, id := range ids {
		if p := prob.Overlap(s.private[id], q.Query); p > 0 {
			pairs = append(pairs, UserProb{ID: id, P: p})
		}
	}
	s.mu.RUnlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].ID < pairs[j].ID })
	return pairs, nil
}

// CombineCountProbs folds deduplicated per-user probabilities into the
// final count answer, exactly as PublicRangeCount would: probabilities
// are sorted before accumulation so partition order cannot influence the
// floating-point result. The pairs must already be unique per user.
func CombineCountProbs(pairs []UserProb) PublicRangeCountResult {
	probs := make([]float64, len(pairs))
	for i, up := range pairs {
		probs[i] = up.P
	}
	sort.Float64s(probs)
	return PublicRangeCountResult{Answer: prob.RangeCount(probs), NaiveCount: len(pairs)}
}

// PublicRangeCountScanForBench exposes the unindexed baseline for the
// region-index ablation (experiment E15). Production callers use
// PublicRangeCount.
func (s *Server) PublicRangeCountScanForBench(q PublicRangeCountQuery) (PublicRangeCountResult, error) {
	return s.publicRangeCountScan(q)
}

// publicRangeCountScan is the unindexed baseline.
func (s *Server) publicRangeCountScan(q PublicRangeCountQuery) (PublicRangeCountResult, error) {
	if !q.Query.Valid() {
		return PublicRangeCountResult{}, fmt.Errorf("server: invalid query %v", q.Query)
	}
	records := s.privateSnapshot()
	probs := make([]float64, 0, len(records))
	naive := 0
	for _, rec := range records {
		p := prob.Overlap(rec.Region, q.Query)
		if p > 0 {
			probs = append(probs, p)
			naive++
		}
	}
	sort.Float64s(probs)
	return PublicRangeCountResult{Answer: prob.RangeCount(probs), NaiveCount: naive}, nil
}

// PublicNNQuery is a public nearest-neighbor query over private data
// (Figure 6b): a public object (e.g. a gas station) asks for its nearest
// mobile user, e.g. to send an e-coupon.
type PublicNNQuery struct {
	From geo.Point
	// Samples controls the Monte-Carlo probability estimation
	// (default 2000).
	Samples int
	// Seed makes the estimate reproducible (default derived from From).
	Seed uint64
}

// PublicNNResult carries all three answer formats of Figure 6b.
type PublicNNResult struct {
	// Candidates are the users that could be nearest, with probabilities
	// (the PDF format), sorted by decreasing probability.
	Candidates []prob.NNProb
	// Best is the single most likely nearest user.
	Best prob.NNProb
	// CandidateRegions maps candidate ids to their cloaked regions, for
	// clients that need the geometry.
	CandidateRegions map[uint64]geo.Rect
	// PrunedCount is how many users min–max dominance eliminated (targets
	// A, B, C in Figure 6b).
	PrunedCount int
}

// PublicNN evaluates the query. Candidate selection follows Figure 6b
// exactly: with T = min over users of MaxDist(From, region), every user
// whose MinDist exceeds T is eliminated — some user is certainly closer
// wherever the eliminated user actually is (invariant I8). Probabilities
// for the survivors are estimated by seeded Monte Carlo under the uniform-
// position assumption.
func (s *Server) PublicNN(q PublicNNQuery) (PublicNNResult, error) {
	if !q.From.Valid() {
		return PublicNNResult{}, fmt.Errorf("server: invalid query point %v", q.From)
	}
	if !s.world.Contains(q.From) {
		return PublicNNResult{}, fmt.Errorf("server: query point %v outside world", q.From)
	}
	s.met.publicNNQs.Inc()
	defer s.met.latPublicNN.Since(time.Now())
	records := s.privateSnapshot()
	if len(records) == 0 {
		return PublicNNResult{CandidateRegions: map[uint64]geo.Rect{}}, nil
	}

	bound := math.Inf(1)
	for _, rec := range records {
		if d := geo.MaxDist2(q.From, rec.Region); d < bound {
			bound = d
		}
	}
	var cands []prob.Candidate
	regions := make(map[uint64]geo.Rect)
	for _, rec := range records {
		if geo.MinDist2(q.From, rec.Region) <= bound {
			cands = append(cands, prob.Candidate{ID: rec.ID, Region: rec.Region})
			regions[rec.ID] = rec.Region
		}
	}

	samples := q.Samples
	if samples <= 0 {
		samples = 2000
	}
	seed := q.Seed
	if seed == 0 {
		seed = nnSeed(q.From)
	}
	probs := prob.NNProbabilities(q.From, cands, samples, seed)
	sort.Slice(probs, func(i, j int) bool {
		if probs[i].Prob != probs[j].Prob {
			return probs[i].Prob > probs[j].Prob
		}
		return probs[i].ID < probs[j].ID
	})
	res := PublicNNResult{
		Candidates:       probs,
		CandidateRegions: regions,
		PrunedCount:      len(records) - len(cands),
	}
	if best, ok := prob.Best(probs); ok {
		res.Best = best
	}
	return res, nil
}

// nnSeed derives the default Monte-Carlo seed from the query point by
// folding both coordinates through a splitmix64-style finalizer. A plain
// XOR of the raw bits is degenerate: every point with X == Y (the whole
// diagonal, origin included) cancels to seed 0 and silently shares one
// sample sequence. Sequential folding is asymmetric in the coordinates,
// so distinct points — diagonal or not — draw distinct sequences.
func nnSeed(p geo.Point) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	h = mix64(h ^ math.Float64bits(p.X))
	h = mix64(h ^ math.Float64bits(p.Y))
	return h
}

// mix64 is the splitmix64 finalizer: a cheap bijective bit mixer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PrivateCountQuery is the reduction the paper mentions for private queries
// over private data: an anonymized user asks how many other mobile users
// are within Radius of her — the server sees only her cloaked region, so
// the effective query area is the region expanded by Radius, and the answer
// is probabilistic on both sides.
type PrivateCountQuery struct {
	Region geo.Rect
	Radius float64
	// ExcludeID drops the querying user from the count (she would otherwise
	// always contribute probability 1 to her own expanded region).
	ExcludeID uint64
}

// PrivateCount evaluates the reduced query: a probabilistic count over the
// expanded region. The interval semantics are conservative: Hi counts every
// user who could possibly be in range of any position of the querier.
func (s *Server) PrivateCount(q PrivateCountQuery) (prob.CountAnswer, error) {
	if !q.Region.Valid() {
		return prob.CountAnswer{}, fmt.Errorf("server: invalid region %v", q.Region)
	}
	if q.Radius < 0 || math.IsNaN(q.Radius) {
		return prob.CountAnswer{}, fmt.Errorf("server: invalid radius %g", q.Radius)
	}
	expanded := q.Region.Expand(q.Radius)
	s.mu.RLock()
	ids := s.privIdx.Query(expanded, nil)
	probs := make([]float64, 0, len(ids))
	for _, id := range ids {
		if id == q.ExcludeID {
			continue
		}
		if p := prob.Overlap(s.private[id], expanded); p > 0 {
			probs = append(probs, p)
		}
	}
	s.mu.RUnlock()
	sort.Float64s(probs)
	return prob.RangeCount(probs), nil
}
