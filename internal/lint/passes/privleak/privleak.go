// Package privleak implements the lbsvet taint pass that statically
// proves the repo's privacy trust boundary: an exact user location that
// enters the anonymizer tier must never reach a server-bound wire encode,
// a log statement, or an observability metric without passing through a
// declared cloaking boundary.
//
// The trust-boundary specification lives in the source tree itself as
// //lint: directives (see package repro/internal/lint/directive):
//
//   - //lint:source marks the functions whose results (or, with params=,
//     whose parameters) carry exact locations — the wire-ingress decode
//     chokepoint and the anonymizer's per-user state accessors.
//   - //lint:sanitized on a call line declares that call a cloaking
//     boundary: taint does not flow through it. The justification text is
//     mandatory and is itself checked.
//   - //lint:trusted-ingress on a function permits wire-encode sinks
//     inside it — the user-side client encoding the user's own location
//     toward the trusted anonymizer tier.
//
// The analysis is interprocedural and runs in three phases over the whole
// program: (A) per-function taint summaries (which parameters flow to
// results) computed to a cross-function fixpoint; (B) caller-to-callee
// taint propagation, so a function that receives an exact location as an
// argument is analyzed with that parameter tainted; (C) a reporting pass
// that flags every sink reached by taint. If the program declares no
// //lint:source at all the pass fails loudly rather than vacuously
// passing: an undeclared boundary is not a clean one.
package privleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
	"repro/internal/lint/loader"
)

// Analyzer is the privleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "privleak",
	Doc: "report exact user locations flowing to wire encodes, logs, or metrics\n\n" +
		"Sources, sanitizers and trusted ingress points are declared in the tree\n" +
		"with //lint:source, //lint:sanitized and //lint:trusted-ingress.",
	Run: run,
}

const (
	obsPath      = "repro/internal/obs"
	protocolPath = "repro/internal/protocol"
)

type cacheKey struct{}

// result is the memoized whole-program outcome, keyed by package path.
type result struct {
	byPkg map[string][]analysis.Diagnostic
	err   error
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Prog == nil {
		// Modular (go vet -vettool) mode: no whole-program view, so the
		// interprocedural analysis cannot run. The standalone driver is the
		// gate for this pass.
		return nil, nil
	}
	res, ok := pass.Prog.Cache[cacheKey{}].(*result)
	if !ok {
		res = analyze(pass.Prog)
		pass.Prog.Cache[cacheKey{}] = res
	}
	if res.err != nil {
		return nil, res.err
	}
	for _, d := range res.byPkg[pass.Pkg.Path()] {
		pass.Report(d)
	}
	return nil, nil
}

// funcInfo is one function declaration in the program.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *loader.Package
	dmap directive.Map

	// source: calls to this function return tainted values.
	source bool
	// sourceParams: parameter indices (receiver counts as 0 when present)
	// tainted inside the body, from //lint:source params=a,b.
	sourceParams []int
	// trustedIngress permits Encoder sinks inside this function.
	trustedIngress bool
	// sinkInternal marks functions that ARE the sink machinery (obs
	// package, Encoder methods); caller taint is not propagated into them.
	sinkInternal bool

	// nparams is the receiver-adjusted parameter count.
	nparams int
	params  []types.Object // receiver first when present

	// summary: paramToRet[i] is a bitmask over result slots that taint on
	// parameter i reaches; sourceRet is the mask an internal source
	// reaches. Per-slot masks keep the ubiquitous (value, error) shape
	// precise: an error string mentioning a location does not taint the
	// value returned beside it.
	paramToRet []uint64
	sourceRet  uint64

	// paramTaint[i]: some caller passes a tainted argument for parameter i.
	paramTaint []bool
}

type global struct {
	prog  *loader.Program
	fns   map[*types.Func]*funcInfo
	order []*funcInfo
	dmaps map[*ast.File]directive.Map
	diags map[string]map[string]analysis.Diagnostic // pkg path -> dedupe key -> diag
	srcs  int
}

func analyze(prog *loader.Program) *result {
	g := &global{
		prog:  prog,
		fns:   make(map[*types.Func]*funcInfo),
		dmaps: make(map[*ast.File]directive.Map),
		diags: make(map[string]map[string]analysis.Diagnostic),
	}
	g.index()
	if g.srcs == 0 {
		return &result{err: fmt.Errorf("privleak: no //lint:source directives in the program; the trust boundary is undeclared")}
	}
	g.checkDirectives()
	g.summarize()   // phase A
	g.propagate()   // phase B
	g.reportSinks() // phase C

	res := &result{byPkg: make(map[string][]analysis.Diagnostic)}
	for path, m := range g.diags {
		var ds []analysis.Diagnostic
		for _, d := range m {
			ds = append(ds, d)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
		res.byPkg[path] = ds
	}
	return res
}

func (g *global) dmap(pkg *loader.Package, file *ast.File) directive.Map {
	m, ok := g.dmaps[file]
	if !ok {
		m = directive.ForFile(g.prog.Fset, file)
		g.dmaps[file] = m
	}
	return m
}

// index collects every function declaration and its directives.
func (g *global) index() {
	for _, pkg := range g.prog.Packages {
		for _, file := range pkg.Files {
			dmap := g.dmap(pkg, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{obj: obj, decl: fd, pkg: pkg, dmap: dmap}
				sig := obj.Type().(*types.Signature)
				if recv := sig.Recv(); recv != nil {
					fi.params = append(fi.params, recv)
				}
				for i := 0; i < sig.Params().Len(); i++ {
					fi.params = append(fi.params, sig.Params().At(i))
				}
				fi.nparams = len(fi.params)
				fi.paramToRet = make([]uint64, fi.nparams)
				fi.paramTaint = make([]bool, fi.nparams)

				if d, ok := directive.FromDoc(fd.Doc, "source"); ok {
					g.srcs++
					if names, rest, found := cutParams(d.Args); found {
						_ = rest
						for _, name := range names {
							for i, p := range fi.params {
								if p.Name() == name {
									fi.sourceParams = append(fi.sourceParams, i)
								}
							}
						}
					} else {
						fi.source = true
					}
				}
				if _, ok := directive.FromDoc(fd.Doc, "trusted-ingress"); ok {
					fi.trustedIngress = true
				}
				if pkg.Types.Path() == obsPath {
					fi.sinkInternal = true
				}
				if pkg.Types.Path() == protocolPath && fd.Recv != nil {
					if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
						rt := recv.Type()
						if p, ok := rt.(*types.Pointer); ok {
							rt = p.Elem()
						}
						if named, ok := rt.(*types.Named); ok && named.Obj().Name() == "Encoder" {
							fi.sinkInternal = true
						}
					}
				}
				g.fns[obj] = fi
				g.order = append(g.order, fi)
			}
		}
	}
}

// cutParams parses an optional leading "params=a,b" token from a source
// directive's arguments.
func cutParams(args string) (names []string, rest string, ok bool) {
	first, rest, _ := strings.Cut(args, " ")
	if !strings.HasPrefix(first, "params=") {
		return nil, args, false
	}
	for _, n := range strings.Split(strings.TrimPrefix(first, "params="), ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, rest, true
}

// checkDirectives validates the directives themselves: a sanitized
// boundary without a justification is an error, not a free pass.
func (g *global) checkDirectives() {
	for _, pkg := range g.prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					d, ok := directive.Parse(c.Text)
					if !ok {
						continue
					}
					if d.Verb == "sanitized" && d.Args == "" {
						g.report(pkg, c.Pos(), "//lint:sanitized requires a justification explaining why the boundary is safe")
					}
				}
			}
		}
	}
}

func (g *global) report(pkg *loader.Package, pos token.Pos, format string, args ...interface{}) {
	path := pkg.Types.Path()
	m := g.diags[path]
	if m == nil {
		m = make(map[string]analysis.Diagnostic)
		g.diags[path] = m
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	m[key] = analysis.Diagnostic{Pos: pos, Category: "privleak", Message: msg}
}

// summarize computes phase A: per-function parameter-to-result flow
// summaries, iterated to a fixpoint so summaries may depend on each other.
func (g *global) summarize() {
	for changed := true; changed; {
		changed = false
		for _, fi := range g.order {
			// One evaluation per parameter isolates which inputs reach the
			// results; one with no taint catches internal sources.
			for i := -1; i < fi.nparams; i++ {
				ec := g.newEval(fi, false)
				if i >= 0 {
					ec.taint(fi.params[i])
				}
				ec.evalBody()
				if i >= 0 {
					if fi.paramToRet[i]|ec.retMask != fi.paramToRet[i] {
						fi.paramToRet[i] |= ec.retMask
						changed = true
					}
				} else if fi.sourceRet|ec.retMask != fi.sourceRet {
					fi.sourceRet |= ec.retMask
					changed = true
				}
			}
		}
	}
}

// propagate computes phase B: callers with tainted arguments taint the
// callee's parameters, to a fixpoint over the call graph.
func (g *global) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fi := range g.order {
			ec := g.newEval(fi, true)
			ec.seedParams()
			ec.evalBody()
			if ec.spread {
				changed = true
			}
		}
	}
}

// reportSinks runs phase C: one reporting evaluation per function with its
// final parameter taint.
func (g *global) reportSinks() {
	for _, fi := range g.order {
		ec := g.newEval(fi, true)
		ec.reporting = true
		ec.seedParams()
		ec.evalBody()
	}
}

// evalCtx evaluates one function body, tracking which objects hold
// tainted values. Taint is monotone: the body is re-walked until the
// tainted set stops growing, so loops and use-before-assign ordering
// converge without a real CFG.
type evalCtx struct {
	g         *global
	fi        *funcInfo
	tainted   map[types.Object]bool
	record    bool // propagate argument taint into callee paramTaint
	reporting bool
	spread    bool // a callee's paramTaint grew
	// retMask is the bitmask of result slots observed tainted.
	retMask uint64
	// lastMask is the per-slot taint of the call expression most recently
	// evaluated, consumed by multi-value assignments.
	lastMask uint64
	litDepth int // > 0 while inside a FuncLit body
}

func (g *global) newEval(fi *funcInfo, record bool) *evalCtx {
	return &evalCtx{g: g, fi: fi, tainted: make(map[types.Object]bool), record: record}
}

func (c *evalCtx) taint(obj types.Object) {
	if obj != nil {
		c.tainted[obj] = true
	}
}

// seedParams taints the parameters declared tainted by //lint:source
// params= and those tainted by callers in phase B.
func (c *evalCtx) seedParams() {
	for _, i := range c.fi.sourceParams {
		c.taint(c.fi.params[i])
	}
	for i, t := range c.fi.paramTaint {
		if t {
			c.taint(c.fi.params[i])
		}
	}
}

func (c *evalCtx) evalBody() {
	for {
		before := len(c.tainted)
		c.stmt(c.fi.decl.Body)
		if len(c.tainted) == before {
			return
		}
	}
}

func (c *evalCtx) info() *types.Info { return c.fi.pkg.Info }

// obj resolves an expression to the variable object it names, looking
// through parens, stars, indexes and field selections to the root.
func (c *evalCtx) obj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if o := c.info().Defs[e]; o != nil {
			return o
		}
		return c.info().Uses[e]
	case *ast.ParenExpr:
		return c.obj(e.X)
	case *ast.StarExpr:
		return c.obj(e.X)
	case *ast.IndexExpr:
		return c.obj(e.X)
	case *ast.SelectorExpr:
		return c.obj(e.X)
	}
	return nil
}

func (c *evalCtx) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.stmt(st)
		}
	case *ast.AssignStmt:
		c.assign(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					var lhs []ast.Expr
					for _, n := range vs.Names {
						lhs = append(lhs, n)
					}
					c.assign(lhs, vs.Values)
				}
			}
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.ReturnStmt:
		if len(s.Results) == 1 && c.nresults() > 1 {
			// return f() forwarding a multi-value call: adopt its mask.
			if c.expr(s.Results[0]) && c.litDepth == 0 {
				if _, isCall := ast.Unparen(s.Results[0]).(*ast.CallExpr); isCall {
					c.retMask |= c.lastMask
				} else {
					c.retMask |= ^uint64(0)
				}
			}
			break
		}
		for i, r := range s.Results {
			if c.expr(r) && c.litDepth == 0 && i < 64 {
				c.retMask |= 1 << i
			}
		}
		if len(s.Results) == 0 && c.litDepth == 0 {
			c.retMask |= c.namedResultsMask()
		}
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.stmt(s.Post)
		c.stmt(s.Body)
	case *ast.RangeStmt:
		t := c.expr(s.X)
		if t {
			if s.Key != nil {
				c.taint(c.obj(s.Key))
			}
			if s.Value != nil {
				c.taint(c.obj(s.Value))
			}
		}
		c.stmt(s.Body)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		c.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		c.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		for _, st := range s.Body {
			c.stmt(st)
		}
	case *ast.SelectStmt:
		c.stmt(s.Body)
	case *ast.CommClause:
		c.stmt(s.Comm)
		for _, st := range s.Body {
			c.stmt(st)
		}
	case *ast.SendStmt:
		if c.expr(s.Value) {
			c.taint(c.obj(s.Chan))
		}
		c.expr(s.Chan)
	case *ast.GoStmt:
		c.expr(s.Call)
	case *ast.DeferStmt:
		c.expr(s.Call)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.IncDecStmt:
		c.expr(s.X)
	}
}

func (c *evalCtx) nresults() int {
	return c.fi.obj.Type().(*types.Signature).Results().Len()
}

func (c *evalCtx) namedResultsMask() uint64 {
	if c.fi.decl.Type.Results == nil {
		return 0
	}
	var mask uint64
	slot := 0
	for _, f := range c.fi.decl.Type.Results.List {
		if len(f.Names) == 0 {
			slot++
			continue
		}
		for _, n := range f.Names {
			if o := c.info().Defs[n]; o != nil && c.tainted[o] && slot < 64 {
				mask |= 1 << slot
			}
			slot++
		}
	}
	return mask
}

func (c *evalCtx) assign(lhs, rhs []ast.Expr) {
	// Evaluate all right-hand sides first (side effects, call recording).
	taints := make([]bool, len(rhs))
	for i, r := range rhs {
		taints[i] = c.expr(r)
	}
	switch {
	case len(rhs) == 1 && len(lhs) > 1:
		if _, isCall := ast.Unparen(rhs[0]).(*ast.CallExpr); isCall {
			// Multi-value call: each result slot carries its own taint.
			for i, l := range lhs {
				if i < 64 && c.lastMask&(1<<i) != 0 {
					c.taint(c.obj(l))
				}
			}
			break
		}
		// Comma-ok forms: everything inherits the expression taint.
		for _, l := range lhs {
			if taints[0] {
				c.taint(c.obj(l))
			}
		}
	default:
		for i, l := range lhs {
			if i < len(taints) && taints[i] {
				c.taint(c.obj(l))
			}
		}
	}
}

// expr computes whether an expression carries taint, recording callee
// parameter taint and reporting sinks along the way.
func (c *evalCtx) expr(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		o := c.info().Uses[e]
		if o == nil {
			o = c.info().Defs[e]
		}
		return o != nil && c.tainted[o]
	case *ast.ParenExpr:
		return c.expr(e.X)
	case *ast.StarExpr:
		return c.expr(e.X)
	case *ast.UnaryExpr:
		return c.expr(e.X)
	case *ast.BinaryExpr:
		l := c.expr(e.X)
		r := c.expr(e.Y)
		return l || r
	case *ast.SelectorExpr:
		// A field of a tainted value is tainted. Package-qualified idents
		// (pkg.Name) resolve through Uses of the selected identifier.
		if c.expr(e.X) {
			return true
		}
		if o := c.info().Uses[e.Sel]; o != nil && c.tainted[o] {
			return true
		}
		return false
	case *ast.IndexExpr:
		l := c.expr(e.X)
		c.expr(e.Index)
		return l
	case *ast.SliceExpr:
		return c.expr(e.X)
	case *ast.TypeAssertExpr:
		return c.expr(e.X)
	case *ast.CompositeLit:
		t := false
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if c.expr(kv.Value) {
					t = true
				}
			} else if c.expr(el) {
				t = true
			}
		}
		return t
	case *ast.KeyValueExpr:
		return c.expr(e.Value)
	case *ast.FuncLit:
		// Closures share their captured objects with the enclosing scope, so
		// the body is analyzed inline against the same tainted set. Sinks
		// inside goroutine bodies are caught here. Returns inside the
		// literal are the literal's, not the enclosing function's.
		c.litDepth++
		c.stmt(e.Body)
		c.litDepth--
		return false
	case *ast.CallExpr:
		return c.call(e)
	case *ast.BasicLit:
		return false
	}
	return false
}

// call handles the interprocedural cases: sanitizer boundaries, source
// functions, summarized module functions, sinks, and unknown callees.
// It returns whether any result is tainted and leaves the per-slot mask
// in c.lastMask.
func (c *evalCtx) call(call *ast.CallExpr) bool {
	mask := c.callMask(call)
	c.lastMask = mask
	return mask != 0
}

func (c *evalCtx) callMask(call *ast.CallExpr) uint64 {
	// A type conversion is not a boundary.
	if tv, ok := c.info().Types[call.Fun]; ok && tv.IsType() {
		if c.expr(call.Args[0]) {
			return ^uint64(0)
		}
		return 0
	}

	sanitized := false
	if _, ok := c.fi.dmap.Find(c.g.prog.Fset, call.Pos(), "sanitized"); ok {
		sanitized = true
	}

	// An immediately invoked (or goroutine) function literal is analyzed
	// inline; other callee shapes are resolved below.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.expr(lit)
	}

	// Evaluate arguments (and the callee expression, which may itself be a
	// tainted value or a nested call).
	argTaint := make([]bool, len(call.Args))
	anyArg := false
	for i, a := range call.Args {
		argTaint[i] = c.expr(a)
		anyArg = anyArg || argTaint[i]
	}

	callee := c.calleeObj(call)
	recvTaint := false
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := c.info().Selections[sel]; isMethod {
			recvExpr = sel.X
			recvTaint = c.expr(sel.X)
		}
	}

	// Builtins neither leak nor launder: len/cap of a tainted slice is a
	// count, not a location; append carries its elements' taint.
	if b, ok := callee.(*types.Builtin); ok {
		if b.Name() == "append" && anyArg {
			return ^uint64(0)
		}
		return 0
	}

	if c.reporting && !sanitized {
		c.checkSink(call, callee, argTaint, anyArg, recvTaint)
	}

	// Known module function: use its summary and record caller taint.
	if fn, ok := callee.(*types.Func); ok {
		if fi, known := c.g.fns[fn]; known {
			if fi.source {
				return ^uint64(0)
			}
			// Map call arguments onto the callee's receiver-first params.
			eff := argTaint
			if recvExpr != nil {
				eff = append([]bool{recvTaint}, argTaint...)
			}
			// Sink machinery (obs package, Encoder methods) is the sink,
			// not a carrier: pushing caller taint into its internals would
			// re-report every leak at the shared helper instead of the
			// caller's call site.
			if c.record && !fi.sinkInternal {
				for i, t := range eff {
					if t && i < fi.nparams && !fi.paramTaint[i] {
						fi.paramTaint[i] = true
						c.spread = true
					}
				}
			}
			if sanitized {
				return 0
			}
			out := fi.sourceRet
			for i, t := range eff {
				if t && i < fi.nparams {
					out |= fi.paramToRet[i]
				}
			}
			// The receiver is parameter 0 of the summary scheme, so its
			// taint is already tracked precisely; no extra receiver
			// tainting here.
			return out
		}
	}

	if sanitized {
		return 0
	}
	// Unknown callee (standard library, interface method, func value):
	// conservatively propagate taint from arguments and receiver to the
	// result, and from arguments into a local receiver.
	c.taintLocalRecv(recvExpr, anyArg)
	if anyArg || recvTaint {
		return ^uint64(0)
	}
	return 0
}

// taintLocalRecv taints a method's receiver when it is a plain local
// identifier and a tainted argument was passed into it.
func (c *evalCtx) taintLocalRecv(recvExpr ast.Expr, anyArg bool) {
	if !anyArg || recvExpr == nil {
		return
	}
	if id, ok := ast.Unparen(recvExpr).(*ast.Ident); ok {
		c.taint(c.obj(id))
	}
}

// calleeObj resolves the called object when the callee is a named
// function, method, or variable.
func (c *evalCtx) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return c.info().Uses[fun]
	case *ast.SelectorExpr:
		return c.info().Uses[fun.Sel]
	}
	return nil
}

// checkSink reports taint reaching one of the three sink families. Only
// tainted arguments count: the leak vector is the value handed over, not
// a tainted receiver invoking an argument-free method.
func (c *evalCtx) checkSink(call *ast.CallExpr, callee types.Object, argTaint []bool, anyArg, recvTaint bool) {
	if !anyArg {
		return
	}
	name, kind := c.sinkKind(call, callee)
	if kind == "" {
		return
	}
	if kind == "wire" && c.fi.trustedIngress {
		return
	}
	c.g.report(c.fi.pkg, call.Pos(),
		"exact location reaches %s sink %s (add a cloaking boundary or //lint:sanitized with justification)",
		kind, name)
}

// sinkKind classifies a call as a wire-encode, log, or metrics sink.
func (c *evalCtx) sinkKind(call *ast.CallExpr, callee types.Object) (name, kind string) {
	// Method receiver type decides Encoder and obs sinks.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isMethod := c.info().Selections[sel]; isMethod {
			rt := s.Recv()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				tn := named.Obj()
				if tn.Pkg() != nil {
					switch {
					case tn.Pkg().Path() == protocolPath && tn.Name() == "Encoder":
						return "Encoder." + sel.Sel.Name, "wire"
					case tn.Pkg().Path() == obsPath:
						return tn.Name() + "." + sel.Sel.Name, "metrics"
					}
				}
			}
		}
	}
	if callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "log":
			return "log." + callee.Name(), "log"
		case obsPath:
			if _, isFunc := callee.(*types.Func); isFunc {
				return "obs." + callee.Name(), "metrics"
			}
		}
	}
	// Injected logger func values: the tree's convention is a field or
	// variable named logf with a printf-shaped func type.
	if callee != nil && callee.Name() == "logf" {
		if _, ok := callee.Type().(*types.Signature); ok {
			return "logf", "log"
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "logf" {
		if tv, ok := c.info().Types[call.Fun]; ok {
			if _, isSig := tv.Type.(*types.Signature); isSig {
				return "logf", "log"
			}
		}
	}
	return "", ""
}
