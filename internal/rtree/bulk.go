package rtree

import (
	"math"
	"sort"

	"repro/internal/geo"
)

// BulkLoad builds a tree from items using Sort-Tile-Recursive (STR)
// packing, which produces near-optimally packed leaves and is the standard
// way to load a static public-data set (the store-finder datasets in the
// experiments). The input slice is not retained but is reordered in place.
func BulkLoad(items []Item) *Tree {
	t := &Tree{}
	if len(items) == 0 {
		return t
	}
	leaves := strPack(items)
	t.size = len(items)
	// Build upper levels by packing nodes the same way until one root remains.
	level := leaves
	for len(level) > 1 {
		level = packNodes(level)
	}
	t.root = level[0]
	return t
}

// strPack tiles the items into leaves: sort by x, cut into vertical slices
// of ~sqrt(n/M) each, sort each slice by y, and emit runs of up to M items.
func strPack(items []Item) []*node {
	n := len(items)
	leafCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := sliceCount * maxEntries

	sort.Slice(items, func(i, j int) bool { return items[i].Loc.X < items[j].Loc.X })
	var leaves []*node
	for start := 0; start < n; start += perSlice {
		end := start + perSlice
		if end > n {
			end = n
		}
		slice := items[start:end]
		sort.Slice(slice, func(i, j int) bool { return slice[i].Loc.Y < slice[j].Loc.Y })
		for ls := 0; ls < len(slice); ls += maxEntries {
			le := ls + maxEntries
			if le > len(slice) {
				le = len(slice)
			}
			leaf := &node{leaf: true, items: append([]Item(nil), slice[ls:le]...)}
			leaf.recomputeBounds()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups a level of nodes into parents using the same STR tiling
// over node centers.
func packNodes(level []*node) []*node {
	n := len(level)
	parentCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	perSlice := sliceCount * maxEntries

	sort.Slice(level, func(i, j int) bool {
		return level[i].bounds.Center().X < level[j].bounds.Center().X
	})
	var parents []*node
	for start := 0; start < n; start += perSlice {
		end := start + perSlice
		if end > n {
			end = n
		}
		slice := level[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].bounds.Center().Y < slice[j].bounds.Center().Y
		})
		for ls := 0; ls < len(slice); ls += maxEntries {
			le := ls + maxEntries
			if le > len(slice) {
				le = len(slice)
			}
			p := &node{leaf: false, children: append([]*node(nil), slice[ls:le]...)}
			p.recomputeBounds()
			parents = append(parents, p)
		}
	}
	return parents
}

// FromPoints is a convenience bulk loader assigning IDs 1..n in input order.
func FromPoints(pts []geo.Point) *Tree {
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{ID: uint64(i) + 1, Loc: p}
	}
	return BulkLoad(items)
}
