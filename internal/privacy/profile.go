// Package privacy models the privacy profiles of mobile users described in
// Section 4 of the paper: per-time-interval tuples of the anonymity level k,
// the minimum cloaked area Amin, and the maximum cloaked area Amax, plus
// the user modes (passive, active, query).
//
// A profile is a set of entries, each active during a daily time window.
// Requirements may be contradictory (for example a large k together with a
// tiny Amax); the anonymizer treats cloaking as best effort, and this
// package provides the machinery to detect and order such conflicts.
package privacy

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Mode is the participation mode of a mobile user (Section 4).
type Mode uint8

const (
	// Passive users share their location with nobody.
	Passive Mode = iota
	// Active users continuously send location updates to the anonymizer.
	Active
	// Query users are active users currently issuing a spatio-temporal query.
	Query
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Passive:
		return "passive"
	case Active:
		return "active"
	case Query:
		return "query"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Requirement is one privacy requirement tuple (k, Amin, Amax).
type Requirement struct {
	// K is the anonymity level: the user must be indistinguishable among at
	// least K users. K=1 means the user accepts revealing her exact location.
	K int
	// MinArea is the minimum area of the cloaked region (0 = no constraint).
	MinArea float64
	// MaxArea is the maximum area of the cloaked region
	// (0 or +Inf = no constraint).
	MaxArea float64
}

// String implements fmt.Stringer.
func (r Requirement) String() string {
	return fmt.Sprintf("k=%d Amin=%g Amax=%g", r.K, r.MinArea, r.MaxArea)
}

// Validate checks structural sanity of the requirement: K ≥ 1, non-negative
// finite areas. It does not check satisfiability against a population; use
// Contradiction for that.
func (r Requirement) Validate() error {
	if r.K < 1 {
		return fmt.Errorf("privacy: k must be ≥ 1, got %d", r.K)
	}
	if r.MinArea < 0 || math.IsNaN(r.MinArea) || math.IsInf(r.MinArea, 0) {
		return fmt.Errorf("privacy: invalid MinArea %g", r.MinArea)
	}
	if r.MaxArea < 0 || math.IsNaN(r.MaxArea) {
		return fmt.Errorf("privacy: invalid MaxArea %g", r.MaxArea)
	}
	return nil
}

// EffectiveMaxArea returns MaxArea with the "no constraint" encodings (0 or
// +Inf) normalized to +Inf.
func (r Requirement) EffectiveMaxArea() float64 {
	if r.MaxArea == 0 || math.IsInf(r.MaxArea, 1) {
		return math.Inf(1)
	}
	return r.MaxArea
}

// Contradiction describes an internal conflict in a requirement.
type Contradiction struct {
	Req    Requirement
	Reason string
}

func (c *Contradiction) Error() string {
	return fmt.Sprintf("privacy: contradictory requirement %v: %s", c.Req, c.Reason)
}

// Contradicts reports whether the requirement's area bounds conflict with
// each other (Amin > Amax). Conflicts between K and the area bounds depend
// on the user density and can only be detected at cloak time; the
// anonymizer then applies best-effort resolution preferring K.
func (r Requirement) Contradicts() error {
	if max := r.EffectiveMaxArea(); r.MinArea > max {
		return &Contradiction{Req: r, Reason: fmt.Sprintf("MinArea %g > MaxArea %g", r.MinArea, max)}
	}
	return nil
}

// Stricter reports whether r demands at least as much privacy as s on every
// axis and strictly more on at least one: larger K, larger MinArea, smaller
// MaxArea all mean more restrictive privacy (Section 4).
func (r Requirement) Stricter(s Requirement) bool {
	ge := r.K >= s.K && r.MinArea >= s.MinArea && r.EffectiveMaxArea() <= s.EffectiveMaxArea()
	gt := r.K > s.K || r.MinArea > s.MinArea || r.EffectiveMaxArea() < s.EffectiveMaxArea()
	return ge && gt
}

// Entry is one line of a privacy profile: a requirement active during the
// daily window [From, To). Windows may wrap past midnight (From > To), as
// in the paper's example where the strictest entry runs 10:00 PM – 8:00 AM.
type Entry struct {
	// From and To are minutes since midnight in [0, 1440).
	From, To int
	Req      Requirement
}

// MinutesSinceMidnight converts a time to the profile's clock domain.
func MinutesSinceMidnight(t time.Time) int {
	return t.Hour()*60 + t.Minute()
}

// covers reports whether minute m falls inside the entry's window,
// treating [From, To) as possibly wrapping midnight.
func (e Entry) covers(m int) bool {
	if e.From == e.To {
		return true // full-day entry
	}
	if e.From < e.To {
		return m >= e.From && m < e.To
	}
	return m >= e.From || m < e.To
}

// Validate checks the entry's window and requirement.
func (e Entry) Validate() error {
	if e.From < 0 || e.From >= 24*60 || e.To < 0 || e.To >= 24*60 {
		return fmt.Errorf("privacy: entry window [%d,%d) outside [0,1440)", e.From, e.To)
	}
	return e.Req.Validate()
}

// ErrNoEntry is returned when a profile has no entry covering the requested
// time. The anonymizer treats such users as passive for that instant.
var ErrNoEntry = errors.New("privacy: no profile entry covers the requested time")

// Profile is a mobile user's privacy profile: an ordered set of entries.
// The zero value is an empty profile (always ErrNoEntry); users registering
// directly with the server (willing to share exact locations) use Public().
type Profile struct {
	entries []Entry
}

// NewProfile builds a profile from entries, validating each.
// Entries are kept in the order given; the first entry covering a time wins,
// which lets callers express explicit precedence.
func NewProfile(entries ...Entry) (*Profile, error) {
	for i, e := range entries {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
	}
	cp := make([]Entry, len(entries))
	copy(cp, entries)
	return &Profile{entries: cp}, nil
}

// MustProfile is NewProfile that panics on error, for tests and literals.
func MustProfile(entries ...Entry) *Profile {
	p, err := NewProfile(entries...)
	if err != nil {
		panic(err)
	}
	return p
}

// Constant returns a profile with a single requirement active at all times.
func Constant(req Requirement) *Profile {
	return &Profile{entries: []Entry{{From: 0, To: 0, Req: req}}}
}

// Public returns the profile of a user willing to reveal her exact location
// at all times (k=1, no area constraints).
func Public() *Profile { return Constant(Requirement{K: 1}) }

// Entries returns a copy of the profile's entries.
func (p *Profile) Entries() []Entry {
	out := make([]Entry, len(p.entries))
	copy(out, p.entries)
	return out
}

// Len returns the number of entries.
func (p *Profile) Len() int { return len(p.entries) }

// At returns the requirement active at time t, or ErrNoEntry.
func (p *Profile) At(t time.Time) (Requirement, error) {
	return p.AtMinute(MinutesSinceMidnight(t))
}

// AtMinute returns the requirement active at the given minute of day.
func (p *Profile) AtMinute(m int) (Requirement, error) {
	if m < 0 || m >= 24*60 {
		return Requirement{}, fmt.Errorf("privacy: minute %d outside [0,1440)", m)
	}
	for _, e := range p.entries {
		if e.covers(m) {
			return e.Req, nil
		}
	}
	return Requirement{}, ErrNoEntry
}

// Strictest returns the most demanding requirement across all entries,
// taking the max of K and MinArea and the min of MaxArea. It is the
// worst-case privacy the system must be prepared to serve for this user.
func (p *Profile) Strictest() (Requirement, error) {
	if len(p.entries) == 0 {
		return Requirement{}, ErrNoEntry
	}
	out := Requirement{K: 1, MaxArea: math.Inf(1)}
	for _, e := range p.entries {
		if e.Req.K > out.K {
			out.K = e.Req.K
		}
		if e.Req.MinArea > out.MinArea {
			out.MinArea = e.Req.MinArea
		}
		if m := e.Req.EffectiveMaxArea(); m < out.MaxArea {
			out.MaxArea = m
		}
	}
	return out, nil
}

// Coverage returns the number of minutes of the day covered by at least one
// entry (0..1440). Full coverage means the user always has a requirement.
func (p *Profile) Coverage() int {
	covered := 0
	for m := 0; m < 24*60; m++ {
		for _, e := range p.entries {
			if e.covers(m) {
				covered++
				break
			}
		}
	}
	return covered
}

// Timeline returns the day partitioned into maximal runs of identical
// effective requirements, sorted by start minute. Minutes with no entry are
// reported with OK=false. It is used by the profile-resolution experiment
// (Figure 2) and by the anonymizer's profile cache.
type TimelineSegment struct {
	From, To int // [From, To) in minutes since midnight
	Req      Requirement
	OK       bool // false when no entry covers the segment
}

// Timeline computes the segments. The result always covers [0,1440).
func (p *Profile) Timeline() []TimelineSegment {
	type state struct {
		req Requirement
		ok  bool
	}
	at := func(m int) state {
		r, err := p.AtMinute(m)
		return state{req: r, ok: err == nil}
	}
	var segs []TimelineSegment
	cur := at(0)
	start := 0
	for m := 1; m < 24*60; m++ {
		s := at(m)
		if s != cur {
			segs = append(segs, TimelineSegment{From: start, To: m, Req: cur.req, OK: cur.ok})
			cur, start = s, m
		}
	}
	segs = append(segs, TimelineSegment{From: start, To: 24 * 60, Req: cur.req, OK: cur.ok})
	sort.Slice(segs, func(i, j int) bool { return segs[i].From < segs[j].From })
	return segs
}

// PaperExample returns the profile of Figure 2 in the paper:
//
//	8:00 AM – 5:00 PM   k=1                      (reveal exact location)
//	5:00 PM – 10:00 PM  k=100,  Amin=1,  Amax=3  (balanced trade-off)
//	10:00 PM – 8:00 AM  k=1000, Amin=5, Amax=∞   (very restrictive)
//
// Areas are in the paper's "square miles" spirit; callers using the unit
// square should scale with ScaleAreas.
func PaperExample() *Profile {
	return MustProfile(
		Entry{From: 8 * 60, To: 17 * 60, Req: Requirement{K: 1}},
		Entry{From: 17 * 60, To: 22 * 60, Req: Requirement{K: 100, MinArea: 1, MaxArea: 3}},
		Entry{From: 22 * 60, To: 8 * 60, Req: Requirement{K: 1000, MinArea: 5}},
	)
}

// ScaleAreas returns a copy of the profile with all area constraints
// multiplied by f, converting between coordinate systems.
func (p *Profile) ScaleAreas(f float64) *Profile {
	out := &Profile{entries: make([]Entry, len(p.entries))}
	for i, e := range p.entries {
		e.Req.MinArea *= f
		if e.Req.MaxArea != 0 && !math.IsInf(e.Req.MaxArea, 1) {
			e.Req.MaxArea *= f
		}
		out.entries[i] = e
	}
	return out
}
