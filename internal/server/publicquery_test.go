package server

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/rng"
)

// loadPrivateUsers gives the server n users cloaked as squares of the given
// half-width centered at generated points (clipped to the world), and
// returns the exact centers (the "true" locations used for ground truth).
func loadPrivateUsers(t testing.TB, s *Server, n int, half float64, seed uint64) []geo.Point {
	t.Helper()
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: n, World: world, Dist: mobility.Uniform, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		region := geo.RectAround(p, half).Clip(world)
		if err := s.UpdatePrivate(uint64(i+1), region); err != nil {
			t.Fatal(err)
		}
	}
	return pts
}

func TestPublicRangeCountValidation(t *testing.T) {
	s := newServer(t)
	if _, err := s.PublicRangeCount(PublicRangeCountQuery{Query: geo.Rect{Min: geo.Pt(1, 1)}}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestPublicRangeCountPaperExample(t *testing.T) {
	// Reconstruct Figure 6a: regions with overlaps 1, 0.75, 0.5, 0.2, 0.25
	// and one fully outside.
	s := newServer(t)
	query := geo.R(0.2, 0.2, 0.6, 0.6)
	put := func(id uint64, r geo.Rect) {
		if err := s.UpdatePrivate(id, r); err != nil {
			t.Fatal(err)
		}
	}
	put(1, geo.R(0.3, 0.3, 0.4, 0.4))     // fully inside: p=1 (object D)
	put(2, geo.R(0.1, 0.3, 0.3, 0.4))     // half in: p=0.5 (object B-ish)
	put(3, geo.R(0.15, 0.25, 0.35, 0.45)) // 75% in: p=0.75
	put(4, geo.R(0.55, 0.55, 0.8, 0.7))   // 20%: width 0.05 of 0.25 → p=0.04? adjust below
	put(5, geo.R(0.7, 0.7, 0.9, 0.9))     // outside: p=0 (object C)

	res, err := s.PublicRangeCount(PublicRangeCountQuery{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	// Exact expected value: sum of analytic overlaps.
	wantE := 1.0 + 0.5 + 0.75 + prob4(query)
	if math.Abs(res.Answer.Expected-wantE) > 1e-9 {
		t.Errorf("Expected = %v, want %v", res.Answer.Expected, wantE)
	}
	if res.Answer.Lo != 1 {
		t.Errorf("Lo = %d, want 1 (only the fully-inside user is certain)", res.Answer.Lo)
	}
	if res.Answer.Hi != 4 {
		t.Errorf("Hi = %d, want 4 (user 5 cannot contribute)", res.Answer.Hi)
	}
	if res.NaiveCount != 4 {
		t.Errorf("NaiveCount = %d, want 4 (counts every overlapping region)", res.NaiveCount)
	}
	// The naive strawman over-counts relative to the expected value.
	if float64(res.NaiveCount) <= res.Answer.Expected {
		t.Error("naive count should exceed the probabilistic expectation here")
	}
}

// prob4 computes the analytic overlap of user 4's region with the query.
func prob4(query geo.Rect) float64 {
	region := geo.R(0.55, 0.55, 0.8, 0.7)
	return region.OverlapArea(query) / region.Area()
}

// Ground truth check: with many users whose exact locations we know, the
// expected-value answer should track the true count far better than the
// naive region count (the E6 claim).
func TestPublicRangeCountAccuracy(t *testing.T) {
	s := newServer(t)
	exact := loadPrivateUsers(t, s, 3000, 0.05, 11)
	src := rng.New(13)
	var sumProbErr, sumNaiveErr float64
	const trials = 30
	for i := 0; i < trials; i++ {
		q := geo.RectAround(geo.Pt(0.2+0.6*src.Float64(), 0.2+0.6*src.Float64()), 0.1+0.1*src.Float64())
		res, err := s.PublicRangeCount(PublicRangeCountQuery{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		truth := 0
		for _, p := range exact {
			if q.Contains(p) {
				truth++
			}
		}
		if truth < res.Answer.Lo || truth > res.Answer.Hi {
			t.Fatalf("interval [%d,%d] misses truth %d (invariant I7)",
				res.Answer.Lo, res.Answer.Hi, truth)
		}
		sumProbErr += math.Abs(res.Answer.Expected - float64(truth))
		sumNaiveErr += math.Abs(float64(res.NaiveCount) - float64(truth))
	}
	if sumProbErr >= sumNaiveErr {
		t.Errorf("expected-value error %v should beat naive error %v", sumProbErr, sumNaiveErr)
	}
}

func TestPublicRangeCountEmpty(t *testing.T) {
	s := newServer(t)
	res, err := s.PublicRangeCount(PublicRangeCountQuery{Query: geo.R(0, 0, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Expected != 0 || res.Answer.Hi != 0 || res.NaiveCount != 0 {
		t.Errorf("empty server count = %+v", res)
	}
}

func TestPublicNNValidation(t *testing.T) {
	s := newServer(t)
	if _, err := s.PublicNN(PublicNNQuery{From: geo.Pt(math.NaN(), 0)}); err == nil {
		t.Error("NaN query point accepted")
	}
}

func TestPublicNNEmpty(t *testing.T) {
	s := newServer(t)
	res, err := s.PublicNN(PublicNNQuery{From: geo.Pt(0.5, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 0 {
		t.Error("candidates from empty server")
	}
}

func TestPublicNNFigure6bShape(t *testing.T) {
	// Figure 6b: one region strictly dominating others. Users A,B,C far,
	// D close, E,F overlapping the possible range.
	s := newServer(t)
	q := geo.Pt(0.5, 0.5)
	put := func(id uint64, r geo.Rect) {
		if err := s.UpdatePrivate(id, r); err != nil {
			t.Fatal(err)
		}
	}
	put(1, geo.R(0.9, 0.9, 1.0, 1.0))     // A: far — pruned
	put(2, geo.R(0.0, 0.9, 0.1, 1.0))     // B: far — pruned
	put(3, geo.R(0.0, 0.0, 0.08, 0.08))   // C: far — pruned
	put(4, geo.R(0.52, 0.52, 0.58, 0.58)) // D: close, MaxDist small
	put(5, geo.R(0.4, 0.35, 0.6, 0.55))   // E: overlaps D's range
	put(6, geo.R(0.55, 0.4, 0.75, 0.6))   // F: overlaps too

	res, err := s.PublicNN(PublicNNQuery{From: q, Samples: 4000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedCount != 3 {
		t.Errorf("PrunedCount = %d, want 3 (A, B, C eliminated)", res.PrunedCount)
	}
	ids := map[uint64]bool{}
	var sum float64
	for _, c := range res.Candidates {
		ids[c.ID] = true
		sum += c.Prob
	}
	if !ids[4] || !ids[5] || !ids[6] || len(ids) != 3 {
		t.Errorf("candidates = %v, want {4,5,6}", res.Candidates)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if res.Best.ID == 0 || res.Best.Prob <= 0 {
		t.Errorf("Best = %v", res.Best)
	}
	if len(res.CandidateRegions) != 3 {
		t.Errorf("CandidateRegions = %d entries", len(res.CandidateRegions))
	}
	// Candidates sorted by decreasing probability.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Prob > res.Candidates[i-1].Prob {
			t.Error("candidates not sorted by probability")
		}
	}
}

// Invariant I8: pruned users can never be the true nearest. Verified by
// brute force against the known exact locations.
func TestPublicNNPruningSoundness(t *testing.T) {
	s := newServer(t)
	exact := loadPrivateUsers(t, s, 500, 0.03, 17)
	src := rng.New(19)
	for trial := 0; trial < 20; trial++ {
		q := geo.Pt(src.Float64(), src.Float64())
		res, err := s.PublicNN(PublicNNQuery{From: q, Samples: 200, Seed: uint64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		// The user whose exact location is truly nearest must be a candidate.
		bestD := math.Inf(1)
		var bestID uint64
		for i, p := range exact {
			if d := q.Dist2(p); d < bestD {
				bestD, bestID = d, uint64(i+1)
			}
		}
		if _, ok := res.CandidateRegions[bestID]; !ok {
			t.Fatalf("trial %d: true nearest user %d was pruned", trial, bestID)
		}
	}
}

func TestPublicNNDeterministicSeed(t *testing.T) {
	s := newServer(t)
	loadPrivateUsers(t, s, 100, 0.05, 23)
	q := PublicNNQuery{From: geo.Pt(0.5, 0.5), Samples: 1000, Seed: 5}
	a, err := s.PublicNN(q)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.PublicNN(q)
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatal("nondeterministic candidates")
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			t.Fatal("nondeterministic probabilities with fixed seed")
		}
	}
}

func TestPrivateCountQuery(t *testing.T) {
	s := newServer(t)
	// Querier cloaked in the center; two other users nearby, one far.
	if err := s.UpdatePrivate(1, geo.R(0.45, 0.45, 0.55, 0.55)); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdatePrivate(2, geo.R(0.5, 0.5, 0.6, 0.6)); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdatePrivate(3, geo.R(0.9, 0.9, 1, 1)); err != nil {
		t.Fatal(err)
	}
	ans, err := s.PrivateCount(PrivateCountQuery{
		Region: geo.R(0.45, 0.45, 0.55, 0.55), Radius: 0.1, ExcludeID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Hi != 1 {
		t.Errorf("Hi = %d, want 1 (user 2 possible, user 3 out of reach)", ans.Hi)
	}
	if ans.Expected <= 0 || ans.Expected > 1 {
		t.Errorf("Expected = %v", ans.Expected)
	}
	// Validation.
	if _, err := s.PrivateCount(PrivateCountQuery{Region: geo.Rect{Min: geo.Pt(1, 1)}, Radius: 0.1}); err == nil {
		t.Error("invalid region accepted")
	}
	if _, err := s.PrivateCount(PrivateCountQuery{Region: geo.R(0, 0, 0.1, 0.1), Radius: -2}); err == nil {
		t.Error("negative radius accepted")
	}
}

func BenchmarkPublicRangeCount(b *testing.B) {
	s := newServer(b)
	loadPrivateUsers(b, s, 10000, 0.03, 1)
	q := PublicRangeCountQuery{Query: geo.R(0.4, 0.4, 0.6, 0.6)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PublicRangeCount(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicNN(b *testing.B) {
	s := newServer(b)
	loadPrivateUsers(b, s, 10000, 0.03, 2)
	q := PublicNNQuery{From: geo.Pt(0.5, 0.5), Samples: 1000, Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PublicNN(q); err != nil {
			b.Fatal(err)
		}
	}
}

// The indexed count path must be exactly equivalent to the full scan.
func TestPublicRangeCountIndexEquivalence(t *testing.T) {
	s := newServer(t)
	loadPrivateUsers(t, s, 2000, 0.04, 31)
	src := rng.New(37)
	for trial := 0; trial < 40; trial++ {
		q := PublicRangeCountQuery{Query: geo.RectAround(
			geo.Pt(src.Float64(), src.Float64()), 0.02+0.2*src.Float64()).Clip(world)}
		a, err := s.PublicRangeCount(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.publicRangeCountScan(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.NaiveCount != b.NaiveCount || a.Answer.Lo != b.Answer.Lo ||
			a.Answer.Hi != b.Answer.Hi {
			t.Fatalf("indexed %+v != scan %+v", a, b)
		}
		if math.Abs(a.Answer.Expected-b.Answer.Expected) > 1e-9 {
			t.Fatalf("indexed E=%v != scan E=%v", a.Answer.Expected, b.Answer.Expected)
		}
	}
	// Churn (moves + removals) keeps them equivalent.
	for i := 0; i < 500; i++ {
		id := uint64(src.Intn(2000)) + 1
		if src.Float64() < 0.1 {
			s.RemovePrivate(id)
		} else {
			c := geo.Pt(src.Float64(), src.Float64())
			s.UpdatePrivate(id, geo.RectAround(c, 0.03).Clip(world))
		}
	}
	q := PublicRangeCountQuery{Query: geo.R(0.3, 0.3, 0.7, 0.7)}
	a, _ := s.PublicRangeCount(q)
	b, _ := s.publicRangeCountScan(q)
	if a.NaiveCount != b.NaiveCount || math.Abs(a.Answer.Expected-b.Answer.Expected) > 1e-9 {
		t.Fatalf("post-churn: indexed %+v != scan %+v", a, b)
	}
}

func BenchmarkPublicRangeCountScan(b *testing.B) {
	s := newServer(b)
	loadPrivateUsers(b, s, 10000, 0.03, 1)
	q := PublicRangeCountQuery{Query: geo.R(0.45, 0.45, 0.55, 0.55)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.publicRangeCountScan(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicRangeCountIndexedSmallQuery(b *testing.B) {
	s := newServer(b)
	loadPrivateUsers(b, s, 10000, 0.03, 1)
	q := PublicRangeCountQuery{Query: geo.R(0.45, 0.45, 0.55, 0.55)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PublicRangeCount(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNNSeedDistinguishesDiagonalPoints pins the seed-derivation fix for
// PublicNN's Monte-Carlo sampler. The old derivation xor-folded the two
// coordinate bit patterns, so every diagonal point (a, a) collapsed to the
// same seed and drew the same sample sequence. The splitmix-style mixer
// must give distinct, nonzero seeds — and distinct rng streams — for
// distinct query points, diagonal or not.
func TestNNSeedDistinguishesDiagonalPoints(t *testing.T) {
	pts := []geo.Point{
		geo.Pt(0.1, 0.1), geo.Pt(0.2, 0.2), geo.Pt(0.3, 0.3),
		geo.Pt(0.5, 0.5), geo.Pt(0.9, 0.9),
		geo.Pt(0.1, 0.2), geo.Pt(0.2, 0.1), // asymmetric pair: order matters
	}
	seeds := map[uint64]geo.Point{}
	for _, p := range pts {
		s := nnSeed(p)
		if s == 0 {
			t.Errorf("nnSeed(%v) = 0; zero seed would fall back to a fixed stream", p)
		}
		if prev, dup := seeds[s]; dup {
			t.Errorf("nnSeed collision: %v and %v both derive %#x", prev, p, s)
		}
		seeds[s] = p
	}
	// Distinct seeds must actually drive distinct sample streams.
	a := rng.New(nnSeed(geo.Pt(0.25, 0.25)))
	b := rng.New(nnSeed(geo.Pt(0.75, 0.75)))
	same := 0
	for i := 0; i < 8; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same == 8 {
		t.Error("diagonal points (0.25,0.25) and (0.75,0.75) drew identical rng streams")
	}
}

// TestPublicNNSeededVsDerived: an explicit Seed must override derivation, and
// derived seeds at distinct diagonal points must be usable end to end.
func TestPublicNNDerivedSeedsDiffer(t *testing.T) {
	s := newServer(t)
	loadPrivateUsers(t, s, 200, 0.08, 3)
	// Two diagonal query points; with the old xor-fold both derived seed 0.
	r1, err := s.PublicNN(PublicNNQuery{From: geo.Pt(0.3, 0.3), Samples: 64})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.PublicNN(PublicNNQuery{From: geo.Pt(0.7, 0.7), Samples: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Candidates) == 0 && len(r2.Candidates) == 0 {
		t.Fatal("both NN queries returned nothing; data load failed")
	}
}
