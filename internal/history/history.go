// Package history is the historical side of the privacy-aware database
// server: an append-only store of cloaked region *timelines*. The paper's
// central storage argument — "we aim not to store the data at all.
// Instead, we store perturbed version of the data ... the risk of privacy
// threats can be minimized" — applies doubly to history: what is retained
// about a user's past is the sequence of cloaked regions, never a point,
// so a subpoena or a breach of the server recovers at most what the
// anonymizer already chose to reveal.
//
// The store answers historical public queries over private data:
// expected occupancy of an area over a time window, per-user visit
// possibility, and timeline retrieval, all with the same
// expected/interval answer discipline as the live query processors.
// Time is a logical int64 tick supplied by the caller.
package history

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/prob"
)

// Span is one segment of a user's cloaked timeline: she was somewhere in
// Region throughout [From, To). A span still open (the user's current
// region) has To == OpenEnd.
type Span struct {
	From, To int64
	Region   geo.Rect
}

// OpenEnd marks a span that has not been closed yet.
const OpenEnd = int64(1<<62 - 1)

// Store holds the timelines. All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	byUser map[uint64][]Span
	// lastT tracks the largest timestamp seen, to reject time travel.
	lastT int64
}

// New returns an empty store.
func New() *Store {
	return &Store{byUser: make(map[uint64][]Span)}
}

// Record appends a region to a user's timeline at time t, closing her
// previous span. Timestamps must be non-decreasing per store (a single
// logical clock); equal timestamps replace the just-opened span, so a
// same-tick correction does not create zero-length garbage.
func (s *Store) Record(id uint64, region geo.Rect, t int64) error {
	if !region.Valid() {
		return fmt.Errorf("history: invalid region %v", region)
	}
	if t < 0 || t >= OpenEnd {
		return fmt.Errorf("history: timestamp %d out of range", t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.lastT {
		return fmt.Errorf("history: timestamp %d before store clock %d", t, s.lastT)
	}
	s.lastT = t
	spans := s.byUser[id]
	if n := len(spans); n > 0 {
		last := &spans[n-1]
		if last.To == OpenEnd {
			if last.From == t {
				// Same-tick correction: replace in place.
				last.Region = region
				return nil
			}
			last.To = t
		}
	}
	s.byUser[id] = append(spans, Span{From: t, To: OpenEnd, Region: region})
	return nil
}

// Close ends a user's open span at time t (deregistration); subsequent
// queries treat her as absent after t.
func (s *Store) Close(id uint64, t int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.lastT {
		return fmt.Errorf("history: timestamp %d before store clock %d", t, s.lastT)
	}
	s.lastT = t
	spans := s.byUser[id]
	if n := len(spans); n > 0 && spans[n-1].To == OpenEnd {
		if spans[n-1].From >= t {
			// Zero-length residue: drop it.
			s.byUser[id] = spans[:n-1]
		} else {
			spans[n-1].To = t
		}
	}
	return nil
}

// Users returns the number of users with recorded history.
func (s *Store) Users() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byUser)
}

// SpanCount returns the total number of stored spans.
func (s *Store) SpanCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, spans := range s.byUser {
		n += len(spans)
	}
	return n
}

// Timeline returns the user's spans overlapping [from, to), clipped to the
// window, in chronological order.
func (s *Store) Timeline(id uint64, from, to int64) []Span {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Span
	for _, sp := range s.byUser[id] {
		if sp.To <= from || sp.From >= to {
			continue
		}
		c := sp
		if c.From < from {
			c.From = from
		}
		if c.To > to {
			c.To = to
		}
		out = append(out, c)
	}
	return out
}

// OccupancyAnswer is the historical aggregate: how many users were inside
// an area, averaged over a time window.
type OccupancyAnswer struct {
	// Expected is the time-averaged expected number of users inside the
	// area over the window (user-time mass / window length), under the
	// uniform-within-region assumption.
	Expected float64
	// Lo counts users certainly inside for the entire window (every
	// covering span's region lies within the area and the spans cover the
	// whole window).
	Lo int
	// Hi counts users possibly inside at some instant (some overlapping
	// span's region intersects the area).
	Hi int
}

// Occupancy computes the historical occupancy of area over [from, to).
func (s *Store) Occupancy(area geo.Rect, from, to int64) (OccupancyAnswer, error) {
	if !area.Valid() {
		return OccupancyAnswer{}, fmt.Errorf("history: invalid area %v", area)
	}
	if to <= from {
		return OccupancyAnswer{}, fmt.Errorf("history: empty window [%d,%d)", from, to)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	window := float64(to - from)
	var ans OccupancyAnswer
	for _, spans := range s.byUser {
		var mass float64     // expected user-time inside the area
		var covered int64    // window time covered by any span
		var insideAll = true // every covering span fully inside the area
		possible := false
		for _, sp := range spans {
			oFrom, oTo := sp.From, sp.To
			if oFrom < from {
				oFrom = from
			}
			if oTo > to {
				oTo = to
			}
			if oTo <= oFrom {
				continue
			}
			dur := float64(oTo - oFrom)
			covered += oTo - oFrom
			p := prob.Overlap(sp.Region, area)
			mass += dur * p
			if p > 0 {
				possible = true
			}
			if !area.ContainsRect(sp.Region) {
				insideAll = false
			}
		}
		if covered == 0 {
			continue
		}
		ans.Expected += mass / window
		if possible {
			ans.Hi++
		}
		if insideAll && covered == to-from {
			ans.Lo++
		}
	}
	return ans, nil
}

// VisitProbability bounds the probability that the user was inside the
// area at some instant of [from, to): 0 when no overlapping span's region
// intersects the area, 1 when some overlapping span's region lies entirely
// within it, and otherwise the maximum instantaneous overlap fraction
// across her spans — a lower bound on the true visit probability (the
// union over time can only be larger), paired with possible=true.
func (s *Store) VisitProbability(id uint64, area geo.Rect, from, to int64) (lower float64, possible bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sp := range s.byUser[id] {
		if sp.To <= from || sp.From >= to {
			continue
		}
		p := prob.Overlap(sp.Region, area)
		if p > lower {
			lower = p
		}
		if p > 0 {
			possible = true
		}
	}
	return lower, possible
}

// Prune discards all spans that end at or before the horizon, bounding
// retention — the privacy hygiene a real deployment needs.
func (s *Store) Prune(horizon int64) (removed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, spans := range s.byUser {
		kept := spans[:0]
		for _, sp := range spans {
			if sp.To > horizon {
				kept = append(kept, sp)
			} else {
				removed++
			}
		}
		if len(kept) == 0 {
			delete(s.byUser, id)
		} else {
			s.byUser[id] = append([]Span(nil), kept...)
		}
	}
	return removed
}

// ActiveAt returns the ids of users with a span covering instant t,
// sorted — the historical analogue of the live private store.
func (s *Store) ActiveAt(t int64) []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []uint64
	for id, spans := range s.byUser {
		for _, sp := range spans {
			if sp.From <= t && t < sp.To {
				out = append(out, id)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
