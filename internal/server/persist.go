package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/prob"
	"repro/internal/regidx"
	"repro/internal/rtree"
)

// Snapshot / Restore persist the server's full state — stationary objects,
// moving objects, private regions, and standing continuous queries — in a
// versioned little-endian binary format. A snapshot taken under load is
// consistent: it is produced under the server mutex.
//
// Layout (version 1):
//
//	magic "PALB" | u16 version
//	u32 nStationary | (u64 id, u16 classLen, class, f64 x, f64 y)*
//	u32 nMoving     | (u64 id, f64 x, f64 y)*
//	u32 nPrivate    | (u64 id, rect)*
//	u32 nContCount  | (u64 id, rect)*
//	u32 nContPriv   | (u64 id, rect region, f64 radius)*
//
// Continuous answers and candidate sets are not stored; they are
// deterministically rebuilt from the data on restore.

var snapshotMagic = [4]byte{'P', 'A', 'L', 'B'}

const snapshotVersion = 1

type snapWriter struct {
	w   *bufio.Writer
	err error
}

func (sw *snapWriter) bytes(b []byte) {
	if sw.err == nil {
		_, sw.err = sw.w.Write(b)
	}
}

func (sw *snapWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	sw.bytes(b[:])
}

func (sw *snapWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	sw.bytes(b[:])
}

func (sw *snapWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	sw.bytes(b[:])
}

func (sw *snapWriter) f64(v float64) { sw.u64(math.Float64bits(v)) }

func (sw *snapWriter) str(s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	sw.u16(uint16(len(s)))
	sw.bytes([]byte(s))
}

func (sw *snapWriter) rect(r geo.Rect) {
	sw.f64(r.Min.X)
	sw.f64(r.Min.Y)
	sw.f64(r.Max.X)
	sw.f64(r.Max.Y)
}

// Snapshot writes the server's state to w.
func (s *Server) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()

	sw := &snapWriter{w: bufio.NewWriter(w)}
	sw.bytes(snapshotMagic[:])
	sw.u16(snapshotVersion)

	// Stationary objects (from metadata, which carries classes).
	sw.u32(uint32(len(s.stationaryMeta)))
	// Iterate the R-tree for deterministic order independence is not
	// required; the map order varies but Restore is order-insensitive.
	for _, o := range s.stationaryMeta {
		sw.u64(o.ID)
		sw.str(o.Class)
		sw.f64(o.Loc.X)
		sw.f64(o.Loc.Y)
	}

	moving := s.moving.All(nil)
	sw.u32(uint32(len(moving)))
	for _, o := range moving {
		sw.u64(o.ID)
		sw.f64(o.Loc.X)
		sw.f64(o.Loc.Y)
	}

	sw.u32(uint32(len(s.private)))
	for id, r := range s.private {
		sw.u64(id)
		sw.rect(r)
	}

	sw.u32(uint32(len(s.cont.queries)))
	for id, q := range s.cont.queries {
		sw.u64(id)
		sw.rect(q.query)
	}

	sw.u32(uint32(len(s.contPriv.queries)))
	for id, q := range s.contPriv.queries {
		sw.u64(id)
		sw.rect(q.region)
		sw.f64(q.radius)
	}

	if sw.err != nil {
		return fmt.Errorf("server: snapshot: %w", sw.err)
	}
	s.met.snapshotsTaken.Inc()
	return sw.w.Flush()
}

// SaveSnapshot writes the server's state to path crash-safely: the
// snapshot goes to a temporary file in the same directory, is fsynced,
// and is then atomically renamed over path. A crash at any point leaves
// either the old complete snapshot or the new complete snapshot — never a
// torn file (which Restore would reject anyway).
func (s *Server) SaveSnapshot(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("server: save snapshot: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("server: save snapshot: %w", err)
	}
	if err := s.Snapshot(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: save snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: save snapshot: %w", err)
	}
	// Persist the rename itself; best effort — some platforms refuse
	// directory fsync.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadSnapshot restores the server's state from a snapshot file written by
// SaveSnapshot. A missing file is reported via os.IsNotExist on the
// returned error so daemons can treat first boot as empty state.
func (s *Server) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Restore(f)
}

type snapReader struct {
	r   *bufio.Reader
	err error
}

func (sr *snapReader) bytes(n int) []byte {
	if sr.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(sr.r, b); err != nil {
		sr.err = err
		return nil
	}
	return b
}

func (sr *snapReader) u16() uint16 {
	b := sr.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (sr *snapReader) u32() uint32 {
	b := sr.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (sr *snapReader) u64() uint64 {
	b := sr.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (sr *snapReader) f64() float64 { return math.Float64frombits(sr.u64()) }

func (sr *snapReader) str() string {
	n := int(sr.u16())
	b := sr.bytes(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (sr *snapReader) rect() geo.Rect {
	return geo.Rect{
		Min: geo.Point{X: sr.f64(), Y: sr.f64()},
		Max: geo.Point{X: sr.f64(), Y: sr.f64()},
	}
}

// Restore replaces the server's state with a snapshot previously written
// by Snapshot. On error the server is left unchanged.
func (s *Server) Restore(r io.Reader) error {
	sr := &snapReader{r: bufio.NewReader(r)}
	var magic [4]byte
	copy(magic[:], sr.bytes(4))
	if sr.err == nil && magic != snapshotMagic {
		return fmt.Errorf("server: restore: bad magic %q", magic[:])
	}
	if v := sr.u16(); sr.err == nil && v != snapshotVersion {
		return fmt.Errorf("server: restore: unsupported version %d", v)
	}

	// Decode everything before touching server state.
	nStat := int(sr.u32())
	stationary := make([]PublicObject, 0, nStat)
	for i := 0; i < nStat && sr.err == nil; i++ {
		stationary = append(stationary, PublicObject{
			ID:    sr.u64(),
			Class: sr.str(),
			Loc:   geo.Point{X: sr.f64(), Y: sr.f64()},
		})
	}
	nMov := int(sr.u32())
	type movObj struct {
		id  uint64
		loc geo.Point
	}
	moving := make([]movObj, 0, nMov)
	for i := 0; i < nMov && sr.err == nil; i++ {
		moving = append(moving, movObj{id: sr.u64(), loc: geo.Point{X: sr.f64(), Y: sr.f64()}})
	}
	nPriv := int(sr.u32())
	private := make(map[uint64]geo.Rect, nPriv)
	for i := 0; i < nPriv && sr.err == nil; i++ {
		id := sr.u64()
		private[id] = sr.rect()
	}
	nCont := int(sr.u32())
	type contQ struct {
		id uint64
		q  geo.Rect
	}
	contQueries := make([]contQ, 0, nCont)
	for i := 0; i < nCont && sr.err == nil; i++ {
		contQueries = append(contQueries, contQ{id: sr.u64(), q: sr.rect()})
	}
	nCP := int(sr.u32())
	type cpQ struct {
		id     uint64
		region geo.Rect
		radius float64
	}
	cpQueries := make([]cpQ, 0, nCP)
	for i := 0; i < nCP && sr.err == nil; i++ {
		cpQueries = append(cpQueries, cpQ{id: sr.u64(), region: sr.rect(), radius: sr.f64()})
	}
	if sr.err != nil {
		return fmt.Errorf("server: restore: %w", sr.err)
	}

	// Validate before committing.
	for _, o := range stationary {
		if !s.world.Contains(o.Loc) {
			return fmt.Errorf("server: restore: stationary %d outside world", o.ID)
		}
	}
	for _, m := range moving {
		if !s.world.Contains(m.loc) {
			return fmt.Errorf("server: restore: moving %d outside world", m.id)
		}
	}
	for id, r := range private {
		if !r.Valid() || !s.world.Intersects(r) {
			return fmt.Errorf("server: restore: private region %d invalid", id)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	items := make([]rtree.Item, len(stationary))
	meta := make(map[uint64]PublicObject, len(stationary))
	for i, o := range stationary {
		items[i] = rtree.Item{ID: o.ID, Loc: o.Loc}
		meta[o.ID] = o
	}
	s.stationary = rtree.BulkLoad(items)
	s.stationaryMeta = meta

	cols, rows := s.moving.Dims()
	fresh, err := grid.New(s.world, cols, rows)
	if err != nil {
		return err
	}
	s.moving = fresh
	for _, m := range moving {
		s.moving.Upsert(m.id, m.loc)
	}

	s.private = private
	freshIdx, err := regidx.New(s.world, 32, 32)
	if err != nil {
		return err
	}
	s.privIdx = freshIdx
	for id, r := range private {
		if err := s.privIdx.Upsert(id, r); err != nil {
			return err
		}
	}

	// Rebuild continuous engines deterministically from data.
	s.cont = newContinuousEngine(s)
	for _, cq := range contQueries {
		q := &contQuery{id: cq.id, query: cq.q, probs: make(map[uint64]float64)}
		for uid, region := range s.private {
			if p := prob.Overlap(region, cq.q); p > 0 {
				q.apply(uid, 0, p)
			}
		}
		s.cont.queries[cq.id] = q
		if cq.id > s.cont.nextID {
			s.cont.nextID = cq.id
		}
	}
	s.contPriv = newContPrivEngine(s)
	for _, cq := range cpQueries {
		q := &contPrivQuery{
			id:      cq.id,
			region:  cq.region,
			radius:  cq.radius,
			filter:  cq.region.Expand(cq.radius),
			members: make(map[uint64]geo.Point),
		}
		for _, o := range s.moving.Search(q.filter, nil) {
			q.members[o.ID] = o.Loc
		}
		s.contPriv.queries[cq.id] = q
		s.contPriv.insertIndex(q)
		if cq.id > s.contPriv.nextID {
			s.contPriv.nextID = cq.id
		}
	}
	s.met.restoresApplied.Inc()
	// Re-point the size gauges at the restored data set.
	s.met.privateUsers.Set(float64(len(s.private)))
	s.met.stationary.Set(float64(s.stationary.Len()))
	s.met.moving.Set(float64(s.moving.Len()))
	s.met.contQueries.Set(float64(len(s.cont.queries)))
	return nil
}
