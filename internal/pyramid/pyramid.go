// Package pyramid implements an incrementally-maintained multi-level grid
// of user counts over a rectangular world: level 0 is a single cell
// covering the whole space and level l is a 2^l × 2^l grid, so the cells of
// consecutive levels nest exactly like a complete PR quadtree.
//
// The pyramid is the data structure behind the space-dependent location
// anonymizer of Figure 4: top-down quadtree cloaking descends its levels
// and fixed/multi-level grid cloaking reads one level directly. Because
// only per-cell counters are stored — never exact coordinates — the
// anonymizer built on it satisfies the paper's "no exact location storage"
// goal, and counter maintenance under a location update is O(height).
package pyramid

import (
	"fmt"

	"repro/internal/geo"
)

// MaxHeight bounds the pyramid height; 2^(MaxHeight-1) cells per side at
// the bottom level (16 levels = 32768² cells) is far beyond any useful
// anonymization resolution.
const MaxHeight = 16

// Cell identifies one cell of the pyramid.
type Cell struct {
	Level    int // 0 = root
	Col, Row int // in [0, 2^Level)
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("L%d(%d,%d)", c.Level, c.Col, c.Row) }

// Parent returns the containing cell one level up. The root is its own
// parent.
func (c Cell) Parent() Cell {
	if c.Level == 0 {
		return c
	}
	return Cell{Level: c.Level - 1, Col: c.Col / 2, Row: c.Row / 2}
}

// Child returns the quadrant child (dx, dy ∈ {0,1}) one level down.
func (c Cell) Child(dx, dy int) Cell {
	return Cell{Level: c.Level + 1, Col: c.Col*2 + dx, Row: c.Row*2 + dy}
}

// Pyramid maintains user counts at every level. It performs no locking of
// its own: any number of readers (Count, CellAt, CountRegion, the cloaking
// descents built on them) may run concurrently as long as no writer
// (Insert, Move, Upsert, Remove) runs at the same time. The sharded
// anonymizer enforces that discipline with a reader/writer lock — a single
// writer applies relocations in batches while cloaking readers run in
// parallel between write sections.
type Pyramid struct {
	world  geo.Rect
	height int             // number of levels
	counts [][]int         // counts[level][row*side+col]
	cellOf map[uint64]Cell // user id -> bottom-level cell
}

// New builds an empty pyramid of the given height (≥ 1 levels) over world.
func New(world geo.Rect, height int) (*Pyramid, error) {
	if height < 1 || height > MaxHeight {
		return nil, fmt.Errorf("pyramid: height %d outside [1,%d]", height, MaxHeight)
	}
	if !world.Valid() || world.Area() <= 0 {
		return nil, fmt.Errorf("pyramid: invalid world %v", world)
	}
	p := &Pyramid{
		world:  world,
		height: height,
		counts: make([][]int, height),
		cellOf: make(map[uint64]Cell),
	}
	for l := 0; l < height; l++ {
		side := 1 << l
		p.counts[l] = make([]int, side*side)
	}
	return p, nil
}

// World returns the covered area.
func (p *Pyramid) World() geo.Rect { return p.world }

// Height returns the number of levels.
func (p *Pyramid) Height() int { return p.height }

// Len returns the number of tracked users.
func (p *Pyramid) Len() int { return len(p.cellOf) }

// side returns cells per side at a level.
func side(level int) int { return 1 << level }

// CellAt returns the cell of the given level containing the point,
// clamping boundary points into edge cells.
func (p *Pyramid) CellAt(level int, pt geo.Point) Cell {
	s := side(level)
	fx := (pt.X - p.world.Min.X) / p.world.Width()
	fy := (pt.Y - p.world.Min.Y) / p.world.Height()
	col := int(fx * float64(s))
	row := int(fy * float64(s))
	if col < 0 {
		col = 0
	}
	if col >= s {
		col = s - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= s {
		row = s - 1
	}
	return Cell{Level: level, Col: col, Row: row}
}

// Rect returns the spatial extent of a cell.
func (p *Pyramid) Rect(c Cell) geo.Rect {
	s := float64(side(c.Level))
	w := p.world.Width() / s
	h := p.world.Height() / s
	x0 := p.world.Min.X + float64(c.Col)*w
	y0 := p.world.Min.Y + float64(c.Row)*h
	return geo.R(x0, y0, x0+w, y0+h)
}

// CellArea returns the area of any cell at the given level.
func (p *Pyramid) CellArea(level int) float64 {
	s := float64(int64(1) << uint(2*level))
	return p.world.Area() / s
}

// Count returns the number of users currently inside a cell.
func (p *Pyramid) Count(c Cell) int {
	if c.Level < 0 || c.Level >= p.height {
		return 0
	}
	s := side(c.Level)
	if c.Col < 0 || c.Col >= s || c.Row < 0 || c.Row >= s {
		return 0
	}
	return p.counts[c.Level][c.Row*s+c.Col]
}

// bump adjusts the counters on the path from the bottom cell to the root.
func (p *Pyramid) bump(bottom Cell, delta int) {
	c := bottom
	for {
		s := side(c.Level)
		p.counts[c.Level][c.Row*s+c.Col] += delta
		if c.Level == 0 {
			return
		}
		c = c.Parent()
	}
}

// Insert registers a user at pt. Inserting an existing id is an error; use
// Move for location updates.
func (p *Pyramid) Insert(id uint64, pt geo.Point) error {
	if _, ok := p.cellOf[id]; ok {
		return fmt.Errorf("pyramid: user %d already present", id)
	}
	bottom := p.CellAt(p.height-1, pt)
	p.cellOf[id] = bottom
	p.bump(bottom, +1)
	return nil
}

// Move relocates a user. It returns true when the user changed bottom-level
// cells (the signal that downstream cloaks may need refreshing) and an
// error when the user is unknown.
func (p *Pyramid) Move(id uint64, pt geo.Point) (changed bool, err error) {
	old, ok := p.cellOf[id]
	if !ok {
		return false, fmt.Errorf("pyramid: user %d not present", id)
	}
	bottom := p.CellAt(p.height-1, pt)
	if bottom == old {
		return false, nil
	}
	p.bump(old, -1)
	p.bump(bottom, +1)
	p.cellOf[id] = bottom
	return true, nil
}

// Upsert inserts a new user or relocates an existing one — the combined
// write the anonymizer's update path needs. It reports whether the user's
// bottom-level cell changed (always true for a new user).
func (p *Pyramid) Upsert(id uint64, pt geo.Point) (changed bool) {
	if _, ok := p.cellOf[id]; ok {
		changed, _ = p.Move(id, pt)
		return changed
	}
	_ = p.Insert(id, pt)
	return true
}

// Remove deregisters a user; it reports whether the user was present.
func (p *Pyramid) Remove(id uint64) bool {
	old, ok := p.cellOf[id]
	if !ok {
		return false
	}
	p.bump(old, -1)
	delete(p.cellOf, id)
	return true
}

// UserCell returns the bottom-level cell of a user.
func (p *Pyramid) UserCell(id uint64) (Cell, bool) {
	c, ok := p.cellOf[id]
	return c, ok
}

// AncestorAt returns the ancestor of a bottom cell at the given level.
func AncestorAt(bottom Cell, level int) Cell {
	c := bottom
	for c.Level > level {
		c = c.Parent()
	}
	return c
}

// CountRegion returns the number of users in the union of bottom-level
// cells covered by [c0..c1] (inclusive cell ranges at one level). Both
// cells must be on the same level; the range is normalized.
func (p *Pyramid) CountRegion(level, col0, row0, col1, row1 int) int {
	if col0 > col1 {
		col0, col1 = col1, col0
	}
	if row0 > row1 {
		row0, row1 = row1, row0
	}
	s := side(level)
	if col0 < 0 {
		col0 = 0
	}
	if row0 < 0 {
		row0 = 0
	}
	if col1 >= s {
		col1 = s - 1
	}
	if row1 >= s {
		row1 = s - 1
	}
	n := 0
	for row := row0; row <= row1; row++ {
		for col := col0; col <= col1; col++ {
			n += p.counts[level][row*s+col]
		}
	}
	return n
}

// RegionRect returns the spatial extent of the inclusive cell range.
func (p *Pyramid) RegionRect(level, col0, row0, col1, row1 int) geo.Rect {
	if col0 > col1 {
		col0, col1 = col1, col0
	}
	if row0 > row1 {
		row0, row1 = row1, row0
	}
	a := p.Rect(Cell{Level: level, Col: col0, Row: row0})
	b := p.Rect(Cell{Level: level, Col: col1, Row: row1})
	return a.Union(b)
}

// checkInvariants verifies that every level's total equals the user count
// and that each parent equals the sum of its children. Used by tests.
func (p *Pyramid) checkInvariants() error {
	for l := 0; l < p.height; l++ {
		total := 0
		for _, c := range p.counts[l] {
			if c < 0 {
				return fmt.Errorf("negative count at level %d", l)
			}
			total += c
		}
		if total != len(p.cellOf) {
			return fmt.Errorf("level %d total %d != population %d", l, total, len(p.cellOf))
		}
	}
	for l := 0; l+1 < p.height; l++ {
		s := side(l)
		for row := 0; row < s; row++ {
			for col := 0; col < s; col++ {
				parent := Cell{Level: l, Col: col, Row: row}
				sum := 0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						sum += p.Count(parent.Child(dx, dy))
					}
				}
				if sum != p.Count(parent) {
					return fmt.Errorf("cell %v count %d != children sum %d", parent, p.Count(parent), sum)
				}
			}
		}
	}
	return nil
}
