package protocol

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
)

// Handler processes one request frame and returns the response payload.
type Handler func(typ byte, payload []byte) ([]byte, error)

// Service is a generic framed request/response TCP server shared by the
// anonymizer and database services.
type Service struct {
	ln      net.Listener
	handler Handler
	logf    func(format string, args ...interface{})

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts accepting connections on addr ("host:port"; ":0" picks a
// free port) and dispatches frames to the handler. It returns immediately;
// use Addr for the bound address and Close to stop.
func Serve(addr string, handler Handler, logf func(string, ...interface{})) (*Service, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = log.Printf
	}
	s := &Service{ln: ln, handler: handler, logf: logf, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Service) Addr() string { return s.ln.Addr().String() }

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Service) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return // EOF or broken peer: drop the connection
		}
		resp, herr := s.handler(typ, payload)
		if herr != nil {
			var e Encoder
			e.Str(herr.Error())
			if WriteFrame(conn, msgErr, e.Bytes()) != nil {
				return
			}
			continue
		}
		if WriteFrame(conn, msgOK, resp) != nil {
			return
		}
	}
}

// Close stops the service and closes all live connections.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a synchronous framed request/response TCP client. It is safe
// for concurrent use; requests are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a Service.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// ErrRemote wraps an error string returned by the peer.
var ErrRemote = errors.New("protocol: remote error")

// Call sends one request and waits for its response payload.
func (c *Client) Call(typ byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, typ, payload); err != nil {
		return nil, err
	}
	rtyp, resp, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch rtyp {
	case msgOK:
		return resp, nil
	case msgErr:
		d := NewDecoder(resp)
		msg := d.Str()
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	default:
		return nil, fmt.Errorf("protocol: unexpected response type %d", rtyp)
	}
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
