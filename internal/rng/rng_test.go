package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("nearby seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 10; v++ {
		if seen[v] == 0 {
			t.Errorf("Intn(10) never produced %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRangeBounds(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestNormMS(t *testing.T) {
	r := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormMS(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("NormMS mean = %v, want ≈10", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("exponential produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ≈0.5", mean)
	}
}

func TestPerm(t *testing.T) {
	r := New(23)
	out := make([]int, 50)
	r.Perm(out)
	seen := make([]bool, 50)
	for _, v := range out {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestFork(t *testing.T) {
	parent := New(29)
	child := parent.Fork()
	// Parent and child streams should differ.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked stream matched parent %d/100 times", same)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf rank out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 should dominate rank 50 by roughly 51x for s=1.
	if counts[0] < counts[50]*10 {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Every rank is reachable in expectation; the head certainly is.
	if counts[0] == 0 || counts[1] == 0 {
		t.Error("Zipf head ranks never drawn")
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
