// Package anonymizer implements the Location Anonymizer of Section 5: the
// trusted third party standing between mobile users and the location-based
// database server. It registers users with their privacy profiles, receives
// exact location updates, cloaks them with a configurable algorithm from
// the cloak package, and forwards only the cloaked regions downstream.
//
// Storage discipline follows the paper's design goal that the anonymizer
// "does not need to store the exact location information": with a
// space-dependent algorithm configured, the anonymizer keeps only pyramid
// cell counters (metadata, in the paper's words). The data-dependent
// algorithms of Figure 3 inherently require neighbor positions, so
// selecting them keeps an exact-position index inside the trusted party —
// StoresExactLocations reports which regime is active.
package anonymizer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/pyramid"
)

// Algorithm selects the cloaking algorithm.
type Algorithm uint8

const (
	// AlgQuadtree is the space-dependent top-down quadtree (Figure 4a).
	// It is the default.
	AlgQuadtree Algorithm = iota
	// AlgGrid is the space-dependent fixed grid with merging (Figure 4b).
	AlgGrid
	// AlgGridML is AlgGrid with multi-level refinement.
	AlgGridML
	// AlgNaive is the data-dependent centered expansion (Figure 3a).
	AlgNaive
	// AlgMBR is the data-dependent k-nearest-neighbor MBR (Figure 3b).
	AlgMBR
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgQuadtree:
		return "quadtree"
	case AlgGrid:
		return "grid"
	case AlgGridML:
		return "grid-ml"
	case AlgNaive:
		return "naive"
	case AlgMBR:
		return "mbr"
	default:
		return fmt.Sprintf("algorithm(%d)", uint8(a))
	}
}

// spaceDependent reports whether the algorithm works from aggregate counts
// only.
func (a Algorithm) spaceDependent() bool {
	return a == AlgQuadtree || a == AlgGrid || a == AlgGridML
}

// Forwarder receives cloaked regions; the production implementation is the
// database server (directly in-process, or via the wire protocol).
type Forwarder func(id uint64, region geo.Rect) error

// Config configures an Anonymizer.
type Config struct {
	// World bounds all locations. Required.
	World geo.Rect
	// Algorithm selects the cloaking algorithm (default AlgQuadtree).
	Algorithm Algorithm
	// PyramidHeight sets the space partition depth (default 10 → 512×512
	// bottom cells).
	PyramidHeight int
	// GridLevel is the fixed level for AlgGrid/AlgGridML (default 6).
	GridLevel int
	// PopGridCols/Rows set the exact-position index resolution used by
	// data-dependent algorithms (default 64×64).
	PopGridCols, PopGridRows int
	// Incremental enables Section 5.3 incremental evaluation: regions are
	// reused across updates while they remain valid.
	Incremental bool
	// Forward receives every cloaked region. Optional; when nil regions are
	// only returned to the caller.
	Forward Forwarder
	// ForwardQueue bounds the spill queue that absorbs forward failures:
	// when the downstream link is down, cloaked regions (never exact
	// locations — spilling does not weaken privacy) are parked and replayed
	// with backoff once the link recovers, and the user's update succeeds
	// instead of failing. 0 disables spilling: a forward failure fails the
	// update, the pre-queue behavior.
	ForwardQueue int
	// ForwardRetryBase/ForwardRetryMax bound the replay loop's exponential
	// backoff (defaults 100ms and 5s).
	ForwardRetryBase time.Duration
	ForwardRetryMax  time.Duration
	// Clock supplies the time for profile resolution (default time.Now).
	Clock func() time.Time
	// Tariff, when set, charges users per update as a function of their
	// current requirement — the paper's note that the anonymizer "may charge
	// the mobile users based on their required protection level".
	Tariff func(req privacy.Requirement) float64
	// Metrics is the registry the anonymizer registers its anon_* series
	// in. Optional; a private registry is created when nil, so
	// instrumentation is always live and Registry() always works.
	Metrics *obs.Registry
}

// Stats aggregates anonymizer activity counters. Forwarded includes
// replayed regions; ForwardErrs counts every failed forward attempt,
// direct and replay alike.
type Stats struct {
	Registered  int
	Updates     uint64
	Queries     uint64
	Reused      uint64
	BestEffort  uint64
	Forwarded   uint64
	ForwardErrs uint64

	// Spill-queue counters (all zero when no forward queue is configured).
	Spilled    uint64 // regions parked in the replay queue
	Replayed   uint64 // spilled regions delivered after recovery
	Dropped    uint64 // oldest entries evicted from a full queue
	QueueDepth int    // regions currently awaiting replay
}

// Anonymizer is the trusted third party. All methods are safe for
// concurrent use.
type Anonymizer struct {
	mu  sync.Mutex
	cfg Config

	profiles map[uint64]*privacy.Profile
	modes    map[uint64]privacy.Mode
	charges  map[uint64]float64

	pyr     *pyramid.Pyramid
	pop     *grid.Index // nil when the algorithm is space-dependent
	cloaker cloak.Cloaker
	inc     *cloak.Incremental
	fq      *forwardQueue // nil unless Forward + ForwardQueue configured

	stats Stats
	met   *anonMetrics
}

// Common errors.
var (
	ErrUnknownUser   = errors.New("anonymizer: unknown user")
	ErrPassive       = errors.New("anonymizer: user is passive at this time")
	ErrDuplicateUser = errors.New("anonymizer: user already registered")
)

// New builds an anonymizer.
func New(cfg Config) (*Anonymizer, error) {
	if !cfg.World.Valid() || cfg.World.Area() <= 0 {
		return nil, fmt.Errorf("anonymizer: invalid world %v", cfg.World)
	}
	if cfg.PyramidHeight <= 0 {
		cfg.PyramidHeight = 10
	}
	if cfg.GridLevel <= 0 {
		cfg.GridLevel = 6
	}
	if cfg.PopGridCols <= 0 {
		cfg.PopGridCols = 64
	}
	if cfg.PopGridRows <= 0 {
		cfg.PopGridRows = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	pyr, err := pyramid.New(cfg.World, cfg.PyramidHeight)
	if err != nil {
		return nil, err
	}
	a := &Anonymizer{
		cfg:      cfg,
		profiles: make(map[uint64]*privacy.Profile),
		modes:    make(map[uint64]privacy.Mode),
		charges:  make(map[uint64]float64),
		pyr:      pyr,
		met:      newAnonMetrics(cfg.Metrics, cfg.Algorithm),
	}
	switch cfg.Algorithm {
	case AlgQuadtree:
		a.cloaker = &cloak.Quadtree{Pyr: pyr}
	case AlgGrid:
		a.cloaker = &cloak.Grid{Pyr: pyr, Level: cfg.GridLevel}
	case AlgGridML:
		a.cloaker = &cloak.Grid{Pyr: pyr, Level: cfg.GridLevel, MultiLevel: true}
	case AlgNaive, AlgMBR:
		pop, err := grid.New(cfg.World, cfg.PopGridCols, cfg.PopGridRows)
		if err != nil {
			return nil, err
		}
		a.pop = pop
		gp := cloak.GridPopulation{Index: pop}
		if cfg.Algorithm == AlgNaive {
			a.cloaker = &cloak.Naive{Pop: gp}
		} else {
			a.cloaker = &cloak.MBR{Pop: gp}
		}
	default:
		return nil, fmt.Errorf("anonymizer: unknown algorithm %v", cfg.Algorithm)
	}
	if cfg.Incremental {
		a.inc = cloak.NewIncremental(a.cloaker, a.validateRegion)
		// Re-tighten a cached region once it holds 8× the required k: keeps
		// startup-era oversized regions from pinning quality of service low
		// forever, while still reusing aggressively in the steady state.
		a.inc.MaxSlack = 8
	}
	if cfg.Forward != nil && cfg.ForwardQueue > 0 {
		a.fq = newForwardQueue(cfg.Forward, cfg.ForwardQueue,
			cfg.ForwardRetryBase, cfg.ForwardRetryMax, a.met)
	}
	return a, nil
}

// Close stops the forward replay loop, abandoning anything still queued.
// It is a no-op without a forward queue and safe to call more than once.
func (a *Anonymizer) Close() {
	if a.fq != nil {
		a.fq.close()
	}
}

// forward delivers one cloaked region downstream. With a spill queue
// configured a failure parks the region for replay and the update still
// succeeds; per-user ordering is preserved by coalescing into an already
// queued entry instead of letting a newer region overtake it on the
// direct path. Without a queue the error is returned, failing the update.
func (a *Anonymizer) forward(id uint64, region geo.Rect) error {
	if a.fq != nil && a.fq.enqueueIfPending(id, region) {
		return nil
	}
	err := a.cfg.Forward(id, region)
	if err == nil {
		a.mu.Lock()
		a.stats.Forwarded++
		a.mu.Unlock()
		a.met.forwarded.Inc()
		return nil
	}
	a.mu.Lock()
	a.stats.ForwardErrs++
	a.mu.Unlock()
	a.met.forwardErrs.Inc()
	if a.fq != nil {
		a.fq.add(id, region)
		return nil
	}
	return err
}

// validateRegion re-checks a cached region against the live population; it
// runs with a.mu held (called from within Update).
func (a *Anonymizer) validateRegion(region geo.Rect, req privacy.Requirement) (int, bool) {
	var count int
	if a.pop != nil {
		count = a.pop.Count(region)
	} else {
		count = a.pyramidCount(region)
	}
	return count, count >= req.K
}

// pyramidCount counts users in an arbitrary rectangle from pyramid data by
// recursive descent: cells fully inside the region contribute their whole
// count, disjoint cells are skipped, and partially covered bottom cells are
// excluded. The count is therefore a conservative lower bound — exactly
// what k-anonymity validation needs — and costs O(perimeter) cells instead
// of O(area), which keeps incremental validation cheaper than recloaking.
func (a *Anonymizer) pyramidCount(region geo.Rect) int {
	return a.pyramidCountRec(pyramid.Cell{}, region)
}

func (a *Anonymizer) pyramidCountRec(c pyramid.Cell, region geo.Rect) int {
	r := a.pyr.Rect(c)
	if !region.Intersects(r) {
		return 0
	}
	if region.ContainsRect(r) {
		return a.pyr.Count(c)
	}
	if c.Level == a.pyr.Height()-1 {
		return 0 // partially covered bottom cell: conservative exclude
	}
	if a.pyr.Count(c) == 0 {
		return 0
	}
	sum := 0
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			sum += a.pyramidCountRec(c.Child(dx, dy), region)
		}
	}
	return sum
}

// StoresExactLocations reports whether the configured algorithm forces the
// anonymizer to keep exact positions (data-dependent family).
func (a *Anonymizer) StoresExactLocations() bool { return !a.cfg.Algorithm.spaceDependent() }

// Algorithm returns the configured algorithm.
func (a *Anonymizer) Algorithm() Algorithm { return a.cfg.Algorithm }

// Register adds a user with her initial privacy profile in active mode.
// Her location becomes known to the anonymizer on her first Update.
func (a *Anonymizer) Register(id uint64, profile *privacy.Profile) error {
	if profile == nil {
		return fmt.Errorf("anonymizer: nil profile for user %d", id)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.profiles[id]; dup {
		return ErrDuplicateUser
	}
	a.profiles[id] = profile
	a.modes[id] = privacy.Active
	a.stats.Registered++
	a.met.registered.Set(float64(a.stats.Registered))
	return nil
}

// UpdateProfile replaces a user's profile ("mobile users have the ability
// to change their privacy profiles at any time").
func (a *Anonymizer) UpdateProfile(id uint64, profile *privacy.Profile) error {
	if profile == nil {
		return fmt.Errorf("anonymizer: nil profile for user %d", id)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.profiles[id]; !ok {
		return ErrUnknownUser
	}
	a.profiles[id] = profile
	if a.inc != nil {
		a.inc.Invalidate(id)
	}
	return nil
}

// SetMode switches a user between passive, active and query modes. A
// passive user's location is dropped from all indices.
func (a *Anonymizer) SetMode(id uint64, m privacy.Mode) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.profiles[id]; !ok {
		return ErrUnknownUser
	}
	prev := a.modes[id]
	a.modes[id] = m
	if m == privacy.Passive && prev != privacy.Passive {
		a.dropLocationLocked(id)
	}
	return nil
}

// Mode returns the user's current mode.
func (a *Anonymizer) Mode(id uint64) (privacy.Mode, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.modes[id]
	if !ok {
		return 0, ErrUnknownUser
	}
	return m, nil
}

// Deregister removes a user entirely.
func (a *Anonymizer) Deregister(id uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.profiles[id]; !ok {
		return false
	}
	a.dropLocationLocked(id)
	delete(a.profiles, id)
	delete(a.modes, id)
	a.stats.Registered--
	a.met.registered.Set(float64(a.stats.Registered))
	a.met.tracked.Set(float64(a.pyr.Len()))
	return true
}

func (a *Anonymizer) dropLocationLocked(id uint64) {
	a.pyr.Remove(id)
	if a.pop != nil {
		a.pop.Delete(id)
	}
	if a.inc != nil {
		a.inc.Invalidate(id)
	}
}

// Update processes an exact location update from an active user: the
// location refreshes the internal indices, is cloaked under the
// requirement active right now, and the region is forwarded downstream.
func (a *Anonymizer) Update(id uint64, loc geo.Point) (cloak.Result, error) {
	return a.process(id, loc, false)
}

// CloakQuery cloaks a location for a query the user is about to issue
// (query mode): identical pipeline, counted separately in the stats.
func (a *Anonymizer) CloakQuery(id uint64, loc geo.Point) (cloak.Result, error) {
	return a.process(id, loc, true)
}

func (a *Anonymizer) process(id uint64, loc geo.Point, isQuery bool) (cloak.Result, error) {
	if !loc.Valid() || !a.cfg.World.Contains(loc) {
		return cloak.Result{}, fmt.Errorf("anonymizer: location %v outside world", loc)
	}
	a.mu.Lock()
	profile, ok := a.profiles[id]
	if !ok {
		a.mu.Unlock()
		return cloak.Result{}, ErrUnknownUser
	}
	if a.modes[id] == privacy.Passive {
		a.mu.Unlock()
		return cloak.Result{}, ErrPassive
	}
	req, err := profile.At(a.cfg.Clock())
	if err != nil {
		// No entry covers the current time: the user is effectively passive.
		a.mu.Unlock()
		return cloak.Result{}, fmt.Errorf("%w: %v", ErrPassive, err)
	}

	// Refresh indices before cloaking so the user counts toward her own k.
	if _, tracked := a.pyr.UserCell(id); tracked {
		if _, err := a.pyr.Move(id, loc); err != nil {
			a.mu.Unlock()
			return cloak.Result{}, err
		}
	} else if err := a.pyr.Insert(id, loc); err != nil {
		a.mu.Unlock()
		return cloak.Result{}, err
	}
	if a.pop != nil {
		a.pop.Upsert(id, loc)
	}
	a.met.tracked.Set(float64(a.pyr.Len()))

	t0 := time.Now()
	var res cloak.Result
	if a.inc != nil {
		res = a.inc.Cloak(id, loc, req)
	} else {
		res = a.cloaker.Cloak(id, loc, req)
	}
	a.met.cloakLat.Since(t0)
	a.met.observeResult(res)

	if isQuery {
		a.stats.Queries++
		a.met.queries.Inc()
	} else {
		a.stats.Updates++
		a.met.updates.Inc()
	}
	if res.Reused {
		a.stats.Reused++
	}
	if res.BestEffort() {
		a.stats.BestEffort++
	}
	a.met.setReuseRate(a.stats)
	if a.cfg.Tariff != nil {
		a.charges[id] += a.cfg.Tariff(req)
	}
	a.mu.Unlock()

	// A reused region is byte-identical to what the server already stores,
	// so incremental mode also saves the downstream message — half of the
	// Section 5.3 win.
	if a.cfg.Forward != nil && !res.Reused {
		if err := a.forward(id, res.Region); err != nil {
			return res, fmt.Errorf("anonymizer: forward failed: %w", err)
		}
	}
	return res, nil
}

// BatchUpdate processes many location updates in one shared pass (Section
// 5.3). With a space-dependent algorithm, users in the same bottom pyramid
// cell with the same active requirement share a single cloaking
// computation; data-dependent algorithms fall back to per-user processing
// (their regions depend on exact positions, so sharing would be unsound).
// Results are returned in input order; a nil entry marks an update that
// failed (unknown user, passive mode, out-of-world location).
//
// Forwarding is deduplicated: each distinct region is sent downstream once
// per batch with the *first* user id that produced it, plus one message per
// additional distinct (id, region) pair — matching what per-user updates
// would have sent, minus exact duplicates.
func (a *Anonymizer) BatchUpdate(updates []cloak.Request) []*cloak.Result {
	results := make([]*cloak.Result, len(updates))

	a.mu.Lock()
	// Refresh indices and resolve requirements first so the shared pass
	// sees the whole batch's occupancy (the paper's one-pass semantics).
	now := a.cfg.Clock()
	reqs := make([]cloak.Request, 0, len(updates))
	slot := make([]int, 0, len(updates)) // reqs index -> updates index
	for i, u := range updates {
		if !u.Loc.Valid() || !a.cfg.World.Contains(u.Loc) {
			continue
		}
		profile, ok := a.profiles[u.ID]
		if !ok || a.modes[u.ID] == privacy.Passive {
			continue
		}
		req, err := profile.At(now)
		if err != nil {
			continue
		}
		if _, tracked := a.pyr.UserCell(u.ID); tracked {
			if _, err := a.pyr.Move(u.ID, u.Loc); err != nil {
				continue
			}
		} else if err := a.pyr.Insert(u.ID, u.Loc); err != nil {
			continue
		}
		if a.pop != nil {
			a.pop.Upsert(u.ID, u.Loc)
		}
		reqs = append(reqs, cloak.Request{ID: u.ID, Loc: u.Loc, Req: req})
		slot = append(slot, i)
	}

	a.met.tracked.Set(float64(a.pyr.Len()))

	t0 := time.Now()
	var batchResults []cloak.Result
	if q, ok := a.cloaker.(*cloak.Quadtree); ok {
		bq := &cloak.BatchQuadtree{Pyr: q.Pyr}
		batchResults, _ = bq.CloakAll(reqs)
	} else {
		batchResults = make([]cloak.Result, len(reqs))
		for i, r := range reqs {
			batchResults[i] = a.cloaker.Cloak(r.ID, r.Loc, r.Req)
		}
	}
	a.met.batchLat.Since(t0)
	for i := range batchResults {
		res := batchResults[i]
		results[slot[i]] = &res
		a.stats.Updates++
		a.met.updates.Inc()
		a.met.observeResult(res)
		if res.BestEffort() {
			a.stats.BestEffort++
		}
		if a.cfg.Tariff != nil {
			a.charges[reqs[i].ID] += a.cfg.Tariff(reqs[i].Req)
		}
	}
	a.met.setReuseRate(a.stats)
	a.mu.Unlock()

	if a.cfg.Forward == nil {
		return results
	}
	type fwdKey struct {
		id     uint64
		region geo.Rect
	}
	sent := make(map[fwdKey]bool, len(reqs))
	for i := range batchResults {
		key := fwdKey{id: reqs[i].ID, region: batchResults[i].Region}
		if sent[key] {
			continue
		}
		sent[key] = true
		// With a spill queue configured the error path is absorbed inside
		// forward; without one a failed forward is already counted there
		// and, matching the historical batch semantics, does not null the
		// caller's result.
		_ = a.forward(key.id, key.region)
	}
	return results
}

// Charges returns the accumulated fees of a user under the configured
// tariff.
func (a *Anonymizer) Charges(id uint64) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.charges[id]
}

// Stats returns a snapshot of the activity counters, spill queue included.
func (a *Anonymizer) Stats() Stats {
	a.mu.Lock()
	st := a.stats
	a.mu.Unlock()
	if a.fq != nil {
		qs := a.fq.snapshot()
		st.Spilled = qs.spilled
		st.Replayed = qs.replayed
		st.Dropped = qs.dropped
		st.QueueDepth = qs.depth
		// Replayed regions did reach the server; replay failures are
		// forward failures like any other.
		st.Forwarded += qs.replayed
		st.ForwardErrs += qs.errs
	}
	return st
}

// Population returns the number of users currently tracked in the spatial
// indices (those that sent at least one update while non-passive).
func (a *Anonymizer) Population() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pyr.Len()
}
