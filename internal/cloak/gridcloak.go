package cloak

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/pyramid"
)

// Grid is the space-dependent cloaker of Figure 4b: the space is
// partitioned into a fixed grid (one level of the pyramid); the cell g
// containing the user is returned if it already satisfies the profile,
// otherwise g is merged with adjacent cells until the merged block does.
// With MultiLevel set, a cell that over-satisfies the profile is refined
// into the sub-grid of deeper pyramid levels — the "fixed multi-level
// grids" optimization the paper sketches at the end of Section 5.2.
type Grid struct {
	Pyr *pyramid.Pyramid
	// Level is the fixed grid level in [1, Pyr.Height()-1].
	Level int
	// MultiLevel enables downward refinement when the level cell already
	// satisfies the requirement with slack.
	MultiLevel bool
}

// Name implements Cloaker.
func (g *Grid) Name() string {
	if g.MultiLevel {
		return fmt.Sprintf("grid-ml(L%d)", g.Level)
	}
	return fmt.Sprintf("grid(L%d)", g.Level)
}

// Cloak implements Cloaker.
func (g *Grid) Cloak(id uint64, loc geo.Point, req privacy.Requirement) Result {
	level := g.Level
	if level < 1 {
		level = 1
	}
	if level >= g.Pyr.Height() {
		level = g.Pyr.Height() - 1
	}
	cell := g.Pyr.CellAt(level, loc)

	if g.Pyr.Count(cell) >= req.K && g.Pyr.CellArea(level) >= req.MinArea {
		// The base cell satisfies the profile. Optionally refine downward
		// while the child cell containing the user still satisfies it.
		if g.MultiLevel {
			for l := level + 1; l < g.Pyr.Height(); l++ {
				child := g.Pyr.CellAt(l, loc)
				if g.Pyr.Count(child) < req.K || g.Pyr.CellArea(l) < req.MinArea {
					break
				}
				cell = child
			}
		}
		region := g.Pyr.Rect(cell)
		return finish(region, g.Pyr.Count(cell), req)
	}

	// Merge with adjacent grid cells until the block satisfies the profile.
	col0, row0, col1, row1 := cell.Col, cell.Row, cell.Col, cell.Row
	cellArea := g.Pyr.CellArea(level)
	blockOK := func() bool {
		cnt := g.Pyr.CountRegion(level, col0, row0, col1, row1)
		area := float64((col1-col0+1)*(row1-row0+1)) * cellArea
		return cnt >= req.K && area >= req.MinArea
	}
	for !blockOK() {
		grew := g.growBlock(level, &col0, &row0, &col1, &row1)
		if !grew {
			break // the block covers the whole grid
		}
	}
	region := g.Pyr.RegionRect(level, col0, row0, col1, row1)
	count := g.Pyr.CountRegion(level, col0, row0, col1, row1)
	return finish(region, count, req)
}

// growBlock expands the block one step in the direction that adds the most
// users (ties: smallest area growth first, i.e. the shorter side). It
// returns false when the block already spans the whole grid.
//
// The greedy choice uses only aggregate per-cell counts — never exact
// positions — so the result remains space-dependent: the returned block is
// a function of the occupancy histogram, not of the user's exact point.
func (g *Grid) growBlock(level int, col0, row0, col1, row1 *int) bool {
	side := 1 << level
	type option struct {
		gain  int
		cells int
		apply func()
	}
	var opts []option
	if *col0 > 0 {
		gain := g.Pyr.CountRegion(level, *col0-1, *row0, *col0-1, *row1)
		opts = append(opts, option{gain, *row1 - *row0 + 1, func() { *col0-- }})
	}
	if *col1 < side-1 {
		gain := g.Pyr.CountRegion(level, *col1+1, *row0, *col1+1, *row1)
		opts = append(opts, option{gain, *row1 - *row0 + 1, func() { *col1++ }})
	}
	if *row0 > 0 {
		gain := g.Pyr.CountRegion(level, *col0, *row0-1, *col1, *row0-1)
		opts = append(opts, option{gain, *col1 - *col0 + 1, func() { *row0-- }})
	}
	if *row1 < side-1 {
		gain := g.Pyr.CountRegion(level, *col0, *row1+1, *col1, *row1+1)
		opts = append(opts, option{gain, *col1 - *col0 + 1, func() { *row1++ }})
	}
	if len(opts) == 0 {
		return false
	}
	best := 0
	for i := 1; i < len(opts); i++ {
		if opts[i].gain > opts[best].gain ||
			(opts[i].gain == opts[best].gain && opts[i].cells < opts[best].cells) {
			best = i
		}
	}
	opts[best].apply()
	return true
}
