package main

import (
	"fmt"

	"repro/internal/cloak"
	"repro/internal/mobility"
	"repro/internal/privacy"
)

func reqK(k int) privacy.Requirement { return privacy.Requirement{K: k} }

// expProfiles regenerates Figure 2: the example privacy profile resolved
// across the day, showing which requirement applies at each hour and the
// resulting timeline segments.
func expProfiles(cfg benchConfig) {
	p := privacy.PaperExample()

	fmt.Println("profile entries (paper example):")
	t := newTable("time window", "k", "Amin", "Amax")
	for _, e := range p.Entries() {
		t.row(fmt.Sprintf("%02d:%02d-%02d:%02d", e.From/60, e.From%60, e.To/60, e.To%60),
			e.Req.K, e.Req.MinArea, e.Req.EffectiveMaxArea())
	}
	t.flush()

	fmt.Println("\nresolved requirement by hour:")
	t = newTable("hour", "k", "Amin", "Amax")
	for hour := 0; hour < 24; hour += 3 {
		req, err := p.AtMinute(hour * 60)
		if err != nil {
			t.row(fmt.Sprintf("%02d:00", hour), "-", "-", "-")
			continue
		}
		t.row(fmt.Sprintf("%02d:00", hour), req.K, req.MinArea, req.EffectiveMaxArea())
	}
	t.flush()

	fmt.Println("\ntimeline segments (maximal runs of one requirement):")
	t = newTable("from", "to", "k", "covered")
	for _, seg := range p.Timeline() {
		t.row(fmt.Sprintf("%02d:%02d", seg.From/60, seg.From%60),
			fmt.Sprintf("%02d:%02d", seg.To/60, seg.To%60), seg.Req.K, seg.OK)
	}
	t.flush()

	strict, _ := p.Strictest()
	fmt.Printf("\nstrictest requirement across the day: %v\n", strict)
}

// expBestEffort (E10) quantifies best-effort cloaking under contradictory
// profiles: the satisfaction rate of each constraint as Amax tightens
// against a fixed k.
func expBestEffort(cfg benchConfig) {
	p := buildPopulation(cfg.n, mobility.Uniform, cfg.seed)
	q := &cloak.Quadtree{Pyr: p.pyr}

	const k = 100
	// Area needed for k=100 in a uniform population of n over the unit
	// square is ≈ k/n; sweep Amax through that threshold.
	needed := float64(k) / float64(cfg.n)
	fmt.Printf("population %d, k=%d (area needed ≈ %.4g)\n\n", cfg.n, k, needed)

	t := newTable("Amax", "k ok %", "Amax ok %", "both %", "mean area")
	for _, mult := range []float64{0.1, 0.5, 1, 2, 8, 32} {
		amax := needed * mult
		req := privacy.Requirement{K: k, MaxArea: amax}
		var kOK, aOK, both int
		var areaSum float64
		const samples = 500
		stride := len(p.pts)/samples + 1
		count := 0
		for i := 0; i < len(p.pts); i += stride {
			res := q.Cloak(uint64(i+1), p.pts[i], req)
			if res.SatisfiedK {
				kOK++
			}
			if res.SatisfiedMaxArea {
				aOK++
			}
			if res.SatisfiedK && res.SatisfiedMaxArea {
				both++
			}
			areaSum += res.Region.Area()
			count++
		}
		t.row(fmt.Sprintf("%.1fx", mult),
			100*float64(kOK)/float64(count),
			100*float64(aOK)/float64(count),
			100*float64(both)/float64(count),
			areaSum/float64(count))
	}
	t.flush()
	fmt.Println("\nreading: k is always preferred (the paper's hard minimum);")
	fmt.Println("tight Amax values are sacrificed and flagged best-effort.")
}
