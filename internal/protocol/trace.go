package protocol

import (
	"fmt"

	"repro/internal/trace"
)

// traceNegVersion is the envelope version answered to MsgTraceNeg probes.
const traceNegVersion byte = 1

// tracedHeaderLen is the fixed prefix of a MsgTraced payload:
// [u64 traceID][u64 parentSpanID][u8 flags][u8 innerType].
const tracedHeaderLen = 8 + 8 + 1 + 1

// encodeTraced wraps an inner request frame in the tracing envelope.
func encodeTraced(sc trace.SpanContext, innerTyp byte, inner []byte) []byte {
	var e Encoder
	e.U64(sc.TraceID).U64(sc.SpanID).U8(sc.Flags).U8(innerTyp)
	e.buf = append(e.buf, inner...)
	return e.Bytes()
}

// decodeTraced unwraps a tracing envelope. It rejects truncated payloads
// and nested envelopes (an envelope inside an envelope would let a peer
// build unbounded dispatch recursion), and refuses response types as the
// inner frame — the inner frame must be a request.
func decodeTraced(payload []byte) (sc trace.SpanContext, innerTyp byte, inner []byte, err error) {
	if len(payload) < tracedHeaderLen {
		return trace.SpanContext{}, 0, nil, ErrShortPayload
	}
	d := NewDecoder(payload)
	sc.TraceID = d.U64()
	sc.SpanID = d.U64()
	sc.Flags = d.U8()
	innerTyp = d.U8()
	switch innerTyp {
	case MsgTraced:
		return trace.SpanContext{}, 0, nil, fmt.Errorf("protocol: nested traced envelope")
	case msgOK, msgErr:
		return trace.SpanContext{}, 0, nil, fmt.Errorf("protocol: traced envelope around response type %d", innerTyp)
	}
	if sc.TraceID == 0 {
		return trace.SpanContext{}, 0, nil, fmt.Errorf("protocol: traced envelope with zero trace id")
	}
	return sc, innerTyp, payload[tracedHeaderLen:], nil
}

// encodeSpans serializes a span-ring snapshot for a MsgTraces response.
func encodeSpans(spans []trace.SpanRecord) []byte {
	var e Encoder
	e.U32(uint32(len(spans)))
	for i := range spans {
		rec := &spans[i]
		e.U64(rec.TraceID).U64(rec.SpanID).U64(rec.ParentID)
		e.U64(uint64(rec.Start)).U64(uint64(rec.Dur))
		e.Str(rec.Name).Str(rec.Proc)
		attrs := rec.Attrs
		if len(attrs) > 255 { // the count field is one byte
			attrs = attrs[:255]
		}
		e.U8(byte(len(attrs)))
		for _, a := range attrs {
			if a.IsStr {
				e.U8(1).Str(a.Key).Str(a.Str)
			} else {
				e.U8(0).Str(a.Key).U64(uint64(a.Int))
			}
		}
	}
	return e.Bytes()
}

// DecodeSpans parses a MsgTraces response payload.
func DecodeSpans(payload []byte) ([]trace.SpanRecord, error) {
	d := NewDecoder(payload)
	n := int(d.U32())
	// 8·5 fixed bytes + two empty strings + attr count per span.
	out := make([]trace.SpanRecord, 0, capHint(n, 45, d))
	for i := 0; i < n; i++ {
		var rec trace.SpanRecord
		rec.TraceID = d.U64()
		rec.SpanID = d.U64()
		rec.ParentID = d.U64()
		rec.Start = int64(d.U64())
		rec.Dur = int64(d.U64())
		rec.Name = d.Str()
		rec.Proc = d.Str()
		na := int(d.U8())
		if na > 0 {
			rec.Attrs = make([]trace.Attr, 0, capHint(na, 4, d))
			for j := 0; j < na; j++ {
				kind := d.U8()
				key := d.Str()
				switch kind {
				case 1:
					rec.Attrs = append(rec.Attrs, trace.Str(key, d.Str()))
				default:
					rec.Attrs = append(rec.Attrs, trace.Int(key, int64(d.U64())))
				}
			}
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		out = append(out, rec)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return out, nil
}

// Traces pulls the peer's span ring buffer. The peer must have tracing
// configured (Service WithTracing); un-traced peers answer ErrRemote.
func (c *Client) Traces() ([]trace.SpanRecord, error) {
	resp, err := c.Call(MsgTraces, nil)
	if err != nil {
		return nil, err
	}
	return DecodeSpans(resp)
}

// Traces pulls the anonymizer daemon's span ring buffer.
func (ac *AnonymizerClient) Traces() ([]trace.SpanRecord, error) { return ac.c.Traces() }

// Traces pulls the database daemon's span ring buffer.
func (dc *DatabaseClient) Traces() ([]trace.SpanRecord, error) { return dc.c.Traces() }
