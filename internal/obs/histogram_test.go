package obs_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// hist builds a registered histogram without touching unexported APIs.
func hist(bounds []float64) (*obs.Registry, *obs.Histogram) {
	reg := obs.NewRegistry()
	return reg, reg.Histogram("h", "test histogram", bounds)
}

func snapshot(reg *obs.Registry) obs.HistogramSnapshot {
	s, ok := reg.Find("h")
	if !ok {
		panic("histogram not registered")
	}
	return s.Hist
}

// TestBucketBoundaries pins the le semantics: an observation equal to a
// bound lands in that bound's bucket, anything above the last bound lands
// in the +Inf overflow bucket.
func TestBucketBoundaries(t *testing.T) {
	reg, h := hist([]float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.5, 2, 3, 4, 4.0001, 100} {
		h.Observe(v)
	}
	s := snapshot(reg)
	want := []uint64{2, 2, 2, 2} // {0,1} {1.5,2} {3,4} {4.0001,100}
	if len(s.Counts) != len(want) {
		t.Fatalf("len(Counts) = %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count() != 8 {
		t.Errorf("Count() = %d, want 8", s.Count())
	}
	if wantSum := 0.0 + 1 + 1.5 + 2 + 3 + 4 + 4.0001 + 100; s.Sum != wantSum {
		t.Errorf("Sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestSnapshotMerge(t *testing.T) {
	regA, a := hist([]float64{1, 2})
	regB, b := hist([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(1.5)
	b.Observe(10)
	sa, sb := snapshot(regA), snapshot(regB)
	if err := sa.Merge(sb); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got, want := sa.Counts, []uint64{1, 2, 1}; got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("merged counts = %v, want %v", got, want)
	}
	if sa.Sum != 0.5+1.5+1.5+10 {
		t.Errorf("merged sum = %g", sa.Sum)
	}
	// Merging must not corrupt the live histogram the snapshot came from.
	if live := snapshot(regA); live.Counts[1] != 1 {
		t.Errorf("live histogram mutated by snapshot merge: %v", live.Counts)
	}

	regC, _ := hist([]float64{1, 3})
	sc := snapshot(regC)
	if err := sa.Merge(sc); err == nil {
		t.Fatal("merging mismatched bucket layouts must fail")
	}
	regD, _ := hist([]float64{1})
	sd := snapshot(regD)
	if err := sa.Merge(sd); err == nil {
		t.Fatal("merging different bucket counts must fail")
	}
}

func TestQuantileEmptyAndOverflow(t *testing.T) {
	reg, h := hist([]float64{1, 2})
	if q := snapshot(reg).Quantile(50); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
	h.Observe(50) // overflow only
	if q := snapshot(reg).Quantile(99); q != 2 {
		t.Errorf("overflow quantile = %g, want last finite bound 2", q)
	}
}

// TestQuantileAgreesWithStats checks the promoted-rank contract: for any
// sample set, the histogram's quantile must land inside the bucket that
// holds the exact nearest-rank sample reported by stats.Latencies.
func TestQuantileAgreesWithStats(t *testing.T) {
	bounds := obs.DefaultLatencyBuckets
	reg, h := hist(bounds)
	var lat stats.Latencies
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~1µs .. ~1s.
		d := time.Duration(float64(time.Microsecond) * (1 + r.ExpFloat64()*20000))
		lat.Add(d)
		h.ObserveDuration(d)
	}
	s := snapshot(reg)
	for _, p := range []float64{1, 25, 50, 90, 95, 99, 99.9} {
		exact := lat.Percentile(p).Seconds()
		got := s.Quantile(p)
		lo, hi := 0.0, bounds[len(bounds)-1]
		for i, b := range bounds {
			if exact <= b {
				hi = b
				if i > 0 {
					lo = bounds[i-1]
				}
				break
			}
		}
		if got <= lo || got > hi {
			t.Errorf("p%g: histogram quantile %g outside bucket (%g, %g] of exact sample %g",
				p, got, lo, hi, exact)
		}
	}
}

func TestSinceAndObserveDuration(t *testing.T) {
	reg, h := hist(nil) // DefaultLatencyBuckets
	h.ObserveDuration(3 * time.Millisecond)
	h.Since(time.Now().Add(-2 * time.Millisecond))
	s := snapshot(reg)
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2", s.Count())
	}
	if s.Sum < 0.004 || s.Sum > 0.1 {
		t.Errorf("sum = %gs, want ≈ 5ms", s.Sum)
	}
	if d := s.QuantileDuration(100); d < 2*time.Millisecond || d > time.Second {
		t.Errorf("QuantileDuration(100) = %v", d)
	}
}

func TestExpBuckets(t *testing.T) {
	b := obs.ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets with factor <= 1 must panic")
		}
	}()
	obs.ExpBuckets(1, 1, 4)
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	reg := obs.NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds must panic")
		}
	}()
	reg.Histogram("bad", "h", []float64{1, 1, 2})
}
