package protocol

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/privacy"
	"repro/internal/server"
)

// startEcho serves an echo handler and tears it down with the test.
func startEcho(t *testing.T, opts ...Option) *Service {
	t.Helper()
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		return p, nil
	}, quiet, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// fastRetry keeps the test-time retry schedule tight and deterministic.
func fastRetry() []DialOption {
	return []DialOption{
		WithRetryBackoff(time.Millisecond, 10*time.Millisecond),
		WithJitterSeed(7),
	}
}

// poll waits until cond holds or the deadline passes.
func poll(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// A connection reset mid-frame on an idempotent call is absorbed: the
// client reconnects and retries, and the caller never sees the fault.
func TestClientRetriesAfterMidFrameReset(t *testing.T) {
	svc := startEcho(t)
	reg := obs.NewRegistry()
	// Connection 1 dies writing its second frame; connection 2 is clean.
	dial := faults.Dialer(func(conn int) []faults.Rule {
		if conn == 1 {
			return []faults.Rule{{Op: faults.Write, Nth: 2, Action: faults.Reset}}
		}
		return nil
	})
	opts := append(fastRetry(), WithDialer(dial), WithRetries(2), WithClientMetrics(reg))
	c, err := Dial(svc.Addr(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(MsgUpdate, []byte("one")); err != nil {
		t.Fatalf("clean first call failed: %v", err)
	}
	resp, err := c.Call(MsgUpdate, []byte("two"))
	if err != nil {
		t.Fatalf("call not retried through the reset: %v", err)
	}
	if string(resp) != "two" {
		t.Fatalf("resp = %q, want %q", resp, "two")
	}
	if got := reg.Counter("proto_retries_total", "").Value(); got == 0 {
		t.Error("proto_retries_total = 0, want > 0")
	}
	if got := reg.Counter("proto_reconnects_total", "").Value(); got == 0 {
		t.Error("proto_reconnects_total = 0, want > 0")
	}
}

// A full server restart between calls is survived transparently by the
// retry + reconnect path.
func TestClientReconnectsAfterServerRestart(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		return p, nil
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	addr := svc.Addr()

	opts := append(fastRetry(), WithRetries(3))
	c, err := Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(MsgUpdate, []byte("before")); err != nil {
		t.Fatal(err)
	}

	svc.Close()
	svc2, err := Serve(addr, func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		return p, nil
	}, quiet)
	if err != nil {
		t.Fatalf("cannot rebind %s: %v", addr, err)
	}
	defer svc2.Close()

	resp, err := c.Call(MsgUpdate, []byte("after"))
	if err != nil {
		t.Fatalf("call across restart failed: %v", err)
	}
	if string(resp) != "after" {
		t.Fatalf("resp = %q, want %q", resp, "after")
	}
}

// The breaker opens after the threshold of consecutive transport failures,
// sheds calls without touching the network, then half-opens after the
// cooldown and closes again on a successful probe.
func TestBreakerOpensShedsAndRecovers(t *testing.T) {
	// Reserve an address with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reg := obs.NewRegistry()
	opts := append(fastRetry(),
		WithLazyDial(), WithRetries(0),
		WithBreaker(3, 150*time.Millisecond),
		WithClientMetrics(reg))
	c, err := Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		if _, err := c.Call(MsgStats, nil); err == nil {
			t.Fatalf("call %d to a dead address succeeded", i)
		}
	}
	if got := c.BreakerState(); got != breakerOpen {
		t.Fatalf("BreakerState = %d after %d failures, want open (%d)", got, 3, breakerOpen)
	}
	if got := reg.Gauge("proto_breaker_state", "").Value(); got != float64(breakerOpen) {
		t.Fatalf("proto_breaker_state = %v, want %d", got, breakerOpen)
	}

	// While open, calls are shed immediately with ErrBreakerOpen.
	if _, err := c.Call(MsgStats, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	if got := reg.Counter("proto_breaker_rejected_total", "").Value(); got == 0 {
		t.Error("proto_breaker_rejected_total = 0, want > 0")
	}

	// Bring the peer up and let the cooldown pass: the half-open probe
	// closes the breaker again.
	svc, err := Serve(addr, func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		return p, nil
	}, quiet)
	if err != nil {
		t.Fatalf("cannot bind %s: %v", addr, err)
	}
	defer svc.Close()
	time.Sleep(200 * time.Millisecond)

	resp, err := c.Call(MsgStats, []byte("probe"))
	if err != nil {
		t.Fatalf("probe after cooldown failed: %v", err)
	}
	if string(resp) != "probe" {
		t.Fatalf("resp = %q", resp)
	}
	if got := c.BreakerState(); got != breakerClosed {
		t.Fatalf("BreakerState = %d after recovery, want closed", got)
	}
	if got := reg.Counter("proto_breaker_opens_total", "").Value(); got == 0 {
		t.Error("proto_breaker_opens_total = 0, want > 0")
	}
}

// A failed half-open probe re-opens the breaker immediately instead of
// resetting the failure count.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	opts := append(fastRetry(), WithLazyDial(), WithRetries(0), WithBreaker(2, 50*time.Millisecond))
	c, err := Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Call(MsgStats, nil)
	c.Call(MsgStats, nil)
	if got := c.BreakerState(); got != breakerOpen {
		t.Fatalf("BreakerState = %d, want open", got)
	}
	time.Sleep(80 * time.Millisecond)
	// Peer still down: the single admitted probe fails and re-opens.
	if _, err := c.Call(MsgStats, nil); err == nil {
		t.Fatal("probe to a dead address succeeded")
	}
	if got := c.BreakerState(); got != breakerOpen {
		t.Fatalf("BreakerState = %d after failed probe, want open", got)
	}
}

// The per-call deadline bounds a stalled handler; the timeout is counted.
func TestCallTimeoutBoundsStalledHandler(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		time.Sleep(400 * time.Millisecond)
		return p, nil
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	reg := obs.NewRegistry()
	c, err := Dial(svc.Addr(), WithCallTimeout(40*time.Millisecond), WithRetries(0), WithClientMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Call(MsgStats, nil)
	if err == nil {
		t.Fatal("stalled call returned without error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error %v is not a timeout", err)
	}
	if el := time.Since(start); el > 300*time.Millisecond {
		t.Fatalf("deadline did not bound the call: took %v", el)
	}
	if got := reg.Counter("proto_call_timeouts_total", "").Value(); got != 1 {
		t.Fatalf("proto_call_timeouts_total = %d, want 1", got)
	}
}

// A context deadline tighter than the call timeout wins.
func TestCallCtxRespectsContext(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		time.Sleep(400 * time.Millisecond)
		return p, nil
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Dial(svc.Addr(), WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.CallCtx(ctx, MsgStats, nil); err == nil {
		t.Fatal("call outlived its context")
	}
	if el := time.Since(start); el > 300*time.Millisecond {
		t.Fatalf("context deadline ignored: took %v", el)
	}
}

// Non-idempotent message types are never retried: a transport failure
// surfaces on the first attempt so the caller decides.
func TestNonIdempotentCallsNotRetried(t *testing.T) {
	svc := startEcho(t)
	reg := obs.NewRegistry()
	// Every connection dies on its first written frame.
	dial := faults.Dialer(func(conn int) []faults.Rule {
		return []faults.Rule{{Op: faults.Write, Nth: 1, Action: faults.Drop}}
	})
	opts := append(fastRetry(), WithDialer(dial), WithRetries(3), WithBreaker(0, 0), WithClientMetrics(reg))
	c, err := Dial(svc.Addr(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(MsgRegister, []byte("x")); err == nil {
		t.Fatal("doomed register call succeeded")
	}
	if got := reg.Counter("proto_retries_total", "").Value(); got != 0 {
		t.Fatalf("non-idempotent call was retried %d times", got)
	}
	if _, err := c.Call(MsgUpdate, []byte("x")); err == nil {
		t.Fatal("doomed update call succeeded")
	}
	if got := reg.Counter("proto_retries_total", "").Value(); got != 3 {
		t.Fatalf("idempotent call retried %d times, want 3", got)
	}
}

// The accept loop survives a storm of transient Accept errors and then
// serves normally.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flaky := faults.NewFlakyListener(ln, 4)
	reg := obs.NewRegistry()
	svc, err := ServeListener(flaky, func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		return p, nil
	}, quiet, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	c, err := Dial(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Call(1, []byte("alive")); err != nil || string(resp) != "alive" {
		t.Fatalf("service dead after transient accept errors: %q, %v", resp, err)
	}
	if got := reg.Counter("proto_accept_retries_total", "").Value(); got != 4 {
		t.Fatalf("proto_accept_retries_total = %d, want 4", got)
	}
}

// The connection cap rejects excess connections cleanly and frees slots
// when connections close.
func TestMaxConnsCapsAndRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	svc := startEcho(t, WithMaxConns(1), WithMetrics(reg))

	c1, err := Dial(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Call(1, []byte("hold")); err != nil {
		t.Fatal(err)
	}

	// The second connection is accepted and closed: a clean EOF.
	raw, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("over-cap connection served data")
	}
	raw.Close()
	if got := reg.Counter("proto_conns_rejected_total", "").Value(); got == 0 {
		t.Error("proto_conns_rejected_total = 0, want > 0")
	}

	// Freeing the slot lets a new client in.
	c1.Close()
	poll(t, 2*time.Second, func() bool {
		c2, err := Dial(svc.Addr())
		if err != nil {
			return false
		}
		defer c2.Close()
		_, err = c2.Call(1, []byte("in"))
		return err == nil
	}, "slot to free after close")
}

// Idle connections are reaped by the read deadline and counted separately
// from dropped frames.
func TestReadTimeoutReapsIdleConnections(t *testing.T) {
	reg := obs.NewRegistry()
	svc := startEcho(t, WithReadTimeout(50*time.Millisecond), WithMetrics(reg))

	raw, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("idle connection was not dropped")
	}
	poll(t, 2*time.Second, func() bool {
		return reg.Counter("proto_idle_drops_total", "").Value() == 1
	}, "idle drop to be counted")
	if got := reg.Counter("proto_dropped_frames_total", "").Value(); got != 0 {
		t.Fatalf("idle reap miscounted as dropped frame (%d)", got)
	}
}

// Close with a drain timeout lets an in-flight request finish instead of
// cutting it mid-response.
func TestDrainTimeoutFinishesInFlightCall(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		time.Sleep(80 * time.Millisecond)
		return p, nil
	}, quiet, WithDrainTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(svc.Addr(), WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := make(chan error, 1)
	go func() {
		_, err := c.Call(1, []byte("slow"))
		res <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	if err := svc.Close(); err != nil {
		t.Fatalf("drain close: %v", err)
	}
	if err := <-res; err != nil {
		t.Fatalf("in-flight call cut by graceful close: %v", err)
	}
}

// End-to-end acceptance: with the database tier down mid-run, every user
// update keeps succeeding (regions spill at the anonymizer), and after the
// database returns every user's region lands — zero lost location updates.
func TestZeroLossAcrossDatabaseOutage(t *testing.T) {
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	dbSvc, err := ServeDatabase("127.0.0.1:0", srv, quiet)
	if err != nil {
		t.Fatal(err)
	}
	dbAddr := dbSvc.Addr()

	fwd, err := DialDatabase(dbAddr,
		WithCallTimeout(500*time.Millisecond),
		WithRetries(0), WithBreaker(0, 0),
		WithRetryBackoff(time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	anon, err := anonymizer.New(anonymizer.Config{
		World:            world,
		Forward:          fwd.UpdatePrivate,
		ForwardQueue:     256,
		ForwardRetryBase: 10 * time.Millisecond,
		ForwardRetryMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anon, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer anonSvc.Close()
	ac, err := DialAnonymizer(anonSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()

	const users = 24
	prof := privacy.Constant(privacy.Requirement{K: 3})
	for id := uint64(1); id <= users; id++ {
		if err := ac.Register(id, prof); err != nil {
			t.Fatal(err)
		}
	}
	pos := func(id uint64, round int) geo.Point {
		return geo.Pt(float64(id)/(users+1), 0.1+0.2*float64(round))
	}

	// Round 0: database up, everything forwards directly.
	for id := uint64(1); id <= users; id++ {
		if _, err := ac.Update(id, pos(id, 0)); err != nil {
			t.Fatalf("round 0 update %d: %v", id, err)
		}
	}

	// Outage: the database tier goes away mid-run. Updates must keep
	// succeeding — the anonymizer spills cloaked regions, never errors.
	dbSvc.Close()
	for round := 1; round <= 2; round++ {
		for id := uint64(1); id <= users; id++ {
			if _, err := ac.Update(id, pos(id, round)); err != nil {
				t.Fatalf("update %d lost during outage: %v", id, err)
			}
		}
	}
	st, err := ac.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Spilled == 0 {
		t.Fatal("no spills recorded during the outage")
	}

	// Recovery on the same address; the spill queue must drain fully.
	dbSvc2, err := ServeDatabase(dbAddr, srv, quiet)
	if err != nil {
		t.Fatalf("cannot restart database on %s: %v", dbAddr, err)
	}
	defer dbSvc2.Close()
	poll(t, 10*time.Second, func() bool {
		st, err := ac.Stats()
		return err == nil && st.QueueDepth == 0
	}, "spill queue drain")

	if got := srv.PrivateUserCount(); got != users {
		t.Fatalf("database holds %d users after recovery, want %d — updates were lost", got, users)
	}
	st, err = ac.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed == 0 {
		t.Fatal("queue drained without replays")
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 (queue was large enough)", st.Dropped)
	}
}
