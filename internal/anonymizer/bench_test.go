package anonymizer

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// benchAnon builds a warmed anonymizer with n users for a shard setting.
func benchAnon(b *testing.B, shards, n int) (*Anonymizer, []geo.Point) {
	b.Helper()
	a := newAnon(b, Config{Shards: shards, BatchWorkers: shards})
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: n, World: world, Dist: mobility.Gaussian, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	prof := privacy.Constant(privacy.Requirement{K: 25})
	for i, p := range pts {
		a.Register(uint64(i+1), prof)
		if _, err := a.Update(uint64(i+1), p); err != nil {
			b.Fatal(err)
		}
	}
	return a, pts
}

// BenchmarkAnonBatchUpdate drives the full three-phase batch pipeline at
// shard counts 1/4/8 — the series the regression harness (lbsbench E16)
// tracks as updates/sec.
func BenchmarkAnonBatchUpdate(b *testing.B) {
	const n = 5000
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			a, pts := benchAnon(b, shards, n)
			reqs := make([]cloak.Request, n)
			for i, p := range pts {
				reqs[i] = cloak.Request{ID: uint64(i + 1), Loc: p}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.BatchUpdate(reqs)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

// BenchmarkAnonSingleUpdate is the per-call path at the same shard counts
// (serial caller: measures per-op overhead, not contention).
func BenchmarkAnonSingleUpdate(b *testing.B) {
	const n = 5000
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			a, pts := benchAnon(b, shards, n)
			src := rng.New(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := uint64(src.Intn(n)) + 1
				if _, err := a.Update(id, pts[id-1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnonSingleUpdateParallel measures shard-stripe contention:
// concurrent callers on GOMAXPROCS goroutines. With Shards=1 every caller
// serializes on one mutex; with more stripes they mostly don't.
func BenchmarkAnonSingleUpdateParallel(b *testing.B) {
	const n = 5000
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			a, pts := benchAnon(b, shards, n)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				src := rng.New(seq.Add(1))
				for pb.Next() {
					id := uint64(src.Intn(n)) + 1
					if _, err := a.Update(id, pts[id-1]); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
