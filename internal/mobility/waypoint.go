package mobility

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/rng"
)

// User is a simulated mobile user with an identity and a current exact
// location. The anonymizer is the only component allowed to observe Loc;
// the server only ever sees cloaked regions.
type User struct {
	ID  uint64
	Loc geo.Point
}

// WaypointSim is a random-waypoint mobility simulator: every user walks
// toward a uniformly chosen destination at an individual speed, pauses, and
// picks a new destination. It is the standard synthetic model for
// continuously-moving user populations and drives the incremental-cloaking
// experiment (E8).
type WaypointSim struct {
	world geo.Rect
	src   *rng.Source

	users []User
	dest  []geo.Point
	speed []float64 // distance per tick
	pause []int     // remaining pause ticks

	minSpeed, maxSpeed float64
	maxPause           int
	tick               int
}

// WaypointConfig configures a WaypointSim.
type WaypointConfig struct {
	Population PopulationSpec
	// MinSpeed and MaxSpeed are per-tick travel distances; each user draws a
	// speed uniformly from the interval when choosing a waypoint.
	MinSpeed, MaxSpeed float64
	// MaxPause is the maximum number of ticks a user rests at a waypoint.
	MaxPause int
}

// NewWaypointSim builds the simulator with users placed per the population
// spec and initial destinations already assigned.
func NewWaypointSim(cfg WaypointConfig) (*WaypointSim, error) {
	if cfg.MinSpeed < 0 || cfg.MaxSpeed < cfg.MinSpeed {
		return nil, fmt.Errorf("mobility: invalid speed range [%g,%g]", cfg.MinSpeed, cfg.MaxSpeed)
	}
	if cfg.MaxPause < 0 {
		return nil, fmt.Errorf("mobility: negative MaxPause %d", cfg.MaxPause)
	}
	pts, err := GeneratePoints(cfg.Population)
	if err != nil {
		return nil, err
	}
	s := &WaypointSim{
		world:    cfg.Population.World,
		src:      rng.New(cfg.Population.Seed ^ 0xdeadbeefcafe),
		users:    make([]User, len(pts)),
		dest:     make([]geo.Point, len(pts)),
		speed:    make([]float64, len(pts)),
		pause:    make([]int, len(pts)),
		minSpeed: cfg.MinSpeed,
		maxSpeed: cfg.MaxSpeed,
		maxPause: cfg.MaxPause,
	}
	for i, p := range pts {
		s.users[i] = User{ID: uint64(i) + 1, Loc: p}
		s.newWaypoint(i)
	}
	return s, nil
}

func (s *WaypointSim) newWaypoint(i int) {
	s.dest[i] = geo.Pt(
		s.src.Range(s.world.Min.X, s.world.Max.X),
		s.src.Range(s.world.Min.Y, s.world.Max.Y),
	)
	if s.maxSpeed == s.minSpeed {
		s.speed[i] = s.minSpeed
	} else {
		s.speed[i] = s.src.Range(s.minSpeed, s.maxSpeed)
	}
	if s.maxPause > 0 {
		s.pause[i] = s.src.Intn(s.maxPause + 1)
	}
}

// Len returns the number of simulated users.
func (s *WaypointSim) Len() int { return len(s.users) }

// Users returns the live user slice. Callers must treat it as read-only;
// it is exposed without copying because experiments iterate it every tick.
func (s *WaypointSim) Users() []User { return s.users }

// User returns a copy of user i.
func (s *WaypointSim) User(i int) User { return s.users[i] }

// Tick advances the simulation one step and returns the indices of users
// that moved (paused users do not move).
func (s *WaypointSim) Tick() []int {
	moved := make([]int, 0, len(s.users))
	for i := range s.users {
		if s.pause[i] > 0 {
			s.pause[i]--
			continue
		}
		u := &s.users[i]
		d := s.dest[i]
		dist := u.Loc.Dist(d)
		if dist <= s.speed[i] {
			u.Loc = d
			s.newWaypoint(i)
		} else {
			u.Loc = u.Loc.Lerp(d, s.speed[i]/dist)
		}
		moved = append(moved, i)
	}
	s.tick++
	return moved
}

// TickCount returns how many ticks have been simulated.
func (s *WaypointSim) TickCount() int { return s.tick }

// World returns the simulation bounds.
func (s *WaypointSim) World() geo.Rect { return s.world }
