// Package fixture exercises the hotalloc pass: the compiler's escape
// analysis is replayed over this package, and any annotated function
// with more heap-escape sites than its budget is a build break.
package fixture

// sink publishes pointers so escape analysis cannot stack-allocate them.
var sink *int

// withinBudget allocates exactly the one escaping value its budget
// allows.
//
//lint:hotpath allocs=1
func withinBudget() *int {
	v := new(int)
	return v
}

// overBudget promises a zero-allocation body but publishes two values.
//
//lint:hotpath allocs=0
func overBudget() { // want "overBudget has 2 heap-escape sites, over its //lint:hotpath budget allocs=0"
	a := new(int)
	b := new(int)
	sink = a
	sink = b
}

// badBudget's directive does not parse, so no budget is enforced — which
// is exactly why it must be reported.
//
//lint:hotpath buckets=3 // want "malformed //lint:hotpath directive"
func badBudget() int {
	return 0
}

// unannotated escapes freely: no budget, no report.
func unannotated() *int {
	return new(int)
}
