package mobility

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/rng"
)

// RoadNetwork is a synthetic Manhattan-style grid road network: Rows×Cols
// intersections connected by axis-parallel road segments. Users constrained
// to a road network produce the strongly linear location distributions that
// stress rectangle-based cloaking (regions become long and thin).
type RoadNetwork struct {
	world      geo.Rect
	rows, cols int
}

// NewRoadNetwork lays a rows×cols grid of intersections over the world.
// rows and cols must each be at least 2.
func NewRoadNetwork(world geo.Rect, rows, cols int) (*RoadNetwork, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("mobility: road grid needs ≥2 rows and cols, got %d×%d", rows, cols)
	}
	if !world.Valid() || world.Area() <= 0 {
		return nil, fmt.Errorf("mobility: invalid world %v", world)
	}
	return &RoadNetwork{world: world, rows: rows, cols: cols}, nil
}

// Intersection returns the coordinates of intersection (r, c).
func (n *RoadNetwork) Intersection(r, c int) geo.Point {
	fx := float64(c) / float64(n.cols-1)
	fy := float64(r) / float64(n.rows-1)
	return geo.Pt(
		n.world.Min.X+fx*n.world.Width(),
		n.world.Min.Y+fy*n.world.Height(),
	)
}

// Dims returns the number of rows and columns of intersections.
func (n *RoadNetwork) Dims() (rows, cols int) { return n.rows, n.cols }

// World returns the network bounds.
func (n *RoadNetwork) World() geo.Rect { return n.world }

// RoadSim moves users along the road network: each user walks along road
// segments toward a destination intersection, turning at intersections.
type RoadSim struct {
	net   *RoadNetwork
	src   *rng.Source
	users []User
	// Per-user state in grid coordinates: current position as fractional
	// (row, col) along an axis-parallel segment, plus the destination.
	row, col       []float64
	dstRow, dstCol []int
	speed          []float64 // in grid cells per tick
	minSpd, maxSpd float64
	tick           int
}

// RoadConfig configures a RoadSim.
type RoadConfig struct {
	Net *RoadNetwork
	N   int
	// MinSpeed and MaxSpeed are in grid cells per tick.
	MinSpeed, MaxSpeed float64
	Seed               uint64
}

// NewRoadSim places N users at random intersections of the network.
func NewRoadSim(cfg RoadConfig) (*RoadSim, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("mobility: nil road network")
	}
	if cfg.N < 0 {
		return nil, fmt.Errorf("mobility: negative N %d", cfg.N)
	}
	if cfg.MinSpeed < 0 || cfg.MaxSpeed < cfg.MinSpeed {
		return nil, fmt.Errorf("mobility: invalid speed range [%g,%g]", cfg.MinSpeed, cfg.MaxSpeed)
	}
	s := &RoadSim{
		net:    cfg.Net,
		src:    rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15),
		users:  make([]User, cfg.N),
		row:    make([]float64, cfg.N),
		col:    make([]float64, cfg.N),
		dstRow: make([]int, cfg.N),
		dstCol: make([]int, cfg.N),
		speed:  make([]float64, cfg.N),
		minSpd: cfg.MinSpeed,
		maxSpd: cfg.MaxSpeed,
	}
	rows, cols := cfg.Net.Dims()
	for i := 0; i < cfg.N; i++ {
		s.row[i] = float64(s.src.Intn(rows))
		s.col[i] = float64(s.src.Intn(cols))
		s.users[i] = User{ID: uint64(i) + 1, Loc: s.loc(i)}
		s.newDest(i)
	}
	return s, nil
}

func (s *RoadSim) newDest(i int) {
	rows, cols := s.net.Dims()
	s.dstRow[i] = s.src.Intn(rows)
	s.dstCol[i] = s.src.Intn(cols)
	if s.maxSpd == s.minSpd {
		s.speed[i] = s.minSpd
	} else {
		s.speed[i] = s.src.Range(s.minSpd, s.maxSpd)
	}
}

// loc converts grid coordinates to world coordinates.
func (s *RoadSim) loc(i int) geo.Point {
	rows, cols := s.net.Dims()
	fx := s.col[i] / float64(cols-1)
	fy := s.row[i] / float64(rows-1)
	w := s.net.World()
	return geo.Pt(w.Min.X+fx*w.Width(), w.Min.Y+fy*w.Height())
}

// Len returns the number of users.
func (s *RoadSim) Len() int { return len(s.users) }

// Users returns the live user slice (read-only for callers).
func (s *RoadSim) Users() []User { return s.users }

// Tick advances every user one step along the roads (Manhattan routing:
// first resolve the column difference, then the row difference) and returns
// the indices of users that moved.
func (s *RoadSim) Tick() []int {
	moved := make([]int, 0, len(s.users))
	for i := range s.users {
		budget := s.speed[i]
		for budget > 0 {
			dc := float64(s.dstCol[i]) - s.col[i]
			dr := float64(s.dstRow[i]) - s.row[i]
			if dc == 0 && dr == 0 {
				s.newDest(i)
				// Destination may coincide with the current intersection; the
				// fresh destination is attempted on the next tick to bound work.
				break
			}
			if dc != 0 {
				step := clampStep(dc, budget)
				s.col[i] += step
				budget -= abs(step)
			} else {
				step := clampStep(dr, budget)
				s.row[i] += step
				budget -= abs(step)
			}
		}
		s.users[i].Loc = s.loc(i)
		moved = append(moved, i)
	}
	s.tick++
	return moved
}

// TickCount returns how many ticks have been simulated.
func (s *RoadSim) TickCount() int { return s.tick }

func clampStep(delta, budget float64) float64 {
	if delta > 0 {
		if delta < budget {
			return delta
		}
		return budget
	}
	if -delta < budget {
		return delta
	}
	return -budget
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
