package router

import "testing"

const ringTestTiles = 4096

// TestRingRemovalMovesOnlyRemovedTiles: dropping one shard from the ring
// reassigns exactly the tiles that shard owned — every other tile keeps
// its owner. This is the exact (not probabilistic) consistent-hashing
// stability property.
func TestRingRemovalMovesOnlyRemovedTiles(t *testing.T) {
	const n = 8
	full := newRing(n, 64)
	for removed := 0; removed < n; removed++ {
		var rest []int
		for s := 0; s < n; s++ {
			if s != removed {
				rest = append(rest, s)
			}
		}
		partial := newRingOf(rest, 64)
		moved := 0
		for tile := 0; tile < ringTestTiles; tile++ {
			before := full.owner(tile)
			after := partial.owner(tile)
			if before != removed && after != before {
				t.Fatalf("removing shard %d moved tile %d from %d to %d", removed, tile, before, after)
			}
			if before == removed {
				if after == removed {
					t.Fatalf("removed shard %d still owns tile %d", removed, tile)
				}
				moved++
			}
		}
		// Loose load bound: the removed shard owned roughly 1/n of the
		// tiles (vnodes smooth the distribution, they do not equalize it).
		if lo, hi := ringTestTiles/(4*n), ringTestTiles*4/n; moved < lo || moved > hi {
			t.Errorf("shard %d owned %d of %d tiles, outside [%d, %d]", removed, moved, ringTestTiles, lo, hi)
		}
	}
}

// TestRingAdditionMovesTilesOnlyToNewShard: growing the ring by one shard
// steals tiles only for the newcomer — no tile moves between existing
// shards.
func TestRingAdditionMovesTilesOnlyToNewShard(t *testing.T) {
	for n := 1; n < 9; n++ {
		small := newRing(n, 64)
		grown := newRing(n+1, 64)
		moved := 0
		for tile := 0; tile < ringTestTiles; tile++ {
			before := small.owner(tile)
			after := grown.owner(tile)
			if after != before {
				if after != n {
					t.Fatalf("adding shard %d moved tile %d from %d to %d", n, tile, before, after)
				}
				moved++
			}
		}
		// The newcomer takes roughly 1/(n+1) of the tiles.
		if lo, hi := ringTestTiles/(4*(n+1)), ringTestTiles*4/(n+1); moved < lo || moved > hi {
			t.Errorf("new shard %d of %d took %d tiles, outside [%d, %d]", n, n+1, moved, lo, hi)
		}
	}
}

// TestRingSingleShardOwnsEverything: the degenerate one-shard ring maps
// every tile to shard 0.
func TestRingSingleShardOwnsEverything(t *testing.T) {
	r := newRing(1, 64)
	for tile := 0; tile < ringTestTiles; tile++ {
		if got := r.owner(tile); got != 0 {
			t.Fatalf("tile %d owned by %d in a one-shard ring", tile, got)
		}
	}
}
