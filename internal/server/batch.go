package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/prob"
	"repro/internal/trace"
)

// This file implements the shared-execution batch query engine (the
// database-server counterpart of the anonymizer's BatchUpdate pipeline).
// A batch admits a mix of private-range, private-NN and public-count
// queries; range-shaped entries whose query rectangles overlap are merged
// into one *shared descent* — a single index traversal over the union
// rectangle that answers the whole group — in the spirit of SINA's shared
// execution of overlapping spatial queries (Mokbel et al., SIGMOD 2004).
// Independent work units then fan out to a worker pool reading one frozen
// snapshot of the indices.
//
// The engine is deterministic by construction: results are bit-identical
// to the sequential per-query path for every worker count (the
// differential suite pins this down). The argument, per query class:
//
//   - Private range: the R-tree and grid traversals emit items in a fixed
//     structural order that does not depend on the probe rectangle — a
//     larger probe only widens which nodes/cells are visited, never
//     reorders them. Filtering the union descent's output down to a
//     member's expanded MBR therefore yields exactly the item sequence the
//     member's own search would have produced.
//   - Public count: per-user probabilities are sorted before accumulation
//     (the determinism rule PublicRangeCount documents), so any candidate
//     superset that contains the member's own candidate set produces a
//     bit-identical PDF.
//   - Private NN: evaluated per entry on the worker pool through the same
//     privateNNLocked core the sequential path uses.
//
// Lock order: BatchQuery takes s.mu (read) once in the coordinating
// goroutine and holds it across the fan-out, so workers read a frozen
// snapshot without touching the mutex; no worker acquires any other lock.

// BatchKind tags one entry of a batch query.
type BatchKind uint8

const (
	// BatchPrivateRange is a PrivateRangeQuery entry.
	BatchPrivateRange BatchKind = iota + 1
	// BatchPrivateNN is a PrivateNNQuery entry.
	BatchPrivateNN
	// BatchPublicCount is a PublicRangeCountQuery entry.
	BatchPublicCount
)

// String implements fmt.Stringer.
func (k BatchKind) String() string {
	switch k {
	case BatchPrivateRange:
		return "private_range"
	case BatchPrivateNN:
		return "private_nn"
	case BatchPublicCount:
		return "public_count"
	default:
		return fmt.Sprintf("batchkind(%d)", uint8(k))
	}
}

// BatchEntry is one query inside a batch; only the field selected by Kind
// is read.
type BatchEntry struct {
	Kind  BatchKind
	Range PrivateRangeQuery
	NN    PrivateNNQuery
	Count PublicRangeCountQuery
}

// BatchEntryError is the typed per-entry failure: an invalid query inside
// a batch fails alone, carrying its position and kind, and never poisons
// the shared descent of the group it would have joined.
type BatchEntryError struct {
	Index int
	Kind  BatchKind
	Err   error
}

// Error implements error.
func (e *BatchEntryError) Error() string {
	return fmt.Sprintf("batch entry %d (%s): %v", e.Index, e.Kind, e.Err)
}

// Unwrap exposes the underlying validation error.
func (e *BatchEntryError) Unwrap() error { return e.Err }

// BatchItemResult is the outcome of one entry: either Err is set (always a
// *BatchEntryError) or the field selected by the entry's Kind is.
type BatchItemResult struct {
	Err   error
	Range []PublicObject
	NN    PrivateNNResult
	Count PublicRangeCountResult
}

// BatchResult is the outcome of one BatchQuery call.
type BatchResult struct {
	// Items holds one result per input entry, in input order.
	Items []BatchItemResult
	// Groups is the number of independent work units the batch was split
	// into (shared descents plus per-entry NN evaluations).
	Groups int
	// SharedHits counts the entries that were answered by a descent
	// another entry initiated: sum over groups of (size − 1).
	SharedHits int
}

// batchUnit is one independent work unit: a shared descent over the union
// rectangle of overlapping range-shaped entries, or a single NN entry.
type batchUnit struct {
	kind    BatchKind
	members []int    // entry indices, ascending (= input order)
	union   geo.Rect // union rectangle of the members' probe rects
}

// BatchQuery evaluates a mixed batch of queries in one shared pass and
// returns per-entry results in input order. Invalid entries fail alone
// with a *BatchEntryError; valid entries are grouped, fanned out to the
// configured worker pool (Config.QueryWorkers), and answered from one
// frozen snapshot of the indices, bit-identically to the sequential path.
func (s *Server) BatchQuery(entries []BatchEntry) BatchResult {
	return s.BatchQueryCtx(context.Background(), entries)
}

// BatchQueryCtx is BatchQuery under a context: for traced requests every
// engine phase (validate → merge → shared descent with per-unit worker
// spans → gather) is recorded under the caller's trace, with group sizes
// and index node-visit counts as span attributes.
//
//lint:hotpath allocs=8
func (s *Server) BatchQueryCtx(ctx context.Context, entries []BatchEntry) BatchResult {
	res := BatchResult{Items: make([]BatchItemResult, len(entries))}
	if len(entries) == 0 {
		return res
	}
	t0 := time.Now()
	bsp, ctx := trace.Start(ctx, s.tracer, "lbs_batch")

	// Phase 1 — admission: validate every entry with exactly the checks
	// the sequential methods apply. Failures are recorded per entry and
	// excluded from grouping, so a bad entry cannot poison a descent.
	vsp, _ := trace.Start(ctx, s.tracer, "lbs_batch_validate")
	var rangeIdx, nnIdx, countIdx []int
	filters := make([]geo.Rect, len(entries)) // expanded MBR per range entry
	for i, e := range entries {
		var err error
		switch e.Kind {
		case BatchPrivateRange:
			if err = e.Range.validate(); err == nil {
				filters[i] = e.Range.Region.Expand(e.Range.Radius)
				rangeIdx = append(rangeIdx, i)
			}
		case BatchPrivateNN:
			if err = e.NN.validate(); err == nil {
				nnIdx = append(nnIdx, i)
			}
		case BatchPublicCount:
			if err = e.Count.validate(); err == nil {
				countIdx = append(countIdx, i)
			}
		default:
			err = fmt.Errorf("server: unknown batch query kind %d", uint8(e.Kind))
		}
		if err != nil {
			res.Items[i].Err = &BatchEntryError{Index: i, Kind: e.Kind, Err: err}
		}
	}
	if vsp.Recording() {
		vsp.SetAttrs(trace.Int("entries", int64(len(entries))),
			trace.Int("admitted", int64(len(rangeIdx)+len(nnIdx)+len(countIdx))))
		vsp.End()
	}

	// Phase 2 — grouping: connected components of the rectangle-overlap
	// graph, per query class (range entries probe the public indices,
	// count entries the region index — they cannot share a descent).
	msp, _ := trace.Start(ctx, s.tracer, "lbs_batch_merge")
	units := make([]batchUnit, 0, len(entries))
	for _, g := range groupOverlapping(rangeIdx, func(i int) geo.Rect { return filters[i] }) {
		units = append(units, batchUnit{kind: BatchPrivateRange, members: g, union: unionRect(g, func(i int) geo.Rect { return filters[i] })})
	}
	for _, g := range groupOverlapping(countIdx, func(i int) geo.Rect { return entries[i].Count.Query }) {
		units = append(units, batchUnit{kind: BatchPublicCount, members: g, union: unionRect(g, func(i int) geo.Rect { return entries[i].Count.Query })})
	}
	for _, i := range nnIdx {
		units = append(units, batchUnit{kind: BatchPrivateNN, members: []int{i}})
	}
	res.Groups = len(units)
	for _, u := range units {
		res.SharedHits += len(u.members) - 1
	}
	if msp.Recording() {
		msp.SetAttrs(trace.Int("groups", int64(res.Groups)),
			trace.Int("shared_hits", int64(res.SharedHits)))
		msp.End()
	}

	// Phase 3 — execution: freeze the indices once and fan the units out.
	// The read lock is held by this goroutine for the whole fan-out;
	// workers only read (writers stay excluded), and the wg join gives the
	// usual happens-before edges. Units write disjoint result slots.
	// Worker spans record into the lock-free ring, so tracing adds no
	// synchronization to the fan-out.
	dsp, dctx := trace.Start(ctx, s.tracer, "lbs_batch_descent")
	s.mu.RLock()
	parallelFor(len(units), s.queryWorkers, func(ui int) {
		u := units[ui]
		usp, _ := trace.Start(dctx, s.tracer, "lbs_batch_unit")
		var visits int
		switch u.kind {
		case BatchPrivateRange:
			visits = s.runRangeGroupLocked(entries, filters, u, res.Items)
		case BatchPublicCount:
			visits = s.runCountGroupLocked(entries, u, res.Items)
		case BatchPrivateNN:
			i := u.members[0]
			s.met.privateNNQs.Inc()
			res.Items[i].NN, visits = s.privateNNLocked(entries[i].NN)
		}
		if usp.Recording() {
			usp.SetAttrs(trace.Str("kind", u.kind.String()),
				trace.Int("members", int64(len(u.members))),
				trace.Int("node_visits", int64(visits)))
			usp.End()
		}
	})
	s.mu.RUnlock()
	dsp.End()

	// Phase 4 — gather: fold the batch into the shared-execution series.
	gsp, _ := trace.Start(ctx, s.tracer, "lbs_batch_gather")
	s.met.batches.Inc()
	s.met.batchEntries.Add(uint64(len(entries)))
	s.met.batchSharedHits.Add(uint64(res.SharedHits))
	s.met.batchSize.Observe(float64(len(entries)))
	s.met.batchGroups.Observe(float64(res.Groups))
	gsp.End()
	s.met.latBatch.ObserveExemplar(time.Since(t0).Seconds(), ctxTraceID(ctx))
	bsp.End()
	return res
}

// runRangeGroupLocked answers every private-range member of one group from
// a single descent of the stationary R-tree (and, if any member admits
// moving objects, a single scan of the moving grid) over the group's union
// rectangle. Per member, the union's item stream is filtered down to the
// member's own expanded MBR — the structural traversal order makes that
// sequence identical to what the member's private search would emit. It
// returns the R-tree node visits the shared descent cost.
//
//lint:hotpath allocs=1
func (s *Server) runRangeGroupLocked(entries []BatchEntry, filters []geo.Rect, u batchUnit, out []BatchItemResult) int {
	items, visits := s.stationary.SearchVisits(u.union, nil)
	s.met.nodeVisits.Observe(float64(visits))
	var movingItems []grid.Object
	for _, i := range u.members {
		if entries[i].Range.Class == "" {
			movingItems = s.moving.Search(u.union, nil)
			break
		}
	}
	for _, i := range u.members {
		q := entries[i].Range
		f := filters[i]
		var objs []PublicObject
		for _, it := range items {
			if !f.Contains(it.Loc) {
				continue
			}
			if q.Mode == RangeRounded && geo.MinDist(it.Loc, q.Region) > q.Radius {
				continue
			}
			o := s.resolveObjectLocked(it.ID, it.Loc, false)
			if q.Class != "" && o.Class != q.Class {
				continue
			}
			objs = append(objs, o)
		}
		if q.Class == "" {
			for _, m := range movingItems {
				if !f.Contains(m.Loc) {
					continue
				}
				if q.Mode == RangeRounded && geo.MinDist(m.Loc, q.Region) > q.Radius {
					continue
				}
				objs = append(objs, s.resolveObjectLocked(m.ID, m.Loc, true))
			}
		}
		// Same canonical order as PrivateRange: the shared descent emits
		// the same set, so sorting keeps the two paths bit-identical.
		SortObjects(objs)
		out[i].Range = objs
		s.met.privateRangeQs.Inc()
	}
	return visits
}

// runCountGroupLocked answers every public-count member of one group from
// a single probe of the region index over the union rectangle. The union's
// candidate set is a superset of each member's own; per-member overlap
// probabilities filter it back down, and the sort-before-accumulate rule
// makes the resulting PDF bit-identical to the sequential answer. It
// returns the candidate-set size as the unit's "node visits" — the probe
// cost the region index charges.
//
//lint:hotpath allocs=1
func (s *Server) runCountGroupLocked(entries []BatchEntry, u batchUnit, out []BatchItemResult) int {
	ids := s.privIdx.Query(u.union, nil)
	for _, i := range u.members {
		q := entries[i].Count.Query
		probs := make([]float64, 0, len(ids))
		naive := 0
		for _, id := range ids {
			if p := prob.Overlap(s.private[id], q); p > 0 {
				probs = append(probs, p)
				naive++
			}
		}
		sort.Float64s(probs)
		out[i].Count = PublicRangeCountResult{Answer: prob.RangeCount(probs), NaiveCount: naive}
		s.met.publicCountQs.Inc()
	}
	return len(ids)
}

// groupOverlapping partitions the entries (by index) into the connected
// components of their rectangle-intersection graph, via union–find over
// the pairwise tests. Components are emitted ordered by their smallest
// member, members ascending, so grouping is deterministic and independent
// of the worker count.
func groupOverlapping(idx []int, rect func(i int) geo.Rect) [][]int {
	if len(idx) == 0 {
		return nil
	}
	parent := make([]int, len(idx))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb { // root at the smallest position
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			if rect(idx[a]).Intersects(rect(idx[b])) {
				union(a, b)
			}
		}
	}
	byRoot := make(map[int][]int)
	var roots []int
	for i, e := range idx {
		r := find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], e)
	}
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		g := byRoot[r]
		sort.Ints(g)
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return groups
}

// unionRect returns the union of the members' rectangles.
func unionRect(members []int, rect func(i int) geo.Rect) geo.Rect {
	u := rect(members[0])
	for _, i := range members[1:] {
		u = u.Union(rect(i))
	}
	return u
}

// parallelFor runs fn(0..n-1) on up to workers goroutines; iterations are
// handed out by an atomic cursor, so callers only need fn(i) and fn(j) to
// touch disjoint state. workers ≤ 1 degenerates to a plain loop — the
// sequential reference point of the differential suite.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
