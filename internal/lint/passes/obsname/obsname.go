// Package obsname implements the lbsvet pass that keeps the
// observability namespace coherent: every metric name registered against
// an obs.Registry and every span name started against a trace.Tracer must
// be a snake_case string literal, be introduced at exactly one call site
// per package, and share its package's family prefix (the first
// underscore-separated segment: anon_*, proto_*, lbs_*, load_*), so
// dashboards, alerts and trace queries can rely on a stable, greppable
// naming scheme. Metrics and spans share one namespace per package —
// a span family diverging from the metric family is exactly the drift
// the pass exists to catch.
package obsname

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the obsname pass.
var Analyzer = &analysis.Analyzer{
	Name: "obsname",
	Doc: "enforce metric and span naming: snake_case literals, one\n" +
		"introduction site per package, one family prefix per package",
	Run: run,
}

const (
	obsPath   = "repro/internal/obs"
	tracePath = "repro/internal/trace"
)

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// site is one Registry.Counter/Gauge/Histogram call with a literal name.
type site struct {
	name string
	pos  token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	var sites []site
	for _, file := range pass.Files {
		// Tests register throwaway metrics on private registries; the
		// namespace contract covers production registrations only. (The
		// standalone loader never sees test files, but `go vet -vettool`
		// compiles them into the package.)
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, arg := "metric", -1
			if isRegistration(pass, call) {
				arg = 0
			} else if idx := spanNameArg(pass, call); idx >= 0 {
				kind, arg = "span", idx
			}
			if arg < 0 || len(call.Args) <= arg {
				return true
			}
			lit, ok := ast.Unparen(call.Args[arg]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Args[arg].Pos(),
					"%s name must be a string literal so the namespace is statically auditable", kind)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !nameRE.MatchString(name) {
				pass.Reportf(lit.Pos(),
					"%s name %q is not snake_case (want %s)", kind, name, nameRE)
			}
			sites = append(sites, site{name: name, pos: lit.Pos()})
			return true
		})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })

	// One introduction site per package and name: duplicated metric sites
	// drift apart (different help text, different buckets) and
	// double-register; duplicated span names make two different stages
	// indistinguishable in every timeline.
	first := make(map[string]token.Pos)
	for _, s := range sites {
		if prev, ok := first[s.name]; ok {
			pass.Reportf(s.pos,
				"%q is already introduced in this package at %s; share the one site",
				s.name, pass.Fset.Position(prev))
			continue
		}
		first[s.name] = s.pos
	}

	// Family prefix consistency within the package. Names that already
	// failed the snake_case check are excluded rather than double-reported.
	families := make(map[string]int)
	for name := range first {
		if nameRE.MatchString(name) {
			families[family(name)]++
		}
	}
	if len(families) > 1 {
		major := ""
		for f, n := range families {
			if n > families[major] || (n == families[major] && (major == "" || f < major)) {
				major = f
			}
		}
		for _, s := range sites {
			if first[s.name] == s.pos && nameRE.MatchString(s.name) && family(s.name) != major {
				pass.Reportf(s.pos,
					"%q is outside this package's %s_* family; one family prefix per package",
					s.name, major)
			}
		}
	}
	return nil, nil
}

func family(name string) string {
	f, _, _ := strings.Cut(name, "_")
	return f
}

// spanNameArg returns the index of the span-name argument when call
// introduces a span name — (*trace.Tracer).StartRoot(name),
// (*trace.Tracer).StartSpan(sc, name), or the package-level
// trace.Start(ctx, tracer, name) — and -1 otherwise. The trace package
// itself is exempt: its internals forward caller-supplied names through
// variables, and the naming contract binds the call sites that choose
// names, not the API plumbing.
func spanNameArg(pass *analysis.Pass, call *ast.CallExpr) int {
	if pass.Pkg != nil && pass.Pkg.Path() == tracePath {
		return -1
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return -1
	}
	// Methods on *trace.Tracer.
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		rt := s.Recv()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		named, ok := rt.(*types.Named)
		if !ok {
			return -1
		}
		tn := named.Obj()
		if tn.Pkg() == nil || tn.Pkg().Path() != tracePath || tn.Name() != "Tracer" {
			return -1
		}
		switch sel.Sel.Name {
		case "StartRoot":
			return 0
		case "StartSpan":
			return 1
		}
		return -1
	}
	// The package-level trace.Start helper.
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
		fn.Pkg() != nil && fn.Pkg().Path() == tracePath && fn.Name() == "Start" {
		return 2
	}
	return -1
}

// isRegistration reports whether call is (*obs.Registry).Counter, Gauge,
// or Histogram.
func isRegistration(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	rt := s.Recv()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == obsPath && tn.Name() == "Registry"
}
