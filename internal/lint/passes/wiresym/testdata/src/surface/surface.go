// Package fixture exercises the wiresym pass's failing shapes: orphaned
// constants, asymmetric request/response codecs, unguarded decode
// allocations, missing fuzz coverage and contradictory annotations. The
// Encoder/Decoder/capHint trio mirrors the production wire package by
// name, which is all the pass keys on.
package fixture

import "context"

const (
	MsgPing byte = 1 // symmetric, dispatched, fixed-shape: clean
	MsgEcho byte = 2
	MsgSkew byte = 3
	// MsgOrphan has a client encoder but no handler case anywhere.
	MsgOrphan byte = 4 // want "MsgOrphan is not dispatched by any wire handler"
	MsgContra byte = 5 //lint:client-only built and consumed on the same tier
	// want "MsgContra is annotated //lint:client-only but handle dispatches it; drop the annotation"
	MsgNoted byte = 6 //lint:client-only
	// want "//lint:client-only on MsgNoted needs a justification"
	MsgRaw byte = 7 //lint:wire-asym
	// want "//lint:wire-asym on MsgRaw needs a justification"
	// want "MsgRaw is not dispatched by any wire handler"
	MsgStale byte = 8 //lint:fuzzed-by FuzzNope covered by the envelope fuzzer
	// want "//lint:fuzzed-by on MsgStale names FuzzNope, which does not exist"
	//lint:client-only the half sub-frame never crosses the wire alone
	MsgHalf byte = 9 //lint:fuzzed-by FuzzOnly
	// want "//lint:fuzzed-by on MsgHalf wants <FuzzTarget> <why>"
	// MsgGrow's decode is capHint-guarded (variable length) but nothing
	// fuzzes it.
	MsgGrow byte = 10 // want "MsgGrow has a capHint-guarded .variable-length. decode path but no FuzzDecodeGrow fuzz target"
	// MsgUnbounded's decode loop is fine, but its make() trusts the
	// decoded count.
	MsgUnbounded byte = 11
)

// ---- codec scaffolding ----------------------------------------------------

type Encoder struct{ buf []byte }

func (e *Encoder) U8(v byte) *Encoder    { e.buf = append(e.buf, v); return e }
func (e *Encoder) U32(v uint32) *Encoder { e.buf = append(e.buf, byte(v)); return e }
func (e *Encoder) U64(v uint64) *Encoder { e.buf = append(e.buf, byte(v)); return e }
func (e *Encoder) Bytes() []byte         { return e.buf }

type Decoder struct {
	buf []byte
	off int
	err error
}

func (d *Decoder) take() byte {
	if d.off >= len(d.buf) {
		d.err = errShort
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *Decoder) U8() byte       { return d.take() }
func (d *Decoder) U32() uint32    { return uint32(d.take()) }
func (d *Decoder) U64() uint64    { return uint64(d.take()) }
func (d *Decoder) Err() error     { return d.err }
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

type wireError string

func (e wireError) Error() string { return string(e) }

const errShort = wireError("short frame")

func capHint(n, elemSize int, d *Decoder) int {
	if max := d.Remaining() / elemSize; n > max {
		return max
	}
	return n
}

// conn.call is the transport boundary: opaque []byte in, []byte out, so
// its internals belong to the envelope, not the message under proof.
type conn struct{}

func (c conn) call(typ byte, payload []byte) []byte { return payload }

// ---- handler --------------------------------------------------------------

func handle(ctx context.Context, typ byte, payload []byte) ([]byte, error) {
	d := &Decoder{buf: payload}
	switch typ {
	case MsgPing:
		v := d.U64()
		e := &Encoder{}
		e.U64(v)
		return e.buf, nil
	case MsgEcho:
		_ = d.U8()
		e := &Encoder{}
		e.U64(1).U64(2)
		return e.buf, nil
	case MsgSkew:
		_ = d.U32()
		return nil, nil
	case MsgContra:
		v := d.U64()
		e := &Encoder{}
		e.U64(v)
		return e.buf, nil
	case MsgStale:
		_ = d.U8()
		return nil, nil
	case MsgGrow:
		items := decodeGrow(d)
		e := &Encoder{}
		e.U32(uint32(len(items)))
		for _, it := range items {
			e.U64(it)
		}
		return e.buf, nil
	case MsgUnbounded:
		vals := decodeVals(d)
		e := &Encoder{}
		e.U32(uint32(len(vals)))
		for _, v := range vals {
			e.U64(v)
		}
		return e.buf, nil
	}
	return nil, nil
}

// decodeGrow clamps its preallocation through capHint: correct, but the
// variable-length path then demands a fuzz target the fixture omits.
func decodeGrow(d *Decoder) []uint64 {
	n := int(d.U32())
	out := make([]uint64, 0, capHint(n, 8, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.U64())
	}
	return out
}

// decodeVals sizes its allocation straight from the decoded count.
func decodeVals(d *Decoder) []uint64 {
	n := int(d.U32())
	out := make([]uint64, 0, n) // want "allocation sized by a wire-decoded value without a capHint"
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.U64())
	}
	return out
}

// ---- clients --------------------------------------------------------------

func clientPing(c conn) uint64 {
	e := &Encoder{}
	e.U64(9)
	d := &Decoder{buf: c.call(MsgPing, e.buf)}
	return d.U64()
}

func clientEcho(c conn) uint64 { // want "wire shape mismatch for MsgEcho response"
	e := &Encoder{}
	e.U8(1)
	d := &Decoder{buf: c.call(MsgEcho, e.buf)}
	return d.U64()
}

func clientSkew(c conn) { // want "wire shape mismatch for MsgSkew request"
	e := &Encoder{}
	e.U64(7)
	_ = c.call(MsgSkew, e.buf)
}

func clientOrphan(c conn) {
	e := &Encoder{}
	e.U8(1)
	_ = c.call(MsgOrphan, e.buf)
}

func clientContra(c conn) uint64 {
	e := &Encoder{}
	e.U64(3)
	d := &Decoder{buf: c.call(MsgContra, e.buf)}
	return d.U64()
}

func clientNoted(c conn) {
	e := &Encoder{}
	e.U8(byte(MsgNoted))
	_ = c.call(MsgNoted, e.buf)
}

func clientRaw(c conn) {
	e := &Encoder{}
	e.U8(byte(MsgRaw))
	_ = c.call(MsgRaw, e.buf)
}

func clientStale(c conn) {
	e := &Encoder{}
	e.U8(byte(MsgStale))
	_ = c.call(MsgStale, e.buf)
}

func clientHalf() []byte {
	e := &Encoder{}
	e.U8(byte(MsgHalf))
	return e.buf
}

func clientGrow(c conn, items []uint64) []uint64 {
	e := &Encoder{}
	e.U32(uint32(len(items)))
	for _, it := range items {
		e.U64(it)
	}
	d := &Decoder{buf: c.call(MsgGrow, e.buf)}
	return decodeGrow(d)
}

func clientUnbounded(c conn, vals []uint64) []uint64 {
	e := &Encoder{}
	e.U32(uint32(len(vals)))
	for _, v := range vals {
		e.U64(v)
	}
	d := &Decoder{buf: c.call(MsgUnbounded, e.buf)}
	return decodeVals(d)
}
