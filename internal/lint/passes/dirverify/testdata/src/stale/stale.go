// Package fixture exercises the dirverify pass: a typo'd verb and a
// //lint:source params= list naming a renamed-away parameter both stop
// being checked silently, so both must be loud; well-formed directives
// stay quiet.
package fixture

type counter struct {
	n int //lint:santized the decoder clamps this // want "unknown //lint: verb"
}

// report seeds taint from its parameters — but the params= list still
// names the parameter from before the rename, so the seed is stale.
//
//lint:source params=lat,radius // want "names .radius., which is not a parameter of report"
func report(lat float64, span float64) float64 {
	return lat + span
}

// seeded is the well-formed counterpart: every listed name resolves.
//
//lint:source params=lat,span
func seeded(lat float64, span float64) float64 {
	return lat * span
}

// ordinary is a plain comment mentioning lint: nothing to parse here.
func ordinary(c *counter) int {
	return c.n
}
