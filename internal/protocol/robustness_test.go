package protocol

import (
	"context"
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/rng"
	"repro/internal/server"
)

// Malformed payloads to every message type must produce a remote error or
// a clean connection drop — never a panic or a hang.
func TestServicesSurviveMalformedPayloads(t *testing.T) {
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	dbSvc, err := ServeDatabase("127.0.0.1:0", srv, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer dbSvc.Close()
	anon, err := anonymizer.New(anonymizer.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anon, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer anonSvc.Close()

	types := []byte{
		MsgRegister, MsgUpdate, MsgCloakQuery, MsgDeregister, MsgSetMode,
		MsgUpdatePrivate, MsgRemovePrivate, MsgPrivateRange, MsgPrivateNN,
		MsgPublicCount, MsgPublicNN, MsgLoadStationary, MsgStats, 77, 0,
	}
	payloads := [][]byte{
		nil,
		{0x01},
		{0xff, 0xff, 0xff, 0xff},
		make([]byte, 3),
		make([]byte, 17),
		[]byte("garbage garbage garbage"),
	}
	for _, addr := range []string{dbSvc.Addr(), anonSvc.Addr()} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		for _, typ := range types {
			for _, p := range payloads {
				// Any outcome except a hang/panic is acceptable: remote error,
				// or success for trivially-parsable payloads (e.g. Stats).
				_, err := c.Call(typ, p)
				if err != nil && !errors.Is(err, ErrRemote) {
					// Transport-level failure: reconnect and continue.
					c.Close()
					c, err = Dial(addr)
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		c.Close()
	}
	// Services are still alive and functional.
	dc, err := DialDatabase(dbSvc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	if _, _, err := dc.Stats(); err != nil {
		t.Fatalf("database service broken after malformed traffic: %v", err)
	}
}

// Raw random bytes on the socket (not even valid frames) must not wedge the
// service.
func TestServiceSurvivesRandomBytes(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		return p, nil
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	src := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		conn, err := net.Dial("tcp", svc.Addr())
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, 64+src.Intn(512))
		for i := range junk {
			junk[i] = byte(src.Uint64())
		}
		conn.Write(junk)
		conn.Close()
	}
	// A well-formed client still works.
	c, err := Dial(svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Call(1, []byte("ok")); err != nil || string(resp) != "ok" {
		t.Fatalf("service wedged after junk: %q, %v", resp, err)
	}
}

// Property: arbitrary byte strings never panic the decoder-driven handlers.
func TestPropDecoderNeverPanics(t *testing.T) {
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	h := &dbHandler{srv: srv}
	f := func(typ byte, payload []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("handler panicked on type %d payload %v: %v", typ, payload, r)
			}
		}()
		h.handle(context.Background(), typ, payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// A slow or stalled peer must not block other connections (per-connection
// goroutines).
func TestConcurrentClientsIsolated(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		return p, nil
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A "stalled" connection: opens and sends a partial frame, then sits.
	stalled, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	stalled.Write([]byte{10, 0, 0}) // incomplete length prefix

	done := make(chan error, 1)
	go func() {
		c, err := Dial(svc.Addr())
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Call(1, []byte("through"))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healthy client blocked by stalled peer: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healthy client timed out behind a stalled peer")
	}
}

// Huge declared frame lengths are rejected without allocation; the peer is
// disconnected rather than served.
func TestOversizedFrameDisconnects(t *testing.T) {
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		return nil, nil
	}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	conn, err := net.Dial("tcp", svc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Declare a 1 GiB frame.
	conn.Write([]byte{0x00, 0x00, 0x00, 0x40, 0x01})
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected disconnect after oversized frame, got data")
	}
}
