// Package protocol implements the three-tier deployment of Figure 1 as
// real TCP services: a compact length-prefixed binary wire format, the
// anonymizer service (which users send exact locations to), the database
// service (which only ever receives cloaked regions), and the matching
// clients. The separation mirrors the paper's trust model — the only
// message type carrying an exact location terminates at the anonymizer.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/geo"
)

// Message types. Requests 1–9 are served by the anonymizer; 10+ by the
// database server. Type 0/1 are the generic OK/error responses.
const (
	msgOK  byte = 0
	msgErr byte = 1

	// Anonymizer service.
	//
	//lint:fuzzed-by FuzzDecodeProfile the registration payload's variable-length tail is the privacy profile, whose shared codec decodeProfile is the fuzzed surface
	MsgRegister   byte = 2
	MsgUpdate     byte = 3
	MsgCloakQuery byte = 4
	MsgDeregister byte = 5
	MsgSetMode    byte = 6
	//lint:fuzzed-by FuzzDecodeBatchUpdate request and response batch codecs (decodeBatchRequests/decodeBatchResults) are fuzzed together
	MsgBatchUpdate byte = 7
	MsgAnonStats   byte = 8
	// MsgUpdateProfile replaces a registered user's privacy profile in
	// place — the wire form of a "raise my k" flip, without the
	// deregister/register round trip that would drop the user from the
	// population mid-run.
	//
	//lint:fuzzed-by FuzzDecodeProfile the payload after the id is exactly one profile, decoded by the fuzzed decodeProfile
	MsgUpdateProfile byte = 9

	// Database service.
	MsgUpdatePrivate byte = 10
	MsgRemovePrivate byte = 11
	//lint:fuzzed-by FuzzDecodeObjects the variable-length response is an object list, whose shared codec decodeObjects is the fuzzed surface
	MsgPrivateRange byte = 12
	//lint:fuzzed-by FuzzDecodeObjects the variable-length response is an object list, whose shared codec decodeObjects is the fuzzed surface
	MsgPrivateNN byte = 13
	//lint:fuzzed-by FuzzDecodeCountResult the variable-length response is a count PDF, whose shared codec decodeCountResult is the fuzzed surface
	MsgPublicCount byte = 14
	MsgPublicNN    byte = 15
	//lint:fuzzed-by FuzzDecodeObjects the bulk-load request body is the same object-list codec fuzzed as decodeObjects
	MsgLoadStationary byte = 16
	MsgStats          byte = 17
	MsgRegContCount   byte = 18
	MsgContCount      byte = 19
	MsgUnregContCount byte = 20
	MsgUpdateMoving   byte = 21
	// MsgBatchQuery carries a mixed batch of range/NN/count queries into
	// the shared-execution engine; the OK response payload is a typed
	// MsgBatchResult sub-frame with one status-tagged result per entry.
	MsgBatchQuery byte = 22
	//lint:client-only response sub-frame built by the batch engine and decoded by the batch client; never a request type a handler switches on
	MsgBatchResult byte = 23

	// MsgMetrics is served by the Service layer itself on any instrumented
	// service (see WithMetrics): the response carries a full snapshot of
	// the daemon's metric registry, histograms included, so load tools can
	// print end-of-run percentile tables from live daemons.
	MsgMetrics byte = 30

	// MsgTraced is the distributed-tracing envelope: a span context
	// (trace id, parent span id, flags) followed by the inner request
	// frame verbatim. Clients emit it only after the peer answered the
	// MsgTraceNeg negotiation probe, so un-traced binaries interoperate
	// unchanged; the Service layer unwraps it and dispatches the inner
	// frame with the span context installed in the request context.
	MsgTraced byte = 31
	// MsgTraces pulls the service's span ring buffer (served by the
	// Service layer when tracing is configured, like MsgMetrics).
	//
	//lint:wire-asym the response is encodeSpans output, but the client decode threads through the shared call path whose error arm reads a Str; the span codec itself is proven by FuzzDecodeSpans round-trips
	//lint:fuzzed-by FuzzDecodeSpans the span-ring payload's codec pair encodeSpans/DecodeSpans is the fuzzed surface
	MsgTraces byte = 32
	// MsgTraceNeg is the tracing negotiation probe: a traced peer answers
	// OK with a version byte, everything else answers with the usual
	// unknown-type error, which the client reads as "do not wrap".
	MsgTraceNeg byte = 33

	// MsgOverloaded is the admission-control rejection response: the
	// service refused to start the request because its in-flight budget
	// (or the anonymizer's forward queue, under backpressure) is
	// exhausted. Distinct from msgErr so clients can tell a deliberate
	// shed — retry later, peer healthy — from a handler failure.
	//
	//lint:client-only response-only status type written by serveConn's error path; no handler dispatches on it
	MsgOverloaded byte = 34

	// MsgRemoveMoving deletes a moving public object by id; the response
	// reports whether it existed. The routing tier needs the wire form for
	// tile handoffs: a moving object crossing a tile boundary is upserted
	// on the new owner and removed from the old one.
	MsgRemoveMoving byte = 35
	// MsgNNParts is the shard-local half of a private NN query: the
	// response carries the partition's min–max bound and its unpruned
	// candidate set (server.NNParts), which the router combines across
	// shards into the exact single-server answer.
	//
	//lint:fuzzed-by FuzzDecodeObjects the response's variable-length tail is the candidate object list, fuzzed as decodeObjects
	MsgNNParts byte = 36
	// MsgCountProbs is the shard-local half of a public count: the
	// response carries (user id, overlap probability) pairs sorted by id,
	// which the router deduplicates and folds into the exact PDF.
	//
	//lint:fuzzed-by FuzzDecodeUserProbs the response body is the (id, probability) pair list, whose shared codec decodeUserProbs is the fuzzed surface
	MsgCountProbs byte = 37
	// MsgShardMap is served by the routing tier: the response describes
	// its tile grid and the tile→shard ownership table, for operators and
	// load tools inspecting the topology.
	MsgShardMap byte = 38
	// MsgShardBatch is the forwarded sub-batch the router scatters to one
	// shard: index-tagged batch entries in, index-tagged partial results
	// (objects, NN parts, count probs) out, preserving per-entry error
	// semantics across the extra hop.
	//
	//lint:fuzzed-by FuzzDecodeSubQueries the request codec decodeSubQueries and the response codec decodeSubResults (FuzzDecodeSubResults) are both under fuzz
	MsgShardBatch byte = 39
)

// MessageName returns the stable label value used for per-message-type
// metric series.
func MessageName(typ byte) string {
	switch typ {
	case msgOK:
		return "ok"
	case msgErr:
		return "err"
	case MsgRegister:
		return "register"
	case MsgUpdate:
		return "update"
	case MsgCloakQuery:
		return "cloak_query"
	case MsgDeregister:
		return "deregister"
	case MsgSetMode:
		return "set_mode"
	case MsgBatchUpdate:
		return "batch_update"
	case MsgAnonStats:
		return "anon_stats"
	case MsgUpdateProfile:
		return "update_profile"
	case MsgUpdatePrivate:
		return "update_private"
	case MsgRemovePrivate:
		return "remove_private"
	case MsgPrivateRange:
		return "private_range"
	case MsgPrivateNN:
		return "private_nn"
	case MsgPublicCount:
		return "public_count"
	case MsgPublicNN:
		return "public_nn"
	case MsgLoadStationary:
		return "load_stationary"
	case MsgStats:
		return "stats"
	case MsgRegContCount:
		return "reg_cont_count"
	case MsgContCount:
		return "cont_count"
	case MsgUnregContCount:
		return "unreg_cont_count"
	case MsgUpdateMoving:
		return "update_moving"
	case MsgBatchQuery:
		return "batch_query"
	case MsgBatchResult:
		return "batch_result"
	case MsgMetrics:
		return "metrics"
	case MsgTraced:
		return "traced"
	case MsgTraces:
		return "traces"
	case MsgTraceNeg:
		return "trace_neg"
	case MsgOverloaded:
		return "overloaded"
	case MsgRemoveMoving:
		return "remove_moving"
	case MsgNNParts:
		return "nn_parts"
	case MsgCountProbs:
		return "count_probs"
	case MsgShardMap:
		return "shard_map"
	case MsgShardBatch:
		return "shard_batch"
	default:
		return fmt.Sprintf("type_%d", typ)
	}
}

// maxFrame bounds a frame to keep a misbehaving peer from ballooning
// memory: 16 MiB fits any realistic candidate list.
const maxFrame = 16 << 20

// maxPooledBuf caps what the frame pools retain: a rare jumbo frame
// (bulk load, big candidate list) must not pin megabytes in a pool — or
// in a connection's reused read buffer — for the process lifetime.
const maxPooledBuf = 64 << 10

// framePool recycles the header+payload staging buffers WriteFrame
// copies frames into. The copy buys a single Write call per frame — on
// a net.Conn the second syscall of the old hdr/payload write pair cost
// far more than memmove — and the pool makes the staging allocation-free
// in steady state.
var framePool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// WriteFrame writes [u32 length][type][payload] as one Write call. The
// single remaining escape site is the oversize-frame error format, never
// reached on a well-behaved path.
//
//lint:hotpath allocs=1
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("protocol: frame too large (%d bytes)", len(payload))
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0, typ)
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)+1))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
		framePool.Put(bp)
	}
	return err
}

// ReadFrame reads one frame into a fresh buffer. The payload is owned by
// the caller; loops that control the payload's lifetime (one frame fully
// handled before the next read) should use ReadFrameBuf instead.
//
//lint:hotpath allocs=0
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	typ, payload, _, err = ReadFrameBuf(r, nil)
	return typ, payload, err
}

// ReadFrameBuf reads one frame, reusing buf's backing array when it is
// large enough and returning the (possibly grown) buffer for the next
// call. The payload ALIASES the returned buffer: it is valid only until
// buf is passed to ReadFrameBuf again, so the caller must fully consume
// (or copy out of) the frame before reading the next one. Decoder reads
// of numeric fields and Str copy out of the payload, so a decode
// completed before the next read never retains a view. Frames larger
// than maxPooledBuf get a fresh buffer and buf is returned unchanged, so
// one jumbo frame cannot pin its backing array on an idle connection.
//
// The three escape sites are all off the steady-state path: the initial
// buffer (first call on a connection), growth past the current capacity,
// and the invalid-length error format. A warm connection reads frames
// with zero allocations.
//
//lint:hotpath allocs=3
func ReadFrameBuf(r io.Reader, buf []byte) (typ byte, payload, bufOut []byte, err error) {
	// The 4-byte length prefix is read into the reused buffer too: a
	// local array would be moved to the heap on every call (it escapes
	// into the io.Reader), which is exactly the per-frame cost this
	// function exists to avoid.
	if cap(buf) < 8 {
		buf = make([]byte, 0, 512)
	}
	hdr := buf[:4]
	if _, err = io.ReadFull(r, hdr); err != nil {
		return 0, nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	if n < 1 || n > maxFrame {
		return 0, nil, buf, fmt.Errorf("protocol: invalid frame length %d", n)
	}
	frame := buf
	if cap(frame) < n {
		frame = make([]byte, n)
		if n <= maxPooledBuf {
			buf = frame
		}
	} else {
		frame = frame[:n]
	}
	if _, err = io.ReadFull(r, frame); err != nil {
		return 0, nil, buf, err
	}
	return frame[0], frame[1:n], buf, nil
}

// Encoder builds a payload. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Grow reserves capacity for at least n more bytes, so a caller that
// knows its payload size pays one allocation instead of a doubling
// cascade. Growth is geometric: a sequence of small exact Grows (one
// per sub-list of a response) must amortize like append, not trigger a
// copy each.
func (e *Encoder) Grow(n int) {
	if free := cap(e.buf) - len(e.buf); free < n {
		want := len(e.buf) + n
		if min := 2 * cap(e.buf); want < min {
			want = min
		}
		nb := make([]byte, len(e.buf), want)
		copy(nb, e.buf)
		e.buf = nb
	}
}

// U8 appends one byte.
func (e *Encoder) U8(v byte) *Encoder { e.buf = append(e.buf, v); return e }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) *Encoder {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
	return e
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) *Encoder {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
	return e
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) *Encoder {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
	return e
}

// F64 appends an IEEE-754 float64.
func (e *Encoder) F64(v float64) *Encoder { return e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed UTF-8 string (≤ 64 KiB).
func (e *Encoder) Str(s string) *Encoder {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	e.U16(uint16(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Point appends a point.
func (e *Encoder) Point(p geo.Point) *Encoder { return e.F64(p.X).F64(p.Y) }

// Rect appends a rectangle.
func (e *Encoder) Rect(r geo.Rect) *Encoder { return e.Point(r.Min).Point(r.Max) }

// ErrShortPayload reports a truncated or malformed payload.
var ErrShortPayload = errors.New("protocol: short or malformed payload")

// Decoder consumes a payload; the first decoding error sticks and every
// subsequent read returns zero values, so call Err once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the sticky error, nil if all reads were in bounds.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		if d.err == nil {
			d.err = ErrShortPayload
		}
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// StrCache reads a length-prefixed string, returning *last instead of a
// fresh string when the bytes match it, and updating *last otherwise.
// Decode loops over object lists use it to intern the class column —
// a 10k-object response names a handful of classes, so the per-object
// string allocation collapses into one per run of equal values. The
// comparison itself does not allocate (the compiler recognizes
// string(b) == s), so the miss path costs the same as Str.
func (d *Decoder) StrCache(last *string) string {
	n := int(d.U16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	if string(b) == *last {
		return *last
	}
	s := string(b)
	*last = s
	return s
}

// Point reads a point.
func (d *Decoder) Point() geo.Point { return geo.Point{X: d.F64(), Y: d.F64()} }

// Rect reads a rectangle.
func (d *Decoder) Rect() geo.Rect { return geo.Rect{Min: d.Point(), Max: d.Point()} }
