package server

import (
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// TestStressBatchUnderWrites hammers one server from many goroutines —
// parallel BatchQuery calls racing private updates, moving-object updates,
// removals and metric reads. Run under -race this is the batch engine's
// data race detector: the coordinator freezes the indices with one read
// lock held across the fan-out, so workers must never observe a torn
// write. The invariant checks catch result-slot bleed (an entry answered
// with another entry's kind) that the race detector cannot see.
func TestStressBatchUnderWrites(t *testing.T) {
	const (
		queriers = 4
		writers  = 3
		opsEach  = 120
	)
	s := newServer(t)
	loadObjects(t, s, 400, "gas", 5)
	loadPrivateUsers(t, s, 200, 0.05, 6)
	s.queryWorkers = 4

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Metric readers must never block or tear.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := s.Metrics()
			if m.BatchSharedHits > m.BatchEntries {
				t.Errorf("metrics tore: SharedHits %d > Entries %d", m.BatchSharedHits, m.BatchEntries)
				return
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w + 100))
			for op := 0; op < opsEach; op++ {
				id := uint64(1000 + w*1000 + src.Intn(100))
				switch src.Intn(4) {
				case 0:
					s.RemovePrivate(id)
				case 1:
					s.UpdateMoving(id, geo.Pt(src.Float64(), src.Float64()))
				default:
					c := geo.Pt(src.Float64(), src.Float64())
					s.UpdatePrivate(id, geo.RectAround(c, 0.02+0.05*src.Float64()).Clip(world))
				}
			}
		}(w)
	}

	var qwg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			src := rng.New(uint64(q + 1))
			for op := 0; op < opsEach; op++ {
				entries := buildDiffBatch(src, 12)
				res := s.BatchQuery(entries)
				if len(res.Items) != len(entries) {
					t.Errorf("querier %d: %d items for %d entries", q, len(res.Items), len(entries))
					return
				}
				for i, item := range res.Items {
					if item.Err != nil {
						continue
					}
					// Result-slot bleed check: only the field selected by
					// the entry's kind may be populated.
					switch entries[i].Kind {
					case BatchPrivateRange:
						if item.NN.Candidates != nil || item.Count.Answer.PDF != nil {
							t.Errorf("querier %d: range entry %d carries foreign results", q, i)
							return
						}
					case BatchPrivateNN:
						if item.Range != nil || item.Count.Answer.PDF != nil {
							t.Errorf("querier %d: NN entry %d carries foreign results", q, i)
							return
						}
					case BatchPublicCount:
						if item.Range != nil || item.NN.Candidates != nil {
							t.Errorf("querier %d: count entry %d carries foreign results", q, i)
							return
						}
					}
				}
			}
		}(q)
	}

	qwg.Wait()
	close(stop)
	wg.Wait()

	// After the dust settles, batch answers must again bit-equal the
	// sequential path on the final state.
	entries := buildDiffBatch(rng.New(0xF1A7), 30)
	want := sequentialBatch(s, entries)
	res := s.BatchQuery(entries)
	assertItemsEqual(t, res.Items, want)
}
