package protocol

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/server"
)

// loadBatchFixture pushes a deterministic public/private data set through
// the wire so batch queries have something to answer.
func loadBatchFixture(t *testing.T, admin *DatabaseClient) {
	t.Helper()
	pois, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 300, World: world, Dist: mobility.Uniform, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]server.PublicObject, len(pois))
	for i, p := range pois {
		class := "gas"
		if i%3 == 0 {
			class = "bank"
		}
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: class, Loc: p}
	}
	if err := admin.LoadStationary(objs); err != nil {
		t.Fatal(err)
	}
	users, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 150, World: world, Dist: mobility.Gaussian, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range users {
		reg := geo.RectAround(p, 0.01+0.03*float64(i%7)/7).Clip(world)
		if err := admin.UpdatePrivate(uint64(i+1), reg); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchQueryOverWire proves the MsgBatchQuery/MsgBatchResult pair end
// to end: a mixed batch submitted through the client must round-trip to
// exactly the answers the per-query wire calls produce.
func TestBatchQueryOverWire(t *testing.T) {
	_, admin, cleanup := threeTier(t)
	defer cleanup()
	loadBatchFixture(t, admin)

	entries := []server.BatchEntry{
		{Kind: server.BatchPrivateRange, Range: server.PrivateRangeQuery{Region: geo.R(0.2, 0.2, 0.4, 0.4), Radius: 0.05}},
		{Kind: server.BatchPrivateRange, Range: server.PrivateRangeQuery{Region: geo.R(0.35, 0.35, 0.5, 0.5), Radius: 0.03, Class: "gas", Mode: server.RangeMBR}},
		{Kind: server.BatchPublicCount, Count: server.PublicRangeCountQuery{Query: geo.R(0.3, 0.3, 0.7, 0.7)}},
		{Kind: server.BatchPrivateNN, NN: server.PrivateNNQuery{Region: geo.R(0.6, 0.6, 0.7, 0.7)}},
	}
	res, err := admin.BatchQuery(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != len(entries) {
		t.Fatalf("%d items for %d entries", len(res.Items), len(entries))
	}
	if res.Groups != 3 || res.SharedHits != 1 {
		t.Errorf("Groups=%d SharedHits=%d, want 3/1 (the two range entries share)", res.Groups, res.SharedHits)
	}

	// Per-entry answers must equal the per-query wire calls on identical
	// server state.
	r0, err := admin.PrivateRange(entries[0].Range)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items[0].Range) != len(r0) {
		t.Fatalf("range entry: %d candidates via batch, %d via single call", len(res.Items[0].Range), len(r0))
	}
	for i := range r0 {
		if res.Items[0].Range[i] != r0[i] {
			t.Errorf("range candidate %d diverges: %+v vs %+v", i, res.Items[0].Range[i], r0[i])
		}
	}
	c2, err := admin.PublicCount(entries[2].Count.Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items[2].Count.NaiveCount != c2.NaiveCount ||
		res.Items[2].Count.Answer.Lo != c2.Answer.Lo ||
		res.Items[2].Count.Answer.Hi != c2.Answer.Hi ||
		math.Abs(res.Items[2].Count.Answer.Expected-c2.Answer.Expected) > 1e-12 {
		t.Errorf("count entry diverges: batch %+v vs single %+v", res.Items[2].Count, c2)
	}
	if len(res.Items[2].Count.Answer.PDF) != len(c2.Answer.PDF) {
		t.Errorf("count PDF length %d vs %d", len(res.Items[2].Count.Answer.PDF), len(c2.Answer.PDF))
	}
	n3, err := admin.PrivateNN(entries[3].NN)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items[3].NN.SupersetSize != n3.SupersetSize || len(res.Items[3].NN.Candidates) != len(n3.Candidates) {
		t.Errorf("NN entry diverges: batch %d/%d vs single %d/%d",
			res.Items[3].NN.SupersetSize, len(res.Items[3].NN.Candidates),
			n3.SupersetSize, len(n3.Candidates))
	}
}

// TestBatchQueryPerEntryErrorOverWire pins the failure edge across the
// wire: an invalid entry comes back as a typed *server.BatchEntryError
// with its index, kind and the sequential path's message, while the valid
// entries in the same batch still answer — the whole call never fails.
func TestBatchQueryPerEntryErrorOverWire(t *testing.T) {
	_, admin, cleanup := threeTier(t)
	defer cleanup()
	loadBatchFixture(t, admin)

	entries := []server.BatchEntry{
		{Kind: server.BatchPrivateRange, Range: server.PrivateRangeQuery{Region: geo.R(0.2, 0.2, 0.5, 0.5), Radius: 0.05}},
		// Negative radius overlapping entry 0: must fail alone.
		{Kind: server.BatchPrivateRange, Range: server.PrivateRangeQuery{Region: geo.R(0.3, 0.3, 0.45, 0.45), Radius: -2}},
		{Kind: server.BatchPublicCount, Count: server.PublicRangeCountQuery{Query: geo.R(0.1, 0.1, 0.6, 0.6)}},
	}
	res, err := admin.BatchQuery(entries)
	if err != nil {
		t.Fatalf("whole call failed: %v (a bad entry must not poison the batch)", err)
	}
	var bee *server.BatchEntryError
	if !errors.As(res.Items[1].Err, &bee) {
		t.Fatalf("entry 1 error = %v (%T), want *server.BatchEntryError", res.Items[1].Err, res.Items[1].Err)
	}
	if bee.Index != 1 || bee.Kind != server.BatchPrivateRange {
		t.Errorf("error carries Index=%d Kind=%v, want 1/private_range", bee.Index, bee.Kind)
	}
	// The cause crossed the wire verbatim from the sequential validator.
	if _, wantErr := admin.PrivateRange(entries[1].Range); wantErr == nil ||
		!strings.Contains(bee.Err.Error(), "invalid radius") {
		t.Errorf("cause %q does not carry the sequential validation message", bee.Err)
	}
	if res.Items[0].Err != nil || len(res.Items[0].Range) == 0 {
		t.Errorf("valid range entry suffered: err=%v candidates=%d", res.Items[0].Err, len(res.Items[0].Range))
	}
	if res.Items[2].Err != nil || len(res.Items[2].Count.Answer.PDF) == 0 {
		t.Errorf("valid count entry suffered: err=%v", res.Items[2].Err)
	}
}

// TestBatchQueryWireLimits: an oversized batch is rejected as a whole-call
// error (the per-entry contract only covers admitted entries), and an
// empty batch round-trips cleanly.
func TestBatchQueryWireLimits(t *testing.T) {
	_, admin, cleanup := threeTier(t)
	defer cleanup()

	res, err := admin.BatchQuery(nil)
	if err != nil {
		t.Fatalf("empty batch failed: %v", err)
	}
	if len(res.Items) != 0 || res.Groups != 0 {
		t.Errorf("empty batch returned %+v", res)
	}

	big := make([]server.BatchEntry, 4097)
	for i := range big {
		big[i] = server.BatchEntry{Kind: server.BatchPublicCount, Count: server.PublicRangeCountQuery{Query: geo.R(0, 0, 0.1, 0.1)}}
	}
	if _, err := admin.BatchQuery(big); err == nil {
		t.Error("oversized batch accepted")
	}
}
