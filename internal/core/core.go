// Package core assembles the paper's three-tier architecture (Figure 1) in
// a single process: mobile users talk to a Location Anonymizer, which
// forwards cloaked regions to the privacy-aware location-based database
// server. It is the library's main entry point — examples, benchmarks and
// the networked services are all built on this facade.
//
// The end-to-end flows it exposes map one-to-one onto the paper:
//
//   - RegisterUser / UpdateLocation — active-mode location reporting
//     through the anonymizer (Sections 4–5);
//   - FindNearest / FindWithin — private queries over public data with
//     client-side refinement (Section 6.2.1, Figure 5);
//   - CountUsersIn / NearestUser — public queries over private data with
//     probabilistic answers (Section 6.2.2, Figure 6).
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/geo"
	"repro/internal/history"
	"repro/internal/privacy"
	"repro/internal/prob"
	"repro/internal/server"
)

// Config configures a System.
type Config struct {
	// World bounds all locations. Required.
	World geo.Rect
	// Algorithm selects the cloaking algorithm (default quadtree).
	Algorithm anonymizer.Algorithm
	// Incremental enables incremental cloak maintenance (Section 5.3).
	Incremental bool
	// PyramidHeight and GridLevel tune the space partition (defaults 10 / 6).
	PyramidHeight, GridLevel int
	// Clock drives temporal privacy profiles (default time.Now).
	Clock func() time.Time
	// RecordHistory enables the historical store: every forwarded region is
	// appended to the user's cloaked timeline, stamped with the system's
	// logical tick (see AdvanceTime).
	RecordHistory bool
}

// System is the assembled privacy-aware LBS stack.
type System struct {
	// Anonymizer is the trusted third party; callers needing low-level
	// control (modes, tariffs, stats) use it directly.
	Anonymizer *anonymizer.Anonymizer
	// Server is the privacy-aware database server; admins query it directly.
	Server *server.Server
	// History holds cloaked timelines when Config.RecordHistory is set
	// (nil otherwise). It never contains an exact location.
	History *history.Store

	tick atomic.Int64
}

// NewSystem wires an anonymizer to a server.
func NewSystem(cfg Config) (*System, error) {
	srv, err := server.New(server.Config{World: cfg.World})
	if err != nil {
		return nil, err
	}
	sys := &System{Server: srv}
	forward := srv.UpdatePrivate
	if cfg.RecordHistory {
		sys.History = history.New()
		forward = func(id uint64, region geo.Rect) error {
			if err := srv.UpdatePrivate(id, region); err != nil {
				return err
			}
			return sys.History.Record(id, region, sys.tick.Load())
		}
	}
	anon, err := anonymizer.New(anonymizer.Config{
		World:         cfg.World,
		Algorithm:     cfg.Algorithm,
		Incremental:   cfg.Incremental,
		PyramidHeight: cfg.PyramidHeight,
		GridLevel:     cfg.GridLevel,
		Clock:         cfg.Clock,
		Forward:       forward,
	})
	if err != nil {
		return nil, err
	}
	sys.Anonymizer = anon
	return sys, nil
}

// AdvanceTime moves the system's logical clock one tick forward and
// returns the new tick. Historical records are stamped with this clock;
// callers advance it once per simulation step (or wall-clock interval).
func (s *System) AdvanceTime() int64 { return s.tick.Add(1) }

// Now returns the current logical tick.
func (s *System) Now() int64 { return s.tick.Load() }

// HistoricalOccupancy answers "how many users were in this area during
// [from, to)" from the cloaked timelines (requires RecordHistory).
func (s *System) HistoricalOccupancy(area geo.Rect, from, to int64) (history.OccupancyAnswer, error) {
	if s.History == nil {
		return history.OccupancyAnswer{}, fmt.Errorf("core: history recording not enabled")
	}
	return s.History.Occupancy(area, from, to)
}

// --- Mobile-user flows ---

// RegisterUser registers a mobile user with her privacy profile.
func (s *System) RegisterUser(id uint64, profile *privacy.Profile) error {
	return s.Anonymizer.Register(id, profile)
}

// UpdateLocation reports an exact location; the cloaked region lands at the
// server. The returned area is the region's area — the user-visible
// privacy/QoS indicator.
func (s *System) UpdateLocation(id uint64, loc geo.Point) (regionArea float64, err error) {
	res, err := s.Anonymizer.Update(id, loc)
	if err != nil {
		return 0, err
	}
	return res.Region.Area(), nil
}

// QueryStats reports the quality-of-service cost of a private query: how
// many candidates the server shipped to the device, how many bytes that is,
// and the cloaked region's area.
type QueryStats struct {
	Candidates  int
	Bytes       int
	RegionArea  float64
	RegionReuse bool
}

// FindNearest answers "what is my nearest <class> object?" privately: the
// exact location goes only to the anonymizer; the server sees the cloaked
// region and returns candidates; the device refines locally.
func (s *System) FindNearest(id uint64, loc geo.Point, class string) (server.PublicObject, QueryStats, error) {
	res, err := s.Anonymizer.CloakQuery(id, loc)
	if err != nil {
		return server.PublicObject{}, QueryStats{}, err
	}
	nn, err := s.Server.PrivateNN(server.PrivateNNQuery{Region: res.Region, Class: class})
	if err != nil {
		return server.PublicObject{}, QueryStats{}, err
	}
	stats := QueryStats{
		Candidates:  len(nn.Candidates),
		Bytes:       server.TransmissionCost(nn.Candidates),
		RegionArea:  res.Region.Area(),
		RegionReuse: res.Reused,
	}
	ans, ok := server.RefineNN(loc, nn.Candidates)
	if !ok {
		return server.PublicObject{}, stats, fmt.Errorf("core: no %q objects available", class)
	}
	return ans, stats, nil
}

// FindWithin answers "which <class> objects are within radius of me?"
// privately, with local refinement. The result is sorted by distance.
func (s *System) FindWithin(id uint64, loc geo.Point, radius float64, class string) ([]server.PublicObject, QueryStats, error) {
	res, err := s.Anonymizer.CloakQuery(id, loc)
	if err != nil {
		return nil, QueryStats{}, err
	}
	cands, err := s.Server.PrivateRange(server.PrivateRangeQuery{
		Region: res.Region, Radius: radius, Class: class,
	})
	if err != nil {
		return nil, QueryStats{}, err
	}
	stats := QueryStats{
		Candidates:  len(cands),
		Bytes:       server.TransmissionCost(cands),
		RegionArea:  res.Region.Area(),
		RegionReuse: res.Reused,
	}
	return server.RefineRange(loc, radius, cands), stats, nil
}

// --- Administrator / third-party flows (no anonymizer involved) ---

// CountUsersIn is the public range count over private data: probabilistic
// answers in all three formats plus the naive baseline.
func (s *System) CountUsersIn(area geo.Rect) (server.PublicRangeCountResult, error) {
	return s.Server.PublicRangeCount(server.PublicRangeCountQuery{Query: area})
}

// NearestUser is the public NN query over private data (the e-coupon
// scenario of Figure 6b).
func (s *System) NearestUser(from geo.Point) (server.PublicNNResult, error) {
	return s.Server.PublicNN(server.PublicNNQuery{From: from})
}

// NeighborsNearMe is the private-over-private reduction: an anonymized user
// asks how many other users are within radius of her.
func (s *System) NeighborsNearMe(id uint64, loc geo.Point, radius float64) (prob.CountAnswer, error) {
	res, err := s.Anonymizer.CloakQuery(id, loc)
	if err != nil {
		return prob.CountAnswer{}, err
	}
	return s.Server.PrivateCount(server.PrivateCountQuery{
		Region: res.Region, Radius: radius, ExcludeID: id,
	})
}

// LoadPublicObjects bulk-loads the public dataset (gas stations, ...).
func (s *System) LoadPublicObjects(objs []server.PublicObject) error {
	return s.Server.LoadStationary(objs)
}

// UpdateMover reports a moving public object's exact location (public data:
// police cars, delivery trucks). Standing nearby-monitors update
// incrementally.
func (s *System) UpdateMover(id uint64, loc geo.Point) error {
	return s.Server.UpdateMoving(id, loc)
}

// WatchNearby registers a continuous private monitor for a user: "keep
// tracking public movers within radius of me". The server anchors the
// standing query at the user's cloaked region; re-anchor with MoveWatch
// when the user's region changes.
func (s *System) WatchNearby(id uint64, loc geo.Point, radius float64) (uint64, error) {
	res, err := s.Anonymizer.CloakQuery(id, loc)
	if err != nil {
		return 0, err
	}
	return s.Server.RegisterContinuousPrivateRange(res.Region, radius)
}

// MoveWatch re-anchors a standing nearby-monitor after the user moved.
func (s *System) MoveWatch(watchID, userID uint64, loc geo.Point) error {
	res, err := s.Anonymizer.CloakQuery(userID, loc)
	if err != nil {
		return err
	}
	return s.Server.MoveContinuousPrivateRange(watchID, res.Region)
}

// NearbyNow reads a standing monitor's candidate set and refines it on the
// device against the exact location — the continuous analogue of
// FindWithin.
func (s *System) NearbyNow(watchID uint64, exact geo.Point, radius float64) ([]server.PublicObject, error) {
	cands, ok := s.Server.ContinuousPrivateRange(watchID)
	if !ok {
		return nil, fmt.Errorf("core: unknown watch %d", watchID)
	}
	return server.RefineRange(exact, radius, cands), nil
}

// StopWatch removes a standing monitor.
func (s *System) StopWatch(watchID uint64) bool {
	return s.Server.UnregisterContinuousPrivateRange(watchID)
}
