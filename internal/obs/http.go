package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Route is an extra pattern/handler pair a daemon mounts on its
// operational mux next to the standard endpoints (e.g. /traces).
type Route struct {
	Pattern string
	Handler http.Handler
}

// NewMux returns the operational HTTP handler for a daemon: /metrics in
// Prometheus text format, /healthz returning "ok", the standard
// net/http/pprof endpoints under /debug/pprof/, plus any extra routes.
func NewMux(reg *Registry, extra ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsServer is a running operational HTTP endpoint.
type MetricsServer struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.addr }

// Close shuts the endpoint down immediately.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// ServeMetrics binds addr and serves NewMux(reg, extra...) in a
// background goroutine.
func ServeMetrics(addr string, reg *Registry, extra ...Route) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, extra...), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{srv: srv, addr: ln.Addr().String()}, nil
}
