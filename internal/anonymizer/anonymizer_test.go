package anonymizer

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/rng"
)

var world = geo.R(0, 0, 1, 1)

// fixedClock returns a Clock pinned to the given hour of day.
func fixedClock(hour int) func() time.Time {
	return func() time.Time {
		return time.Date(2026, 7, 4, hour, 0, 0, 0, time.UTC)
	}
}

func newAnon(t testing.TB, cfg Config) *Anonymizer {
	t.Helper()
	if !cfg.World.Valid() || cfg.World.Area() == 0 {
		cfg.World = world
	}
	if cfg.Clock == nil {
		cfg.Clock = fixedClock(12)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// seedUsers registers and updates n users so the population indices are
// warm, using a constant-k profile.
func seedUsers(t testing.TB, a *Anonymizer, n int, k int, seed uint64) []geo.Point {
	t.Helper()
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: n, World: world, Dist: mobility.Uniform, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := privacy.Constant(privacy.Requirement{K: k})
	for i, p := range pts {
		id := uint64(i + 1)
		if err := a.Register(id, prof); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Update(id, p); err != nil {
			t.Fatal(err)
		}
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{World: world, Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range []Algorithm{AlgQuadtree, AlgGrid, AlgGridML, AlgNaive, AlgMBR, Algorithm(42)} {
		if a.String() == "" {
			t.Errorf("empty string for %d", a)
		}
	}
}

func TestRegistrationLifecycle(t *testing.T) {
	a := newAnon(t, Config{})
	prof := privacy.Constant(privacy.Requirement{K: 5})
	if err := a.Register(1, prof); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(1, prof); !errors.Is(err, ErrDuplicateUser) {
		t.Errorf("duplicate register = %v", err)
	}
	if err := a.Register(2, nil); err == nil {
		t.Error("nil profile accepted")
	}
	if m, err := a.Mode(1); err != nil || m != privacy.Active {
		t.Errorf("initial mode = %v, %v", m, err)
	}
	if !a.Deregister(1) || a.Deregister(1) {
		t.Error("deregister misbehaved")
	}
	if _, err := a.Mode(1); !errors.Is(err, ErrUnknownUser) {
		t.Error("mode of deregistered user")
	}
}

func TestUpdateUnknownAndInvalid(t *testing.T) {
	a := newAnon(t, Config{})
	if _, err := a.Update(99, geo.Pt(0.5, 0.5)); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown user update = %v", err)
	}
	a.Register(1, privacy.Constant(privacy.Requirement{K: 1}))
	if _, err := a.Update(1, geo.Pt(5, 5)); err == nil {
		t.Error("out-of-world location accepted")
	}
	if _, err := a.Update(1, geo.Pt(math.NaN(), 0)); err == nil {
		t.Error("NaN location accepted")
	}
}

func TestUpdateCloaksAndForwards(t *testing.T) {
	var mu sync.Mutex
	forwarded := map[uint64]geo.Rect{}
	a := newAnon(t, Config{
		Forward: func(id uint64, region geo.Rect) error {
			mu.Lock()
			forwarded[id] = region
			mu.Unlock()
			return nil
		},
	})
	pts := seedUsers(t, a, 500, 10, 1)
	mu.Lock()
	defer mu.Unlock()
	if len(forwarded) != 500 {
		t.Fatalf("forwarded %d regions", len(forwarded))
	}
	for i, p := range pts {
		region := forwarded[uint64(i+1)]
		if !region.Contains(p) {
			t.Fatalf("forwarded region %v misses user %d at %v", region, i+1, p)
		}
	}
	st := a.Stats()
	if st.Updates != 500 || st.Forwarded != 500 || st.Registered != 500 {
		t.Errorf("stats = %+v", st)
	}
}

func TestForwardErrorSurfaces(t *testing.T) {
	boom := errors.New("downstream down")
	a := newAnon(t, Config{
		Forward: func(uint64, geo.Rect) error { return boom },
	})
	a.Register(1, privacy.Constant(privacy.Requirement{K: 1}))
	if _, err := a.Update(1, geo.Pt(0.5, 0.5)); !errors.Is(err, boom) {
		t.Errorf("forward error not surfaced: %v", err)
	}
	if a.Stats().ForwardErrs != 1 {
		t.Error("ForwardErrs not counted")
	}
}

func TestPassiveMode(t *testing.T) {
	a := newAnon(t, Config{})
	a.Register(1, privacy.Constant(privacy.Requirement{K: 2}))
	a.Update(1, geo.Pt(0.5, 0.5))
	if a.Population() != 1 {
		t.Fatal("population after update")
	}
	if err := a.SetMode(1, privacy.Passive); err != nil {
		t.Fatal(err)
	}
	// Passive users are dropped from the indices entirely.
	if a.Population() != 0 {
		t.Error("passive user still tracked")
	}
	if _, err := a.Update(1, geo.Pt(0.6, 0.6)); !errors.Is(err, ErrPassive) {
		t.Errorf("passive update = %v", err)
	}
	if err := a.SetMode(99, privacy.Active); !errors.Is(err, ErrUnknownUser) {
		t.Error("SetMode unknown user")
	}
	// Reactivate.
	a.SetMode(1, privacy.Active)
	if _, err := a.Update(1, geo.Pt(0.6, 0.6)); err != nil {
		t.Errorf("reactivated update failed: %v", err)
	}
}

func TestProfileGapMeansPassive(t *testing.T) {
	// Profile only covers 8:00-10:00; at noon the user is passive.
	prof := privacy.MustProfile(privacy.Entry{From: 8 * 60, To: 10 * 60, Req: privacy.Requirement{K: 5}})
	a := newAnon(t, Config{Clock: fixedClock(12)})
	a.Register(1, prof)
	if _, err := a.Update(1, geo.Pt(0.5, 0.5)); !errors.Is(err, ErrPassive) {
		t.Errorf("gap-time update = %v", err)
	}
}

// The Figure 2 behavior: the same user gets radically different regions at
// different times of day.
func TestTemporalProfileChangesCloaking(t *testing.T) {
	clockHour := 12
	a := newAnon(t, Config{
		Clock: func() time.Time {
			return time.Date(2026, 7, 4, clockHour, 0, 0, 0, time.UTC)
		},
	})
	// Population so k can be met.
	bg := privacy.Constant(privacy.Requirement{K: 1})
	pts, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 2000, World: world, Dist: mobility.Uniform, Seed: 3,
	})
	for i, p := range pts {
		a.Register(uint64(i+10), bg)
		a.Update(uint64(i+10), p)
	}
	// The profiled user: paper example scaled into the unit world.
	prof := privacy.MustProfile(
		privacy.Entry{From: 8 * 60, To: 17 * 60, Req: privacy.Requirement{K: 1}},
		privacy.Entry{From: 17 * 60, To: 22 * 60, Req: privacy.Requirement{K: 100}},
		privacy.Entry{From: 22 * 60, To: 8 * 60, Req: privacy.Requirement{K: 1000}},
	)
	a.Register(1, prof)
	loc := geo.Pt(0.41, 0.37)

	clockHour = 12 // daytime: k=1, exact point acceptable
	day, err := a.Update(1, loc)
	if err != nil {
		t.Fatal(err)
	}
	clockHour = 20 // evening: k=100
	evening, err := a.Update(1, loc)
	if err != nil {
		t.Fatal(err)
	}
	clockHour = 23 // night: k=1000
	night, err := a.Update(1, loc)
	if err != nil {
		t.Fatal(err)
	}
	if !(day.Region.Area() < evening.Region.Area() && evening.Region.Area() < night.Region.Area()) {
		t.Errorf("areas should grow with k: day=%v evening=%v night=%v",
			day.Region.Area(), evening.Region.Area(), night.Region.Area())
	}
	if !evening.SatisfiedK || !night.SatisfiedK {
		t.Error("k not satisfied in evening/night regimes")
	}
}

func TestUpdateProfileInvalidatesCache(t *testing.T) {
	a := newAnon(t, Config{Incremental: true})
	seedUsers(t, a, 500, 5, 4)
	// Second update in place: reused.
	res, err := a.Update(1, geo.Pt(0.1, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	loc := geo.Pt(0.1, 0.1)
	res, err = a.Update(1, loc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reused {
		t.Fatal("expected reuse")
	}
	// Profile change must invalidate.
	if err := a.UpdateProfile(1, privacy.Constant(privacy.Requirement{K: 50})); err != nil {
		t.Fatal(err)
	}
	res, err = a.Update(1, loc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused {
		t.Error("reused after profile change")
	}
	if err := a.UpdateProfile(99999, privacy.Public()); !errors.Is(err, ErrUnknownUser) {
		t.Error("UpdateProfile unknown user")
	}
	if err := a.UpdateProfile(1, nil); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestIncrementalReuseRate(t *testing.T) {
	a := newAnon(t, Config{Incremental: true})
	seedUsers(t, a, 1000, 20, 5)
	// Tiny movements: most updates should reuse their regions.
	src := rng.New(6)
	pts, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 1000, World: world, Dist: mobility.Uniform, Seed: 5,
	})
	for round := 0; round < 3; round++ {
		for i := range pts {
			pts[i] = world.ClampPoint(geo.Pt(
				pts[i].X+src.Range(-0.001, 0.001),
				pts[i].Y+src.Range(-0.001, 0.001),
			))
			if _, err := a.Update(uint64(i+1), pts[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := a.Stats()
	reuseRate := float64(st.Reused) / float64(st.Updates)
	if reuseRate < 0.5 {
		t.Errorf("reuse rate %v too low for micro-movements", reuseRate)
	}
}

func TestSpaceDependentStoresNoExactLocations(t *testing.T) {
	a := newAnon(t, Config{Algorithm: AlgQuadtree})
	if a.StoresExactLocations() {
		t.Error("quadtree anonymizer should not store exact locations")
	}
	b := newAnon(t, Config{Algorithm: AlgMBR})
	if !b.StoresExactLocations() {
		t.Error("MBR anonymizer requires exact locations")
	}
	if a.Algorithm() != AlgQuadtree || b.Algorithm() != AlgMBR {
		t.Error("Algorithm accessor")
	}
}

func TestAllAlgorithmsSatisfyK(t *testing.T) {
	for _, alg := range []Algorithm{AlgQuadtree, AlgGrid, AlgGridML, AlgNaive, AlgMBR} {
		a := newAnon(t, Config{Algorithm: alg})
		pts := seedUsers(t, a, 1000, 25, 7)
		res, err := a.Update(1, pts[0])
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.SatisfiedK {
			t.Errorf("%v: k=25 not satisfied: %v", alg, res)
		}
		if !res.Region.Contains(pts[0]) {
			t.Errorf("%v: region excludes user", alg)
		}
	}
}

func TestCloakQueryCountsSeparately(t *testing.T) {
	a := newAnon(t, Config{})
	seedUsers(t, a, 100, 5, 8)
	if _, err := a.CloakQuery(1, geo.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Queries != 1 {
		t.Errorf("Queries = %d", st.Queries)
	}
	if st.Updates != 100 {
		t.Errorf("Updates = %d", st.Updates)
	}
}

func TestTariffCharges(t *testing.T) {
	a := newAnon(t, Config{
		Tariff: func(req privacy.Requirement) float64 { return float64(req.K) * 0.01 },
	})
	a.Register(1, privacy.Constant(privacy.Requirement{K: 10}))
	a.Update(1, geo.Pt(0.5, 0.5))
	a.Update(1, geo.Pt(0.51, 0.5))
	if got := a.Charges(1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Charges = %v, want 0.2", got)
	}
	if a.Charges(99) != 0 {
		t.Error("unknown user has charges")
	}
}

func TestBestEffortCounted(t *testing.T) {
	a := newAnon(t, Config{})
	a.Register(1, privacy.Constant(privacy.Requirement{K: 1000}))
	a.Update(1, geo.Pt(0.5, 0.5)) // population of 1 cannot give k=1000
	if a.Stats().BestEffort != 1 {
		t.Error("best-effort not counted")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	a := newAnon(t, Config{Incremental: true})
	prof := privacy.Constant(privacy.Requirement{K: 3})
	for i := 0; i < 50; i++ {
		a.Register(uint64(i+1), prof)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w + 1))
			for i := 0; i < 200; i++ {
				id := uint64(src.Intn(50)) + 1
				a.Update(id, geo.Pt(src.Float64(), src.Float64()))
			}
		}(w)
	}
	wg.Wait()
	if a.Population() != 50 {
		t.Errorf("population = %d", a.Population())
	}
}

func BenchmarkAnonymizerUpdateQuadtree(b *testing.B) {
	a := newAnon(b, Config{})
	pts := seedUsers(b, a, 10000, 50, 1)
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(src.Intn(len(pts))) + 1
		if _, err := a.Update(id, pts[id-1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnonymizerUpdateIncremental(b *testing.B) {
	a := newAnon(b, Config{Incremental: true})
	pts := seedUsers(b, a, 10000, 50, 1)
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(src.Intn(len(pts))) + 1
		if _, err := a.Update(id, pts[id-1]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBatchUpdateMatchesIndividual(t *testing.T) {
	// Two identical systems, one fed per-user, one fed in batch: identical
	// regions for every user.
	mk := func() (*Anonymizer, []geo.Point) {
		a := newAnon(t, Config{})
		pts, _ := mobility.GeneratePoints(mobility.PopulationSpec{
			N: 800, World: world, Dist: mobility.Gaussian, Seed: 55,
		})
		prof := privacy.Constant(privacy.Requirement{K: 15})
		for i := range pts {
			a.Register(uint64(i+1), prof)
		}
		return a, pts
	}
	ind, pts := mk()
	// Individual updates happen after all users are indexed, so both paths
	// see the same occupancy: index everyone first with a pre-pass.
	for i, p := range pts {
		if _, err := ind.Update(uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	indResults := make([]cloak.Result, len(pts))
	for i, p := range pts {
		res, err := ind.Update(uint64(i+1), p)
		if err != nil {
			t.Fatal(err)
		}
		indResults[i] = res
	}

	bat, _ := mk()
	reqs := make([]cloak.Request, len(pts))
	for i, p := range pts {
		reqs[i] = cloak.Request{ID: uint64(i + 1), Loc: p}
	}
	bat.BatchUpdate(reqs) // first pass indexes everyone
	batResults := bat.BatchUpdate(reqs)
	for i := range pts {
		if batResults[i] == nil {
			t.Fatalf("batch result %d nil", i)
		}
		if !batResults[i].Region.Eq(indResults[i].Region) {
			t.Fatalf("user %d: batch region %v != individual %v",
				i+1, batResults[i].Region, indResults[i].Region)
		}
	}
}

func TestBatchUpdateSkipsBadEntries(t *testing.T) {
	a := newAnon(t, Config{})
	a.Register(1, privacy.Constant(privacy.Requirement{K: 1}))
	a.Register(2, privacy.Constant(privacy.Requirement{K: 1}))
	a.SetMode(2, privacy.Passive)
	results := a.BatchUpdate([]cloak.Request{
		{ID: 1, Loc: geo.Pt(0.5, 0.5)},  // fine
		{ID: 2, Loc: geo.Pt(0.5, 0.5)},  // passive
		{ID: 99, Loc: geo.Pt(0.5, 0.5)}, // unknown
		{ID: 1, Loc: geo.Pt(5, 5)},      // out of world
	})
	if results[0] == nil {
		t.Error("valid entry dropped")
	}
	for i := 1; i < 4; i++ {
		if results[i] != nil {
			t.Errorf("bad entry %d produced a result", i)
		}
	}
}

func TestBatchUpdateDedupsForwarding(t *testing.T) {
	forwarded := 0
	a := newAnon(t, Config{
		Forward: func(uint64, geo.Rect) error { forwarded++; return nil },
	})
	pts, _ := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 500, World: world, Dist: mobility.Gaussian, Seed: 77,
	})
	prof := privacy.Constant(privacy.Requirement{K: 20})
	reqs := make([]cloak.Request, len(pts))
	for i, p := range pts {
		a.Register(uint64(i+1), prof)
		reqs[i] = cloak.Request{ID: uint64(i + 1), Loc: p}
	}
	a.BatchUpdate(reqs)
	forwarded = 0
	// Feed the identical batch again: every (id, region) pair repeats, but
	// within one batch each pair is forwarded at most once.
	a.BatchUpdate(append(reqs, reqs...))
	if forwarded != len(reqs) {
		t.Errorf("forwarded %d messages for a doubled batch, want %d", forwarded, len(reqs))
	}
}
