package cloak

import (
	"sync"
	"testing"

	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// TestIncrementalConcurrentAccess is the regression test for the
// unsynchronized cache map Incremental used to carry: concurrent
// Cloak/Invalidate/CacheSize calls on one shared instance. On the
// pre-guard code this fails under -race (and could fatal with
// "concurrent map read and map write" even without it); with the internal
// mutex it must be silent.
func TestIncrementalConcurrentAccess(t *testing.T) {
	_, pyr, pts := population(t, 2000, mobility.Uniform, 11)
	inc := NewIncremental(&Quadtree{Pyr: pyr}, nil)
	req := privacy.Requirement{K: 10}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w + 1))
			for i := 0; i < 500; i++ {
				id := uint64(src.Intn(len(pts))) + 1
				switch src.Intn(10) {
				case 0:
					inc.Invalidate(id)
				case 1:
					_ = inc.CacheSize()
				default:
					res := inc.Cloak(id, pts[id-1], req)
					if !res.Region.Contains(pts[id-1]) {
						t.Errorf("user %d: region misses location", id)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if inc.CacheSize() == 0 {
		t.Error("cache empty after concurrent churn")
	}
}

// TestIncrementalConcurrentDistinctUsers pins the no-bleed property: each
// goroutine owns one user at a fixed location, so every reuse must return
// that user's own region.
func TestIncrementalConcurrentDistinctUsers(t *testing.T) {
	_, pyr, pts := population(t, 1000, mobility.Uniform, 12)
	inc := NewIncremental(&Quadtree{Pyr: pyr}, nil)
	req := privacy.Requirement{K: 5}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := uint64(w*97 + 1)
			loc := pts[id-1]
			first := inc.Cloak(id, loc, req)
			for i := 0; i < 300; i++ {
				res := inc.Cloak(id, loc, req)
				if !res.Region.Eq(first.Region) {
					t.Errorf("user %d: region drifted from %v to %v under concurrency",
						id, first.Region, res.Region)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
