// Package stats provides the small numeric summaries the load tools and
// experiments report: latency percentiles and throughput windows.
package stats

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// Latencies collects duration samples and reports percentiles.
// The zero value is ready to use. Not safe for concurrent use; each worker
// keeps its own and merges at the end.
type Latencies struct {
	samples []time.Duration
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) { l.samples = append(l.samples, d) }

// Merge absorbs another collector.
func (l *Latencies) Merge(o *Latencies) { l.samples = append(l.samples, o.samples...) }

// N returns the number of samples.
func (l *Latencies) N() int { return len(l.samples) }

// Percentile returns the p-th percentile (p in [0,100]) using the
// nearest-rank method (obs.Rank — the definition shared with the runtime
// histograms), or 0 with no samples. The collector is sorted as a side
// effect.
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	return l.samples[obs.Rank(len(l.samples), p)]
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// Summary formats the standard report line.
func (l *Latencies) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		l.N(), l.Mean().Round(time.Microsecond),
		l.Percentile(50).Round(time.Microsecond),
		l.Percentile(95).Round(time.Microsecond),
		l.Percentile(99).Round(time.Microsecond),
		l.Percentile(100).Round(time.Microsecond))
}
