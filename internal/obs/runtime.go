package obs

import (
	"math"
	runtimemetrics "runtime/metrics"
)

// runtimeSamples are the runtime/metrics series the bridge exports: the
// Go health signals the soak harness consumes as SLO inputs.
const (
	smpGoroutines = "/sched/goroutines:goroutines"
	smpGomaxprocs = "/sched/gomaxprocs:threads"
	smpHeapObj    = "/memory/classes/heap/objects:bytes"
	smpHeapUnused = "/memory/classes/heap/unused:bytes"
	smpGCCycles   = "/gc/cycles/total:gc-cycles"
	smpGCPause    = "/sched/pauses/total/gc:seconds"
	smpSchedLat   = "/sched/latencies:seconds"
)

// runtimeBridge folds runtime/metrics into registry series on demand.
type runtimeBridge struct {
	samples []runtimemetrics.Sample

	goroutines *Gauge
	gomaxprocs *Gauge
	heapInuse  *Gauge
	gcCycles   *Gauge
	gcPause    *Histogram
	schedLat   *Histogram

	// Kernel histograms are cumulative; remember the last counts so only
	// the delta since the previous export is folded in.
	prevGCPause  []uint64
	prevSchedLat []uint64
}

// EnableRuntimeMetrics registers the Go runtime health series (goroutine
// count, GC pause histogram, heap in use, scheduler latency) in reg and
// refreshes them on every Export via an export hook, so scraping /metrics
// is what samples the runtime. Call once per registry.
func EnableRuntimeMetrics(reg *Registry) {
	names := []string{smpGoroutines, smpGomaxprocs, smpHeapObj, smpHeapUnused,
		smpGCCycles, smpGCPause, smpSchedLat}
	b := &runtimeBridge{samples: make([]runtimemetrics.Sample, len(names))}
	for i, n := range names {
		b.samples[i].Name = n
	}
	b.goroutines = reg.Gauge("go_goroutines", "Live goroutines.")
	b.gomaxprocs = reg.Gauge("go_gomaxprocs", "Current GOMAXPROCS setting.")
	b.heapInuse = reg.Gauge("go_heap_inuse_bytes", "Heap memory in use (live objects plus unused span space).")
	b.gcCycles = reg.Gauge("go_gc_cycles", "Completed GC cycles since process start.")
	b.gcPause = reg.Histogram("go_gc_pause_seconds",
		"Stop-the-world GC pause durations.", DefaultLatencyBuckets)
	b.schedLat = reg.Histogram("go_sched_latency_seconds",
		"Time goroutines spent runnable before running.", DefaultLatencyBuckets)
	reg.AddExportHook(b.refresh)
}

// refresh reads the runtime samples and updates the registry series.
func (b *runtimeBridge) refresh() {
	runtimemetrics.Read(b.samples)
	var heap float64
	for i := range b.samples {
		s := &b.samples[i]
		switch s.Name {
		case smpGoroutines:
			b.goroutines.Set(float64(s.Value.Uint64()))
		case smpGomaxprocs:
			b.gomaxprocs.Set(float64(s.Value.Uint64()))
		case smpHeapObj, smpHeapUnused:
			if s.Value.Kind() == runtimemetrics.KindUint64 {
				heap += float64(s.Value.Uint64())
			}
		case smpGCCycles:
			b.gcCycles.Set(float64(s.Value.Uint64()))
		case smpGCPause:
			b.prevGCPause = foldHistogram(b.gcPause, s.Value, b.prevGCPause)
		case smpSchedLat:
			b.prevSchedLat = foldHistogram(b.schedLat, s.Value, b.prevSchedLat)
		}
	}
	b.heapInuse.Set(heap)
}

// foldHistogram adds the delta of a cumulative runtime Float64Histogram
// since prev into h (each kernel bucket's new observations are folded in
// at the bucket midpoint) and returns the current counts for next time.
func foldHistogram(h *Histogram, v runtimemetrics.Value, prev []uint64) []uint64 {
	if v.Kind() != runtimemetrics.KindFloat64Histogram {
		return prev
	}
	rh := v.Float64Histogram()
	if rh == nil {
		return prev
	}
	for i, c := range rh.Counts {
		var last uint64
		if i < len(prev) {
			last = prev[i]
		}
		if c <= last {
			continue
		}
		lo, hi := rh.Buckets[i], rh.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = lo + (hi-lo)/2
		}
		h.ObserveN(mid, c-last)
	}
	out := prev
	if len(out) != len(rh.Counts) {
		out = make([]uint64, len(rh.Counts))
	}
	copy(out, rh.Counts)
	return out
}
