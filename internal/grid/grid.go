// Package grid implements a uniform grid index over moving point objects.
// It is the server's index for moving public data (police cars, on-site
// workers), the anonymizer's fallback index for data-dependent cloaking,
// and the substrate for shared continuous-query execution: relocating an
// object between cells is O(1), which is what makes high-rate location
// updates tractable.
package grid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// Index is a uniform cols×rows grid over a rectangular world. Each cell
// keeps the IDs and exact locations of the objects currently inside it.
// The zero value is unusable; construct with New. Index is not
// goroutine-safe; callers serialize access.
type Index struct {
	world      geo.Rect
	cols, rows int
	cellW      float64
	cellH      float64
	cells      [][]entry         // cell -> entries
	loc        map[uint64]locRef // id -> where it lives
}

type entry struct {
	id uint64
	p  geo.Point
}

type locRef struct {
	cell int
	p    geo.Point
}

// New builds an empty grid with the given resolution. cols and rows must be
// positive and the world must have positive area.
func New(world geo.Rect, cols, rows int) (*Index, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("grid: non-positive resolution %d×%d", cols, rows)
	}
	if !world.Valid() || world.Area() <= 0 {
		return nil, fmt.Errorf("grid: invalid world %v", world)
	}
	return &Index{
		world: world,
		cols:  cols,
		rows:  rows,
		cellW: world.Width() / float64(cols),
		cellH: world.Height() / float64(rows),
		cells: make([][]entry, cols*rows),
		loc:   make(map[uint64]locRef),
	}, nil
}

// World returns the indexed area.
func (g *Index) World() geo.Rect { return g.world }

// Dims returns the grid resolution.
func (g *Index) Dims() (cols, rows int) { return g.cols, g.rows }

// Len returns the number of indexed objects.
func (g *Index) Len() int { return len(g.loc) }

// CellOf returns the (col, row) of the cell containing p, clamping points
// on or beyond the boundary into the edge cells.
func (g *Index) CellOf(p geo.Point) (col, row int) {
	col = int((p.X - g.world.Min.X) / g.cellW)
	row = int((p.Y - g.world.Min.Y) / g.cellH)
	if col < 0 {
		col = 0
	}
	if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return col, row
}

// CellRect returns the rectangle of cell (col, row).
func (g *Index) CellRect(col, row int) geo.Rect {
	x0 := g.world.Min.X + float64(col)*g.cellW
	y0 := g.world.Min.Y + float64(row)*g.cellH
	return geo.R(x0, y0, x0+g.cellW, y0+g.cellH)
}

func (g *Index) cellIndex(col, row int) int { return row*g.cols + col }

// Upsert inserts the object or moves it to its new location. It returns
// true when the object changed cells (or was new), which is the signal the
// continuous-query engine uses to re-evaluate only affected queries.
func (g *Index) Upsert(id uint64, p geo.Point) bool {
	col, row := g.CellOf(p)
	ci := g.cellIndex(col, row)
	if ref, ok := g.loc[id]; ok {
		if ref.cell == ci {
			// Same cell: update the stored point in place.
			cell := g.cells[ci]
			for i := range cell {
				if cell[i].id == id {
					cell[i].p = p
					break
				}
			}
			g.loc[id] = locRef{cell: ci, p: p}
			return false
		}
		g.removeFromCell(ref.cell, id)
	}
	g.cells[ci] = append(g.cells[ci], entry{id: id, p: p})
	g.loc[id] = locRef{cell: ci, p: p}
	return true
}

// Delete removes the object; it reports whether it was present.
func (g *Index) Delete(id uint64) bool {
	ref, ok := g.loc[id]
	if !ok {
		return false
	}
	g.removeFromCell(ref.cell, id)
	delete(g.loc, id)
	return true
}

func (g *Index) removeFromCell(ci int, id uint64) {
	cell := g.cells[ci]
	for i := range cell {
		if cell[i].id == id {
			cell[i] = cell[len(cell)-1]
			g.cells[ci] = cell[:len(cell)-1]
			return
		}
	}
}

// Location returns the stored location of the object.
func (g *Index) Location(id uint64) (geo.Point, bool) {
	ref, ok := g.loc[id]
	return ref.p, ok
}

// Object pairs an ID with its location in query results.
type Object struct {
	ID  uint64
	Loc geo.Point
}

// Search appends every object inside r to dst and returns the slice.
func (g *Index) Search(r geo.Rect, dst []Object) []Object {
	c0, r0 := g.CellOf(r.Min)
	c1, r1 := g.CellOf(r.Max)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, e := range g.cells[g.cellIndex(col, row)] {
				if r.Contains(e.p) {
					dst = append(dst, Object{ID: e.id, Loc: e.p})
				}
			}
		}
	}
	return dst
}

// Count returns the number of objects inside r.
func (g *Index) Count(r geo.Rect) int {
	c0, r0 := g.CellOf(r.Min)
	c1, r1 := g.CellOf(r.Max)
	n := 0
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			ci := g.cellIndex(col, row)
			cr := g.CellRect(col, row)
			if r.ContainsRect(cr) {
				n += len(g.cells[ci])
				continue
			}
			for _, e := range g.cells[ci] {
				if r.Contains(e.p) {
					n++
				}
			}
		}
	}
	return n
}

// CellCount returns the number of objects currently in cell (col, row).
func (g *Index) CellCount(col, row int) int {
	return len(g.cells[g.cellIndex(col, row)])
}

// Nearest returns the k objects nearest to p, expanding the searched cell
// ring until the k-th best distance is covered. Fewer are returned when the
// index holds fewer than k objects.
func (g *Index) Nearest(p geo.Point, k int) []Object {
	if k <= 0 || len(g.loc) == 0 {
		return nil
	}
	if k > len(g.loc) {
		k = len(g.loc)
	}
	pc, pr := g.CellOf(p)
	best := make([]Object, 0, k+8)
	// kth tracks the current k-th smallest distance² (∞ until k found).
	kth := math.Inf(1)
	consider := func(e entry) {
		best = append(best, Object{ID: e.id, Loc: e.p})
	}
	maxRing := g.cols
	if g.rows > maxRing {
		maxRing = g.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Stop when the nearest possible point of this ring is beyond the
		// current k-th distance and we already have k candidates.
		if len(best) >= k {
			ringDist := float64(ring-1) * math.Min(g.cellW, g.cellH)
			if ringDist > 0 && ringDist*ringDist > kth {
				break
			}
		}
		g.forEachRingCell(pc, pr, ring, func(ci int) {
			for _, e := range g.cells[ci] {
				consider(e)
			}
		})
		if len(best) >= k {
			sort.Slice(best, func(i, j int) bool {
				return p.Dist2(best[i].Loc) < p.Dist2(best[j].Loc)
			})
			if len(best) > 4*k {
				best = best[:k] // trim to keep the sort cheap
			}
			kth = p.Dist2(best[min(k, len(best))-1].Loc)
		}
	}
	sort.Slice(best, func(i, j int) bool {
		return p.Dist2(best[i].Loc) < p.Dist2(best[j].Loc)
	})
	if len(best) > k {
		best = best[:k]
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// forEachRingCell visits the cells at Chebyshev distance ring from (pc, pr).
func (g *Index) forEachRingCell(pc, pr, ring int, fn func(ci int)) {
	if ring == 0 {
		fn(g.cellIndex(pc, pr))
		return
	}
	for col := pc - ring; col <= pc+ring; col++ {
		if col < 0 || col >= g.cols {
			continue
		}
		for _, row := range [2]int{pr - ring, pr + ring} {
			if row >= 0 && row < g.rows {
				fn(g.cellIndex(col, row))
			}
		}
	}
	for row := pr - ring + 1; row <= pr+ring-1; row++ {
		if row < 0 || row >= g.rows {
			continue
		}
		for _, col := range [2]int{pc - ring, pc + ring} {
			if col >= 0 && col < g.cols {
				fn(g.cellIndex(col, row))
			}
		}
	}
}

// All appends every indexed object to dst.
func (g *Index) All(dst []Object) []Object {
	for _, cell := range g.cells {
		for _, e := range cell {
			dst = append(dst, Object{ID: e.id, Loc: e.p})
		}
	}
	return dst
}
