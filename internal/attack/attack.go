// Package attack implements the reverse-engineering adversaries the paper
// argues about in Section 5: an adversary sees only the cloaked region and
// tries to recover the exact user location. The package provides point-
// guess attacks (center guess, boundary guess, uniform guess) and an
// evaluator producing the leakage metrics of experiments E2/E3:
//
//   - guess error, normalized by the best-possible uniform-prior error
//     (the RMS distance of a uniform point from the region center);
//   - leakage score in [0,1]: 1 = exact recovery, 0 = no better than the
//     uniform prior;
//   - boundary proximity, the statistic that exposes the MBR cloak's
//     "at least one user on each edge" leak.
package attack

import (
	"math"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Attack is a point-guess adversary: given only the cloaked region it
// produces an estimate of the user's exact location. Randomized attacks
// draw from src so experiments stay reproducible.
type Attack interface {
	Name() string
	Guess(region geo.Rect, src *rng.Source) geo.Point
}

// Center guesses the center of the region — optimal under a uniform prior
// and devastating against the naive cloaker, whose region is exactly
// centered on the user.
type Center struct{}

// Name implements Attack.
func (Center) Name() string { return "center" }

// Guess implements Attack.
func (Center) Guess(region geo.Rect, _ *rng.Source) geo.Point { return region.Center() }

// Boundary guesses a uniformly distributed point on the region's boundary,
// modeling the adversary who knows the region is a minimum bounding
// rectangle of user locations and therefore has users on its edges.
type Boundary struct{}

// Name implements Attack.
func (Boundary) Name() string { return "boundary" }

// Guess implements Attack.
func (Boundary) Guess(region geo.Rect, src *rng.Source) geo.Point {
	w, h := region.Width(), region.Height()
	per := 2 * (w + h)
	if per == 0 {
		return region.Min
	}
	d := src.Float64() * per
	switch {
	case d < w: // bottom edge
		return geo.Pt(region.Min.X+d, region.Min.Y)
	case d < w+h: // right edge
		return geo.Pt(region.Max.X, region.Min.Y+(d-w))
	case d < 2*w+h: // top edge
		return geo.Pt(region.Min.X+(d-w-h), region.Max.Y)
	default: // left edge
		return geo.Pt(region.Min.X, region.Min.Y+(d-2*w-h))
	}
}

// Uniform guesses a uniformly distributed point inside the region — the
// no-information baseline every other attack is compared against.
type Uniform struct{}

// Name implements Attack.
func (Uniform) Name() string { return "uniform" }

// Guess implements Attack.
func (Uniform) Guess(region geo.Rect, src *rng.Source) geo.Point {
	return geo.Pt(
		src.Range(region.Min.X, region.Max.X),
		src.Range(region.Min.Y, region.Max.Y),
	)
}

// PriorRMS returns the root-mean-square distance between the region's
// center and a uniformly distributed point inside it: sqrt((w²+h²)/12).
// It is the error a center guess achieves when the cloak is perfectly
// space-dependent (user uniform in the region), and therefore the natural
// normalizer for leakage.
func PriorRMS(region geo.Rect) float64 {
	w, h := region.Width(), region.Height()
	return math.Sqrt((w*w + h*h) / 12)
}

// Sample is one observation for the evaluator: the cloaked region an
// adversary saw and the exact location it was hiding. SetLocs optionally
// carries the locations of every user inside the region (the anonymity
// set), enabling the edge-gap metric.
type Sample struct {
	Region  geo.Rect
	TrueLoc geo.Point
	SetLocs []geo.Point
}

// Report aggregates leakage metrics over a set of samples.
type Report struct {
	Attack string
	N      int
	// MeanError is the mean Euclidean guess error in world units.
	MeanError float64
	// MeanNormError is the mean of error / PriorRMS(region); ≈1 means the
	// attack does no better than the uniform prior, ≪1 means leakage.
	MeanNormError float64
	// Leakage is mean max(0, 1 − error/PriorRMS) ∈ [0,1].
	Leakage float64
	// HitRate is the fraction of guesses within HitEps of the true location.
	HitRate float64
	HitEps  float64
	// MeanBoundaryDist is the mean distance from the true location to the
	// region boundary, normalized by sqrt(region area).
	MeanBoundaryDist float64
	// MeanEdgeGap is the mean, over samples carrying SetLocs, of the minimum
	// normalized distance from any anonymity-set member to the region
	// boundary. A true MBR has a member on every edge, so its gap is exactly
	// zero — the paper's "at least one data point on each edge" leak —
	// while space-dependent cells keep members strictly interior on average.
	MeanEdgeGap float64
	// EdgeGapN counts the samples that carried SetLocs.
	EdgeGapN int
}

// Evaluate runs the attack against every sample. hitEps is the absolute
// distance within which a guess counts as a "hit" (exact recovery); pass
// e.g. 1% of the world width.
func Evaluate(a Attack, samples []Sample, hitEps float64, seed uint64) Report {
	src := rng.New(seed)
	rep := Report{Attack: a.Name(), N: len(samples), HitEps: hitEps}
	if len(samples) == 0 {
		return rep
	}
	for _, s := range samples {
		g := a.Guess(s.Region, src)
		err := g.Dist(s.TrueLoc)
		rep.MeanError += err
		if prior := PriorRMS(s.Region); prior > 0 {
			norm := err / prior
			rep.MeanNormError += norm
			if norm < 1 {
				rep.Leakage += 1 - norm
			}
		} else {
			// Degenerate (point) region: total disclosure.
			rep.MeanNormError += 0
			rep.Leakage += 1
		}
		if err <= hitEps {
			rep.HitRate++
		}
		rep.MeanBoundaryDist += normBoundaryDist(s.Region, s.TrueLoc)
		if len(s.SetLocs) > 0 {
			gap := math.Inf(1)
			for _, p := range s.SetLocs {
				if d := normBoundaryDist(s.Region, p); d < gap {
					gap = d
				}
			}
			rep.MeanEdgeGap += gap
			rep.EdgeGapN++
		}
	}
	n := float64(len(samples))
	rep.MeanError /= n
	rep.MeanNormError /= n
	rep.Leakage /= n
	rep.HitRate /= n
	rep.MeanBoundaryDist /= n
	if rep.EdgeGapN > 0 {
		rep.MeanEdgeGap /= float64(rep.EdgeGapN)
	}
	return rep
}

// normBoundaryDist returns the distance from p to the boundary of r,
// normalized by sqrt(area); 0 when p is on (or outside) the boundary.
func normBoundaryDist(r geo.Rect, p geo.Point) float64 {
	a := r.Area()
	if a <= 0 {
		return 0
	}
	d := math.Min(
		math.Min(p.X-r.Min.X, r.Max.X-p.X),
		math.Min(p.Y-r.Min.Y, r.Max.Y-p.Y),
	)
	if d < 0 {
		d = 0
	}
	return d / math.Sqrt(a)
}
