package anonymizer

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// The differential suite proves the sharded parallel pipeline equivalent to
// the historical serialized anonymizer: for every seed in
// testdata/diff_seeds.txt and every cloaking algorithm, one deterministic
// workload script is replayed against a sequential reference configuration
// (Shards=1, BatchWorkers=1) and a sharded parallel one, and every
// cloak.Result — batched and single-call alike — must match bit for bit.

// diffShards returns the shard count of the parallel side. The CI matrix
// overrides it via ANON_TEST_SHARDS.
func diffShards(t testing.TB) int {
	t.Helper()
	s := os.Getenv("ANON_TEST_SHARDS")
	if s == "" {
		return 8
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 || n > MaxShards {
		t.Fatalf("bad ANON_TEST_SHARDS=%q", s)
	}
	return n
}

// diffSeeds loads the committed seed table.
func diffSeeds(t testing.TB) []uint64 {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "diff_seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var seeds []uint64
	for ln, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			t.Fatalf("diff_seeds.txt:%d: %v", ln+1, err)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		t.Fatal("diff_seeds.txt holds no seeds")
	}
	return seeds
}

// A diffOp is one step of a workload script.
type diffOp struct {
	kind    byte // 'B' batch, 'U' update, 'Q' query, 'M' set mode, 'P' replace profile, 'D' deregister, 'R' register
	id      uint64
	loc     geo.Point
	mode    privacy.Mode
	k       int
	batch   []cloak.Request
	comment string
}

// diffK spreads requirement levels over users so that users id, id+37, ...
// share a requirement (a precondition for shared descents).
func diffK(id uint64) int { return 1 + int(id%37) }

// buildDiffScript generates the deterministic workload for one seed: users
// move in batches (with deliberate co-located triples to exercise the
// shared-descent memo), issue single updates and query cloaks, toggle
// modes, replace profiles, and churn registrations.
func buildDiffScript(t testing.TB, seed uint64, users, rounds int) []diffOp {
	t.Helper()
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: users, World: world, Dist: mobility.Gaussian, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed ^ 0xD1FF)
	var ops []diffOp

	batchOf := func() diffOp {
		reqs := make([]cloak.Request, 0, users+30)
		for i := range pts {
			reqs = append(reqs, cloak.Request{ID: uint64(i + 1), Loc: pts[i]})
		}
		// Co-located triples with a shared requirement: ids d, d+37, d+74
		// (same diffK class) at the identical point. For the quadtree batch
		// these share one descent.
		for j := 0; j < 10; j++ {
			d := uint64(src.Intn(users-74)) + 1
			p := world.ClampPoint(geo.Pt(src.Float64(), src.Float64()))
			for _, id := range []uint64{d, d + 37, d + 74} {
				reqs = append(reqs, cloak.Request{ID: id, Loc: p})
				pts[id-1] = p
			}
		}
		return diffOp{kind: 'B', batch: reqs}
	}

	for r := 0; r < rounds; r++ {
		// Everyone drifts a little, then the batch goes in.
		for i := range pts {
			pts[i] = world.ClampPoint(geo.Pt(
				pts[i].X+src.Range(-0.01, 0.01),
				pts[i].Y+src.Range(-0.01, 0.01),
			))
		}
		ops = append(ops, batchOf())
		// Interleaved single-call traffic.
		for j := 0; j < 20; j++ {
			id := uint64(src.Intn(users)) + 1
			pts[id-1] = world.ClampPoint(geo.Pt(src.Float64(), src.Float64()))
			ops = append(ops, diffOp{kind: 'U', id: id, loc: pts[id-1]})
		}
		for j := 0; j < 10; j++ {
			id := uint64(src.Intn(users)) + 1
			ops = append(ops, diffOp{kind: 'Q', id: id, loc: pts[id-1]})
		}
		// Mode churn: one user goes passive (her next update errors), then
		// active again.
		pid := uint64(src.Intn(users)) + 1
		ops = append(ops,
			diffOp{kind: 'M', id: pid, mode: privacy.Passive},
			diffOp{kind: 'U', id: pid, loc: pts[pid-1], comment: "passive update must fail"},
			diffOp{kind: 'M', id: pid, mode: privacy.Active},
			diffOp{kind: 'U', id: pid, loc: pts[pid-1]},
		)
		// Profile churn invalidates any cached region.
		cid := uint64(src.Intn(users)) + 1
		ops = append(ops,
			diffOp{kind: 'P', id: cid, k: 5 + src.Intn(40)},
			diffOp{kind: 'U', id: cid, loc: pts[cid-1]},
		)
		// Registration churn.
		did := uint64(src.Intn(users)) + 1
		ops = append(ops,
			diffOp{kind: 'D', id: did},
			diffOp{kind: 'R', id: did, k: diffK(did)},
			diffOp{kind: 'U', id: did, loc: pts[did-1]},
		)
	}
	return ops
}

// diffTrace is everything observable from replaying a script: results in
// op order (batch results flattened), error outcomes, and the final stats.
type diffTrace struct {
	results []cloak.Result
	oks     []bool // per emitted result: non-nil / no error
	stats   Stats
}

// runDiffScript replays a script against a fresh anonymizer.
func runDiffScript(t testing.TB, cfg Config, users int, ops []diffOp) diffTrace {
	t.Helper()
	a := newAnon(t, cfg)
	for id := uint64(1); id <= uint64(users); id++ {
		if err := a.Register(id, privacy.Constant(privacy.Requirement{K: diffK(id)})); err != nil {
			t.Fatal(err)
		}
	}
	var tr diffTrace
	emit := func(res cloak.Result, ok bool) {
		tr.results = append(tr.results, res)
		tr.oks = append(tr.oks, ok)
	}
	for _, op := range ops {
		switch op.kind {
		case 'B':
			for _, res := range a.BatchUpdate(op.batch) {
				if res == nil {
					emit(cloak.Result{}, false)
				} else {
					emit(*res, true)
				}
			}
		case 'U':
			res, err := a.Update(op.id, op.loc)
			emit(res, err == nil)
		case 'Q':
			res, err := a.CloakQuery(op.id, op.loc)
			emit(res, err == nil)
		case 'M':
			if err := a.SetMode(op.id, op.mode); err != nil {
				t.Fatalf("SetMode(%d): %v", op.id, err)
			}
		case 'P':
			if err := a.UpdateProfile(op.id, privacy.Constant(privacy.Requirement{K: op.k})); err != nil {
				t.Fatalf("UpdateProfile(%d): %v", op.id, err)
			}
		case 'D':
			if !a.Deregister(op.id) {
				t.Fatalf("Deregister(%d): unknown", op.id)
			}
		case 'R':
			if err := a.Register(op.id, privacy.Constant(privacy.Requirement{K: op.k})); err != nil {
				t.Fatalf("Register(%d): %v", op.id, err)
			}
		}
	}
	tr.stats = a.Stats()
	return tr
}

// compareTraces fails the test on the first divergence.
func compareTraces(t *testing.T, seq, par diffTrace) {
	t.Helper()
	if len(seq.results) != len(par.results) {
		t.Fatalf("trace lengths diverge: seq=%d par=%d", len(seq.results), len(par.results))
	}
	for i := range seq.results {
		if seq.oks[i] != par.oks[i] {
			t.Fatalf("result %d: outcome diverges (seq ok=%v, par ok=%v)", i, seq.oks[i], par.oks[i])
		}
		if seq.results[i] != par.results[i] {
			t.Fatalf("result %d: not bit-identical:\n  seq: %+v\n  par: %+v", i, seq.results[i], par.results[i])
		}
	}
	s, p := seq.stats, par.stats
	type core struct {
		Registered                                            int
		Updates, Queries, Reused, BestEffort, Batches, Shared uint64
	}
	cs := core{s.Registered, s.Updates, s.Queries, s.Reused, s.BestEffort, s.Batches, s.SharedHits}
	cp := core{p.Registered, p.Updates, p.Queries, p.Reused, p.BestEffort, p.Batches, p.SharedHits}
	if cs != cp {
		t.Fatalf("stats diverge:\n  seq: %+v\n  par: %+v", cs, cp)
	}
}

// TestDifferentialShardedEqualsSequential is the core equivalence proof:
// all algorithms × all committed seeds, sequential reference vs sharded
// parallel pipeline.
func TestDifferentialShardedEqualsSequential(t *testing.T) {
	const users, rounds = 300, 3
	shards := diffShards(t)
	for _, alg := range []Algorithm{AlgQuadtree, AlgGrid, AlgGridML, AlgNaive, AlgMBR} {
		for _, seed := range diffSeeds(t) {
			t.Run(fmt.Sprintf("%v/seed=%d", alg, seed), func(t *testing.T) {
				t.Parallel()
				ops := buildDiffScript(t, seed, users, rounds)
				seq := runDiffScript(t, Config{Algorithm: alg, Shards: 1, BatchWorkers: 1}, users, ops)
				par := runDiffScript(t, Config{Algorithm: alg, Shards: shards, BatchWorkers: 4}, users, ops)
				compareTraces(t, seq, par)
				if alg == AlgQuadtree && par.stats.SharedHits == 0 {
					t.Error("co-located triples produced no shared descents")
				}
			})
		}
	}
}

// TestDifferentialAcrossGoMaxProcs re-proves sharded ≡ sequential with the
// scheduler pinned to GOMAXPROCS 1 and 4 — the two pinned points of the
// bench matrix (E16). The subtests are deliberately serial because
// GOMAXPROCS is process-global.
func TestDifferentialAcrossGoMaxProcs(t *testing.T) {
	const users = 300
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			ops := buildDiffScript(t, 7, users, 2)
			seq := runDiffScript(t, Config{Shards: 1, BatchWorkers: 1}, users, ops)
			par := runDiffScript(t, Config{Shards: 4, BatchWorkers: 4}, users, ops)
			compareTraces(t, seq, par)
		})
	}
}

// TestDifferentialIncremental repeats the proof with the incremental cache
// enabled — the shard-local caches must reproduce the single-cache
// reference exactly, reuse counts included.
func TestDifferentialIncremental(t *testing.T) {
	const users, rounds = 300, 3
	shards := diffShards(t)
	for _, seed := range diffSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			ops := buildDiffScript(t, seed, users, rounds)
			seq := runDiffScript(t, Config{Incremental: true, Shards: 1, BatchWorkers: 1}, users, ops)
			par := runDiffScript(t, Config{Incremental: true, Shards: shards, BatchWorkers: 4}, users, ops)
			compareTraces(t, seq, par)
			if par.stats.Reused == 0 {
				t.Error("incremental workload produced no reuses")
			}
		})
	}
}

// TestSharedHitsNeverDecreaseUnderBatching: splitting a stream into batches
// can only lose sharing at batch boundaries, never gain it — and the batch
// path must never report more shared hits than distinct-key accounting
// allows. Verified against a brute-force distinct-key count per batch.
func TestSharedHitsNeverDecreaseUnderBatching(t *testing.T) {
	const users = 300
	ops := buildDiffScript(t, 42, users, 2)
	var batches [][]cloak.Request
	for _, op := range ops {
		if op.kind == 'B' {
			batches = append(batches, op.batch)
		}
	}
	run := func(split bool) uint64 {
		a := newAnon(t, Config{Shards: diffShards(t), BatchWorkers: 4})
		for id := uint64(1); id <= users; id++ {
			a.Register(id, privacy.Constant(privacy.Requirement{K: diffK(id)}))
		}
		for _, b := range batches {
			if !split {
				a.BatchUpdate(b)
				continue
			}
			for len(b) > 0 {
				n := min(64, len(b))
				a.BatchUpdate(b[:n])
				b = b[n:]
			}
		}
		return a.Stats().SharedHits
	}
	whole, split := run(false), run(true)
	if whole < split {
		t.Errorf("shared hits decreased under larger batches: whole=%d split=%d", whole, split)
	}
	if whole == 0 {
		t.Error("no shared hits at all")
	}
}
