package geo

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned rectangle [MinX,MaxX]×[MinY,MaxY].
// A Rect with Min == Max is a degenerate (point) rectangle, which is valid:
// cloaked regions for k=1 profiles collapse to the exact location.
type Rect struct {
	Min, Max Point
}

// R is shorthand for a rectangle from its four coordinates. It normalizes
// swapped coordinates so that Min ≤ Max on both axes.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// RectAround returns the square of the given half-width centered at p.
func RectAround(p Point, half float64) Rect {
	return Rect{Min: Point{p.X - half, p.Y - half}, Max: Point{p.X + half, p.Y + half}}
}

// PointRect returns the degenerate rectangle containing only p.
func PointRect(p Point) Rect { return Rect{Min: p, Max: p} }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g]x[%.6g,%.6g]", r.Min.X, r.Max.X, r.Min.Y, r.Max.Y)
}

// Valid reports whether the rectangle is well formed (Min ≤ Max, finite).
func (r Rect) Valid() bool {
	return r.Min.Valid() && r.Max.Valid() && r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Width returns the extent along the x axis.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent along the y axis.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of the rectangle (zero for degenerate rectangles).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns the perimeter of the rectangle.
func (r Rect) Perimeter() float64 { return 2 * (r.Width() + r.Height()) }

// Center returns the center point of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point
// (closed-rectangle semantics: touching edges intersect).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersect returns the overlap of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Min.X > out.Max.X || out.Min.Y > out.Max.Y {
		return Rect{}, false
	}
	return out, true
}

// OverlapArea returns the area of the intersection of r and s
// (zero when they do not overlap or overlap only on an edge).
func (r Rect) OverlapArea(s Rect) float64 {
	w := math.Min(r.Max.X, s.Max.X) - math.Max(r.Min.X, s.Min.X)
	if w <= 0 {
		return 0
	}
	h := math.Min(r.Max.Y, s.Max.Y) - math.Max(r.Min.Y, s.Min.Y)
	if h <= 0 {
		return 0
	}
	return w * h
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// UnionPoint returns the smallest rectangle containing r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Expand returns r grown by d on every side (the Minkowski sum of r with a
// square of half-width d). A negative d shrinks the rectangle; the result
// is normalized to be at least degenerate.
//
// Expansion by the query range is the server-side filter for private range
// queries (Figure 5a of the paper): every public object within distance d
// of any point of the cloaked region lies inside the circle-expanded
// region, which Expand over-approximates by its MBR exactly as the paper
// prescribes ("the rounded rectangle will be approximated by its minimum
// bounding rectangle").
func (r Rect) Expand(d float64) Rect {
	out := Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
	if out.Min.X > out.Max.X {
		c := (out.Min.X + out.Max.X) / 2
		out.Min.X, out.Max.X = c, c
	}
	if out.Min.Y > out.Max.Y {
		c := (out.Min.Y + out.Max.Y) / 2
		out.Min.Y, out.Max.Y = c, c
	}
	return out
}

// ClampPoint returns the point of r closest to p.
func (r Rect) ClampPoint(p Point) Point {
	x := math.Min(math.Max(p.X, r.Min.X), r.Max.X)
	y := math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y)
	return Point{x, y}
}

// Clip returns r clipped to the bounds of s (their intersection), or a
// degenerate rectangle at the clamped center of r if they do not overlap.
func (r Rect) Clip(s Rect) Rect {
	if out, ok := r.Intersect(s); ok {
		return out
	}
	return PointRect(s.ClampPoint(r.Center()))
}

// Corners returns the four corner points of r in counterclockwise order
// starting from Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.Min.X, r.Min.Y},
		{r.Max.X, r.Min.Y},
		{r.Max.X, r.Max.Y},
		{r.Min.X, r.Max.Y},
	}
}

// Eq reports whether r and s are exactly equal.
func (r Rect) Eq(s Rect) bool { return r.Min.Eq(s.Min) && r.Max.Eq(s.Max) }

// IsPoint reports whether the rectangle is degenerate (zero width and height).
func (r Rect) IsPoint() bool { return r.Min.Eq(r.Max) }

// Diagonal returns the length of the rectangle's diagonal — the largest
// distance between any two of its points.
func (r Rect) Diagonal() float64 { return r.Min.Dist(r.Max) }
