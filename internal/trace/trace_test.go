package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// A tracer with Sample=1 records every root; Sample=0 records none but
// still obeys incoming sampled contexts (propagation-only mode).
func TestSampling(t *testing.T) {
	always := New(Config{Process: "p", Sample: 1})
	for i := 0; i < 100; i++ {
		sp := always.StartRoot("proto_request")
		if !sp.Recording() {
			t.Fatalf("root %d not sampled at rate 1", i)
		}
		sp.End()
	}
	if got := len(always.Snapshot()); got != 100 {
		t.Fatalf("snapshot has %d spans, want 100", got)
	}

	never := New(Config{Process: "p", Sample: 0})
	for i := 0; i < 100; i++ {
		if never.StartRoot("proto_request").Recording() {
			t.Fatal("root sampled at rate 0")
		}
	}
	// Propagation: an incoming sampled context is recorded regardless.
	sp := never.StartSpan(SpanContext{TraceID: 42, SpanID: 7, Flags: FlagSampled}, "proto_serve")
	if !sp.Recording() {
		t.Fatal("propagated sampled trace not recorded at local rate 0")
	}
	sp.End()
	snap := never.Snapshot()
	if len(snap) != 1 || snap[0].TraceID != 42 || snap[0].ParentID != 7 {
		t.Fatalf("propagated span wrong: %+v", snap)
	}
}

// A fractional rate must accept roughly that fraction of roots — the
// threshold test runs on mixed ids, so the law of large numbers applies.
func TestSamplingFraction(t *testing.T) {
	tr := New(Config{Process: "p", Sample: 0.25})
	sampled := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if sp := tr.StartRoot("proto_request"); sp.Recording() {
			sampled++
			sp.End()
		}
	}
	frac := float64(sampled) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("sampled fraction %.3f, want ~0.25", frac)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("proto_request")
	if sp.Recording() {
		t.Fatal("nil tracer recorded")
	}
	sp.SetAttrs(Int("x", 1))
	sp.End() // must not panic
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot not nil")
	}
	if tr.Process() != "" {
		t.Fatal("nil tracer process not empty")
	}
	child, ctx := Start(NewContext(context.Background(),
		SpanContext{TraceID: 1, Flags: FlagSampled}), tr, "proto_call")
	if child.Recording() {
		t.Fatal("nil tracer child recorded")
	}
	if _, ok := FromContext(ctx); !ok {
		t.Fatal("context lost its span context")
	}
}

// The ring holds the most recent Ring spans; older ones are evicted.
func TestRingWraparound(t *testing.T) {
	tr := New(Config{Process: "p", Sample: 1, Ring: 8})
	for i := 0; i < 50; i++ {
		tr.StartRoot("proto_request").End()
	}
	snap := tr.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(snap))
	}
}

// Slow spans survive ring churn via the pinned slow ring; Snapshot
// deduplicates spans present in both rings.
func TestSlowPinning(t *testing.T) {
	tr := New(Config{Process: "p", Sample: 1, Ring: 4, SlowThreshold: time.Millisecond})
	slow := tr.StartRoot("proto_request")
	time.Sleep(5 * time.Millisecond)
	slow.End()
	slowID := slow.Context().TraceID
	// No churn yet: the slow span sits in both rings but must appear once.
	if snap := tr.Snapshot(); len(snap) != 1 {
		t.Fatalf("pre-churn snapshot has %d spans, want 1 (dedup)", len(snap))
	}
	// Churn the main ring far past capacity with fast spans.
	for i := 0; i < 64; i++ {
		tr.StartRoot("proto_request").End()
	}
	found := false
	for _, rec := range tr.Snapshot() {
		if rec.TraceID == slowID {
			found = true
		}
	}
	if !found {
		t.Fatal("slow span evicted despite pinning")
	}
}

// Context propagation builds the parent/child chain across Start calls.
func TestContextPropagation(t *testing.T) {
	tr := New(Config{Process: "p", Sample: 1})
	root := tr.StartRoot("proto_request")
	ctx := NewContext(context.Background(), root.Context())

	mid, ctx2 := Start(ctx, tr, "proto_call")
	leaf, _ := Start(ctx2, tr, "proto_backoff")
	leaf.End()
	mid.End()
	root.End()

	byName := map[string]SpanRecord{}
	for _, rec := range tr.Snapshot() {
		byName[rec.Name] = rec
	}
	if len(byName) != 3 {
		t.Fatalf("want 3 spans, got %d", len(byName))
	}
	r, m, l := byName["proto_request"], byName["proto_call"], byName["proto_backoff"]
	if r.ParentID != 0 {
		t.Fatalf("root has parent %x", r.ParentID)
	}
	if m.ParentID != r.SpanID || l.ParentID != m.SpanID {
		t.Fatalf("broken chain: root=%x mid(parent=%x id=%x) leaf(parent=%x)",
			r.SpanID, m.ParentID, m.SpanID, l.ParentID)
	}
	if r.TraceID != m.TraceID || m.TraceID != l.TraceID {
		t.Fatal("spans split across trace ids")
	}
}

// The exported Chrome trace must be valid JSON with one event per span
// plus one process_name metadata event per process.
func TestChromeJSONValid(t *testing.T) {
	tr := New(Config{Process: "client", Sample: 1})
	sp := tr.StartRoot("proto_request")
	sp.SetAttrs(Str("type", "update"), Int("attempt", 3))
	sp.End()
	other := SpanRecord{TraceID: sp.Context().TraceID, SpanID: 999, ParentID: sp.Context().SpanID,
		Name: "proto_serve", Proc: "lbsd", Start: time.Now().UnixNano(), Dur: 1000}

	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, Merge(tr.Snapshot(), []SpanRecord{other})); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Name string          `json:"name"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("got %d metadata + %d complete events, want 2 + 2", meta, complete)
	}
	if !strings.Contains(buf.String(), `"attempt":3`) {
		t.Fatal("int attribute missing from args")
	}
}

func TestMergeDedupes(t *testing.T) {
	a := SpanRecord{TraceID: 1, SpanID: 2, Proc: "p", Start: 10}
	b := SpanRecord{TraceID: 1, SpanID: 3, Proc: "p", Start: 5}
	merged := Merge([]SpanRecord{a, b}, []SpanRecord{a})
	if len(merged) != 2 {
		t.Fatalf("merge kept %d spans, want 2", len(merged))
	}
	if merged[0].SpanID != 3 {
		t.Fatal("merge not ordered by start time")
	}
}

// Summarize attributes self-time (duration minus direct children) per
// proc/stage and ranks traces slowest-root first.
func TestSummarize(t *testing.T) {
	spans := []SpanRecord{
		{TraceID: 1, SpanID: 10, ParentID: 0, Name: "load_update", Proc: "client", Dur: 100},
		{TraceID: 1, SpanID: 11, ParentID: 10, Name: "proto_call", Proc: "client", Dur: 80},
		{TraceID: 1, SpanID: 12, ParentID: 11, Name: "proto_serve", Proc: "anonymizer", Dur: 60},
		{TraceID: 2, SpanID: 20, ParentID: 0, Name: "load_update", Proc: "client", Dur: 30},
	}
	sums := Summarize(spans)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if sums[0].TraceID != 1 || sums[1].TraceID != 2 {
		t.Fatalf("not ordered slowest first: %v, %v", sums[0].TraceID, sums[1].TraceID)
	}
	s := sums[0]
	if s.Root.SpanID != 10 || s.Spans != 3 {
		t.Fatalf("root/span count wrong: %+v", s)
	}
	want := map[string]time.Duration{
		"client/load_update":     20,
		"client/proto_call":      20,
		"anonymizer/proto_serve": 60,
	}
	for k, v := range want {
		if s.Self[k] != v {
			t.Fatalf("self[%s] = %v, want %v (all: %v)", k, s.Self[k], v, s.Self)
		}
	}
}

// A trace whose root was evicted still summarizes, with the longest
// surviving span standing in as root.
func TestSummarizeOrphan(t *testing.T) {
	spans := []SpanRecord{
		{TraceID: 9, SpanID: 2, ParentID: 1, Name: "proto_call", Proc: "client", Dur: 50},
		{TraceID: 9, SpanID: 3, ParentID: 2, Name: "proto_serve", Proc: "lbsd", Dur: 40},
	}
	sums := Summarize(spans)
	if len(sums) != 1 || sums[0].Root.SpanID != 2 {
		t.Fatalf("orphan root selection wrong: %+v", sums)
	}
}

func TestHandler(t *testing.T) {
	var nilTracer *Tracer
	rw := httptest.NewRecorder()
	nilTracer.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/traces", nil))
	if rw.Code != 404 {
		t.Fatalf("nil tracer handler status %d, want 404", rw.Code)
	}

	tr := New(Config{Process: "p", Sample: 1})
	tr.StartRoot("proto_request").End()
	rw = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/traces", nil))
	if rw.Code != 200 {
		t.Fatalf("handler status %d", rw.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatalf("handler body not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("handler body missing traceEvents")
	}
}

// The span ring is lock-free: concurrent writers and snapshot readers
// must be race-clean (run under -race) and never lose the ring's
// capacity worth of recent spans.
func TestRingConcurrentStress(t *testing.T) {
	tr := New(Config{Process: "p", Sample: 1, Ring: 64})
	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				sp := tr.StartRoot("proto_request")
				sp.SetAttrs(Int("writer", int64(w)), Int("i", int64(i)))
				sp.End()
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range tr.Snapshot() {
				if rec.Name != "proto_request" {
					panic("torn span record")
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone

	if got := len(tr.Snapshot()); got != 64 {
		t.Fatalf("ring holds %d spans after stress, want 64", got)
	}
}
