package protocol

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/geo"
	"repro/internal/server"
)

// ServeDatabase exposes a server.Server over TCP. The service accepts only
// region-typed private updates — exactly the paper's trust boundary. Pass
// WithMetrics to instrument the wire layer and answer MsgMetrics.
func ServeDatabase(addr string, srv *server.Server, logf func(string, ...interface{}), opts ...Option) (*Service, error) {
	h := &dbHandler{srv: srv}
	return Serve(addr, h.handle, logf, opts...)
}

type dbHandler struct {
	srv *server.Server
}

func (h *dbHandler) handle(ctx context.Context, typ byte, payload []byte) ([]byte, error) {
	d := NewDecoder(payload)
	switch typ {
	case MsgUpdatePrivate:
		id := d.U64()
		region := d.Rect()
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, h.srv.UpdatePrivateCtx(ctx, id, region)

	case MsgRemovePrivate:
		id := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		h.srv.RemovePrivate(id)
		return nil, nil

	case MsgLoadStationary:
		objs := decodeObjects(d)
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, h.srv.LoadStationary(objs)

	case MsgPrivateRange:
		q := server.PrivateRangeQuery{
			Region: d.Rect(),
			Radius: d.F64(),
			Class:  d.Str(),
			Mode:   server.RangeMode(d.U8()),
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		objs, err := h.srv.PrivateRangeCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		return encodeObjects(objs), nil

	case MsgPrivateNN:
		q := server.PrivateNNQuery{Region: d.Rect(), Class: d.Str()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		res, err := h.srv.PrivateNNCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		var e Encoder
		e.U32(uint32(res.SupersetSize))
		encodeObjectsTo(&e, res.Candidates)
		return e.Bytes(), nil

	case MsgPublicCount:
		q := server.PublicRangeCountQuery{Query: d.Rect()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		res, err := h.srv.PublicRangeCountCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		var e Encoder
		encodeCountResult(&e, res)
		return e.Bytes(), nil

	case MsgBatchQuery:
		entries, err := decodeBatchEntries(d)
		if err != nil {
			return nil, err
		}
		return encodeBatchResult(entries, h.srv.BatchQueryCtx(ctx, entries)), nil

	case MsgPublicNN:
		q := server.PublicNNQuery{
			From:    d.Point(),
			Samples: int(d.U32()),
			Seed:    d.U64(),
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		// Clamp the Monte-Carlo effort a remote peer can demand.
		const maxSamples = 100000
		if q.Samples > maxSamples {
			q.Samples = maxSamples
		}
		res, err := h.srv.PublicNN(q)
		if err != nil {
			return nil, err
		}
		var e Encoder
		e.U32(uint32(res.PrunedCount))
		e.U32(uint32(len(res.Candidates)))
		for _, c := range res.Candidates {
			e.U64(c.ID).F64(c.Prob).Rect(res.CandidateRegions[c.ID])
		}
		return e.Bytes(), nil

	case MsgStats:
		var e Encoder
		e.U32(uint32(h.srv.StationaryCount()))
		e.U32(uint32(h.srv.PrivateUserCount()))
		return e.Bytes(), nil

	case MsgRegContCount:
		query := d.Rect()
		if d.Err() != nil {
			return nil, d.Err()
		}
		id, err := h.srv.RegisterContinuousCount(query)
		if err != nil {
			return nil, err
		}
		var e Encoder
		e.U64(id)
		return e.Bytes(), nil

	case MsgContCount:
		id := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		ans, ok := h.srv.ContinuousCount(id)
		if !ok {
			return nil, fmt.Errorf("protocol: unknown continuous query %d", id)
		}
		var e Encoder
		e.F64(ans.Expected).U32(uint32(ans.Lo)).U32(uint32(ans.Hi))
		return e.Bytes(), nil

	case MsgUnregContCount:
		id := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if !h.srv.UnregisterContinuousCount(id) {
			return nil, fmt.Errorf("protocol: unknown continuous query %d", id)
		}
		return nil, nil

	case MsgUpdateMoving:
		id := d.U64()
		loc := d.Point()
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, h.srv.UpdateMoving(id, loc)

	case MsgRemoveMoving:
		id := d.U64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		var e Encoder
		e.U8(boolByte(h.srv.RemoveMoving(id)))
		return e.Bytes(), nil

	case MsgNNParts:
		q := server.PrivateNNQuery{Region: d.Rect(), Class: d.Str()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		parts, err := h.srv.PrivateNNParts(q)
		if err != nil {
			return nil, err
		}
		var e Encoder
		e.F64(parts.Bound)
		encodeObjectsTo(&e, parts.Candidates)
		return e.Bytes(), nil

	case MsgCountProbs:
		q := server.PublicRangeCountQuery{Query: d.Rect()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		pairs, err := h.srv.PublicCountProbs(q)
		if err != nil {
			return nil, err
		}
		var e Encoder
		encodeUserProbs(&e, pairs)
		return e.Bytes(), nil

	case MsgShardBatch:
		subs, err := decodeSubQueries(d)
		if err != nil {
			return nil, err
		}
		return encodeSubResults(evalSubQueries(ctx, h.srv, subs)), nil

	default:
		return nil, fmt.Errorf("protocol: database service: unknown message type %d", typ)
	}
}

func encodeObjects(objs []server.PublicObject) []byte {
	var e Encoder
	encodeObjectsTo(&e, objs)
	return e.Bytes()
}

// encodeObjectsTo appends an object list in place — the batch result
// encoder emits one list per range/NN item, so building each list in a
// throwaway Encoder and copying it over would double the allocation
// count of the whole response.
func encodeObjectsTo(e *Encoder, objs []server.PublicObject) {
	e.Grow(objectsSize(objs))
	e.U32(uint32(len(objs)))
	for _, o := range objs {
		e.U64(o.ID).Str(o.Class).Point(o.Loc)
	}
}

// objectsSize is the exact wire size of an encoded object list.
func objectsSize(objs []server.PublicObject) int {
	n := 4 + 26*len(objs)
	for _, o := range objs {
		n += len(o.Class)
	}
	return n
}

func decodeObjects(d *Decoder) []server.PublicObject {
	n := int(d.U32())
	objs := make([]server.PublicObject, 0, capHint(n, 26, d))
	// Intern the class column: result lists repeat a few class names, so
	// decoding costs one string per run of equal values, not one per object.
	var class string
	for i := 0; i < n; i++ {
		objs = append(objs, server.PublicObject{ID: d.U64(), Class: d.StrCache(&class), Loc: d.Point()})
		if d.Err() != nil {
			return nil
		}
	}
	return objs
}

// encodeCountResult appends a PublicRangeCountResult (shared by the
// MsgPublicCount response and per-entry batch results).
func encodeCountResult(e *Encoder, res server.PublicRangeCountResult) {
	e.F64(res.Answer.Expected)
	e.U32(uint32(res.Answer.Lo)).U32(uint32(res.Answer.Hi))
	e.U32(uint32(res.NaiveCount))
	e.U32(uint32(len(res.Answer.PDF)))
	for _, p := range res.Answer.PDF {
		e.F64(p)
	}
}

// decodeCountResult is the inverse of encodeCountResult.
func decodeCountResult(d *Decoder) server.PublicRangeCountResult {
	var res server.PublicRangeCountResult
	res.Answer.Expected = d.F64()
	res.Answer.Lo = int(d.U32())
	res.Answer.Hi = int(d.U32())
	res.NaiveCount = int(d.U32())
	n := int(d.U32())
	res.Answer.PDF = make([]float64, 0, capHint(n, 8, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		res.Answer.PDF = append(res.Answer.PDF, d.F64())
	}
	return res
}

// maxBatchEntries bounds a MsgBatchQuery frame: large enough for any
// realistic shared-execution window, small enough that a hostile peer
// cannot turn one frame into an unbounded amount of work.
const maxBatchEntries = 4096

// encodeBatchEntries appends a batch-query request body.
func encodeBatchEntries(e *Encoder, entries []server.BatchEntry) {
	e.Grow(4 + 48*len(entries))
	e.U32(uint32(len(entries)))
	for _, be := range entries {
		e.U8(byte(be.Kind))
		switch be.Kind {
		case server.BatchPrivateRange:
			e.Rect(be.Range.Region).F64(be.Range.Radius).Str(be.Range.Class).U8(byte(be.Range.Mode))
		case server.BatchPrivateNN:
			e.Rect(be.NN.Region).Str(be.NN.Class)
		case server.BatchPublicCount:
			e.Rect(be.Count.Query)
		}
	}
}

// decodeBatchEntries parses a batch-query request body. An unknown kind
// byte makes the remaining layout unparseable, so it fails the whole call
// — per-entry failure semantics apply to well-formed frames whose query
// *parameters* are invalid, which the server reports per entry.
func decodeBatchEntries(d *Decoder) ([]server.BatchEntry, error) {
	n := int(d.U32())
	if n > maxBatchEntries {
		return nil, fmt.Errorf("protocol: batch of %d entries exceeds the %d-entry cap", n, maxBatchEntries)
	}
	// Every entry needs ≥ 33 bytes (kind + rectangle).
	entries := make([]server.BatchEntry, 0, capHint(n, 33, d))
	// Intern the class column: batches repeat a few class names, so
	// decoding costs one string per run of equal values, not one per entry.
	var class string
	for i := 0; i < n && d.Err() == nil; i++ {
		kind := server.BatchKind(d.U8())
		be := server.BatchEntry{Kind: kind}
		switch kind {
		case server.BatchPrivateRange:
			be.Range = server.PrivateRangeQuery{
				Region: d.Rect(),
				Radius: d.F64(),
				Class:  d.StrCache(&class),
				Mode:   server.RangeMode(d.U8()),
			}
		case server.BatchPrivateNN:
			be.NN = server.PrivateNNQuery{Region: d.Rect(), Class: d.StrCache(&class)}
		case server.BatchPublicCount:
			be.Count = server.PublicRangeCountQuery{Query: d.Rect()}
		default:
			return nil, fmt.Errorf("protocol: unknown batch query kind %d at entry %d", byte(kind), i)
		}
		entries = append(entries, be)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return entries, nil
}

// encodeBatchResult builds the OK payload for a batch query: a typed
// MsgBatchResult sub-frame so the response is self-describing on the
// wire. Each entry carries a status byte and its kind tag, then the same
// per-kind encoding the single-query responses use.
func encodeBatchResult(entries []server.BatchEntry, res server.BatchResult) []byte {
	// Pre-scan the exact response size so the whole frame is built in one
	// allocation. Failed entries are skipped (error strings are rare and
	// cheap to absorb through Grow's geometric fallback).
	size := 13
	for i, it := range res.Items {
		if it.Err != nil {
			continue
		}
		size += 2
		switch entries[i].Kind {
		case server.BatchPrivateRange:
			size += objectsSize(it.Range)
		case server.BatchPrivateNN:
			size += 4 + objectsSize(it.NN.Candidates)
		case server.BatchPublicCount:
			size += 24 + 8*len(it.Count.Answer.PDF)
		}
	}
	var e Encoder
	e.Grow(size)
	e.U8(MsgBatchResult)
	e.U32(uint32(res.Groups)).U32(uint32(res.SharedHits))
	e.U32(uint32(len(res.Items)))
	for i, it := range res.Items {
		if it.Err != nil {
			e.U8(1)
			// Send the underlying cause; the client re-wraps it with the
			// entry's index and kind, so both sides print the same error.
			var bee *server.BatchEntryError
			if errors.As(it.Err, &bee) {
				e.Str(bee.Err.Error())
			} else {
				e.Str(it.Err.Error())
			}
			continue
		}
		e.U8(0)
		kind := entries[i].Kind
		e.U8(byte(kind))
		switch kind {
		case server.BatchPrivateRange:
			encodeObjectsTo(&e, it.Range)
		case server.BatchPrivateNN:
			e.U32(uint32(it.NN.SupersetSize))
			encodeObjectsTo(&e, it.NN.Candidates)
		case server.BatchPublicCount:
			encodeCountResult(&e, it.Count)
		}
	}
	return e.Bytes()
}

// decodeBatchResult parses a MsgBatchResult sub-frame back into a
// server.BatchResult.
func decodeBatchResult(d *Decoder) (server.BatchResult, error) {
	if tag := d.U8(); d.Err() == nil && tag != MsgBatchResult {
		return server.BatchResult{}, fmt.Errorf("protocol: batch response tagged %d, want %d", tag, MsgBatchResult)
	}
	var res server.BatchResult
	res.Groups = int(d.U32())
	res.SharedHits = int(d.U32())
	n := int(d.U32())
	res.Items = make([]server.BatchItemResult, 0, capHint(n, 2, d))
	for i := 0; i < n && d.Err() == nil; i++ {
		var it server.BatchItemResult
		if d.U8() != 0 {
			msg := d.Str()
			if d.Err() == nil {
				it.Err = &server.BatchEntryError{Index: i, Kind: 0, Err: errors.New(msg)}
			}
			res.Items = append(res.Items, it)
			continue
		}
		kind := server.BatchKind(d.U8())
		switch kind {
		case server.BatchPrivateRange:
			it.Range = decodeObjects(d)
		case server.BatchPrivateNN:
			it.NN.SupersetSize = int(d.U32())
			it.NN.Candidates = decodeObjects(d)
		case server.BatchPublicCount:
			it.Count = decodeCountResult(d)
		default:
			if d.Err() == nil {
				return server.BatchResult{}, fmt.Errorf("protocol: unknown batch result kind %d at entry %d", byte(kind), i)
			}
		}
		res.Items = append(res.Items, it)
	}
	return res, d.Err()
}

// capHint bounds a length prefix by what the remaining payload could
// possibly hold, given a minimum per-element encoding size. It protects
// every decode loop from forged counts.
func capHint(n, minBytes int, d *Decoder) int {
	if n < 0 {
		return 0
	}
	max := d.Remaining() / minBytes
	if n > max {
		return max
	}
	return n
}

// DatabaseClient is the typed client for the database service, used by
// untrusted third parties (admins) and by the anonymizer's forwarder.
type DatabaseClient struct {
	c *Client
}

// DialDatabase connects to a database service. Options configure the
// client's fault tolerance (deadlines, retries, circuit breaker).
func DialDatabase(addr string, opts ...DialOption) (*DatabaseClient, error) {
	c, err := Dial(addr, opts...)
	if err != nil {
		return nil, err
	}
	return &DatabaseClient{c: c}, nil
}

// Close closes the connection.
func (dc *DatabaseClient) Close() error { return dc.c.Close() }

// UpdatePrivate forwards a cloaked region (the anonymizer's sink).
func (dc *DatabaseClient) UpdatePrivate(id uint64, region geo.Rect) error {
	return dc.UpdatePrivateCtx(context.Background(), id, region)
}

// UpdatePrivateCtx is UpdatePrivate under a context (deadline, trace) —
// the forwarder threads the cloak pipeline's trace through here so the
// forward hop shows up in the request's timeline.
func (dc *DatabaseClient) UpdatePrivateCtx(ctx context.Context, id uint64, region geo.Rect) error {
	var e Encoder
	e.U64(id).Rect(region)
	_, err := dc.c.CallCtx(ctx, MsgUpdatePrivate, e.Bytes())
	return err
}

// RemovePrivate removes a user's region.
func (dc *DatabaseClient) RemovePrivate(id uint64) error {
	var e Encoder
	e.U64(id)
	_, err := dc.c.Call(MsgRemovePrivate, e.Bytes())
	return err
}

// LoadStationary bulk-loads public objects.
func (dc *DatabaseClient) LoadStationary(objs []server.PublicObject) error {
	_, err := dc.c.Call(MsgLoadStationary, encodeObjects(objs))
	return err
}

// PrivateRange runs a private range query.
func (dc *DatabaseClient) PrivateRange(q server.PrivateRangeQuery) ([]server.PublicObject, error) {
	return dc.PrivateRangeCtx(context.Background(), q)
}

// PrivateRangeCtx is PrivateRange under a context (deadline, trace).
func (dc *DatabaseClient) PrivateRangeCtx(ctx context.Context, q server.PrivateRangeQuery) ([]server.PublicObject, error) {
	var e Encoder
	e.Rect(q.Region).F64(q.Radius).Str(q.Class).U8(byte(q.Mode))
	resp, err := dc.c.CallCtx(ctx, MsgPrivateRange, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := NewDecoder(resp)
	objs := decodeObjects(d)
	return objs, d.Err()
}

// PrivateNN runs a private nearest-neighbor query.
func (dc *DatabaseClient) PrivateNN(q server.PrivateNNQuery) (server.PrivateNNResult, error) {
	return dc.PrivateNNCtx(context.Background(), q)
}

// PrivateNNCtx is PrivateNN under a context (deadline, trace).
func (dc *DatabaseClient) PrivateNNCtx(ctx context.Context, q server.PrivateNNQuery) (server.PrivateNNResult, error) {
	var e Encoder
	e.Rect(q.Region).Str(q.Class)
	resp, err := dc.c.CallCtx(ctx, MsgPrivateNN, e.Bytes())
	if err != nil {
		return server.PrivateNNResult{}, err
	}
	d := NewDecoder(resp)
	res := server.PrivateNNResult{SupersetSize: int(d.U32())}
	res.Candidates = decodeObjects(d)
	return res, d.Err()
}

// PublicCount runs a public probabilistic count.
func (dc *DatabaseClient) PublicCount(query geo.Rect) (server.PublicRangeCountResult, error) {
	return dc.PublicCountCtx(context.Background(), query)
}

// PublicCountCtx is PublicCount under a context (deadline, trace).
func (dc *DatabaseClient) PublicCountCtx(ctx context.Context, query geo.Rect) (server.PublicRangeCountResult, error) {
	var e Encoder
	e.Rect(query)
	resp, err := dc.c.CallCtx(ctx, MsgPublicCount, e.Bytes())
	if err != nil {
		return server.PublicRangeCountResult{}, err
	}
	d := NewDecoder(resp)
	res := decodeCountResult(d)
	return res, d.Err()
}

// BatchQuery submits a mixed batch of range/NN/count queries for shared
// execution and returns per-entry results in input order. Per-entry
// failures come back as *server.BatchEntryError values inside the items;
// the call-level error covers transport and framing only.
func (dc *DatabaseClient) BatchQuery(entries []server.BatchEntry) (server.BatchResult, error) {
	return dc.BatchQueryCtx(context.Background(), entries)
}

// BatchQueryCtx is BatchQuery under a context (deadline, trace).
func (dc *DatabaseClient) BatchQueryCtx(ctx context.Context, entries []server.BatchEntry) (server.BatchResult, error) {
	var e Encoder
	encodeBatchEntries(&e, entries)
	resp, err := dc.c.CallCtx(ctx, MsgBatchQuery, e.Bytes())
	if err != nil {
		return server.BatchResult{}, err
	}
	res, err := decodeBatchResult(NewDecoder(resp))
	if err != nil {
		return server.BatchResult{}, err
	}
	// The wire carries only each failed entry's cause; restore the kind
	// from the request so client-side errors print like server-side ones.
	// The Err != nil guard keeps errors.As — whose target pointer escapes
	// — off the all-success path entirely.
	for i := range res.Items {
		if res.Items[i].Err == nil {
			continue
		}
		var bee *server.BatchEntryError
		if errors.As(res.Items[i].Err, &bee) && i < len(entries) {
			bee.Kind = entries[i].Kind
		}
	}
	return res, nil
}

// PublicNN runs a public nearest-neighbor query over private data.
func (dc *DatabaseClient) PublicNN(q server.PublicNNQuery) (server.PublicNNResult, error) {
	var e Encoder
	e.Point(q.From).U32(uint32(q.Samples)).U64(q.Seed)
	resp, err := dc.c.Call(MsgPublicNN, e.Bytes())
	if err != nil {
		return server.PublicNNResult{}, err
	}
	d := NewDecoder(resp)
	res := server.PublicNNResult{CandidateRegions: make(map[uint64]geo.Rect)}
	res.PrunedCount = int(d.U32())
	n := int(d.U32())
	for i := 0; i < n; i++ {
		id := d.U64()
		p := d.F64()
		r := d.Rect()
		res.Candidates = append(res.Candidates, probNN(id, p))
		res.CandidateRegions[id] = r
	}
	if len(res.Candidates) > 0 {
		res.Best = res.Candidates[0]
	}
	return res, d.Err()
}

// RegisterContinuousCount installs a standing count query remotely.
func (dc *DatabaseClient) RegisterContinuousCount(query geo.Rect) (uint64, error) {
	var e Encoder
	e.Rect(query)
	resp, err := dc.c.Call(MsgRegContCount, e.Bytes())
	if err != nil {
		return 0, err
	}
	d := NewDecoder(resp)
	id := d.U64()
	return id, d.Err()
}

// ContinuousCount reads a standing query's maintained answer.
func (dc *DatabaseClient) ContinuousCount(id uint64) (server.ContinuousCountAnswer, error) {
	var e Encoder
	e.U64(id)
	resp, err := dc.c.Call(MsgContCount, e.Bytes())
	if err != nil {
		return server.ContinuousCountAnswer{}, err
	}
	d := NewDecoder(resp)
	ans := server.ContinuousCountAnswer{
		Expected: d.F64(),
		Lo:       int(d.U32()),
		Hi:       int(d.U32()),
	}
	return ans, d.Err()
}

// UnregisterContinuousCount removes a standing query.
func (dc *DatabaseClient) UnregisterContinuousCount(id uint64) error {
	var e Encoder
	e.U64(id)
	_, err := dc.c.Call(MsgUnregContCount, e.Bytes())
	return err
}

// UpdateMoving upserts a moving public object (exact location: public data).
func (dc *DatabaseClient) UpdateMoving(id uint64, loc geo.Point) error {
	var e Encoder
	e.U64(id).Point(loc)
	_, err := dc.c.Call(MsgUpdateMoving, e.Bytes())
	return err
}

// Stats returns (stationary objects, private users).
func (dc *DatabaseClient) Stats() (stationary, private int, err error) {
	resp, err := dc.c.Call(MsgStats, nil)
	if err != nil {
		return 0, 0, err
	}
	d := NewDecoder(resp)
	return int(d.U32()), int(d.U32()), d.Err()
}
