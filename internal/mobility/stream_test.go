package mobility

import (
	"runtime"
	"testing"

	"repro/internal/geo"
)

func newStream(t *testing.T, spec StreamSpec) *Stream {
	t.Helper()
	if !spec.World.Valid() || spec.World.Area() <= 0 {
		spec.World = geo.R(0, 0, 1, 1)
	}
	g, err := NewStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The same (seed, id, tick) always yields the same position; a different
// seed yields a different trajectory.
func TestStreamDeterministic(t *testing.T) {
	a := newStream(t, StreamSpec{Seed: 42})
	b := newStream(t, StreamSpec{Seed: 42})
	c := newStream(t, StreamSpec{Seed: 43})
	var diff int
	for id := uint64(1); id <= 200; id++ {
		for tick := uint64(0); tick < 50; tick += 7 {
			pa, pb := a.Pos(id, tick, nil), b.Pos(id, tick, nil)
			if pa != pb {
				t.Fatalf("Pos(%d,%d) differs across identical streams: %v vs %v", id, tick, pa, pb)
			}
			if pa != c.Pos(id, tick, nil) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("seed 43 reproduced seed 42's trajectories exactly")
	}
}

// Every generated position stays inside the world.
func TestStreamPositionsInWorld(t *testing.T) {
	world := geo.R(2, 3, 7, 9)
	g := newStream(t, StreamSpec{World: world, Seed: 9})
	for id := uint64(1); id <= 500; id++ {
		for tick := uint64(0); tick < 100; tick += 13 {
			if p := g.Pos(id, tick, nil); !world.Contains(p) {
				t.Fatalf("Pos(%d,%d) = %v outside %v", id, tick, p, world)
			}
		}
	}
}

// Motion is continuous: consecutive ticks move a user by at most one
// leg-step (world diagonal / MinLeg), never a teleport.
func TestStreamMotionContinuous(t *testing.T) {
	g := newStream(t, StreamSpec{Seed: 7, MinLeg: 25, MaxLeg: 50})
	maxStep := geo.R(0, 0, 1, 1).Diagonal() / 25
	for id := uint64(1); id <= 100; id++ {
		prev := g.Pos(id, 0, nil)
		for tick := uint64(1); tick < 200; tick++ {
			p := g.Pos(id, tick, nil)
			if d := p.Dist(prev); d > maxStep+1e-9 {
				t.Fatalf("user %d jumped %g (> %g) at tick %d", id, d, maxStep, tick)
			}
			prev = p
		}
	}
}

// A hotspot with Frac 1 and a strong pull concentrates the crowd: mean
// distance to the hotspot center drops sharply against baseline.
func TestStreamHotspotConcentrates(t *testing.T) {
	g := newStream(t, StreamSpec{Seed: 5})
	hot := &Hotspot{Center: geo.Pt(0.5, 0.5), Frac: 1, Pull: 0.9}
	var base, pulled float64
	const users = 2000
	for id := uint64(1); id <= users; id++ {
		base += g.Pos(id, 40, nil).Dist(hot.Center)
		pulled += g.Pos(id, 40, hot).Dist(hot.Center)
	}
	if pulled >= base/3 {
		t.Fatalf("hotspot mean distance %g, baseline %g — pull had too little effect",
			pulled/users, base/users)
	}
	// Frac 0 must be a no-op.
	off := &Hotspot{Center: hot.Center, Frac: 0, Pull: 0.9}
	for id := uint64(1); id <= 50; id++ {
		if g.Pos(id, 40, off) != g.Pos(id, 40, nil) {
			t.Fatal("Frac=0 hotspot changed a trajectory")
		}
	}
}

// The generator's resident state is O(clusters): streaming positions for a
// one-million-user population allocates no per-user memory. The threshold
// is deliberately coarse — a per-user byte would already cost 1 MB, a
// per-user struct tens of MB.
func TestStreamMillionUsersBoundedMemory(t *testing.T) {
	g := newStream(t, StreamSpec{Seed: 11, NumClusters: 64})
	const users = 1_000_000
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var sink geo.Point
	for id := uint64(1); id <= users; id++ {
		sink = g.Pos(id, uint64(id%97), nil)
	}
	_ = sink

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const budget = 8 << 20 // 8 MiB: far below any O(users) footprint
	if grew > budget {
		t.Fatalf("heap grew %d bytes generating %d users, budget %d — the generator is not streaming", grew, users, budget)
	}
}

// Pos allocates nothing on the hot path.
func TestStreamPosDoesNotAllocate(t *testing.T) {
	g := newStream(t, StreamSpec{Seed: 3})
	hot := &Hotspot{Center: geo.Pt(0.2, 0.8), Frac: 0.5, Pull: 0.7}
	avg := testing.AllocsPerRun(1000, func() {
		g.Pos(12345, 678, hot)
	})
	if avg != 0 {
		t.Fatalf("Pos allocates %.1f objects per call, want 0", avg)
	}
}

func BenchmarkStreamPos(b *testing.B) {
	g, err := NewStream(StreamSpec{World: geo.R(0, 0, 1, 1), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var sink geo.Point
	for i := 0; i < b.N; i++ {
		sink = g.Pos(uint64(i), uint64(i>>8), nil)
	}
	_ = sink
}
