package rtree

import (
	"container/heap"

	"repro/internal/geo"
)

// queueEntry is an element of the best-first search frontier: either a node
// (item == nil semantics via isItem) or a concrete item, keyed by minimum
// squared distance to the query.
type queueEntry struct {
	dist2  float64
	node   *node
	item   Item
	isItem bool
}

type distQueue []queueEntry

func (q distQueue) Len() int            { return len(q) }
func (q distQueue) Less(i, j int) bool  { return q[i].dist2 < q[j].dist2 }
func (q distQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *distQueue) Push(x interface{}) { *q = append(*q, x.(queueEntry)) }
func (q *distQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Browser yields the indexed items in non-decreasing distance from a query
// point or rectangle — Hjaltason–Samet incremental distance browsing. The
// private-NN candidate computation pulls neighbors until its stop condition
// fires, which is why an incremental iterator (rather than a fixed-k query)
// is the core primitive.
type Browser struct {
	q       distQueue
	origin  func(*node) float64 // min dist² from query to a node's bounds
	opoint  func(Item) float64  // dist² from query to an item
	visited int                 // nodes expanded so far
}

// Visited returns the number of tree nodes expanded so far — the index I/O
// proxy the observability layer exports per query.
func (b *Browser) Visited() int { return b.visited }

// NewPointBrowser starts distance browsing from a point query.
func (t *Tree) NewPointBrowser(p geo.Point) *Browser {
	b := &Browser{
		origin: func(n *node) float64 { return geo.MinDist2(p, n.bounds) },
		opoint: func(it Item) float64 { return p.Dist2(it.Loc) },
	}
	if t.root != nil && t.size > 0 {
		heap.Push(&b.q, queueEntry{dist2: b.origin(t.root), node: t.root})
	}
	return b
}

// NewRectBrowser starts distance browsing ordered by minimum distance from
// a rectangle query (distance 0 for items inside the rectangle).
func (t *Tree) NewRectBrowser(r geo.Rect) *Browser {
	b := &Browser{
		origin: func(n *node) float64 { return geo.MinDistRects2(r, n.bounds) },
		opoint: func(it Item) float64 { return geo.MinDist2(it.Loc, r) },
	}
	if t.root != nil && t.size > 0 {
		heap.Push(&b.q, queueEntry{dist2: b.origin(t.root), node: t.root})
	}
	return b
}

// Next returns the next-nearest item and its squared distance, or ok=false
// when the index is exhausted.
func (b *Browser) Next() (it Item, dist2 float64, ok bool) {
	for b.q.Len() > 0 {
		e := heap.Pop(&b.q).(queueEntry)
		if e.isItem {
			return e.item, e.dist2, true
		}
		n := e.node
		b.visited++
		if n.leaf {
			for _, item := range n.items {
				heap.Push(&b.q, queueEntry{dist2: b.opoint(item), item: item, isItem: true})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(&b.q, queueEntry{dist2: b.origin(c), node: c})
		}
	}
	return Item{}, 0, false
}

// Peek2 returns the squared distance of the next item without consuming it.
// It reports ok=false when the browser is exhausted.
func (b *Browser) Peek2() (dist2 float64, ok bool) {
	for b.q.Len() > 0 {
		if b.q[0].isItem {
			return b.q[0].dist2, true
		}
		e := heap.Pop(&b.q).(queueEntry)
		n := e.node
		b.visited++
		if n.leaf {
			for _, item := range n.items {
				heap.Push(&b.q, queueEntry{dist2: b.opoint(item), item: item, isItem: true})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(&b.q, queueEntry{dist2: b.origin(c), node: c})
		}
	}
	return 0, false
}

// Nearest returns the k items nearest to p in increasing distance order
// (fewer if the tree holds fewer than k items).
func (t *Tree) Nearest(p geo.Point, k int) []Item {
	if k <= 0 {
		return nil
	}
	b := t.NewPointBrowser(p)
	out := make([]Item, 0, k)
	for len(out) < k {
		it, _, ok := b.Next()
		if !ok {
			break
		}
		out = append(out, it)
	}
	return out
}

// NearestOne returns the single nearest item and whether one exists.
func (t *Tree) NearestOne(p geo.Point) (Item, bool) {
	r := t.Nearest(p, 1)
	if len(r) == 0 {
		return Item{}, false
	}
	return r[0], true
}
