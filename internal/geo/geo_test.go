package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -1)
	if got := p.Add(q); !got.Eq(Pt(4, 1)) {
		t.Errorf("Add = %v, want (4,1)", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(-2, 3)) {
		t.Errorf("Sub = %v, want (-2,3)", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
}

func TestPointDist(t *testing.T) {
	p := Pt(0, 0)
	q := Pt(3, 4)
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.Dist2(q); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Errorf("Dist self = %v, want 0", got)
	}
}

func TestPointLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); !got.Eq(p) {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); !got.Eq(q) {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
}

func TestPointValid(t *testing.T) {
	if !Pt(1, 2).Valid() {
		t.Error("finite point should be valid")
	}
	if Pt(math.NaN(), 0).Valid() {
		t.Error("NaN point should be invalid")
	}
	if Pt(0, math.Inf(1)).Valid() {
		t.Error("infinite point should be invalid")
	}
}

func TestRNormalizes(t *testing.T) {
	r := R(5, 7, 1, 2)
	if !r.Min.Eq(Pt(1, 2)) || !r.Max.Eq(Pt(5, 7)) {
		t.Errorf("R did not normalize: %v", r)
	}
	if !r.Valid() {
		t.Errorf("normalized rect should be valid: %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 4, 2)
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v, want 4", got)
	}
	if got := r.Height(); got != 2 {
		t.Errorf("Height = %v, want 2", got)
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v, want 8", got)
	}
	if got := r.Perimeter(); got != 12 {
		t.Errorf("Perimeter = %v, want 12", got)
	}
	if got := r.Center(); !got.Eq(Pt(2, 1)) {
		t.Errorf("Center = %v, want (2,1)", got)
	}
	if got := r.Diagonal(); math.Abs(got-math.Sqrt(20)) > 1e-12 {
		t.Errorf("Diagonal = %v, want sqrt(20)", got)
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(1, 1), true},
		{Pt(0, 0), true},  // corner is inside (closed rect)
		{Pt(2, 2), true},  // opposite corner
		{Pt(2, 1), true},  // edge
		{Pt(3, 1), false}, // outside x
		{Pt(1, -0.1), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := R(0, 0, 10, 10)
	if !outer.ContainsRect(R(1, 1, 9, 9)) {
		t.Error("inner rect should be contained")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
	if outer.ContainsRect(R(1, 1, 11, 9)) {
		t.Error("overhanging rect should not be contained")
	}
}

func TestRectIntersect(t *testing.T) {
	a := R(0, 0, 2, 2)
	b := R(1, 1, 3, 3)
	if !a.Intersects(b) {
		t.Fatal("a and b should intersect")
	}
	got, ok := a.Intersect(b)
	if !ok || !got.Eq(R(1, 1, 2, 2)) {
		t.Errorf("Intersect = %v ok=%v, want [1,2]x[1,2]", got, ok)
	}
	c := R(5, 5, 6, 6)
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("Intersect of disjoint rects should report !ok")
	}
	// Edge touch counts as intersection but has zero area.
	d := R(2, 0, 4, 2)
	if !a.Intersects(d) {
		t.Error("touching rects should intersect (closed)")
	}
	if got := a.OverlapArea(d); got != 0 {
		t.Errorf("OverlapArea of touching rects = %v, want 0", got)
	}
}

func TestRectOverlapArea(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(2, 2, 6, 6)
	if got := a.OverlapArea(b); got != 4 {
		t.Errorf("OverlapArea = %v, want 4", got)
	}
	if got := a.OverlapArea(R(10, 10, 11, 11)); got != 0 {
		t.Errorf("OverlapArea disjoint = %v, want 0", got)
	}
	if got := a.OverlapArea(a); got != a.Area() {
		t.Errorf("OverlapArea self = %v, want %v", got, a.Area())
	}
}

func TestRectUnion(t *testing.T) {
	a := R(0, 0, 1, 1)
	b := R(2, 2, 3, 3)
	if got := a.Union(b); !got.Eq(R(0, 0, 3, 3)) {
		t.Errorf("Union = %v, want [0,3]x[0,3]", got)
	}
	if got := a.UnionPoint(Pt(-1, 0.5)); !got.Eq(R(-1, 0, 1, 1)) {
		t.Errorf("UnionPoint = %v", got)
	}
}

func TestRectExpand(t *testing.T) {
	r := R(1, 1, 3, 3)
	if got := r.Expand(1); !got.Eq(R(0, 0, 4, 4)) {
		t.Errorf("Expand(1) = %v, want [0,4]x[0,4]", got)
	}
	// Shrinking past degeneracy collapses to the center line/point.
	if got := r.Expand(-2); !got.IsPoint() || !got.Min.Eq(Pt(2, 2)) {
		t.Errorf("Expand(-2) = %v, want point (2,2)", got)
	}
}

func TestRectClampPoint(t *testing.T) {
	r := R(0, 0, 2, 2)
	cases := []struct{ in, want Point }{
		{Pt(1, 1), Pt(1, 1)},
		{Pt(-1, 1), Pt(0, 1)},
		{Pt(3, 3), Pt(2, 2)},
		{Pt(1, -5), Pt(1, 0)},
	}
	for _, c := range cases {
		if got := r.ClampPoint(c.in); !got.Eq(c.want) {
			t.Errorf("ClampPoint(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRectClip(t *testing.T) {
	world := R(0, 0, 10, 10)
	if got := R(-1, -1, 3, 3).Clip(world); !got.Eq(R(0, 0, 3, 3)) {
		t.Errorf("Clip = %v, want [0,3]x[0,3]", got)
	}
	// Disjoint clip collapses to a point on the world's boundary.
	got := R(20, 20, 21, 21).Clip(world)
	if !got.IsPoint() || !world.Contains(got.Min) {
		t.Errorf("disjoint Clip = %v, want point inside world", got)
	}
}

func TestRectCorners(t *testing.T) {
	c := R(0, 0, 1, 2).Corners()
	want := [4]Point{Pt(0, 0), Pt(1, 0), Pt(1, 2), Pt(0, 2)}
	if c != want {
		t.Errorf("Corners = %v, want %v", c, want)
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(5, 5), 2)
	if !r.Eq(R(3, 3, 7, 7)) {
		t.Errorf("RectAround = %v", r)
	}
	p := PointRect(Pt(1, 1))
	if !p.IsPoint() || p.Area() != 0 {
		t.Errorf("PointRect = %v", p)
	}
}

func TestMinMaxDistPointCases(t *testing.T) {
	r := R(2, 2, 4, 4)
	// Point inside: min 0, max to farthest corner.
	if got := MinDist(Pt(3, 3), r); got != 0 {
		t.Errorf("MinDist inside = %v, want 0", got)
	}
	if got := MaxDist(Pt(2, 2), r); math.Abs(got-math.Sqrt(8)) > 1e-12 {
		t.Errorf("MaxDist corner = %v, want sqrt(8)", got)
	}
	// Point left of the rect.
	if got := MinDist(Pt(0, 3), r); got != 2 {
		t.Errorf("MinDist left = %v, want 2", got)
	}
	// Point diagonal from the rect.
	if got := MinDist(Pt(0, 0), r); math.Abs(got-math.Sqrt(8)) > 1e-12 {
		t.Errorf("MinDist diag = %v, want sqrt(8)", got)
	}
}

func TestMinDistRects(t *testing.T) {
	a := R(0, 0, 1, 1)
	b := R(3, 0, 4, 1)
	if got := MinDistRects(a, b); got != 2 {
		t.Errorf("MinDistRects horizontal = %v, want 2", got)
	}
	c := R(3, 3, 4, 4)
	if got := MinDistRects(a, c); math.Abs(got-math.Sqrt(8)) > 1e-12 {
		t.Errorf("MinDistRects diagonal = %v, want sqrt(8)", got)
	}
	d := R(0.5, 0.5, 2, 2)
	if got := MinDistRects(a, d); got != 0 {
		t.Errorf("MinDistRects overlapping = %v, want 0", got)
	}
	if got := MaxDistRects(a, b); math.Abs(got-math.Sqrt(16+1)) > 1e-12 {
		t.Errorf("MaxDistRects = %v, want sqrt(17)", got)
	}
}

// clampRect converts arbitrary float inputs from testing/quick into a valid
// rectangle within a sane range.
func clampRect(x0, y0, x1, y1 float64) (Rect, bool) {
	for _, v := range []float64{x0, y0, x1, y1} {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
			return Rect{}, false
		}
	}
	return R(x0, y0, x1, y1), true
}

func clampPt(x, y float64) (Point, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 ||
		math.IsNaN(y) || math.IsInf(y, 0) || math.Abs(y) > 1e6 {
		return Point{}, false
	}
	return Pt(x, y), true
}

func TestPropMinDistLEMaxDist(t *testing.T) {
	f := func(px, py, x0, y0, x1, y1 float64) bool {
		p, ok := clampPt(px, py)
		if !ok {
			return true
		}
		r, ok := clampRect(x0, y0, x1, y1)
		if !ok {
			return true
		}
		return MinDist(p, r) <= MaxDist(p, r)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMinDistZeroIffContains(t *testing.T) {
	f := func(px, py, x0, y0, x1, y1 float64) bool {
		p, ok := clampPt(px, py)
		if !ok {
			return true
		}
		r, ok := clampRect(x0, y0, x1, y1)
		if !ok {
			return true
		}
		return (MinDist(p, r) == 0) == r.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropClampPointIsNearest(t *testing.T) {
	f := func(px, py, x0, y0, x1, y1 float64) bool {
		p, ok := clampPt(px, py)
		if !ok {
			return true
		}
		r, ok := clampRect(x0, y0, x1, y1)
		if !ok {
			return true
		}
		c := r.ClampPoint(p)
		if !r.Contains(c) {
			return false
		}
		return math.Abs(p.Dist(c)-MinDist(p, r)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropUnionContainsBoth(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64) bool {
		a, ok := clampRect(a0, a1, a2, a3)
		if !ok {
			return true
		}
		b, ok := clampRect(b0, b1, b2, b3)
		if !ok {
			return true
		}
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIntersectionSymmetric(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64) bool {
		a, ok := clampRect(a0, a1, a2, a3)
		if !ok {
			return true
		}
		b, ok := clampRect(b0, b1, b2, b3)
		if !ok {
			return true
		}
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		return math.Abs(a.OverlapArea(b)-b.OverlapArea(a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropExpandContains(t *testing.T) {
	f := func(x0, y0, x1, y1, d float64) bool {
		r, ok := clampRect(x0, y0, x1, y1)
		if !ok || math.IsNaN(d) || math.Abs(d) > 1e6 {
			return true
		}
		e := r.Expand(math.Abs(d))
		return e.ContainsRect(r) && e.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// MinMaxDist sanity: sampling x in q, max-dist to c must never fall below
// the reported MinMaxDist (it is the minimum over all x).
func TestPropMinMaxDistIsLowerEnvelope(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3, tx, ty float64) bool {
		q, ok := clampRect(a0, a1, a2, a3)
		if !ok {
			return true
		}
		c, ok := clampRect(b0, b1, b2, b3)
		if !ok {
			return true
		}
		mmd := MinMaxDist(q, c)
		// Sample an arbitrary point of q from the two extra floats.
		fx := math.Abs(math.Mod(tx, 1))
		fy := math.Abs(math.Mod(ty, 1))
		if math.IsNaN(fx) || math.IsNaN(fy) {
			return true
		}
		x := Pt(q.Min.X+fx*q.Width(), q.Min.Y+fy*q.Height())
		return MaxDist(x, c) >= mmd-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxDistPointQuery(t *testing.T) {
	// For a degenerate q, MinMaxDist must equal MaxDist from that point.
	q := PointRect(Pt(1, 1))
	c := R(4, 5, 6, 7)
	if got, want := MinMaxDist(q, c), MaxDist(Pt(1, 1), c); math.Abs(got-want) > 1e-12 {
		t.Errorf("MinMaxDist point = %v, want %v", got, want)
	}
	// q containing c: the optimum is at c's center.
	q2 := R(0, 0, 10, 10)
	c2 := R(4, 4, 6, 6)
	if got, want := MinMaxDist(q2, c2), MaxDist(Pt(5, 5), c2); math.Abs(got-want) > 1e-12 {
		t.Errorf("MinMaxDist containing = %v, want %v", got, want)
	}
}

func TestStringers(t *testing.T) {
	if s := Pt(1, 2).String(); s == "" {
		t.Error("Point.String empty")
	}
	if s := R(0, 0, 1, 1).String(); s == "" {
		t.Error("Rect.String empty")
	}
}
