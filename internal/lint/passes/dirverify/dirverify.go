// Package dirverify implements the lbsvet pass that keeps the //lint:
// directives themselves honest. The directives carry machine-checked
// invariants, so a directive that silently stops parsing — a typo'd
// verb, or a params= list naming a parameter that was renamed away —
// is an invariant that silently stopped being checked.
//
// Two classes of staleness are reported:
//
//   - unknown verbs: any //lint: comment whose verb is not in
//     directive.Known (staticcheck's ignore/file-ignore are excluded by
//     the parser and never reach this pass);
//   - symbol references that no longer resolve: //lint:source params=a,b
//     naming parameters absent from the annotated function's signature.
//     (fuzzed-by target existence is checked by wiresym, which owns the
//     fuzz-coverage model; lock/hotpath argument shapes are checked by
//     lockorder/hotalloc.)
package dirverify

import (
	"go/ast"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// Analyzer is the dirverify pass.
var Analyzer = &analysis.Analyzer{
	Name: "dirverify",
	Doc: "report stale or typo'd //lint: directives\n\n" +
		"Unknown verbs and params= lists naming parameters that no longer\n" +
		"exist stop being checked silently; this pass makes them loud.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok := directive.Parse(c.Text)
				if !ok {
					continue
				}
				if !directive.Known[d.Verb] {
					known := make([]string, 0, len(directive.Known))
					for v := range directive.Known {
						known = append(known, v)
					}
					sort.Strings(known)
					pass.Reportf(c.Pos(), "unknown //lint: verb %q (known: %s); a typo here silently disables the invariant",
						d.Verb, strings.Join(known, ", "))
				}
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			d, ok := directive.FromDoc(fd.Doc, "source")
			if !ok {
				continue
			}
			first, _, _ := strings.Cut(d.Args, " ")
			if !strings.HasPrefix(first, "params=") {
				continue
			}
			declared := make(map[string]bool)
			if fd.Recv != nil {
				for _, f := range fd.Recv.List {
					for _, id := range f.Names {
						declared[id.Name] = true
					}
				}
			}
			for _, f := range fd.Type.Params.List {
				for _, id := range f.Names {
					declared[id.Name] = true
				}
			}
			for _, name := range strings.Split(strings.TrimPrefix(first, "params="), ",") {
				name = strings.TrimSpace(name)
				if name == "" || declared[name] {
					continue
				}
				pass.Reportf(d.Pos, "//lint:source params= names %q, which is not a parameter of %s; the taint seed is stale",
					name, fd.Name.Name)
			}
		}
	}
	return nil, nil
}
