package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/rng"
	"repro/internal/server"
)

// The database-server benchmark harness behind E17 — the query-side twin
// of E16's anonymizer harness. With -bench-out the experiment writes a
// machine-readable BENCH_server.json; with -bench-compare it loads a
// committed baseline and flags any series whose queries/sec dropped more
// than -bench-tolerance below it (process exits 1 — the CI regression
// gate). Absolute numbers are machine-specific; the per-query vs batch
// ratio is the portable signal.
type serverBenchReport struct {
	Schema    string             `json:"schema"`
	GoMaxProc int                `json:"gomaxprocs"`
	NumCPU    int                `json:"numcpu"`
	GoVersion string             `json:"go"`
	Users     int                `json:"users"`
	Objects   int                `json:"objects"`
	Entries   []serverBenchEntry `json:"entries"`
}

type serverBenchEntry struct {
	Mode          string  `json:"mode"` // "perquery" or "batch"
	Workers       int     `json:"workers"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	SharedHitPct  float64 `json:"shared_hit_pct,omitempty"`
}

// serverBenchMix generates one clustered mixed batch so overlap groups —
// and therefore shared descents — actually form, mirroring many users
// querying the same hot neighborhood.
func serverBenchMix(src *rng.Source, n int) []server.BatchEntry {
	centers := make([]geo.Point, 5)
	for i := range centers {
		centers[i] = geo.Pt(src.Range(0.15, 0.85), src.Range(0.15, 0.85))
	}
	entries := make([]server.BatchEntry, n)
	for i := range entries {
		c := centers[src.Intn(len(centers))]
		p := world.ClampPoint(geo.Pt(c.X+src.Range(-0.08, 0.08), c.Y+src.Range(-0.08, 0.08)))
		r := geo.RectAround(p, 0.02+0.05*src.Float64()).Clip(world)
		switch src.Intn(5) {
		case 0, 1:
			entries[i] = server.BatchEntry{Kind: server.BatchPrivateRange,
				Range: server.PrivateRangeQuery{Region: r, Radius: 0.03 * src.Float64(), Class: "poi"}}
		case 2, 3:
			entries[i] = server.BatchEntry{Kind: server.BatchPublicCount,
				Count: server.PublicRangeCountQuery{Query: r}}
		default:
			entries[i] = server.BatchEntry{Kind: server.BatchPrivateNN,
				NN: server.PrivateNNQuery{Region: r, Class: "poi"}}
		}
	}
	return entries
}

// expServerBatch measures the shared-execution batch engine: queries/sec
// for the per-query baseline and for BatchQuery at worker counts 1, 4, 8
// over identical clustered query mixes on identical data.
func expServerBatch(cfg benchConfig) {
	const (
		rounds    = 20
		batchSize = 64
	)
	fmt.Printf("%d private users, %d public objects, %d rounds × %d-entry batches, GOMAXPROCS=%d\n\n",
		cfg.n, cfg.objs, rounds, batchSize, runtime.GOMAXPROCS(0))

	report := serverBenchReport{
		Schema:    "server-batch-bench/v1",
		GoMaxProc: runtime.GOMAXPROCS(0),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Users:     cfg.n,
		Objects:   cfg.objs,
	}

	build := func(workers int) *server.Server {
		s, err := server.New(server.Config{World: world, QueryWorkers: workers})
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		objPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
			N: cfg.objs, World: world, Dist: mobility.Uniform, Seed: cfg.seed + 1,
		})
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		objs := make([]server.PublicObject, len(objPts))
		for i, p := range objPts {
			objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "poi", Loc: p}
		}
		if err := s.LoadStationary(objs); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		userPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
			N: cfg.n, World: world, Dist: mobility.Gaussian, Seed: cfg.seed,
		})
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		src := rng.New(cfg.seed + 7)
		for i, p := range userPts {
			reg := geo.RectAround(p, 0.005+0.03*src.Float64()).Clip(world)
			if err := s.UpdatePrivate(uint64(i+1), reg); err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
		}
		return s
	}

	type series struct {
		mode    string
		workers int
	}
	grid := []series{
		{"perquery", 1},
		{"batch", 1},
		{"batch", 4},
		{"batch", 8},
	}
	t := newTable("mode", "workers", "queries/sec", "shared hits %")
	var base float64 // perquery reference for the speedup line
	for _, sr := range grid {
		s := build(sr.workers)
		src := rng.New(cfg.seed + 99)
		batches := make([][]server.BatchEntry, rounds)
		for r := range batches {
			batches[r] = serverBenchMix(src, batchSize)
		}
		var entriesRun, sharedHits int
		t0 := time.Now()
		for _, entries := range batches {
			if sr.mode == "perquery" {
				for _, e := range entries {
					var err error
					switch e.Kind {
					case server.BatchPrivateRange:
						_, err = s.PrivateRange(e.Range)
					case server.BatchPrivateNN:
						_, err = s.PrivateNN(e.NN)
					case server.BatchPublicCount:
						_, err = s.PublicRangeCount(e.Count)
					}
					if err != nil {
						log.Fatalf("lbsbench: %v", err)
					}
				}
			} else {
				res := s.BatchQuery(entries)
				sharedHits += res.SharedHits
			}
			entriesRun += len(entries)
		}
		elapsed := time.Since(t0)
		qps := float64(entriesRun) / elapsed.Seconds()
		sharedPct := 100 * float64(sharedHits) / float64(entriesRun)
		if sr.mode == "perquery" {
			base = qps
		}
		t.row(sr.mode, sr.workers, qps, sharedPct)
		report.Entries = append(report.Entries, serverBenchEntry{
			Mode: sr.mode, Workers: sr.workers,
			QueriesPerSec: qps, SharedHitPct: sharedPct,
		})
	}
	t.flush()
	if base > 0 {
		for _, e := range report.Entries {
			if e.Mode == "batch" && e.Workers == 8 {
				fmt.Printf("\nbatch speedup over per-query at 8 workers: %.2fx (meaningful only with GOMAXPROCS ≥ 8)\n",
					e.QueriesPerSec/base)
			}
		}
	}
	fmt.Println("\nreading: overlapping query rectangles in a batch collapse into one")
	fmt.Println("shared index descent over their union (SINA-style shared execution),")
	fmt.Println("and independent groups fan out over the worker pool under a single")
	fmt.Println("frozen snapshot. Answers are bit-identical to the sequential path at")
	fmt.Println("every worker count (differential suite).")

	if benchOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		if err := os.WriteFile(benchOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", benchOut)
	}
	if benchCompare != "" {
		compareServerBench(report)
	}
}

// compareServerBench checks the current report against the committed
// baseline, feeding the shared benchRegressions gate.
func compareServerBench(cur serverBenchReport) {
	raw, err := os.ReadFile(benchCompare)
	if err != nil {
		log.Fatalf("lbsbench: baseline: %v", err)
	}
	var base serverBenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("lbsbench: baseline %s: %v", benchCompare, err)
	}
	checkBenchEnv(base.GoMaxProc, cur.GoMaxProc, base.NumCPU, cur.NumCPU)
	if base.Users != cur.Users || base.Objects != cur.Objects {
		benchRegressions = append(benchRegressions, fmt.Sprintf(
			"workload mismatch: %d users / %d objects vs baseline %d / %d — rerun with -n %d -objs %d or regenerate the baseline",
			cur.Users, cur.Objects, base.Users, base.Objects, base.Users, base.Objects))
	}
	lookup := map[string]float64{}
	for _, e := range cur.Entries {
		lookup[fmt.Sprintf("%s/workers=%d", e.Mode, e.Workers)] = e.QueriesPerSec
	}
	fmt.Printf("\nbaseline %s (GOMAXPROCS=%d, %s), tolerance %.0f%%:\n",
		benchCompare, base.GoMaxProc, base.GoVersion, 100*benchTolerance)
	for _, e := range base.Entries {
		key := fmt.Sprintf("%s/workers=%d", e.Mode, e.Workers)
		got, ok := lookup[key]
		if !ok {
			benchRegressions = append(benchRegressions, key+": missing from current run")
			continue
		}
		floor := e.QueriesPerSec * (1 - benchTolerance)
		verdict := "ok"
		if got < floor {
			verdict = "REGRESSION"
			benchRegressions = append(benchRegressions,
				fmt.Sprintf("%s: %.0f queries/sec < %.0f (baseline %.0f − %.0f%%)",
					key, got, floor, e.QueriesPerSec, 100*benchTolerance))
		}
		fmt.Printf("  %-20s baseline %10.0f  current %10.0f  %s\n",
			key, e.QueriesPerSec, got, verdict)
	}
}
