// Package cloak implements the location anonymization algorithms of
// Section 5 of the paper: the data-dependent family (naive symmetric
// expansion and MBR-of-k-neighbors, Figure 3) and the space-dependent
// family (top-down quadtree descent and fixed/multi-level grid merging,
// Figure 4), plus the Section 5.3 scalability machinery — incremental
// cloak maintenance and shared (batch) execution.
//
// Every algorithm is best effort, mirroring the paper: the k-anonymity
// requirement is treated as the hard minimum, then the minimum area Amin,
// then the maximum area Amax. A Result records exactly which constraints
// were met so experiments can quantify the trade-offs.
//
// Throughout the package, a cloaked region "contains k users" counts the
// requesting user herself (she is part of the anonymity set).
package cloak

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/privacy"
)

// Result is the outcome of cloaking one location update.
type Result struct {
	// Region is the cloaked spatial region forwarded to the database server.
	Region geo.Rect
	// K is the number of users (including the requester) inside Region at
	// cloak time — the anonymity actually achieved.
	K int
	// SatisfiedK, SatisfiedMinArea and SatisfiedMaxArea record which profile
	// constraints the region meets.
	SatisfiedK       bool
	SatisfiedMinArea bool
	SatisfiedMaxArea bool
	// Reused is set by the incremental cloaker when the previous region was
	// still valid and returned without recomputation.
	Reused bool
}

// BestEffort reports whether any constraint was missed.
func (r Result) BestEffort() bool {
	return !r.SatisfiedK || !r.SatisfiedMinArea || !r.SatisfiedMaxArea
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("region=%v k=%d (k:%t minA:%t maxA:%t reused:%t)",
		r.Region, r.K, r.SatisfiedK, r.SatisfiedMinArea, r.SatisfiedMaxArea, r.Reused)
}

// finish fills the satisfaction flags from the achieved region and count.
func finish(region geo.Rect, count int, req privacy.Requirement) Result {
	return Result{
		Region:           region,
		K:                count,
		SatisfiedK:       count >= req.K,
		SatisfiedMinArea: region.Area() >= req.MinArea,
		SatisfiedMaxArea: region.Area() <= req.EffectiveMaxArea(),
	}
}

// Cloaker turns an exact location into a cloaked region under a privacy
// requirement. Implementations are not goroutine-safe; the anonymizer
// serializes cloaking.
type Cloaker interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Cloak blurs the location of the identified user. The user is assumed
	// to be part of the tracked population (her own presence counts toward
	// k); algorithms that look the user up fall back gracefully when she is
	// not yet indexed.
	Cloak(id uint64, loc geo.Point, req privacy.Requirement) Result
}

// Population is the user-location knowledge available to data-dependent
// cloaking: counting users inside a rectangle and finding the k users
// nearest to a point. The anonymizer's grid index implements it.
type Population interface {
	// CountIn returns the number of users inside r.
	CountIn(r geo.Rect) int
	// KNearest returns the locations of the k users nearest to p
	// (fewer when the population is smaller).
	KNearest(p geo.Point, k int) []geo.Point
	// Len returns the population size.
	Len() int
	// World returns the space all users live in.
	World() geo.Rect
}

// GridPopulation adapts a grid.Index to the Population interface.
type GridPopulation struct {
	Index *grid.Index
}

// CountIn implements Population.
func (g GridPopulation) CountIn(r geo.Rect) int { return g.Index.Count(r) }

// KNearest implements Population.
func (g GridPopulation) KNearest(p geo.Point, k int) []geo.Point {
	objs := g.Index.Nearest(p, k)
	out := make([]geo.Point, len(objs))
	for i, o := range objs {
		out[i] = o.Loc
	}
	return out
}

// Len implements Population.
func (g GridPopulation) Len() int { return g.Index.Len() }

// World implements Population.
func (g GridPopulation) World() geo.Rect { return g.Index.World() }
