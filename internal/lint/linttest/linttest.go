// Package linttest runs lbsvet analyzers against testdata fixture
// packages, in the style of golang.org/x/tools/go/analysis/analysistest:
// fixture files carry `// want "regexp"` comments on the lines where the
// analyzer must report, and the runner fails the test on any missing or
// unexpected diagnostic. Fixtures are real, type-checked Go packages that
// may import the module's own packages and the standard library, so
// positive cases exercise the same types the production passes see.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
	"repro/internal/lint/loader"
)

var (
	progOnce sync.Once
	progVal  *loader.Program
	progErr  error
	caseSeq  int
	mu       sync.Mutex
)

// moduleRoot walks up from this source file to the module root.
func moduleRoot() string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

// program loads (once per test binary) and returns the whole module.
func program(t *testing.T) *loader.Program {
	t.Helper()
	progOnce.Do(func() {
		progVal, progErr = loader.Load(moduleRoot(), "./...")
	})
	if progErr != nil {
		t.Fatalf("linttest: loading module: %v", progErr)
	}
	return progVal
}

// wantRe extracts the quoted regexps of a `// want "a" "b"` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// expectation is one `// want` pattern.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture package rooted at dir (relative to the calling
// test's directory, conventionally "testdata/src/<case>"), runs the
// analyzer over it with the whole module as surrounding program, and
// checks the diagnostics against the fixture's `// want` expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()

	prog := program(t)

	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(abs, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", abs)
	}

	caseSeq++
	path := fmt.Sprintf("lbsvet.fixture/case%d", caseSeq)
	pkg, err := prog.AddPackage(path, abs, files)
	if err != nil {
		t.Fatalf("linttest: fixture %s: %v", dir, err)
	}
	defer prog.DropPackage(path)

	// Interprocedural passes memoize whole-program state; a new fixture
	// package invalidates it.
	prog.Cache = make(map[interface{}]interface{})

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      prog.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Prog:      prog,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s: %v", a.Name, err)
	}

	expectations := collect(t, prog.Fset, pkg)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		found := false
		for _, e := range expectations {
			if e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

// collect parses the fixture's // want comments. A trailing want applies
// to its own line, and so does a want riding a //lint: directive comment
// (doc-comment directives receive diagnostics at the comment's own
// position, which is never a code line); a plain want on a line of its
// own applies to the nearest code line above it.
func collect(t *testing.T, fset *token.FileSet, pkg *loader.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.Ident, *ast.BasicLit:
				codeLines[fset.Position(n.Pos()).Line] = true
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				_, isDirective := directive.Parse(c.Text)
				if !isDirective && !codeLines[pos.Line] {
					for l := pos.Line - 1; l > 0; l-- {
						if codeLines[l] {
							pos.Line = l
							break
						}
					}
				}
				for _, raw := range splitQuoted(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					out = append(out, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// splitQuoted pulls the double-quoted strings out of a want comment tail.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		s = s[start+1:]
		end := strings.IndexByte(s, '"')
		if end < 0 {
			return out
		}
		out = append(out, s[:end])
		s = s[end+1:]
	}
}
