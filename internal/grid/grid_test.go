package grid

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/rng"
)

var world = geo.R(0, 0, 1, 1)

func mustNew(t testing.TB, cols, rows int) *Index {
	t.Helper()
	g, err := New(world, cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(world, 0, 10); err == nil {
		t.Error("zero cols accepted")
	}
	if _, err := New(world, 10, -1); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := New(geo.Rect{}, 10, 10); err == nil {
		t.Error("empty world accepted")
	}
}

func TestCellOfClamping(t *testing.T) {
	g := mustNew(t, 10, 10)
	cases := []struct {
		p        geo.Point
		col, row int
	}{
		{geo.Pt(0.05, 0.05), 0, 0},
		{geo.Pt(0.95, 0.95), 9, 9},
		{geo.Pt(1.0, 1.0), 9, 9},   // boundary clamps into last cell
		{geo.Pt(-0.5, 0.5), 0, 5},  // outside clamps
		{geo.Pt(0.5, 2.0), 5, 9},   // outside clamps
		{geo.Pt(0.1, 0.1), 1, 1},   // exactly on a cell boundary
		{geo.Pt(0.999, 0.0), 9, 0}, // edge
	}
	for _, c := range cases {
		col, row := g.CellOf(c.p)
		if col != c.col || row != c.row {
			t.Errorf("CellOf(%v) = (%d,%d), want (%d,%d)", c.p, col, row, c.col, c.row)
		}
	}
}

func TestCellRectTilesWorld(t *testing.T) {
	g := mustNew(t, 4, 3)
	total := 0.0
	for row := 0; row < 3; row++ {
		for col := 0; col < 4; col++ {
			r := g.CellRect(col, row)
			total += r.Area()
			if !world.ContainsRect(r) {
				t.Errorf("cell (%d,%d) = %v escapes world", col, row, r)
			}
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("cells tile area %v, want 1", total)
	}
}

func TestUpsertAndSearch(t *testing.T) {
	g := mustNew(t, 8, 8)
	if !g.Upsert(1, geo.Pt(0.1, 0.1)) {
		t.Error("first insert should report cell change")
	}
	if g.Len() != 1 {
		t.Error("Len after insert")
	}
	// Move within the same cell: no cell change.
	if g.Upsert(1, geo.Pt(0.11, 0.11)) {
		t.Error("move within cell should report false")
	}
	// Move to another cell.
	if !g.Upsert(1, geo.Pt(0.9, 0.9)) {
		t.Error("move across cells should report true")
	}
	if g.Len() != 1 {
		t.Error("Upsert duplicated the object")
	}
	got := g.Search(geo.R(0.8, 0.8, 1, 1), nil)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("Search = %v", got)
	}
	if len(g.Search(geo.R(0, 0, 0.2, 0.2), nil)) != 0 {
		t.Error("object found at old cell")
	}
	if p, ok := g.Location(1); !ok || !p.Eq(geo.Pt(0.9, 0.9)) {
		t.Errorf("Location = %v, %v", p, ok)
	}
}

func TestDelete(t *testing.T) {
	g := mustNew(t, 4, 4)
	g.Upsert(7, geo.Pt(0.5, 0.5))
	if !g.Delete(7) {
		t.Error("Delete existing returned false")
	}
	if g.Delete(7) {
		t.Error("Delete missing returned true")
	}
	if g.Len() != 0 {
		t.Error("Len after delete")
	}
	if _, ok := g.Location(7); ok {
		t.Error("Location after delete")
	}
}

func TestSearchMatchesBrute(t *testing.T) {
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 3000, World: world, Dist: mobility.Gaussian, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := mustNew(t, 16, 16)
	for i, p := range pts {
		g.Upsert(uint64(i+1), p)
	}
	src := rng.New(17)
	for q := 0; q < 50; q++ {
		r := geo.R(src.Float64(), src.Float64(), src.Float64(), src.Float64())
		want := 0
		for _, p := range pts {
			if r.Contains(p) {
				want++
			}
		}
		got := g.Search(r, nil)
		if len(got) != want {
			t.Fatalf("Search %v = %d, brute = %d", r, len(got), want)
		}
		if c := g.Count(r); c != want {
			t.Fatalf("Count %v = %d, brute = %d", r, c, want)
		}
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: 2000, World: world, Dist: mobility.ZipfClusters, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := mustNew(t, 32, 32)
	for i, p := range pts {
		g.Upsert(uint64(i+1), p)
	}
	src := rng.New(23)
	for q := 0; q < 30; q++ {
		query := geo.Pt(src.Float64(), src.Float64())
		for _, k := range []int{1, 5, 20} {
			got := g.Nearest(query, k)
			if len(got) != k {
				t.Fatalf("Nearest(k=%d) returned %d", k, len(got))
			}
			d2 := make([]float64, len(pts))
			for i, p := range pts {
				d2[i] = query.Dist2(p)
			}
			sort.Float64s(d2)
			for i := range got {
				if query.Dist2(got[i].Loc) != d2[i] {
					t.Fatalf("Nearest(k=%d)[%d]: dist %v, want %v",
						k, i, query.Dist2(got[i].Loc), d2[i])
				}
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	g := mustNew(t, 4, 4)
	if got := g.Nearest(geo.Pt(0.5, 0.5), 3); got != nil {
		t.Error("Nearest on empty grid should be nil")
	}
	g.Upsert(1, geo.Pt(0.2, 0.2))
	if got := g.Nearest(geo.Pt(0.5, 0.5), 0); got != nil {
		t.Error("Nearest k=0 should be nil")
	}
	got := g.Nearest(geo.Pt(0.9, 0.9), 10)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("Nearest k>size = %v", got)
	}
}

func TestCellCountAndAll(t *testing.T) {
	g := mustNew(t, 2, 2)
	g.Upsert(1, geo.Pt(0.1, 0.1))
	g.Upsert(2, geo.Pt(0.2, 0.2))
	g.Upsert(3, geo.Pt(0.9, 0.9))
	if got := g.CellCount(0, 0); got != 2 {
		t.Errorf("CellCount(0,0) = %d", got)
	}
	if got := g.CellCount(1, 1); got != 1 {
		t.Errorf("CellCount(1,1) = %d", got)
	}
	all := g.All(nil)
	if len(all) != 3 {
		t.Errorf("All returned %d", len(all))
	}
}

func TestPropUpsertConsistency(t *testing.T) {
	// Random streams of upserts/deletes keep Len, Location and Search
	// consistent with a map-based model.
	f := func(seed uint64, opsRaw uint16) bool {
		src := rng.New(seed)
		g, err := New(world, 8, 8)
		if err != nil {
			return false
		}
		model := map[uint64]geo.Point{}
		ops := int(opsRaw%500) + 50
		for i := 0; i < ops; i++ {
			id := uint64(src.Intn(30)) + 1
			if src.Float64() < 0.3 {
				delete(model, id)
				g.Delete(id)
			} else {
				p := geo.Pt(src.Float64(), src.Float64())
				model[id] = p
				g.Upsert(id, p)
			}
		}
		if g.Len() != len(model) {
			return false
		}
		for id, p := range model {
			got, ok := g.Location(id)
			if !ok || !got.Eq(p) {
				return false
			}
		}
		return len(g.Search(world, nil)) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpsertMoving(b *testing.B) {
	g := mustNew(b, 64, 64)
	src := rng.New(1)
	const n = 10000
	for i := 0; i < n; i++ {
		g.Upsert(uint64(i), geo.Pt(src.Float64(), src.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i % n)
		g.Upsert(id, geo.Pt(src.Float64(), src.Float64()))
	}
}

func BenchmarkSearchGrid(b *testing.B) {
	g := mustNew(b, 64, 64)
	src := rng.New(2)
	for i := 0; i < 10000; i++ {
		g.Upsert(uint64(i), geo.Pt(src.Float64(), src.Float64()))
	}
	r := geo.R(0.4, 0.4, 0.6, 0.6)
	var buf []Object
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Search(r, buf[:0])
	}
}

func BenchmarkNearestGrid(b *testing.B) {
	g := mustNew(b, 64, 64)
	src := rng.New(3)
	for i := 0; i < 10000; i++ {
		g.Upsert(uint64(i), geo.Pt(src.Float64(), src.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Nearest(geo.Pt(0.5, 0.5), 10)
	}
}
