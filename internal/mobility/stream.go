package mobility

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// Stream is a city-scale mobility generator with O(clusters) resident
// state: a user's position at any tick is a pure function of (seed, id,
// tick), so a million-user population costs no per-user memory and any
// worker can compute any user's position independently — the property the
// soak harness needs to stream 1M+ users through the pipeline without
// holding them.
//
// The model is a hash-derived random-waypoint walk over a Zipf-clustered
// city: user id's k-th waypoint is drawn around a cluster picked by a
// Zipf CDF lookup keyed on hash(seed, id, k), each leg lasts a per-user
// constant number of ticks, and the position inside a leg interpolates
// between consecutive waypoints. Consecutive ticks therefore move a user
// continuously; waypoint changes are corners, not jumps.
type Stream struct {
	spec    StreamSpec
	centers []geo.Point
	cdf     []float64 // cumulative cluster popularity, cdf[len-1] == 1
}

// StreamSpec configures a Stream. The zero value is unusable: World must
// be a valid, non-empty rectangle.
type StreamSpec struct {
	World geo.Rect
	Seed  uint64

	// NumClusters and ZipfS shape the city: waypoint density follows a
	// Zipf(s) law over the cluster centers. Defaults: 10 clusters, s=1.
	NumClusters int
	ZipfS       float64
	// Stddev is the Gaussian spread of waypoints around their cluster
	// center; default 5% of world width.
	Stddev float64

	// MinLeg and MaxLeg bound the per-user leg duration in ticks; each
	// user's constant leg length is hashed into this interval. Defaults
	// 20 and 60.
	MinLeg, MaxLeg int
}

// Hotspot is a transient attractor — the flash-crowd dial. A fraction
// Frac of the population (chosen per user by hash, stable for the
// hotspot's lifetime) has its waypoints pulled toward Center by Pull
// (0 = no effect, 1 = everyone affected sits on Center). Scenarios pass a
// different Hotspot per phase to migrate the crowd.
type Hotspot struct {
	Center geo.Point
	Frac   float64
	Pull   float64
}

func (s StreamSpec) withDefaults() StreamSpec {
	if s.NumClusters <= 0 {
		s.NumClusters = 10
	}
	if s.ZipfS <= 0 {
		s.ZipfS = 1.0
	}
	if s.Stddev <= 0 {
		s.Stddev = 0.05 * s.World.Width()
	}
	if s.MinLeg <= 0 {
		s.MinLeg = 20
	}
	if s.MaxLeg < s.MinLeg {
		s.MaxLeg = s.MinLeg + 40
	}
	return s
}

// NewStream validates the spec and precomputes the cluster layout — the
// only allocation the generator ever makes.
func NewStream(spec StreamSpec) (*Stream, error) {
	if !spec.World.Valid() || spec.World.Area() <= 0 {
		return nil, fmt.Errorf("mobility: invalid stream world %v", spec.World)
	}
	spec = spec.withDefaults()
	g := &Stream{
		spec:    spec,
		centers: make([]geo.Point, spec.NumClusters),
		cdf:     make([]float64, spec.NumClusters),
	}
	// Cluster centers are themselves hash-placed so the whole layout is a
	// function of the seed alone.
	for i := range g.centers {
		hx := g.h(uint64(i), 0, saltCenterX)
		hy := g.h(uint64(i), 0, saltCenterY)
		g.centers[i] = geo.Pt(
			spec.World.Min.X+unit(hx)*spec.World.Width(),
			spec.World.Min.Y+unit(hy)*spec.World.Height(),
		)
	}
	var total float64
	for i := range g.cdf {
		total += 1 / math.Pow(float64(i+1), spec.ZipfS)
		g.cdf[i] = total
	}
	for i := range g.cdf {
		g.cdf[i] /= total
	}
	return g, nil
}

// Hash salts separating the independent random streams drawn from one
// seed.
const (
	saltCenterX = 0x10
	saltCenterY = 0x11
	saltCluster = 0x20
	saltOffU    = 0x21
	saltOffV    = 0x22
	saltLeg     = 0x23
	saltHot     = 0x24
)

// mix is the splitmix64 finalizer — the avalanche that turns structured
// (seed, id, k) triples into independent uniform words.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// h derives one uniform word for (id, k) under a salt.
func (g *Stream) h(id, k, salt uint64) uint64 {
	return mix(mix(mix(g.spec.Seed^salt*0x9e3779b97f4a7c15)^id) ^ k)
}

// unit maps a uniform word onto [0,1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// legTicks returns user id's constant leg duration.
func (g *Stream) legTicks(id uint64) uint64 {
	span := uint64(g.spec.MaxLeg - g.spec.MinLeg + 1)
	return uint64(g.spec.MinLeg) + g.h(id, 0, saltLeg)%span
}

// waypoint returns user id's k-th waypoint: a Gaussian sample around a
// Zipf-chosen cluster center, optionally pulled toward a hotspot, clamped
// into the world.
func (g *Stream) waypoint(id, k uint64, hot *Hotspot) geo.Point {
	u := unit(g.h(id, k, saltCluster))
	c := g.centers[sort.SearchFloat64s(g.cdf, u)]
	// Box–Muller from two salted uniforms; the 1e-12 floor keeps Log finite.
	u1 := unit(g.h(id, k, saltOffU))
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := unit(g.h(id, k, saltOffV))
	r := math.Sqrt(-2*math.Log(u1)) * g.spec.Stddev
	p := geo.Pt(c.X+r*math.Cos(2*math.Pi*u2), c.Y+r*math.Sin(2*math.Pi*u2))
	if hot != nil && hot.Pull > 0 && unit(g.h(id, 0, saltHot)) < hot.Frac {
		p = p.Lerp(hot.Center, hot.Pull)
	}
	return g.spec.World.ClampPoint(p)
}

// Pos returns user id's exact position at tick — a pure O(1) function of
// (seed, id, tick, hot). hot may be nil. Successive ticks interpolate
// along the current leg, so per-user motion is continuous.
func (g *Stream) Pos(id uint64, tick uint64, hot *Hotspot) geo.Point {
	legLen := g.legTicks(id)
	// Phase-shift by a per-user offset so a fresh population doesn't turn
	// all its corners on the same global ticks.
	t := tick + (g.h(id, 0, saltLeg)>>32)%legLen
	k := t / legLen
	frac := float64(t%legLen) / float64(legLen)
	from := g.waypoint(id, k, hot)
	to := g.waypoint(id, k+1, hot)
	return from.Lerp(to, frac)
}

// Clusters returns the generated cluster centers (read-only), mainly for
// scenario authors picking hotspot targets that contrast with the
// baseline city.
func (g *Stream) Clusters() []geo.Point { return g.centers }

// World returns the generation bounds.
func (g *Stream) World() geo.Rect { return g.spec.World }
