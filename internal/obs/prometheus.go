package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers per metric family,
// cumulative le-bucket lines plus _sum and _count for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Export())
}

// WritePrometheus renders already-exported snapshots; the load tools use it
// to print snapshots fetched over the wire.
func WritePrometheus(w io.Writer, series []MetricSnapshot) error {
	var b strings.Builder
	lastFamily := ""
	for _, s := range series {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind)
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", s.Name, labelString(s.Labels, "", 0), formatValue(s.Value))
		case KindHistogram:
			var cum uint64
			for i, c := range s.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Hist.Bounds) {
					le = formatValue(s.Hist.Bounds[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.Name, labelString(s.Labels, le, 1), cum)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.Name, labelString(s.Labels, "", 0), formatValue(s.Hist.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.Name, labelString(s.Labels, "", 0), cum)
			// Exemplar trace ids as comments (the 0.0.4 text format has no
			// exemplar syntax; comments keep every parser happy).
			if len(s.Hist.Exemplars) == len(s.Hist.Counts) {
				for i, t := range s.Hist.Exemplars {
					if t == 0 {
						continue
					}
					le := "+Inf"
					if i < len(s.Hist.Bounds) {
						le = formatValue(s.Hist.Bounds[i])
					}
					fmt.Fprintf(&b, "# exemplar %s_bucket%s trace_id=%016x\n",
						s.Name, labelString(s.Labels, le, 1), t)
				}
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...}; mode 1 appends le="bound".
func labelString(labels []Label, le string, mode int) string {
	if len(labels) == 0 && mode == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if mode == 1 {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
