// Package atomicmix implements the lbsvet pass that flags struct fields
// accessed both through sync/atomic and through plain loads or stores
// outside the guarding mutex.
//
// The tree's counters deliberately use the typed atomics
// (atomic.Int64/Uint64), which make mixed access impossible by
// construction. The hazard this pass closes is the function-style form:
//
//	atomic.AddUint64(&s.hits, 1)   // one call site
//	s.hits = 0                     // ...and a plain reset elsewhere: a race
//
// A field becomes "atomic" the moment any `&x.f` is passed to a
// sync/atomic function; every other plain access to that field is then
// reported unless it is
//
//   - inside a function that acquires a sibling mutex of the same struct
//     before the access (the lock-then-touch pattern; the check is
//     positional, not flow-sensitive — an earlier Lock/RLock on a mutex
//     field declared in the same struct exempts the access), or
//   - annotated //lint:atomic-guarded <why> on the access line
//     (initialization before publication, externally serialized paths).
//
// In whole-program mode the atomic-use census spans the module, so a
// plain access in one package is checked against atomic uses in another;
// in modular vet mode the pass degrades to per-package views.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
	"repro/internal/lint/loader"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag fields accessed both via sync/atomic and plain load/store\n\n" +
		"A field with any &x.f passed to sync/atomic must not be touched\n" +
		"plainly outside the guarding mutex or an //lint:atomic-guarded line.",
	Run: run,
}

type cacheKey struct{}

type result struct {
	byPkg map[string][]analysis.Diagnostic
}

type pkgUnit struct {
	path  string
	files []*ast.File
	info  *types.Info
}

type world struct {
	fset *token.FileSet
	pkgs []*pkgUnit
	// atomicUse maps a struct field to the position of one sync/atomic
	// call taking its address.
	atomicUse map[types.Object]token.Pos
	// atomicArgs marks the &x.f selector nodes consumed by those calls,
	// so the census pass does not flag the atomic accesses themselves.
	atomicArgs map[*ast.SelectorExpr]bool
	// siblings maps every field of a struct that declares at least one
	// sync.Mutex/RWMutex field to those mutex field objects.
	siblings map[types.Object][]types.Object
	diags    map[string][]analysis.Diagnostic
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Prog != nil {
		res, ok := pass.Prog.Cache[cacheKey{}].(*result)
		if !ok {
			res = analyze(pass.Fset, programUnits(pass.Prog))
			pass.Prog.Cache[cacheKey{}] = res
		}
		for _, d := range res.byPkg[pass.Pkg.Path()] {
			pass.Report(d)
		}
		return nil, nil
	}
	res := analyze(pass.Fset, []*pkgUnit{{path: pass.Pkg.Path(), files: pass.Files, info: pass.TypesInfo}})
	for _, d := range res.byPkg[pass.Pkg.Path()] {
		pass.Report(d)
	}
	return nil, nil
}

func programUnits(prog *loader.Program) []*pkgUnit {
	var units []*pkgUnit
	for _, p := range prog.Packages {
		units = append(units, &pkgUnit{path: p.Types.Path(), files: p.Files, info: p.Info})
	}
	return units
}

func analyze(fset *token.FileSet, pkgs []*pkgUnit) *result {
	w := &world{
		fset:       fset,
		pkgs:       pkgs,
		atomicUse:  make(map[types.Object]token.Pos),
		atomicArgs: make(map[*ast.SelectorExpr]bool),
		siblings:   make(map[types.Object][]types.Object),
		diags:      make(map[string][]analysis.Diagnostic),
	}
	w.collectSiblings()
	w.collectAtomicUses()
	w.checkPlainAccesses()
	res := &result{byPkg: w.diags}
	for _, ds := range res.byPkg {
		sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	}
	return res
}

func (w *world) report(pkg *pkgUnit, pos token.Pos, format string, args ...interface{}) {
	w.diags[pkg.path] = append(w.diags[pkg.path], analysis.Diagnostic{
		Pos: pos, Category: "atomicmix", Message: fmt.Sprintf(format, args...),
	})
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// collectSiblings records, for every struct declaring a mutex field, the
// mutex objects guarding its other fields.
func (w *world) collectSiblings() {
	for _, pkg := range w.pkgs {
		for _, file := range pkg.files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				var mutexes []types.Object
				var fields []types.Object
				for _, field := range st.Fields.List {
					for _, id := range field.Names {
						obj := pkg.info.Defs[id]
						if obj == nil {
							continue
						}
						fields = append(fields, obj)
						if isMutexType(obj.Type()) {
							mutexes = append(mutexes, obj)
						}
					}
				}
				if len(mutexes) == 0 {
					return true
				}
				for _, f := range fields {
					w.siblings[f] = mutexes
				}
				return true
			})
		}
	}
}

// fieldAddrArg unwraps &x.f arguments, returning the selector and the
// struct field it resolves to.
func fieldAddrArg(pkg *pkgUnit, arg ast.Expr) (*ast.SelectorExpr, types.Object) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	obj := pkg.info.Uses[sel.Sel]
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return sel, obj
	}
	return nil, nil
}

// collectAtomicUses finds every &x.f handed to a sync/atomic function.
func (w *world) collectAtomicUses() {
	for _, pkg := range w.pkgs {
		for _, file := range pkg.files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				callee, ok := pkg.info.Uses[fun.Sel].(*types.Func)
				if !ok || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					sel, obj := fieldAddrArg(pkg, arg)
					if obj == nil {
						continue
					}
					w.atomicArgs[sel] = true
					if _, have := w.atomicUse[obj]; !have {
						w.atomicUse[obj] = arg.Pos()
					}
				}
				return true
			})
		}
	}
}

// funcSpan is one function body (declaration or literal) for innermost-
// enclosing lookups.
type funcSpan struct {
	body *ast.BlockStmt
}

func (w *world) checkPlainAccesses() {
	if len(w.atomicUse) == 0 {
		return
	}
	for _, pkg := range w.pkgs {
		for _, file := range pkg.files {
			var spans []funcSpan
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						spans = append(spans, funcSpan{body: n.Body})
					}
				case *ast.FuncLit:
					spans = append(spans, funcSpan{body: n.Body})
				}
				return true
			})
			dirs := directive.ForFile(w.fset, file)
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || w.atomicArgs[sel] {
					return true
				}
				obj := pkg.info.Uses[sel.Sel]
				if obj == nil {
					return true
				}
				atomicAt, isAtomic := w.atomicUse[obj]
				if !isAtomic {
					return true
				}
				if d, ok := dirs.Find(w.fset, sel.Pos(), "atomic-guarded"); ok {
					if d.Args == "" {
						w.report(pkg, d.Pos, "//lint:atomic-guarded needs a justification: why is this plain access to %s safe?", obj.Name())
					}
					return true
				}
				if w.mutexHeldBefore(pkg, spans, sel.Pos(), obj) {
					return true
				}
				w.report(pkg, sel.Pos(),
					"%s is accessed atomically (e.g. %s) but read/written plainly here; hold the guarding mutex first, use sync/atomic, or annotate //lint:atomic-guarded <why>",
					obj.Name(), w.fset.Position(atomicAt))
				return true
			})
		}
	}
}

// mutexHeldBefore reports whether the innermost function enclosing pos
// calls Lock/RLock on a sibling mutex of field's struct at an earlier
// position. Positional, not flow-sensitive: good enough for the
// lock-at-entry, defer-unlock idiom this tree uses.
func (w *world) mutexHeldBefore(pkg *pkgUnit, spans []funcSpan, pos token.Pos, field types.Object) bool {
	mutexes := w.siblings[field]
	if len(mutexes) == 0 {
		return false
	}
	var innermost *ast.BlockStmt
	for _, s := range spans {
		if s.body.Pos() <= pos && pos <= s.body.End() {
			if innermost == nil || s.body.Pos() > innermost.Pos() {
				innermost = s.body
			}
		}
	}
	if innermost == nil {
		return false
	}
	held := false
	ast.Inspect(innermost, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos || held {
			return !held
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (fun.Sel.Name != "Lock" && fun.Sel.Name != "RLock") {
			return true
		}
		recv, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
		var obj types.Object
		if ok {
			obj = pkg.info.Uses[recv.Sel]
		} else if id, isID := ast.Unparen(fun.X).(*ast.Ident); isID {
			obj = pkg.info.Uses[id]
		}
		for _, m := range mutexes {
			if obj == m {
				held = true
			}
		}
		return !held
	})
	return held
}
