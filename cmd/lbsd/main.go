// Command lbsd runs the privacy-aware location-based database server as a
// TCP service (the right-hand tier of Figure 1). It receives cloaked
// regions from the anonymizer and serves private-over-public and
// public-over-private queries.
//
// With -metrics-addr set, an operational HTTP endpoint serves /metrics
// (Prometheus text format: the lbs_* server series and proto_* wire
// series), /healthz, and the net/http/pprof profiling endpoints under
// /debug/pprof/. The same series are answered over TCP to MsgMetrics
// requests, which is how lbsload prints live percentile tables.
//
// Usage:
//
//	lbsd -addr :7070 -world 1.0 -metrics-addr :9090
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	worldSize := flag.Float64("world", 1.0, "world is the square [0,size]²")
	snapshot := flag.String("snapshot", "", "snapshot file: restored at startup if present, written at shutdown")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	queryWorkers := flag.Int("query-workers", 0, "worker goroutines per batch query (0 = GOMAXPROCS, 1 = sequential)")
	maxConns := flag.Int("max-conns", 0, "max concurrent client connections (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "admission budget: max in-flight requests before typed overload rejection, queries capped at half (0 = unlimited)")
	readTimeout := flag.Duration("read-timeout", 0, "drop connections idle for this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Second, "grace for in-flight requests on shutdown")
	traceSample := flag.Float64("trace-sample", 0, "fraction of traced requests to record spans for (0 = tracing off, 1 = all)")
	traceSlow := flag.Duration("trace-slow", 0, "pin spans at least this slow in the slow-trace ring regardless of ring wraparound (0 = off)")
	flag.Parse()

	reg := obs.NewRegistry()
	obs.EnableRuntimeMetrics(reg)
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{
			Process:       "lbsd",
			Sample:        *traceSample,
			SlowThreshold: *traceSlow,
		})
		log.Printf("lbsd: tracing %.3g of traced requests (slow threshold %v)", *traceSample, *traceSlow)
	}
	srv, err := server.New(server.Config{
		World:        geo.R(0, 0, *worldSize, *worldSize),
		Metrics:      reg,
		QueryWorkers: *queryWorkers,
		Tracer:       tracer,
	})
	if err != nil {
		log.Fatalf("lbsd: %v", err)
	}
	if *snapshot != "" {
		if err := srv.LoadSnapshot(*snapshot); err == nil {
			log.Printf("lbsd: restored %d public objects, %d private users from %s",
				srv.StationaryCount(), srv.PrivateUserCount(), *snapshot)
		} else if !os.IsNotExist(err) {
			log.Fatalf("lbsd: restore %s: %v", *snapshot, err)
		}
	}
	svcOpts := []protocol.Option{protocol.WithMetrics(reg),
		protocol.WithTracing(tracer),
		protocol.WithMaxConns(*maxConns),
		protocol.WithReadTimeout(*readTimeout),
		protocol.WithDrainTimeout(*drainTimeout)}
	if *maxInflight > 0 {
		svcOpts = append(svcOpts, protocol.WithAdmission(*maxInflight))
		log.Printf("lbsd: admission control on (budget %d in-flight, queries capped at %d)",
			*maxInflight, max(1, *maxInflight/2))
	}
	svc, err := protocol.ServeDatabase(*addr, srv, log.Printf, svcOpts...)
	if err != nil {
		log.Fatalf("lbsd: %v", err)
	}
	log.Printf("lbsd: privacy-aware database server listening on %s (world %.3g²)", svc.Addr(), *worldSize)
	var metricsSrv *obs.MetricsServer
	if *metricsAddr != "" {
		metricsSrv, err = obs.ServeMetrics(*metricsAddr, reg,
			obs.Route{Pattern: "/traces", Handler: tracer.Handler()})
		if err != nil {
			log.Fatalf("lbsd: metrics endpoint: %v", err)
		}
		log.Printf("lbsd: metrics on http://%s/metrics (traces on /traces, pprof under /debug/pprof/)", metricsSrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("lbsd: shutting down")
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if err := svc.Close(); err != nil {
		log.Printf("lbsd: close: %v", err)
	}
	if *snapshot != "" {
		if err := srv.SaveSnapshot(*snapshot); err != nil {
			log.Fatalf("lbsd: %v", err)
		}
		log.Printf("lbsd: state saved to %s", *snapshot)
	}
}
