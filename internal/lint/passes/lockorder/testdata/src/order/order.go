// Package fixture exercises the lockorder pass: stripe (rank 0) before
// index (rank 1), never the reverse.
package fixture

import "sync"

type stripe struct {
	mu sync.Mutex //lint:lock stripe@0
	n  int
}

type index struct {
	mu sync.RWMutex //lint:lock index@1
	m  map[uint64]int
}

func good(s *stripe, ix *index) {
	s.mu.Lock()
	ix.mu.Lock()
	ix.m[1] = s.n
	ix.mu.Unlock()
	s.mu.Unlock()
}

func goodDeferred(s *stripe, ix *index) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s.n = ix.m[1]
}

func bad(s *stripe, ix *index) {
	ix.mu.RLock()
	s.mu.Lock() // want "acquires stripe lock \(rank 0\) while holding index lock \(rank 1\)"
	s.n++
	s.mu.Unlock()
	ix.mu.RUnlock()
}

func releasedFirst(s *stripe, ix *index) {
	ix.mu.Lock()
	ix.m[2] = 9
	ix.mu.Unlock()
	s.mu.Lock() // index already released: fine
	s.n++
	s.mu.Unlock()
}

func lockStripe(s *stripe) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func transitive(s *stripe, ix *index) {
	ix.mu.Lock()
	lockStripe(s) // want "call to lockStripe acquires stripe lock \(rank 0\) while holding index lock \(rank 1\)"
	ix.mu.Unlock()
}

func goroutineIsFreshContext(s *stripe, ix *index) {
	ix.mu.RLock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.mu.Lock() // separate goroutine: its own lock order
		s.n++
		s.mu.Unlock()
	}()
	ix.mu.RUnlock()
	wg.Wait()
}
