// Package hotalloc implements the lbsvet pass that turns the compiler's
// escape analysis into a ratchet for the hot path.
//
// A function on the update→cloak→forward→query path is annotated with a
// heap-allocation budget in its doc comment:
//
//	//lint:hotpath allocs=3
//	func (a *Anonymizer) cloakStage(...) { ... }
//
// The pass shells out to `go build -gcflags=-m` for the annotated
// package (the go command replays cached compiler output, so repeat runs
// are cheap), counts the escape diagnostics — "moved to heap" and
// "escapes to heap" — attributed to each annotated function's line span,
// and reports any function whose count exceeds its budget. Budgets are a
// one-way ratchet: the perf work lowers them, and a regression that adds
// an escape breaks the build instead of waiting for a profile to notice.
//
// The count is the number of escape *sites* the compiler reports, not a
// per-call allocation count — a site inside a loop is still one site.
// That is the right granularity for a ratchet: new sites are what code
// changes introduce.
package hotalloc

import (
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
	"repro/internal/lint/loader"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "enforce //lint:hotpath allocs=N escape budgets on hot-path functions\n\n" +
		"Shells out to go build -gcflags=-m and counts heap-escape sites per\n" +
		"annotated function; exceeding the budget is a build break.",
	Run: run,
}

type target struct {
	fd     *ast.FuncDecl
	file   string // base name
	budget int
	start  int // decl line span, inclusive
	end    int
}

func run(pass *analysis.Pass) (interface{}, error) {
	var targets []target
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			// Escape diagnostics come from `go build`, which does not
			// compile test files; a budget there could never be checked.
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if d, ok := directive.FromDoc(fd.Doc, "hotpath"); ok {
					pass.Reportf(d.Pos, "//lint:hotpath on test function %s: budgets apply to build-compiled code only", fd.Name.Name)
				}
			}
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			d, ok := directive.FromDoc(fd.Doc, "hotpath")
			if !ok {
				continue
			}
			budget, perr := parseBudget(d.Args)
			if perr != "" {
				pass.Reportf(d.Pos, "malformed //lint:hotpath directive %q: %s", d.Args, perr)
				continue
			}
			if fd.Body == nil {
				pass.Reportf(d.Pos, "//lint:hotpath on bodyless declaration %s", fd.Name.Name)
				continue
			}
			targets = append(targets, target{
				fd:     fd,
				file:   filepath.Base(fname),
				budget: budget,
				start:  pass.Fset.Position(fd.Pos()).Line,
				end:    pass.Fset.Position(fd.End()).Line,
			})
		}
	}
	if len(targets) == 0 {
		return nil, nil // no budgets, no compiler invocation
	}

	dir := filepath.Dir(pass.Fset.Position(targets[0].fd.Pos()).Filename)
	esc, err := escapes(pass, dir)
	if err != nil {
		return nil, err
	}

	for _, t := range targets {
		sites := esc.SitesRange(t.file, t.start, t.end)
		if len(sites) <= t.budget {
			continue
		}
		detail := make([]string, 0, len(sites))
		for _, s := range sites {
			detail = append(detail, s.File+":"+strconv.Itoa(s.Line)+": "+s.Msg)
		}
		pass.Reportf(t.fd.Name.Pos(),
			"%s has %d heap-escape sites, over its //lint:hotpath budget allocs=%d; remove the allocation or the regression that added it (budgets only ratchet down)\n\t%s",
			t.fd.Name.Name, len(sites), t.budget, strings.Join(detail, "\n\t"))
	}
	return nil, nil
}

type cacheKey struct{ dir string }

// escapes runs the compiler once per package directory per process,
// caching through Prog.Cache in whole-program mode so the fixture runner
// and standalone driver do not rebuild per analyzer invocation.
func escapes(pass *analysis.Pass, dir string) (*loader.EscapeSet, error) {
	mainPkg := pass.Pkg.Name() == "main"
	if pass.Prog == nil {
		return loader.Escapes(dir, mainPkg)
	}
	if set, ok := pass.Prog.Cache[cacheKey{dir}].(*loader.EscapeSet); ok {
		return set, nil
	}
	set, err := loader.Escapes(dir, mainPkg)
	if err != nil {
		return nil, err
	}
	pass.Prog.Cache[cacheKey{dir}] = set
	return set, nil
}

func parseBudget(args string) (int, string) {
	val, ok := strings.CutPrefix(strings.TrimSpace(args), "allocs=")
	if !ok {
		return 0, "want allocs=<n>"
	}
	n, err := strconv.Atoi(strings.TrimSpace(val))
	if err != nil || n < 0 {
		return 0, "allocs wants a non-negative integer"
	}
	return n, ""
}
