// Package altpriv implements the two alternative location-privacy
// mechanisms the paper surveys in Section 2.1 and argues against adopting:
//
//   - false dummies (Kido et al., cited as [31]): every update sends n
//     locations of which one is real, so the server cannot tell which;
//   - landmark objects (Hong & Landay, cited as [25]): the user reports the
//     nearest landmark instead of her position.
//
// They are implemented as honest baselines so the experiments can compare
// their privacy (under the same adversary machinery as the cloaking
// algorithms) and their service cost against spatial k-anonymity — the
// comparison the paper makes qualitatively when it says these techniques
// "lack scalability and query processing" support.
package altpriv

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/rtree"
)

// DummyReport is one false-dummies location report: N locations, exactly
// one of which is the user's true position. The real index is NOT part of
// the report (the server never learns it); it is returned separately to
// the caller so experiments can evaluate adversaries with ground truth.
type DummyReport struct {
	Locations []geo.Point
}

// DummyGenerator produces dummy reports with a private reproducible
// stream. Dummies perform a random walk so that consecutive reports stay
// plausible (naive independent dummies are trivially filtered by a motion
// model, which the tracking experiment demonstrates).
type DummyGenerator struct {
	world geo.Rect
	n     int
	src   *rng.Source
	// walk state per user: previous dummy positions keyed by user id.
	state map[uint64][]geo.Point
	// step is the per-update walk step bound, mirroring user speed.
	step float64
}

// NewDummyGenerator builds a generator emitting n-point reports (n ≥ 2;
// one true location + n−1 dummies) whose dummies move at most step per
// update.
func NewDummyGenerator(world geo.Rect, n int, step float64, seed uint64) (*DummyGenerator, error) {
	if n < 2 {
		return nil, fmt.Errorf("altpriv: dummy count %d must be ≥ 2", n)
	}
	if !world.Valid() || world.Area() <= 0 {
		return nil, fmt.Errorf("altpriv: invalid world %v", world)
	}
	if step <= 0 {
		return nil, fmt.Errorf("altpriv: non-positive step %g", step)
	}
	return &DummyGenerator{
		world: world,
		n:     n,
		src:   rng.New(seed),
		state: make(map[uint64][]geo.Point),
		step:  step,
	}, nil
}

// Report produces the next report for a user at loc and the index of the
// true location within it. The true location's slot is re-randomized every
// update so position within the report carries no signal.
func (g *DummyGenerator) Report(id uint64, loc geo.Point) (DummyReport, int) {
	dummies, ok := g.state[id]
	if !ok {
		dummies = make([]geo.Point, g.n-1)
		for i := range dummies {
			dummies[i] = geo.Pt(
				g.src.Range(g.world.Min.X, g.world.Max.X),
				g.src.Range(g.world.Min.Y, g.world.Max.Y),
			)
		}
	} else {
		for i := range dummies {
			dummies[i] = g.world.ClampPoint(geo.Pt(
				dummies[i].X+g.src.Range(-g.step, g.step),
				dummies[i].Y+g.src.Range(-g.step, g.step),
			))
		}
	}
	g.state[id] = dummies

	trueIdx := g.src.Intn(g.n)
	report := DummyReport{Locations: make([]geo.Point, 0, g.n)}
	for i := 0; i < g.n; i++ {
		switch {
		case i == trueIdx:
			report.Locations = append(report.Locations, loc)
		case i < trueIdx:
			report.Locations = append(report.Locations, dummies[i])
		default:
			report.Locations = append(report.Locations, dummies[i-1])
		}
	}
	return report, trueIdx
}

// Forget drops a user's dummy walk state (deregistration).
func (g *DummyGenerator) Forget(id uint64) { delete(g.state, id) }

// Landmarks reports the nearest landmark instead of the exact location.
// Privacy comes from the quantization: all users near a landmark are
// indistinguishable. Unlike k-anonymity, the guarantee is population-
// independent — a user alone in a rural cell is NOT protected, which is
// one of the failure modes the experiments quantify.
type Landmarks struct {
	index *rtree.Tree
	pts   []geo.Point
}

// NewLandmarks builds the snapping structure over the landmark set.
func NewLandmarks(landmarks []geo.Point) (*Landmarks, error) {
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("altpriv: empty landmark set")
	}
	cp := append([]geo.Point(nil), landmarks...)
	return &Landmarks{index: rtree.FromPoints(cp), pts: cp}, nil
}

// Len returns the number of landmarks.
func (l *Landmarks) Len() int { return len(l.pts) }

// Snap returns the landmark reported for a user at loc.
func (l *Landmarks) Snap(loc geo.Point) geo.Point {
	it, ok := l.index.NearestOne(loc)
	if !ok {
		return loc
	}
	return it.Loc
}

// CellOf returns the index of the landmark nearest to loc — the implicit
// Voronoi cell the user's report reveals.
func (l *Landmarks) CellOf(loc geo.Point) int {
	it, _ := l.index.NearestOne(loc)
	for i, p := range l.pts {
		if p.Eq(it.Loc) {
			return i
		}
	}
	return -1
}
