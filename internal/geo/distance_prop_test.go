package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleRect deterministically samples points of a rect from two fractions.
func sampleRect(r Rect, fx, fy float64) Point {
	return Pt(r.Min.X+fx*r.Width(), r.Min.Y+fy*r.Height())
}

// fracs turns arbitrary uint16 fuzz into [0,1] fractions.
func fracs(raw uint16) float64 { return float64(raw) / 65535 }

// Property: MinDistRects is a true lower bound and MaxDistRects a true
// upper bound on the distance between any sampled pair of points.
func TestPropRectDistanceEnvelopes(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64, sa, sb [4]uint16) bool {
		r, ok := clampRect(a0, a1, a2, a3)
		if !ok {
			return true
		}
		s, ok := clampRect(b0, b1, b2, b3)
		if !ok {
			return true
		}
		lo := MinDistRects(r, s)
		hi := MaxDistRects(r, s)
		if lo > hi+1e-9 {
			return false
		}
		for i := 0; i < 2; i++ {
			p := sampleRect(r, fracs(sa[2*i]), fracs(sa[2*i+1]))
			q := sampleRect(s, fracs(sb[2*i]), fracs(sb[2*i+1]))
			d := p.Dist(q)
			if d < lo-1e-6 || d > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: MinMaxDist is attainable — there exists a point x in q whose
// max distance to c equals the bound (we verify the closed-form minimizer
// and that corners never beat it).
func TestPropMinMaxDistAttained(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64) bool {
		q, ok := clampRect(a0, a1, a2, a3)
		if !ok {
			return true
		}
		c, ok := clampRect(b0, b1, b2, b3)
		if !ok {
			return true
		}
		bound := MinMaxDist(q, c)
		// The minimizer's own max distance equals the bound.
		x := q.ClampPoint(c.Center())
		if math.Abs(MaxDist(x, c)-bound) > 1e-9 {
			return false
		}
		// No corner of q does better.
		for _, corner := range q.Corners() {
			if MaxDist(corner, c) < bound-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Expand is monotone in its argument and MinDist to an expanded
// rect shrinks by at most the expansion.
func TestPropExpandMonotone(t *testing.T) {
	f := func(x0, y0, x1, y1, d1Raw, d2Raw, px, py float64) bool {
		r, ok := clampRect(x0, y0, x1, y1)
		if !ok {
			return true
		}
		p, ok := clampPt(px, py)
		if !ok {
			return true
		}
		d1 := math.Mod(math.Abs(d1Raw), 10)
		d2 := math.Mod(math.Abs(d2Raw), 10)
		if math.IsNaN(d1) || math.IsNaN(d2) {
			return true
		}
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		e1, e2 := r.Expand(d1), r.Expand(d2)
		if !e2.ContainsRect(e1) {
			return false
		}
		// Triangle-style bound: expanding by d cannot reduce the distance
		// from p by more than d√2 (corner-wise L∞ growth).
		before := MinDist(p, r)
		after := MinDist(p, e1)
		return after >= before-d1*math.Sqrt2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: OverlapArea is bounded by both areas, and equals the area of
// the Intersect rectangle when one exists.
func TestPropOverlapAreaConsistent(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64) bool {
		r, ok := clampRect(a0, a1, a2, a3)
		if !ok {
			return true
		}
		s, ok := clampRect(b0, b1, b2, b3)
		if !ok {
			return true
		}
		ov := r.OverlapArea(s)
		if ov < 0 || ov > r.Area()+1e-9 || ov > s.Area()+1e-9 {
			return false
		}
		if inter, has := r.Intersect(s); has {
			return math.Abs(ov-inter.Area()) < 1e-9
		}
		return ov == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
