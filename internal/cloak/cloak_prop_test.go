package cloak

import (
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
)

// Skewed (Zipf) populations are the adversarial case for space-dependent
// cloaking: hotspot cells are dense, tail cells nearly empty, forcing long
// merge chains. The invariants must hold regardless.
func TestPropGridCloakUnderZipfSkew(t *testing.T) {
	f := func(seed uint64, kRaw uint8, levelRaw uint8, userRaw uint16) bool {
		k := int(kRaw%80) + 2
		level := int(levelRaw%4) + 3 // levels 3..6
		_, pyr, pts := population(t, 1200, mobility.ZipfClusters, seed)
		uid := uint64(int(userRaw)%len(pts)) + 1
		loc := pts[uid-1]
		g := &Grid{Pyr: pyr, Level: level}
		res := g.Cloak(uid, loc, privacy.Requirement{K: k})
		if !res.Region.Contains(loc) {
			return false
		}
		if got := bruteCount(pts, res.Region); got != res.K {
			return false
		}
		// k ≤ population, so it must be satisfiable and satisfied.
		return res.SatisfiedK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// MBR cloaking under skew: the region is exactly the bounding box of the
// k-nearest set, so its reported K can exceed k (other users fall inside)
// but never goes below.
func TestPropMBRCloakCountLowerBound(t *testing.T) {
	f := func(seed uint64, kRaw uint8, userRaw uint16) bool {
		k := int(kRaw%60) + 1
		pop, _, pts := population(t, 900, mobility.ZipfClusters, seed)
		uid := uint64(int(userRaw)%len(pts)) + 1
		m := &MBR{Pop: pop}
		res := m.Cloak(uid, pts[uid-1], privacy.Requirement{K: k})
		return res.K >= k && res.SatisfiedK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Incremental cloaking never returns a region violating the active
// requirement when the validator is sound, across random micro-movements.
func TestPropIncrementalAlwaysValid(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%40) + 2
		_, pyr, pts := population(t, 1000, mobility.Gaussian, seed)
		validate := func(region geo.Rect, req privacy.Requirement) (int, bool) {
			n := bruteCount(pts, region)
			return n, n >= req.K
		}
		inc := NewIncremental(&Quadtree{Pyr: pyr}, validate)
		req := privacy.Requirement{K: k}
		uid := uint64(7)
		loc := pts[uid-1]
		for step := 0; step < 15; step++ {
			res := inc.Cloak(uid, loc, req)
			if !res.Region.Contains(loc) {
				return false
			}
			if bruteCount(pts, res.Region) < k {
				return false
			}
			// Drift.
			loc = geo.R(0, 0, 1, 1).ClampPoint(geo.Pt(loc.X+0.003, loc.Y-0.002))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
