// Command lbsrouter runs the spatially-partitioned routing tier: a thin
// server that spreads one logical privacy-aware database over N lbsd
// shards. Space is cut into a grid of tiles, tiles are assigned to
// shards by consistent hashing, and every request is scattered to
// exactly the shards whose tiles its rectangle intersects, then gathered
// back through the same combination rules the single server uses — so
// clients dial a router exactly as they dial one lbsd and read
// bit-identical answers.
//
// Shard links carry per-call deadlines, bounded retries with jittered
// backoff, and a failure breaker, so one dead shard degrades only the
// queries touching its tiles. With -max-inflight set, the router sheds
// load at the edge with typed overload rejections before the fan-out
// amplifies it.
//
// Usage:
//
//	lbsrouter -addr :7080 -shards 127.0.0.1:7070,127.0.0.1:7071 -world 1.0
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/router"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":7080", "listen address")
	shardList := flag.String("shards", "", "comma-separated lbsd shard addresses (required)")
	worldSize := flag.Float64("world", 1.0, "world is the square [0,size]², identical to every shard's")
	tiles := flag.Int("tiles", 0, "grid resolution per axis (0 = default 16)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default 64)")
	callTimeout := flag.Duration("call-timeout", 2*time.Second, "per-call deadline on shard links")
	retries := flag.Int("retries", 2, "transport retries per idempotent shard call")
	breakAfter := flag.Int("break-after", 5, "consecutive shard-link failures before the breaker opens (0 = no breaker)")
	breakCooldown := flag.Duration("break-cooldown", 500*time.Millisecond, "breaker open duration before a probe")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	maxConns := flag.Int("max-conns", 0, "max concurrent client connections (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "admission budget: max in-flight requests before typed overload rejection, queries capped at half (0 = unlimited)")
	readTimeout := flag.Duration("read-timeout", 0, "drop connections idle for this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Second, "grace for in-flight requests on shutdown")
	traceSample := flag.Float64("trace-sample", 0, "fraction of traced requests to record spans for (0 = tracing off, 1 = all)")
	traceSlow := flag.Duration("trace-slow", 0, "pin spans at least this slow in the slow-trace ring regardless of ring wraparound (0 = off)")
	flag.Parse()

	if *shardList == "" {
		log.Fatalf("lbsrouter: -shards is required (comma-separated lbsd addresses)")
	}
	var addrs []string
	for _, a := range strings.Split(*shardList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 || len(addrs) > router.MaxShards {
		log.Fatalf("lbsrouter: need between 1 and %d shard addresses, got %d", router.MaxShards, len(addrs))
	}

	reg := obs.NewRegistry()
	obs.EnableRuntimeMetrics(reg)
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{
			Process:       "lbsrouter",
			Sample:        *traceSample,
			SlowThreshold: *traceSlow,
		})
		log.Printf("lbsrouter: tracing %.3g of traced requests (slow threshold %v)", *traceSample, *traceSlow)
	}

	dialOpts := []protocol.DialOption{
		protocol.WithLazyDial(),
		protocol.WithCallTimeout(*callTimeout),
		protocol.WithRetries(*retries),
		protocol.WithClientMetrics(reg),
		protocol.WithClientTracing(tracer),
	}
	if *breakAfter > 0 {
		dialOpts = append(dialOpts, protocol.WithBreaker(*breakAfter, *breakCooldown))
	}
	links := make([]router.Shard, len(addrs))
	for i, a := range addrs {
		link, err := protocol.DialDatabase(a, dialOpts...)
		if err != nil {
			log.Fatalf("lbsrouter: shard %d (%s): %v", i, a, err)
		}
		defer link.Close()
		links[i] = link
	}

	rt, err := router.New(router.Config{
		World:   geo.R(0, 0, *worldSize, *worldSize),
		Shards:  links,
		Addrs:   addrs,
		Tiles:   *tiles,
		VNodes:  *vnodes,
		Metrics: reg,
		Tracer:  tracer,
	})
	if err != nil {
		log.Fatalf("lbsrouter: %v", err)
	}

	svcOpts := []protocol.Option{protocol.WithMetrics(reg),
		protocol.WithTracing(tracer),
		protocol.WithMaxConns(*maxConns),
		protocol.WithReadTimeout(*readTimeout),
		protocol.WithDrainTimeout(*drainTimeout)}
	if *maxInflight > 0 {
		svcOpts = append(svcOpts, protocol.WithAdmission(*maxInflight))
		log.Printf("lbsrouter: admission control on (budget %d in-flight)", *maxInflight)
	}
	svc, err := protocol.ServeRouter(*addr, rt, log.Printf, svcOpts...)
	if err != nil {
		log.Fatalf("lbsrouter: %v", err)
	}
	log.Printf("lbsrouter: routing tier listening on %s over %d shards (world %.3g², %d tiles)",
		svc.Addr(), len(addrs), *worldSize, len(rt.Topology().Owners))

	var metricsSrv *obs.MetricsServer
	if *metricsAddr != "" {
		metricsSrv, err = obs.ServeMetrics(*metricsAddr, reg,
			obs.Route{Pattern: "/traces", Handler: tracer.Handler()})
		if err != nil {
			log.Fatalf("lbsrouter: metrics endpoint: %v", err)
		}
		log.Printf("lbsrouter: metrics on http://%s/metrics (traces on /traces, pprof under /debug/pprof/)", metricsSrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("lbsrouter: shutting down")
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	if err := svc.Close(); err != nil {
		log.Printf("lbsrouter: close: %v", err)
	}
}
