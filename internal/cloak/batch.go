package cloak

import (
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/pyramid"
)

// Request is one user's cloaking request in a batch.
type Request struct {
	ID  uint64
	Loc geo.Point
	Req privacy.Requirement
}

// BatchQuadtree performs the Section 5.3 shared execution over the
// space-dependent quadtree cloaker: users that fall into the same bottom
// pyramid cell with the same requirement share one descent. In a typical
// workload the number of distinct (cell, requirement) pairs is far smaller
// than the number of users, so one pass serves everybody.
type BatchQuadtree struct {
	Pyr *pyramid.Pyramid
}

// batchKey identifies a shareable unit of work.
type batchKey struct {
	cell pyramid.Cell
	req  privacy.Requirement
}

// CloakAll cloaks every request, sharing computation between users in the
// same bottom cell with the same requirement. Results are returned in
// request order. SharedHits reports how many requests were served from a
// previously computed descent in this batch.
func (b *BatchQuadtree) CloakAll(reqs []Request) (results []Result, sharedHits int) {
	results = make([]Result, len(reqs))
	memo := make(map[batchKey]Result, len(reqs)/2+1)
	q := &Quadtree{Pyr: b.Pyr}
	bottom := b.Pyr.Height() - 1
	for i, r := range reqs {
		key := batchKey{cell: b.Pyr.CellAt(bottom, r.Loc), req: r.Req}
		if res, ok := memo[key]; ok {
			results[i] = res
			sharedHits++
			continue
		}
		res := q.Cloak(r.ID, r.Loc, r.Req)
		memo[key] = res
		results[i] = res
	}
	return results, sharedHits
}
