package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/server"
)

// The database-server benchmark harness behind E17 — the query-side twin
// of E16's anonymizer harness. Schema v2 measures the CLIENT-VISIBLE
// path: every query travels through a real TCP DatabaseClient to a live
// database service, per-query mode paying one wire round trip per query
// and batch mode one MsgBatchQuery frame per 64 entries. That is the
// deployment the paper's shared-execution argument is about — the
// anonymizer forwards whole batches, so the framing, syscall and
// dispatch overhead of a query is exactly what batching amortizes — and
// it is where the committed baseline proves the headline claim: batch
// with workers beats per-query by ≥ -bench-min-speedup at
// GOMAXPROCS ≥ 4 (the CI gate).
//
// The harness runs the whole GOMAXPROCS matrix in-process (schema v2
// stores one entry set per GOMAXPROCS value), so a single run produces
// the full per-proc report; comparisons gate the pinned procs {1, 4}
// within tolerance and report the rest informationally. With -bench-out
// the experiment writes BENCH_server.json; with -bench-compare it loads
// a committed baseline and exits 1 on any regression.
type serverBenchReport struct {
	Schema    string            `json:"schema"`
	NumCPU    int               `json:"numcpu"`
	GoVersion string            `json:"go"`
	Users     int               `json:"users"`
	Objects   int               `json:"objects"`
	Procs     []serverBenchProc `json:"procs"`
}

type serverBenchProc struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Entries    []serverBenchEntry `json:"entries"`
	// SpeedupBatch4 is batch/workers=4 queries/sec over perquery
	// queries/sec at this GOMAXPROCS — the portable headline ratio the
	// ≥2× gate reads.
	SpeedupBatch4 float64 `json:"speedup_batch4"`
}

type serverBenchEntry struct {
	Mode          string  `json:"mode"` // "perquery" or "batch"
	Workers       int     `json:"workers"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	SharedHitPct  float64 `json:"shared_hit_pct,omitempty"`
}

// benchProcs is the GOMAXPROCS matrix every v2 harness measures, and
// benchPinnedProcs the subset whose baseline comparison is a hard gate —
// the rest are informational (their numbers mean little until the runner
// actually has that many cores).
var (
	benchProcs       = []int{1, 4, 8, 16}
	benchPinnedProcs = map[int]bool{1: true, 4: true}
)

// serverBenchMix generates one clustered mixed batch so overlap groups —
// and therefore shared descents — actually form, mirroring many users
// querying the same hot neighborhood. Query cloaks are small (half-size
// 0.001–0.005 on the unit world): the common LBS case is a point-ish
// query hidden inside a modest cloak, whose index work is a few
// microseconds — so the per-call wire overhead (framing, two syscalls
// per side, dispatch) is the dominant cost per query, which is exactly
// the cost one batch frame amortizes over 64 entries. Large-cloak
// regimes, where index work dominates instead, are covered by E9.
func serverBenchMix(src *rng.Source, n int) []server.BatchEntry {
	centers := make([]geo.Point, 5)
	for i := range centers {
		centers[i] = geo.Pt(src.Range(0.15, 0.85), src.Range(0.15, 0.85))
	}
	entries := make([]server.BatchEntry, n)
	for i := range entries {
		c := centers[src.Intn(len(centers))]
		p := world.ClampPoint(geo.Pt(c.X+src.Range(-0.08, 0.08), c.Y+src.Range(-0.08, 0.08)))
		r := geo.RectAround(p, 0.001+0.004*src.Float64()).Clip(world)
		switch src.Intn(5) {
		case 0, 1:
			entries[i] = server.BatchEntry{Kind: server.BatchPrivateRange,
				Range: server.PrivateRangeQuery{Region: r, Radius: 0.006 * src.Float64(), Class: "poi"}}
		case 2, 3:
			entries[i] = server.BatchEntry{Kind: server.BatchPublicCount,
				Count: server.PublicRangeCountQuery{Query: r}}
		default:
			entries[i] = server.BatchEntry{Kind: server.BatchPrivateNN,
				NN: server.PrivateNNQuery{Region: r, Class: "poi"}}
		}
	}
	return entries
}

// buildBenchServer loads the benchmark population into a fresh server.
func buildBenchServer(cfg benchConfig, workers int) *server.Server {
	s, err := server.New(server.Config{World: world, QueryWorkers: workers})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	objPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: cfg.objs, World: world, Dist: mobility.Uniform, Seed: cfg.seed + 1,
	})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	objs := make([]server.PublicObject, len(objPts))
	for i, p := range objPts {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "poi", Loc: p}
	}
	if err := s.LoadStationary(objs); err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	userPts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: cfg.n, World: world, Dist: mobility.Gaussian, Seed: cfg.seed,
	})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	src := rng.New(cfg.seed + 7)
	for i, p := range userPts {
		reg := geo.RectAround(p, 0.005+0.03*src.Float64()).Clip(world)
		if err := s.UpdatePrivate(uint64(i+1), reg); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
	}
	return s
}

// expServerBatch measures the shared-execution batch engine through the
// wire: queries/sec for the per-query client baseline and for BatchQuery
// at worker counts 1, 4, 8, across the GOMAXPROCS matrix, over identical
// clustered query mixes on identical data.
func expServerBatch(cfg benchConfig) {
	const (
		rounds     = 400 // batches per measured pass — long enough to damp scheduler noise
		batchSize  = 64
		warmRounds = 100 // untimed pass that warms caches, pools and the TCP path
		passes     = 3   // measured passes; the best one is recorded
	)
	fmt.Printf("%d private users, %d public objects, best of %d × %d rounds of %d-entry batches over TCP, GOMAXPROCS ∈ %v\n\n",
		cfg.n, cfg.objs, passes, rounds, batchSize, benchProcs)

	report := serverBenchReport{
		Schema:    "server-batch-bench/v2",
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Users:     cfg.n,
		Objects:   cfg.objs,
	}

	type series struct {
		mode    string
		workers int
	}
	grid := []series{
		{"perquery", 1},
		{"batch", 1},
		{"batch", 4},
		{"batch", 8},
	}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	t := newTable("gomaxprocs", "mode", "workers", "queries/sec", "shared hits %", "vs perquery")
	for _, procs := range benchProcs {
		runtime.GOMAXPROCS(procs)
		proc := serverBenchProc{GoMaxProcs: procs}
		var base float64 // this proc's perquery reference
		for _, sr := range grid {
			s := buildBenchServer(cfg, sr.workers)
			svc, err := protocol.ServeDatabase("127.0.0.1:0", s, nil)
			if err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
			dc, err := protocol.DialDatabase(svc.Addr(), protocol.WithCallTimeout(30*time.Second))
			if err != nil {
				log.Fatalf("lbsbench: %v", err)
			}
			src := rng.New(cfg.seed + 99)
			batches := make([][]server.BatchEntry, rounds)
			for r := range batches {
				batches[r] = serverBenchMix(src, batchSize)
			}
			runPass := func(bs [][]server.BatchEntry) (time.Duration, int) {
				shared := 0
				t0 := time.Now()
				for _, entries := range bs {
					if sr.mode == "perquery" {
						for _, e := range entries {
							var err error
							switch e.Kind {
							case server.BatchPrivateRange:
								_, err = dc.PrivateRange(e.Range)
							case server.BatchPrivateNN:
								_, err = dc.PrivateNN(e.NN)
							case server.BatchPublicCount:
								_, err = dc.PublicCount(e.Count.Query)
							}
							if err != nil {
								log.Fatalf("lbsbench: %v", err)
							}
						}
					} else {
						res, err := dc.BatchQuery(entries)
						if err != nil {
							log.Fatalf("lbsbench: %v", err)
						}
						shared += res.SharedHits
					}
				}
				return time.Since(t0), shared
			}
			runPass(batches[:warmRounds])
			best, sharedHits := runPass(batches)
			for p := 1; p < passes; p++ {
				if d, _ := runPass(batches); d < best {
					best = d
				}
			}
			dc.Close()
			svc.Close()
			entriesRun := rounds * batchSize
			qps := float64(entriesRun) / best.Seconds()
			sharedPct := 100 * float64(sharedHits) / float64(entriesRun)
			speedup := 0.0
			if sr.mode == "perquery" {
				base = qps
			} else if base > 0 {
				speedup = qps / base
			}
			if speedup > 0 {
				t.row(procs, sr.mode, sr.workers, qps, sharedPct, fmt.Sprintf("%.2fx", speedup))
			} else {
				t.row(procs, sr.mode, sr.workers, qps, sharedPct, "1.00x")
			}
			proc.Entries = append(proc.Entries, serverBenchEntry{
				Mode: sr.mode, Workers: sr.workers,
				QueriesPerSec: qps, SharedHitPct: sharedPct,
			})
			if sr.mode == "batch" && sr.workers == 4 && base > 0 {
				proc.SpeedupBatch4 = qps / base
			}
		}
		report.Procs = append(report.Procs, proc)
	}
	t.flush()
	runtime.GOMAXPROCS(prevProcs)

	for _, proc := range report.Procs {
		if proc.GoMaxProcs == 4 {
			fmt.Printf("\nbatch/workers=4 over per-query at GOMAXPROCS=4: %.2fx (gate: ≥ %.2fx)\n",
				proc.SpeedupBatch4, benchMinSpeedup)
		}
	}
	fmt.Println("\nreading: per-query mode pays one wire round trip — frame encode, two")
	fmt.Println("syscalls per side, dispatch — per query; a batch frame pays it once per")
	fmt.Println("64 queries, and inside the server overlapping rectangles collapse into")
	fmt.Println("one shared index descent per group (SINA-style shared execution) fanned")
	fmt.Println("over the worker pool under a single frozen snapshot. Answers are")
	fmt.Println("bit-identical to the sequential path at every worker count and every")
	fmt.Println("GOMAXPROCS (differential suites).")

	benchRegressions = append(benchRegressions, checkServerSpeedupGate(report, benchMinSpeedup)...)
	if benchOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		if err := os.WriteFile(benchOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", benchOut)
	}
	if benchCompare != "" {
		raw, err := os.ReadFile(benchCompare)
		if err != nil {
			log.Fatalf("lbsbench: baseline: %v", err)
		}
		var base serverBenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			log.Fatalf("lbsbench: baseline %s: %v", benchCompare, err)
		}
		fmt.Printf("\nbaseline %s (numcpu=%d, %s), tolerance %.0f%%, min speedup %.2fx:\n",
			benchCompare, base.NumCPU, base.GoVersion, 100*benchTolerance, benchMinSpeedup)
		benchRegressions = append(benchRegressions,
			compareServerBench(cur(report), base, benchTolerance, benchMinSpeedup)...)
	}
}

// cur is the identity on reports; it only names the argument at the call
// site so the current-vs-baseline order is impossible to misread.
func cur(r serverBenchReport) serverBenchReport { return r }

// checkServerSpeedupGate enforces the headline claim on a report: at
// every pinned GOMAXPROCS ≥ 4, batch/workers=4 must beat per-query by at
// least minSpeedup. It runs on the current report whether writing a
// baseline or comparing against one — a baseline that cannot prove the
// claim must never be committed.
func checkServerSpeedupGate(r serverBenchReport, minSpeedup float64) []string {
	var regs []string
	for _, proc := range r.Procs {
		if proc.GoMaxProcs < 4 || !benchPinnedProcs[proc.GoMaxProcs] {
			continue
		}
		if proc.SpeedupBatch4 < minSpeedup {
			regs = append(regs, fmt.Sprintf(
				"gomaxprocs=%d: batch/workers=4 is %.2fx per-query, below the %.2fx shared-execution gate",
				proc.GoMaxProcs, proc.SpeedupBatch4, minSpeedup))
		}
	}
	return regs
}

// checkBenchEnv guards a baseline comparison's validity: throughput from
// a different physical core count is not comparable — the per-proc
// series measure scaling against exactly that hardware — so a NumCPU
// mismatch is a hard failure for every harness, never a warning. (The
// GOMAXPROCS dimension no longer needs an environment check: the v2
// harnesses set it per series themselves.)
func checkBenchEnv(baseCPU, curCPU int) []string {
	if baseCPU != 0 && baseCPU != curCPU {
		return []string{fmt.Sprintf(
			"environment mismatch: %d CPUs vs baseline's %d — per-proc scaling numbers from different machines are not comparable; regenerate the baseline with -bench-out",
			curCPU, baseCPU)}
	}
	return nil
}

// compareServerBench checks the current report against the committed
// baseline: environment and workload must match exactly, pinned procs
// {1, 4} are tolerance-gated per series, other procs are informational,
// and both reports must clear the shared-execution speedup gate.
func compareServerBench(cur, base serverBenchReport, tolerance, minSpeedup float64) []string {
	var regs []string
	regs = append(regs, checkBenchEnv(base.NumCPU, cur.NumCPU)...)
	if base.Users != cur.Users || base.Objects != cur.Objects {
		regs = append(regs, fmt.Sprintf(
			"workload mismatch: %d users / %d objects vs baseline %d / %d — rerun with -n %d -objs %d or regenerate the baseline",
			cur.Users, cur.Objects, base.Users, base.Objects, base.Users, base.Objects))
	}
	lookup := map[string]float64{}
	for _, proc := range cur.Procs {
		for _, e := range proc.Entries {
			lookup[fmt.Sprintf("procs=%d/%s/workers=%d", proc.GoMaxProcs, e.Mode, e.Workers)] = e.QueriesPerSec
		}
	}
	// The committed baseline itself must prove the headline claim.
	regs = append(regs, prefixAll("baseline ", checkServerSpeedupGate(base, minSpeedup))...)
	for _, proc := range base.Procs {
		pinned := benchPinnedProcs[proc.GoMaxProcs]
		for _, e := range proc.Entries {
			key := fmt.Sprintf("procs=%d/%s/workers=%d", proc.GoMaxProcs, e.Mode, e.Workers)
			got, ok := lookup[key]
			if !ok {
				if pinned {
					regs = append(regs, key+": missing from current run")
				}
				continue
			}
			if !pinned {
				fmt.Printf("  %-32s baseline %10.0f  current %10.0f  info\n", key, e.QueriesPerSec, got)
				continue
			}
			floor := e.QueriesPerSec * (1 - tolerance)
			verdict := "ok"
			if got < floor {
				verdict = "REGRESSION"
				regs = append(regs, fmt.Sprintf(
					"%s: %.0f queries/sec < %.0f (baseline %.0f − %.0f%%)",
					key, got, floor, e.QueriesPerSec, 100*tolerance))
			}
			fmt.Printf("  %-32s baseline %10.0f  current %10.0f  %s\n", key, e.QueriesPerSec, got, verdict)
		}
	}
	return regs
}

// prefixAll prepends p to every string in the slice.
func prefixAll(p string, in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = p + s
	}
	return out
}
