package server

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

func TestContinuousPrivateRangeLifecycle(t *testing.T) {
	s := newServer(t)
	region := geo.R(0.4, 0.4, 0.5, 0.5)
	id, err := s.RegisterContinuousPrivateRange(region, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.ContinuousPrivateQueryCount() != 1 {
		t.Error("query count")
	}
	got, ok := s.ContinuousPrivateRange(id)
	if !ok || len(got) != 0 {
		t.Errorf("initial candidates = %v, %v", got, ok)
	}
	if !s.UnregisterContinuousPrivateRange(id) || s.UnregisterContinuousPrivateRange(id) {
		t.Error("unregister misbehaved")
	}
	if _, ok := s.ContinuousPrivateRange(id); ok {
		t.Error("read after unregister")
	}
	// Validation.
	if _, err := s.RegisterContinuousPrivateRange(geo.Rect{Min: geo.Pt(1, 1)}, 0.1); err == nil {
		t.Error("invalid region accepted")
	}
	if _, err := s.RegisterContinuousPrivateRange(region, -1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestContinuousPrivateRangeSeesExistingMoving(t *testing.T) {
	s := newServer(t)
	s.UpdateMoving(1, geo.Pt(0.45, 0.45)) // inside the future filter
	s.UpdateMoving(2, geo.Pt(0.9, 0.9))   // far away
	id, err := s.RegisterContinuousPrivateRange(geo.R(0.4, 0.4, 0.5, 0.5), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.ContinuousPrivateRange(id)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("initial candidates = %v", got)
	}
}

func TestContinuousPrivateRangeTracksMovement(t *testing.T) {
	s := newServer(t)
	region := geo.R(0.4, 0.4, 0.5, 0.5)
	id, _ := s.RegisterContinuousPrivateRange(region, 0.05)

	// Enter the filter.
	s.UpdateMoving(7, geo.Pt(0.45, 0.42))
	got, _ := s.ContinuousPrivateRange(id)
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("after enter: %v", got)
	}
	// Move within.
	s.UpdateMoving(7, geo.Pt(0.46, 0.43))
	got, _ = s.ContinuousPrivateRange(id)
	if len(got) != 1 || !got[0].Loc.Eq(geo.Pt(0.46, 0.43)) {
		t.Fatalf("after inner move: %v", got)
	}
	// Leave.
	s.UpdateMoving(7, geo.Pt(0.9, 0.9))
	got, _ = s.ContinuousPrivateRange(id)
	if len(got) != 0 {
		t.Fatalf("after leave: %v", got)
	}
	// Come back and then disappear.
	s.UpdateMoving(7, geo.Pt(0.44, 0.44))
	s.RemoveMoving(7)
	got, _ = s.ContinuousPrivateRange(id)
	if len(got) != 0 {
		t.Fatalf("after removal: %v", got)
	}
}

func TestContinuousPrivateRangeMove(t *testing.T) {
	s := newServer(t)
	s.UpdateMoving(1, geo.Pt(0.2, 0.2))
	s.UpdateMoving(2, geo.Pt(0.8, 0.8))
	id, _ := s.RegisterContinuousPrivateRange(geo.R(0.15, 0.15, 0.25, 0.25), 0.02)
	got, _ := s.ContinuousPrivateRange(id)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("before move: %v", got)
	}
	// The user's new cloaked region is across the map.
	if err := s.MoveContinuousPrivateRange(id, geo.R(0.75, 0.75, 0.85, 0.85)); err != nil {
		t.Fatal(err)
	}
	got, _ = s.ContinuousPrivateRange(id)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("after move: %v", got)
	}
	// Maintenance still works at the new anchor.
	s.UpdateMoving(2, geo.Pt(0.1, 0.1))
	got, _ = s.ContinuousPrivateRange(id)
	if len(got) != 0 {
		t.Fatalf("after object left new filter: %v", got)
	}
	if err := s.MoveContinuousPrivateRange(999, geo.R(0, 0, 0.1, 0.1)); err == nil {
		t.Error("move of unknown query accepted")
	}
	if err := s.MoveContinuousPrivateRange(id, geo.Rect{Min: geo.Pt(1, 1)}); err == nil {
		t.Error("invalid region accepted")
	}
}

// The maintained set must always equal a fresh range computation — the
// continuous-private analogue of I10 — under random churn.
func TestContinuousPrivateMatchesFreshUnderChurn(t *testing.T) {
	s := newServer(t)
	src := rng.New(41)
	type standing struct {
		id     uint64
		filter geo.Rect
	}
	var queries []standing
	for i := 0; i < 10; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		region := geo.RectAround(c, 0.05+0.1*src.Float64()).Clip(world)
		radius := 0.02 + 0.05*src.Float64()
		id, err := s.RegisterContinuousPrivateRange(region, radius)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, standing{id: id, filter: region.Expand(radius)})
	}
	for step := 0; step < 3000; step++ {
		oid := uint64(src.Intn(100)) + 1
		if src.Float64() < 0.05 {
			s.RemoveMoving(oid)
		} else {
			s.UpdateMoving(oid, geo.Pt(src.Float64(), src.Float64()))
		}
		if step%250 != 0 {
			continue
		}
		for _, q := range queries {
			got, ok := s.ContinuousPrivateRange(q.id)
			if !ok {
				t.Fatal("query vanished")
			}
			// Fresh evaluation over the moving index.
			want := map[uint64]bool{}
			s.mu.RLock()
			for _, o := range s.moving.Search(q.filter, nil) {
				want[o.ID] = true
			}
			s.mu.RUnlock()
			if len(got) != len(want) {
				t.Fatalf("step %d query %d: maintained %d, fresh %d",
					step, q.id, len(got), len(want))
			}
			for _, o := range got {
				if !want[o.ID] {
					t.Fatalf("step %d: stale member %d", step, o.ID)
				}
			}
		}
	}
}

func BenchmarkContinuousPrivateUpdates(b *testing.B) {
	s := newServer(b)
	src := rng.New(1)
	for i := 0; i < 200; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		if _, err := s.RegisterContinuousPrivateRange(
			geo.RectAround(c, 0.05).Clip(world), 0.03); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 5000; i++ {
		s.UpdateMoving(uint64(i+1), geo.Pt(src.Float64(), src.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i%5000) + 1
		s.UpdateMoving(id, geo.Pt(src.Float64(), src.Float64()))
	}
}
