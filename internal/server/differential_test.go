package server

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

// The differential suite proves the shared-execution batch engine
// equivalent to the sequential per-query path: for every seed in
// testdata/diff_seeds.txt, one deterministic data set and query mix is
// evaluated through the public per-query methods (the reference) and
// through BatchQuery at several worker counts — including the degenerate
// workers=1 plain loop — and every per-entry result, error outcome
// included, must match bit for bit.

// diffWorkers returns the largest worker count exercised. The CI matrix
// overrides it via SRV_TEST_WORKERS.
func diffWorkers(t testing.TB) int {
	t.Helper()
	s := os.Getenv("SRV_TEST_WORKERS")
	if s == "" {
		return 8
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 || n > 64 {
		t.Fatalf("bad SRV_TEST_WORKERS=%q", s)
	}
	return n
}

// diffSeeds loads the committed seed table.
func diffSeeds(t testing.TB) []uint64 {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "diff_seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var seeds []uint64
	for ln, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			t.Fatalf("diff_seeds.txt:%d: %v", ln+1, err)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		t.Fatal("diff_seeds.txt holds no seeds")
	}
	return seeds
}

var diffClasses = []string{"", "gas", "bank"}

// buildDiffServer loads one deterministic data set for a seed: stationary
// objects of several classes, moving objects, and private users.
func buildDiffServer(t testing.TB, seed uint64) *Server {
	t.Helper()
	s := newServer(t)
	src := rng.New(seed)
	objs := make([]PublicObject, 0, 600)
	for i := 0; i < 600; i++ {
		objs = append(objs, PublicObject{
			ID:    uint64(i + 1),
			Class: diffClasses[1+src.Intn(len(diffClasses)-1)],
			Loc:   geo.Pt(src.Float64(), src.Float64()),
		})
	}
	if err := s.LoadStationary(objs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if err := s.UpdateMoving(uint64(5000+i), geo.Pt(src.Float64(), src.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		reg := geo.RectAround(c, 0.005+0.06*src.Float64()).Clip(world)
		if err := s.UpdatePrivate(uint64(i+1), reg); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// buildDiffBatch generates one deterministic mixed query batch: clustered
// rectangles (so shared descents actually form), all three query kinds,
// both range modes, class filters, and a sprinkling of invalid entries
// whose typed errors must also match the sequential path.
func buildDiffBatch(src *rng.Source, n int) []BatchEntry {
	// Cluster centers pull rectangles together so overlap groups form.
	centers := make([]geo.Point, 6)
	for i := range centers {
		centers[i] = geo.Pt(0.15+0.7*src.Float64(), 0.15+0.7*src.Float64())
	}
	entries := make([]BatchEntry, 0, n)
	for i := 0; i < n; i++ {
		c := centers[src.Intn(len(centers))]
		p := world.ClampPoint(geo.Pt(c.X+src.Range(-0.1, 0.1), c.Y+src.Range(-0.1, 0.1)))
		r := geo.RectAround(p, 0.01+0.08*src.Float64()).Clip(world)
		var e BatchEntry
		switch src.Intn(10) {
		case 0, 1, 2, 3: // private range
			e.Kind = BatchPrivateRange
			e.Range = PrivateRangeQuery{
				Region: r,
				Radius: 0.05 * src.Float64(),
				Class:  diffClasses[src.Intn(len(diffClasses))],
			}
			if src.Intn(2) == 0 {
				e.Range.Mode = RangeMBR
			}
		case 4, 5, 6: // public count
			e.Kind = BatchPublicCount
			e.Count = PublicRangeCountQuery{Query: r}
		case 7, 8: // private NN
			e.Kind = BatchPrivateNN
			e.NN = PrivateNNQuery{Region: r, Class: diffClasses[src.Intn(len(diffClasses))]}
		default: // invalid entries: the error path must match too
			switch src.Intn(3) {
			case 0:
				e.Kind = BatchPrivateRange
				e.Range = PrivateRangeQuery{Region: geo.Rect{Min: r.Max, Max: r.Min}, Radius: 0.01}
			case 1:
				e.Kind = BatchPrivateRange
				e.Range = PrivateRangeQuery{Region: r, Radius: -1}
			default:
				e.Kind = BatchPublicCount
				e.Count = PublicRangeCountQuery{Query: geo.Rect{Min: r.Max, Max: r.Min}}
			}
		}
		entries = append(entries, e)
	}
	return entries
}

// TestDifferentialBatchEqualsSequential is the core equivalence proof: all
// committed seeds × worker counts {1, 2, max}, batch vs sequential.
func TestDifferentialBatchEqualsSequential(t *testing.T) {
	maxW := diffWorkers(t)
	workerCounts := []int{1, 2, maxW}
	for _, seed := range diffSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			s := buildDiffServer(t, seed)
			src := rng.New(seed ^ 0xBA7C4)
			for round := 0; round < 3; round++ {
				entries := buildDiffBatch(src, 40)
				want := sequentialBatch(s, entries)
				var groups0, shared0 int
				for wi, w := range workerCounts {
					s.queryWorkers = w
					res := s.BatchQuery(entries)
					assertItemsEqual(t, res.Items, want)
					if wi == 0 {
						groups0, shared0 = res.Groups, res.SharedHits
					} else if res.Groups != groups0 || res.SharedHits != shared0 {
						t.Fatalf("workers=%d: grouping diverges (%d/%d vs %d/%d)",
							w, res.Groups, res.SharedHits, groups0, shared0)
					}
				}
				if shared0 == 0 {
					t.Error("clustered batch produced no shared descents")
				}
			}
		})
	}
}

// TestDifferentialAcrossGoMaxProcs re-proves batch ≡ sequential with the
// scheduler pinned to GOMAXPROCS 1 and 4 — the two pinned points of the
// bench matrix (E17). The worker fan-out must be correct whether goroutines
// truly interleave on one P or run on four; the subtests are deliberately
// serial because GOMAXPROCS is process-global.
func TestDifferentialAcrossGoMaxProcs(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			s := buildDiffServer(t, 7)
			s.queryWorkers = 4
			src := rng.New(0xD1FF)
			for round := 0; round < 3; round++ {
				entries := buildDiffBatch(src, 40)
				want := sequentialBatch(s, entries)
				res := s.BatchQuery(entries)
				assertItemsEqual(t, res.Items, want)
			}
		})
	}
}

// TestDifferentialBatchSplitInvariance: splitting a batch into chunks must
// not change any per-entry answer — only the sharing opportunity.
func TestDifferentialBatchSplitInvariance(t *testing.T) {
	s := buildDiffServer(t, 42)
	s.queryWorkers = diffWorkers(t)
	entries := buildDiffBatch(rng.New(0xC0FFEE), 60)
	whole := s.BatchQuery(entries)
	var split []BatchItemResult
	for off := 0; off < len(entries); off += 7 {
		end := off + 7
		if end > len(entries) {
			end = len(entries)
		}
		part := s.BatchQuery(entries[off:end])
		// Re-base per-entry error indices to the whole-batch frame.
		for i := range part.Items {
			if bee, ok := part.Items[i].Err.(*BatchEntryError); ok {
				part.Items[i].Err = &BatchEntryError{Index: off + bee.Index, Kind: bee.Kind, Err: bee.Err}
			}
		}
		split = append(split, part.Items...)
	}
	assertItemsEqual(t, split, whole.Items)
}
