package router

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

var testWorld = geo.R(0, 0, 1, 1)

// bruteCover is the specification cover() must match: every tile whose
// closed rectangle intersects the query's world clamp.
func bruteCover(g tileGrid, rect geo.Rect) []int {
	clamped, ok := rect.Intersect(g.world)
	if !ok {
		return nil
	}
	var out []int
	for t := 0; t < g.tiles(); t++ {
		if g.tileRect(t).Intersects(clamped) {
			out = append(out, t)
		}
	}
	return out
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCoverEqualsBruteForce: the windowed cover must equal the brute-force
// geometric specification for random cloaked rectangles — including
// degenerate points, tile-boundary-aligned edges, rectangles hanging over
// or fully outside the world, and non-square grids with awkward tile
// widths.
func TestCoverEqualsBruteForce(t *testing.T) {
	grids := []tileGrid{
		{world: testWorld, cols: 16, rows: 16},
		{world: testWorld, cols: 7, rows: 3},
		{world: geo.R(-3, 2, 11, 9), cols: 13, rows: 5},
		{world: testWorld, cols: 1, rows: 1},
	}
	src := rng.New(0x7135)
	for _, g := range grids {
		w, h := g.world.Width(), g.world.Height()
		for i := 0; i < 4000; i++ {
			var r geo.Rect
			switch src.Intn(5) {
			case 0: // random rect, possibly hanging over the world edge
				c := geo.Pt(g.world.Min.X+w*src.Range(-0.2, 1.2), g.world.Min.Y+h*src.Range(-0.2, 1.2))
				r = geo.RectAround(c, src.Float64()*0.3*w)
			case 1: // degenerate point
				p := geo.Pt(g.world.Min.X+w*src.Float64(), g.world.Min.Y+h*src.Float64())
				r = geo.Rect{Min: p, Max: p}
			case 2: // edges snapped to exact tile boundaries
				c0, c1 := src.Intn(g.cols+1), src.Intn(g.cols+1)
				r0, r1 := src.Intn(g.rows+1), src.Intn(g.rows+1)
				r = geo.R(g.xb(c0), g.yb(r0), g.xb(c1), g.yb(r1))
			case 3: // fully outside the world
				r = geo.RectAround(geo.Pt(g.world.Max.X+w, g.world.Max.Y+h), 0.1*w)
			default: // whole world and beyond
				r = g.world.Expand(w * src.Float64())
			}
			got := g.cover(r)
			want := bruteCover(g, r)
			if !eqInts(got, want) {
				t.Fatalf("grid %dx%d cover(%v) = %v, brute force %v", g.cols, g.rows, r, got, want)
			}
		}
	}
}

// TestCoverRejectsUnparseable: invalid geometry covers nothing (the
// router's shard-0 fallback reproduces the validation error instead).
func TestCoverRejectsUnparseable(t *testing.T) {
	g := tileGrid{world: testWorld, cols: 16, rows: 16}
	nan := math.NaN()
	cases := []geo.Rect{
		{Min: geo.Pt(0.8, 0.8), Max: geo.Pt(0.2, 0.2)}, // inverted
		{Min: geo.Pt(nan, 0.2), Max: geo.Pt(0.4, 0.4)}, // NaN corner
		geo.R(0.1, 0.1, 0.2, 0.2).Expand(nan),          // NaN everywhere
		geo.RectAround(geo.Pt(5, 5), 0.5),              // outside the world
	}
	for _, r := range cases {
		if got := g.cover(r); got != nil {
			t.Errorf("cover(%v) = %v, want nil", r, got)
		}
	}
	// An infinite rectangle clamps to the whole world.
	inf := geo.R(0.4, 0.4, 0.6, 0.6).Expand(math.Inf(1))
	if got := g.cover(inf); len(got) != g.tiles() {
		t.Errorf("cover(infinite) hit %d of %d tiles", len(got), g.tiles())
	}
}

// TestTileOfContainment: every world point maps to exactly one tile whose
// closed rectangle contains it, and that tile is in any cover of a
// rectangle through the point — the invariant the scatter completeness
// argument rests on.
func TestTileOfContainment(t *testing.T) {
	g := tileGrid{world: testWorld, cols: 16, rows: 16}
	src := rng.New(0x7136)
	for i := 0; i < 4000; i++ {
		var p geo.Point
		switch src.Intn(3) {
		case 0:
			p = geo.Pt(src.Float64(), src.Float64())
		case 1: // exact tile boundary crossings
			p = geo.Pt(g.xb(src.Intn(g.cols+1)), g.yb(src.Intn(g.rows+1)))
		default: // just either side of a boundary
			p = geo.Pt(
				math.Nextafter(g.xb(src.Intn(g.cols+1)), src.Float64()),
				math.Nextafter(g.yb(src.Intn(g.rows+1)), src.Float64()),
			)
		}
		p = testWorld.ClampPoint(p)
		tl := g.tileOf(p)
		if tl < 0 || tl >= g.tiles() {
			t.Fatalf("tileOf(%v) = %d out of range", p, tl)
		}
		if !g.tileRect(tl).Contains(p) {
			t.Fatalf("tileRect(tileOf(%v)) = %v does not contain the point", p, g.tileRect(tl))
		}
		r := geo.RectAround(p, 0.01)
		if !containsInt(g.cover(r), tl) {
			t.Fatalf("cover of a rect around %v misses its owning tile %d", p, tl)
		}
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TestOwnersOfFallback: rectangles with no world intersection route to
// shard 0, never to an empty set.
func TestOwnersOfFallback(t *testing.T) {
	r := newTestRouter(t, 4)
	cases := []geo.Rect{
		geo.RectAround(geo.Pt(7, 7), 0.5),
		{Min: geo.Pt(0.9, 0.9), Max: geo.Pt(0.1, 0.1)},
	}
	for _, rect := range cases {
		owners := r.ownersOf(rect)
		if len(owners) != 1 || owners[0] != 0 {
			t.Errorf("ownersOf(%v) = %v, want [0]", rect, owners)
		}
	}
}

// TestOwnersOfMatchesTileOwners: the shard set of a rectangle is exactly
// the set of owners of its geometrically intersected tiles.
func TestOwnersOfMatchesTileOwners(t *testing.T) {
	r := newTestRouter(t, 8)
	src := rng.New(0x7137)
	for i := 0; i < 2000; i++ {
		c := geo.Pt(src.Float64(), src.Float64())
		rect := geo.RectAround(c, 0.005+0.2*src.Float64()).Clip(testWorld)
		owners := r.ownersOf(rect)
		want := map[int]bool{}
		for _, tl := range bruteCover(r.grid, rect) {
			want[r.owner[tl]] = true
		}
		if len(owners) != len(want) {
			t.Fatalf("ownersOf(%v) = %v, want owners of tiles %v", rect, owners, want)
		}
		for _, s := range owners {
			if !want[s] {
				t.Fatalf("ownersOf(%v) includes shard %d not owning any covered tile", rect, s)
			}
		}
	}
}

// newTestRouter builds a router over nil shard links — enough for the
// pure routing-math tests, which never issue calls.
func newTestRouter(t *testing.T, shards int) *Router {
	t.Helper()
	r, err := New(Config{World: testWorld, Shards: make([]Shard, shards)})
	if err != nil {
		t.Fatal(err)
	}
	return r
}
