package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// The anonymizer benchmark harness behind E16. Schema v2 runs the whole
// GOMAXPROCS matrix in-process — one entry set per GOMAXPROCS value — so
// a single run produces the full per-proc scaling report; comparisons
// gate the pinned procs {1, 4} within tolerance and report the rest
// informationally. With -bench-out the experiment writes a
// machine-readable BENCH_anonymizer.json; with -bench-compare it loads a
// committed baseline and flags any pinned series whose updates/sec
// dropped more than -bench-tolerance below it (process exits 1 — the CI
// regression gate). Absolute numbers are machine-specific, so the
// tolerance is deliberately wide; the within-run scaling ratios are the
// portable signal.
type benchReport struct {
	Schema    string      `json:"schema"`
	NumCPU    int         `json:"numcpu"`
	GoVersion string      `json:"go"`
	Users     int         `json:"users"`
	Procs     []benchProc `json:"procs"`
}

type benchProc struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	Entries    []benchEntry `json:"entries"`
}

type benchEntry struct {
	Mode          string  `json:"mode"` // "batch" or "single"
	Shards        int     `json:"shards"`
	Workers       int     `json:"workers"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	SharedHitPct  float64 `json:"shared_hit_pct,omitempty"`
}

// benchRegressions is set by the harness experiments when a baseline
// comparison (or the speedup gate) fails; main exits non-zero after the
// run so CI turns red.
var benchRegressions []string

// expParallel measures the sharded batch pipeline: updates/sec for the
// batch and single-call paths at shard counts 1, 4 and 8 (workers =
// shards), over a gaussian-clustered waypoint population, across the
// GOMAXPROCS matrix.
func expParallel(cfg benchConfig) {
	const rounds, passes = 10, 5
	n := cfg.n
	fmt.Printf("%d users (gaussian clusters), %d rounds per series, GOMAXPROCS ∈ %v\n\n",
		n, rounds, benchProcs)

	report := benchReport{
		Schema:    "anonymizer-bench/v2",
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Users:     n,
	}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	t := newTable("gomaxprocs", "mode", "shards", "workers", "updates/sec", "shared hits %")
	for _, procs := range benchProcs {
		runtime.GOMAXPROCS(procs)
		proc := benchProc{GoMaxProcs: procs}
		for _, mode := range []string{"batch", "single"} {
			for _, shards := range []int{1, 4, 8} {
				pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
					N: n, World: world, Dist: mobility.Gaussian, Seed: cfg.seed,
				})
				if err != nil {
					log.Fatalf("lbsbench: %v", err)
				}
				anon, err := anonymizer.New(anonymizer.Config{
					World: world, Shards: shards, BatchWorkers: shards,
				})
				if err != nil {
					log.Fatalf("lbsbench: %v", err)
				}
				prof := privacy.Constant(reqK(25))
				reqs := make([]cloak.Request, n)
				for i, p := range pts {
					anon.Register(uint64(i+1), prof)
					reqs[i] = cloak.Request{ID: uint64(i + 1), Loc: p}
				}
				anon.BatchUpdate(reqs) // warm the indices
				src := rng.New(cfg.seed + 99)
				drift := func() {
					for i := range reqs {
						reqs[i].Loc = world.ClampPoint(geo.Pt(
							reqs[i].Loc.X+src.Range(-0.002, 0.002),
							reqs[i].Loc.Y+src.Range(-0.002, 0.002)))
					}
				}
				runPass := func() time.Duration {
					t0 := time.Now()
					for r := 0; r < rounds; r++ {
						drift()
						if mode == "batch" {
							anon.BatchUpdate(reqs)
						} else {
							for _, rq := range reqs {
								if _, err := anon.Update(rq.ID, rq.Loc); err != nil {
									log.Fatalf("lbsbench: %v", err)
								}
							}
						}
					}
					return time.Since(t0)
				}
				// Best of several passes: on a shared box a single pass is
				// at the mercy of scheduler noise; the fastest pass is the
				// closest estimate of the machine's true capability.
				elapsed := runPass()
				for p := 1; p < passes; p++ {
					if d := runPass(); d < elapsed {
						elapsed = d
					}
				}
				st := anon.Stats()
				ups := float64(n*rounds) / elapsed.Seconds()
				sharedPct := 0.0
				if mode == "batch" && st.Updates > 0 {
					sharedPct = 100 * float64(st.SharedHits) / float64(st.Updates)
				}
				t.row(procs, mode, shards, anon.BatchWorkers(), ups, sharedPct)
				proc.Entries = append(proc.Entries, benchEntry{
					Mode: mode, Shards: shards, Workers: anon.BatchWorkers(),
					UpdatesPerSec: ups, SharedHitPct: sharedPct,
				})
			}
		}
		report.Procs = append(report.Procs, proc)
	}
	t.flush()
	runtime.GOMAXPROCS(prevProcs)

	fmt.Println("\nreading: the batch pipeline amortizes admission into one locked pass")
	fmt.Println("per shard and fans the cloaking descents out over the worker pool; on")
	fmt.Println("a multicore host throughput scales with the shard count until the")
	fmt.Println("index write lock saturates. Results are bit-identical at every point")
	fmt.Println("of the grid (differential suite).")

	if benchOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		if err := os.WriteFile(benchOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
		fmt.Printf("\nwrote %s\n", benchOut)
	}
	if benchCompare != "" {
		raw, err := os.ReadFile(benchCompare)
		if err != nil {
			log.Fatalf("lbsbench: baseline: %v", err)
		}
		var base benchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			log.Fatalf("lbsbench: baseline %s: %v", benchCompare, err)
		}
		fmt.Printf("\nbaseline %s (numcpu=%d, %s), tolerance %.0f%%:\n",
			benchCompare, base.NumCPU, base.GoVersion, 100*benchTolerance)
		benchRegressions = append(benchRegressions, compareBench(report, base, benchTolerance)...)
	}
}

// compareBench checks the current report against the committed baseline:
// environment and workload must match exactly, pinned procs {1, 4} are
// tolerance-gated per series, other procs are informational.
func compareBench(cur, base benchReport, tolerance float64) []string {
	var regs []string
	regs = append(regs, checkBenchEnv(base.NumCPU, cur.NumCPU)...)
	if base.Users != cur.Users {
		regs = append(regs, fmt.Sprintf(
			"workload mismatch: %d users vs baseline %d — rerun with -n %d or regenerate the baseline",
			cur.Users, base.Users, base.Users))
	}
	lookup := map[string]float64{}
	for _, proc := range cur.Procs {
		for _, e := range proc.Entries {
			lookup[fmt.Sprintf("procs=%d/%s/shards=%d", proc.GoMaxProcs, e.Mode, e.Shards)] = e.UpdatesPerSec
		}
	}
	for _, proc := range base.Procs {
		pinned := benchPinnedProcs[proc.GoMaxProcs]
		for _, e := range proc.Entries {
			key := fmt.Sprintf("procs=%d/%s/shards=%d", proc.GoMaxProcs, e.Mode, e.Shards)
			got, ok := lookup[key]
			if !ok {
				if pinned {
					regs = append(regs, key+": missing from current run")
				}
				continue
			}
			if !pinned {
				fmt.Printf("  %-32s baseline %10.0f  current %10.0f  info\n", key, e.UpdatesPerSec, got)
				continue
			}
			floor := e.UpdatesPerSec * (1 - tolerance)
			verdict := "ok"
			if got < floor {
				verdict = "REGRESSION"
				regs = append(regs, fmt.Sprintf(
					"%s: %.0f updates/sec < %.0f (baseline %.0f − %.0f%%)",
					key, got, floor, e.UpdatesPerSec, 100*tolerance))
			}
			fmt.Printf("  %-32s baseline %10.0f  current %10.0f  %s\n", key, e.UpdatesPerSec, got, verdict)
		}
	}
	return regs
}
