package protocol

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/trace"
)

// Native fuzz targets for the wire layer: malformed input must return an
// error, never panic, hang, or over-allocate. The seed corpora include
// well-formed frames so the fuzzer explores the valid paths too. CI runs
// each for a short smoke window; `go test` always replays the corpus.

func validFrame(typ byte, payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, typ, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(validFrame(MsgUpdate, []byte("payload")))
	f.Add(validFrame(msgOK, nil))
	huge := make([]byte, 4)
	binary.LittleEndian.PutUint32(huge, 1<<30)
	f.Add(append(huge, 0x05))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		// ReadFrameBuf with a dirty reused buffer must agree with ReadFrame
		// on every input: same error disposition, same type, same payload
		// bytes. The 0xA5 fill catches any path that returns stale reused
		// bytes the read did not overwrite.
		dirty := bytes.Repeat([]byte{0xa5}, 64)
		btyp, bpayload, bufOut, berr := ReadFrameBuf(bytes.NewReader(data), dirty)
		if (err == nil) != (berr == nil) {
			t.Fatalf("ReadFrame err %v vs ReadFrameBuf err %v", err, berr)
		}
		if err != nil {
			return
		}
		if btyp != typ || !bytes.Equal(bpayload, payload) {
			t.Fatalf("ReadFrameBuf mismatch: (%d, %x) vs (%d, %x)", btyp, bpayload, typ, payload)
		}
		if len(payload)+1 <= len(dirty) && &bufOut[0] != &dirty[0] {
			t.Fatal("ReadFrameBuf did not reuse a large-enough buffer")
		}
		// A successful read must be consistent with the input: the payload
		// cannot exceed what was actually supplied (no over-allocation from
		// a forged length prefix).
		if len(payload)+5 > len(data) {
			t.Fatalf("payload %d bytes from %d input bytes", len(payload), len(data))
		}
		// And it must round-trip byte-exactly.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("round trip mismatch: %x vs %x", buf.Bytes(), data[:buf.Len()])
		}
	})
}

func FuzzDecodeProfile(f *testing.F) {
	// Seed with a real encoded profile.
	prof := privacy.Constant(privacy.Requirement{K: 10, MinArea: 0.01})
	var e Encoder
	encodeProfile(&e, prof)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff}) // forged count, no entries
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		p, err := decodeProfile(d)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil profile with nil error")
		}
		// A decoded profile survives an encode/decode round trip.
		var e Encoder
		encodeProfile(&e, p)
		if _, err := decodeProfile(NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("re-decode of re-encoded profile failed: %v", err)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	f.Add(encodeResult(cloakResultSeed()))
	f.Add([]byte{})
	f.Add(make([]byte, 36))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		res := decodeResult(d)
		if d.Err() != nil {
			return
		}
		// A decoded result survives an encode/decode round trip. Byte
		// equality does not hold in general (the decoder ignores unknown
		// flag bits, which re-encoding canonicalizes away), but field
		// equality must — except for non-canonical NaN floats (NaN != NaN).
		out := encodeResult(res)
		if len(out) > len(data) {
			t.Fatalf("encoded result longer than input: %d > %d", len(out), len(data))
		}
		d2 := NewDecoder(out)
		res2 := decodeResult(d2)
		if d2.Err() != nil {
			t.Fatalf("re-decode of re-encoded result failed: %v", d2.Err())
		}
		if !hasNaN(res.Region) && res2 != res {
			t.Fatalf("round trip mismatch: %+v vs %+v", res2, res)
		}
	})
}

func FuzzDecodeMetrics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(encodeMetrics(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		series, err := DecodeMetrics(data)
		if err != nil {
			return
		}
		// Decoded histograms must be internally consistent: counts always
		// cover one more bucket than bounds.
		for _, s := range series {
			if len(s.Hist.Counts) > 0 && len(s.Hist.Counts) != len(s.Hist.Bounds)+1 {
				t.Fatalf("series %q: %d counts for %d bounds",
					s.Name, len(s.Hist.Counts), len(s.Hist.Bounds))
			}
		}
	})
}

func FuzzDecodeTraced(f *testing.F) {
	// Seeds: a well-formed envelope, truncations, a nested envelope, a
	// response inner type, and a zero trace id.
	valid := encodeTraced(traceSeedCtx(), MsgUpdate, []byte("inner payload"))
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:tracedHeaderLen-1])
	f.Add(encodeTraced(traceSeedCtx(), MsgTraced, valid))
	f.Add(encodeTraced(traceSeedCtx(), msgOK, nil))
	f.Add(encodeTraced(trace.SpanContext{}, MsgUpdate, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, innerTyp, inner, err := decodeTraced(data)
		if err != nil {
			return
		}
		// The decoder's contract: a successful unwrap never yields another
		// envelope (no recursion), never a response type, never an
		// anonymous trace, and the inner payload is a verbatim suffix of
		// the input.
		if innerTyp == MsgTraced {
			t.Fatal("nested envelope accepted")
		}
		if innerTyp == msgOK || innerTyp == msgErr {
			t.Fatalf("response inner type %d accepted", innerTyp)
		}
		if sc.TraceID == 0 {
			t.Fatal("zero trace id accepted")
		}
		if len(data) < tracedHeaderLen || !bytes.Equal(inner, data[tracedHeaderLen:]) {
			t.Fatalf("inner payload not the verbatim suffix: %x", inner)
		}
		// Round trip.
		if out := encodeTraced(sc, innerTyp, inner); !bytes.Equal(out, data) {
			t.Fatalf("round trip mismatch: %x vs %x", out, data)
		}
	})
}

func FuzzDecodeSpans(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // forged count, no spans
	f.Add(encodeSpans(nil))
	f.Add(encodeSpans([]trace.SpanRecord{{
		TraceID: 7, SpanID: 8, ParentID: 9, Name: "proto_serve", Proc: "lbsd",
		Start: 1e9, Dur: 5e6,
		Attrs: []trace.Attr{trace.Str("type", "update"), trace.Int("attempt", 2)},
	}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		spans, err := DecodeSpans(data)
		if err != nil {
			return
		}
		// No over-allocation from forged counts: each decoded span consumed
		// at least its fixed-width prefix from the input.
		if len(spans)*45 > len(data) {
			t.Fatalf("%d spans from %d input bytes", len(spans), len(data))
		}
	})
}

func traceSeedCtx() trace.SpanContext {
	return trace.SpanContext{TraceID: 0x1234, SpanID: 0x56, Flags: trace.FlagSampled}
}

func cloakResultSeed() (res cloak.Result) {
	res.Region = geo.R(0.1, 0.1, 0.4, 0.4)
	res.K = 12
	res.SatisfiedK = true
	res.SatisfiedMinArea = true
	res.SatisfiedMaxArea = true
	return res
}

func hasNaN(r geo.Rect) bool {
	return math.IsNaN(r.Min.X) || math.IsNaN(r.Min.Y) || math.IsNaN(r.Max.X) || math.IsNaN(r.Max.Y)
}
