package router_test

// The routing-tier differential suite: for every committed seed, one
// deterministic data set (stationary objects, moving objects, and
// cloaked user regions produced by all five cloaking algorithms) is
// loaded wire-to-wire into a single lbsd and into a router over several
// shard counts, and every operation — updates, removals, all three
// query kinds, mixed batches, error paths — must produce bit-identical
// answers on both tiers. The suite lives in package router_test because
// it drives the tiers through internal/protocol, which itself imports
// the router package.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/server"
)

var diffWorld = geo.R(0, 0, 1, 1)

var diffClasses = []string{"", "gas", "bank"}

// diffAlgorithms is every cloaking algorithm the anonymizer implements;
// the suite draws resident regions and query regions from all of them.
var diffAlgorithms = []anonymizer.Algorithm{
	anonymizer.AlgQuadtree,
	anonymizer.AlgGrid,
	anonymizer.AlgGridML,
	anonymizer.AlgNaive,
	anonymizer.AlgMBR,
}

// diffShardCounts returns the routed shard counts to compare against the
// single server. The CI matrix overrides the default {1, 2, 4, 8} via
// ROUTER_TEST_SHARDS=<n>, which narrows the sweep to {1, n}.
func diffShardCounts(t testing.TB) []int {
	t.Helper()
	s := os.Getenv("ROUTER_TEST_SHARDS")
	if s == "" {
		return []int{1, 2, 4, 8}
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 || n > router.MaxShards {
		t.Fatalf("bad ROUTER_TEST_SHARDS=%q", s)
	}
	if n == 1 {
		return []int{1}
	}
	return []int{1, n}
}

// diffSeeds loads the committed seed table.
func diffSeeds(t testing.TB) []uint64 {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "diff_seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var seeds []uint64
	for ln, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			t.Fatalf("diff_seeds.txt:%d: %v", ln+1, err)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		t.Fatal("diff_seeds.txt holds no seeds")
	}
	return seeds
}

func noLog(string, ...interface{}) {}

// tier is one side of the comparison: a dialed client plus everything to
// tear down behind it.
type tier struct {
	cli    *protocol.DatabaseClient
	closes []func()
}

func (tr *tier) Close() {
	for i := len(tr.closes) - 1; i >= 0; i-- {
		tr.closes[i]()
	}
}

func dialTier(t *testing.T, addr string) *protocol.DatabaseClient {
	t.Helper()
	cli, err := protocol.DialDatabase(addr, protocol.WithCallTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return cli
}

// startSingle boots one lbsd and dials it — the reference tier.
func startSingle(t *testing.T) *tier {
	t.Helper()
	srv, err := server.New(server.Config{World: diffWorld})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := protocol.ServeDatabase("127.0.0.1:0", srv, noLog)
	if err != nil {
		t.Fatal(err)
	}
	cli := dialTier(t, svc.Addr())
	return &tier{cli: cli, closes: []func(){func() { svc.Close() }, func() { cli.Close() }}}
}

// startRouted boots n lbsd shards, a router over dialed shard links, and
// the router service, then dials the router — the tier under test.
func startRouted(t *testing.T, shards int) *tier {
	t.Helper()
	tr := &tier{}
	links := make([]router.Shard, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		srv, err := server.New(server.Config{World: diffWorld})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := protocol.ServeDatabase("127.0.0.1:0", srv, noLog)
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		tr.closes = append(tr.closes, func() { svc.Close() })
		link := dialTier(t, svc.Addr())
		tr.closes = append(tr.closes, func() { link.Close() })
		links[i] = link
		addrs[i] = svc.Addr()
	}
	rt, err := router.New(router.Config{World: diffWorld, Shards: links, Addrs: addrs})
	if err != nil {
		tr.Close()
		t.Fatal(err)
	}
	rsvc, err := protocol.ServeRouter("127.0.0.1:0", rt, noLog)
	if err != nil {
		tr.Close()
		t.Fatal(err)
	}
	tr.closes = append(tr.closes, func() { rsvc.Close() })
	tr.cli = dialTier(t, rsvc.Addr())
	tr.closes = append(tr.closes, func() { tr.cli.Close() })
	return tr
}

// duo applies every operation to both tiers and fails the test on the
// first observable divergence — results and error texts alike.
type duo struct {
	t      *testing.T
	single *protocol.DatabaseClient
	routed *protocol.DatabaseClient
}

func (d *duo) sameErr(what string, a, b error) {
	d.t.Helper()
	if (a == nil) != (b == nil) {
		d.t.Fatalf("%s: single err=%v, routed err=%v", what, a, b)
	}
	if a != nil && a.Error() != b.Error() {
		d.t.Fatalf("%s: error text diverges:\n  single: %s\n  routed: %s", what, a, b)
	}
}

func (d *duo) loadStationary(objs []server.PublicObject) {
	d.t.Helper()
	d.sameErr("LoadStationary", d.single.LoadStationary(objs), d.routed.LoadStationary(objs))
}

func (d *duo) updateMoving(id uint64, loc geo.Point) {
	d.t.Helper()
	d.sameErr(fmt.Sprintf("UpdateMoving(%d, %v)", id, loc),
		d.single.UpdateMoving(id, loc), d.routed.UpdateMoving(id, loc))
}

func (d *duo) removeMoving(id uint64) {
	d.t.Helper()
	ea, erra := d.single.RemoveMoving(id)
	eb, errb := d.routed.RemoveMoving(id)
	d.sameErr(fmt.Sprintf("RemoveMoving(%d)", id), erra, errb)
	if ea != eb {
		d.t.Fatalf("RemoveMoving(%d): existed %v on single, %v on routed", id, ea, eb)
	}
}

func (d *duo) updatePrivate(id uint64, region geo.Rect) {
	d.t.Helper()
	d.sameErr(fmt.Sprintf("UpdatePrivate(%d, %v)", id, region),
		d.single.UpdatePrivate(id, region), d.routed.UpdatePrivate(id, region))
}

func (d *duo) removePrivate(id uint64) {
	d.t.Helper()
	d.sameErr(fmt.Sprintf("RemovePrivate(%d)", id),
		d.single.RemovePrivate(id), d.routed.RemovePrivate(id))
}

func (d *duo) privateRange(q server.PrivateRangeQuery) {
	d.t.Helper()
	ra, erra := d.single.PrivateRange(q)
	rb, errb := d.routed.PrivateRange(q)
	d.sameErr(fmt.Sprintf("PrivateRange(%+v)", q), erra, errb)
	if !reflect.DeepEqual(ra, rb) {
		d.t.Fatalf("PrivateRange(%+v) diverges:\n  single: %v\n  routed: %v", q, ra, rb)
	}
}

func (d *duo) privateNN(q server.PrivateNNQuery) {
	d.t.Helper()
	ra, erra := d.single.PrivateNN(q)
	rb, errb := d.routed.PrivateNN(q)
	d.sameErr(fmt.Sprintf("PrivateNN(%+v)", q), erra, errb)
	if !reflect.DeepEqual(ra, rb) {
		d.t.Fatalf("PrivateNN(%+v) diverges:\n  single: %+v\n  routed: %+v", q, ra, rb)
	}
}

func (d *duo) publicCount(query geo.Rect) {
	d.t.Helper()
	ra, erra := d.single.PublicCount(query)
	rb, errb := d.routed.PublicCount(query)
	d.sameErr(fmt.Sprintf("PublicCount(%v)", query), erra, errb)
	if !reflect.DeepEqual(ra, rb) {
		d.t.Fatalf("PublicCount(%v) diverges:\n  single: %+v\n  routed: %+v", query, ra, rb)
	}
}

func (d *duo) stats() {
	d.t.Helper()
	sa, pa, erra := d.single.Stats()
	sb, pb, errb := d.routed.Stats()
	d.sameErr("Stats", erra, errb)
	if sa != sb || pa != pb {
		d.t.Fatalf("Stats diverges: single (%d, %d), routed (%d, %d)", sa, pa, sb, pb)
	}
}

// batch compares only Items: Groups and SharedHits are topology-dependent
// diagnostics (the router counts forwarded sub-batches, a single server
// counts shared descents), while the per-entry answers must be identical.
func (d *duo) batch(entries []server.BatchEntry) {
	d.t.Helper()
	ra, erra := d.single.BatchQuery(entries)
	rb, errb := d.routed.BatchQuery(entries)
	d.sameErr("BatchQuery", erra, errb)
	if erra != nil {
		return
	}
	if len(ra.Items) != len(rb.Items) {
		d.t.Fatalf("BatchQuery: %d items on single, %d on routed", len(ra.Items), len(rb.Items))
	}
	for i := range ra.Items {
		ia, ib := ra.Items[i], rb.Items[i]
		d.sameErr(fmt.Sprintf("BatchQuery entry %d", i), ia.Err, ib.Err)
		if !reflect.DeepEqual(ia.Range, ib.Range) ||
			!reflect.DeepEqual(ia.NN, ib.NN) ||
			!reflect.DeepEqual(ia.Count, ib.Count) {
			d.t.Fatalf("BatchQuery entry %d (kind %d) diverges:\n  single: %+v\n  routed: %+v",
				i, entries[i].Kind, ia, ib)
		}
	}
}

// diffData is one seed's deterministic population.
type diffData struct {
	objs    []server.PublicObject // 600 stationary, ids 1..600
	moving  []geo.Point           // 80 moving objects, ids 5000..5079
	userLoc []geo.Point           // 400 private users, ids 1..400
}

func buildDiffData(seed uint64) diffData {
	src := rng.New(seed)
	var data diffData
	for i := 0; i < 600; i++ {
		data.objs = append(data.objs, server.PublicObject{
			ID:    uint64(i + 1),
			Class: diffClasses[1+src.Intn(len(diffClasses)-1)],
			Loc:   geo.Pt(src.Float64(), src.Float64()),
		})
	}
	for i := 0; i < 80; i++ {
		data.moving = append(data.moving, geo.Pt(src.Float64(), src.Float64()))
	}
	for i := 0; i < 400; i++ {
		data.userLoc = append(data.userLoc, geo.Pt(src.Float64(), src.Float64()))
	}
	return data
}

// diffK assigns each user a deterministic anonymity requirement.
func diffK(id uint64) int { return 1 + int(id%37) }

// cloakRegions runs every cloaking algorithm over the user population and
// returns, per user, a resident region (algorithms interleaved by id so
// the loaded population mixes all five) and, per algorithm, one cloaked
// query region per user. Cloaking runs in-process: only the resulting
// rectangles matter here, and both tiers receive the same ones.
func cloakRegions(t *testing.T, seed uint64, data diffData) (resident []geo.Rect, queries [][]geo.Rect) {
	t.Helper()
	src := rng.New(seed ^ 0xC10A)
	resident = make([]geo.Rect, len(data.userLoc))
	queries = make([][]geo.Rect, len(diffAlgorithms))
	for ai, alg := range diffAlgorithms {
		a, err := anonymizer.New(anonymizer.Config{World: diffWorld, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range data.userLoc {
			id := uint64(i + 1)
			if err := a.Register(id, privacy.Constant(privacy.Requirement{K: diffK(id)})); err != nil {
				t.Fatalf("%v: Register(%d): %v", alg, id, err)
			}
			a.Update(id, p) // warm pass; K may be unsatisfiable mid-load
		}
		queries[ai] = make([]geo.Rect, len(data.userLoc))
		for i, p := range data.userLoc {
			id := uint64(i + 1)
			res, err := a.Update(id, p)
			region := res.Region
			if err != nil || !region.Valid() || region.Area() == 0 {
				region = geo.RectAround(p, 0.01+0.04*src.Float64()).Clip(diffWorld)
			}
			if ai == i%len(diffAlgorithms) {
				resident[i] = region
			}
			qp := diffWorld.ClampPoint(geo.Pt(p.X+src.Range(-0.02, 0.02), p.Y+src.Range(-0.02, 0.02)))
			qres, err := a.CloakQuery(id, qp)
			qregion := qres.Region
			if err != nil || !qregion.Valid() || qregion.Area() == 0 {
				qregion = geo.RectAround(qp, 0.01+0.04*src.Float64()).Clip(diffWorld)
			}
			queries[ai][i] = qregion
		}
	}
	return resident, queries
}

// buildDiffEntries generates one mixed batch over cloaked regions: all
// three query kinds, both range modes, class filters, and invalid
// entries whose error paths must match too.
func buildDiffEntries(src *rng.Source, queries [][]geo.Rect, n int) []server.BatchEntry {
	entries := make([]server.BatchEntry, 0, n)
	for i := 0; i < n; i++ {
		r := queries[src.Intn(len(queries))][src.Intn(len(queries[0]))]
		var e server.BatchEntry
		switch src.Intn(10) {
		case 0, 1, 2, 3: // private range
			e.Kind = server.BatchPrivateRange
			e.Range = server.PrivateRangeQuery{
				Region: r,
				Radius: 0.05 * src.Float64(),
				Class:  diffClasses[src.Intn(len(diffClasses))],
			}
			if src.Intn(2) == 0 {
				e.Range.Mode = server.RangeMBR
			}
		case 4, 5, 6: // public count
			e.Kind = server.BatchPublicCount
			e.Count = server.PublicRangeCountQuery{Query: r}
		case 7, 8: // private NN
			e.Kind = server.BatchPrivateNN
			e.NN = server.PrivateNNQuery{Region: r, Class: diffClasses[src.Intn(len(diffClasses))]}
		default: // invalid entries: the per-entry error path must match too
			switch src.Intn(3) {
			case 0:
				e.Kind = server.BatchPrivateRange
				e.Range = server.PrivateRangeQuery{Region: geo.Rect{Min: r.Max, Max: r.Min}, Radius: 0.01}
			case 1:
				e.Kind = server.BatchPrivateRange
				e.Range = server.PrivateRangeQuery{Region: r, Radius: -1}
			default:
				e.Kind = server.BatchPublicCount
				e.Count = server.PublicRangeCountQuery{Query: geo.Rect{Min: r.Max, Max: r.Min}}
			}
		}
		entries = append(entries, e)
	}
	return entries
}

// runDifferential replays one seed's full operation script against both
// tiers: load, the query sweep over every algorithm's cloaked regions,
// error paths, mixed batches, moving churn (with tile handoffs), and
// user churn (with replication changes and removals).
func runDifferential(t *testing.T, d *duo, data diffData, resident []geo.Rect, queries [][]geo.Rect, seed uint64) {
	t.Helper()
	d.loadStationary(data.objs)
	for i, p := range data.moving {
		d.updateMoving(uint64(5000+i), p)
	}
	for i, r := range resident {
		d.updatePrivate(uint64(i+1), r)
	}
	// Users whose regions hang past the world edge: accepted by the
	// server (the region intersects the world) and reachable by queries
	// lying entirely outside it — the routed tier must keep both paths
	// identical.
	edge := []geo.Rect{
		geo.RectAround(geo.Pt(0.001, 0.5), 0.03),
		geo.RectAround(geo.Pt(0.5, 0.999), 0.03),
		geo.RectAround(geo.Pt(0.999, 0.001), 0.05),
	}
	for i, r := range edge {
		d.updatePrivate(uint64(401+i), r)
	}
	d.stats()

	src := rng.New(seed ^ 0xD1FF)
	// Query sweep: every algorithm's cloaked regions, all three kinds.
	for ai := range queries {
		for k := 0; k < 20; k++ {
			r := queries[ai][src.Intn(len(queries[ai]))]
			q := server.PrivateRangeQuery{
				Region: r,
				Radius: 0.05 * src.Float64(),
				Class:  diffClasses[src.Intn(len(diffClasses))],
			}
			if src.Intn(2) == 0 {
				q.Mode = server.RangeMBR
			}
			d.privateRange(q)
			d.privateNN(server.PrivateNNQuery{Region: r, Class: diffClasses[src.Intn(len(diffClasses))]})
			d.publicCount(r)
		}
	}

	// Error and boundary paths.
	bad := geo.Rect{Min: geo.Pt(0.8, 0.8), Max: geo.Pt(0.2, 0.2)}
	d.privateRange(server.PrivateRangeQuery{Region: bad, Radius: 0.01})
	d.privateRange(server.PrivateRangeQuery{Region: geo.R(0.1, 0.1, 0.2, 0.2), Radius: -1})
	d.privateNN(server.PrivateNNQuery{Region: bad})
	d.publicCount(bad)
	d.updateMoving(6000, geo.Pt(2, 2))                      // out of world
	d.updatePrivate(500, bad)                               // invalid region
	d.updatePrivate(500, geo.RectAround(geo.Pt(7, 7), 0.1)) // outside world
	far := geo.RectAround(geo.Pt(5, 5), 0.3)                // valid rect, no world overlap
	d.privateRange(server.PrivateRangeQuery{Region: far, Radius: 0.01})
	d.privateNN(server.PrivateNNQuery{Region: far})
	d.publicCount(far)
	// Queries entirely outside the world that still overlap edge-hanging
	// resident regions.
	d.publicCount(geo.R(-0.05, 0.4, -0.001, 0.6))
	d.publicCount(geo.R(0.4, 1.001, 0.6, 1.05))
	// Whole-world and over-the-edge queries.
	d.publicCount(diffWorld.Expand(0.2))
	d.privateRange(server.PrivateRangeQuery{Region: diffWorld.Expand(0.1), Radius: 0.01})

	// Mixed batches.
	for round := 0; round < 3; round++ {
		d.batch(buildDiffEntries(src, queries, 40))
	}

	// Moving churn: every object relocates (crossing tile boundaries, so
	// routed handoffs fire), some are removed — known and unknown ids.
	for round := 0; round < 2; round++ {
		for i := range data.moving {
			d.updateMoving(uint64(5000+i), geo.Pt(src.Float64(), src.Float64()))
		}
		for k := 0; k < 10; k++ {
			d.removeMoving(uint64(5000 + src.Intn(100)))
		}
		for k := 0; k < 10; k++ {
			r := queries[src.Intn(len(queries))][src.Intn(len(queries[0]))]
			d.privateRange(server.PrivateRangeQuery{Region: r, Radius: 0.02})
		}
	}

	// User churn: regions move across tiles (replication sets change),
	// users leave — known and unknown ids — and counts must still agree.
	for k := 0; k < 120; k++ {
		id := uint64(src.Intn(400)) + 1
		c := geo.Pt(src.Float64(), src.Float64())
		d.updatePrivate(id, geo.RectAround(c, 0.005+0.1*src.Float64()).Clip(diffWorld))
	}
	for k := 0; k < 30; k++ {
		d.removePrivate(uint64(src.Intn(450)) + 1)
	}
	d.stats()
	for ai := range queries {
		for k := 0; k < 5; k++ {
			d.publicCount(queries[ai][src.Intn(len(queries[ai]))])
		}
	}
}

// TestDifferentialRoutedEqualsSingle is the tier equivalence proof: all
// committed seeds × shard counts, wire to wire.
func TestDifferentialRoutedEqualsSingle(t *testing.T) {
	counts := diffShardCounts(t)
	for _, seed := range diffSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			data := buildDiffData(seed)
			resident, queries := cloakRegions(t, seed, data)
			for _, n := range counts {
				n := n
				t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
					single := startSingle(t)
					defer single.Close()
					routed := startRouted(t, n)
					defer routed.Close()
					d := &duo{t: t, single: single.cli, routed: routed.cli}
					runDifferential(t, d, data, resident, queries, seed)
				})
			}
		})
	}
}

// TestShardMapReportsTopology: the router service answers MsgShardMap
// with a consistent tile→shard table; a plain lbsd rejects it.
func TestShardMapReportsTopology(t *testing.T) {
	routed := startRouted(t, 3)
	defer routed.Close()
	topo, err := routed.cli.ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Shards != 3 || topo.World != diffWorld {
		t.Fatalf("topology %+v", topo)
	}
	if len(topo.Owners) != topo.Cols*topo.Rows {
		t.Fatalf("%d owners for %dx%d grid", len(topo.Owners), topo.Cols, topo.Rows)
	}
	if len(topo.Addrs) != 3 {
		t.Fatalf("addrs %v", topo.Addrs)
	}
	single := startSingle(t)
	defer single.Close()
	if _, err := single.cli.ShardMap(); err == nil {
		t.Fatal("single lbsd accepted MsgShardMap")
	}
}
