package protocol

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/anonymizer"
	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/privacy"
)

// startLoaded serves a handler that parks update and query frames on a
// gate channel (so the test controls in-flight occupancy exactly) and
// echoes everything else immediately.
func startLoaded(t *testing.T, max int, reg *obs.Registry) (*Service, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	svc, err := Serve("127.0.0.1:0", func(_ context.Context, typ byte, p []byte) ([]byte, error) {
		switch typ {
		case MsgUpdate, MsgCloakQuery:
			<-gate
		}
		return p, nil
	}, quiet, WithAdmission(max), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, gate
}

// dialRaw opens a plain client; each concurrent in-flight request needs
// its own connection because a Client serializes calls.
func dialRaw(t *testing.T, addr string, opts ...DialOption) *Client {
	t.Helper()
	c, err := Dial(addr, append(fastRetry(), opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// occupy parks n concurrent calls of typ inside the handler and returns a
// WaitGroup that resolves once the gate opens and they complete.
func occupy(t *testing.T, svc *Service, addr string, typ byte, n int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c := dialRaw(t, addr)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(typ, []byte("held")); err != nil {
				t.Errorf("parked %s call failed: %v", MessageName(typ), err)
			}
		}()
	}
	poll(t, 5*time.Second, func() bool { return int(svc.inflight.Load()) >= n },
		"requests to occupy the admission budget")
	return &wg
}

// At the in-flight cap, further updates are shed with a typed
// MsgOverloaded the client surfaces as ErrOverloaded, the rejection is
// counted per message type, and releasing the budget restores service.
func TestAdmissionShedsUpdatesAtCap(t *testing.T) {
	reg := obs.NewRegistry()
	svc, gate := startLoaded(t, 2, reg)
	wg := occupy(t, svc, svc.Addr(), MsgUpdate, 2)

	c := dialRaw(t, svc.Addr())
	_, err := c.Call(MsgUpdate, []byte("one too many"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("call over budget: err = %v, want ErrOverloaded", err)
	}
	if s, ok := reg.Find("proto_overload_rejections_total", obs.L("type", "update")); !ok || s.Value != 1 {
		t.Fatalf("proto_overload_rejections_total{type=update} = %v (found=%v), want 1", s.Value, ok)
	}

	close(gate)
	wg.Wait()
	poll(t, 5*time.Second, func() bool { return svc.inflight.Load() == 0 }, "budget release")
	if _, err := c.Call(MsgUpdate, []byte("after release")); err != nil {
		t.Fatalf("call after release failed: %v — the shed must not poison the connection", err)
	}
}

// Queries are capped at half the budget: with the query budget exhausted a
// query sheds while an update is still admitted, so a query flood cannot
// starve the updates that keep privacy state fresh.
func TestAdmissionQueriesShedAtHalfBudget(t *testing.T) {
	reg := obs.NewRegistry()
	svc, gate := startLoaded(t, 4, reg) // query budget = 2
	wg := occupy(t, svc, svc.Addr(), MsgCloakQuery, 2)

	c := dialRaw(t, svc.Addr())
	if _, err := c.Call(MsgCloakQuery, []byte("q3")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third query: err = %v, want ErrOverloaded at half budget", err)
	}

	// An update rides above the query cap: admitted, parks in the handler.
	cu := dialRaw(t, svc.Addr())
	done := make(chan error, 1)
	go func() {
		_, err := cu.Call(MsgUpdate, []byte("still welcome"))
		done <- err
	}()
	poll(t, 5*time.Second, func() bool { return svc.inflight.Load() == 3 },
		"the update to be admitted past the query cap")

	close(gate)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("update admitted past the query cap failed: %v", err)
	}
}

// Observability traffic is never shed: with the whole budget occupied,
// metrics snapshots and stats frames still answer, so SLO checks can see
// an overloaded daemon.
func TestAdmissionAlwaysAdmitsObservability(t *testing.T) {
	reg := obs.NewRegistry()
	svc, gate := startLoaded(t, 1, reg)
	wg := occupy(t, svc, svc.Addr(), MsgUpdate, 1)

	c := dialRaw(t, svc.Addr())
	if _, err := c.Call(MsgMetrics, nil); err != nil {
		t.Fatalf("MsgMetrics during saturation: %v", err)
	}
	if _, err := c.Call(MsgAnonStats, nil); err != nil {
		t.Fatalf("MsgAnonStats during saturation: %v", err)
	}

	close(gate)
	wg.Wait()
}

// A shed is one round trip: the client counts it, does not retry (retrying
// immediately would feed the overload), and does not tear down the
// connection or trip the breaker.
func TestClientDoesNotRetryOverload(t *testing.T) {
	reg := obs.NewRegistry()
	svc, gate := startLoaded(t, 1, obs.NewRegistry())
	wg := occupy(t, svc, svc.Addr(), MsgUpdate, 1)

	c := dialRaw(t, svc.Addr(), WithRetries(3), WithClientMetrics(reg))
	if _, err := c.Call(MsgUpdate, []byte("shed me")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if s, ok := reg.Find("proto_overloaded_total"); !ok || s.Value != 1 {
		t.Fatalf("proto_overloaded_total = %v (found=%v), want exactly 1 — no retries", s.Value, ok)
	}

	close(gate)
	wg.Wait()
}

// Anonymizer backpressure crosses the wire typed: a full forward queue in
// reject mode answers updates and whole batches with MsgOverloaded, which
// the client surfaces as ErrOverloaded.
func TestBackpressureCrossesTheWire(t *testing.T) {
	anonEng, err := anonymizer.New(anonymizer.Config{
		World:               world,
		Forward:             func(uint64, geo.Rect) error { return errors.New("link down") },
		ForwardQueue:        2,
		ForwardBackpressure: true,
		ForwardRetryBase:    5 * time.Millisecond,
		ForwardRetryMax:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer anonEng.Close()
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anonEng, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer anonSvc.Close()
	ac, err := DialAnonymizer(anonSvc.Addr(), fastRetry()...)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()

	prof := privacy.Constant(privacy.Requirement{K: 2})
	for id := uint64(1); id <= 4; id++ {
		if err := ac.Register(id, prof); err != nil {
			t.Fatal(err)
		}
	}
	// Two distinct users fill the queue; both updates succeed by spilling.
	for id := uint64(1); id <= 2; id++ {
		if _, err := ac.Update(id, geo.Pt(float64(id)/8, 0.5)); err != nil {
			t.Fatalf("update %d during outage: %v", id, err)
		}
	}
	if _, err := ac.Update(3, geo.Pt(0.5, 0.5)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("update into a full queue over the wire: err = %v, want ErrOverloaded", err)
	}
	// The saturation gate refuses whole batches before decoding them.
	if _, err := ac.BatchUpdate([]cloak.Request{{ID: 4, Loc: geo.Pt(0.6, 0.5)}}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch into a saturated anonymizer: err = %v, want ErrOverloaded", err)
	}
}

// MsgUpdateProfile round-trips: a registered user's profile is replaced in
// place, and an unknown user fails remotely without tearing the connection
// down.
func TestUpdateProfileOverWire(t *testing.T) {
	anonEng, err := anonymizer.New(anonymizer.Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	defer anonEng.Close()
	anonSvc, err := ServeAnonymizer("127.0.0.1:0", anonEng, quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer anonSvc.Close()
	ac, err := DialAnonymizer(anonSvc.Addr(), fastRetry()...)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()

	if err := ac.Register(1, privacy.Constant(privacy.Requirement{K: 2})); err != nil {
		t.Fatal(err)
	}
	if err := ac.UpdateProfile(1, privacy.Constant(privacy.Requirement{K: 5})); err != nil {
		t.Fatalf("profile flip for a registered user: %v", err)
	}
	if err := ac.UpdateProfile(99, privacy.Constant(privacy.Requirement{K: 5})); !errors.Is(err, ErrRemote) {
		t.Fatalf("profile flip for an unknown user: err = %v, want ErrRemote", err)
	}
	// The connection survived the remote error: the next flip still works.
	if err := ac.UpdateProfile(1, privacy.Constant(privacy.Requirement{K: 3})); err != nil {
		t.Fatalf("profile flip after a remote error: %v", err)
	}
}
