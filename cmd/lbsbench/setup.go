package main

import (
	"log"

	"repro/internal/cloak"
	"repro/internal/geo"
	"repro/internal/grid"
	"repro/internal/mobility"
	"repro/internal/pyramid"
	"repro/internal/server"
)

// world is the unit square every experiment runs in.
var world = geo.R(0, 0, 1, 1)

// population bundles the two index views of a user population plus the raw
// exact locations (the experiments' ground truth).
type population struct {
	pts []geo.Point
	gi  *grid.Index
	pyr *pyramid.Pyramid
	pop cloak.GridPopulation
}

// buildPopulation generates n users and indexes them in both the grid and
// the pyramid (height 10).
func buildPopulation(n int, dist mobility.Distribution, seed uint64) population {
	return buildPopulationH(n, dist, seed, 10)
}

// buildPopulationH is buildPopulation with an explicit pyramid height.
func buildPopulationH(n int, dist mobility.Distribution, seed uint64, height int) population {
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: n, World: world, Dist: dist, Seed: seed,
	})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	gi, err := grid.New(world, 64, 64)
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	pyr, err := pyramid.New(world, height)
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	for i, p := range pts {
		gi.Upsert(uint64(i+1), p)
		if err := pyr.Insert(uint64(i+1), p); err != nil {
			log.Fatalf("lbsbench: %v", err)
		}
	}
	return population{pts: pts, gi: gi, pyr: pyr, pop: cloak.GridPopulation{Index: gi}}
}

// buildServerWithObjects creates a server loaded with uniform public
// objects of class "gas" and returns the object list.
func buildServerWithObjects(nObjs int, seed uint64) (*server.Server, []server.PublicObject) {
	srv, err := server.New(server.Config{World: world})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	pts, err := mobility.GeneratePoints(mobility.PopulationSpec{
		N: nObjs, World: world, Dist: mobility.Uniform, Seed: seed,
	})
	if err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	objs := make([]server.PublicObject, nObjs)
	for i, p := range pts {
		objs[i] = server.PublicObject{ID: uint64(i + 1), Class: "gas", Loc: p}
	}
	if err := srv.LoadStationary(objs); err != nil {
		log.Fatalf("lbsbench: %v", err)
	}
	return srv, objs
}

// cloakSamples runs a cloaker over sampled users and returns the regions
// with true locations.
type regionSample struct {
	region geo.Rect
	loc    geo.Point
}

func cloakSamples(c cloak.Cloaker, p population, k, count int) []regionSample {
	out := make([]regionSample, 0, count)
	stride := len(p.pts)/count + 1
	for i := 0; i < len(p.pts) && len(out) < count; i += stride {
		loc := p.pts[i]
		res := c.Cloak(uint64(i+1), loc, reqK(k))
		out = append(out, regionSample{region: res.Region, loc: loc})
	}
	return out
}
